package ctk

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// durOpts builds engine options with durability rooted at dir, the
// background snapshot triggers disabled (tests trigger snapshots
// explicitly) and the always-fsync policy — which makes "copy the data
// dir" equivalent to "kill -9 here": everything acknowledged is on
// disk, nothing else is.
func durOpts(dir string, shards, par int, rebuild string) Options {
	return Options{
		Shards:      shards,
		Parallelism: par,
		Rebuild:     rebuild,
		Lambda:      0.05,
		Durability: Durability{
			Dir:         dir,
			Fsync:       FsyncAlways,
			SnapshotOps: -1,
		},
	}
}

// op is one scripted acknowledged operation.
type op struct {
	kind  string // "reg", "unreg", "pub", "batch"
	text  string
	texts []string
	k     int
	id    QueryID
	at    float64
}

// script builds a deterministic workload: registrations, single and
// batch publications, and some unregistrations, with drifting text.
func script(n int) []op {
	rng := rand.New(rand.NewSource(7))
	words := []string{"storm", "flood", "coast", "market", "election", "goal",
		"match", "quake", "fire", "rescue", "vote", "trade", "virus", "launch"}
	text := func(k int) string {
		var b strings.Builder
		for i := 0; i < k; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[rng.Intn(len(words))])
		}
		return b.String()
	}
	var ops []op
	var live []QueryID
	t := 0.0
	nextID := uint32(0)
	for i := 0; i < n; i++ {
		t += rng.Float64()
		switch r := rng.Float64(); {
		case r < 0.2:
			ops = append(ops, op{kind: "reg", text: text(1 + rng.Intn(3)), k: 1 + rng.Intn(4)})
			live = append(live, QueryID(nextID))
			nextID++
		case r < 0.25 && len(live) > 1:
			j := rng.Intn(len(live))
			ops = append(ops, op{kind: "unreg", id: live[j]})
			live = append(live[:j], live[j+1:]...)
		case r < 0.45:
			var texts []string
			for j := 0; j < 2+rng.Intn(4); j++ {
				texts = append(texts, text(3+rng.Intn(8)))
			}
			ops = append(ops, op{kind: "batch", texts: texts, at: t})
		default:
			ops = append(ops, op{kind: "pub", text: text(3 + rng.Intn(8)), at: t})
		}
	}
	return ops
}

// apply feeds ops[lo:hi] to e, failing the test on any error the
// original acknowledged run did not produce.
func apply(t *testing.T, e *Engine, ops []op, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		o := ops[i]
		var err error
		switch o.kind {
		case "reg":
			_, err = e.Register(o.text, o.k)
		case "unreg":
			err = e.Unregister(o.id)
		case "pub":
			_, err = e.Publish(o.text, o.at)
		case "batch":
			_, err = e.PublishBatch(o.texts, o.at)
		}
		if err != nil {
			t.Fatalf("op %d (%s): %v", i, o.kind, err)
		}
	}
}

// requireEquivalent asserts got is bit-identical to want over the
// whole query ID space: per-query results (doc IDs and scores), Seq
// numbers, stream time and headline counters.
func requireEquivalent(t *testing.T, got, want *Engine, queries int) {
	t.Helper()
	if g, w := got.StreamTime(), want.StreamTime(); g != w {
		t.Fatalf("stream time %v, want %v", g, w)
	}
	gs, ws := got.Stats(), want.Stats()
	if gs.Queries != ws.Queries || gs.Documents != ws.Documents {
		t.Fatalf("stats (q=%d d=%d), want (q=%d d=%d)", gs.Queries, gs.Documents, ws.Queries, ws.Documents)
	}
	for q := 0; q < queries; q++ {
		gr, gseq, gerr := got.ResultsSeq(QueryID(q))
		wr, wseq, werr := want.ResultsSeq(QueryID(q))
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("query %d: err %v, want %v", q, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		if gseq != wseq {
			t.Fatalf("query %d: seq %d, want %d", q, gseq, wseq)
		}
		if len(gr) != len(wr) {
			t.Fatalf("query %d: %d results, want %d", q, len(gr), len(wr))
		}
		for i := range gr {
			if gr[i].DocID != wr[i].DocID || gr[i].Score != wr[i].Score {
				t.Fatalf("query %d result %d: %+v, want %+v", q, i, gr[i], wr[i])
			}
		}
	}
}

// copyDir clones a data directory tree — with the always-fsync
// policy, a clone taken between operations is exactly the disk state a
// kill -9 at that point would leave.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		_, err = io.Copy(out, in)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		return err
	})
	if err != nil {
		t.Fatalf("copyDir: %v", err)
	}
}

// queryCount returns the number of query IDs the script ever assigned.
func queryCount(ops []op) int {
	n := 0
	for _, o := range ops {
		if o.kind == "reg" {
			n++
		}
	}
	return n
}

// oracle builds an uncrashed engine fed the same acknowledged
// operations, against which every recovery is compared.
func oracle(t *testing.T, ops []op, shards, par int, rebuild string) *Engine {
	t.Helper()
	e, err := New(Options{Shards: shards, Parallelism: par, Rebuild: rebuild, Lambda: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	apply(t, e, ops, 0, len(ops))
	return e
}

// TestCrashRecoveryMatrix drives the full crash-point matrix of the
// acceptance criteria: a workload is acknowledged under the
// always-fsync policy, the data directory is cloned at injected crash
// points (mid-WAL tail torn, mid-snapshot, post-snapshot pre-truncate)
// and each clone is recovered and required to be bit-identical —
// results, scores and notification Seqs — to an uncrashed oracle fed
// the same acknowledged operations, across Shards × Parallelism ×
// Rebuild execution shapes (all result-invariant, so one oracle per
// shape).
func TestCrashRecoveryMatrix(t *testing.T) {
	ops := script(300)
	nq := queryCount(ops)
	for _, shape := range []struct {
		shards, par int
		rebuild     string
	}{
		{1, 1, "background"},
		{1, 1, "sync"},
		{3, 1, "background"},
		{1, 2, "background"},
		{3, 2, "sync"},
		{2, 2, "background"},
	} {
		name := fmt.Sprintf("s%dp%d-%s", shape.shards, shape.par, shape.rebuild)
		t.Run(name, func(t *testing.T) {
			want := oracle(t, ops, shape.shards, shape.par, shape.rebuild)

			dir := t.TempDir()
			e, err := Open(durOpts(dir, shape.shards, shape.par, shape.rebuild))
			if err != nil {
				t.Fatal(err)
			}
			// Run a third of the workload, snapshot online, run the rest:
			// the recovery below exercises snapshot + replay layering,
			// not just one of the two.
			apply(t, e, ops, 0, len(ops)/3)
			if _, err := e.Snapshot(); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}

			// Crash point: post-snapshot, pre-truncate. doSnapshot
			// truncates immediately, so reconstruct that disk state by
			// grafting the snapshot onto a pre-snapshot clone (which still
			// holds the full WAL) — recovery must replay only records the
			// snapshot does not already cover, or documents double-apply.
			preTrunc := t.TempDir()
			apply(t, e, ops, len(ops)/3, 2*len(ops)/3)
			copyDir(t, dir, preTrunc)
			snapPath := e.Stats().Durability
			if snapPath.LastSnapshotLSN == 0 {
				t.Fatal("no snapshot recorded")
			}
			apply(t, e, ops, 2*len(ops)/3, len(ops))

			// Crash point: mid-WAL append. Clone the final state and tear
			// the last segment with garbage — the torn frame was never
			// acknowledged, so recovery must surface every scripted op.
			torn := t.TempDir()
			copyDir(t, dir, torn)
			tearLastSegment(t, filepath.Join(torn, "wal"))

			// Crash point: mid-snapshot write. Same, plus a truncated
			// newest snapshot — recovery must skip it and fall back.
			midSnap := t.TempDir()
			copyDir(t, dir, midSnap)
			writeBogusSnapshot(t, midSnap)

			if err := e.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			for _, tc := range []struct {
				label string
				dir   string
			}{
				{"clean-restart", dir},
				{"torn-wal-tail", torn},
				{"mid-snapshot", midSnap},
				{"pre-truncate", preTrunc},
			} {
				re, err := Open(durOpts(tc.dir, shape.shards, shape.par, shape.rebuild))
				if err != nil {
					t.Fatalf("%s: Open: %v", tc.label, err)
				}
				if tc.dir != preTrunc {
					requireEquivalent(t, re, want, nq)
				} else {
					// The pre-truncate clone only saw two thirds of the
					// workload; its oracle is the prefix.
					prefix := oracle(t, ops[:2*len(ops)/3], shape.shards, shape.par, shape.rebuild)
					requireEquivalent(t, re, prefix, nq)
				}
				if got := re.Stats().Durability; !got.Enabled {
					t.Fatalf("%s: durability not reported enabled", tc.label)
				}
				re.Close()
			}
		})
	}
}

// tearLastSegment appends garbage to the newest WAL segment,
// simulating a frame half-written at the kill.
func tearLastSegment(t *testing.T, walDir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (%v)", walDir, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// writeBogusSnapshot plants a newest-looking snapshot that never
// finished writing (truncated gob), which recovery must skip.
func writeBogusSnapshot(t *testing.T, dir string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "snap-00000000ffffffff.snap"),
		[]byte("\x1f\x8bdefinitely not a finished gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenFreshAndThresholdSnapshot covers the non-crash lifecycle:
// an empty dir boots an empty engine, the op-count trigger produces a
// background snapshot, WAL segments behind it are truncated, and stats
// report the subsystem's state.
func TestOpenFreshAndThresholdSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Durability: Durability{
			Dir:         dir,
			Fsync:       FsyncAlways,
			SnapshotOps: 20,
			// Tiny segments so truncation has something to remove.
			SegmentBytes: 256,
		},
	}
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("storm coast", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := e.Publish(fmt.Sprintf("storm surge on the coast event %d", i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The threshold kick runs on a background goroutine; an explicit
	// Snapshot gives a deterministic rendezvous and exercises the
	// on-demand path too.
	info, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.LSN == 0 || info.StreamTime == 0 {
		t.Fatalf("empty snapshot info: %+v", info)
	}
	st := e.Stats().Durability
	if !st.Enabled || st.NextLSN != 61 {
		t.Fatalf("durability stats: %+v", st)
	}
	if st.LastSnapshotLSN == 0 || st.Snapshots == 0 {
		t.Fatalf("snapshot not reflected in stats: %+v", st)
	}
	if st.WALSegments != 1 {
		t.Fatalf("superseded segments not truncated: %d live", st.WALSegments)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshot + replay, and the boot reports replayed count 0
	// (the snapshot covered everything).
	e, err = Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st = e.Stats().Durability
	if st.Replayed != 0 {
		t.Fatalf("replayed %d records, snapshot should cover all", st.Replayed)
	}
	res, err := e.Results(0)
	if err != nil || len(res) != 3 {
		t.Fatalf("results after reopen: %v, %v", res, err)
	}
}

// TestNewRejectsDurability pins the API contract that durable engines
// go through Open.
func TestNewRejectsDurability(t *testing.T) {
	if _, err := New(Options{Durability: Durability{Dir: t.TempDir()}}); err == nil {
		t.Fatal("New accepted Options.Durability")
	}
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open accepted empty Durability.Dir")
	}
}

// TestIntervalFsyncLifecycle exercises the interval policy end to end:
// mutations acknowledge without per-op syncs, Close makes the tail
// durable, and a restart recovers everything.
func TestIntervalFsyncLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Durability: Durability{Dir: dir, Fsync: FsyncInterval, SnapshotOps: -1}}
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("flood rescue", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PublishBatch([]string{"flood rescue downtown", "market rally"}, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e, err = Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st := e.Stats().Durability
	if st.Replayed != 2 {
		t.Fatalf("replayed %d records, want 2", st.Replayed)
	}
	res, err := e.Results(0)
	if err != nil || len(res) != 1 {
		t.Fatalf("results after interval-policy recovery: %v, %v", res, err)
	}
}
