// Benchmarks: one testing.B per experiment row of DESIGN.md §5.
//
// Each benchmark runs its experiment at QuickScale (seconds-fast) via
// the shared harness and reports the paper's primary metric — mean
// response time per stream event, per algorithm — as custom benchmark
// outputs (ms_RTA, ms_MRIO, ...). The full-size axes are produced by
// cmd/ctkbench with -scale default|full; see EXPERIMENTS.md for the
// recorded tables.
package ctk_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// runExperiment executes one registry experiment per benchmark
// iteration and reports each series' mean per-event latency.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	sc := bench.QuickScale()
	exp, ok := bench.Experiments(sc)[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(exp, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last == nil {
		return
	}
	t := last.Table()
	lastRow := len(t.XValues) - 1
	for j, col := range t.Columns {
		name := "ms_" + strings.ReplaceAll(col, "=", "")
		b.ReportMetric(t.MS[lastRow][j], name)
	}
}

// BenchmarkFig1a regenerates Figure 1(a): Wiki-Uniform, response time
// vs number of queries.
func BenchmarkFig1a(b *testing.B) { runExperiment(b, "fig1a") }

// BenchmarkFig1b regenerates Figure 1(b): Wiki-Connected, response
// time vs number of queries.
func BenchmarkFig1b(b *testing.B) { runExperiment(b, "fig1b") }

// BenchmarkEffectK regenerates the TKDE-style sweep over the result
// size k.
func BenchmarkEffectK(b *testing.B) { runExperiment(b, "extk") }

// BenchmarkEffectLambda regenerates the TKDE-style sweep over the
// decay rate λ.
func BenchmarkEffectLambda(b *testing.B) { runExperiment(b, "extlambda") }

// BenchmarkEffectQueryLen regenerates the TKDE-style sweep over query
// length.
func BenchmarkEffectQueryLen(b *testing.B) { runExperiment(b, "extqlen") }

// BenchmarkUBImpl runs the ablation over MRIO's three UB*
// implementations (segment tree, block maxima, sparse snapshot).
func BenchmarkUBImpl(b *testing.B) { runExperiment(b, "ablub") }

// BenchmarkShards runs the sharded-monitor scaling extension.
func BenchmarkShards(b *testing.B) { runExperiment(b, "ablshard") }

// BenchmarkBatchIngest compares batch (ProcessBatch, 64-document
// chunks) against single-document ingestion across shard counts.
func BenchmarkBatchIngest(b *testing.B) { runExperiment(b, "ablbatch") }

// BenchmarkBalance runs the cost-balanced partitioning ablation:
// count vs mass intra-shard partition boundaries at 4 workers, on the
// skewed Hot workload and the Uniform control.
func BenchmarkBalance(b *testing.B) { runExperiment(b, "ablbalance") }

// BenchmarkParallelMatch replays the identical single-shard timeline
// at intra-shard parallelism 1, 2 and 4.
func BenchmarkParallelMatch(b *testing.B) { runExperiment(b, "ablpar") }

// BenchmarkNotifyDelivery runs the subscriber-fleet fan-out harness at
// quick scale: the identical open-loop timeline replayed against
// growing fleets, reporting publish-path p99 (must stay flat) and the
// drain tier's delivery p99 per fleet size.
func BenchmarkNotifyDelivery(b *testing.B) {
	sc := bench.QuickScale()
	var last *bench.NotifyResult
	for i := 0; i < b.N; i++ {
		res, err := bench.RunNotify(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last == nil {
		return
	}
	for _, c := range last.Cells {
		name := strings.ReplaceAll(c.Series, "=", "")
		b.ReportMetric(c.PubP99MS, "pubp99ms_"+name)
		b.ReportMetric(c.DeliverP99MS, "delp99ms_"+name)
	}
	b.ReportMetric(last.StallRatio, "stallratio")
}

// BenchmarkChurn runs the query-churn ablation: sustained
// add/remove-under-load with legacy synchronous generation rebuilds
// versus background builds, on identical timelines (parity-checked by
// the harness). Reported metrics are the per-mode ingestion p99 and
// registration p99 in milliseconds.
func BenchmarkChurn(b *testing.B) {
	sc := bench.QuickScale()
	var last *bench.ChurnResult
	for i := 0; i < b.N; i++ {
		res, err := bench.RunChurn(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last == nil {
		return
	}
	for _, c := range last.Cells {
		b.ReportMetric(c.IngestP99MS, "ingp99ms_"+c.Series)
		b.ReportMetric(c.AddP99MS, "addp99ms_"+c.Series)
	}
}
