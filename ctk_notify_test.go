package ctk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// notifyFixture builds an engine with n registered queries over a
// shared topical vocabulary, so published documents reliably hit
// several queries' top-k.
func notifyFixture(t *testing.T, opts Options, n int) (*Engine, []QueryID) {
	t.Helper()
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	topics := []string{
		"solar panel efficiency record",
		"football championship goal striker",
		"stock market rally recession",
		"quantum computing error correction",
		"rainfall flood warning river",
	}
	ids := make([]QueryID, n)
	for i := range ids {
		id, err := e.Register(fmt.Sprintf("%s q%d", topics[i%len(topics)], i), 3)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return e, ids
}

// notifyDoc deterministically generates document text drawing from the
// fixture vocabulary.
func notifyDoc(rng *rand.Rand, i int) string {
	words := []string{
		"solar", "panel", "efficiency", "record", "football",
		"championship", "goal", "striker", "stock", "market", "rally",
		"recession", "quantum", "computing", "error", "correction",
		"rainfall", "flood", "warning", "river", "update", "report",
	}
	out := fmt.Sprintf("doc%d", i)
	for w := 0; w < 6; w++ {
		out += " " + words[rng.Intn(len(words))]
	}
	return out
}

// TestSubscribeDeliversChanges: the initial snapshot arrives first;
// every later update reflects a real change with Seq increasing by 1
// when nothing is dropped, and its payload equals the polled
// ResultsSeq snapshot at the same Seq — the push/poll parity gate.
func TestSubscribeDeliversChanges(t *testing.T) {
	e, ids := notifyFixture(t, Options{Lambda: 0.001, SnippetLength: 40, Shards: 2, Parallelism: 2}, 10)
	watch := ids[0]
	ch, cancel, err := e.Subscribe(watch, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	first := <-ch
	if first.Query != watch || first.Seq != 0 || len(first.Results) != 0 {
		t.Fatalf("initial snapshot = %+v", first)
	}

	// Publish single-threadedly, recording the polled snapshot at each
	// sequence number.
	rng := rand.New(rand.NewSource(11))
	polled := map[uint64][]Result{0: {}}
	for i := 0; i < 60; i++ {
		if _, err := e.Publish(notifyDoc(rng, i), float64(i)); err != nil {
			t.Fatal(err)
		}
		res, seq, err := e.ResultsSeq(watch)
		if err != nil {
			t.Fatal(err)
		}
		// Record the first poll at each seq: it shares the push's stream
		// time, so present-time scores match exactly. Later polls at the
		// same seq see the same docs under more decay.
		if _, ok := polled[seq]; !ok {
			polled[seq] = res
		}
	}

	got := 0
	last := uint64(0)
	for {
		select {
		case u := <-ch:
			if u.Seq != last+1 {
				t.Fatalf("seq jumped %d → %d with an idle subscriber", last, u.Seq)
			}
			last = u.Seq
			want, ok := polled[u.Seq]
			if !ok {
				t.Fatalf("update at unpolled seq %d", u.Seq)
			}
			if len(u.Results) != len(want) {
				t.Fatalf("seq %d: pushed %d results, polled %d", u.Seq, len(u.Results), len(want))
			}
			for i := range want {
				if u.Results[i] != want[i] {
					t.Fatalf("seq %d rank %d: pushed %+v, polled %+v", u.Seq, i, u.Results[i], want[i])
				}
			}
			got++
		default:
			if got == 0 {
				t.Fatal("no updates delivered; fixture degenerate")
			}
			if _, finalSeq, _ := e.ResultsSeq(watch); finalSeq != last {
				t.Fatalf("final seq %d but last delivered %d", finalSeq, last)
			}
			return
		}
	}
}

// TestSubscribeCoalesces: a buffer-1 subscriber that never reads while
// many changes happen receives exactly the latest state, with the drop
// visible as a Seq gap.
func TestSubscribeCoalesces(t *testing.T) {
	e, ids := notifyFixture(t, Options{Lambda: 0.001}, 5)
	watch := ids[1]
	ch, cancel, err := e.Subscribe(watch, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 80; i++ {
		if _, err := e.Publish(notifyDoc(rng, i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	want, seq, err := e.ResultsSeq(watch)
	if err != nil {
		t.Fatal(err)
	}
	if seq < 2 {
		t.Fatalf("query changed only %d times; fixture degenerate", seq)
	}
	u := <-ch // the single buffered slot holds the newest update
	if u.Seq != seq {
		t.Fatalf("coalesced update at seq %d, want latest %d", u.Seq, seq)
	}
	if len(u.Results) != len(want) {
		t.Fatalf("coalesced payload %d results, want %d", len(u.Results), len(want))
	}
	// Scores are present-time decayed, so they shift between the push
	// and this later poll; the membership and order must match exactly.
	for i := range want {
		if u.Results[i].DocID != want[i].DocID {
			t.Fatalf("rank %d: doc %d != %d", i, u.Results[i].DocID, want[i].DocID)
		}
	}
}

// TestSubscribeLifecycle: unregistering the query or closing the
// engine ends the stream; subscribing to unknown or removed queries
// fails.
func TestSubscribeLifecycle(t *testing.T) {
	e, ids := notifyFixture(t, Options{Lambda: 0.001}, 4)
	ch, cancel, err := e.Subscribe(ids[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	<-ch // initial snapshot
	if err := e.Unregister(ids[0]); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("update after unregister")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("channel not closed by unregister")
	}
	if _, _, err := e.Subscribe(ids[0], 1); err == nil {
		t.Fatal("subscribe to removed query succeeded")
	}
	if _, _, err := e.Subscribe(QueryID(999), 1); err == nil {
		t.Fatal("subscribe to unknown query succeeded")
	}

	ch2, cancel2, err := e.Subscribe(ids[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	<-ch2
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-ch2:
		if ok {
			t.Fatal("update after engine close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("channel not closed by engine close")
	}
	if _, _, err := e.Subscribe(ids[2], 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe on closed engine: %v", err)
	}
}

// TestSubscribeChurnHammer subscribes and cancels watchers from many
// goroutines while PublishBatch ingestion runs — the -race gate for
// broker churn against the live publish path. Received sequence
// numbers must be strictly increasing per subscription and every
// received payload must be a plausible snapshot (correct query).
func TestSubscribeChurnHammer(t *testing.T) {
	e, ids := notifyFixture(t, Options{Lambda: 0.001, Shards: 2, Parallelism: 2}, 12)

	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		rng := rand.New(rand.NewSource(17))
		at := 0.0
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]string, 4)
			for j := range batch {
				batch[j] = notifyDoc(rng, i*4+j)
			}
			at++
			if _, err := e.PublishBatch(batch, at); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				id := ids[(w+i)%len(ids)]
				ch, cancel, err := e.Subscribe(id, 1+i%2)
				if err != nil {
					t.Error(err)
					return
				}
				last := uint64(0)
				firstRead := true
				for r := 0; r < 1+i%3; r++ {
					select {
					case u, ok := <-ch:
						if !ok {
							t.Error("channel closed mid-watch")
							return
						}
						if u.Query != id {
							t.Errorf("update for query %d on %d's stream", u.Query, id)
							return
						}
						if !firstRead && u.Seq <= last {
							t.Errorf("seq not increasing: %d after %d", u.Seq, last)
							return
						}
						last, firstRead = u.Seq, false
					case <-time.After(5 * time.Second):
						t.Error("starved watcher")
						return
					}
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pubWG.Wait()
	if st := e.Stats(); st.Matched == 0 {
		t.Fatal("hammer stream never matched anything")
	}
}

// TestUnregisterSweepsSnippets: documents referenced only by a removed
// query's top-k leave the snippet map at unregister time instead of
// lingering until a later publish crosses the pruning watermark.
func TestUnregisterSweepsSnippets(t *testing.T) {
	e, err := New(Options{Lambda: 0.001, SnippetLength: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Two disjoint-vocabulary queries: their top-k never share docs.
	solar, err := e.Register("solar panel efficiency", 4)
	if err != nil {
		t.Fatal(err)
	}
	football, err := e.Register("football championship goal", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Publish(fmt.Sprintf("solar panel efficiency report %d", i), float64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Publish(fmt.Sprintf("football championship goal recap %d", i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sres, err := e.Results(solar)
	if err != nil || len(sres) == 0 {
		t.Fatalf("solar results: %v (%d)", err, len(sres))
	}
	before := e.Stats().Snippets
	if before == 0 {
		t.Fatal("no snippets retained; fixture degenerate")
	}
	if err := e.Unregister(solar); err != nil {
		t.Fatal(err)
	}
	after := e.Stats().Snippets
	if after >= before {
		t.Fatalf("Snippets = %d after unregister, want < %d", after, before)
	}
	// The surviving query's snippets are intact.
	fres, err := e.Results(football)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fres {
		if r.Snippet == "" {
			t.Fatalf("surviving query lost snippet for doc %d", r.DocID)
		}
	}
}
