package ctk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// notifyFixture builds an engine with n registered queries over a
// shared topical vocabulary, so published documents reliably hit
// several queries' top-k.
func notifyFixture(t *testing.T, opts Options, n int) (*Engine, []QueryID) {
	t.Helper()
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	topics := []string{
		"solar panel efficiency record",
		"football championship goal striker",
		"stock market rally recession",
		"quantum computing error correction",
		"rainfall flood warning river",
	}
	ids := make([]QueryID, n)
	for i := range ids {
		id, err := e.Register(fmt.Sprintf("%s q%d", topics[i%len(topics)], i), 3)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return e, ids
}

// notifyDoc deterministically generates document text drawing from the
// fixture vocabulary.
func notifyDoc(rng *rand.Rand, i int) string {
	words := []string{
		"solar", "panel", "efficiency", "record", "football",
		"championship", "goal", "striker", "stock", "market", "rally",
		"recession", "quantum", "computing", "error", "correction",
		"rainfall", "flood", "warning", "river", "update", "report",
	}
	out := fmt.Sprintf("doc%d", i)
	for w := 0; w < 6; w++ {
		out += " " + words[rng.Intn(len(words))]
	}
	return out
}

// TestSubscribeDeliversChanges: the initial snapshot arrives first;
// every later update reflects a real change with Seq increasing by 1
// when nothing is dropped, and its payload equals the polled
// ResultsSeq snapshot at the same Seq — the push/poll parity gate.
func TestSubscribeDeliversChanges(t *testing.T) {
	e, ids := notifyFixture(t, Options{Lambda: 0.001, SnippetLength: 40, Shards: 2, Parallelism: 2}, 10)
	watch := ids[0]
	ch, cancel, err := e.Subscribe(watch, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	first := <-ch
	if first.Query != watch || first.Seq != 0 || len(first.Results) != 0 {
		t.Fatalf("initial snapshot = %+v", first)
	}

	// Publish single-threadedly, recording the polled snapshot at each
	// sequence number. Flushing the broker after each publish forces
	// the drain tier to materialize before the stream clock moves
	// again, so the pushed payload and the first poll at the same Seq
	// share a stream time (and with a roomy buffer nothing coalesces —
	// Seq advances by exactly one per delivery).
	rng := rand.New(rand.NewSource(11))
	polled := map[uint64][]Result{0: {}}
	for i := 0; i < 60; i++ {
		if _, err := e.Publish(notifyDoc(rng, i), float64(i)); err != nil {
			t.Fatal(err)
		}
		e.flushNotify()
		res, seq, err := e.ResultsSeq(watch)
		if err != nil {
			t.Fatal(err)
		}
		// Record the first poll at each seq: it shares the push's stream
		// time, so present-time scores match exactly. Later polls at the
		// same seq see the same docs under more decay.
		if _, ok := polled[seq]; !ok {
			polled[seq] = res
		}
	}

	got := 0
	last := uint64(0)
	for {
		select {
		case u := <-ch:
			if u.Seq != last+1 {
				t.Fatalf("seq jumped %d → %d with an idle subscriber", last, u.Seq)
			}
			last = u.Seq
			want, ok := polled[u.Seq]
			if !ok {
				t.Fatalf("update at unpolled seq %d", u.Seq)
			}
			if len(u.Results) != len(want) {
				t.Fatalf("seq %d: pushed %d results, polled %d", u.Seq, len(u.Results), len(want))
			}
			for i := range want {
				if u.Results[i] != want[i] {
					t.Fatalf("seq %d rank %d: pushed %+v, polled %+v", u.Seq, i, u.Results[i], want[i])
				}
			}
			got++
		default:
			if got == 0 {
				t.Fatal("no updates delivered; fixture degenerate")
			}
			if _, finalSeq, _ := e.ResultsSeq(watch); finalSeq != last {
				t.Fatalf("final seq %d but last delivered %d", finalSeq, last)
			}
			return
		}
	}
}

// TestSubscribeCoalesces: a buffer-1 subscriber that never reads while
// many changes happen receives exactly the latest state, with the drop
// visible as a Seq gap.
func TestSubscribeCoalesces(t *testing.T) {
	e, ids := notifyFixture(t, Options{Lambda: 0.001}, 5)
	watch := ids[1]
	ch, cancel, err := e.Subscribe(watch, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 80; i++ {
		if _, err := e.Publish(notifyDoc(rng, i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the drain tier: after the flush the buffer's single slot
	// holds the final materialized state (everything older was dropped
	// for newer as it arrived).
	e.flushNotify()
	want, seq, err := e.ResultsSeq(watch)
	if err != nil {
		t.Fatal(err)
	}
	if seq < 2 {
		t.Fatalf("query changed only %d times; fixture degenerate", seq)
	}
	u := <-ch // the single buffered slot holds the newest update
	if u.Seq != seq {
		t.Fatalf("coalesced update at seq %d, want latest %d", u.Seq, seq)
	}
	if len(u.Results) != len(want) {
		t.Fatalf("coalesced payload %d results, want %d", len(u.Results), len(want))
	}
	// Scores are present-time decayed, so they shift between the push
	// and this later poll; the membership and order must match exactly.
	for i := range want {
		if u.Results[i].DocID != want[i].DocID {
			t.Fatalf("rank %d: doc %d != %d", i, u.Results[i].DocID, want[i].DocID)
		}
	}
}

// TestSubscribeLifecycle: unregistering the query or closing the
// engine ends the stream; subscribing to unknown or removed queries
// fails.
func TestSubscribeLifecycle(t *testing.T) {
	e, ids := notifyFixture(t, Options{Lambda: 0.001}, 4)
	ch, cancel, err := e.Subscribe(ids[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	<-ch // initial snapshot
	if err := e.Unregister(ids[0]); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("update after unregister")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("channel not closed by unregister")
	}
	if _, _, err := e.Subscribe(ids[0], 1); err == nil {
		t.Fatal("subscribe to removed query succeeded")
	}
	if _, _, err := e.Subscribe(QueryID(999), 1); err == nil {
		t.Fatal("subscribe to unknown query succeeded")
	}

	ch2, cancel2, err := e.Subscribe(ids[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	<-ch2
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-ch2:
		if ok {
			t.Fatal("update after engine close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("channel not closed by engine close")
	}
	if _, _, err := e.Subscribe(ids[2], 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe on closed engine: %v", err)
	}
}

// TestSubscribeChurnHammer subscribes and cancels watchers from many
// goroutines while PublishBatch ingestion runs — the -race gate for
// broker churn against the live publish path. Received sequence
// numbers must be strictly increasing per subscription and every
// received payload must be a plausible snapshot (correct query).
func TestSubscribeChurnHammer(t *testing.T) {
	e, ids := notifyFixture(t, Options{Lambda: 0.001, Shards: 2, Parallelism: 2}, 12)

	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		rng := rand.New(rand.NewSource(17))
		at := 0.0
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]string, 4)
			for j := range batch {
				batch[j] = notifyDoc(rng, i*4+j)
			}
			at++
			if _, err := e.PublishBatch(batch, at); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				id := ids[(w+i)%len(ids)]
				ch, cancel, err := e.Subscribe(id, 1+i%2)
				if err != nil {
					t.Error(err)
					return
				}
				last := uint64(0)
				firstRead := true
				for r := 0; r < 1+i%3; r++ {
					select {
					case u, ok := <-ch:
						if !ok {
							t.Error("channel closed mid-watch")
							return
						}
						if u.Query != id {
							t.Errorf("update for query %d on %d's stream", u.Query, id)
							return
						}
						if !firstRead && u.Seq <= last {
							t.Errorf("seq not increasing: %d after %d", u.Seq, last)
							return
						}
						last, firstRead = u.Seq, false
					case <-time.After(5 * time.Second):
						t.Error("starved watcher")
						return
					}
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pubWG.Wait()
	if st := e.Stats(); st.Matched == 0 {
		t.Fatal("hammer stream never matched anything")
	}
}

// TestSubscribeTopNFilter: a TopN=1 watcher hears about changes to the
// leader and sleeps through churn below it, with the suppressed
// updates visible as a Seq gap.
func TestSubscribeTopNFilter(t *testing.T) {
	e, err := New(Options{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	id, err := e.Register("solar panel", 3)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := e.SubscribeOpts(id, SubscribeOptions{Buffer: 8, TopN: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if first := <-ch; first.Seq != 0 {
		t.Fatalf("initial snapshot = %+v", first)
	}

	// A perfect match takes rank 1: prefix change, delivered.
	if _, err := e.Publish("solar panel", 1); err != nil {
		t.Fatal(err)
	}
	e.flushNotify()
	u := <-ch
	if u.Seq != 1 || len(u.Results) != 1 {
		t.Fatalf("first change = %+v", u)
	}
	leader := u.Results[0].DocID

	// A weak match (one query term diluted among strangers) enters the
	// top-3 below the leader: a real change (seq 2) the TopN=1 watcher
	// must not hear about.
	if _, err := e.Publish("solar outage rumor mill", 2); err != nil {
		t.Fatal(err)
	}
	e.flushNotify()
	if _, seq, _ := e.ResultsSeq(id); seq != 2 {
		t.Fatalf("weak doc did not bump seq (got %d); fixture degenerate", seq)
	}
	select {
	case u := <-ch:
		t.Fatalf("below-prefix change delivered: %+v", u)
	default:
	}

	// A fresh perfect match displaces the leader: delivered, and its
	// Seq exposes the suppressed update.
	if _, err := e.Publish("solar panel", 3); err != nil {
		t.Fatal(err)
	}
	e.flushNotify()
	u = <-ch
	if u.Seq != 3 {
		t.Fatalf("leader change = %+v, want seq 3 (gap over suppressed seq 2)", u)
	}
	if u.Results[0].DocID == leader {
		t.Fatal("leader did not change; fixture degenerate")
	}
}

// TestSubscribeMinRankChangeFilter: MinRankChange=1 passes every
// change; an unsatisfiably large threshold suppresses everything after
// the initial snapshot while Seq keeps advancing underneath.
func TestSubscribeMinRankChangeFilter(t *testing.T) {
	e, ids := notifyFixture(t, Options{Lambda: 0.5}, 1)
	watch := ids[0]
	all, cancelAll, err := e.SubscribeOpts(watch, SubscribeOptions{Buffer: 64, MinRankChange: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cancelAll()
	never, cancelNever, err := e.SubscribeOpts(watch, SubscribeOptions{Buffer: 64, MinRankChange: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer cancelNever()
	<-all
	<-never

	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 30; i++ {
		if _, err := e.Publish(notifyDoc(rng, i), float64(i)); err != nil {
			t.Fatal(err)
		}
		e.flushNotify()
	}
	_, finalSeq, err := e.ResultsSeq(watch)
	if err != nil {
		t.Fatal(err)
	}
	if finalSeq == 0 {
		t.Fatal("query never changed; fixture degenerate")
	}
	last := uint64(0)
	for {
		select {
		case u := <-all:
			if u.Seq <= last {
				t.Fatalf("seq not increasing: %d after %d", u.Seq, last)
			}
			last = u.Seq
			continue
		default:
		}
		break
	}
	if last != finalSeq {
		t.Fatalf("MinRankChange=1 watcher stopped at seq %d, want %d", last, finalSeq)
	}
	select {
	case u := <-never:
		t.Fatalf("unsatisfiable rank threshold delivered %+v", u)
	default:
	}
}

// TestSubscribeMinIntervalRateLimit: after a delivery, further changes
// are held until the interval elapses, then the latest state arrives
// once — held intermediates appear as a Seq gap.
func TestSubscribeMinIntervalRateLimit(t *testing.T) {
	e, ids := notifyFixture(t, Options{Lambda: 0.5}, 1)
	watch := ids[0]
	const interval = 100 * time.Millisecond
	ch, cancel, err := e.SubscribeOpts(watch, SubscribeOptions{Buffer: 8, MinInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	<-ch // initial snapshot starts the rate-limit clock

	// Let the interval lapse so the first real change delivers
	// immediately.
	time.Sleep(interval + 50*time.Millisecond)
	rng := rand.New(rand.NewSource(29))
	if _, err := e.Publish(notifyDoc(rng, 0), 1); err != nil {
		t.Fatal(err)
	}
	e.flushNotify()
	var u Update
	select {
	case u = <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("post-interval change not delivered")
	}
	first := u.Seq
	if first == 0 {
		t.Fatal("no change on first publish; fixture degenerate")
	}

	// A burst right after the delivery parks behind the interval; the
	// deferred delivery carries the newest state.
	for i := 1; i <= 5; i++ {
		if _, err := e.Publish(notifyDoc(rng, i), 1+float64(i)*0.01); err != nil {
			t.Fatal(err)
		}
	}
	e.flushNotify() // Flush hands off the intake; parked deliveries stay parked.
	_, finalSeq, err := e.ResultsSeq(watch)
	if err != nil {
		t.Fatal(err)
	}
	if finalSeq <= first {
		t.Fatal("burst changed nothing; fixture degenerate")
	}
	select {
	case u = <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("rate-limited delivery never arrived")
	}
	if u.Seq != finalSeq {
		t.Fatalf("deferred delivery at seq %d, want latest %d", u.Seq, finalSeq)
	}
}

// TestNotifyParityAcrossShapes is the async-fan-out parity gate: for
// every engine/broker shape, the same publish sequence must leave
// every watcher at exactly the state the poll API reports — same final
// Seq, same final top-k — with strictly increasing delivered Seqs in
// between. Monitor sharding, intra-shard parallelism and the broker
// shard count are all result-invariant.
func TestNotifyParityAcrossShapes(t *testing.T) {
	shapes := []struct {
		name string
		opts Options
	}{
		{"single", Options{Lambda: 0.01}},
		{"monitor-sharded", Options{Lambda: 0.01, Shards: 2, Parallelism: 2}},
		{"broker-1", Options{Lambda: 0.01, BrokerShards: 1}},
		{"broker-8", Options{Lambda: 0.01, Shards: 2, BrokerShards: 8}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			e, ids := notifyFixture(t, shape.opts, 8)
			type watcher struct {
				id   QueryID
				seqs []uint64
				last Update
			}
			watchers := make([]*watcher, len(ids))
			var wg sync.WaitGroup
			for i, id := range ids {
				w := &watcher{id: id}
				watchers[i] = w
				ch, _, err := e.Subscribe(id, 4)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for u := range ch {
						w.seqs = append(w.seqs, u.Seq)
						w.last = u
					}
				}()
			}

			rng := rand.New(rand.NewSource(41))
			at := 0.0
			for i := 0; i < 40; i++ {
				at++
				if _, err := e.Publish(notifyDoc(rng, i), at); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 10; i++ {
				batch := make([]string, 4)
				for j := range batch {
					batch[j] = notifyDoc(rng, 1000+i*4+j)
				}
				at++
				if _, err := e.PublishBatch(batch, at); err != nil {
					t.Fatal(err)
				}
			}
			e.flushNotify()

			// Oracle: the poll API at the quiesced final state.
			type oracle struct {
				seq uint64
				res []Result
			}
			want := make(map[QueryID]oracle, len(ids))
			changed := 0
			for _, id := range ids {
				res, seq, err := e.ResultsSeq(id)
				if err != nil {
					t.Fatal(err)
				}
				want[id] = oracle{seq: seq, res: res}
				if seq > 0 {
					changed++
				}
			}
			if changed == 0 {
				t.Fatal("no query ever changed; fixture degenerate")
			}

			if err := e.Close(); err != nil { // closes every stream
				t.Fatal(err)
			}
			wg.Wait()

			for _, w := range watchers {
				if len(w.seqs) == 0 {
					t.Fatalf("query %d: no deliveries, not even the initial snapshot", w.id)
				}
				for i := 1; i < len(w.seqs); i++ {
					if w.seqs[i] <= w.seqs[i-1] {
						t.Fatalf("query %d: seqs not strictly increasing: %v", w.id, w.seqs)
					}
				}
				o := want[w.id]
				if got := w.seqs[len(w.seqs)-1]; got != o.seq {
					t.Fatalf("query %d: converged at seq %d, poll says %d", w.id, got, o.seq)
				}
				if len(w.last.Results) != len(o.res) {
					t.Fatalf("query %d: final push has %d results, poll %d", w.id, len(w.last.Results), len(o.res))
				}
				for i := range o.res {
					if w.last.Results[i].DocID != o.res[i].DocID {
						t.Fatalf("query %d rank %d: pushed doc %d, polled doc %d",
							w.id, i, w.last.Results[i].DocID, o.res[i].DocID)
					}
				}
			}
		})
	}
}

// TestUnregisterSweepsSnippets: documents referenced only by a removed
// query's top-k leave the snippet map at unregister time instead of
// lingering until a later publish crosses the pruning watermark.
func TestUnregisterSweepsSnippets(t *testing.T) {
	e, err := New(Options{Lambda: 0.001, SnippetLength: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Two disjoint-vocabulary queries: their top-k never share docs.
	solar, err := e.Register("solar panel efficiency", 4)
	if err != nil {
		t.Fatal(err)
	}
	football, err := e.Register("football championship goal", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Publish(fmt.Sprintf("solar panel efficiency report %d", i), float64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Publish(fmt.Sprintf("football championship goal recap %d", i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sres, err := e.Results(solar)
	if err != nil || len(sres) == 0 {
		t.Fatalf("solar results: %v (%d)", err, len(sres))
	}
	before := e.Stats().Snippets
	if before == 0 {
		t.Fatal("no snippets retained; fixture degenerate")
	}
	if err := e.Unregister(solar); err != nil {
		t.Fatal(err)
	}
	after := e.Stats().Snippets
	if after >= before {
		t.Fatalf("Snippets = %d after unregister, want < %d", after, before)
	}
	// The surviving query's snippets are intact.
	fres, err := e.Results(football)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fres {
		if r.Snippet == "" {
			t.Fatalf("surviving query lost snippet for doc %d", r.DocID)
		}
	}
}
