package ctk

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// testVocab is a small word list for seeded synthetic documents.
var testVocab = []string{
	"solar", "panel", "efficiency", "market", "crash", "football",
	"championship", "goal", "recession", "parliament", "storm",
	"satellite", "launch", "vaccine", "trial", "drought", "harvest",
	"election", "debate", "monitoring", "stream", "database", "index",
	"query", "ranking", "decay", "topic", "cluster", "signal", "noise",
}

// synthTexts generates n seeded random documents over testVocab.
func synthTexts(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	texts := make([]string, n)
	for i := range texts {
		words := make([]string, 5+rng.Intn(12))
		for j := range words {
			words[j] = testVocab[rng.Intn(len(testVocab))]
		}
		texts[i] = strings.Join(words, " ")
	}
	return texts
}

func registerTestQueries(t *testing.T, e *Engine) []QueryID {
	t.Helper()
	var ids []QueryID
	for _, kw := range []string{
		"solar panel efficiency",
		"football championship goal",
		"market crash recession",
		"database query ranking",
		"vaccine trial monitoring",
	} {
		id, err := e.Register(kw, 4)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

// TestPublishBatchParity: PublishBatch must be observationally
// identical to publishing each text individually at the same time —
// same document IDs, same (bit-identical) scores, same snippets —
// including when the engine shards its query set.
func TestPublishBatchParity(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opts := Options{Lambda: 0.01, Shards: shards, SnippetLength: 40, Stemming: true}
			single, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer single.Close()
			batch, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer batch.Close()

			ids := registerTestQueries(t, single)
			registerTestQueries(t, batch)

			texts := synthTexts(120, 21)
			const chunk = 8
			for i := 0; i < len(texts); i += chunk {
				part := texts[i:min(i+chunk, len(texts))]
				at := float64(i / chunk)
				for _, text := range part {
					if _, err := single.Publish(text, at); err != nil {
						t.Fatal(err)
					}
				}
				st, err := batch.PublishBatch(part, at)
				if err != nil {
					t.Fatal(err)
				}
				if st.FirstDocID != uint64(i) || st.Docs != len(part) {
					t.Fatalf("batch stats = %+v at offset %d", st, i)
				}
			}

			matched := 0
			for _, id := range ids {
				a, err := single.Results(id)
				if err != nil {
					t.Fatal(err)
				}
				b, err := batch.Results(id)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("query %d: %d vs %d results", id, len(a), len(b))
				}
				matched += len(a)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("query %d rank %d differs: %+v vs %+v", id, i, a[i], b[i])
					}
				}
			}
			if matched == 0 {
				t.Fatal("no results anywhere; fixture degenerate")
			}
			sa, sb := single.Stats(), batch.Stats()
			if sa.Documents != sb.Documents || sa.Matched != sb.Matched {
				t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
			}
		})
	}
}

// TestPublishBatchConcurrent hammers PublishBatch and Publish from
// many goroutines at a shared timestamp; with -race this checks the
// split analysis/hand-off locking.
func TestPublishBatchConcurrent(t *testing.T) {
	e, err := New(Options{Lambda: 0.01, Shards: 4, SnippetLength: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	registerTestQueries(t, e)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			texts := synthTexts(40, int64(100+w))
			for i := 0; i < len(texts); i += 5 {
				if _, err := e.PublishBatch(texts[i:i+5], 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := e.Stats(); st.Documents != 8*40 {
		t.Fatalf("Documents = %d, want %d", st.Documents, 8*40)
	}
}

// TestRejectedPublishLeavesNoTrace: a publication rejected for time
// regression must not leave idf observations or document IDs behind —
// a corrected retry scores identically to a clean engine that never
// saw the failure.
func TestRejectedPublishLeavesNoTrace(t *testing.T) {
	opts := Options{Lambda: 0.01, Shards: 2, SnippetLength: 30}
	clean, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	dirty, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dirty.Close()
	ids := registerTestQueries(t, clean)
	registerTestQueries(t, dirty)

	texts := synthTexts(30, 33)
	for _, e := range []*Engine{clean, dirty} {
		if _, err := e.PublishBatch(texts[:10], 5); err != nil {
			t.Fatal(err)
		}
	}
	// Stale timestamps: rejected by both the single and batch paths.
	if _, err := dirty.Publish(texts[10], 1); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("stale Publish = %v, want ErrTimeRegression", err)
	}
	if _, err := dirty.PublishBatch(texts[10:20], 1); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("stale PublishBatch = %v, want ErrTimeRegression", err)
	}
	// Corrected retries must now behave as if the failures never
	// happened: same document IDs, same (bit-identical) scores.
	for _, e := range []*Engine{clean, dirty} {
		st, err := e.PublishBatch(texts[10:20], 6)
		if err != nil {
			t.Fatal(err)
		}
		if st.FirstDocID != 10 {
			t.Fatalf("FirstDocID = %d, want 10 (rejected publications burned IDs)", st.FirstDocID)
		}
	}
	for _, id := range ids {
		a, err := clean.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dirty.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d rank %d differs after rejected retry: %+v vs %+v", id, i, a[i], b[i])
			}
		}
	}
}

// TestEngineClose verifies the drain-and-refuse contract.
func TestEngineClose(t *testing.T) {
	e, err := New(Options{Shards: 2, SnippetLength: 20})
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.Register("solar panel", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PublishBatch([]string{"solar panel news", "other text"}, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Publish("more", 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Publish after Close = %v, want ErrClosed", err)
	}
	if _, err := e.PublishBatch([]string{"more"}, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("PublishBatch after Close = %v, want ErrClosed", err)
	}
	// Even an empty batch reports the closed state, matching the
	// monitor layer's behavior.
	if _, err := e.PublishBatch(nil, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("empty PublishBatch after Close = %v, want ErrClosed", err)
	}
	if _, err := e.Register("anything else", 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register after Close = %v, want ErrClosed", err)
	}
	// Results remain readable after Close.
	res, err := e.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Snippet == "" {
		t.Fatalf("results lost after Close: %+v", res)
	}
}
