package ctk

import (
	"fmt"
	"testing"
)

// TestPublishSteadyStateZeroAlloc is the PR's allocation gate: once the
// engine is warm — vocabulary interned, scratch buffers grown, queries
// folded into the flat main generation, every top-k full — a publish
// with metrics enabled must not allocate at all. Every regression this
// gate has caught so far was a closure or per-call slice sneaking back
// into the publish path, so keep it exact (== 0, no tolerance).
func TestPublishSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the gate runs in the non-race pass")
	}
	e, err := New(Options{
		// Fold registrations into the flat main generation immediately:
		// the default threshold (1024) would leave this tiny query set
		// in the delta segment forever, exercising the wrong path.
		RebuildThreshold: 4,
		Rebuild:          "sync",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 8; i++ {
		if _, err := e.Register(fmt.Sprintf("alpha beta topic%d", i), 3); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-lowercased texts: strings.ToLower then returns its input and
	// the analyze stage stays in place. Mixed-case input pays one string
	// copy per token — correct, just not what this gate measures.
	texts := make([]string, 64)
	for i := range texts {
		texts[i] = fmt.Sprintf("alpha beta gamma delta topic%d word%d", i%8, i)
	}
	at := 0.0
	publish := func(i int) {
		at++
		if _, err := e.Publish(texts[i%len(texts)], at); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: intern every term, fill every top-k, grow all scratch
	// (token slices, weighting scratch, cursor arenas, broker topics).
	for i := 0; i < 4*len(texts); i++ {
		publish(i)
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		publish(i)
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state Publish allocates %.2f times per call, want 0", avg)
	}
	if st := e.Stats(); st.ScratchGrows == 0 {
		t.Fatal("ScratchGrows never counted a warm-up growth; is the counter wired?")
	}
}
