//go:build !race

package ctk

// raceEnabled reports whether the race detector is compiled in; the
// allocation gates skip under it (its instrumentation allocates).
const raceEnabled = false
