// Command ctkbench runs the reproduction experiments and prints each
// figure/table in the row/series layout of the paper.
//
// Usage:
//
//	ctkbench -list
//	ctkbench -exp fig1a
//	ctkbench -exp all -scale full
//	ctkbench -exp fig1b -scale quick -quiet
//
// Scales: quick (seconds), default (minutes), full (paper axis, up to
// 4·10⁶ queries — expect a long run and ≥16 GB of RAM).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		expID = flag.String("exp", "", "experiment id (fig1a, fig1b, extk, extlambda, extqlen, ablub, ablshard, ablbatch, ablpar, ablnotify, ablbalance) or 'all'")
		scale = flag.String("scale", "default", "quick | default | full")
		list  = flag.Bool("list", false, "list available experiments and exit")
		quiet = flag.Bool("quiet", false, "suppress per-cell progress lines")
	)
	flag.Parse()

	sc, err := parseScale(*scale)
	if err != nil {
		fatal(err)
	}
	exps := bench.Experiments(sc)

	if *list {
		for _, id := range bench.IDs(sc) {
			fmt.Printf("%-10s %s\n", id, exps[id].Title)
		}
		return
	}
	if *expID == "" {
		flag.Usage()
		os.Exit(2)
	}

	var ids []string
	if *expID == "all" {
		ids = bench.IDs(sc)
	} else {
		for _, id := range strings.Split(*expID, ",") {
			if _, ok := exps[id]; !ok {
				fatal(fmt.Errorf("unknown experiment %q (use -list)", id))
			}
			ids = append(ids, id)
		}
	}

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	for _, id := range ids {
		exp := exps[id]
		fmt.Fprintf(os.Stderr, "== running %s (%d series × %d points, warmup %d, measure %d)\n",
			id, len(exp.Series), len(exp.Points), exp.Warmup, exp.Measure)
		res, err := bench.Run(exp, progress)
		if err != nil {
			fatal(err)
		}
		res.Render(os.Stdout)
	}
}

func parseScale(s string) (bench.Scale, error) {
	switch s {
	case "quick":
		return bench.QuickScale(), nil
	case "default":
		return bench.DefaultScale(), nil
	case "full":
		return bench.FullScale(), nil
	}
	return bench.Scale{}, fmt.Errorf("unknown scale %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctkbench:", err)
	os.Exit(1)
}
