// Command ctkbench runs the reproduction experiments and prints each
// figure/table in the row/series layout of the paper.
//
// Usage:
//
//	ctkbench -list
//	ctkbench -exp fig1a
//	ctkbench -exp all -scale full
//	ctkbench -exp fig1b -scale quick -quiet
//	ctkbench -exp ablchurn -scale quick -json BENCH_churn.json
//
// Scales: quick (seconds), default (minutes), full (paper axis, up to
// 4·10⁶ queries — expect a long run and ≥16 GB of RAM).
//
// -json FILE additionally writes every measured cell as a machine-
// readable report, which CI uses to track the perf trajectory per PR
// (the bench smoke emits BENCH_churn.json from the ablchurn run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
)

// ablChurnID is the churn experiment's registry key. It runs through
// its own harness (bench.RunChurn) rather than the sweep runner: its
// cells carry add-latency percentiles no sweep column has.
const ablChurnID = "ablchurn"

// ablWalID is the durability experiment's registry key. Like ablchurn
// it has its own harness (bench.RunWAL): its cells carry publish-stall
// percentiles and recovery times no sweep column has.
const ablWalID = "ablwal"

// ablObsID is the observability experiment's registry key. Its harness
// (bench.RunObs) compares the instrumented publish path against a
// metrics-disabled build: ms/event overhead and allocs/event delta.
const ablObsID = "ablobs"

// ablHotpathID is the hot-path layout experiment's registry key. Its
// harness (bench.RunHotpath) pairs the flat posting layout against the
// legacy per-term-slice layout on the same warm stream, with a
// bit-identical top-k parity gate.
const ablHotpathID = "ablhotpath"

// ablNotifyID is the fan-out experiment's registry key. Its harness
// (bench.RunNotify) replays an open-loop stream against subscriber
// fleets of increasing size and reports publish-path stall versus
// drain-tier delivery latency.
const ablNotifyID = "ablnotify"

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (fig1a, fig1b, extk, extlambda, extqlen, ablub, ablshard, ablbatch, ablpar, ablnotify, ablbalance, ablchurn, ablwal, ablobs, ablhotpath) or 'all'")
		scale    = flag.String("scale", "default", "quick | default | full")
		list     = flag.Bool("list", false, "list available experiments and exit")
		quiet    = flag.Bool("quiet", false, "suppress per-cell progress lines")
		jsonPath = flag.String("json", "", "write measured cells as JSON to this file")
	)
	flag.Parse()

	sc, err := parseScale(*scale)
	if err != nil {
		fatal(err)
	}
	exps := bench.Experiments(sc)

	if *list {
		for _, id := range bench.IDs(sc) {
			fmt.Printf("%-10s %s\n", id, exps[id].Title)
		}
		fmt.Printf("%-10s %s\n", ablChurnID, bench.ChurnTitle)
		fmt.Printf("%-10s %s\n", ablWalID, bench.WALTitle)
		fmt.Printf("%-10s %s\n", ablObsID, bench.ObsTitle)
		fmt.Printf("%-10s %s\n", ablHotpathID, bench.HotpathTitle)
		fmt.Printf("%-10s %s\n", ablNotifyID, bench.NotifyTitle)
		return
	}
	if *expID == "" {
		flag.Usage()
		os.Exit(2)
	}

	var ids []string
	if *expID == "all" {
		ids = append(bench.IDs(sc), ablChurnID, ablWalID, ablObsID, ablHotpathID, ablNotifyID)
	} else {
		for _, id := range strings.Split(*expID, ",") {
			if _, ok := exps[id]; !ok && id != ablChurnID && id != ablWalID && id != ablObsID && id != ablHotpathID && id != ablNotifyID {
				fatal(fmt.Errorf("unknown experiment %q (use -list)", id))
			}
			ids = append(ids, id)
		}
	}

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	report := bench.Report{Scale: *scale}
	for _, id := range ids {
		if id == ablChurnID {
			fmt.Fprintf(os.Stderr, "== running %s (sync vs background, %d queries, measure %d)\n",
				id, sc.BaseQueries, sc.Measure)
			res, err := bench.RunChurn(sc, progress)
			if err != nil {
				fatal(err)
			}
			res.Render(os.Stdout)
			report.Churn = res
			continue
		}
		if id == ablWalID {
			fmt.Fprintf(os.Stderr, "== running %s (4 persistence modes on the shared publish timeline)\n", id)
			res, err := bench.RunWAL(sc, "", progress)
			if err != nil {
				fatal(err)
			}
			res.Render(os.Stdout)
			report.Wal = res
			continue
		}
		if id == ablObsID {
			fmt.Fprintf(os.Stderr, "== running %s (instrumented vs metrics-off publish path)\n", id)
			res, err := bench.RunObs(sc, progress)
			if err != nil {
				fatal(err)
			}
			res.Render(os.Stdout)
			report.Obs = res
			continue
		}
		if id == ablHotpathID {
			fmt.Fprintf(os.Stderr, "== running %s (flat vs legacy posting layout, parity-gated)\n", id)
			res, err := bench.RunHotpath(sc, progress)
			if err != nil {
				fatal(err)
			}
			res.Render(os.Stdout)
			report.Hotpath = res
			continue
		}
		if id == ablNotifyID {
			fmt.Fprintf(os.Stderr, "== running %s (subscriber fleets on an open-loop schedule)\n", id)
			res, err := bench.RunNotify(sc, progress)
			if err != nil {
				fatal(err)
			}
			res.Render(os.Stdout)
			report.Notify = res
			continue
		}
		exp := exps[id]
		fmt.Fprintf(os.Stderr, "== running %s (%d series × %d points, warmup %d, measure %d)\n",
			id, len(exp.Series), len(exp.Points), exp.Warmup, exp.Measure)
		res, err := bench.Run(exp, progress)
		if err != nil {
			fatal(err)
		}
		res.Render(os.Stdout)
		report.Experiments = append(report.Experiments, bench.ReportSweep{
			ID: id, Title: exp.Title, Cells: res.Cells,
		})
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, report); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "== wrote %s\n", *jsonPath)
	}
}

func writeJSON(path string, report bench.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(report)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parseScale(s string) (bench.Scale, error) {
	switch s {
	case "quick":
		return bench.QuickScale(), nil
	case "default":
		return bench.DefaultScale(), nil
	case "full":
		return bench.FullScale(), nil
	}
	return bench.Scale{}, fmt.Errorf("unknown scale %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctkbench:", err)
	os.Exit(1)
}
