package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/textproc"
)

func TestWriteJSONLRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	err := writeJSONL(path, 3, func(i int) any {
		return docRecord{ID: uint64(i), Terms: []uint32{1, 2}, Weights: []float64{0.5, 0.5}}
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	n := 0
	for sc.Scan() {
		var rec docRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if rec.ID != uint64(n) || len(rec.Terms) != 2 {
			t.Fatalf("line %d: %+v", n, rec)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("wrote %d lines, want 3", n)
	}
}

func TestTermsWeightsHelpers(t *testing.T) {
	v := textproc.Vector{{Term: 3, Weight: 0.25}, {Term: 9, Weight: 0.75}}
	ts := terms(v)
	ws := weights(v)
	if len(ts) != 2 || ts[0] != 3 || ts[1] != 9 {
		t.Fatalf("terms = %v", ts)
	}
	if len(ws) != 2 || ws[0] != 0.25 || ws[1] != 0.75 {
		t.Fatalf("weights = %v", ws)
	}
	if len(terms(nil)) != 0 || len(weights(nil)) != 0 {
		t.Fatal("nil vector helpers wrong")
	}
}
