// Command ctkgen materializes the synthetic corpus and query workloads
// to files, so experiments can be replayed outside the harness or fed
// to other systems.
//
//	ctkgen -docs 10000 -queries 5000 -workload Connected -vocab 20000 -out ./data
//
// Output: <out>/corpus.jsonl (one document per line: id, terms,
// weights) and <out>/queries.jsonl (id, k, terms, weights).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/textproc"
	"repro/internal/workload"
)

type docRecord struct {
	ID      uint64    `json:"id"`
	Terms   []uint32  `json:"terms"`
	Weights []float64 `json:"weights"`
}

type queryRecord struct {
	ID      uint32    `json:"id"`
	K       int       `json:"k"`
	Terms   []uint32  `json:"terms"`
	Weights []float64 `json:"weights"`
}

func main() {
	var (
		nDocs    = flag.Int("docs", 10000, "number of synthetic documents")
		nQueries = flag.Int("queries", 5000, "number of queries")
		kindName = flag.String("workload", "Uniform", "Uniform | Connected | Hot")
		vocab    = flag.Int("vocab", 20000, "vocabulary size")
		k        = flag.Int("k", 10, "result size per query")
		seed     = flag.Int64("seed", 42, "random seed")
		out      = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	kind, err := workload.ParseKind(*kindName)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	model := corpus.WikipediaModel(*vocab)

	gen := corpus.NewGenerator(model, *seed, uint64(*nDocs))
	if err := writeJSONL(filepath.Join(*out, "corpus.jsonl"), *nDocs, func(i int) any {
		d := gen.Next()
		return docRecord{ID: d.ID, Terms: terms(d.Vec), Weights: weights(d.Vec)}
	}); err != nil {
		fatal(err)
	}

	cfg := workload.DefaultConfig(kind, *nQueries)
	cfg.K = *k
	cfg.Seed = *seed
	qs, err := workload.Generate(model, cfg)
	if err != nil {
		fatal(err)
	}
	if err := writeJSONL(filepath.Join(*out, "queries.jsonl"), len(qs), func(i int) any {
		q := qs[i]
		return queryRecord{ID: q.ID, K: q.K, Terms: terms(q.Vec), Weights: weights(q.Vec)}
	}); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d documents and %d %s queries to %s\n", *nDocs, len(qs), kind, *out)
}

func terms(v textproc.Vector) []uint32 {
	out := make([]uint32, len(v))
	for i, tw := range v {
		out[i] = uint32(tw.Term)
	}
	return out
}

func weights(v textproc.Vector) []float64 {
	out := make([]float64, len(v))
	for i, tw := range v {
		out[i] = tw.Weight
	}
	return out
}

func writeJSONL(path string, n int, record func(i int) any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		if err := enc.Encode(record(i)); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctkgen:", err)
	os.Exit(1)
}
