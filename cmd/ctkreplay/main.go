// Command ctkreplay streams a materialized dataset (produced by
// ctkgen) through the monitor and reports per-event latency
// statistics — the reproducible single-run counterpart of ctkbench.
//
//	ctkgen   -docs 50000 -queries 20000 -workload Connected -out data
//	ctkreplay -data data -algorithm MRIO -lambda 0.01 -rate 100
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

func main() {
	var (
		dir       = flag.String("data", ".", "directory with corpus.jsonl and queries.jsonl")
		algorithm = flag.String("algorithm", "MRIO", "matching algorithm")
		lambda    = flag.Float64("lambda", 0.01, "decay rate per virtual second")
		rate      = flag.Float64("rate", 100, "arrival rate (docs per virtual second)")
		warmup    = flag.Int("warmup", 0, "events excluded from timing (default: 20%)")
		shards    = flag.Int("shards", 0, "parallel shards (0 = single)")
	)
	flag.Parse()

	alg, err := core.ParseAlgorithm(*algorithm)
	if err != nil {
		fatal(err)
	}
	qf, err := os.Open(filepath.Join(*dir, "queries.jsonl"))
	if err != nil {
		fatal(err)
	}
	defs, err := dataset.ReadQueries(qf)
	qf.Close()
	if err != nil {
		fatal(err)
	}
	df, err := os.Open(filepath.Join(*dir, "corpus.jsonl"))
	if err != nil {
		fatal(err)
	}
	docs, err := dataset.ReadDocs(df)
	df.Close()
	if err != nil {
		fatal(err)
	}
	if len(docs) == 0 || len(defs) == 0 {
		fatal(fmt.Errorf("empty dataset: %d docs, %d queries", len(docs), len(defs)))
	}
	if *warmup == 0 {
		*warmup = len(docs) / 5
	}

	mon, err := core.NewMonitor(core.Config{
		Algorithm: alg,
		Lambda:    *lambda,
		Shards:    *shards,
	}, defs)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "replaying %d documents against %d queries (%s, λ=%v)\n",
		len(docs), len(defs), alg, *lambda)

	var sample stats.Sample
	var evalSum, matchSum int
	for i, d := range docs {
		t := float64(i) / *rate
		start := time.Now()
		st, err := mon.Process(d, t)
		if err != nil {
			fatal(err)
		}
		if i >= *warmup {
			sample.AddDuration(time.Since(start))
			evalSum += st.Evaluated
			matchSum += st.Matched
		}
	}
	n := len(docs) - *warmup
	fmt.Printf("events timed:        %d (after %d warm-up)\n", n, *warmup)
	fmt.Printf("response time (ms):  %s\n", sample.Summary())
	fmt.Printf("evaluations/event:   %.1f\n", float64(evalSum)/float64(n))
	fmt.Printf("result updates/event:%.2f\n", float64(matchSum)/float64(n))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctkreplay:", err)
	os.Exit(1)
}
