package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
)

// TestDurableLifecycle is the -data-dir restart round trip: a server
// boots durable, takes an online snapshot mid-run via the admin
// endpoint, keeps ingesting (so a WAL tail accumulates past the
// snapshot), and goes down with no shutdown save. The second boot must
// recover the exact state — snapshot plus replayed tail — and resume
// the stream clock.
func TestDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := ctk.Options{
		Lambda:        0.001,
		SnippetLength: 40,
		Durability:    ctk.Durability{Dir: dir, SnapshotOps: -1},
	}

	// First life: empty data dir → fresh engine.
	engine, err := bootEngine(opts, "")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(engine)
	ts := httptest.NewServer(s.mux())
	resp, out := post(t, ts.URL+"/v1/queries", `{"keywords":"solar panel efficiency","k":3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query: %d %v", resp.StatusCode, out)
	}
	resp, _ = post(t, ts.URL+"/v1/documents", `{"text":"solar panel efficiency record","time":10}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("publish: %d", resp.StatusCode)
	}
	// Online snapshot while the server is live, then more ingestion so
	// recovery has to replay a WAL tail on top of it.
	resp, out = post(t, ts.URL+"/v1/admin/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin snapshot: %d %v", resp.StatusCode, out)
	}
	resp, _ = post(t, ts.URL+"/v1/documents", `{"text":"solar panel efficiency improves again","time":20}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-snapshot publish: %d", resp.StatusCode)
	}
	seq1, res1, _ := getResults(t, ts.URL+"/v1/results/0")
	if len(res1) != 2 {
		t.Fatalf("first life results: %+v", res1)
	}
	ts.Close()
	// Crash-equivalent exit: Close seals the WAL; there is no snapshot
	// save on the way out (recovery must not depend on one).
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: recover from the data dir.
	engine2, err := bootEngine(opts, "")
	if err != nil {
		t.Fatalf("recovery boot: %v", err)
	}
	defer engine2.Close()
	d := engine2.Stats().Durability
	if !d.Enabled || d.Replayed == 0 {
		t.Fatalf("recovery did not replay a WAL tail: %+v", d)
	}
	ts2 := httptest.NewServer(s2mux(engine2))
	defer ts2.Close()

	seq2, res2, code := getResults(t, ts2.URL+"/v1/results/0")
	if code != http.StatusOK || len(res2) != 2 {
		t.Fatalf("recovered results: %d %+v", code, res2)
	}
	for i := range res1 {
		if res2[i].DocID != res1[i].DocID || res2[i].Score != res1[i].Score || res2[i].Snippet != res1[i].Snippet {
			t.Fatalf("recovered result %d: %+v, want %+v", i, res2[i], res1[i])
		}
	}
	if seq1 == 0 || seq2 != seq1 {
		t.Fatalf("seqs across recovery: %d then %d (want the counter to resume)", seq1, seq2)
	}

	// The stream clock resumed past the WAL tail: a server-clock
	// publish must land after stream time 20, not be rejected.
	resp, body := post(t, ts2.URL+"/v1/documents", `{"text":"another solar efficiency gain"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery publish: %d %v", resp.StatusCode, body)
	}
	_, res3, _ := getResults(t, ts2.URL+"/v1/results/0")
	if len(res3) != 3 {
		t.Fatalf("post-recovery results: %+v", res3)
	}
}
