package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

// sseReader incrementally parses an SSE stream.
type sseReader struct {
	sc *bufio.Scanner
}

func newSSEReader(r *http.Response) *sseReader {
	return &sseReader{sc: bufio.NewScanner(r.Body)}
}

// next returns the next event, blocking on the stream. ok is false at
// EOF (stream closed by the server).
func (r *sseReader) next() (ev sseEvent, ok bool) {
	for r.sc.Scan() {
		line := r.sc.Text()
		switch {
		case line == "":
			if ev.event != "" || ev.data != "" {
				return ev, true
			}
		case strings.HasPrefix(line, "event: "):
			ev.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return ev, false
}

// watchStream opens /watch/{id} and fails the test on a non-200.
func watchStream(t *testing.T, base string, id int, params string) (*sseReader, func()) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/watch/%d%s", base, id, params))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("watch: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("watch content type %q", ct)
	}
	return newSSEReader(resp), func() { resp.Body.Close() }
}

// TestWatchStreamsUpdates: the SSE endpoint delivers the initial
// snapshot and every subsequent change, and each pushed update equals
// the polled /results payload at the same Seq — HTTP-level push/poll
// parity.
func TestWatchStreamsUpdates(t *testing.T) {
	ts := newTestServer(t)

	resp, out := post(t, ts.URL+"/queries", `{"keywords":"solar panel efficiency","k":3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query: %d %v", resp.StatusCode, out)
	}
	id := int(out["id"].(float64))

	rd, closeStream := watchStream(t, ts.URL, id, "?buffer=16")
	defer closeStream()

	ev, ok := rd.next()
	if !ok || ev.event != "topk" {
		t.Fatalf("initial event = %+v ok=%v", ev, ok)
	}
	var initial ctk.Update
	if err := json.Unmarshal([]byte(ev.data), &initial); err != nil {
		t.Fatal(err)
	}
	if initial.Seq != 0 || len(initial.Results) != 0 {
		t.Fatalf("initial snapshot = %+v", initial)
	}

	// Publish matching docs; poll /results after each to record the
	// snapshot at each new seq (first poll per seq shares the push's
	// stream time).
	polled := map[uint64][]ctk.Result{}
	for i := 0; i < 3; i++ {
		resp, _ := post(t, ts.URL+"/documents",
			fmt.Sprintf(`{"text":"solar panel efficiency breakthrough %d","time":%d}`, i, i+1))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("publish %d: %d", i, resp.StatusCode)
		}
		seq, res, code := getResults(t, fmt.Sprintf("%s/results/%d", ts.URL, id))
		if code != http.StatusOK {
			t.Fatalf("poll: %d", code)
		}
		if _, seen := polled[seq]; !seen {
			polled[seq] = res
		}
	}
	if len(polled) < 3 {
		t.Fatalf("only %d distinct seqs polled; fixture degenerate", len(polled))
	}

	// Delivery is asynchronous: if the drain tier lags an HTTP publish
	// it coalesces to the newest state, which shows up here as a Seq
	// gap. The invariants are order (strictly increasing Seq), identity
	// (every delivered Seq was polled, same result membership and
	// order), and convergence (the final polled Seq is delivered).
	var final uint64
	for seq := range polled {
		final = max(final, seq)
	}
	last := uint64(0)
	for last < final {
		ev, ok := rd.next()
		if !ok {
			t.Fatal("stream ended early")
		}
		if ev.event != "topk" {
			t.Fatalf("event %q", ev.event)
		}
		var u ctk.Update
		if err := json.Unmarshal([]byte(ev.data), &u); err != nil {
			t.Fatal(err)
		}
		if u.Query != ctk.QueryID(id) || u.Seq <= last {
			t.Fatalf("update %+v after seq %d", u, last)
		}
		last = u.Seq
		wantRes, okSeq := polled[u.Seq]
		if !okSeq {
			t.Fatalf("pushed seq %d never polled", u.Seq)
		}
		if len(u.Results) != len(wantRes) {
			t.Fatalf("seq %d: pushed %d results, polled %d", u.Seq, len(u.Results), len(wantRes))
		}
		// Scores decay with the stream clock, and the drain may
		// materialize after a later publish advanced it — compare
		// membership and order, not score bits.
		for i := range wantRes {
			if u.Results[i].DocID != wantRes[i].DocID {
				t.Fatalf("seq %d rank %d: pushed doc %d, polled doc %d", u.Seq, i, u.Results[i].DocID, wantRes[i].DocID)
			}
		}
	}
}

// TestWatchEndsOnUnregister: deleting the watched query terminates the
// stream with an end event.
func TestWatchEndsOnUnregister(t *testing.T) {
	ts := newTestServer(t)
	resp, out := post(t, ts.URL+"/queries", `{"keywords":"quantum computing","k":2}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatal("add query failed")
	}
	id := int(out["id"].(float64))
	rd, closeStream := watchStream(t, ts.URL, id, "")
	defer closeStream()
	if ev, ok := rd.next(); !ok || ev.event != "topk" {
		t.Fatalf("initial event = %+v", ev)
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/queries/%d", ts.URL, id), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	deadline := time.After(5 * time.Second)
	done := make(chan sseEvent, 1)
	go func() {
		for {
			ev, ok := rd.next()
			if !ok {
				close(done)
				return
			}
			done <- ev
		}
	}()
	select {
	case ev, ok := <-done:
		if ok && ev.event != "end" {
			t.Fatalf("event after unregister = %+v", ev)
		}
	case <-deadline:
		t.Fatal("stream did not end after unregister")
	}
}

// TestWatchRejects: bad IDs, unknown queries and invalid buffer sizes
// fail with JSON errors instead of opening a stream.
func TestWatchRejects(t *testing.T) {
	ts := newTestServer(t)
	for path, want := range map[string]int{
		"/watch/notanumber": http.StatusBadRequest,
		"/watch/42":         http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: non-JSON error body: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want || body["error"] == "" {
			t.Fatalf("%s: %d %v", path, resp.StatusCode, body)
		}
	}
	post(t, ts.URL+"/queries", `{"keywords":"solar power","k":2}`)
	resp, err := http.Get(ts.URL + "/watch/0?buffer=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("buffer=0: %d", resp.StatusCode)
	}
}

// TestWatchShutdownGraceful: an open SSE stream must not hold graceful
// shutdown to its full grace period — beginShutdown ends watch
// streams, so serve returns promptly and cleanly.
func TestWatchShutdownGraceful(t *testing.T) {
	engine, err := ctk.New(ctk.Options{Lambda: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	if _, err := engine.Register("graceful shutdown watch", 2); err != nil {
		t.Fatal(err)
	}
	s := newServer(engine)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, s.mux(), ln, s.beginShutdown) }()

	base := fmt.Sprintf("http://%s", ln.Addr())
	rd, closeStream := watchStream(t, base, 0, "")
	defer closeStream()
	if ev, ok := rd.next(); !ok || ev.event != "topk" {
		t.Fatalf("initial event = %+v", ev)
	}

	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve hung on open watch stream")
	}
	if elapsed := time.Since(start); elapsed > shutdownGrace {
		t.Fatalf("shutdown took %v, longer than the grace period", elapsed)
	}
	// The client observes its stream ending.
	if _, ok := rd.next(); ok {
		// A final buffered event is fine; the stream must still close.
		for {
			if _, ok := rd.next(); !ok {
				break
			}
		}
	}
}

// TestHealthzAndJSON404: the health endpoint reports engine stats and
// uptime; unknown routes return the same JSON error shape as handler
// failures.
func TestHealthzAndJSON404(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/queries", `{"keywords":"solar panel","k":2}`)
	post(t, ts.URL+"/documents", `{"text":"solar panel story","time":5}`)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status        string    `json:"status"`
		UptimeSeconds float64   `json:"uptime_seconds"`
		StreamTime    float64   `json:"stream_time"`
		Stats         ctk.Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, h)
	}
	if h.UptimeSeconds < 0 || h.StreamTime != 5 {
		t.Fatalf("healthz payload: %+v", h)
	}
	if h.Stats.Queries != 1 || h.Stats.Documents != 1 {
		t.Fatalf("healthz stats: %+v", h.Stats)
	}

	resp, err = http.Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("404 body not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || body["error"] == "" {
		t.Fatalf("unknown route: %d %v", resp.StatusCode, body)
	}
}
