package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro"
)

func newTestServer(t *testing.T) *httptest.Server {
	ts, _ := newTestServerEngine(t)
	return ts
}

func newTestServerEngine(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	engine, err := ctk.New(ctk.Options{Lambda: 0.001, SnippetLength: 40})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(engine)
	ts := httptest.NewServer(s.mux())
	t.Cleanup(func() {
		ts.Close()
		engine.Close()
	})
	return ts, s
}

// getResults decodes the /results/{id} payload.
func getResults(t *testing.T, url string) (uint64, []ctk.Result, int) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var out resultsPayload
	if r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out.Seq, out.Results, r.StatusCode
}

func post(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	return resp, out
}

func TestServerEndToEnd(t *testing.T) {
	ts := newTestServer(t)

	resp, out := post(t, ts.URL+"/queries", `{"keywords":"solar panel efficiency","k":3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query: %d %v", resp.StatusCode, out)
	}
	id := int(out["id"].(float64))

	resp, _ = post(t, ts.URL+"/documents",
		`{"text":"New solar panel efficiency record announced by the lab","time":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("publish: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/documents", `{"text":"Completely unrelated sports story","time":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("publish 2: %d", resp.StatusCode)
	}

	seq, results, code := getResults(t, ts.URL+"/results/0")
	if code != http.StatusOK {
		t.Fatalf("results: %d", code)
	}
	if len(results) != 1 || results[0].DocID != 0 {
		t.Fatalf("results = %+v", results)
	}
	if seq == 0 {
		t.Fatal("results seq = 0 after a matching publish")
	}
	if !strings.Contains(results[0].Snippet, "solar") {
		t.Fatalf("snippet missing: %+v", results[0])
	}

	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ctk.Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Queries != 1 || st.Documents != 2 {
		t.Fatalf("stats = %+v", st)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/queries/"+itoa(id), nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp2.StatusCode)
	}
	if _, _, code := getResults(t, ts.URL+"/results/"+itoa(id)); code != http.StatusNotFound {
		t.Fatalf("removed query results: %d", code)
	}
}

func TestServerBatchPublish(t *testing.T) {
	ts := newTestServer(t)

	resp, out := post(t, ts.URL+"/queries", `{"keywords":"solar panel efficiency","k":3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query: %d %v", resp.StatusCode, out)
	}
	id := int(out["id"].(float64))

	resp, out = post(t, ts.URL+"/documents/batch",
		`{"texts":["New solar panel efficiency record announced",
		           "Unrelated parliamentary business",
		           "Panel efficiency gains in solar arrays"],"time":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch publish: %d %v", resp.StatusCode, out)
	}
	if docs := int(out["Docs"].(float64)); docs != 3 {
		t.Fatalf("Docs = %d, want 3", docs)
	}
	if first := int(out["FirstDocID"].(float64)); first != 0 {
		t.Fatalf("FirstDocID = %d, want 0", first)
	}

	_, results, code := getResults(t, ts.URL+"/results/"+itoa(id))
	if code != http.StatusOK {
		t.Fatalf("results: %d", code)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v, want docs 0 and 2", results)
	}
	got := map[uint64]bool{results[0].DocID: true, results[1].DocID: true}
	if !got[0] || !got[2] {
		t.Fatalf("batch matched wrong docs: %+v", results)
	}

	// Empty batches and blank members are rejected.
	if resp, _ := post(t, ts.URL+"/documents/batch", `{"texts":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/documents/batch", `{"texts":["ok","  "]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("blank member: %d", resp.StatusCode)
	}
}

func TestServerBadRequests(t *testing.T) {
	ts := newTestServer(t)
	if resp, _ := post(t, ts.URL+"/queries", `{"keywords":"the and of"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stopword query: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/queries", `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/documents", `{"text":"   "}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty doc: %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/results/notanumber")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: %d", r.StatusCode)
	}
	// Time regression must be rejected, not crash.
	post(t, ts.URL+"/documents", `{"text":"later doc","time":100}`)
	if resp, _ := post(t, ts.URL+"/documents", `{"text":"earlier doc","time":1}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("time regression: %d", resp.StatusCode)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
