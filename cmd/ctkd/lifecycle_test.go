package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"repro"
)

// TestServeGracefulShutdown: serve answers requests until its context
// is canceled, then drains and returns nil (not ErrServerClosed), and
// the engine the caller closes afterwards rejects further publishes.
func TestServeGracefulShutdown(t *testing.T) {
	engine, err := ctk.New(ctk.Options{Lambda: 0.001, Parallelism: 2, SnippetLength: 40})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(engine)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, s.mux(), ln, s.beginShutdown) }()

	base := fmt.Sprintf("http://%s", ln.Addr())
	resp, body := post(t, base+"/queries", `{"keywords": "graceful shutdown", "k": 3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query: %d %v", resp.StatusCode, body)
	}
	resp, _ = post(t, base+"/documents", `{"text": "a graceful shutdown story", "time": 1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("publish: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after context cancel")
	}
	// The listener is gone.
	if _, err := http.Get(base + "/stats"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
	// run's epilogue closes the engine; emulate it and verify the
	// workers are gone for good.
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Publish("post-shutdown doc", 2); !errors.Is(err, ctk.ErrClosed) {
		t.Fatalf("publish after Close = %v, want ErrClosed", err)
	}
	// Results stay readable on the closed engine.
	if st := engine.Stats(); st.Documents != 1 {
		t.Fatalf("stats after close: %+v", st)
	}
}

// TestServeListenerError: a server whose listener dies reports the
// error instead of hanging.
func TestServeListenerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // serve's Serve call must fail immediately
	errc := make(chan error, 1)
	go func() { errc <- serve(context.Background(), http.NewServeMux(), ln, nil) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("serve returned nil on dead listener")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve hung on dead listener")
	}
}
