// Command ctkd runs the continuous top-k monitor as an HTTP service —
// the "central processing server" of the paper's setting, exposed the
// way a notification backend would consume it.
//
// Endpoints (JSON):
//
//	POST /queries     {"keywords": "...", "k": 10}        → {"id": 3}
//	DELETE /queries/3                                      → 204
//	POST /documents   {"text": "...", "time": 17.5}        → match stats
//	POST /documents/batch {"texts": ["...", ...], "time": 17.5}
//	                                                       → batch match stats
//	GET  /results/3                                        → {"Seq": n, "Results": top-k}
//	GET  /watch/3                                          → SSE stream of top-k changes
//	GET  /stats                                            → server counters
//	GET  /healthz                                          → liveness + engine stats
//
// Start with:
//
//	ctkd -addr :8080 -lambda 0.001 -algorithm MRIO -shards 4 -parallelism 2 \
//	     -partition mass -snapshot /var/lib/ctkd/state.snap
//
// /watch/{id} is the push path: instead of polling /results, a client
// holds the SSE stream open and receives the query's fresh top-k every
// time it changes, coalesced to the latest state when the client is
// slow (Seq gaps make drops observable). With -snapshot, the server
// restores its state on boot and persists it on graceful shutdown, so
// registered queries, results and idf statistics survive restarts.
//
// Query churn never stalls ingestion: registrations append to a delta
// segment, unregistrations tombstone in place, and the index rebuilds
// that fold churn into fresh shard indexes run on a background builder
// (-rebuild sync restores the legacy blocking behaviour). GET /stats
// exposes the generational state under "Gen": generation number, delta
// size, lingering tombstones and build timings.
//
// The server shuts down gracefully on SIGINT/SIGTERM: watch streams
// end, the listener closes, in-flight requests drain (bounded by a
// grace period), and the engine's analyzer and matching workers are
// stopped.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
)

type server struct {
	mu     sync.Mutex // serializes time assignment for Publish
	engine *ctk.Engine
	start  time.Time
	base   float64 // stream time at boot; > 0 after a snapshot restore

	// stopping is closed when graceful shutdown begins, ending every
	// /watch stream so Shutdown's drain isn't held open by them.
	stopping chan struct{}
	stopOnce sync.Once
}

func newServer(engine *ctk.Engine) *server {
	return &server{
		engine:   engine,
		start:    time.Now(),
		base:     engine.StreamTime(),
		stopping: make(chan struct{}),
	}
}

// beginShutdown ends the long-lived /watch streams. Idempotent.
func (s *server) beginShutdown() { s.stopOnce.Do(func() { close(s.stopping) }) }

// shutdownGrace bounds how long in-flight requests may drain after a
// termination signal before the server gives up on them.
const shutdownGrace = 10 * time.Second

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		lambda      = flag.Float64("lambda", 0.001, "decay rate per second")
		algorithm   = flag.String("algorithm", "MRIO", "matching algorithm")
		shards      = flag.Int("shards", 0, "parallel shards (0 = single)")
		parallelism = flag.Int("parallelism", 0, "matching workers per shard (0 = single)")
		partition   = flag.String("partition", "", "intra-shard partition strategy: mass (default) | count")
		rebuild     = flag.String("rebuild", "", "generation rebuild mode: background (default) | sync")
		rebuildThr  = flag.Int("rebuild-threshold", 0, "query churn before the next generation build (0 = default 1024)")
		snapPath    = flag.String("snapshot", "", "state file: restore on boot if present, save on graceful shutdown")
	)
	flag.Parse()

	if err := run(context.Background(), *addr, ctk.Options{
		Algorithm:        *algorithm,
		Lambda:           *lambda,
		Shards:           *shards,
		Parallelism:      *parallelism,
		Partition:        *partition,
		Rebuild:          *rebuild,
		RebuildThreshold: *rebuildThr,
		SnippetLength:    120,
	}, *snapPath); err != nil {
		log.Fatal(err)
	}
}

// loadOrNewEngine restores the engine from path when a snapshot exists
// there, and builds a fresh engine otherwise. The boolean reports
// whether a restore happened.
func loadOrNewEngine(path string, opts ctk.Options) (*ctk.Engine, bool, error) {
	if path != "" {
		f, err := os.Open(path)
		switch {
		case err == nil:
			defer f.Close()
			e, err := ctk.ReadSnapshot(f, opts)
			if err != nil {
				return nil, false, fmt.Errorf("restore %s: %w", path, err)
			}
			return e, true, nil
		case !errors.Is(err, fs.ErrNotExist):
			return nil, false, err
		}
	}
	e, err := ctk.New(opts)
	return e, false, err
}

// saveSnapshot persists the engine atomically: write, fsync, then
// rename, so neither a crash mid-save nor one right after the rename
// can leave a truncated file where the previous good snapshot was.
func saveSnapshot(path string, engine *ctk.Engine) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = engine.WriteSnapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// run hosts the engine behind an HTTP server until a termination
// signal arrives or the listener fails, then drains, closes the engine
// and (with a snapshot path) persists its state. Split from main so
// the lifecycle is testable.
func run(ctx context.Context, addr string, opts ctk.Options, snapPath string) error {
	engine, restored, err := loadOrNewEngine(snapPath, opts)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		engine.Close()
		return err
	}
	s := newServer(engine)
	if restored {
		st := engine.Stats()
		log.Printf("ctkd: restored %d queries / %d documents from %s (stream time %.3f)",
			st.Queries, st.Documents, snapPath, s.base)
	}
	log.Printf("ctkd listening on %s (algorithm=%s λ=%v shards=%d parallelism=%d partition=%s)",
		ln.Addr(), opts.Algorithm, opts.Lambda, opts.Shards, opts.Parallelism, engine.Partition())
	err = serve(ctx, s.mux(), ln, s.beginShutdown)
	// Drain the analyzer pool and the monitor's shard and partition
	// workers whatever way serving ended, then persist the quiesced
	// state (Close stops mutation; results stay readable for the save).
	if cerr := engine.Close(); err == nil {
		err = cerr
	}
	if snapPath != "" {
		if serr := saveSnapshot(snapPath, engine); serr != nil {
			log.Printf("ctkd: snapshot save failed: %v", serr)
			if err == nil {
				err = serr
			}
		} else {
			log.Printf("ctkd: state saved to %s", snapPath)
		}
	}
	return err
}

// serve runs an HTTP server with sane timeouts on ln until ctx is
// canceled (graceful: onShutdown — when non-nil — ends the watch
// streams first, then in-flight requests drain within shutdownGrace)
// or the server fails on its own.
func serve(ctx context.Context, h http.Handler, ln net.Listener, onShutdown func()) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("ctkd: shutting down (draining for up to %v)", shutdownGrace)
	if onShutdown != nil {
		onShutdown()
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// mux builds the server's route table (shared with the test harness).
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.addQuery)
	mux.HandleFunc("DELETE /queries/{id}", s.removeQuery)
	mux.HandleFunc("POST /documents", s.publish)
	mux.HandleFunc("POST /documents/batch", s.publishBatch)
	mux.HandleFunc("GET /results/{id}", s.results)
	mux.HandleFunc("GET /watch/{id}", s.watch)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /healthz", s.healthz)
	// Catch-all so unknown routes get the same JSON error shape as
	// every handler-level failure.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	return mux
}

// now returns the server's stream clock: wall time elapsed since boot,
// offset by the stream time a restored snapshot had already reached so
// publications never regress.
func (s *server) now() float64 { return s.base + time.Since(s.start).Seconds() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *server) addQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Keywords string `json:"keywords"`
		K        int    `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.engine.Register(req.Keywords, req.K)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint32{"id": uint32(id)})
}

func (s *server) removeQuery(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.engine.Unregister(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// firstBlank returns the index of the first all-whitespace text, or
// -1 when every text has content.
func firstBlank(texts []string) int {
	for i, text := range texts {
		if strings.TrimSpace(text) == "" {
			return i
		}
	}
	return -1
}

// ingest runs one publication with a serialized timestamp: reqTime
// when the client supplied one, the server clock otherwise. The
// result of pub is written as 202, engine rejections as 409.
func (s *server) ingest(w http.ResponseWriter, reqTime *float64, pub func(at float64) (any, error)) {
	s.mu.Lock()
	at := s.now()
	if reqTime != nil {
		at = *reqTime
	}
	st, err := pub(at)
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *server) publish(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Text string   `json:"text"`
		Time *float64 `json:"time,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty document text"))
		return
	}
	s.ingest(w, req.Time, func(at float64) (any, error) {
		return s.engine.Publish(req.Text, at)
	})
}

func (s *server) publishBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Texts []string `json:"texts"`
		Time  *float64 `json:"time,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Texts) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if i := firstBlank(req.Texts); i != -1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty document text at index %d", i))
		return
	}
	s.ingest(w, req.Time, func(at float64) (any, error) {
		return s.engine.PublishBatch(req.Texts, at)
	})
}

// resultsPayload is the /results/{id} response: the snapshot plus its
// change sequence number, the same pair a /watch update carries — a
// poll and a pushed Update with equal Seq hold identical result sets.
type resultsPayload struct {
	Seq     uint64
	Results []ctk.Result
}

func (s *server) results(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, seq, err := s.engine.ResultsSeq(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, resultsPayload{Seq: seq, Results: res})
}

// watchBufMax bounds the per-watcher delivery buffer a client may
// request.
const watchBufMax = 1024

// watch streams a query's top-k changes as server-sent events. Each
// change arrives as
//
//	id: <seq>
//	event: topk
//	data: {"Query": 3, "Seq": 17, "Results": [...]}
//
// starting with the current snapshot. Slow consumers are coalesced to
// the latest state (gaps in Seq reveal skipped intermediates). The
// stream ends (event: end) when the query is unregistered or the
// server shuts down. ?buffer=N (1..1024, default 1) sizes the
// delivery buffer for clients that want short backlogs instead of
// pure latest-value semantics.
func (s *server) watch(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	buf := 1
	if b := r.URL.Query().Get("buffer"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil || n < 1 || n > watchBufMax {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("buffer must be 1..%d", watchBufMax))
			return
		}
		buf = n
	}
	ch, cancel, err := s.engine.Subscribe(id, buf)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	rc := http.NewResponseController(w)
	// The stream deliberately outlives the server's WriteTimeout; the
	// per-event writes below fail fast if the client goes away.
	_ = rc.SetWriteDeadline(time.Time{})
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return
	}
	// end tells the client this is deliberate end-of-stream (query
	// unregistered or server shutting down), not a network failure.
	end := func() {
		fmt.Fprint(w, "event: end\ndata: {}\n\n")
		_ = rc.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.stopping:
			end()
			return
		case u, ok := <-ch:
			if !ok {
				end()
				return
			}
			data, err := json.Marshal(u)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: topk\ndata: %s\n\n", u.Seq, data); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

// healthz reports liveness plus a summary a load balancer or operator
// can alert on.
func (s *server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"stream_time":    s.engine.StreamTime(),
		"stats":          s.engine.Stats(),
	})
}

func parseID(s string) (ctk.QueryID, error) {
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad query id %q", s)
	}
	return ctk.QueryID(n), nil
}
