// Command ctkd runs the continuous top-k monitor as an HTTP service —
// the "central processing server" of the paper's setting, exposed the
// way a notification backend would consume it.
//
// The HTTP surface lives in internal/server and is versioned under
// /v1 (the unversioned routes remain as deprecated aliases):
//
//	POST   /v1/queries          {"keywords": "...", "k": 10} → {"id": 3}
//	DELETE /v1/queries/3                                     → 204
//	POST   /v1/documents        {"text": "...", "time": 17.5} → match stats
//	POST   /v1/documents/batch  {"texts": ["...", ...], "time": 17.5}
//	GET    /v1/results/3                                     → {"Seq": n, "Results": top-k}
//	GET    /v1/watch/3                                       → SSE stream (Last-Event-ID resume)
//	GET    /v1/stats                                         → engine + durability counters
//	GET    /v1/healthz                                       → liveness
//	GET    /v1/analyze?text=...                              → analyzer debug: token stream
//	POST   /v1/admin/snapshot                                → on-demand online snapshot
//	GET    /v1/metrics                                       → Prometheus text exposition
//	GET    /v1/debug/vars                                    → metrics registry as JSON
//	GET    /v1/debug/trace                                   → sampled publish stage traces
//	GET    /v1/debug/pprof/*                                 → net/http/pprof (only with -pprof)
//
// Start with:
//
//	ctkd -addr :8080 -lambda 0.001 -algorithm MRIO -shards 4 -parallelism 2 \
//	     -partition mass -analyzer english -data-dir /var/lib/ctkd
//
// -analyzer selects the registered analysis pipeline (standard,
// english, unicode-fold, whitespace — optionally parameterized, e.g.
// "unicode-fold?stop=le,la"). It is a persisted semantic: a durable
// data directory pins the pipeline it was created under, and a later
// boot with a conflicting -analyzer refuses to start rather than
// silently diverging.
//
// With -data-dir, the server is durable: every acknowledged mutation
// is appended to a write-ahead log (fsync policy -fsync always |
// interval) and compacted into online background snapshots that run
// concurrently with ingestion. On boot the recovery path is: newest
// valid snapshot → WAL replay → serve; a crash at any point loses
// nothing acknowledged (under -fsync always) or at most the last
// -fsync-interval's worth (under interval).
//
// The legacy -snapshot flag (single state file: restore on boot, save
// on graceful shutdown only — no crash safety) is still accepted, but
// mutually exclusive with -data-dir.
//
// This file is deliberately thin: flag parsing and process lifecycle.
// Everything HTTP is internal/server; everything durable is the ctk
// engine's Durability layer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	httpserver "repro/internal/server"
)

// server wraps the extracted HTTP layer under its historical name, so
// the daemon's tests (and anyone reading them as examples) keep
// working against the same seams: newServer, s.mux(), s.beginShutdown.
type server struct{ *httpserver.Server }

func newServer(engine *ctk.Engine) *server {
	return &server{httpserver.New(engine, httpserver.Options{})}
}

func (s *server) mux() http.Handler { return s.Handler() }
func (s *server) beginShutdown()    { s.BeginShutdown() }

// resultsPayload is the /results/{id} response shape (see
// httpserver.ResultsPayload).
type resultsPayload = httpserver.ResultsPayload

// shutdownGrace bounds how long in-flight requests may drain after a
// termination signal before the server gives up on them.
const shutdownGrace = 10 * time.Second

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		lambda      = flag.Float64("lambda", 0.001, "decay rate per second")
		algorithm   = flag.String("algorithm", "MRIO", "matching algorithm")
		shards      = flag.Int("shards", 0, "parallel shards (0 = single)")
		parallelism = flag.Int("parallelism", 0, "matching workers per shard (0 = single)")
		partition   = flag.String("partition", "", "intra-shard partition strategy: mass (default) | count")
		analyzer    = flag.String("analyzer", "", "analysis pipeline spec: standard (default) | english | unicode-fold | whitespace, with optional ?key=value params")
		rebuild     = flag.String("rebuild", "", "generation rebuild mode: background (default) | sync")
		rebuildThr  = flag.Int("rebuild-threshold", 0, "query churn before the next generation build (0 = default 1024)")
		brokerSh    = flag.Int("broker-shards", 0, "notification broker shards, rounded up to a power of two (0 = scale with GOMAXPROCS)")
		snapPath    = flag.String("snapshot", "", "legacy single-file state: restore on boot, save on graceful shutdown (no crash safety)")

		dataDir   = flag.String("data-dir", "", "durable data directory: WAL + online snapshots; recovery on boot")
		fsync     = flag.String("fsync", "always", "WAL fsync policy: always | interval")
		fsyncIvl  = flag.Duration("fsync-interval", 50*time.Millisecond, "sync cadence (and crash-loss bound) under -fsync interval")
		snapOps   = flag.Int("snapshot-ops", 0, "logged operations between background snapshots (0 = default 8192, negative disables)")
		snapIvl   = flag.Duration("snapshot-interval", 0, "wall-clock background snapshot timer (0 disables)")
		keepSnaps = flag.Int("keep-snapshots", 0, "snapshot files retained by rotation (0 = default 2)")
		segBytes  = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold (0 = default 8 MiB)")

		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /v1/debug/pprof/ (exposes heap contents; keep off unless profiling)")
		logLevel = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ctkd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))

	if *dataDir != "" && *snapPath != "" {
		fatal("flag conflict", errors.New("-data-dir and -snapshot are mutually exclusive (use -data-dir; -snapshot is the legacy path)"))
	}
	opts := ctk.Options{
		Algorithm:        *algorithm,
		Lambda:           *lambda,
		Shards:           *shards,
		Parallelism:      *parallelism,
		Partition:        *partition,
		Analyzer:         *analyzer,
		Rebuild:          *rebuild,
		RebuildThreshold: *rebuildThr,
		BrokerShards:     *brokerSh,
		SnippetLength:    120,
	}
	if *dataDir != "" {
		opts.Durability = ctk.Durability{
			Dir:              *dataDir,
			Fsync:            *fsync,
			FsyncInterval:    *fsyncIvl,
			SnapshotOps:      *snapOps,
			SnapshotInterval: *snapIvl,
			KeepSnapshots:    *keepSnaps,
			SegmentBytes:     *segBytes,
		}
	}
	if err := run(context.Background(), *addr, opts, *snapPath, *pprofOn); err != nil {
		fatal("exiting", err)
	}
}

// fatal logs a structured error and exits; the slog-era log.Fatal.
func fatal(msg string, err error) {
	slog.Error(msg, "err", err)
	os.Exit(1)
}

// loadOrNewEngine restores the engine from path when a snapshot exists
// there, and builds a fresh engine otherwise (the legacy single-file
// path; durable engines boot through ctk.Open instead). The boolean
// reports whether a restore happened.
func loadOrNewEngine(path string, opts ctk.Options) (*ctk.Engine, bool, error) {
	if path != "" {
		f, err := os.Open(path)
		switch {
		case err == nil:
			defer f.Close()
			e, err := ctk.ReadSnapshot(f, opts)
			if err != nil {
				return nil, false, fmt.Errorf("restore %s: %w", path, err)
			}
			return e, true, nil
		case !errors.Is(err, fs.ErrNotExist):
			return nil, false, err
		}
	}
	e, err := ctk.New(opts)
	return e, false, err
}

// saveSnapshot persists the engine atomically: write, fsync, then
// rename, so neither a crash mid-save nor one right after the rename
// can leave a truncated file where the previous good snapshot was.
func saveSnapshot(path string, engine *ctk.Engine) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = engine.WriteSnapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// bootEngine builds the engine per the configured persistence mode:
// ctk.Open's recovery path (snapshot + WAL replay) with durability,
// the legacy single-file restore otherwise.
func bootEngine(opts ctk.Options, snapPath string) (*ctk.Engine, error) {
	if opts.Durability.Dir != "" {
		engine, err := ctk.Open(opts)
		if err != nil {
			return nil, err
		}
		st := engine.Stats()
		slog.Info("recovered durable state",
			"queries", st.Queries, "documents", st.Documents,
			"dir", opts.Durability.Dir, "replayed", st.Durability.Replayed,
			"stream_time", engine.StreamTime())
		return engine, nil
	}
	engine, restored, err := loadOrNewEngine(snapPath, opts)
	if err != nil {
		return nil, err
	}
	if restored {
		st := engine.Stats()
		slog.Info("restored snapshot",
			"queries", st.Queries, "documents", st.Documents,
			"path", snapPath, "stream_time", engine.StreamTime())
	}
	return engine, nil
}

// run hosts the engine behind an HTTP server until a termination
// signal arrives or the listener fails, then drains and closes the
// engine. In durable mode the engine's own Close makes the WAL tail
// durable — there is no shutdown save to lose; with the legacy
// -snapshot file the quiesced state is saved on the way out. Split
// from main so the lifecycle is testable.
func run(ctx context.Context, addr string, opts ctk.Options, snapPath string, pprofOn bool) error {
	engine, err := bootEngine(opts, snapPath)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		engine.Close()
		return err
	}
	mode := "memory"
	switch {
	case opts.Durability.Dir != "":
		mode = "durable"
	case snapPath != "":
		mode = "snapshot"
	}
	s := &server{httpserver.New(engine, httpserver.Options{
		Pprof:    pprofOn,
		DataMode: mode,
	})}
	slog.Info("ctkd listening",
		"addr", ln.Addr().String(), "algorithm", opts.Algorithm,
		"lambda", opts.Lambda, "analyzer", engine.Analyzer(),
		"shards", opts.Shards, "parallelism", opts.Parallelism,
		"partition", engine.Partition(), "data_mode", mode, "pprof", pprofOn)
	err = serve(ctx, s.mux(), ln, s.beginShutdown)
	// Drain the analyzer pool and the monitor's shard and partition
	// workers whatever way serving ended, then persist the quiesced
	// state (Close stops mutation; results stay readable for the save).
	if cerr := engine.Close(); err == nil {
		err = cerr
	}
	if snapPath != "" {
		if serr := saveSnapshot(snapPath, engine); serr != nil {
			slog.Error("snapshot save failed", "path", snapPath, "err", serr)
			if err == nil {
				err = serr
			}
		} else {
			slog.Info("state saved", "path", snapPath)
		}
	}
	return err
}

// serve runs an HTTP server with sane timeouts on ln until ctx is
// canceled (graceful: onShutdown — when non-nil — ends the watch
// streams first, then in-flight requests drain within shutdownGrace)
// or the server fails on its own.
func serve(ctx context.Context, h http.Handler, ln net.Listener, onShutdown func()) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	slog.Info("shutting down", "drain_grace", shutdownGrace)
	if onShutdown != nil {
		onShutdown()
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
