// Command ctkd runs the continuous top-k monitor as an HTTP service —
// the "central processing server" of the paper's setting, exposed the
// way a notification backend would consume it.
//
// Endpoints (JSON):
//
//	POST /queries     {"keywords": "...", "k": 10}        → {"id": 3}
//	DELETE /queries/3                                      → 204
//	POST /documents   {"text": "...", "time": 17.5}        → match stats
//	POST /documents/batch {"texts": ["...", ...], "time": 17.5}
//	                                                       → batch match stats
//	GET  /results/3                                        → current top-k
//	GET  /stats                                            → server counters
//
// Start with:
//
//	ctkd -addr :8080 -lambda 0.001 -algorithm MRIO -shards 4 -parallelism 2
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener
// closes, in-flight requests drain (bounded by a grace period), and
// the engine's analyzer and matching workers are stopped.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
)

type server struct {
	mu     sync.Mutex // serializes time assignment for Publish
	engine *ctk.Engine
	start  time.Time
}

// shutdownGrace bounds how long in-flight requests may drain after a
// termination signal before the server gives up on them.
const shutdownGrace = 10 * time.Second

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		lambda      = flag.Float64("lambda", 0.001, "decay rate per second")
		algorithm   = flag.String("algorithm", "MRIO", "matching algorithm")
		shards      = flag.Int("shards", 0, "parallel shards (0 = single)")
		parallelism = flag.Int("parallelism", 0, "matching workers per shard (0 = single)")
	)
	flag.Parse()

	if err := run(*addr, ctk.Options{
		Algorithm:     *algorithm,
		Lambda:        *lambda,
		Shards:        *shards,
		Parallelism:   *parallelism,
		SnippetLength: 120,
	}); err != nil {
		log.Fatal(err)
	}
}

// run hosts the engine behind an HTTP server until a termination
// signal arrives or the listener fails, then drains and closes the
// engine. Split from main so the lifecycle is testable.
func run(addr string, opts ctk.Options) error {
	engine, err := ctk.New(opts)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		engine.Close()
		return err
	}
	s := &server{engine: engine, start: time.Now()}
	log.Printf("ctkd listening on %s (algorithm=%s λ=%v shards=%d parallelism=%d)",
		ln.Addr(), opts.Algorithm, opts.Lambda, opts.Shards, opts.Parallelism)
	err = serve(ctx, s.mux(), ln)
	// Drain the analyzer pool and the monitor's shard and partition
	// workers whatever way serving ended.
	if cerr := engine.Close(); err == nil {
		err = cerr
	}
	return err
}

// serve runs an HTTP server with sane timeouts on ln until ctx is
// canceled (graceful: in-flight requests drain within shutdownGrace)
// or the server fails on its own.
func serve(ctx context.Context, h http.Handler, ln net.Listener) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("ctkd: shutting down (draining for up to %v)", shutdownGrace)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// mux builds the server's route table (shared with the test harness).
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.addQuery)
	mux.HandleFunc("DELETE /queries/{id}", s.removeQuery)
	mux.HandleFunc("POST /documents", s.publish)
	mux.HandleFunc("POST /documents/batch", s.publishBatch)
	mux.HandleFunc("GET /results/{id}", s.results)
	mux.HandleFunc("GET /stats", s.stats)
	return mux
}

func (s *server) now() float64 { return time.Since(s.start).Seconds() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *server) addQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Keywords string `json:"keywords"`
		K        int    `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.engine.Register(req.Keywords, req.K)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint32{"id": uint32(id)})
}

func (s *server) removeQuery(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.engine.Unregister(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// firstBlank returns the index of the first all-whitespace text, or
// -1 when every text has content.
func firstBlank(texts []string) int {
	for i, text := range texts {
		if strings.TrimSpace(text) == "" {
			return i
		}
	}
	return -1
}

// ingest runs one publication with a serialized timestamp: reqTime
// when the client supplied one, the server clock otherwise. The
// result of pub is written as 202, engine rejections as 409.
func (s *server) ingest(w http.ResponseWriter, reqTime *float64, pub func(at float64) (any, error)) {
	s.mu.Lock()
	at := s.now()
	if reqTime != nil {
		at = *reqTime
	}
	st, err := pub(at)
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *server) publish(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Text string   `json:"text"`
		Time *float64 `json:"time,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty document text"))
		return
	}
	s.ingest(w, req.Time, func(at float64) (any, error) {
		return s.engine.Publish(req.Text, at)
	})
}

func (s *server) publishBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Texts []string `json:"texts"`
		Time  *float64 `json:"time,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Texts) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if i := firstBlank(req.Texts); i != -1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty document text at index %d", i))
		return
	}
	s.ingest(w, req.Time, func(at float64) (any, error) {
		return s.engine.PublishBatch(req.Texts, at)
	})
}

func (s *server) results(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.engine.Results(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func parseID(s string) (ctk.QueryID, error) {
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad query id %q", s)
	}
	return ctk.QueryID(n), nil
}
