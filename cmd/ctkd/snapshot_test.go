package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
)

// TestSnapshotLifecycle is the restart round trip: a server's state is
// saved, a second server boots from the file, serves the same results,
// and keeps ingesting on a resumed stream clock.
func TestSnapshotLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	opts := ctk.Options{Lambda: 0.001, SnippetLength: 40}

	// First life: no snapshot file yet → fresh engine.
	engine, restored, err := loadOrNewEngine(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if restored {
		t.Fatal("restored from a nonexistent file")
	}
	s := newServer(engine)
	ts := httptest.NewServer(s.mux())
	resp, out := post(t, ts.URL+"/queries", `{"keywords":"solar panel efficiency","k":3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query: %d %v", resp.StatusCode, out)
	}
	resp, _ = post(t, ts.URL+"/documents", `{"text":"solar panel efficiency record","time":10}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("publish: %d", resp.StatusCode)
	}
	seq1, res1, _ := getResults(t, ts.URL+"/results/0")
	if len(res1) != 1 {
		t.Fatalf("first life results: %+v", res1)
	}
	ts.Close()
	// Emulate run's epilogue: close, then save.
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}
	if err := saveSnapshot(path, engine); err != nil {
		t.Fatal(err)
	}

	// Second life: boot from the snapshot.
	engine2, restored, err := loadOrNewEngine(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer engine2.Close()
	if !restored {
		t.Fatal("snapshot not restored")
	}
	s2 := newServer(engine2)
	ts2 := httptest.NewServer(s2.mux())
	defer ts2.Close()

	seq2, res2, code := getResults(t, ts2.URL+"/results/0")
	if code != http.StatusOK || len(res2) != 1 {
		t.Fatalf("restored results: %d %+v", code, res2)
	}
	if res2[0].DocID != res1[0].DocID || res2[0].Snippet != res1[0].Snippet {
		t.Fatalf("restored result %+v, want %+v", res2[0], res1[0])
	}
	// The seq counters are persisted with the snapshot (engine wire
	// v3), so a watcher reconnecting after the restart sees numbering
	// continue where it left off and Seq-gap drop detection stays
	// sound across the process boundary.
	if seq1 == 0 || seq2 != seq1 {
		t.Fatalf("seqs across restart: %d then %d (want the counter to resume)", seq1, seq2)
	}

	// The stream clock resumed: a publish on the server clock (no
	// explicit time) must land after the snapshot's stream time 10
	// instead of being rejected as a regression.
	resp, body := post(t, ts2.URL+"/documents", `{"text":"another solar efficiency gain"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-restore publish: %d %v", resp.StatusCode, body)
	}
	_, res3, _ := getResults(t, ts2.URL+"/results/0")
	if len(res3) != 2 {
		t.Fatalf("post-restore results: %+v", res3)
	}
}

// TestSnapshotLifecycleAfterDelete: a server that served a
// DELETE /queries must still save a restorable snapshot — the removed
// ID stays dead after the restart, the survivor keeps its handle, and
// a new registration gets a fresh ID rather than reusing the gap.
func TestSnapshotLifecycleAfterDelete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	opts := ctk.Options{Lambda: 0.001, SnippetLength: 40}

	engine, _, err := loadOrNewEngine(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(engine)
	ts := httptest.NewServer(s.mux())
	post(t, ts.URL+"/queries", `{"keywords":"solar panel efficiency","k":3}`) // id 0
	post(t, ts.URL+"/queries", `{"keywords":"football championship","k":3}`)  // id 1
	post(t, ts.URL+"/documents", `{"text":"solar panel efficiency record","time":1}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/queries/0", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	ts.Close()
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}
	if err := saveSnapshot(path, engine); err != nil {
		t.Fatalf("save after delete: %v", err)
	}

	engine2, restored, err := loadOrNewEngine(path, opts)
	if err != nil {
		t.Fatalf("boot after delete+save: %v", err)
	}
	defer engine2.Close()
	if !restored {
		t.Fatal("snapshot not restored")
	}
	ts2 := httptest.NewServer(s2mux(engine2))
	defer ts2.Close()
	if _, _, code := getResults(t, ts2.URL+"/results/0"); code != http.StatusNotFound {
		t.Fatalf("deleted query after restart: %d", code)
	}
	if _, _, code := getResults(t, ts2.URL+"/results/1"); code != http.StatusOK {
		t.Fatalf("surviving query after restart: %d", code)
	}
	resp, out := post(t, ts2.URL+"/queries", `{"keywords":"rainfall flooding","k":2}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-restart register: %d", resp.StatusCode)
	}
	if id := int(out["id"].(float64)); id != 2 {
		t.Fatalf("post-restart register got ID %d, want 2 (gap must not be reused)", id)
	}
}

// s2mux builds a fresh server mux around an engine (helper for
// restart tests).
func s2mux(engine *ctk.Engine) http.Handler { return newServer(engine).mux() }

// TestRunSavesOnGracefulShutdown drives run itself: boot with a
// -snapshot path, shut down via context cancel, and check the state
// file appears and restores.
func TestRunSavesOnGracefulShutdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	opts := ctk.Options{Lambda: 0.001, SnippetLength: 40}

	// Seed a snapshot with one query so the rebooted server has
	// something to restore.
	seed, _, err := loadOrNewEngine("", opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Register("rainfall flood warning", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Publish("rainfall flood warning issued", 3); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	if err := saveSnapshot(path, seed); err != nil {
		t.Fatal(err)
	}
	// Back-date the seed file so "run rewrote it on shutdown" is
	// detectable regardless of filesystem timestamp granularity.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, past, past); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, "127.0.0.1:0", opts, path, false) }()
	time.Sleep(200 * time.Millisecond) // let run boot and restore
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after cancel")
	}

	after, err := os.Stat(path)
	if err != nil {
		t.Fatalf("snapshot gone after shutdown: %v", err)
	}
	if !after.ModTime().After(before.ModTime()) {
		t.Fatal("snapshot not rewritten on shutdown")
	}
	reloaded, restored, err := loadOrNewEngine(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reloaded.Close()
	if !restored {
		t.Fatal("file did not restore")
	}
	if st := reloaded.Stats(); st.Queries != 1 || st.Documents != 1 {
		t.Fatalf("reloaded stats: %+v", st)
	}
}
