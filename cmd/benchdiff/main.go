// Command benchdiff compares the current run's BENCH_*.json perf
// reports against a baseline directory (typically the previous CI
// run's uploaded artifacts) and exits non-zero on regression: a
// wall-time metric more than 10% (and 5µs) over baseline, or an
// allocs/event metric above baseline by more than 0.25.
//
// Usage:
//
//	benchdiff -baseline-dir .bench-baseline [-current-dir .] [BENCH_foo.json ...]
//
// Without explicit files it compares every BENCH_*.json in the current
// directory. A missing baseline directory or a report with no baseline
// counterpart is skipped with a notice — the first run bootstraps its
// own baseline instead of failing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
)

func main() {
	var (
		baseDir     = flag.String("baseline-dir", ".bench-baseline", "directory holding the previous run's BENCH_*.json reports")
		curDir      = flag.String("current-dir", ".", "directory holding this run's BENCH_*.json reports")
		pct         = flag.Float64("pct", 0, "override: ms regression threshold in percent")
		floorMS     = flag.Float64("floor-ms", 0, "override: absolute ms noise floor")
		floorAllocs = flag.Float64("floor-allocs", 0, "override: allocs/event regression floor")
	)
	flag.Parse()

	opts := bench.DefaultDiffOptions()
	if *pct > 0 {
		opts.MSRegressionPct = *pct
	}
	if *floorMS > 0 {
		opts.MSNoiseFloor = *floorMS
	}
	if *floorAllocs > 0 {
		opts.AllocFloor = *floorAllocs
	}

	files := flag.Args()
	if len(files) == 0 {
		matches, err := filepath.Glob(filepath.Join(*curDir, "BENCH_*.json"))
		if err != nil {
			fatal(err)
		}
		for _, m := range matches {
			files = append(files, filepath.Base(m))
		}
	}
	if len(files) == 0 {
		fmt.Printf("benchdiff: no BENCH_*.json reports in %s; nothing to compare\n", *curDir)
		return
	}

	regressions := 0
	for _, name := range files {
		cur, err := load(filepath.Join(*curDir, name))
		if err != nil {
			fatal(fmt.Errorf("current %s: %w", name, err))
		}
		base, err := load(filepath.Join(*baseDir, name))
		if os.IsNotExist(err) {
			fmt.Printf("== %s: no baseline (first run?); skipping\n", name)
			continue
		}
		if err != nil {
			fatal(fmt.Errorf("baseline %s: %w", name, err))
		}
		fmt.Printf("== %s (baseline scale=%s, current scale=%s)\n", name, base.Scale, cur.Scale)
		if base.Scale != cur.Scale {
			fmt.Printf("   scale changed; skipping (numbers are not comparable)\n")
			continue
		}
		d := bench.Diff(base, cur, opts)
		d.Render(os.Stdout)
		regressions += d.Regressions
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: FAIL — %d regression(s) against baseline in %s\n", regressions, *baseDir)
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

func load(path string) (*bench.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
