package ctk

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAnalyzerOptionResolution pins how Options.Analyzer and the
// deprecated Stemming alias resolve: unset → standard, Stemming →
// english, both set consistently → fine, conflicting → typed error.
func TestAnalyzerOptionResolution(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
		err  error
	}{
		{name: "default", opts: Options{}, want: "standard"},
		{name: "legacy-stemming", opts: Options{Stemming: true}, want: "english"},
		{name: "explicit", opts: Options{Analyzer: "english"}, want: "english"},
		{name: "explicit-plus-alias", opts: Options{Analyzer: "english", Stemming: true}, want: "english"},
		{name: "params-canonicalize", opts: Options{Analyzer: "standard?min=3&digits=true"}, want: "standard?digits=true&min=3"},
		{name: "conflict", opts: Options{Analyzer: "standard", Stemming: true}, err: ErrAnalyzerMismatch},
		{name: "conflict-fold", opts: Options{Analyzer: "unicode-fold", Stemming: true}, err: ErrAnalyzerMismatch},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e, err := New(c.opts)
			if c.err != nil {
				if !errors.Is(err, c.err) {
					t.Fatalf("New = %v, want %v", err, c.err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			if got := e.Analyzer(); got != c.want {
				t.Fatalf("Analyzer() = %q, want %q", got, c.want)
			}
			if got := e.Stats().Analyzer; got != c.want {
				t.Fatalf("Stats().Analyzer = %q, want %q", got, c.want)
			}
		})
	}
	if _, err := New(Options{Analyzer: "klingon"}); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}

// TestEngineAnalyze covers the public debug surface: the token stream
// Publish would weight, under the engine's own pipeline.
func TestEngineAnalyze(t *testing.T) {
	e, err := New(Options{Analyzer: "english"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	got := e.Analyze("The markets are rallying")
	want := []string{"market", "ralli"}
	if len(got) != len(want) {
		t.Fatalf("Analyze = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Analyze = %v, want %v", got, want)
		}
	}
}

// TestEnglishParityLive is the live third of the parity gate: an
// engine configured Analyzer: "english" is bit-identical — doc IDs,
// scores, Seqs — to one configured with the legacy Stemming: true over
// a full mixed workload.
func TestEnglishParityLive(t *testing.T) {
	ops := script(300)
	nq := queryCount(ops)

	legacy, err := New(Options{Stemming: true, Lambda: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	apply(t, legacy, ops, 0, len(ops))

	seam, err := New(Options{Analyzer: "english", Lambda: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer seam.Close()
	apply(t, seam, ops, 0, len(ops))

	requireEquivalent(t, seam, legacy, nq)
}

// TestEnglishParitySnapshot is the snapshot third of the parity gate:
// a snapshot written by a legacy Stemming: true engine restores under
// the english pipeline (inferred, reported, and persisted forward) and
// the restored engine stays bit-identical through further operations.
func TestEnglishParitySnapshot(t *testing.T) {
	ops := script(240)
	nq := queryCount(ops)
	half := len(ops) / 2

	legacy, err := New(Options{Stemming: true, Lambda: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	apply(t, legacy, ops, 0, half)

	var buf bytes.Buffer
	if err := legacy.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), Options{Lambda: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.Analyzer(); got != "english" {
		t.Fatalf("restored analyzer %q, want english", got)
	}
	if !restored.opts.Stemming {
		t.Fatal("deprecated Stemming alias not reflected on restore")
	}

	apply(t, legacy, ops, half, len(ops))
	apply(t, restored, ops, half, len(ops))
	requireEquivalent(t, restored, legacy, nq)

	// The restored engine re-snapshots at the current wire version with
	// the spec recorded explicitly; a second-generation restore agrees.
	var buf2 bytes.Buffer
	if err := restored.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	second, err := ReadSnapshot(bytes.NewReader(buf2.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if got := second.Analyzer(); got != "english" {
		t.Fatalf("second-generation analyzer %q, want english", got)
	}
	requireEquivalent(t, second, legacy, nq)
}

// TestReadSnapshotAnalyzerMismatch: restoring a snapshot under a
// different pipeline than it was written with is refused with the
// typed error, for both the Analyzer option and the Stemming alias.
func TestReadSnapshotAnalyzerMismatch(t *testing.T) {
	e, err := New(Options{}) // standard
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Register("storm coast", 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	for _, opts := range []Options{
		{Analyzer: "english"},
		{Stemming: true},
		{Analyzer: "unicode-fold"},
	} {
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), opts); !errors.Is(err, ErrAnalyzerMismatch) {
			t.Fatalf("ReadSnapshot(%+v) = %v, want ErrAnalyzerMismatch", opts, err)
		}
	}
	// Explicitly requesting the matching pipeline is fine.
	ok, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), Options{Analyzer: "standard"})
	if err != nil {
		t.Fatal(err)
	}
	ok.Close()
}

// TestEnglishParityCrashRecovery is the recovery third of the parity
// gate: a legacy Stemming: true data directory — snapshot plus WAL
// tail, including a torn final segment — recovers bit-identically to
// an uncrashed oracle, and the recovered engine reports the english
// pipeline.
func TestEnglishParityCrashRecovery(t *testing.T) {
	ops := script(240)
	nq := queryCount(ops)

	want, err := New(Options{Stemming: true, Lambda: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	apply(t, want, ops, 0, len(ops))

	dir := t.TempDir()
	opts := durOpts(dir, 0, 0, "")
	opts.Stemming = true
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	apply(t, e, ops, 0, len(ops)/2)
	if _, err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	apply(t, e, ops, len(ops)/2, len(ops))

	// Crash state: clone with a torn WAL tail.
	torn := t.TempDir()
	copyDir(t, dir, torn)
	tearLastSegment(t, filepath.Join(torn, "wal"))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		label string
		dir   string
		opts  Options
	}{
		// Recovery under the alias, under the explicit spec, and with no
		// preference at all (the pinned pipeline applies) — all three
		// must agree with the oracle.
		{"alias", dir, func() Options { o := durOpts(dir, 0, 0, ""); o.Stemming = true; return o }()},
		{"explicit", torn, func() Options { o := durOpts(torn, 0, 0, ""); o.Analyzer = "english"; return o }()},
		{"pinned", torn, durOpts(torn, 0, 0, "")},
	} {
		re, err := Open(tc.opts)
		if err != nil {
			t.Fatalf("%s: Open: %v", tc.label, err)
		}
		if got := re.Analyzer(); got != "english" {
			t.Fatalf("%s: recovered analyzer %q, want english", tc.label, got)
		}
		requireEquivalent(t, re, want, nq)
		re.Close()
	}
}

// TestCrashRecoveryAllAnalyzers rounds every registered pipeline
// through the crash-recovery path: snapshot mid-stream, torn WAL tail,
// reopen, and require bit-identical results to an uncrashed oracle
// running the same pipeline.
func TestCrashRecoveryAllAnalyzers(t *testing.T) {
	ops := script(180)
	nq := queryCount(ops)
	for _, spec := range []string{"standard", "english", "unicode-fold", "whitespace"} {
		t.Run(spec, func(t *testing.T) {
			want, err := New(Options{Analyzer: spec, Lambda: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			defer want.Close()
			apply(t, want, ops, 0, len(ops))

			dir := t.TempDir()
			opts := durOpts(dir, 0, 0, "")
			opts.Analyzer = spec
			e, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			apply(t, e, ops, 0, len(ops)/3)
			if _, err := e.Snapshot(); err != nil {
				t.Fatal(err)
			}
			apply(t, e, ops, len(ops)/3, len(ops))
			torn := t.TempDir()
			copyDir(t, dir, torn)
			tearLastSegment(t, filepath.Join(torn, "wal"))
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := Open(durOpts(torn, 0, 0, ""))
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if got := re.Analyzer(); got != spec {
				t.Fatalf("recovered analyzer %q, want %q", got, spec)
			}
			requireEquivalent(t, re, want, nq)
		})
	}
}

// TestOpenPinsAnalyzer: a durable data directory records its analyzer
// at first boot — before any snapshot exists — so WAL-only recovery
// replays under the original pipeline, and a conflicting reopen is
// refused with the typed error.
func TestOpenPinsAnalyzer(t *testing.T) {
	dir := t.TempDir()
	opts := durOpts(dir, 0, 0, "")
	opts.Analyzer = "unicode-fold"
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("décès hôpital", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Publish("un décès à l'hôpital", 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// No snapshot was ever taken: the WAL plus the meta file are the
	// whole persisted state.
	meta, err := os.ReadFile(filepath.Join(dir, "analyzer"))
	if err != nil {
		t.Fatalf("analyzer meta file not written: %v", err)
	}
	if got := strings.TrimSpace(string(meta)); got != "unicode-fold" {
		t.Fatalf("pinned %q, want unicode-fold", got)
	}
	if snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap")); len(snaps) != 0 {
		t.Fatalf("unexpected snapshots %v — test wants the WAL-only path", snaps)
	}

	// Reopen with no preference: replay runs under the pinned pipeline.
	re, err := Open(durOpts(dir, 0, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Analyzer(); got != "unicode-fold" {
		t.Fatalf("recovered analyzer %q, want unicode-fold", got)
	}
	res, err := re.Results(0)
	if err != nil || len(res) != 1 {
		t.Fatalf("results after WAL-only recovery: %v, %v", res, err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Conflicting preferences are refused before replay.
	for _, conflict := range []func(Options) Options{
		func(o Options) Options { o.Analyzer = "standard"; return o },
		func(o Options) Options { o.Stemming = true; return o },
		func(o Options) Options { o.Analyzer = "unicode-fold?stop=le"; return o },
	} {
		if _, err := Open(conflict(durOpts(dir, 0, 0, ""))); !errors.Is(err, ErrAnalyzerMismatch) {
			t.Fatalf("conflicting Open = %v, want ErrAnalyzerMismatch", err)
		}
	}
	// The matching explicit spec still opens.
	ok, err := Open(func() Options { o := durOpts(dir, 0, 0, ""); o.Analyzer = "unicode-fold"; return o }())
	if err != nil {
		t.Fatal(err)
	}
	ok.Close()
}

// TestOpenLegacyDirInfersAnalyzer: a data directory created before the
// meta file existed (simulated by deleting it) recovers from its
// snapshot's inferred analyzer and re-pins it on the way up; a
// conflicting request fails typed instead of falling back to an older
// snapshot.
func TestOpenLegacyDirInfersAnalyzer(t *testing.T) {
	dir := t.TempDir()
	opts := durOpts(dir, 0, 0, "")
	opts.Stemming = true
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("storm coast", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Publish("storm on the coast", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "analyzer")); err != nil {
		t.Fatal(err)
	}

	// Conflicting request: the snapshot's analyzer mismatch must
	// surface, not silently fall back.
	bad := durOpts(dir, 0, 0, "")
	bad.Analyzer = "standard"
	if _, err := Open(bad); !errors.Is(err, ErrAnalyzerMismatch) {
		t.Fatalf("Open = %v, want ErrAnalyzerMismatch", err)
	}

	// No preference: inference from the snapshot, and the pin is
	// rewritten for the next boot.
	re, err := Open(durOpts(dir, 0, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Analyzer(); got != "english" {
		t.Fatalf("inferred analyzer %q, want english", got)
	}
	re.Close()
	meta, err := os.ReadFile(filepath.Join(dir, "analyzer"))
	if err != nil || strings.TrimSpace(string(meta)) != "english" {
		t.Fatalf("meta not re-pinned: %q, %v", meta, err)
	}
}
