package ctk

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/notify"
	"repro/internal/snapshot"
	"repro/internal/textproc"
)

// WriteSnapshot persists the engine's full state — query definitions,
// every query's current top-k, the stream clock and decay epoch, the
// vocabulary with its idf statistics, the document counter and the
// retained snippets — so ReadSnapshot can resume the stream exactly
// where this engine left off. Query IDs (including the gaps left by
// Unregister) are preserved, so handles clients hold stay valid
// across the round trip. Safe on a closed engine (shutdown-time
// saves) and concurrently with result readers.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	e.mu.RLock()
	st := snapshot.CaptureEngine(e.mon, e.textStateLocked())
	e.mu.RUnlock()
	// Encoding works on the immutable capture; the engine is already
	// free to ingest again.
	return st.Encode(w)
}

// textStateLocked collects the engine-level text state a snapshot
// carries over the monitor's. Caller holds e.mu (either side) — the
// same capture serves WriteSnapshot and the online background
// snapshotter.
func (e *Engine) textStateLocked() snapshot.TextState {
	terms, df, docs := e.vocab.Dump()
	ts := snapshot.TextState{
		Terms:        terms,
		DF:           df,
		DocsObserved: docs,
		NextDoc:      e.nextDoc,
		Stemming:     e.an.Name() == "english",
		Analyzer:     e.an.Name(),
		Seqs:         e.broker.Seqs(),
	}
	if e.snips != nil {
		ts.Snips = make(map[uint64]string, len(e.snips))
		for id, s := range e.snips {
			ts.Snips[id] = s
		}
	}
	return ts
}

// ReadSnapshot reconstructs an engine from a WriteSnapshot stream and
// resumes it: registered queries keep their IDs and results, the
// stream clock continues from the persisted time, and future
// publications are weighted against the persisted idf statistics, so
// the restored engine behaves exactly like the saved one would have.
//
// opts supplies the new process's execution and display shape —
// Algorithm, Shards, Parallelism, Partition, Rebuild,
// RebuildThreshold, DefaultK, SnippetLength — all of which are
// result-invariant and may differ from the saving process.
// Lambda and the analyzer are part of the persisted semantics and are
// restored from the snapshot; leave Analyzer (and the deprecated
// Stemming alias) unset to accept whatever the snapshot ran. Setting
// them to a pipeline different from the persisted one fails with
// ErrAnalyzerMismatch rather than silently re-analyzing future
// documents against a mismatched vocabulary.
func ReadSnapshot(r io.Reader, opts Options) (*Engine, error) {
	if opts.DefaultK <= 0 {
		opts.DefaultK = 10
	}
	requested, err := requestedAnalyzer(opts)
	if err != nil {
		return nil, err
	}
	lay, err := index.ParseLayout(opts.IndexLayout)
	if err != nil {
		return nil, err
	}
	shape := core.Config{
		Shards:           opts.Shards,
		Parallelism:      opts.Parallelism,
		Partition:        core.PartitionStrategy(opts.Partition),
		Rebuild:          core.RebuildMode(opts.Rebuild),
		RebuildThreshold: opts.RebuildThreshold,
		IndexLayout:      lay,
	}
	if opts.Algorithm != "" {
		alg, err := core.ParseAlgorithm(opts.Algorithm)
		if err != nil {
			return nil, err
		}
		shape.Algorithm = alg
	}
	mon, ts, err := snapshot.LoadEngine(r, shape)
	if err != nil {
		return nil, err
	}
	vocab, err := textproc.LoadVocabulary(ts.Terms, ts.DF, ts.DocsObserved)
	if err != nil {
		mon.Close()
		return nil, fmt.Errorf("ctk: snapshot vocabulary: %w", err)
	}
	persisted := ts.EffectiveAnalyzer()
	if requested != "" && requested != persisted {
		mon.Close()
		return nil, fmt.Errorf("%w: snapshot was written under analyzer %q, options request %q",
			ErrAnalyzerMismatch, persisted, requested)
	}
	an, err := textproc.NewAnalyzer(persisted)
	if err != nil {
		mon.Close()
		return nil, fmt.Errorf("ctk: snapshot analyzer: %w", err)
	}
	opts.Lambda = mon.Config().Lambda
	opts.Analyzer = persisted
	opts.Stemming = persisted == "english"
	e := &Engine{
		opts:     opts,
		vocab:    vocab,
		an:       an,
		weighter: textproc.NewWeighter(vocab, textproc.WeightLogTFIDF),
		mon:      mon,
		nextDoc:  ts.NextDoc,
	}
	if opts.SnippetLength > 0 {
		e.snips = make(map[uint64]string, len(ts.Snips))
		for id, s := range ts.Snips {
			e.snips[id] = s
		}
		e.snipHW = max(2*len(e.snips), snipPruneMin)
	}
	e.broker = notify.NewWith(notify.Options[Update]{
		Shards:      opts.BrokerShards,
		Materialize: e.materialize,
	})
	// Resume the notification sequence numbers where the saved engine
	// left off, so a watcher reconnecting after the restart can still
	// detect dropped updates by Seq gaps. Sequence state is
	// shard-layout independent: the restoring process may run a
	// different BrokerShards than the saving one.
	e.broker.RestoreSeqs(ts.Seqs)
	e.initObs()
	return e, nil
}
