// Package ctk (continuous top-k) is the public face of this
// repository: a production-shaped Go implementation of
//
//	U, Zhang, Mouratidis, Li — "Continuous Top-k Monitoring on
//	Document Streams", ICDE 2018 (extended abstract of TKDE 29(5),
//	2017).
//
// A central Engine hosts continuous top-k queries over documents
// (CTQDs). Each query is a set of weighted keywords plus a result size
// k; as documents stream in, the engine keeps every query's top-k most
// relevant documents fresh, under exponential recency decay. Matching
// uses the paper's MRIO algorithm (Reverse ID-Ordering with minimal
// locally-adaptive bounds) by default; the evaluation baselines (RIO,
// RTA, SortQuer, TPS) are selectable for comparison.
//
// Two API levels are offered:
//
//   - The Engine in this package works on raw text: Register keyword
//     queries, Publish documents, read Results. Tokenization, tf-idf
//     weighting and vocabulary management are handled internally.
//   - The vector level (core.Monitor, re-exported below) works on
//     pre-built sparse vectors and is what the benchmark harness uses.
package ctk

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/notify"
	"repro/internal/obs"
	"repro/internal/textproc"
	"repro/internal/wal"
)

// Re-exported vector-level types, for advanced use.
type (
	// Monitor is the vector-level CTQD server.
	Monitor = core.Monitor
	// MonitorConfig parameterizes a Monitor.
	MonitorConfig = core.Config
	// QueryDef is a vector-level query definition.
	QueryDef = core.QueryDef
	// Document is a vector-level stream document.
	Document = corpus.Document
	// Vector is a sparse term vector.
	Vector = textproc.Vector
)

// NewMonitor builds a vector-level monitor (see core.NewMonitor).
func NewMonitor(cfg MonitorConfig, defs []QueryDef) (*Monitor, error) {
	return core.NewMonitor(cfg, defs)
}

// QueryID identifies a registered query.
type QueryID uint32

// Result is one entry of a query's current top-k.
type Result struct {
	// DocID is the engine-assigned document identifier, in publication
	// order.
	DocID uint64
	// Score is the present-time (decayed) relevance score.
	Score float64
	// Snippet is the head of the document's text, when the engine is
	// configured to retain snippets.
	Snippet string
}

// Options configures an Engine.
type Options struct {
	// Algorithm selects the matching algorithm by name: "MRIO"
	// (default), "RIO", "RTA", "SortQuer", "TPS" or "Exhaustive".
	Algorithm string
	// Lambda is the exponential decay rate per unit of stream time
	// (0 disables recency decay).
	Lambda float64
	// Shards processes the query set in parallel partitions (default 1).
	Shards int
	// Parallelism matches each event with this many workers inside
	// every shard by splitting the shard's query range (default 1).
	// It composes with Shards; results are bit-identical either way.
	Parallelism int
	// Partition selects how each shard's query range is split across
	// the Parallelism workers: "mass" (default) balances estimated
	// posting mass and adapts to the observed per-partition work,
	// "count" is the legacy equal-query-count split. Result-invariant.
	Partition string
	// Rebuild selects where generation builds (which fold query churn
	// into fresh shard indexes) run: "background" (default) builds
	// concurrently with publishing and swaps atomically, "sync" blocks
	// the registering call — the legacy behaviour, kept as an ablation
	// control. Result-invariant.
	Rebuild string
	// RebuildThreshold is how much query churn (registrations +
	// unregistrations) accumulates before the next generation build
	// (0 uses the monitor default, 1024).
	RebuildThreshold int
	// IndexLayout selects the posting storage layout of the main
	// generation's indexes: "flat" (default) packs each shard's
	// postings into one contiguous backing array for cache-friendly
	// scans, "legacy" keeps per-term heap slices and exists as the
	// ablation control. Result-invariant.
	IndexLayout string
	// BrokerShards is the push-delivery broker's shard count, rounded
	// up to a power of two (≤ 0 picks a GOMAXPROCS-scaled default).
	// Each shard owns its slice of the subscription registry behind its
	// own lock and drains deliveries on a dedicated goroutine, so
	// subscriber fan-out runs off the publish hot path and scales with
	// cores. Result-invariant.
	BrokerShards int
	// DefaultK is the result size used when Register is called with
	// k ≤ 0 (default 10).
	DefaultK int
	// SnippetLength retains the first N runes of each published
	// document for display in Results (0 disables retention).
	SnippetLength int
	// Analyzer selects the text-analysis pipeline — how query and
	// document text becomes terms — by registered name, optionally
	// parameterized: "standard" (tokenize, lowercase, English
	// stopwords; the default), "english" (standard + Porter stemming,
	// so "monitoring" matches "monitors"), "unicode-fold" (accent and
	// combining-mark folding, no built-in stopwords — inject a
	// language's own via "unicode-fold?stop=le,la,les"), or
	// "whitespace" (pre-tokenized/trace input, fields kept verbatim).
	// See textproc.RegisterAnalyzer for adding pipelines.
	//
	// The analyzer is a persisted semantic, like Lambda: snapshots and
	// durable data directories record it, restore runs under the
	// recorded pipeline, and recovery refuses a conflicting Analyzer
	// with ErrAnalyzerMismatch rather than silently diverging.
	Analyzer string
	// Stemming is a deprecated alias for Analyzer: "english". It is
	// kept so existing configurations keep working; setting it
	// together with a different Analyzer is an error.
	Stemming bool
	// Durability configures crash recovery: a write-ahead log of every
	// acknowledged mutation plus online background snapshots, rooted at
	// Durability.Dir. The zero value disables it. Engines with
	// durability must be built with Open (which runs the recovery
	// path); New rejects a non-zero Durability.
	Durability Durability
	// DisableMetrics turns off all runtime instrumentation: the engine
	// still exposes a Metrics registry but it stays empty, the publish
	// path records nothing and tracing is off. It exists as the
	// ablation control for the ablobs experiment (instrumented vs.
	// uninstrumented publish cost); production engines should leave it
	// false — the instrumented path adds no allocations and a few
	// atomic writes per publish.
	DisableMetrics bool
	// TraceEvery samples one publish in every N into the stage-timing
	// trace ring served at GET /v1/debug/trace (0 uses the default of
	// 64; negative disables tracing while keeping metrics on).
	TraceEvery int
}

// analyzeJob asks the analyzer pool to run the engine's analysis
// pipeline over one text into a shared output slot.
type analyzeJob struct {
	text string
	out  *[]string
	wg   *sync.WaitGroup
}

// Engine is the text-level continuous top-k monitor. It is safe for
// concurrent use.
//
// Ingestion is split in two stages: text analysis (the configured
// pipeline of char filters, tokenization and token filters) runs
// outside the engine lock (concurrently, on a bounded worker pool, for
// PublishBatch), while document-frequency observation, tf-idf
// weighting and the monitor hand-off stay serialized under the lock —
// idf weights depend on how many documents were seen before, so the
// weighting order is part of the engine's semantics.
//
// The lock is a reader/writer lock: Results and Stats take the read
// side, so result polling scales across cores and never queues behind
// other readers — only a concurrently running publish or query
// mutation (which hold the write side) briefly blocks it.
//
// Query churn is cheap under that lock: Register appends to the
// monitor's delta segment in O(|q|) and Unregister tombstones in O(1),
// while the index rebuilds that fold churn into fresh shard indexes
// run on a background builder and install by atomic swap — neither
// registration nor publishing ever holds the write lock for the
// duration of an index build (Options.Rebuild "sync" restores the
// legacy blocking behaviour).
type Engine struct {
	mu       sync.RWMutex
	opts     Options
	vocab    *textproc.Vocabulary
	an       textproc.Analyzer
	weighter *textproc.Weighter
	mon      *core.Monitor
	nextDoc  uint64

	// broker is the push-delivery fan-out: the monitor reports which
	// queries' top-k changed per publish (exact under any
	// Shards × Parallelism layout), and the broker coalesces those
	// changes into every watcher's bounded buffer. See Subscribe.
	broker *notify.Broker[Update]

	// snips holds retained snippets of published documents, pruned of
	// entries no result set references once it outgrows snipHW (see
	// pruneSnippets), so retention is bounded by the engine's live
	// top-k footprint rather than by stream length.
	snips  map[uint64]string
	snipHW int

	// Analyzer pool: persistent workers draining anWork, started
	// lazily on the first PublishBatch (engines that only ever publish
	// single documents never pay for it). anMu guards the channel
	// against Close racing a PublishBatch send.
	anMu     sync.RWMutex
	anClosed bool
	anOnce   sync.Once
	anWork   chan analyzeJob
	anWG     sync.WaitGroup

	// dur is the durability manager (nil when durability is off): it
	// owns the write-ahead log every acknowledged mutation is appended
	// to under e.mu — so log order is apply order — and the background
	// snapshotter. Attached by Open after recovery.
	dur *durable

	// reg is the engine's metrics registry (always non-nil; empty when
	// Options.DisableMetrics). im holds the resolved hot-path handles —
	// nil when metrics are off, so the publish path pays one branch.
	// See instrument.go.
	reg *obs.Registry
	im  *instruments

	// Steady-state publish scratch. scratch pools per-publish buffer
	// sets (token slice + weighting scratch): analysis runs outside
	// e.mu, so concurrent publishers each need their own. anAppend is
	// the analyzer's buffer-reusing entry point, resolved once at
	// construction (nil when the analyzer only implements Analyze).
	scratch  sync.Pool
	anAppend func(dst []string, text string) []string
}

// pubScratch is one publisher's reusable buffer set (see
// Engine.scratch).
type pubScratch struct {
	tokens []string
	vs     textproc.VecScratch
}

// ErrNoTerms reports a query or document whose text yields no usable
// terms after tokenization.
var ErrNoTerms = errors.New("ctk: no usable terms after tokenization")

// ErrClosed reports an operation on a closed Engine.
var ErrClosed = errors.New("ctk: engine is closed")

// ErrTimeRegression reports a publication older than the engine's
// current stream time.
var ErrTimeRegression = core.ErrTimeRegression

// ErrNoDurability reports a durability operation (Snapshot) on an
// engine built without Open.
var ErrNoDurability = errors.New("ctk: durability not enabled")

// ErrAnalyzerMismatch reports a conflict between the analyzer an
// engine's persisted state was built with and the one Options ask
// for. Analysis is a persisted semantic: the vocabulary, idf
// statistics and every indexed term embody the pipeline that produced
// them, so recovery refuses to run replay or restore under a
// different one instead of silently diverging.
var ErrAnalyzerMismatch = errors.New("ctk: analyzer mismatch")

// effectiveAnalyzer resolves Options.Analyzer plus the deprecated
// Stemming alias into the canonical spec the engine will run under.
func effectiveAnalyzer(opts Options) (string, error) {
	if opts.Analyzer == "" {
		if opts.Stemming {
			return "english", nil
		}
		return "standard", nil
	}
	spec, err := textproc.CanonicalSpec(opts.Analyzer)
	if err != nil {
		return "", err
	}
	if opts.Stemming && spec != "english" {
		return "", fmt.Errorf("%w: Stemming (deprecated alias for Analyzer %q) conflicts with Analyzer %q",
			ErrAnalyzerMismatch, "english", opts.Analyzer)
	}
	return spec, nil
}

// requestedAnalyzer returns the canonical spec opts explicitly asks
// for, or "" when opts expresses no preference (Analyzer empty, the
// deprecated Stemming alias unset) — the recovery paths use "" to
// mean "whatever the persisted state was built with".
func requestedAnalyzer(opts Options) (string, error) {
	if opts.Analyzer == "" && !opts.Stemming {
		return "", nil
	}
	return effectiveAnalyzer(opts)
}

// public translates internal sentinel errors into their public
// counterparts.
func public(err error) error {
	if errors.Is(err, core.ErrClosed) {
		return ErrClosed
	}
	return err
}

// New creates an empty Engine.
func New(opts Options) (*Engine, error) {
	if opts.Durability.Dir != "" {
		return nil, errors.New("ctk: Options.Durability requires Open, not New")
	}
	if opts.DefaultK <= 0 {
		opts.DefaultK = 10
	}
	algoName := opts.Algorithm
	if algoName == "" {
		algoName = string(core.AlgoMRIO)
	}
	alg, err := core.ParseAlgorithm(algoName)
	if err != nil {
		return nil, err
	}
	spec, err := effectiveAnalyzer(opts)
	if err != nil {
		return nil, err
	}
	an, err := textproc.NewAnalyzer(spec)
	if err != nil {
		return nil, err
	}
	lay, err := index.ParseLayout(opts.IndexLayout)
	if err != nil {
		return nil, err
	}
	vocab := textproc.NewVocabulary()
	mon, err := core.NewMonitor(core.Config{
		Algorithm:        alg,
		Lambda:           opts.Lambda,
		Shards:           opts.Shards,
		Parallelism:      opts.Parallelism,
		Partition:        core.PartitionStrategy(opts.Partition),
		Rebuild:          core.RebuildMode(opts.Rebuild),
		RebuildThreshold: opts.RebuildThreshold,
		IndexLayout:      lay,
	}, nil)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		opts:     opts,
		vocab:    vocab,
		an:       an,
		weighter: textproc.NewWeighter(vocab, textproc.WeightLogTFIDF),
		mon:      mon,
	}
	if opts.SnippetLength > 0 {
		e.snips = make(map[uint64]string)
		e.snipHW = snipPruneMin
	}
	e.broker = notify.NewWith(notify.Options[Update]{
		Shards:      opts.BrokerShards,
		Materialize: e.materialize,
	})
	e.initObs()
	return e, nil
}

// notifyChanges stamps the monitor's exact change set for the publish
// that just completed into the broker. Called on the publish path
// under e.mu, after snippet retention. Each changed query costs one
// sequence bump plus — when someone is watching — one allocation-free
// enqueue onto the owning broker shard's intake; payload building and
// subscriber fan-out happen on the shard's drain goroutine, so
// delivery cost never lands inside the publisher's critical section.
func (e *Engine) notifyChanges() {
	for _, g := range e.mon.ChangedQueries() {
		e.broker.Publish(g)
	}
}

// materialize builds the broker's update payload for one query — the
// drain tier calls it once per queued topic (build-once, deliver-many).
// The read lock makes the (payload, seq) pair consistent: a publish in
// flight holds the write side, so the snapshot taken here equals what
// a poll at the same sequence number would return. ok=false when the
// query no longer exists (unregistered while the record sat in the
// intake).
func (e *Engine) materialize(id uint32) (Update, uint64, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	res, err := e.resultsLocked(QueryID(id))
	if err != nil {
		return Update{}, 0, false
	}
	seq := e.broker.Seq(id)
	return Update{Query: QueryID(id), Seq: seq, Results: res}, seq, true
}

// initHotPath resolves the steady-state publish path's prebound
// handles; every constructor calls it (via initObs) before the engine
// is shared.
func (e *Engine) initHotPath() {
	e.scratch.New = func() any { return new(pubScratch) }
	if aa, ok := e.an.(textproc.AppendAnalyzer); ok {
		e.anAppend = aa.AnalyzeAppend
	}
}

// flushNotify blocks until every change stamped so far has been
// materialized and handed to subscriber buffers. A test hook — the
// drain tier needs the read lock, so callers must not hold e.mu.
func (e *Engine) flushNotify() { e.broker.Flush() }

// analyzeInto runs the analysis pipeline into dst when the analyzer
// supports it, falling back to the allocating path otherwise.
func (e *Engine) analyzeInto(dst []string, text string) []string {
	if e.anAppend != nil {
		return e.anAppend(dst, text)
	}
	return append(dst, e.analyze(text)...)
}

// analyzeWorker drains the analyzer pool's job channel.
func (e *Engine) analyzeWorker() {
	defer e.anWG.Done()
	for job := range e.anWork {
		*job.out = e.analyze(job.text)
		job.wg.Done()
	}
}

// Close shuts down the engine: the analyzer pool (if it ever started)
// is drained and the underlying monitor's shard workers are stopped.
// Publishing and query mutation fail with ErrClosed afterwards;
// Results stays readable. Close is idempotent.
func (e *Engine) Close() error {
	e.anMu.Lock()
	if !e.anClosed {
		e.anClosed = true
		if e.anWork != nil {
			close(e.anWork)
		}
	}
	e.anMu.Unlock()
	e.anWG.Wait()
	e.mu.Lock()
	err := e.mon.Close()
	e.mu.Unlock()
	// With the monitor closed no new changes can be stamped; drain what
	// is still queued (the drain tier needs the read lock we just
	// released to materialize), then end every watcher's stream. No
	// update can follow a channel close.
	e.broker.Flush()
	e.broker.Close()
	// Durability shuts down outside e.mu: an in-flight background
	// snapshot needs the read lock to finish, and every mutation that
	// could still append to the log has already drained (appends happen
	// under the write lock we just held, and the monitor now rejects
	// new mutations). The log is synced and closed here, so everything
	// acknowledged before Close returned is durable.
	if e.dur != nil {
		if derr := e.dur.shutdown(); err == nil {
			err = derr
		}
	}
	return err
}

// Partition returns the effective intra-shard partition strategy
// ("mass" or "count"). Cheap: it reads immutable configuration, unlike
// Stats, whose occupancy snapshot walks every shard's partitions.
func (e *Engine) Partition() string { return string(e.mon.Config().Partition) }

// StreamTime returns the engine's current stream time: the timestamp
// of the latest accepted publication (0 before any). A server
// restoring from a snapshot uses it to resume its publication clock
// past the persisted stream.
func (e *Engine) StreamTime() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.mon.Now()
}

// analyze runs the engine's analysis pipeline.
func (e *Engine) analyze(text string) []string {
	return e.an.Analyze(text)
}

// Analyzer returns the canonical spec of the analysis pipeline the
// engine runs under ("standard", "english", ...). Cheap: the analyzer
// is immutable configuration, so no lock is taken.
func (e *Engine) Analyzer() string { return e.an.Name() }

// Analyze runs the engine's analysis pipeline over text and returns
// the resulting token stream — the exact terms a Publish or Register
// of the same text would be weighted on. It is a debugging aid (the
// server exposes it as GET /v1/analyze); analyzers are immutable, so
// it never contends with ingestion.
func (e *Engine) Analyze(text string) []string { return e.an.Analyze(text) }

// Register adds a continuous query from keyword text. Keywords may
// repeat to express preference weight ("go go databases" weights "go"
// double). k ≤ 0 uses the engine default.
func (e *Engine) Register(keywords string, k int) (QueryID, error) {
	if k <= 0 {
		k = e.opts.DefaultK
	}
	tokens := e.analyze(keywords)
	if len(tokens) == 0 {
		return 0, fmt.Errorf("%w: %q", ErrNoTerms, keywords)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	vec := e.weighter.VectorFromTokens(tokens)
	id, err := e.mon.AddQuery(core.QueryDef{Vec: vec, K: k})
	if err != nil {
		return 0, public(err)
	}
	if err := e.dur.logOp(wal.Rec{Op: wal.OpRegister, Query: id, K: k, Keywords: keywords}, nil); err != nil {
		return 0, err
	}
	return QueryID(id), nil
}

// Unregister removes a query. Watchers subscribed to it observe their
// update channel closing. Snippets referenced only by the removed
// query's results are swept immediately — without this, documents
// visible solely through the removed query would linger in the
// snippet map until some later publish happened to cross the pruning
// watermark.
func (e *Engine) Unregister(id QueryID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.mon.RemoveQuery(uint32(id)); err != nil {
		return public(err)
	}
	if err := e.dur.logOp(wal.Rec{Op: wal.OpUnregister, Query: uint32(id)}, nil); err != nil {
		return err
	}
	e.broker.CloseTopic(uint32(id))
	e.sweepSnippets()
	return nil
}

// PublishStats reports the matching work one publication caused.
type PublishStats struct {
	// DocID is the identifier assigned to the document.
	DocID uint64
	// Updated counts queries whose top-k changed.
	Updated int
	// Evaluated counts queries scored exactly.
	Evaluated int
}

// Publish feeds one document into the stream at the given time (any
// non-decreasing float timeline: seconds, unix time...). Documents
// with no usable terms are accepted (they match nothing).
// Text analysis runs before the engine lock is taken; only weighting
// and the monitor hand-off are serialized.
func (e *Engine) Publish(text string, at float64) (PublishStats, error) {
	c := e.clock()
	ps := e.scratch.Get().(*pubScratch)
	defer e.scratch.Put(ps)
	ps.tokens = e.analyzeInto(ps.tokens[:0], text)
	e.mu.Lock()
	defer e.mu.Unlock()
	// Reject a doomed publication before the weighter permanently
	// observes the document's terms, so a failed call followed by a
	// corrected retry yields the same idf weights as a clean publish.
	if err := e.mon.ValidateIngest(at); err != nil {
		return PublishStats{}, public(err)
	}
	// The vector aliases the pooled scratch: the monitor reads it only
	// while processing this event (under e.mu), and the scratch cannot
	// be rewritten before then — Put runs after Unlock, and the next
	// holder writes the vector buffer only under e.mu itself.
	vec := e.weighter.DocumentVectorInto(ps.tokens, &ps.vs)
	id := e.nextDoc
	e.nextDoc++
	c.mark(obs.StageAnalyze)
	st, err := e.mon.Process(corpus.Document{ID: id, Vec: vec}, at)
	c.mark(obs.StageMatch)
	if err != nil {
		e.nextDoc = id
		return PublishStats{}, public(err)
	}
	if err := e.dur.logOp(wal.Rec{Op: wal.OpPublish, Time: at, Texts: []string{text}}, &c); err != nil {
		return PublishStats{}, err
	}
	e.retainSnippet(id, text)
	e.pruneSnippets()
	e.notifyChanges()
	c.mark(obs.StageNotify)
	e.im.record(&c, id, 1, at)
	return PublishStats{DocID: id, Updated: st.Matched, Evaluated: st.Evaluated}, nil
}

// retainSnippet stores the head of a published document's text when
// snippet retention is enabled. Caller holds e.mu.
func (e *Engine) retainSnippet(id uint64, text string) {
	if e.snips == nil {
		return
	}
	r := []rune(text)
	if len(r) > e.opts.SnippetLength {
		r = r[:e.opts.SnippetLength]
	}
	e.snips[id] = string(r)
}

// snipPruneMin is the snippet map's minimum pruning watermark: pruning
// below this size would cost more bookkeeping than the memory it
// reclaims.
const snipPruneMin = 64

// pruneSnippets drops snippets of documents no query's current top-k
// references. It runs after a publish once the map has grown past the
// watermark, which is then re-armed at twice the surviving size — so
// the sweep cost is amortized over at least as many publishes as there
// are live entries, and the map size stays within a constant factor of
// the monitor's result footprint no matter how long the stream runs.
// Caller holds e.mu.
func (e *Engine) pruneSnippets() {
	if e.snips == nil || len(e.snips) < e.snipHW {
		return
	}
	e.sweepSnippets()
}

// sweepSnippets unconditionally drops every snippet no live query's
// current top-k references and re-arms the pruning watermark. Caller
// holds e.mu.
func (e *Engine) sweepSnippets() {
	if e.snips == nil {
		return
	}
	live := make(map[uint64]struct{}, e.mon.ResultCapacity())
	e.mon.EachResultDoc(func(id uint64) { live[id] = struct{}{} })
	for id := range e.snips {
		if _, ok := live[id]; !ok {
			delete(e.snips, id)
		}
	}
	e.snipHW = max(2*len(e.snips), snipPruneMin)
}

// BatchStats reports the matching work one batch publication caused.
type BatchStats struct {
	// FirstDocID is the identifier of the batch's first document;
	// documents receive consecutive IDs in slice order.
	FirstDocID uint64
	// Docs is the number of documents published.
	Docs int
	// Updated counts (query, document) admissions across the batch.
	Updated int
	// Evaluated counts exact query evaluations across the batch.
	Evaluated int
}

// PublishBatch feeds a batch of documents that share the arrival time
// at. Texts are analyzed concurrently on the engine's bounded
// analyzer pool; the documents are then weighted in slice
// order and handed to the monitor in a single locked batch, so the
// per-document lock and scheduling cost is paid once per batch. The
// results (document IDs, idf weights, top-k contents) are identical to
// publishing each text individually at the same time.
func (e *Engine) PublishBatch(texts []string, at float64) (BatchStats, error) {
	c := e.clock()
	tokenLists := make([][]string, len(texts))
	e.anMu.RLock()
	if e.anClosed {
		e.anMu.RUnlock()
		return BatchStats{}, ErrClosed
	}
	if len(texts) == 0 {
		e.anMu.RUnlock()
		return BatchStats{}, nil
	}
	// Safe under RLock: Close (the only other anWork accessor) needs
	// the write lock, and anOnce orders the channel write for every
	// concurrent first caller.
	e.anOnce.Do(func() {
		e.anWork = make(chan analyzeJob)
		for i := 0; i < runtime.GOMAXPROCS(0); i++ {
			e.anWG.Add(1)
			go e.analyzeWorker()
		}
	})
	var wg sync.WaitGroup
	wg.Add(len(texts))
	for i, text := range texts {
		e.anWork <- analyzeJob{text: text, out: &tokenLists[i], wg: &wg}
	}
	e.anMu.RUnlock()
	wg.Wait()

	e.mu.Lock()
	defer e.mu.Unlock()
	// As in Publish: fail before the weighter observes any document,
	// so a rejected batch leaves no trace in the idf statistics.
	if err := e.mon.ValidateIngest(at); err != nil {
		return BatchStats{}, public(err)
	}
	first := e.nextDoc
	docs := make([]corpus.Document, len(texts))
	for i, tokens := range tokenLists {
		docs[i] = corpus.Document{ID: e.nextDoc, Vec: e.weighter.DocumentVector(tokens)}
		e.nextDoc++
	}
	c.mark(obs.StageAnalyze)
	st, err := e.mon.ProcessBatch(docs, at)
	c.mark(obs.StageMatch)
	if err != nil {
		e.nextDoc = first
		return BatchStats{}, public(err)
	}
	if err := e.dur.logOp(wal.Rec{Op: wal.OpBatch, Time: at, Texts: texts}, &c); err != nil {
		return BatchStats{}, err
	}
	for i, text := range texts {
		e.retainSnippet(first+uint64(i), text)
	}
	e.pruneSnippets()
	e.notifyChanges()
	c.mark(obs.StageNotify)
	e.im.record(&c, first, len(texts), at)
	return BatchStats{
		FirstDocID: first,
		Docs:       len(texts),
		Updated:    st.Matched,
		Evaluated:  st.Evaluated,
	}, nil
}

// Results returns a query's current top-k, best first, with
// present-time scores. It takes the engine's read lock, so any number
// of result readers run concurrently with each other; they serialize
// only against a publish or query mutation in flight.
func (e *Engine) Results(id QueryID) ([]Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.resultsLocked(id)
}

// resultsLocked builds a query's result snapshot. Caller holds e.mu
// (either side).
func (e *Engine) resultsLocked(id QueryID) ([]Result, error) {
	top, err := e.mon.Top(uint32(id))
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(top))
	for i, r := range top {
		out[i] = Result{DocID: r.DocID, Score: r.Score}
		if e.snips != nil {
			out[i].Snippet = e.snips[r.DocID]
		}
	}
	return out, nil
}

// ResultsSeq returns a query's current top-k together with its change
// sequence number: how many times the query's result set has changed
// since the engine started. The pair is read atomically with respect
// to publishes, so a snapshot at sequence s equals the payload of the
// pushed Update carrying Seq == s.
func (e *Engine) ResultsSeq(id QueryID) ([]Result, uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	res, err := e.resultsLocked(id)
	if err != nil {
		return nil, 0, err
	}
	return res, e.broker.Seq(uint32(id)), nil
}

// Update is one pushed change notification: the watched query's fresh
// top-k, stamped with its change sequence number. Seq increases by
// exactly one per top-k change of the query, so a gap between
// consecutively received updates reveals deliveries coalesced away
// while the subscriber was slow — the payload is always the newest
// state at the time of delivery.
type Update struct {
	Query   QueryID
	Seq     uint64
	Results []Result
}

// SubscribeOptions configures one watcher (see SubscribeOpts). The
// zero value is a plain subscription: buffer 1, every change
// delivered.
type SubscribeOptions struct {
	// Buffer is the update channel's capacity (≤ 0 uses 1). A full
	// buffer drops the oldest update for the newest, so a slow watcher
	// always converges to the live state.
	Buffer int
	// MinInterval, when > 0, rate-limits delivery: after an update is
	// delivered, further changes are held until the interval elapses,
	// then the query's *latest* state is delivered once. Held
	// intermediates appear as a Seq gap.
	MinInterval time.Duration
	// TopN, when > 0, delivers only when the identity or order of the
	// first TopN results changes — score-only wiggles below the prefix
	// are suppressed (and observable as a Seq gap).
	TopN int
	// MinRankChange, when > 0, delivers only when some document moves
	// by at least this many rank positions (a document entering or
	// leaving the top-k counts as a full-k move). Combines with TopN as
	// OR: the update is delivered if either condition fires.
	MinRankChange int
}

// Subscribe attaches a watcher to a query's result stream with a
// delivery buffer of buf updates. See SubscribeOpts for the full
// option set; Subscribe(id, buf) is SubscribeOpts(id,
// SubscribeOptions{Buffer: buf}).
func (e *Engine) Subscribe(id QueryID, buf int) (<-chan Update, func(), error) {
	return e.SubscribeOpts(id, SubscribeOptions{Buffer: buf})
}

// SubscribeOpts attaches a watcher to a query's result stream. The
// first update is the query's current top-k at its current sequence
// number; every subsequent top-k change delivers a fresh Update,
// materialized and fanned out on the broker's drain tier — delivery
// never blocks ingestion, and a slow subscriber's skipped states are
// observable as gaps in Update.Seq. Options add per-subscriber
// filtering (TopN, MinRankChange) and rate limiting (MinInterval),
// all evaluated on the drain side so a mass-audience query's filtered
// watchers cost the publish path nothing.
//
// The channel closes when cancel is called, the query is unregistered,
// or the engine closes. cancel is idempotent and safe to call
// concurrently with ingestion.
func (e *Engine) SubscribeOpts(id QueryID, o SubscribeOptions) (<-chan Update, func(), error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	// Validate the query and capture the initial snapshot atomically
	// with the subscription: publishes hold the write lock, so no
	// change can slip between snapshot and attachment, and any change
	// drained after we return carries a later sequence number (a
	// same-seq race with the drain is deduped inside Prime).
	res, err := e.resultsLocked(id)
	if err != nil {
		return nil, nil, err
	}
	sub, err := e.broker.SubscribeOpts(uint32(id), notify.SubOptions[Update]{
		Buffer:      o.Buffer,
		MinInterval: o.MinInterval,
		Filter:      o.filter(),
	})
	if err != nil {
		if errors.Is(err, notify.ErrClosed) {
			err = ErrClosed
		}
		return nil, nil, err
	}
	seq := e.broker.Seq(uint32(id))
	sub.Prime(Update{Query: id, Seq: seq, Results: res}, seq)
	return sub.C(), sub.Cancel, nil
}

// filter compiles the subscription's delivery conditions into one
// drain-side predicate (nil when unfiltered). Conditions combine as
// OR; the broker always passes a subscriber's first delivery.
func (o SubscribeOptions) filter() func(prev, next Update) bool {
	topN, minShift := o.TopN, o.MinRankChange
	if topN <= 0 && minShift <= 0 {
		return nil
	}
	return func(prev, next Update) bool {
		if topN > 0 && prefixChanged(prev.Results, next.Results, topN) {
			return true
		}
		return minShift > 0 && maxRankShift(prev.Results, next.Results) >= minShift
	}
}

// prefixChanged reports whether the identity or order of the first n
// results differs between prev and next.
func prefixChanged(prev, next []Result, n int) bool {
	if len(prev) > n {
		prev = prev[:n]
	}
	if len(next) > n {
		next = next[:n]
	}
	if len(prev) != len(next) {
		return true
	}
	for i := range next {
		if prev[i].DocID != next[i].DocID {
			return true
		}
	}
	return false
}

// maxRankShift returns the largest rank movement between two result
// snapshots: |old rank − new rank| per document, with entering or
// leaving the set counting as a move across the whole list. Result
// lists are k-sized, so the quadratic scan beats building a map.
func maxRankShift(prev, next []Result) int {
	full := max(len(prev), len(next))
	shift := 0
	for i, r := range next {
		d := full // entered: not found below
		for j := range prev {
			if prev[j].DocID == r.DocID {
				if d = i - j; d < 0 {
					d = -d
				}
				break
			}
		}
		shift = max(shift, d)
	}
	if shift >= full {
		return shift // a leaver cannot raise it further
	}
	for i := range prev {
		found := false
		for j := range next {
			if next[j].DocID == prev[i].DocID {
				found = true
				break
			}
		}
		if !found {
			return full
		}
	}
	return shift
}

// PartitionStat is one intra-shard partition's occupancy (see
// core.PartitionStat).
type PartitionStat = core.PartitionStat

// GenStats is the generational index's churn state (see
// core.GenStats): generation number, delta segment size, lingering
// tombstones and background-build timings.
type GenStats = core.GenStats

// Stats summarizes engine activity.
type Stats struct {
	Queries   int
	Documents uint64
	Evaluated int
	Matched   int
	// Hot-path work counters, cumulative over the engine's lifetime:
	// delta-segment skip blocks pruned vs. scanned, postings pruned by
	// the quantized impact bounds (SortQuer/TPS), and per-event scratch
	// buffers that had to grow (0 in steady state — growth means an
	// event needed more cursor room than any before it).
	DeltaBlocksSkipped int
	DeltaBlocksScanned int
	QuantPruned        int
	ScratchGrows       int
	// Snippets is the number of document snippets currently retained
	// (0 when retention is disabled). Bounded by the pruning policy,
	// not by stream length.
	Snippets int
	// Analyzer is the canonical spec of the analysis pipeline the
	// engine runs under ("standard", "english", ...).
	Analyzer string
	// Partition is the intra-shard partitioning strategy in effect
	// ("mass" or "count").
	Partition string
	// Partitions lists per-shard × per-partition occupancy: how the
	// query set and the observed matching work are spread across the
	// engine's matching workers. One entry per shard when intra-shard
	// parallelism is off.
	Partitions []PartitionStat
	// Gen is the generational index's churn state: generation number,
	// delta segment size, lingering tombstones, dirty budget and
	// background-build timings.
	Gen GenStats
	// Durability is the durability subsystem's state (Enabled false
	// when the engine was built without Open).
	Durability DurabilityStats
}

// Stats returns cumulative counters. Like Results, it takes only the
// read lock.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t := e.mon.Totals()
	st := Stats{
		Queries:            e.mon.NumQueries(),
		Documents:          e.mon.Events(),
		Evaluated:          t.Evaluated,
		Matched:            t.Matched,
		DeltaBlocksSkipped: t.DeltaBlocksSkipped,
		DeltaBlocksScanned: t.DeltaBlocksScanned,
		QuantPruned:        t.QuantPruned,
		ScratchGrows:       t.ScratchGrows,
		Snippets:           len(e.snips),
		Analyzer:           e.an.Name(),
		Partition:          string(e.mon.Config().Partition),
		Partitions:         e.mon.PartitionStats(),
		Gen:                e.mon.GenStats(),
	}
	if e.dur != nil {
		st.Durability = e.dur.stats()
	}
	return st
}
