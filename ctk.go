// Package ctk (continuous top-k) is the public face of this
// repository: a production-shaped Go implementation of
//
//	U, Zhang, Mouratidis, Li — "Continuous Top-k Monitoring on
//	Document Streams", ICDE 2018 (extended abstract of TKDE 29(5),
//	2017).
//
// A central Engine hosts continuous top-k queries over documents
// (CTQDs). Each query is a set of weighted keywords plus a result size
// k; as documents stream in, the engine keeps every query's top-k most
// relevant documents fresh, under exponential recency decay. Matching
// uses the paper's MRIO algorithm (Reverse ID-Ordering with minimal
// locally-adaptive bounds) by default; the evaluation baselines (RIO,
// RTA, SortQuer, TPS) are selectable for comparison.
//
// Two API levels are offered:
//
//   - The Engine in this package works on raw text: Register keyword
//     queries, Publish documents, read Results. Tokenization, tf-idf
//     weighting and vocabulary management are handled internally.
//   - The vector level (core.Monitor, re-exported below) works on
//     pre-built sparse vectors and is what the benchmark harness uses.
package ctk

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/textproc"
)

// Re-exported vector-level types, for advanced use.
type (
	// Monitor is the vector-level CTQD server.
	Monitor = core.Monitor
	// MonitorConfig parameterizes a Monitor.
	MonitorConfig = core.Config
	// QueryDef is a vector-level query definition.
	QueryDef = core.QueryDef
	// Document is a vector-level stream document.
	Document = corpus.Document
	// Vector is a sparse term vector.
	Vector = textproc.Vector
)

// NewMonitor builds a vector-level monitor (see core.NewMonitor).
func NewMonitor(cfg MonitorConfig, defs []QueryDef) (*Monitor, error) {
	return core.NewMonitor(cfg, defs)
}

// QueryID identifies a registered query.
type QueryID uint32

// Result is one entry of a query's current top-k.
type Result struct {
	// DocID is the engine-assigned document identifier, in publication
	// order.
	DocID uint64
	// Score is the present-time (decayed) relevance score.
	Score float64
	// Snippet is the head of the document's text, when the engine is
	// configured to retain snippets.
	Snippet string
}

// Options configures an Engine.
type Options struct {
	// Algorithm selects the matching algorithm by name: "MRIO"
	// (default), "RIO", "RTA", "SortQuer", "TPS" or "Exhaustive".
	Algorithm string
	// Lambda is the exponential decay rate per unit of stream time
	// (0 disables recency decay).
	Lambda float64
	// Shards processes the query set in parallel partitions (default 1).
	Shards int
	// DefaultK is the result size used when Register is called with
	// k ≤ 0 (default 10).
	DefaultK int
	// SnippetLength retains the first N runes of each published
	// document for display in Results (0 disables retention).
	SnippetLength int
	// Stemming applies Porter stemming to query and document tokens,
	// so "monitoring" matches "monitors".
	Stemming bool
}

// Engine is the text-level continuous top-k monitor. It is safe for
// concurrent use.
type Engine struct {
	mu       sync.Mutex
	opts     Options
	vocab    *textproc.Vocabulary
	tok      *textproc.Tokenizer
	weighter *textproc.Weighter
	mon      *core.Monitor
	nextDoc  uint64
	snips    map[uint64]string
}

// ErrNoTerms reports a query or document whose text yields no usable
// terms after tokenization.
var ErrNoTerms = errors.New("ctk: no usable terms after tokenization")

// New creates an empty Engine.
func New(opts Options) (*Engine, error) {
	if opts.DefaultK <= 0 {
		opts.DefaultK = 10
	}
	algoName := opts.Algorithm
	if algoName == "" {
		algoName = string(core.AlgoMRIO)
	}
	alg, err := core.ParseAlgorithm(algoName)
	if err != nil {
		return nil, err
	}
	vocab := textproc.NewVocabulary()
	mon, err := core.NewMonitor(core.Config{
		Algorithm: alg,
		Lambda:    opts.Lambda,
		Shards:    opts.Shards,
	}, nil)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		opts:     opts,
		vocab:    vocab,
		tok:      textproc.NewTokenizer(),
		weighter: textproc.NewWeighter(vocab, textproc.WeightLogTFIDF),
		mon:      mon,
	}
	if opts.SnippetLength > 0 {
		e.snips = make(map[uint64]string)
	}
	return e, nil
}

// analyze runs the engine's token pipeline (tokenize, optional stem).
func (e *Engine) analyze(text string) []string {
	tokens := e.tok.Tokenize(text)
	if e.opts.Stemming {
		tokens = textproc.StemAll(tokens)
	}
	return tokens
}

// Register adds a continuous query from keyword text. Keywords may
// repeat to express preference weight ("go go databases" weights "go"
// double). k ≤ 0 uses the engine default.
func (e *Engine) Register(keywords string, k int) (QueryID, error) {
	if k <= 0 {
		k = e.opts.DefaultK
	}
	tokens := e.analyze(keywords)
	if len(tokens) == 0 {
		return 0, fmt.Errorf("%w: %q", ErrNoTerms, keywords)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	vec := e.weighter.VectorFromTokens(tokens)
	id, err := e.mon.AddQuery(core.QueryDef{Vec: vec, K: k})
	if err != nil {
		return 0, err
	}
	return QueryID(id), nil
}

// Unregister removes a query.
func (e *Engine) Unregister(id QueryID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mon.RemoveQuery(uint32(id))
}

// PublishStats reports the matching work one publication caused.
type PublishStats struct {
	// DocID is the identifier assigned to the document.
	DocID uint64
	// Updated counts queries whose top-k changed.
	Updated int
	// Evaluated counts queries scored exactly.
	Evaluated int
}

// Publish feeds one document into the stream at the given time (any
// non-decreasing float timeline: seconds, unix time...). Documents
// with no usable terms are accepted (they match nothing).
func (e *Engine) Publish(text string, at float64) (PublishStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	vec := e.weighter.DocumentVector(e.analyze(text))
	id := e.nextDoc
	e.nextDoc++
	st, err := e.mon.Process(corpus.Document{ID: id, Vec: vec}, at)
	if err != nil {
		return PublishStats{}, err
	}
	if e.snips != nil {
		r := []rune(text)
		if len(r) > e.opts.SnippetLength {
			r = r[:e.opts.SnippetLength]
		}
		e.snips[id] = string(r)
	}
	return PublishStats{DocID: id, Updated: st.Matched, Evaluated: st.Evaluated}, nil
}

// Results returns a query's current top-k, best first, with
// present-time scores.
func (e *Engine) Results(id QueryID) ([]Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	top, err := e.mon.Top(uint32(id))
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(top))
	for i, r := range top {
		out[i] = Result{DocID: r.DocID, Score: r.Score}
		if e.snips != nil {
			out[i].Snippet = e.snips[r.DocID]
		}
	}
	return out, nil
}

// Stats summarizes engine activity.
type Stats struct {
	Queries   int
	Documents uint64
	Evaluated int
	Matched   int
}

// Stats returns cumulative counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.mon.Totals()
	return Stats{
		Queries:   e.mon.NumQueries(),
		Documents: e.mon.Events(),
		Evaluated: t.Evaluated,
		Matched:   t.Matched,
	}
}
