package ctk

import (
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/notify"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Default publish-trace sampling: one publish in every
// defaultTraceEvery lands in a ring of traceRingSize stage-timing
// records (readable via Engine.Traces / GET /v1/debug/trace).
const (
	defaultTraceEvery = 64
	traceRingSize     = 256
)

// instruments is the engine's hot-path metric set: handles resolved
// once at construction so the publish path records through direct
// atomic operations — no registry lookups, no locks, no allocations.
// A nil *instruments (Options.DisableMetrics) turns every record call
// into a nil check.
type instruments struct {
	publishes *obs.Counter // Publish/PublishBatch calls accepted
	docs      *obs.Counter // documents accepted
	stages    [obs.StageCount]*obs.Histogram
	trace     *obs.TraceRing
}

// initObs builds the engine's metrics registry and, unless metrics are
// disabled, registers the hot-path instruments and the scrape-time
// collectors over the engine's existing stats machinery. Called from
// New and from ReadSnapshot (which constructs the Engine directly);
// Open additionally attaches the durability instruments afterwards.
func (e *Engine) initObs() {
	e.initHotPath()
	e.reg = obs.NewRegistry()
	if e.opts.DisableMetrics {
		return
	}
	im := &instruments{
		publishes: e.reg.Counter("ctk_publishes_total",
			"Publish/PublishBatch calls accepted.", nil),
		docs: e.reg.Counter("ctk_published_docs_total",
			"Documents accepted into the stream.", nil),
	}
	for s := obs.Stage(0); s < obs.StageCount; s++ {
		im.stages[s] = e.reg.Histogram("ctk_publish_stage_seconds",
			"Time spent per publish pipeline stage.",
			obs.Labels{"stage": s.String()})
	}
	every := e.opts.TraceEvery
	if every == 0 {
		every = defaultTraceEvery
	}
	if every > 0 {
		im.trace = obs.NewTraceRing(traceRingSize, every)
	}
	e.im = im

	// Rebuild timings record inside the monitor's install path.
	e.mon.SetInstruments(&core.Instruments{
		BuildSeconds: e.reg.Histogram("ctk_rebuild_build_seconds",
			"Background generation build duration.", nil),
		InstallSeconds: e.reg.Histogram("ctk_rebuild_install_seconds",
			"Mutation-path stall while installing a built generation.", nil),
	})

	// Broker delivery counters and drain-tier timings record inside
	// internal/notify.
	e.broker.SetInstruments(notify.Instruments{
		Updates: e.reg.Counter("ctk_notify_updates_total",
			"Top-k change notifications produced (one per changed query per publish).", nil),
		Deliveries: e.reg.Counter("ctk_notify_deliveries_total",
			"Updates handed to subscriber buffers.", nil),
		Drops: e.reg.Counter("ctk_notify_drops_total",
			"Stale updates coalesced away because a subscriber fell behind.", nil),
		Filtered: e.reg.Counter("ctk_notify_filtered_total",
			"Deliveries suppressed by per-subscriber filters (TopN/MinRankChange).", nil),
		DrainLatency: e.reg.Histogram("ctk_notify_drain_latency_seconds",
			"Publish-to-handed-to-buffer latency per materialized update.", nil),
	})

	// Scrape-time collectors: everything below reads the engine's
	// existing stats surface under the read lock, so a scrape costs a
	// few short RLock sections and never touches the publish path.
	e.reg.GaugeFunc("ctk_queries",
		"Live registered queries.", nil,
		func() float64 { return float64(e.Stats().Queries) })
	e.reg.CounterFunc("ctk_documents_total",
		"Documents processed over the engine's lifetime.", nil,
		func() float64 { return float64(e.Stats().Documents) })
	e.reg.CounterFunc("ctk_evaluated_total",
		"Exact query evaluations over the engine's lifetime.", nil,
		func() float64 { return float64(e.Stats().Evaluated) })
	e.reg.CounterFunc("ctk_matched_total",
		"(query, document) top-k admissions over the engine's lifetime.", nil,
		func() float64 { return float64(e.Stats().Matched) })
	e.reg.CounterFunc("ctk_delta_block_skips_total",
		"Delta-segment skip blocks pruned by block-max bounds.", nil,
		func() float64 { return float64(e.Stats().DeltaBlocksSkipped) })
	e.reg.CounterFunc("ctk_delta_block_scans_total",
		"Delta-segment skip blocks scanned posting by posting.", nil,
		func() float64 { return float64(e.Stats().DeltaBlocksScanned) })
	e.reg.CounterFunc("ctk_quant_pruned_total",
		"Postings pruned by the quantized impact bounds (SortQuer/TPS).", nil,
		func() float64 { return float64(e.Stats().QuantPruned) })
	e.reg.CounterFunc("ctk_scratch_grows_total",
		"Per-event scratch buffers grown (nonzero only while warming up).", nil,
		func() float64 { return float64(e.Stats().ScratchGrows) })
	e.reg.GaugeFunc("ctk_snippets",
		"Document snippets currently retained.", nil,
		func() float64 { return float64(e.Stats().Snippets) })
	e.reg.GaugeFunc("ctk_stream_time",
		"Stream time of the latest accepted publication.", nil,
		e.StreamTime)

	// Per-shard × per-partition occupancy from the adaptive
	// partitioning machinery. The stats slice is shard-major, so the
	// partition label is the position within its shard and the
	// (shard, partition) pair identifies one matching worker.
	partitions := func(emit func(obs.Labels, float64), value func(PartitionStat) float64) {
		prevShard, idx := -1, 0
		for _, p := range e.Stats().Partitions {
			if p.Shard != prevShard {
				prevShard, idx = p.Shard, 0
			}
			emit(obs.Labels{
				"shard":     strconv.Itoa(p.Shard),
				"partition": strconv.Itoa(idx),
			}, value(p))
			idx++
		}
	}
	e.reg.Collect("ctk_partition_busy_seconds_total",
		"Matching work time accumulated per intra-shard partition.",
		obs.TypeCounter, func(emit func(obs.Labels, float64)) {
			partitions(emit, func(p PartitionStat) float64 { return p.BusyMS / 1e3 })
		})
	e.reg.Collect("ctk_partition_evaluated_total",
		"Exact evaluations accumulated per intra-shard partition.",
		obs.TypeCounter, func(emit func(obs.Labels, float64)) {
			partitions(emit, func(p PartitionStat) float64 { return float64(p.Evaluated) })
		})
	e.reg.Collect("ctk_partition_queries",
		"Queries currently assigned per intra-shard partition.",
		obs.TypeGauge, func(emit func(obs.Labels, float64)) {
			partitions(emit, func(p PartitionStat) float64 { return float64(p.Queries) })
		})

	// Generational-index churn state.
	e.reg.GaugeFunc("ctk_generation",
		"Installed index generation number.", nil,
		func() float64 { return float64(e.Stats().Gen.Generation) })
	e.reg.CounterFunc("ctk_rebuilds_total",
		"Generation builds completed and installed.", nil,
		func() float64 { return float64(e.Stats().Gen.Builds) })
	e.reg.CounterFunc("ctk_rebuild_failures_total",
		"Generation builds that failed.", nil,
		func() float64 { return float64(e.Stats().Gen.FailedBuilds) })
	e.reg.GaugeFunc("ctk_delta_queries",
		"Queries living in the append-only delta segment.", nil,
		func() float64 { return float64(e.Stats().Gen.DeltaQueries) })
	e.reg.GaugeFunc("ctk_tombstones",
		"Unregistered queries awaiting the next rebuild.", nil,
		func() float64 { return float64(e.Stats().Gen.Tombstones) })

	// Broker fan-out shape. Counts reads two maintained atomics, so a
	// scrape never contends with publish or subscriber churn.
	e.reg.GaugeFunc("ctk_notify_topics",
		"Query topics with live state in the broker.", nil,
		func() float64 { t, _ := e.broker.Counts(); return float64(t) })
	e.reg.GaugeFunc("ctk_notify_subscribers",
		"Attached watcher subscriptions.", nil,
		func() float64 { _, s := e.broker.Counts(); return float64(s) })
	e.reg.Collect("ctk_notify_queue_depth",
		"Changed topics awaiting drain, per broker shard.",
		obs.TypeGauge, func(emit func(obs.Labels, float64)) {
			for i := 0; i < e.broker.NumShards(); i++ {
				emit(obs.Labels{"shard": strconv.Itoa(i)},
					float64(e.broker.QueueDepth(i)))
			}
		})
}

// Metrics returns the engine's metrics registry. Always non-nil; with
// Options.DisableMetrics it is empty but still renders. The server
// layer scrapes it for GET /v1/metrics and /v1/debug/vars.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Traces returns the sampled publish stage-timing traces, newest
// first (nil when tracing is disabled). Each trace breaks one publish
// into analyze / match / notify / wal_append / fsync nanoseconds.
func (e *Engine) Traces() []obs.Trace {
	if e.im == nil {
		return nil
	}
	return e.im.trace.Snapshot()
}

// stageClock accumulates per-stage nanoseconds for one publish. It
// lives on the caller's stack (nothing it is passed to retains it, so
// it never escapes), and when instrumentation is off every method is a
// single branch. Stage boundaries are contiguous — each mark attributes
// everything since the previous mark — so one publish costs one clock
// read per stage plus the start. That puts the small glue between
// stages inside a stage rather than in an unattributed gap: "analyze"
// includes the lock wait and tf-idf weighting, "notify" includes
// snippet retention. Stage sums still come out ≤ the call's wall time
// (the final record bookkeeping is after the last mark).
type stageClock struct {
	on   bool
	t0   time.Time
	last time.Time
	ns   [obs.StageCount]uint64
}

// clock starts a stage clock for one publish call.
func (e *Engine) clock() stageClock {
	c := stageClock{on: e.im != nil}
	if c.on {
		c.t0 = time.Now()
		c.last = c.t0
	}
	return c
}

// mark attributes the time since the previous mark to stage s.
func (c *stageClock) mark(s obs.Stage) {
	if c == nil || !c.on {
		return
	}
	now := time.Now()
	if d := now.Sub(c.last); d > 0 {
		c.ns[s] += uint64(d)
	}
	c.last = now
}

// record folds one accepted publish into the engine's metrics: stage
// histograms, throughput counters, and — for one publish in N — the
// trace ring. Caller holds e.mu; everything here is atomic ops plus,
// on sampled publishes only, a short ring mutex.
func (im *instruments) record(c *stageClock, doc uint64, docs int, at float64) {
	if im == nil {
		return
	}
	im.publishes.Inc()
	im.docs.Add(uint64(docs))
	for s, ns := range &c.ns {
		if ns > 0 {
			im.stages[s].Observe(ns)
		}
	}
	if im.trace.Sample() {
		im.trace.Record(obs.Trace{
			Doc:   doc,
			Docs:  docs,
			At:    at,
			Unix:  c.t0.UnixNano(),
			Stage: c.ns,
			Total: nanosSince(c.t0),
		})
	}
}

// nanosSince is time.Since clamped at zero (a histogram-free sibling
// of obs's internal helper).
func nanosSince(t0 time.Time) uint64 {
	d := time.Since(t0)
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// instrumentDurability registers the durability subsystem's metrics
// once Open has attached it: WAL append/fsync instruments (recorded
// inside internal/wal), snapshot timing histograms (recorded by the
// snapshotter), and scrape-time collectors over the WAL's stats.
func (e *Engine) instrumentDurability(d *durable) {
	if e.im == nil {
		return
	}
	d.log.SetInstruments(wal.Instruments{
		Appends: e.reg.Counter("ctk_wal_appends_total",
			"Mutation records appended to the write-ahead log.", nil),
		SyncSeconds: e.reg.Histogram("ctk_wal_fsync_seconds",
			"WAL fsync duration (flush + file sync).", nil),
		Rotations: e.reg.Counter("ctk_wal_rotations_total",
			"WAL segment rotations.", nil),
	})
	d.snapCapture = e.reg.Histogram("ctk_snapshot_capture_seconds",
		"Snapshot capture duration (engine read lock held).", nil)
	d.snapEncode = e.reg.Histogram("ctk_snapshot_encode_seconds",
		"Snapshot encode+fsync+rename duration (off-lock).", nil)
	d.snapTotal = e.reg.Counter("ctk_snapshots_total",
		"Snapshots completed since boot.", nil)
	d.snapErrors = e.reg.Counter("ctk_snapshot_errors_total",
		"Snapshot attempts that failed.", nil)
	e.reg.GaugeFunc("ctk_wal_segments",
		"Live WAL segment files.", nil,
		func() float64 { return float64(d.log.Stats().Segments) })
	e.reg.GaugeFunc("ctk_wal_bytes",
		"Bytes across live WAL segments.", nil,
		func() float64 { return float64(d.log.Stats().Bytes) })
	e.reg.CounterFunc("ctk_wal_next_lsn",
		"Next log sequence number to be assigned.", nil,
		func() float64 { return float64(d.log.Stats().NextLSN) })
	e.reg.GaugeFunc("ctk_snapshot_last_lsn",
		"Drain LSN of the newest durable snapshot.", nil,
		func() float64 { return float64(d.stats().LastSnapshotLSN) })
}
