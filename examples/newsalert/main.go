// Newsalert simulates the paper's motivating application — news update
// filtering: a synthetic newswire streams thousands of articles while
// subscribers with keyword interests receive continuously refreshed
// top-k results; recency decay keeps stale stories from squatting in
// the results.
//
//	go run ./examples/newsalert
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/stream"
	"repro/internal/workload"
)

func main() {
	// A Wikipedia-statistics corpus stands in for the newswire
	// (DESIGN.md §6): Zipfian vocabulary, log-normal article lengths,
	// topic mixture for realistic co-occurrence.
	model := corpus.WikipediaModel(20000)

	// 5,000 subscribers with Connected interests: each subscriber's
	// keywords co-occur in real articles, like genuine topics do.
	cfg := workload.DefaultConfig(workload.Connected, 5000)
	cfg.K = 5
	queries, err := workload.Generate(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defs := make([]core.QueryDef, len(queries))
	for i, q := range queries {
		defs[i] = core.QueryDef{Vec: q.Vec, K: q.K}
	}

	// The monitor uses MRIO (the paper's algorithm) and a decay that
	// halves relevance every ~70 virtual seconds.
	mon, err := core.NewMonitor(core.Config{Algorithm: core.AlgoMRIO, Lambda: 0.01}, defs)
	if err != nil {
		log.Fatal(err)
	}

	// Stream 8,000 articles at 50/sec (Poisson arrivals).
	gen := corpus.NewGenerator(model, 7, 8000)
	src, err := stream.NewSource(gen, 50, 8)
	if err != nil {
		log.Fatal(err)
	}
	var updated, evaluated int
	for i := 0; i < 8000; i++ {
		ev := src.Next()
		st, err := mon.Process(ev.Doc, ev.Time)
		if err != nil {
			log.Fatal(err)
		}
		updated += st.Matched
		evaluated += st.Evaluated
		if (i+1)%2000 == 0 {
			fmt.Printf("after %5d articles: %7d result updates, %8d exact evaluations (%.1f per event)\n",
				i+1, updated, evaluated, float64(evaluated)/float64(i+1))
		}
	}

	// Show one subscriber's live result.
	top, err := mon.Top(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubscriber 0 (%d keywords, k=%d) current top stories:\n", len(defs[0].Vec), defs[0].K)
	for rank, r := range top {
		fmt.Printf("  %d. article %d  relevance %.5f\n", rank+1, r.DocID, r.Score)
	}
	totals := mon.Totals()
	fmt.Printf("\nserver totals: %d events, %d evaluations, %d jump-all strides\n",
		mon.Events(), totals.Evaluated, totals.JumpAlls)
}
