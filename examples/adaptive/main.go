// Adaptive demonstrates the paper's core technical idea live: how the
// locally adaptive bounds of MRIO (Eq. 3) shrink the work per stream
// event relative to RIO's global bounds (Eq. 2) and to the exhaustive
// strategy — the quantity the paper proves minimal (Lemma 2).
//
// It runs the identical document stream through Exhaustive, RIO and
// the three MRIO bound implementations, and reports exact evaluations,
// pivot iterations and wall time side by side.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/algo"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/rangemax"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/workload"
)

func main() {
	const (
		nQueries = 30000
		vocab    = 10000
		warmup   = 1500
		measure  = 500
		lambda   = 0.01
	)
	model := corpus.WikipediaModel(vocab)
	cfg := workload.DefaultConfig(workload.Connected, nQueries)
	queries, err := workload.Generate(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	vecs := make([]textproc.Vector, len(queries))
	ks := make([]int, len(queries))
	for i, q := range queries {
		vecs[i] = q.Vec
		ks[i] = q.K
	}
	ix, err := index.Build(vecs, ks)
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("index: %d queries, %d lists, %d postings (max list %d)\n\n",
		st.Queries, st.Lists, st.Postings, st.MaxList)

	gen := corpus.NewGenerator(model, 21, warmup+measure)
	src, err := stream.NewSource(gen, 100, 22)
	if err != nil {
		log.Fatal(err)
	}
	events := src.Take(warmup + measure)

	build := []struct {
		name string
		mk   func() (algo.Processor, error)
	}{
		{"Exhaustive", func() (algo.Processor, error) { return algo.NewExhaustive(ix) }},
		{"RIO", func() (algo.Processor, error) { return algo.NewRIO(ix) }},
		{"MRIO(seg)", func() (algo.Processor, error) { return algo.NewMRIO(ix, rangemax.KindSegTree) }},
		{"MRIO(block)", func() (algo.Processor, error) { return algo.NewMRIO(ix, rangemax.KindBlock) }},
		{"MRIO(sparse)", func() (algo.Processor, error) { return algo.NewMRIO(ix, rangemax.KindSparse) }},
	}

	fmt.Printf("%-13s %12s %12s %12s %12s\n", "algorithm", "evals/event", "iters/event", "jumpalls/ev", "time/event")
	for _, b := range build {
		proc, err := b.mk()
		if err != nil {
			log.Fatal(err)
		}
		decay, err := stream.NewDecay(lambda)
		if err != nil {
			log.Fatal(err)
		}
		var total algo.EventMetrics
		var elapsed time.Duration
		for i, ev := range events {
			for decay.NeedsRebase(ev.Time) {
				proc.Rebase(decay.RebaseTo(ev.Time))
			}
			e := decay.Factor(ev.Time)
			start := time.Now()
			met := proc.ProcessEvent(ev.Doc, e)
			if i >= warmup {
				elapsed += time.Since(start)
				total.Evaluated += met.Evaluated
				total.Iterations += met.Iterations
				total.JumpAlls += met.JumpAlls
			}
		}
		n := float64(measure)
		fmt.Printf("%-13s %12.1f %12.1f %12.1f %12s\n",
			b.name,
			float64(total.Evaluated)/n,
			float64(total.Iterations)/n,
			float64(total.JumpAlls)/n,
			(elapsed / time.Duration(measure)).Round(time.Microsecond))
	}
	fmt.Println("\nThe locally adaptive bounds (MRIO) evaluate far fewer queries per")
	fmt.Println("event than RIO's global bounds, which in turn evaluate a fraction")
	fmt.Println("of the exhaustive candidate set — the paper's Lemma 2 in action.")
}
