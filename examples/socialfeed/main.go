// Socialfeed simulates the paper's second motivating application —
// social network notifications — with the dynamics a real deployment
// has: users join and leave continuously (query churn), and the
// monitor's state survives a restart via snapshots.
//
//	go run ./examples/socialfeed
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/workload"
)

func main() {
	model := corpus.WikipediaModel(10000)
	rng := rand.New(rand.NewSource(99))

	// Seed interests for the initial user base.
	cfg := workload.DefaultConfig(workload.Connected, 3000)
	cfg.K = 3
	queries, err := workload.Generate(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Keep a reserve of definitions to register as "new users" later.
	active := queries[:2000]
	reserve := queries[2000:]

	defs := make([]core.QueryDef, len(active))
	for i, q := range active {
		defs[i] = core.QueryDef{Vec: q.Vec, K: q.K}
	}
	mon, err := core.NewMonitor(core.Config{
		Algorithm: core.AlgoMRIO,
		Lambda:    0.02,
		Shards:    4, // notification backends shard for throughput
	}, defs)
	if err != nil {
		log.Fatal(err)
	}

	gen := corpus.NewGenerator(model, 11, 6000)
	src, err := stream.NewSource(gen, 80, 12)
	if err != nil {
		log.Fatal(err)
	}

	var added int
	for i := 0; i < 4000; i++ {
		ev := src.Next()
		if _, err := mon.Process(ev.Doc, ev.Time); err != nil {
			log.Fatal(err)
		}
		// User growth: ~1% of events bring a new subscriber.
		if rng.Float64() < 0.01 && len(reserve) > 0 {
			q := reserve[0]
			reserve = reserve[1:]
			if _, err := mon.AddQuery(core.QueryDef{Vec: q.Vec, K: q.K}); err != nil {
				log.Fatal(err)
			}
			added++
		}
	}
	fmt.Printf("phase 1: %d events, %d users joined, %d live queries\n",
		mon.Events(), added, mon.NumQueries())

	// Snapshot the server and "restart" it.
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, mon); err != nil {
		fmt.Printf("snapshot skipped (%v); continuing with live monitor\n", err)
	} else {
		size := buf.Len()
		restored, err := snapshot.Load(&buf)
		if err != nil {
			fmt.Printf("restore skipped (%v); continuing with live monitor\n", err)
		} else {
			mon = restored
			fmt.Printf("snapshot: %d bytes, restored %d queries at t=%.2f\n",
				size, mon.NumQueries(), mon.Now())
		}
	}

	// Keep streaming on the (possibly restored) monitor, now with some
	// users leaving (queries removed live).
	removed := 0
	for i := 0; i < 2000; i++ {
		ev := src.Next()
		if _, err := mon.Process(ev.Doc, ev.Time); err != nil {
			log.Fatal(err)
		}
		if rng.Float64() < 0.005 {
			victim := uint32(3 + rng.Intn(1997)) // spare users 0-2 for the demo output
			if err := mon.RemoveQuery(victim); err == nil {
				removed++
			}
		}
	}
	fmt.Printf("phase 2: %d users left, %d live queries\n", removed, mon.NumQueries())

	// Print a few users' notification feeds.
	fmt.Println("\nsample notification feeds:")
	for g := uint32(0); g < 3; g++ {
		top, err := mon.Top(g)
		if err != nil {
			continue
		}
		fmt.Printf("  user %d:", g)
		for _, r := range top {
			fmt.Printf("  post %d (%.4f)", r.DocID, r.Score)
		}
		fmt.Println()
	}
	fmt.Printf("\nserver totals after restart: %d events processed\n", mon.Events())
}
