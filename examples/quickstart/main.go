// Quickstart: register keyword queries, publish documents, read each
// query's continuously maintained top-k.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// An engine with mild recency decay: scores halve roughly every
	// 70 time units.
	engine, err := ctk.New(ctk.Options{Lambda: 0.01, SnippetLength: 60})
	if err != nil {
		log.Fatal(err)
	}

	// Two standing queries — the "user preferences" of the paper.
	climate, err := engine.Register("climate policy emissions", 3)
	if err != nil {
		log.Fatal(err)
	}
	chips, err := engine.Register("semiconductor fabrication chips", 3)
	if err != nil {
		log.Fatal(err)
	}

	// A small document stream. In production these would arrive from a
	// feed; timestamps are any non-decreasing timeline.
	docs := []string{
		"Parliament debates a new climate policy targeting industrial emissions by 2035.",
		"A semiconductor startup unveils a novel chips packaging technique for fabrication yield.",
		"Football season opens with a dramatic overtime finish.",
		"Emissions trading scheme reform: climate policy analysts react.",
		"Fabrication capacity for advanced chips remains the semiconductor industry's bottleneck.",
		"Another climate summit ends with a non-binding emissions pledge.",
	}
	for i, text := range docs {
		stats, err := engine.Publish(text, float64(i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("doc %d updated %d queries\n", stats.DocID, stats.Updated)
	}

	for name, id := range map[string]ctk.QueryID{"climate": climate, "chips": chips} {
		fmt.Printf("\ntop documents for %q:\n", name)
		results, err := engine.Results(id)
		if err != nil {
			log.Fatal(err)
		}
		for rank, r := range results {
			fmt.Printf("  %d. doc %d (score %.4f) %s…\n", rank+1, r.DocID, r.Score, r.Snippet)
		}
	}
}
