// Watch demonstrates the push-delivery pipeline: instead of polling
// Results, subscribers hold a channel from Engine.Subscribe and the
// engine pushes each watched query's fresh top-k the moment it
// changes. A deliberately slow subscriber shows coalescing — it
// receives only the latest state, with the skipped intermediates
// visible as gaps in the update sequence numbers.
//
//	go run ./examples/watch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro"
)

func main() {
	engine, err := ctk.New(ctk.Options{Lambda: 0.05, SnippetLength: 60, Stemming: true})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	climate, err := engine.Register("wildfire evacuation drought", 3)
	if err != nil {
		log.Fatal(err)
	}
	markets, err := engine.Register("stock market rally earnings", 3)
	if err != nil {
		log.Fatal(err)
	}

	// A live watcher prints every change as it is pushed.
	liveCh, cancelLive, err := engine.Subscribe(climate, 16)
	if err != nil {
		log.Fatal(err)
	}
	defer cancelLive()
	// A slow watcher with a buffer of 1 reads only at the end: it will
	// have been coalesced to the final state of the markets query.
	slowCh, cancelSlow, err := engine.Subscribe(markets, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer cancelSlow()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for u := range liveCh {
			top := "(empty)"
			if len(u.Results) > 0 {
				top = fmt.Sprintf("doc %d  %.4f  %q", u.Results[0].DocID, u.Results[0].Score, u.Results[0].Snippet)
			}
			fmt.Printf("  push → climate seq=%-3d %d results, best: %s\n", u.Seq, len(u.Results), top)
		}
	}()

	// Stream a newswire: climate and markets stories interleaved with
	// noise. Every admission into a watched top-k is pushed above.
	rng := rand.New(rand.NewSource(7))
	stories := []string{
		"wildfire forces evacuation as drought deepens",
		"markets rally on strong earnings reports",
		"stock prices climb after earnings beat",
		"drought emergency spreads, evacuation ordered near wildfire",
		"city council debates parking meters",
		"earnings season lifts the stock market rally",
		"new wildfire ignites, drought conditions critical",
		"quiet day in parliamentary procedure",
	}
	for i := 0; i < 40; i++ {
		text := fmt.Sprintf("%s (wire %d)", stories[rng.Intn(len(stories))], i)
		if _, err := engine.Publish(text, float64(i)); err != nil {
			log.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let the live watcher drain
	}

	// The slow watcher now reads once: coalescing delivered only the
	// newest state, and the sequence number exposes how many updates
	// were skipped.
	u := <-slowCh
	_, seq, err := engine.ResultsSeq(markets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslow watcher woke up: markets seq=%d of %d total changes (%d coalesced away)\n",
		u.Seq, seq, u.Seq-1)
	for rank, r := range u.Results {
		fmt.Printf("  %d. doc %-3d %.4f  %q\n", rank+1, r.DocID, r.Score, r.Snippet)
	}

	st := engine.Stats()
	fmt.Printf("\nengine totals: %d docs, %d result updates across %d queries\n",
		st.Documents, st.Matched, st.Queries)
	cancelLive()
	wg.Wait()
}
