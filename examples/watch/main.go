// Watch demonstrates the push-delivery pipeline: instead of polling
// Results, subscribers hold a channel from Engine.Subscribe and the
// engine's broker pushes each watched query's fresh top-k from its
// drain tier the moment it changes. A deliberately slow subscriber
// shows coalescing — it receives only the latest state, with the
// skipped intermediates visible as gaps in the update sequence
// numbers — and a filtered subscriber (SubscribeOpts with TopN) hears
// only about changes to the leader, sleeping through churn below it.
//
//	go run ./examples/watch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro"
)

func main() {
	engine, err := ctk.New(ctk.Options{Lambda: 0.05, SnippetLength: 60, Stemming: true})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	climate, err := engine.Register("wildfire evacuation drought", 3)
	if err != nil {
		log.Fatal(err)
	}
	markets, err := engine.Register("stock market rally earnings", 3)
	if err != nil {
		log.Fatal(err)
	}

	// A live watcher prints every change as it is pushed.
	liveCh, cancelLive, err := engine.Subscribe(climate, 16)
	if err != nil {
		log.Fatal(err)
	}
	defer cancelLive()
	// A filtered watcher on the same query: TopN=1 delivers only when
	// the leading result changes — rank-2/3 churn is suppressed on the
	// broker's drain tier and shows up as gaps in its Seqs.
	leadCh, cancelLead, err := engine.SubscribeOpts(climate, ctk.SubscribeOptions{
		Buffer: 16,
		TopN:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cancelLead()
	// A slow watcher with a buffer of 1 reads only at the end: it will
	// have been coalesced to the final state of the markets query.
	slowCh, cancelSlow, err := engine.Subscribe(markets, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer cancelSlow()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for u := range liveCh {
			top := "(empty)"
			if len(u.Results) > 0 {
				top = fmt.Sprintf("doc %d  %.4f  %q", u.Results[0].DocID, u.Results[0].Score, u.Results[0].Snippet)
			}
			fmt.Printf("  push → climate seq=%-3d %d results, best: %s\n", u.Seq, len(u.Results), top)
		}
	}()
	go func() {
		defer wg.Done()
		for u := range leadCh {
			leader := "(empty)"
			if len(u.Results) > 0 {
				leader = fmt.Sprintf("doc %d", u.Results[0].DocID)
			}
			fmt.Printf("  push → climate LEADER CHANGE seq=%-3d now %s\n", u.Seq, leader)
		}
	}()

	// Stream a newswire: climate and markets stories interleaved with
	// noise. Every admission into a watched top-k is pushed above.
	rng := rand.New(rand.NewSource(7))
	stories := []string{
		"wildfire forces evacuation as drought deepens",
		"markets rally on strong earnings reports",
		"stock prices climb after earnings beat",
		"drought emergency spreads, evacuation ordered near wildfire",
		"city council debates parking meters",
		"earnings season lifts the stock market rally",
		"new wildfire ignites, drought conditions critical",
		"quiet day in parliamentary procedure",
	}
	for i := 0; i < 40; i++ {
		text := fmt.Sprintf("%s (wire %d)", stories[rng.Intn(len(stories))], i)
		if _, err := engine.Publish(text, float64(i)); err != nil {
			log.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let the live watchers drain
	}

	// The slow watcher now reads until it converges on the live state:
	// delivery is asynchronous, so the first read may predate the last
	// drain pass, but coalescing guarantees the stream ends at the
	// newest state with the drops visible as Seq gaps.
	_, seq, err := engine.ResultsSeq(markets)
	if err != nil {
		log.Fatal(err)
	}
	received := 0
	var u ctk.Update
	for u.Seq < seq {
		u = <-slowCh
		received++
	}
	fmt.Printf("\nslow watcher woke up: markets seq=%d after %d reads of %d total changes (%d coalesced away)\n",
		u.Seq, received, seq, int(seq)-received)
	for rank, r := range u.Results {
		fmt.Printf("  %d. doc %-3d %.4f  %q\n", rank+1, r.DocID, r.Score, r.Snippet)
	}

	st := engine.Stats()
	fmt.Printf("\nengine totals: %d docs, %d result updates across %d queries\n",
		st.Documents, st.Matched, st.Queries)
	cancelLive()
	cancelLead()
	wg.Wait()
}
