package ctk

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestEngineEndToEnd(t *testing.T) {
	e, err := New(Options{Lambda: 0.001, SnippetLength: 30})
	if err != nil {
		t.Fatal(err)
	}
	sports, err := e.Register("football championship goal", 3)
	if err != nil {
		t.Fatal(err)
	}
	markets, err := e.Register("stock market crash recession", 3)
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{
		"The championship final saw a stunning goal in extra time as the football world watched.",
		"Stock market indices fell sharply today amid recession fears and crash warnings.",
		"A quiet day in parliament with routine legislative business.",
		"Another football goal ruled out; the championship race tightens.",
	}
	for i, d := range docs {
		if _, err := e.Publish(d, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	top, err := e.Results(sports)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("sports results = %d, want 2 (docs 0 and 3)", len(top))
	}
	got := map[uint64]bool{top[0].DocID: true, top[1].DocID: true}
	if !got[0] || !got[3] {
		t.Fatalf("sports matched wrong docs: %+v", top)
	}
	if !strings.Contains(top[0].Snippet, " ") {
		t.Fatalf("snippet missing: %+v", top[0])
	}
	mtop, err := e.Results(markets)
	if err != nil {
		t.Fatal(err)
	}
	if len(mtop) != 1 || mtop[0].DocID != 1 {
		t.Fatalf("markets results = %+v", mtop)
	}
	st := e.Stats()
	if st.Queries != 2 || st.Documents != 4 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestEngineDecayPrefersRecent(t *testing.T) {
	e, err := New(Options{Lambda: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Register("kernel scheduler", 1)
	if err != nil {
		t.Fatal(err)
	}
	// A strong early match, then a weak late one far in the future.
	if _, err := e.Publish("kernel scheduler kernel scheduler deep dive", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Publish("the scheduler, among many other unrelated words in a much longer filler document", 30); err != nil {
		t.Fatal(err)
	}
	top, err := e.Results(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].DocID != 1 {
		t.Fatalf("decay did not promote recent doc: %+v", top)
	}
}

func TestEngineRegisterErrors(t *testing.T) {
	e, _ := New(Options{})
	if _, err := e.Register("the and of", 5); !errors.Is(err, ErrNoTerms) {
		t.Fatalf("stopword-only query err = %v", err)
	}
	if _, err := e.Register("", 5); !errors.Is(err, ErrNoTerms) {
		t.Fatalf("empty query err = %v", err)
	}
}

func TestEngineUnregister(t *testing.T) {
	e, _ := New(Options{})
	q, err := e.Register("quantum computing", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Unregister(q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Results(q); err == nil {
		t.Fatal("results of removed query returned")
	}
	if err := e.Unregister(q); err == nil {
		t.Fatal("double unregister accepted")
	}
}

func TestEngineDefaultK(t *testing.T) {
	e, _ := New(Options{DefaultK: 2})
	q, _ := e.Register("alpha beta", 0)
	for i := 0; i < 5; i++ {
		if _, err := e.Publish(fmt.Sprintf("alpha beta doc %c", 'a'+i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	top, _ := e.Results(q)
	if len(top) != 2 {
		t.Fatalf("DefaultK not honored: %d results", len(top))
	}
}

func TestEngineBadOptions(t *testing.T) {
	if _, err := New(Options{Algorithm: "NotAnAlgorithm"}); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestEngineAllAlgorithmsAgree(t *testing.T) {
	algos := []string{"Exhaustive", "MRIO", "RIO", "RTA", "SortQuer", "TPS"}
	queries := []string{
		"database index performance",
		"stream processing latency",
		"database stream",
	}
	var docs []string
	for i := 0; i < 40; i++ {
		docs = append(docs,
			fmt.Sprintf("doc %d touching database topics index structures performance %d", i, i%7),
			fmt.Sprintf("doc %d about stream processing and latency budgets %d", i, i%5),
		)
	}
	type resultSet [][]Result
	var all []resultSet
	for _, a := range algos {
		e, err := New(Options{Algorithm: a, Lambda: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		var qids []QueryID
		for _, q := range queries {
			id, err := e.Register(q, 4)
			if err != nil {
				t.Fatal(err)
			}
			qids = append(qids, id)
		}
		for i, d := range docs {
			if _, err := e.Publish(d, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		var rs resultSet
		for _, id := range qids {
			r, err := e.Results(id)
			if err != nil {
				t.Fatal(err)
			}
			rs = append(rs, r)
		}
		all = append(all, rs)
	}
	for i := 1; i < len(all); i++ {
		for q := range all[0] {
			if len(all[i][q]) != len(all[0][q]) {
				t.Fatalf("%s: query %d has %d results, oracle %d",
					algos[i], q, len(all[i][q]), len(all[0][q]))
			}
			for r := range all[0][q] {
				if all[i][q][r].DocID != all[0][q][r].DocID {
					t.Fatalf("%s: query %d rank %d: doc %d vs %d",
						algos[i], q, r, all[i][q][r].DocID, all[0][q][r].DocID)
				}
			}
		}
	}
}

func TestEngineConcurrentPublishReaders(t *testing.T) {
	e, _ := New(Options{Lambda: 0.01})
	q, err := e.Register("concurrent access pattern", 5)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := e.Results(q); err != nil {
				t.Error(err)
				return
			}
			e.Stats()
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := e.Publish(fmt.Sprintf("a concurrent access pattern doc %d", i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

func TestEngineStemming(t *testing.T) {
	e, err := New(Options{Stemming: true})
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Register("monitoring streams", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Publish("The system monitors several document streams continuously", 1); err != nil {
		t.Fatal(err)
	}
	top, err := e.Results(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 {
		t.Fatalf("stemmed match missing: %+v", top)
	}
	// Without stemming the same pair must not match on "monitoring".
	plain, _ := New(Options{})
	q2, _ := plain.Register("monitoring", 3)
	plain.Publish("The system monitors things", 1)
	top2, _ := plain.Results(q2)
	if len(top2) != 0 {
		t.Fatalf("unstemmed engine matched morphological variant: %+v", top2)
	}
}
