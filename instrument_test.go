package ctk

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// instrumentedEngine builds an engine with a small query set and a
// warmed stream, for instrumentation tests.
func instrumentedEngine(t testing.TB, opts Options) *Engine {
	t.Helper()
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	for i := 0; i < 8; i++ {
		if _, err := e.Register(fmt.Sprintf("alpha beta topic%d", i), 3); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestEngineMetrics exercises the engine's metric surface end to end:
// publish, then assert the stage histograms filled, counters moved and
// the exposition renders the expected families.
func TestEngineMetrics(t *testing.T) {
	e := instrumentedEngine(t, Options{Lambda: 0.01, TraceEvery: 1})
	for i := 0; i < 20; i++ {
		if _, err := e.Publish(fmt.Sprintf("alpha beta gamma doc%d", i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.PublishBatch([]string{"alpha one", "beta two"}, 20); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := e.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"ctk_publishes_total 21",
		"ctk_published_docs_total 22",
		"ctk_documents_total 22",
		"ctk_queries 8",
		`ctk_publish_stage_seconds_count{stage="analyze"} 21`,
		`ctk_publish_stage_seconds_count{stage="match"} 21`,
		`ctk_publish_stage_seconds_bucket{stage="match",le="`,
		`ctk_partition_busy_seconds_total{partition="0",shard="0"}`,
		"ctk_notify_updates_total",
		"ctk_generation 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}

	// The notify stage only fires when something is subscribed — with
	// no watchers the broker publish is a map bump, which may round to
	// 0ns; the stage histogram must still exist (count ≥ 0 renders).
	vars := e.Metrics().Vars()
	if vars["ctk_publishes_total"].(float64) != 21 {
		t.Fatalf("vars publishes = %v", vars["ctk_publishes_total"])
	}

	traces := e.Traces()
	if len(traces) != 21 {
		t.Fatalf("traces = %d, want 21 (TraceEvery 1)", len(traces))
	}
	// Newest first: the batch publish is trace 0.
	if traces[0].Docs != 2 || traces[0].Doc != 20 {
		t.Fatalf("newest trace = %+v, want batch of 2 starting at doc 20", traces[0])
	}
	if traces[0].Total == 0 || traces[0].Stage[obs.StageMatch] == 0 {
		t.Fatalf("trace has empty timings: %+v", traces[0])
	}
}

// TestDisableMetrics proves the ablation control: same results, empty
// registry, no tracing.
func TestDisableMetrics(t *testing.T) {
	e := instrumentedEngine(t, Options{Lambda: 0.01, DisableMetrics: true})
	if _, err := e.Publish("alpha beta doc", 1); err != nil {
		t.Fatal(err)
	}
	if e.Metrics() == nil {
		t.Fatal("Metrics() must be non-nil even when disabled")
	}
	var sb strings.Builder
	if err := e.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "" {
		t.Fatalf("disabled registry rendered: %q", sb.String())
	}
	if e.Traces() != nil {
		t.Fatal("disabled engine must not trace")
	}
	if st := e.Stats(); st.Documents != 1 || st.Queries != 8 {
		t.Fatalf("stats diverged under DisableMetrics: %+v", st)
	}
}

// TestTraceEveryNegativeDisablesTracing keeps metrics on but tracing
// off.
func TestTraceEveryNegativeDisablesTracing(t *testing.T) {
	e := instrumentedEngine(t, Options{TraceEvery: -1})
	if _, err := e.Publish("alpha beta", 1); err != nil {
		t.Fatal(err)
	}
	if e.Traces() != nil {
		t.Fatal("TraceEvery < 0 must disable tracing")
	}
	if got := e.Metrics().Vars()["ctk_publishes_total"].(float64); got != 1 {
		t.Fatalf("metrics should stay on: publishes = %v", got)
	}
}

// benchmarkPublish measures the steady-state publish path. Run with
// -benchmem: the Instrumented/Uninstrumented pair must report the SAME
// allocs/op — the instrumentation adds zero allocations per event (the
// ablobs experiment gates on the same property via MemStats deltas).
func benchmarkPublish(b *testing.B, disable bool) {
	e := instrumentedEngine(b, Options{Lambda: 0.01, DisableMetrics: disable})
	texts := make([]string, 64)
	for i := range texts {
		texts[i] = fmt.Sprintf("alpha beta gamma delta doc%d word%d", i, i*7)
	}
	for i := 0; i < 256; i++ { // warm idf/vocab so steady state is measured
		if _, err := e.Publish(texts[i%len(texts)], float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Publish(texts[i%len(texts)], float64(256+i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublishInstrumented(b *testing.B)   { benchmarkPublish(b, false) }
func BenchmarkPublishUninstrumented(b *testing.B) { benchmarkPublish(b, true) }
