package ctk

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/textproc"
	"repro/internal/wal"
)

// Fsync policies for Durability.Fsync.
const (
	// FsyncAlways syncs the WAL on every mutation before it is
	// acknowledged: no acknowledged operation is ever lost, at the cost
	// of one fsync per publish or query mutation.
	FsyncAlways = "always"
	// FsyncInterval batches syncs on a timer: mutations are
	// acknowledged from the OS write pipeline and a crash can lose at
	// most the last FsyncInterval's worth of them.
	FsyncInterval = "interval"
)

// Durability configures crash recovery for an Engine opened with Open.
// The zero value (empty Dir) disables durability entirely.
type Durability struct {
	// Dir is the data directory: snapshots live at its top level
	// ("snap-%016x.snap", hex WAL drain point) and WAL segments under
	// its "wal/" subdirectory. Empty disables durability.
	Dir string
	// Fsync selects the WAL sync policy: FsyncAlways (default) or
	// FsyncInterval.
	Fsync string
	// FsyncInterval is the sync cadence under FsyncInterval (default
	// 50ms). It bounds the loss window of a crash.
	FsyncInterval time.Duration
	// SnapshotOps triggers a background snapshot after this many
	// logged operations (default 8192; negative disables the
	// op-count trigger).
	SnapshotOps int
	// SnapshotInterval additionally triggers a background snapshot on
	// a wall-clock timer when operations are pending (0 disables).
	SnapshotInterval time.Duration
	// KeepSnapshots is how many snapshot files rotation retains
	// (default 2 — the newest plus one fallback).
	KeepSnapshots int
	// SegmentBytes is the WAL segment rotation threshold (default
	// 8 MiB).
	SegmentBytes int64
}

// withDefaults resolves zero fields and validates the policy name.
func (d Durability) withDefaults() (Durability, error) {
	switch d.Fsync {
	case "":
		d.Fsync = FsyncAlways
	case FsyncAlways, FsyncInterval:
	default:
		return d, fmt.Errorf("ctk: unknown fsync policy %q", d.Fsync)
	}
	if d.FsyncInterval <= 0 {
		d.FsyncInterval = 50 * time.Millisecond
	}
	if d.SnapshotOps == 0 {
		d.SnapshotOps = 8192
	}
	if d.KeepSnapshots <= 0 {
		d.KeepSnapshots = 2
	}
	return d, nil
}

// SnapshotInfo describes one on-disk snapshot.
type SnapshotInfo struct {
	// LSN is the WAL drain point: every logged operation below it is
	// reflected in the snapshot.
	LSN uint64
	// StreamTime is the engine stream time the snapshot captured.
	StreamTime float64
	// Path is the snapshot file.
	Path string
}

// DurabilityStats reports the durability subsystem's state (zero
// value, Enabled false, when the engine was built without Open).
type DurabilityStats struct {
	Enabled bool
	// WALSegments and WALBytes are the live log's footprint; NextLSN is
	// the next operation's log sequence number.
	WALSegments int
	WALBytes    int64
	NextLSN     uint64
	// LastSnapshotLSN and LastSnapshotStreamTime describe the newest
	// snapshot (zero before any).
	LastSnapshotLSN        uint64
	LastSnapshotStreamTime float64
	// Snapshots counts snapshot files currently retained.
	Snapshots int
	// Replayed is the number of WAL records replayed at boot.
	Replayed int
	// LastError is the most recent background durability failure
	// (snapshot or interval sync), empty when healthy.
	LastError string
}

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	walSubdir  = "wal"
	// analyzerMeta is the data-dir file pinning the canonical analyzer
	// spec. WAL records hold raw text, so replay must run under the
	// pipeline that originally analyzed it — and before the first
	// snapshot exists the WAL is the only state, so the pin cannot live
	// in snapshots alone.
	analyzerMeta = "analyzer"
)

// durable is the engine's durability manager: it owns the WAL, the
// snapshot files, and the background goroutine that syncs and
// snapshots. Attached only by Open, after recovery has replayed the
// log — so replay's re-application of operations is never re-logged.
type durable struct {
	e   *Engine
	log *wal.Log
	cfg Durability

	// ops counts logged operations since the last snapshot; crossing
	// cfg.SnapshotOps kicks the background snapshotter.
	ops  atomic.Int64
	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
	off  sync.Once

	// snapMu serializes snapshot writers (the background goroutine and
	// on-demand Engine.Snapshot calls).
	snapMu sync.Mutex

	// mu guards the stats fields below; always a leaf lock.
	mu        sync.Mutex
	lastSnap  SnapshotInfo
	snapFiles int
	replayed  int
	lastErr   string

	// Snapshot instruments, set by Engine.instrumentDurability right
	// after attach (nil handles record nothing). WAL append/fsync
	// instruments live inside the log itself.
	snapCapture *obs.Histogram
	snapEncode  *obs.Histogram
	snapTotal   *obs.Counter
	snapErrors  *obs.Counter
}

// Open builds an engine with durability: it restores the newest valid
// snapshot in opts.Durability.Dir (or starts empty), replays the WAL
// records the snapshot does not cover, and then serves — logging every
// subsequent acknowledged mutation and snapshotting in the background
// per the configured policy. A crash at any point recovers to exactly
// the acknowledged operation sequence.
func Open(opts Options) (*Engine, error) {
	cfg, err := opts.Durability.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ctk: Open requires Durability.Dir (use New for a purely in-memory engine)")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ctk: data dir: %w", err)
	}
	// A crash between temp-write and rename leaves *.tmp litter;
	// nothing references it.
	if tmps, _ := filepath.Glob(filepath.Join(cfg.Dir, "*.tmp")); len(tmps) > 0 {
		for _, p := range tmps {
			os.Remove(p)
		}
	}

	// The analyzer is a persisted semantic of the data directory: its
	// meta file (written at first boot) pins the pipeline WAL replay
	// must run under. An explicit Options.Analyzer (or the deprecated
	// Stemming alias) that disagrees is refused rather than silently
	// re-analyzing the persisted text stream differently.
	requested, err := requestedAnalyzer(opts)
	if err != nil {
		return nil, err
	}
	metaPath := filepath.Join(cfg.Dir, analyzerMeta)
	pinned := ""
	if b, rerr := os.ReadFile(metaPath); rerr == nil {
		canon, cerr := textproc.CanonicalSpec(strings.TrimSpace(string(b)))
		if cerr != nil {
			return nil, fmt.Errorf("ctk: analyzer meta %s: %w", metaPath, cerr)
		}
		if requested != "" && requested != canon {
			return nil, fmt.Errorf("%w: data dir %s was created under analyzer %q, options request %q",
				ErrAnalyzerMismatch, cfg.Dir, canon, requested)
		}
		pinned = canon
	} else if !os.IsNotExist(rerr) {
		return nil, fmt.Errorf("ctk: analyzer meta: %w", rerr)
	}

	// The recovered engine itself runs without durability until the
	// log is attached, so replay does not re-log what it re-applies.
	inner := opts
	inner.Durability = Durability{}
	if pinned != "" {
		inner.Analyzer = pinned
	}

	snaps, err := listSnapshots(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var (
		e        *Engine
		floor    uint64
		restored SnapshotInfo
	)
	for i := len(snaps) - 1; i >= 0; i-- {
		f, err := os.Open(snaps[i].path)
		if err != nil {
			continue
		}
		re, rerr := ReadSnapshot(f, inner)
		f.Close()
		if rerr == nil {
			e, floor = re, snaps[i].lsn
			// Capture the snapshot's own stream time before replay
			// advances the clock.
			restored = SnapshotInfo{LSN: floor, StreamTime: e.StreamTime(), Path: snaps[i].path}
			break
		}
		if errors.Is(rerr, ErrAnalyzerMismatch) {
			// Not corruption: the snapshot decoded fine and disagrees
			// with the requested pipeline. Falling back to an older
			// snapshot would silently diverge — surface it instead.
			return nil, rerr
		}
		// A snapshot that does not decode is a crash artifact or
		// corruption; fall back to the next-older one.
	}
	if e == nil {
		if e, err = New(inner); err != nil {
			return nil, err
		}
	}

	log, err := wal.Open(filepath.Join(cfg.Dir, walSubdir), floor, wal.Options{SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		e.Close()
		return nil, err
	}
	replayed, err := log.Replay(floor, func(_ uint64, r wal.Rec) error {
		return e.applyRec(r)
	})
	if err != nil {
		log.Close()
		e.Close()
		return nil, fmt.Errorf("ctk: recovery: %w", err)
	}
	if err := writeAnalyzerMeta(metaPath, e.an.Name(), pinned); err != nil {
		log.Close()
		e.Close()
		return nil, err
	}

	d := &durable{
		e:        e,
		log:      log,
		cfg:      cfg,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		replayed: replayed,
	}
	d.snapFiles = len(snaps)
	d.lastSnap = restored
	d.ops.Store(int64(replayed))
	e.dur = d
	e.instrumentDurability(d)
	e.mon.SetMutationHandler(d.noteOps)
	d.wg.Add(1)
	go d.run()
	return e, nil
}

// writeAnalyzerMeta durably pins spec as the data directory's analyzer
// (atomic temp-write + rename, like snapshots; the ".tmp" suffix puts
// crash litter under the boot-time cleanup glob). A no-op when the
// existing pin already matches.
func writeAnalyzerMeta(path, spec, pinned string) error {
	if pinned == spec {
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ctk: analyzer meta: %w", err)
	}
	_, err = f.WriteString(spec + "\n")
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ctk: analyzer meta: %w", err)
	}
	return nil
}

// applyRec re-applies one logged operation during recovery. The engine
// is deterministic in acknowledged operation order, so re-application
// reproduces document IDs, query IDs, scores and notification sequence
// numbers exactly; a register that comes back with a different ID than
// the log recorded means the snapshot and log disagree.
func (e *Engine) applyRec(r wal.Rec) error {
	switch r.Op {
	case wal.OpPublish:
		_, err := e.Publish(r.Texts[0], r.Time)
		return err
	case wal.OpBatch:
		_, err := e.PublishBatch(r.Texts, r.Time)
		return err
	case wal.OpRegister:
		id, err := e.Register(r.Keywords, r.K)
		if err != nil {
			return err
		}
		if uint32(id) != r.Query {
			return fmt.Errorf("replayed register got ID %d, log recorded %d", id, r.Query)
		}
		return nil
	case wal.OpUnregister:
		return e.Unregister(QueryID(r.Query))
	default:
		return fmt.Errorf("unknown op %d", r.Op)
	}
}

// logOp appends one operation to the WAL, syncing immediately under
// the "always" policy. Called with e.mu held (write side) right after
// the mutation applied, so log order is exactly apply order. A nil
// receiver (durability disabled) is a no-op. c, when non-nil, receives
// the append and fsync stage timings of the publish being logged; the
// clock is not re-armed first because publish paths call logOp one
// branch after their match mark — the wal_append stage starts there.
func (d *durable) logOp(r wal.Rec, c *stageClock) error {
	if d == nil {
		return nil
	}
	if _, err := d.log.Append(r); err != nil {
		return fmt.Errorf("ctk: wal: %w", err)
	}
	c.mark(obs.StageWALAppend)
	if d.cfg.Fsync == FsyncAlways {
		if err := d.log.Sync(); err != nil {
			return fmt.Errorf("ctk: wal: %w", err)
		}
		c.mark(obs.StageFsync)
	}
	return nil
}

// noteOps is the monitor's mutation hook: it counts operations toward
// the snapshot threshold and kicks the background snapshotter when
// crossed. Runs under e.mu mid-mutation, so it only touches an atomic
// and a non-blocking channel send.
func (d *durable) noteOps(n int) {
	if d.cfg.SnapshotOps < 0 {
		return
	}
	if d.ops.Add(int64(n)) >= int64(d.cfg.SnapshotOps) {
		select {
		case d.kick <- struct{}{}:
		default:
		}
	}
}

// run is the background durability goroutine: interval fsync, and
// snapshots on threshold kicks or the wall-clock timer.
func (d *durable) run() {
	defer d.wg.Done()
	var syncC, snapC <-chan time.Time
	if d.cfg.Fsync == FsyncInterval {
		t := time.NewTicker(d.cfg.FsyncInterval)
		defer t.Stop()
		syncC = t.C
	}
	if d.cfg.SnapshotInterval > 0 {
		t := time.NewTicker(d.cfg.SnapshotInterval)
		defer t.Stop()
		snapC = t.C
	}
	for {
		select {
		case <-d.stop:
			return
		case <-syncC:
			if err := d.log.Sync(); err != nil && err != wal.ErrClosed {
				d.noteErr(err)
			}
		case <-d.kick:
			d.snapshotIfDirty()
		case <-snapC:
			d.snapshotIfDirty()
		}
	}
}

// snapshotIfDirty snapshots when operations have accumulated since the
// last one, recording rather than propagating failures (the WAL still
// has everything; the next trigger retries).
func (d *durable) snapshotIfDirty() {
	if d.ops.Load() == 0 {
		return
	}
	if _, err := d.doSnapshot(); err != nil {
		d.noteErr(err)
	}
}

func (d *durable) noteErr(err error) {
	d.mu.Lock()
	d.lastErr = err.Error()
	d.mu.Unlock()
}

// doSnapshot takes one online snapshot: capture state and the WAL
// drain point under the engine's read lock (appends hold the write
// lock, so the pair is consistent), then encode, write and fsync off
// the lock — ingestion proceeds concurrently — then rotate old
// snapshots and truncate fully-superseded WAL segments.
func (d *durable) doSnapshot() (SnapshotInfo, error) {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()

	e := d.e
	t0 := time.Now()
	e.mu.RLock()
	st := snapshot.CaptureEngine(e.mon, e.textStateLocked())
	drain := d.log.NextLSN()
	streamTime := e.mon.Now()
	e.mu.RUnlock()
	d.snapCapture.ObserveSince(t0)
	d.ops.Store(0)

	d.mu.Lock()
	last := d.lastSnap
	d.mu.Unlock()
	if drain == last.LSN && last.Path != "" {
		// Nothing logged since the newest snapshot: it already covers
		// this exact state.
		return last, nil
	}

	path := filepath.Join(d.cfg.Dir, fmt.Sprintf("%s%016x%s", snapPrefix, drain, snapSuffix))
	tmp := path + ".tmp"
	t1 := time.Now()
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		d.snapErrors.Inc()
		return SnapshotInfo{}, fmt.Errorf("ctk: snapshot: %w", err)
	}
	err = st.Encode(f)
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		d.snapErrors.Inc()
		return SnapshotInfo{}, fmt.Errorf("ctk: snapshot: %w", err)
	}
	d.snapEncode.ObserveSince(t1)
	if dh, derr := os.Open(d.cfg.Dir); derr == nil {
		dh.Sync()
		dh.Close()
	}

	// Rotation: keep the newest KeepSnapshots files, drop the rest.
	snaps, err := listSnapshots(d.cfg.Dir)
	if err == nil {
		for len(snaps) > d.cfg.KeepSnapshots {
			os.Remove(snaps[0].path)
			snaps = snaps[1:]
		}
	}
	// Segments wholly below the drain point are superseded by the
	// snapshot just made durable. ErrClosed just means the engine is
	// shutting down around an in-flight snapshot.
	if _, err := d.log.TruncateBefore(drain); err != nil && err != wal.ErrClosed {
		return SnapshotInfo{}, err
	}

	d.snapTotal.Inc()
	info := SnapshotInfo{LSN: drain, StreamTime: streamTime, Path: path}
	d.mu.Lock()
	d.lastSnap = info
	d.snapFiles = len(snaps)
	d.lastErr = ""
	d.mu.Unlock()
	return info, nil
}

// shutdown stops the background goroutine, makes any tail of the log
// durable and closes it. Idempotent.
func (d *durable) shutdown() error {
	var err error
	d.off.Do(func() {
		close(d.stop)
		d.wg.Wait()
		err = d.log.Close()
	})
	return err
}

// stats reports the subsystem's state.
func (d *durable) stats() DurabilityStats {
	ls := d.log.Stats()
	d.mu.Lock()
	defer d.mu.Unlock()
	return DurabilityStats{
		Enabled:                true,
		WALSegments:            ls.Segments,
		WALBytes:               ls.Bytes,
		NextLSN:                ls.NextLSN,
		LastSnapshotLSN:        d.lastSnap.LSN,
		LastSnapshotStreamTime: d.lastSnap.StreamTime,
		Snapshots:              d.snapFiles,
		Replayed:               d.replayed,
		LastError:              d.lastErr,
	}
}

// Snapshot takes an online snapshot on demand (the same operation the
// background policy runs) and returns what it produced. It blocks for
// the snapshot's own duration but stalls ingestion only for the brief
// in-memory capture. Fails with ErrNoDurability on an engine built
// without Open.
func (e *Engine) Snapshot() (SnapshotInfo, error) {
	if e.dur == nil {
		return SnapshotInfo{}, ErrNoDurability
	}
	return e.dur.doSnapshot()
}

// snapFile is one discovered snapshot, by ascending drain LSN.
type snapFile struct {
	path string
	lsn  uint64
}

// listSnapshots inventories dir's snapshot files in ascending LSN
// order.
func listSnapshots(dir string) ([]snapFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ctk: data dir: %w", err)
	}
	var snaps []snapFile
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 16, 64)
		if err != nil {
			continue
		}
		snaps = append(snaps, snapFile{path: filepath.Join(dir, name), lsn: lsn})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lsn < snaps[j].lsn })
	return snaps, nil
}
