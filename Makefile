GO ?= go

.PHONY: all build test race bench benchdiff fuzz lint fmt vet staticcheck ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark on the quick synthetic corpus: a
# smoke pass that fails loudly when a perf-sensitive path regresses
# into an error, without taking benchmark-quality measurements
# (includes the ablbalance partition-balance ablation via
# BenchmarkBalance and the churn ablation via BenchmarkChurn). The
# ablchurn harness run additionally emits BENCH_churn.json so the
# churn perf trajectory (ingestion/add p99 under sync vs background
# rebuilds) is tracked per PR, and the ablwal run emits BENCH_wal.json
# (publish-stall percentiles per fsync policy, plus cold-recovery
# times). The churn timeline deliberately runs twice — once as the
# BenchmarkChurn gate, once for the JSON artifact; each quick-scale
# run costs well under a second. The ablobs run emits BENCH_obs.json:
# the instrumented publish path's ms/event overhead and allocs/event
# delta against a metrics-disabled build (the bars are <3% and 0).
# The ablhotpath run emits BENCH_hotpath.json: flat vs legacy posting
# layout, per algorithm and workload, parity-gated bit-identical.
# The ablnotify run emits BENCH_notify.json: subscriber fleets on an
# open-loop schedule — publish-path p99 stall vs fleet size (gated to
# stay near the no-subscriber baseline) and drain-tier delivery p99.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/ctkbench -exp ablchurn -scale quick -quiet -json BENCH_churn.json
	$(GO) run ./cmd/ctkbench -exp ablwal -scale quick -quiet -json BENCH_wal.json
	$(GO) run ./cmd/ctkbench -exp ablobs -scale quick -quiet -json BENCH_obs.json
	$(GO) run ./cmd/ctkbench -exp ablhotpath -scale quick -quiet -json BENCH_hotpath.json
	$(GO) run ./cmd/ctkbench -exp ablnotify -scale quick -quiet -json BENCH_notify.json

# Compare this run's BENCH_*.json against the previous run's (CI drops
# the last successful run's artifacts into BENCH_BASELINE_DIR). Fails
# on >10% ms/event growth (over a 5µs noise floor) or any allocs/event
# increase beyond 0.25; reports with no baseline are skipped, so the
# first run bootstraps its own baseline.
BENCH_BASELINE_DIR ?= .bench-baseline
benchdiff:
	$(GO) run ./cmd/benchdiff -baseline-dir $(BENCH_BASELINE_DIR)

# A short randomized pass over the WAL record decoder, torn-tail
# repair, the Porter stemmer and the analyzer pipelines (the fuzz
# targets also run their seed corpora under plain `go test`). Bounded
# so CI stays fast; run with a larger -fuzztime for a real fuzzing
# session.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRec -fuzztime=10s ./internal/wal/
	$(GO) test -run='^$$' -fuzz=FuzzTornTail -fuzztime=10s ./internal/wal/
	$(GO) test -run='^$$' -fuzz=FuzzStem -fuzztime=10s ./internal/textproc/
	$(GO) test -run='^$$' -fuzz=FuzzAnalyze -fuzztime=10s ./internal/textproc/

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available (CI installs it; see
# .github/workflows/ci.yml) and degrades to a notice locally so `make
# ci` works in offline sandboxes without the tool.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

lint: fmt vet staticcheck

# Everything CI runs, in the same order.
ci: lint build race bench fuzz
