GO ?= go

.PHONY: all build test race bench lint fmt vet staticcheck ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark on the quick synthetic corpus: a
# smoke pass that fails loudly when a perf-sensitive path regresses
# into an error, without taking benchmark-quality measurements
# (includes the ablbalance partition-balance ablation via
# BenchmarkBalance and the churn ablation via BenchmarkChurn). The
# ablchurn harness run additionally emits BENCH_churn.json so the
# churn perf trajectory (ingestion/add p99 under sync vs background
# rebuilds) is tracked per PR. The churn timeline deliberately runs
# twice — once as the BenchmarkChurn gate, once for the JSON artifact;
# each quick-scale run costs well under a second.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/ctkbench -exp ablchurn -scale quick -quiet -json BENCH_churn.json

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available (CI installs it; see
# .github/workflows/ci.yml) and degrades to a notice locally so `make
# ci` works in offline sandboxes without the tool.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

lint: fmt vet staticcheck

# Everything CI runs, in the same order.
ci: lint build race bench
