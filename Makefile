GO ?= go

.PHONY: all build test race bench lint fmt vet staticcheck ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark on the quick synthetic corpus: a
# smoke pass that fails loudly when a perf-sensitive path regresses
# into an error, without taking benchmark-quality measurements
# (includes the ablbalance partition-balance ablation via
# BenchmarkBalance).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available (CI installs it; see
# .github/workflows/ci.yml) and degrades to a notice locally so `make
# ci` works in offline sandboxes without the tool.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

lint: fmt vet staticcheck

# Everything CI runs, in the same order.
ci: lint build race bench
