GO ?= go

.PHONY: all build test race bench lint fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark on the quick synthetic corpus: a
# smoke pass that fails loudly when a perf-sensitive path regresses
# into an error, without taking benchmark-quality measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

lint: fmt vet

# Everything CI runs, in the same order.
ci: lint build race bench
