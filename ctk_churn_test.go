package ctk

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// churnWords is a tiny vocabulary big enough to make queries and
// documents collide constantly.
var churnWords = []string{
	"go", "stream", "topk", "query", "index", "shard", "delta",
	"decay", "match", "score", "build", "swap", "churn", "monitor",
}

func churnText(rng *rand.Rand, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += churnWords[rng.Intn(len(churnWords))]
	}
	return out
}

// TestEngineChurnHammer runs sustained concurrent churn — batch
// publishing, registrations, unregistrations and result/stats reads —
// across Shards × Parallelism layouts with a tiny rebuild threshold,
// so background generation builds overlap everything continuously.
// Run under -race (the CI default) this is the data-race gate for the
// background builder; functionally it asserts the engine survives and
// stays consistent.
func TestEngineChurnHammer(t *testing.T) {
	layouts := []struct{ shards, par int }{{1, 1}, {2, 2}, {1, 3}}
	for _, l := range layouts {
		t.Run(fmt.Sprintf("shards=%d_par=%d", l.shards, l.par), func(t *testing.T) {
			e, err := New(Options{
				Lambda:           0.01,
				Shards:           l.shards,
				Parallelism:      l.par,
				RebuildThreshold: 8,
				SnippetLength:    40,
			})
			if err != nil {
				t.Fatal(err)
			}

			const iters = 150
			var clock atomic.Int64 // publication timeline, strictly increasing
			ids := make(chan QueryID, 4*iters)
			errc := make(chan error, 8)
			var stop atomic.Bool
			record := func(err error) {
				stop.Store(true)
				select {
				case errc <- err:
				default:
				}
			}

			var wg sync.WaitGroup
			start := make(chan struct{})
			run := func(fn func(rng *rand.Rand, i int) error, seed int64) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					<-start
					for i := 0; i < iters; i++ {
						if stop.Load() {
							return
						}
						if err := fn(rng, i); err != nil {
							record(err)
							return
						}
					}
				}()
			}

			// One publisher: the engine rejects time regressions, so the
			// timeline is owned by a single goroutine.
			run(func(rng *rand.Rand, i int) error {
				at := float64(clock.Add(1)) * 0.01
				if i%3 == 0 {
					texts := []string{churnText(rng, 8), churnText(rng, 8), churnText(rng, 8)}
					_, err := e.PublishBatch(texts, at)
					return err
				}
				_, err := e.Publish(churnText(rng, 10), at)
				return err
			}, 1)
			// Two registrars feeding one unregistrar through ids.
			for s := int64(2); s <= 3; s++ {
				run(func(rng *rand.Rand, i int) error {
					id, err := e.Register(churnText(rng, 3), 1+rng.Intn(3))
					if err != nil {
						return err
					}
					select {
					case ids <- id:
					default:
					}
					return nil
				}, s)
			}
			run(func(rng *rand.Rand, i int) error {
				select {
				case id := <-ids:
					if err := e.Unregister(id); err != nil && err != ErrClosed {
						return err
					}
				default:
				}
				return nil
			}, 4)
			// Two readers polling results, sequences and stats.
			for s := int64(5); s <= 6; s++ {
				run(func(rng *rand.Rand, i int) error {
					select {
					case id := <-ids:
						// Reads may legitimately fail on an already
						// unregistered query — ignore the error, only
						// transport the id back for other workers.
						_, _, _ = e.ResultsSeq(id)
						select {
						case ids <- id:
						default:
						}
					default:
					}
					st := e.Stats()
					if st.Queries < 0 || st.Gen.Dirty < 0 {
						return fmt.Errorf("implausible stats: %+v", st)
					}
					return nil
				}, s)
			}

			close(start)
			wg.Wait()
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}
			// The engine must still be fully functional after the storm.
			id, err := e.Register("stream topk churn", 3)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Publish("stream topk churn stream", float64(clock.Add(1))*0.01); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Results(id); err != nil {
				t.Fatal(err)
			}
			st := e.Stats()
			if st.Gen.Builds == 0 && !st.Gen.Building {
				t.Fatalf("hammer tripped no generation builds: %+v", st.Gen)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
