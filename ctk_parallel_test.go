package ctk

import (
	"fmt"
	"sync"
	"testing"
)

// feedCorpus publishes a deterministic synthetic text stream; doc i
// mentions topic i%topics, so every registered topic query keeps
// matching fresh documents and top-k sets churn under decay.
func feedText(i int) string {
	topics := []string{"database systems", "stream processing", "distributed consensus", "query optimization"}
	return fmt.Sprintf("%s article number %d with shared monitoring terms", topics[i%len(topics)], i)
}

// TestEngineParallelismParity: an engine with intra-shard parallel
// matching (alone and composed with shards) serves bit-identical
// results to the sequential engine over the same publishes.
func TestEngineParallelismParity(t *testing.T) {
	mk := func(shards, par int) *Engine {
		e, err := New(Options{Lambda: 0.05, Shards: shards, Parallelism: par, SnippetLength: 30})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return e
	}
	ref := mk(0, 0)
	variants := map[string]*Engine{
		"par=3":          mk(0, 3),
		"shards=2 par=2": mk(2, 2),
	}
	engines := []*Engine{ref}
	for _, e := range variants {
		engines = append(engines, e)
	}
	var ids []QueryID
	for q := 0; q < 12; q++ {
		var last QueryID
		for _, e := range engines {
			id, err := e.Register(feedText(q), 4)
			if err != nil {
				t.Fatal(err)
			}
			last = id
		}
		ids = append(ids, last)
	}
	for i := 0; i < 300; i++ {
		text := feedText(i)
		if i%5 == 4 {
			batch := []string{text, feedText(i + 1000), feedText(i + 2000)}
			for _, e := range engines {
				if _, err := e.PublishBatch(batch, float64(i)); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		for _, e := range engines {
			if _, err := e.Publish(text, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range ids {
		want, err := ref.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("query %d: fixture degenerate, no results", id)
		}
		for name, e := range variants {
			got, err := e.Results(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: query %d: %d results, want %d", name, id, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: query %d rank %d: %+v, want %+v", name, id, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEngineConcurrentReadsRace hammers the read path (Results, Stats)
// from many goroutines against concurrent Publish/PublishBatch and
// Register/Unregister traffic. Run under -race (make race / CI) it
// proves the reader/writer split of the engine lock is sound; the
// final assertions prove the readers observed real progress.
func TestEngineConcurrentReadsRace(t *testing.T) {
	e, err := New(Options{Lambda: 0.01, Parallelism: 2, SnippetLength: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var ids []QueryID
	for q := 0; q < 8; q++ {
		id, err := e.Register(feedText(q), 3)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	const (
		readers = 4
		rounds  = 150
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 2*rounds; i++ {
				if _, err := e.Results(ids[i%len(ids)]); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				e.Stats()
			}
		}(r)
	}
	// One goroutine mutates the query set while the main goroutine
	// publishes — both hold the write lock, so they serialize with
	// each other and with nothing else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			id, err := e.Register(fmt.Sprintf("churning topic %d terms", i), 2)
			if err != nil {
				t.Errorf("register: %v", err)
				return
			}
			if i%2 == 1 {
				if err := e.Unregister(id); err != nil {
					t.Errorf("unregister: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		if i%4 == 3 {
			if _, err := e.PublishBatch([]string{feedText(i), feedText(i + 500)}, float64(i)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := e.Publish(feedText(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if st := e.Stats(); st.Documents == 0 {
		t.Fatalf("no documents observed: %+v", st)
	}
}

// TestSnippetRetentionBounded: under heavy churn the snippet map stays
// within a constant factor of the live top-k footprint instead of
// growing with the stream, and the snippets of current results remain
// available.
func TestSnippetRetentionBounded(t *testing.T) {
	e, err := New(Options{Lambda: 0.5, SnippetLength: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var ids []QueryID
	for q := 0; q < 3; q++ {
		id, err := e.Register(feedText(q), 2)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	const docs = 3000
	for i := 0; i < docs; i++ {
		if _, err := e.Publish(feedText(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Documents != docs {
		t.Fatalf("documents = %d", st.Documents)
	}
	// Watermark arithmetic: the map is pruned to the referenced set
	// (≤ Σk = 6) whenever it reaches max(2·survivors, 64); it can
	// then grow back to the watermark before the next sweep. 2·64
	// is a safely conservative ceiling — the unbounded behaviour
	// would sit at 3000.
	if st.Snippets > 128 {
		t.Fatalf("snippet map grew to %d entries over %d docs; retention unbounded", st.Snippets, docs)
	}
	if st.Snippets == 0 {
		t.Fatal("all snippets pruned; current results lost theirs")
	}
	for _, id := range ids {
		res, err := e.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 {
			t.Fatalf("query %d has no results", id)
		}
		for _, r := range res {
			if r.Snippet == "" {
				t.Fatalf("query %d doc %d lost its snippet", id, r.DocID)
			}
		}
	}
}

// TestSnippetsDisabledStatZero: Stats.Snippets stays 0 when retention
// is off.
func TestSnippetsDisabledStatZero(t *testing.T) {
	e, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Publish("some document text", 1); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Snippets != 0 {
		t.Fatalf("Snippets = %d with retention disabled", st.Snippets)
	}
}
