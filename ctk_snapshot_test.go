package ctk

import (
	"bytes"
	"math/rand"
	"testing"
)

// expectSameEngineResults asserts both engines expose identical
// results (IDs, scores, snippets) for every query in ids.
func expectSameEngineResults(t *testing.T, label string, want, got *Engine, ids []QueryID) {
	t.Helper()
	for _, id := range ids {
		w, err := want.Results(id)
		if err != nil {
			t.Fatalf("%s: want side query %d: %v", label, id, err)
		}
		g, err := got.Results(id)
		if err != nil {
			t.Fatalf("%s: got side query %d: %v", label, id, err)
		}
		if len(w) != len(g) {
			t.Fatalf("%s: query %d has %d results, want %d", label, id, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: query %d rank %d: %+v != %+v", label, id, i, g[i], w[i])
			}
		}
	}
}

// TestEngineSnapshotRoundTrip: an engine saved mid-stream and restored
// (under a different execution shape) serves identical results, and —
// because the idf statistics, document counter and stream clock are
// part of the snapshot — continues the stream bit-identically to the
// engine that never stopped.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	orig, ids := notifyFixture(t, Options{Lambda: 0.01, SnippetLength: 40, Stemming: true}, 8)
	rng := rand.New(rand.NewSource(23))
	at := 0.0
	for i := 0; i < 50; i++ {
		at += 0.5
		if _, err := orig.Publish(notifyDoc(rng, i), at); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Restore under a different (result-invariant) execution shape;
	// Lambda/Stemming in opts are overridden by the snapshot.
	restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), Options{
		Shards:        2,
		Parallelism:   2,
		SnippetLength: 40,
		Lambda:        99, // ignored: snapshot's λ wins
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.opts.Lambda != 0.01 || !restored.opts.Stemming {
		t.Fatalf("persisted semantics not restored: λ=%v stemming=%v",
			restored.opts.Lambda, restored.opts.Stemming)
	}
	if restored.StreamTime() != orig.StreamTime() {
		t.Fatalf("stream time %v, want %v", restored.StreamTime(), orig.StreamTime())
	}
	expectSameEngineResults(t, "after restore", orig, restored, ids)

	// Continue both streams with identical input: results (including
	// idf-sensitive scores of brand-new documents) must stay identical.
	contRng := rand.New(rand.NewSource(29))
	for i := 0; i < 40; i++ {
		at += 0.5
		text := notifyDoc(contRng, 1000+i)
		so, err := orig.Publish(text, at)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := restored.Publish(text, at)
		if err != nil {
			t.Fatal(err)
		}
		if so.DocID != sr.DocID {
			t.Fatalf("doc IDs diverged: %d vs %d", so.DocID, sr.DocID)
		}
	}
	expectSameEngineResults(t, "after continuation", orig, restored, ids)

	// The restored engine's push pipeline works: a watcher sees the
	// next change.
	ch, cancel, err := restored.Subscribe(ids[0], 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	initial := <-ch
	for i := 0; i < 20; i++ {
		at += 0.5
		if _, err := restored.Publish(notifyDoc(rng, 2000+i), at); err != nil {
			t.Fatal(err)
		}
	}
	restored.flushNotify()
	if _, seq, _ := restored.ResultsSeq(ids[0]); seq > initial.Seq {
		select {
		case u := <-ch:
			// Coalescing may skip intermediates (visible as a Seq gap);
			// delivery must still move strictly forward.
			if u.Query != ids[0] || u.Seq <= initial.Seq {
				t.Fatalf("bad pushed update %+v after initial seq %d", u, initial.Seq)
			}
		default:
			t.Fatal("change happened but nothing was pushed")
		}
	}

	// A new query registered on the restored engine gets the next
	// dense ID.
	nid, err := restored.Register("quantum computing correction", 3)
	if err != nil {
		t.Fatal(err)
	}
	if int(nid) != len(ids) {
		t.Fatalf("restored engine assigned ID %d, want %d", nid, len(ids))
	}
}

// TestReadSnapshotRejectsGarbage: corrupt input errors instead of
// producing a half-built engine.
func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot")), Options{}); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestSnapshotPersistsSeqs: the per-query notification sequence
// numbers survive a snapshot round trip (engine wire v3), so a watcher
// reconnecting after a restart can keep using Seq gaps for drop
// detection — and the counters keep counting from where they were.
func TestSnapshotPersistsSeqs(t *testing.T) {
	orig, ids := notifyFixture(t, Options{Lambda: 0.01, SnippetLength: 40}, 6)
	rng := rand.New(rand.NewSource(31))
	at := 0.0
	for i := 0; i < 60; i++ {
		at += 0.5
		if _, err := orig.Publish(notifyDoc(rng, i), at); err != nil {
			t.Fatal(err)
		}
	}
	seqs := make(map[QueryID]uint64, len(ids))
	anyNonZero := false
	for _, id := range ids {
		_, seq, err := orig.ResultsSeq(id)
		if err != nil {
			t.Fatal(err)
		}
		seqs[id] = seq
		anyNonZero = anyNonZero || seq > 0
	}
	if !anyNonZero {
		t.Fatal("fixture degenerate: no query's result set ever changed")
	}

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), Options{SnippetLength: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	for _, id := range ids {
		_, seq, err := restored.ResultsSeq(id)
		if err != nil {
			t.Fatal(err)
		}
		if seq != seqs[id] {
			t.Fatalf("query %d seq %d after restore, want %d", id, seq, seqs[id])
		}
	}
	// New changes continue the numbering instead of restarting it: the
	// first pushed update after the restart carries Seq = saved + 1.
	watched := ids[0]
	ch, cancel, err := restored.Subscribe(watched, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	<-ch // initial snapshot at the restored seq
	for i := 0; i < 40; i++ {
		at += 0.5
		if _, err := restored.Publish(notifyDoc(rng, 5000+i), at); err != nil {
			t.Fatal(err)
		}
		if _, seq, _ := restored.ResultsSeq(watched); seq > seqs[watched] {
			u := <-ch
			if u.Seq != seqs[watched]+1 {
				t.Fatalf("first post-restore update has Seq %d, want %d", u.Seq, seqs[watched]+1)
			}
			return
		}
	}
	t.Fatal("watched query never changed after restore; fixture too quiet")
}

// TestStatsPartitionSurface: Stats reports the partition strategy and
// per-partition occupancy, and Options.Partition round-trips through
// engine construction (including the snapshot shape override).
func TestStatsPartitionSurface(t *testing.T) {
	e, err := New(Options{Shards: 2, Parallelism: 2, Partition: "count"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Register("solar power storage", 3); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Partition != "count" {
		t.Fatalf("Stats.Partition = %q", st.Partition)
	}
	if len(st.Partitions) == 0 {
		t.Fatalf("no partition occupancy surfaced: %+v", st)
	}
	if def, err := New(Options{}); err != nil {
		t.Fatal(err)
	} else {
		if def.Stats().Partition != "mass" {
			t.Fatalf("default partition = %q", def.Stats().Partition)
		}
		def.Close()
	}
	if _, err := New(Options{Partition: "bogus"}); err == nil {
		t.Fatal("bogus partition strategy accepted")
	}

	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), Options{Partition: "mass"})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.Stats().Partition; got != "mass" {
		t.Fatalf("shape override partition = %q, want mass", got)
	}
	kept, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kept.Close()
	if got := kept.Stats().Partition; got != "count" {
		t.Fatalf("persisted partition = %q, want count", got)
	}
}
