// Package stream models the document stream: virtual time, arrival
// processes and the order-preserving decay arithmetic of the paper's
// scoring function (Eq. 1).
//
// Score inflation. S(q,d) = c(q,d)·e^{-λ(now-τ_d)} decays as time
// passes, but the *ratio* between two documents' scores is constant, so
// the system instead stores c(q,d)·e^{λ(τ_d-base)} — new documents get
// inflated rather than old ones decayed — and results never need
// recomputation on the passage of time alone. The exponent grows with
// stream time and would overflow float64 near e^709, so the Decay type
// exposes a rebase protocol: shift base forward and rescale all stored
// scores by a common factor, which preserves order exactly.
package stream

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/corpus"
)

// Event is one stream arrival.
type Event struct {
	Doc corpus.Document
	// Time is the arrival timestamp in virtual seconds since the
	// stream epoch.
	Time float64
}

// Source generates a document stream with exponential (Poisson
// process) inter-arrival times, the standard model for news/social
// streams. It is deterministic per seed.
type Source struct {
	gen  *corpus.Generator
	rng  *rand.Rand
	rate float64
	now  float64
}

// NewSource wraps a corpus generator with an arrival process of `rate`
// documents per virtual second.
func NewSource(gen *corpus.Generator, rate float64, seed int64) (*Source, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("stream: rate must be positive and finite, got %v", rate)
	}
	return &Source{gen: gen, rng: rand.New(rand.NewSource(seed)), rate: rate}, nil
}

// Now returns the current virtual time (the last arrival's timestamp).
func (s *Source) Now() float64 { return s.now }

// Next produces the next arrival.
func (s *Source) Next() Event {
	s.now += s.rng.ExpFloat64() / s.rate
	return Event{Doc: s.gen.Next(), Time: s.now}
}

// Take produces the next n arrivals.
func (s *Source) Take(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = s.Next()
	}
	return evs
}

// Replay iterates over a pre-generated event sequence, so competing
// algorithms process the identical stream.
type Replay struct {
	events []Event
	pos    int
}

// NewReplay wraps events (not copied; callers must not mutate).
func NewReplay(events []Event) *Replay { return &Replay{events: events} }

// Next returns the next event and false when exhausted.
func (r *Replay) Next() (Event, bool) {
	if r.pos >= len(r.events) {
		return Event{}, false
	}
	e := r.events[r.pos]
	r.pos++
	return e, true
}

// Reset rewinds the replay to the beginning.
func (r *Replay) Reset() { r.pos = 0 }

// Len returns the total number of events.
func (r *Replay) Len() int { return len(r.events) }

// maxExponent is the largest λ·(t-base) the monitor lets accumulate
// before rebasing. e^500 ≈ 7·10^216 leaves ample float64 headroom for
// products with cosine scores and ratio sums.
const maxExponent = 500

// Decay implements the inflation arithmetic for a decay rate λ ≥ 0.
// λ = 0 disables recency preference entirely (scores never inflate).
type Decay struct {
	Lambda float64
	base   float64
}

// NewDecay validates λ and returns a Decay anchored at time 0.
func NewDecay(lambda float64) (*Decay, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("stream: decay λ must be ≥ 0 and finite, got %v", lambda)
	}
	return &Decay{Lambda: lambda}, nil
}

// Base returns the current inflation epoch.
func (d *Decay) Base() float64 { return d.base }

// SetBase overwrites the inflation epoch without rescaling anything.
// It exists for snapshot restore, where stored scores are already in
// the snapshot's epoch units.
func (d *Decay) SetBase(b float64) { d.base = b }

// Factor returns the inflation factor e^{λ(t-base)} applied to a
// document arriving at time t.
func (d *Decay) Factor(t float64) float64 {
	if d.Lambda == 0 {
		return 1
	}
	return math.Exp(d.Lambda * (t - d.base))
}

// NeedsRebase reports whether the exponent at time t is close enough
// to overflow that the monitor must rebase before processing.
func (d *Decay) NeedsRebase(t float64) bool {
	return d.Lambda*(t-d.base) > maxExponent
}

// maxRebaseExponent caps a single rebase step so the returned factor
// e^{-λ·shift} never underflows to exactly zero (float64 bottoms out
// near e^{-745}). A time jump larger than the cap takes several steps:
// callers loop `for d.NeedsRebase(t) { f := d.RebaseTo(t); ... }`.
// Repeated steps flush truly ancient scores to zero progressively,
// which is the mathematically correct limit of their decay.
const maxRebaseExponent = 700

// RebaseTo shifts the epoch toward time t — by at most
// maxRebaseExponent/λ per call — and returns the factor (0 < f ≤ 1) by
// which every stored score and threshold must be multiplied. Order of
// stored scores is preserved since all scale together.
func (d *Decay) RebaseTo(t float64) (factor float64) {
	shift := t - d.base
	if shift < 0 {
		shift = 0
	}
	if d.Lambda*shift > maxRebaseExponent {
		shift = maxRebaseExponent / d.Lambda
	}
	d.base += shift
	return math.Exp(-d.Lambda * shift)
}

// PresentScore converts a stored (inflated) score back to the
// user-visible decayed score at time now.
func (d *Decay) PresentScore(stored, now float64) float64 {
	if d.Lambda == 0 {
		return stored
	}
	return stored * math.Exp(-d.Lambda*(now-d.base))
}
