package stream

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/corpus"
)

func testGen() *corpus.Generator {
	m := corpus.WikipediaModel(2000)
	m.DocLenMedian = 30
	return corpus.NewGenerator(m, 1, 1000)
}

func TestNewSourceValidation(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewSource(testGen(), rate, 1); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
}

func TestSourceMonotoneTime(t *testing.T) {
	s, err := NewSource(testGen(), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := 0; i < 100; i++ {
		e := s.Next()
		if e.Time <= prev {
			t.Fatalf("event %d time %v not after %v", i, e.Time, prev)
		}
		prev = e.Time
	}
	if s.Now() != prev {
		t.Fatalf("Now = %v, want %v", s.Now(), prev)
	}
}

func TestSourceRate(t *testing.T) {
	s, _ := NewSource(testGen(), 100, 3)
	evs := s.Take(2000)
	elapsed := evs[len(evs)-1].Time
	rate := float64(len(evs)) / elapsed
	if rate < 80 || rate > 120 {
		t.Fatalf("empirical rate %v far from 100", rate)
	}
}

func TestSourceDeterminism(t *testing.T) {
	a, _ := NewSource(testGen(), 10, 5)
	b, _ := NewSource(testGen(), 10, 5)
	if !reflect.DeepEqual(a.Take(20), b.Take(20)) {
		t.Fatal("same seed produced different streams")
	}
}

func TestReplay(t *testing.T) {
	s, _ := NewSource(testGen(), 10, 4)
	evs := s.Take(5)
	r := NewReplay(evs)
	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}
	var got []Event
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		got = append(got, e)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("replay differs from source")
	}
	if _, ok := r.Next(); ok {
		t.Fatal("exhausted replay returned an event")
	}
	r.Reset()
	if e, ok := r.Next(); !ok || e.Doc.ID != evs[0].Doc.ID {
		t.Fatal("Reset did not rewind")
	}
}

func TestNewDecayValidation(t *testing.T) {
	for _, l := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := NewDecay(l); err == nil {
			t.Errorf("λ=%v accepted", l)
		}
	}
	if _, err := NewDecay(0); err != nil {
		t.Fatalf("λ=0 rejected: %v", err)
	}
}

func TestDecayFactor(t *testing.T) {
	d, _ := NewDecay(0.1)
	if got := d.Factor(0); got != 1 {
		t.Fatalf("Factor(0) = %v", got)
	}
	if got := d.Factor(10); math.Abs(got-math.E) > 1e-12 {
		t.Fatalf("Factor(10) = %v, want e", got)
	}
	z, _ := NewDecay(0)
	if z.Factor(1e9) != 1 {
		t.Fatal("λ=0 must not inflate")
	}
}

func TestDecayOrderPreservation(t *testing.T) {
	// The core soundness property of inflation: for docs d1 (t=5) and
	// d2 (t=20), sign(inflated1 - inflated2) equals sign of decayed
	// comparison at any later time.
	d, _ := NewDecay(0.05)
	c1, t1 := 0.9, 5.0
	c2, t2 := 0.5, 20.0
	inf1 := c1 * d.Factor(t1)
	inf2 := c2 * d.Factor(t2)
	for _, now := range []float64{25, 100, 1000} {
		dec1 := c1 * math.Exp(-0.05*(now-t1))
		dec2 := c2 * math.Exp(-0.05*(now-t2))
		if (inf1 > inf2) != (dec1 > dec2) {
			t.Fatalf("order disagreement at now=%v", now)
		}
	}
}

func TestNeedsRebaseAndRebase(t *testing.T) {
	d, _ := NewDecay(1)
	if d.NeedsRebase(100) {
		t.Fatal("premature rebase")
	}
	if !d.NeedsRebase(501) {
		t.Fatal("rebase not triggered past exponent cap")
	}
	factor := d.RebaseTo(500)
	if math.Abs(factor-math.Exp(-500)) > 1e-300 {
		t.Fatalf("rebase factor = %v", factor)
	}
	if d.Base() != 500 {
		t.Fatalf("base = %v", d.Base())
	}
	if got := d.Factor(500); got != 1 {
		t.Fatalf("Factor at new base = %v", got)
	}
}

func TestRebasePreservesRelativeScores(t *testing.T) {
	d, _ := NewDecay(0.2)
	sA := 0.7 * d.Factor(10)
	sB := 0.3 * d.Factor(30)
	ratio := sA / sB
	f := d.RebaseTo(40)
	sA *= f
	sB *= f
	if math.Abs(sA/sB-ratio) > 1e-9*ratio {
		t.Fatalf("rebase changed score ratio: %v vs %v", sA/sB, ratio)
	}
}

func TestPresentScore(t *testing.T) {
	d, _ := NewDecay(0.1)
	stored := 2.0 * d.Factor(10) // doc at t=10 with cosine 2.0 (unnormalized, fine for arithmetic)
	got := d.PresentScore(stored, 10)
	if math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("PresentScore at arrival = %v, want 2", got)
	}
	later := d.PresentScore(stored, 20)
	want := 2.0 * math.Exp(-1)
	if math.Abs(later-want) > 1e-12 {
		t.Fatalf("PresentScore decayed = %v, want %v", later, want)
	}
	z, _ := NewDecay(0)
	if z.PresentScore(5, 100) != 5 {
		t.Fatal("λ=0 PresentScore should be identity")
	}
}
