package textproc

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestVocabularyIntern(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("apple")
	b := v.Intern("banana")
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if got := v.Intern("apple"); got != a {
		t.Fatalf("re-Intern gave %d, want %d", got, a)
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d, want 2", v.Size())
	}
	if v.Term(a) != "apple" || v.Term(b) != "banana" {
		t.Fatal("Term round-trip failed")
	}
}

func TestVocabularyLookup(t *testing.T) {
	v := NewVocabulary()
	id := v.Intern("x")
	if got, ok := v.Lookup("x"); !ok || got != id {
		t.Fatalf("Lookup(x) = %d,%v", got, ok)
	}
	if _, ok := v.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
}

func TestVocabularyTermPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Term(out of range) did not panic")
		}
	}()
	NewVocabulary().Term(5)
}

func TestObserveDocDF(t *testing.T) {
	v := NewVocabulary()
	v.ObserveDoc([]string{"cat", "dog", "cat"}) // cat counted once
	v.ObserveDoc([]string{"cat"})
	cat, _ := v.Lookup("cat")
	dog, _ := v.Lookup("dog")
	if v.DF(cat) != 2 {
		t.Fatalf("DF(cat) = %d, want 2", v.DF(cat))
	}
	if v.DF(dog) != 1 {
		t.Fatalf("DF(dog) = %d, want 1", v.DF(dog))
	}
	if v.Docs() != 2 {
		t.Fatalf("Docs = %d, want 2", v.Docs())
	}
	if v.DF(TermID(999)) != 0 {
		t.Fatal("DF(out of range) != 0")
	}
}

func TestVocabularyConcurrentIntern(t *testing.T) {
	v := NewVocabulary()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v.Intern(fmt.Sprintf("term%d", i%50))
			}
		}(w)
	}
	wg.Wait()
	if v.Size() != 50 {
		t.Fatalf("Size = %d after concurrent interning, want 50", v.Size())
	}
}

func TestPresetVocabulary(t *testing.T) {
	df := []uint32{10, 5, 1}
	v := PresetVocabulary(3, df, 100)
	if v.Size() != 3 {
		t.Fatalf("Size = %d, want 3", v.Size())
	}
	if v.Term(0) != "t0" || v.Term(2) != "t2" {
		t.Fatal("preset names wrong")
	}
	if v.DF(1) != 5 {
		t.Fatalf("DF(1) = %d, want 5", v.DF(1))
	}
	if v.Docs() != 100 {
		t.Fatalf("Docs = %d, want 100", v.Docs())
	}
	if id, ok := v.Lookup("t1"); !ok || id != 1 {
		t.Fatal("preset lookup failed")
	}
}

func TestWeighterLogTFIDF(t *testing.T) {
	v := PresetVocabulary(3, []uint32{100, 10, 1}, 100)
	w := NewWeighter(v, WeightLogTFIDF)
	vec := w.VectorFromCounts(map[TermID]float64{0: 1, 2: 1})
	if err := vec.Validate(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vec.Norm(), 1, 1e-12) {
		t.Fatalf("norm = %v", vec.Norm())
	}
	// The rarer term (df=1) must dominate the common one (df=100).
	if vec.Weight(2) <= vec.Weight(0) {
		t.Fatalf("idf ordering violated: rare=%v common=%v", vec.Weight(2), vec.Weight(0))
	}
}

func TestWeighterSchemes(t *testing.T) {
	v := PresetVocabulary(2, []uint32{1, 1}, 2)
	counts := map[TermID]float64{0: 4, 1: 1}

	bin := NewWeighter(v, WeightBinary).VectorFromCounts(counts)
	if !almostEqual(bin.Weight(0), bin.Weight(1), 1e-12) {
		t.Fatal("binary scheme should weight equally")
	}

	tf := NewWeighter(v, WeightTF).VectorFromCounts(counts)
	if !almostEqual(tf.Weight(0)/tf.Weight(1), 4, 1e-9) {
		t.Fatalf("tf ratio = %v, want 4", tf.Weight(0)/tf.Weight(1))
	}
}

func TestWeighterDropsNonPositiveCounts(t *testing.T) {
	v := PresetVocabulary(2, nil, 0)
	vec := NewWeighter(v, WeightTF).VectorFromCounts(map[TermID]float64{0: 0, 1: 2})
	if len(vec) != 1 || vec[0].Term != 1 {
		t.Fatalf("unexpected vector: %+v", vec)
	}
}

func TestWeighterEmptyVocabIDF(t *testing.T) {
	v := NewVocabulary()
	w := NewWeighter(v, WeightLogTFIDF)
	if got := w.idf(0); got != 1 {
		t.Fatalf("idf with zero docs = %v, want 1", got)
	}
}

func TestDocumentVectorUpdatesDF(t *testing.T) {
	v := NewVocabulary()
	w := NewWeighter(v, WeightLogTFIDF)
	vec := w.DocumentVector([]string{"alpha", "beta", "alpha"})
	if len(vec) != 2 {
		t.Fatalf("vector terms = %d, want 2", len(vec))
	}
	if v.Docs() != 1 {
		t.Fatalf("Docs = %d, want 1", v.Docs())
	}
	a, _ := v.Lookup("alpha")
	if v.DF(a) != 1 {
		t.Fatalf("DF(alpha) = %d, want 1", v.DF(a))
	}
	for _, tw := range vec {
		if math.IsNaN(tw.Weight) || tw.Weight <= 0 {
			t.Fatalf("bad weight %v", tw.Weight)
		}
	}
}

func TestVectorFromTokensDeterministic(t *testing.T) {
	v := PresetVocabulary(10, nil, 10)
	w := NewWeighter(v, WeightTF)
	a := w.VectorFromTokens([]string{"t1", "t2", "t1"})
	b := w.VectorFromTokens([]string{"t1", "t1", "t2"})
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("component %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
