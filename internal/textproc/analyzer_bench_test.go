package textproc

import (
	"strings"
	"testing"
)

// benchText is a representative mixed document: prose, stopwords,
// digits, accented words — long enough that per-call overhead is not
// the whole measurement.
var benchText = strings.Repeat(
	"Continuous top-k monitoring on document streams requires that the "+
		"central server re-evaluates 10000 standing queries as décès and "+
		"sévère pneumopathie reports arrive from l'hôpital in 2018. ", 8)

// BenchmarkAnalyze measures every registered pipeline in tokens/sec,
// so an analyzer regression (a new filter, a slower fold) is visible
// in the per-PR bench smoke.
func BenchmarkAnalyze(b *testing.B) {
	for _, name := range AnalyzerNames() {
		if strings.HasPrefix(name, "test-") {
			continue // analyzers registered by tests in this package
		}
		a := MustAnalyzer(name)
		b.Run(name, func(b *testing.B) {
			tokens := 0
			b.SetBytes(int64(len(benchText)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tokens += len(a.Analyze(benchText))
			}
			b.ReportMetric(float64(tokens)/b.Elapsed().Seconds(), "tokens/s")
		})
	}
}
