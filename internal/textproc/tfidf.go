package textproc

import (
	"math"
	"sort"
)

// WeightScheme selects the term-weighting function used when building
// document and query vectors.
type WeightScheme int

const (
	// WeightLogTFIDF is the classic (1+log tf)·log(1+N/df) scheme the
	// TKDE evaluation uses for cosine scoring.
	WeightLogTFIDF WeightScheme = iota
	// WeightTF uses raw term frequency (idf = 1).
	WeightTF
	// WeightBinary uses 1 for every present term.
	WeightBinary
)

// Weighter converts token counts into L2-normalized sparse vectors
// under a fixed vocabulary and weighting scheme.
type Weighter struct {
	Vocab  *Vocabulary
	Scheme WeightScheme
}

// NewWeighter returns a Weighter over vocab using the given scheme.
func NewWeighter(vocab *Vocabulary, scheme WeightScheme) *Weighter {
	return &Weighter{Vocab: vocab, Scheme: scheme}
}

// idf returns the inverse-document-frequency factor for a term. For
// unseen terms (df=0) it falls back to the maximum idf, treating the
// term as maximally discriminative.
func (w *Weighter) idf(t TermID) float64 {
	n := float64(w.Vocab.Docs())
	if n == 0 {
		return 1
	}
	df := float64(w.Vocab.DF(t))
	if df == 0 {
		df = 1
	}
	return math.Log(1 + n/df)
}

// weight applies the scheme to one (term, tf) pair.
func (w *Weighter) weight(t TermID, tf float64) float64 {
	switch w.Scheme {
	case WeightTF:
		return tf
	case WeightBinary:
		return 1
	default:
		return (1 + math.Log(tf)) * w.idf(t)
	}
}

// VectorFromCounts builds a unit vector from interned token counts.
func (w *Weighter) VectorFromCounts(counts map[TermID]float64) Vector {
	raw := make(map[TermID]float64, len(counts))
	for t, tf := range counts {
		if tf <= 0 {
			continue
		}
		raw[t] = w.weight(t, tf)
	}
	v := FromCounts(raw)
	v.Normalize()
	return v
}

// VectorFromTokens interns tokens (without touching document
// frequencies) and builds a unit vector from their counts.
func (w *Weighter) VectorFromTokens(tokens []string) Vector {
	counts := make(map[TermID]float64)
	for _, tok := range tokens {
		counts[w.Vocab.Intern(tok)]++
	}
	return w.VectorFromCounts(counts)
}

// DocumentVector observes a document (updating document frequencies)
// and returns its unit vector. This is the ingestion path for raw-text
// streams.
func (w *Weighter) DocumentVector(tokens []string) Vector {
	w.Vocab.ObserveDoc(tokens)
	return w.VectorFromTokens(tokens)
}

// VecScratch holds the reusable state of DocumentVectorInto. The zero
// value is ready to use; one scratch amortizes all per-document
// allocations of the weighting path across publishes.
//
// It implements sort.Interface over its vector so the sort runs
// through a pre-existing pointer — sort.Slice would allocate its
// closure and reflect-based swapper on every call.
type VecScratch struct {
	counts map[TermID]float64
	vec    Vector
}

func (s *VecScratch) Len() int           { return len(s.vec) }
func (s *VecScratch) Less(i, j int) bool { return s.vec[i].Term < s.vec[j].Term }
func (s *VecScratch) Swap(i, j int)      { s.vec[i], s.vec[j] = s.vec[j], s.vec[i] }

// DocumentVectorInto is DocumentVector building into s instead of
// fresh heap: the returned vector aliases s.vec and is valid only
// until the next call with the same scratch. Weights, ordering and
// normalization are bit-identical to DocumentVector — both paths
// compute the same weight per term, sort by TermID, then normalize —
// so swapping one for the other never changes results.
func (w *Weighter) DocumentVectorInto(tokens []string, s *VecScratch) Vector {
	if s.counts == nil {
		s.counts = make(map[TermID]float64)
	}
	w.Vocab.ObserveDocCounts(tokens, s.counts)
	v := s.vec[:0]
	for t, tf := range s.counts {
		if tf <= 0 {
			continue
		}
		if wt := w.weight(t, tf); wt > 0 {
			v = append(v, TermWeight{Term: t, Weight: wt})
		}
	}
	s.vec = v
	sort.Sort(s)
	v = s.vec
	v.Normalize()
	return v
}
