package textproc

// defaultStopwordList is the conventional English stopword list used by
// retrieval systems (a superset of the Snowball list), matching the
// preprocessing typically applied to Wikipedia corpora.
var defaultStopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "am", "an",
	"and", "any", "are", "aren", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"cannot", "could", "couldn", "did", "didn", "do", "does", "doesn",
	"doing", "don", "down", "during", "each", "few", "for", "from",
	"further", "had", "hadn", "has", "hasn", "have", "haven", "having",
	"he", "her", "here", "hers", "herself", "him", "himself", "his",
	"how", "i", "if", "in", "into", "is", "isn", "it", "its", "itself",
	"just", "ll", "me", "more", "most", "mustn", "my", "myself", "no",
	"nor", "not", "now", "of", "off", "on", "once", "only", "or",
	"other", "ought", "our", "ours", "ourselves", "out", "over", "own",
	"re", "s", "same", "shan", "she", "should", "shouldn", "so", "some",
	"such", "t", "than", "that", "the", "their", "theirs", "them",
	"themselves", "then", "there", "these", "they", "this", "those",
	"through", "to", "too", "under", "until", "up", "ve", "very", "was",
	"wasn", "we", "were", "weren", "what", "when", "where", "which",
	"while", "who", "whom", "why", "will", "with", "won", "would",
	"wouldn", "you", "your", "yours", "yourself", "yourselves",
}

func defaultStopwords() map[string]struct{} {
	m := make(map[string]struct{}, len(defaultStopwordList))
	for _, w := range defaultStopwordList {
		m[w] = struct{}{}
	}
	return m
}

// DefaultStopwords returns a copy of the built-in English stopword
// list, for callers that want to extend it via WithStopwords.
func DefaultStopwords() []string {
	out := make([]string, len(defaultStopwordList))
	copy(out, defaultStopwordList)
	return out
}
