package textproc

import "strings"

// Stem reduces an English word to its stem with the classic Porter
// algorithm (Porter, 1980) — the normalization step conventional for
// Wikipedia-scale retrieval pipelines like the paper's. The input is
// assumed lower-case (the Tokenizer guarantees it); non-ASCII words
// are returned unchanged.
func Stem(word string) string {
	if len(word) <= 2 || !isASCIILower(word) {
		return word
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// StemAll applies Stem to every token of a pre-tokenized stream. Its
// signature is a TokenFilter, so it slots directly into an analyzer
// Chain (the "english" pipeline is exactly the standard tokenizer
// followed by StemAll).
func StemAll(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = Stem(t)
	}
	return out
}

func isASCIILower(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 'a' || s[i] > 'z' {
			return false
		}
	}
	return true
}

// isCons reports whether w[i] is a consonant in Porter's sense.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure returns Porter's m: the number of VC sequences in w[:k].
func measure(w []byte, k int) int {
	m := 0
	i := 0
	// skip initial consonants
	for i < k && isCons(w, i) {
		i++
	}
	for i < k {
		// vowels
		for i < k && !isCons(w, i) {
			i++
		}
		if i >= k {
			break
		}
		m++
		for i < k && isCons(w, i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether w[:k] contains a vowel.
func hasVowel(w []byte, k int) bool {
	for i := 0; i < k; i++ {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// doubleCons reports whether w[:k] ends with a double consonant.
func doubleCons(w []byte, k int) bool {
	return k >= 2 && w[k-1] == w[k-2] && isCons(w, k-1)
}

// cvc reports whether w[:k] ends consonant-vowel-consonant where the
// final consonant is not w, x or y.
func cvc(w []byte, k int) bool {
	if k < 3 || !isCons(w, k-1) || isCons(w, k-2) || !isCons(w, k-3) {
		return false
	}
	c := w[k-1]
	return c != 'w' && c != 'x' && c != 'y'
}

func hasSuffix(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

// replaceIf replaces suffix s with r when measure of the stem exceeds
// mMin; it reports whether the suffix matched at all.
func replaceIf(w *[]byte, s, r string, mMin int) bool {
	if !hasSuffix(*w, s) {
		return false
	}
	k := len(*w) - len(s)
	if measure(*w, k) > mMin {
		*w = append((*w)[:k], r...)
	}
	return true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w, len(w)-3) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && hasVowel(w, len(w)-2):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && hasVowel(w, len(w)-3):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case doubleCons(stem, len(stem)):
		c := stem[len(stem)-1]
		if c != 'l' && c != 's' && c != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem, len(stem)) == 1 && cvc(stem, len(stem)):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w, len(w)-1) {
		w[len(w)-1] = 'i'
	}
	return w
}

var step2Rules = []struct{ s, r string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
	{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
	{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
	{"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, rule := range step2Rules {
		if replaceIf(&w, rule.s, rule.r, 0) {
			return w
		}
	}
	return w
}

var step3Rules = []struct{ s, r string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, rule := range step3Rules {
		if replaceIf(&w, rule.s, rule.r, 0) {
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	if hasSuffix(w, "ion") {
		k := len(w) - 3
		if k > 0 && (w[k-1] == 's' || w[k-1] == 't') && measure(w, k) > 1 {
			return w[:k]
		}
		// "ion" handled exclusively here.
		if strings.HasSuffix(string(w), "ion") {
			return w
		}
	}
	for _, s := range step4Suffixes {
		if hasSuffix(w, s) {
			k := len(w) - len(s)
			if measure(w, k) > 1 {
				return w[:k]
			}
			return w
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if hasSuffix(w, "e") {
		k := len(w) - 1
		m := measure(w, k)
		if m > 1 || (m == 1 && !cvc(w, k)) {
			return w[:k]
		}
	}
	return w
}

func step5b(w []byte) []byte {
	if hasSuffix(w, "ll") && measure(w, len(w)) > 1 {
		return w[:len(w)-1]
	}
	return w
}
