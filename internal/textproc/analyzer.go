package textproc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode"
)

// Analyzer is the single seam every layer of the system analyzes text
// through: one call turns raw text into the final token stream that is
// weighted, indexed and matched. Engines, the corpus loader, snapshot
// restore and WAL replay all consume the same Analyzer, so "how text
// becomes terms" is one persisted semantic rather than four
// independently reconstructed pipelines.
//
// Implementations must be immutable after construction and safe for
// concurrent use — analyzers are shared across the engine's worker
// pool without locking.
type Analyzer interface {
	// Name returns the canonical spec string ("english",
	// "unicode-fold?stop=le,la") that rebuilds this analyzer via
	// NewAnalyzer. It identifies the analyzer in snapshots, WAL
	// recovery metadata and stats.
	Name() string
	// Analyze turns raw text into the final token stream.
	Analyze(text string) []string
}

// CharFilter rewrites raw text before tokenization (accent folding,
// mark stripping, ...).
type CharFilter func(string) string

// TokenFilter rewrites the token stream after tokenization (stemming,
// ...). It may return its argument, a modified copy, or a shorter
// slice.
type TokenFilter func([]string) []string

// AppendAnalyzer is optionally implemented by analyzers that can
// tokenize into a caller-provided buffer. The engine's hot publish
// path detects it once at construction and reuses one token slice per
// publish; analyzers without it fall back to Analyze plus a copy.
type AppendAnalyzer interface {
	// AnalyzeAppend appends the token stream of text to dst and
	// returns the extended slice. The result must equal Analyze(text)
	// element for element.
	AnalyzeAppend(dst []string, text string) []string
}

// Chain is the standard Analyzer shape: char filters, then a
// tokenizer, then token filters. All registered built-ins are Chains;
// custom analyzers may implement Analyzer directly instead.
type Chain struct {
	name        string
	chars       []CharFilter
	split       func(string) []string
	splitAppend func(dst []string, text string) []string
	filters     []TokenFilter
}

// NewChain builds an analyzer from the composable parts. name must be
// the canonical spec that reconstructs the chain through the registry.
func NewChain(name string, chars []CharFilter, split func(string) []string, filters []TokenFilter) *Chain {
	return &Chain{name: name, chars: chars, split: split, filters: filters}
}

// WithSplitAppend attaches an append-style tokenizer that must produce
// the same token stream as split, enabling AnalyzeAppend to reuse the
// caller's buffer. Returns c for chaining at registration sites.
func (c *Chain) WithSplitAppend(f func(dst []string, text string) []string) *Chain {
	c.splitAppend = f
	return c
}

// Name implements Analyzer.
func (c *Chain) Name() string { return c.name }

// Analyze implements Analyzer: char filters → tokenizer → token
// filters.
func (c *Chain) Analyze(text string) []string {
	for _, f := range c.chars {
		text = f(text)
	}
	tokens := c.split(text)
	for _, f := range c.filters {
		tokens = f(tokens)
	}
	return tokens
}

// AnalyzeAppend implements AppendAnalyzer, tokenizing into dst when an
// append-style splitter was attached (falling back to the allocating
// splitter otherwise). Token filters see only the newly appended tail,
// so they cannot disturb tokens already in dst.
func (c *Chain) AnalyzeAppend(dst []string, text string) []string {
	for _, f := range c.chars {
		text = f(text)
	}
	n := len(dst)
	if c.splitAppend != nil {
		dst = c.splitAppend(dst, text)
	} else {
		dst = append(dst, c.split(text)...)
	}
	if len(c.filters) == 0 {
		return dst
	}
	tail := dst[n:]
	for _, f := range c.filters {
		tail = f(tail)
	}
	return append(dst[:n], tail...)
}

// Spec is a parsed analyzer specification: a registered pipeline name
// plus optional parameters.
type Spec struct {
	Name   string
	Params map[string]string
}

// ParseSpec parses "name" or "name?key=value&key2=value2" into a Spec.
// The shape is deliberately URL-like but parsed strictly: empty names,
// empty keys and duplicate keys are errors, so every valid spec has
// exactly one canonical form (see Spec.String).
func ParseSpec(s string) (Spec, error) {
	name, query, hasQuery := strings.Cut(s, "?")
	if name == "" {
		return Spec{}, fmt.Errorf("textproc: empty analyzer name in spec %q", s)
	}
	spec := Spec{Name: name}
	if !hasQuery {
		return spec, nil
	}
	if query == "" {
		return Spec{}, fmt.Errorf("textproc: empty parameter list in spec %q", s)
	}
	spec.Params = make(map[string]string)
	for _, kv := range strings.Split(query, "&") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return Spec{}, fmt.Errorf("textproc: malformed parameter %q in spec %q", kv, s)
		}
		if _, dup := spec.Params[k]; dup {
			return Spec{}, fmt.Errorf("textproc: duplicate parameter %q in spec %q", k, s)
		}
		spec.Params[k] = v
	}
	return spec, nil
}

// String renders the canonical form of the spec: the name, then the
// parameters sorted by key. Two specs that build the same analyzer
// render identically, so canonical strings are comparable for the
// recovery-time mismatch check.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte('?')
		} else {
			b.WriteByte('&')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
	}
	return b.String()
}

// CanonicalSpec parses a spec string and returns its canonical form,
// validating that the pipeline can actually be built (unknown names
// and parameters are rejected here, not at first use).
func CanonicalSpec(s string) (string, error) {
	a, err := NewAnalyzer(s)
	if err != nil {
		return "", err
	}
	return a.Name(), nil
}

// Builder constructs one registered pipeline from its parameters.
type Builder func(params map[string]string) (Analyzer, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// RegisterAnalyzer adds (or replaces) a named pipeline in the
// registry. Built-ins register themselves; applications may add
// language-specific pipelines the same way.
func RegisterAnalyzer(name string, b Builder) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = b
}

// AnalyzerNames lists the registered pipeline names, sorted.
func AnalyzerNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewAnalyzer builds the analyzer a spec string names. The returned
// analyzer's Name() is the canonical form of the spec.
func NewAnalyzer(spec string) (Analyzer, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	regMu.RLock()
	b, ok := registry[s.Name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("textproc: unknown analyzer %q (registered: %s)",
			s.Name, strings.Join(AnalyzerNames(), ", "))
	}
	return b(s.Params)
}

// MustAnalyzer is NewAnalyzer for statically known specs; it panics on
// error.
func MustAnalyzer(spec string) Analyzer {
	a, err := NewAnalyzer(spec)
	if err != nil {
		panic(err)
	}
	return a
}

// tokenizerParams builds a Tokenizer from the shared parameter set of
// the tokenizer-backed pipelines: "min"/"max" (token rune-length
// bounds), "digits" (keep purely numeric tokens) and "stop" (replace
// the stopword list with a comma-separated one; empty value clears
// it). base supplies the pipeline's default stopword list. Unknown
// keys are rejected so a spec's canonical form is also a complete
// description of its behaviour.
func tokenizerParams(params map[string]string, base []string) (*Tokenizer, error) {
	opts := []TokenizerOption{WithStopwords(base)}
	for k, v := range params {
		switch k {
		case "min", "max":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("textproc: analyzer parameter %s=%q: want a positive integer", k, v)
			}
			if k == "min" {
				opts = append(opts, WithMinTokenLength(n))
			} else {
				opts = append(opts, WithMaxTokenLength(n))
			}
		case "digits":
			keep, err := strconv.ParseBool(v)
			if err != nil {
				return nil, fmt.Errorf("textproc: analyzer parameter digits=%q: want a boolean", v)
			}
			opts = append(opts, WithDigits(keep))
		case "stop":
			var words []string
			for _, w := range strings.Split(v, ",") {
				if w = strings.TrimSpace(w); w != "" {
					words = append(words, w)
				}
			}
			opts = append(opts, WithStopwords(words))
		default:
			return nil, fmt.Errorf("textproc: unknown analyzer parameter %q", k)
		}
	}
	return NewTokenizer(opts...), nil
}

// Built-in pipeline registration. The parity contract pinned by the
// engine tests: "standard" with no parameters is bit-identical to the
// historical NewTokenizer() path, and "english" to NewTokenizer() +
// StemAll (the legacy Stemming: true engine option).
func init() {
	RegisterAnalyzer("standard", func(params map[string]string) (Analyzer, error) {
		tok, err := tokenizerParams(params, DefaultStopwords())
		if err != nil {
			return nil, err
		}
		return NewChain(Spec{Name: "standard", Params: params}.String(),
			nil, tok.Tokenize, nil).WithSplitAppend(tok.AppendTokens), nil
	})
	RegisterAnalyzer("english", func(params map[string]string) (Analyzer, error) {
		tok, err := tokenizerParams(params, DefaultStopwords())
		if err != nil {
			return nil, err
		}
		return NewChain(Spec{Name: "english", Params: params}.String(),
			nil, tok.Tokenize, []TokenFilter{StemAll}).WithSplitAppend(tok.AppendTokens), nil
	})
	// unicode-fold is the language-neutral pipeline: accents and
	// combining marks fold away before tokenization (NFC "café" and
	// NFD "café" yield the same term), no stemmer, and no built-in
	// stopword list — a non-English deployment injects its own via the
	// "stop" parameter ("unicode-fold?stop=le,la,les,un,une").
	RegisterAnalyzer("unicode-fold", func(params map[string]string) (Analyzer, error) {
		tok, err := tokenizerParams(params, nil)
		if err != nil {
			return nil, err
		}
		return NewChain(Spec{Name: "unicode-fold", Params: params}.String(),
			[]CharFilter{Fold}, tok.Tokenize, nil).WithSplitAppend(tok.AppendTokens), nil
	})
	// whitespace passes pre-tokenized or trace input through verbatim:
	// tokens are the whitespace-separated fields, with no case
	// folding, length filtering or stopword removal.
	RegisterAnalyzer("whitespace", func(params map[string]string) (Analyzer, error) {
		if len(params) > 0 {
			return nil, fmt.Errorf("textproc: whitespace analyzer takes no parameters")
		}
		return NewChain("whitespace", nil, strings.Fields, nil).WithSplitAppend(appendFields), nil
	})
}

// appendFields is strings.Fields into a caller-provided buffer.
func appendFields(dst []string, s string) []string {
	start := -1
	for i, r := range s {
		if unicode.IsSpace(r) {
			if start >= 0 {
				dst = append(dst, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		dst = append(dst, s[start:])
	}
	return dst
}
