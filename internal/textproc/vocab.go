package textproc

import (
	"fmt"
	"sync"
)

// Vocabulary maps term strings to dense TermIDs and tracks document
// frequencies. It is safe for concurrent readers; writers (Intern,
// ObserveDoc) must be externally synchronized or use the locked
// variants below, which it provides by default.
type Vocabulary struct {
	mu    sync.RWMutex
	ids   map[string]TermID
	terms []string
	df    []uint32 // document frequency per term
	docs  uint64   // number of documents observed
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]TermID)}
}

// Intern returns the ID for term, allocating a new ID on first sight.
func (v *Vocabulary) Intern(term string) TermID {
	v.mu.RLock()
	id, ok := v.ids[term]
	v.mu.RUnlock()
	if ok {
		return id
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok = v.ids[term]; ok {
		return id
	}
	id = TermID(len(v.terms))
	v.ids[term] = id
	v.terms = append(v.terms, term)
	v.df = append(v.df, 0)
	return id
}

// Lookup returns the ID for term without allocating.
func (v *Vocabulary) Lookup(term string) (TermID, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	id, ok := v.ids[term]
	return id, ok
}

// Term returns the string for a TermID. It panics on out-of-range IDs,
// which indicate corruption or a vocabulary mismatch.
func (v *Vocabulary) Term(id TermID) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if int(id) >= len(v.terms) {
		panic(fmt.Sprintf("textproc: TermID %d out of range (vocab size %d)", id, len(v.terms)))
	}
	return v.terms[id]
}

// Size reports the number of distinct terms.
func (v *Vocabulary) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.terms)
}

// Docs reports the number of documents observed via ObserveDoc.
func (v *Vocabulary) Docs() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.docs
}

// DF returns the document frequency of a term.
func (v *Vocabulary) DF(id TermID) uint32 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if int(id) >= len(v.df) {
		return 0
	}
	return v.df[id]
}

// ObserveDoc records one document's distinct terms, interning each and
// bumping document frequencies. It returns the interned IDs in the
// order given (duplicates in terms are counted once).
func (v *Vocabulary) ObserveDoc(terms []string) []TermID {
	seen := make(map[string]struct{}, len(terms))
	ids := make([]TermID, 0, len(terms))
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, t := range terms {
		id, ok := v.ids[t]
		if !ok {
			id = TermID(len(v.terms))
			v.ids[t] = id
			v.terms = append(v.terms, t)
			v.df = append(v.df, 0)
		}
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			v.df[id]++
			ids = append(ids, id)
		}
	}
	v.docs++
	return ids
}

// ObserveDocCounts is the allocation-free fusion of ObserveDoc and
// per-document token counting: it interns every token, bumps document
// frequencies once per distinct term, and leaves counts holding the
// per-term occurrence counts. counts is cleared first and doubles as
// the distinct-term set (a term is new to this document exactly when
// its count is still zero), so the call needs no scratch of its own.
func (v *Vocabulary) ObserveDocCounts(tokens []string, counts map[TermID]float64) {
	clear(counts)
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, t := range tokens {
		id, ok := v.ids[t]
		if !ok {
			id = TermID(len(v.terms))
			v.ids[t] = id
			v.terms = append(v.terms, t)
			v.df = append(v.df, 0)
		}
		if counts[id] == 0 {
			v.df[id]++
		}
		counts[id]++
	}
	v.docs++
}

// Dump exports the vocabulary's full state — term strings in ID
// order, per-term document frequencies, and the observed document
// count — as copies safe to retain across further mutation. It is the
// persistence half of LoadVocabulary.
func (v *Vocabulary) Dump() (terms []string, df []uint32, docs uint64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	terms = append([]string(nil), v.terms...)
	df = append([]uint32(nil), v.df...)
	return terms, df, v.docs
}

// LoadVocabulary reconstructs a vocabulary from Dump's output. TermIDs
// are assigned by position, so vectors built against the dumped
// vocabulary stay valid against the loaded one.
func LoadVocabulary(terms []string, df []uint32, docs uint64) (*Vocabulary, error) {
	if len(df) != len(terms) {
		return nil, fmt.Errorf("textproc: %d terms but %d document frequencies", len(terms), len(df))
	}
	v := NewVocabulary()
	v.terms = append([]string(nil), terms...)
	v.df = append([]uint32(nil), df...)
	v.docs = docs
	for i, t := range terms {
		if _, dup := v.ids[t]; dup {
			return nil, fmt.Errorf("textproc: duplicate term %q in vocabulary dump", t)
		}
		v.ids[t] = TermID(i)
	}
	return v, nil
}

// PresetVocabulary builds a vocabulary of n synthetic terms "t0".."tn-1"
// with the given document frequencies (df may be nil). It is used by the
// synthetic corpus generator, which works directly in TermID space.
func PresetVocabulary(n int, df []uint32, docs uint64) *Vocabulary {
	v := NewVocabulary()
	v.terms = make([]string, n)
	v.df = make([]uint32, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%d", i)
		v.terms[i] = name
		v.ids[name] = TermID(i)
	}
	if df != nil {
		copy(v.df, df)
	}
	v.docs = docs
	return v
}
