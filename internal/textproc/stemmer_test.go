package textproc

import "testing"

// TestStemVocabulary checks representative input/output pairs from
// Porter's published test vocabulary and common retrieval cases.
func TestStemVocabulary(t *testing.T) {
	cases := map[string]string{
		// step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":     "relat",
		"conditional":    "condit",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// retrieval-typical
		"monitoring": "monitor",
		"queries":    "queri",
		"documents":  "document",
		"streams":    "stream",
		"continuous": "continu",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonASCII(t *testing.T) {
	for _, w := range []string{"a", "is", "go", "世界", "naïve", "Fo0"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming a stem must be stable for typical vocabulary — the
	// pipeline may be applied to already-normalized query logs.
	words := []string{
		"monitoring", "documents", "relational", "formalize", "hopping",
		"streams", "effective", "adjustment", "queries", "happiness",
	}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not stable: %q → %q → %q", w, once, twice)
		}
	}
}

func TestStemAll(t *testing.T) {
	got := StemAll([]string{"monitoring", "streams"})
	if got[0] != "monitor" || got[1] != "stream" {
		t.Fatalf("StemAll = %v", got)
	}
	if out := StemAll(nil); len(out) != 0 {
		t.Fatal("StemAll(nil) not empty")
	}
}

func TestStemmedPipelineSharesVocabulary(t *testing.T) {
	// Query "monitoring" must match document "monitors" after both go
	// through the stemmed pipeline.
	vocab := NewVocabulary()
	w := NewWeighter(vocab, WeightTF)
	tok := NewTokenizer()
	doc := w.DocumentVector(StemAll(tok.Tokenize("The system monitors document streams")))
	query := w.VectorFromTokens(StemAll(tok.Tokenize("monitoring streams")))
	if Dot(query, doc) <= 0 {
		t.Fatal("stemmed query does not match stemmed document")
	}
}
