package textproc

import (
	"reflect"
	"strings"
	"testing"
)

func TestTokenizeBasic(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokenize("The Quick, brown fox-jumps over 2 lazy dogs!")
	want := []string{"quick", "brown", "fox", "jumps", "lazy", "dogs"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeStopwords(t *testing.T) {
	tok := NewTokenizer()
	for _, sw := range []string{"the", "and", "is", "was"} {
		if got := tok.Tokenize(sw); len(got) != 0 {
			t.Errorf("stopword %q survived: %v", sw, got)
		}
	}
}

func TestTokenizeCustomStopwords(t *testing.T) {
	tok := NewTokenizer(WithStopwords([]string{"foo"}))
	got := tok.Tokenize("foo the bar")
	want := []string{"the", "bar"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeLengthFilters(t *testing.T) {
	tok := NewTokenizer(WithMinTokenLength(3), WithMaxTokenLength(5))
	got := tok.Tokenize("ab abc abcde abcdef")
	want := []string{"abc", "abcde"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDigits(t *testing.T) {
	drop := NewTokenizer()
	if got := drop.Tokenize("route 66 runs"); !reflect.DeepEqual(got, []string{"route", "runs"}) {
		t.Fatalf("digits kept by default: %v", got)
	}
	keep := NewTokenizer(WithDigits(true))
	if got := keep.Tokenize("route 66 runs"); !reflect.DeepEqual(got, []string{"route", "66", "runs"}) {
		t.Fatalf("digits dropped despite WithDigits: %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokenize("Καλημέρα κόσμε — 世界")
	want := []string{"καλημέρα", "κόσμε", "世界"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize unicode = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	tok := NewTokenizer()
	if got := tok.Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v", got)
	}
	if got := tok.Tokenize("  \t\n  "); len(got) != 0 {
		t.Fatalf("Tokenize(whitespace) = %v", got)
	}
}

func TestCounts(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Counts("cat dog cat bird cat dog")
	want := map[string]int{"cat": 3, "dog": 2, "bird": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Counts = %v, want %v", got, want)
	}
}

func TestDefaultStopwordsCopy(t *testing.T) {
	a := DefaultStopwords()
	a[0] = "mutated"
	b := DefaultStopwords()
	if b[0] == "mutated" {
		t.Fatal("DefaultStopwords exposes internal slice")
	}
}

func TestTokenizeAccentedFrench(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokenize("Pneumopathie Sévère à l'Hôpital Décès")
	// Precomposed accented letters are letters: they stay inside their
	// tokens and survive lower-casing intact (no folding here — that is
	// the unicode-fold analyzer's job).
	want := []string{"pneumopathie", "sévère", "hôpital", "décès"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeCombiningMarks(t *testing.T) {
	tok := NewTokenizer()
	// Combining marks (category Mn) are neither letters nor digits, so
	// the standard tokenizer splits on them: decomposed "décès" breaks
	// apart. This pins the motivating behavior for unicode-fold, which
	// strips the marks before tokenization instead.
	got := tok.Tokenize("de\u0301ce\u0300s")
	want := []string{"de", "ce"} // trailing "s" dropped by min length
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize NFD = %v, want %v", got, want)
	}
	if folded := MustAnalyzer("unicode-fold").Analyze("de\u0301ce\u0300s"); !reflect.DeepEqual(folded, []string{"deces"}) {
		t.Fatalf("unicode-fold NFD = %v, want [deces]", folded)
	}
}

func TestTokenizeUnicodeDigits(t *testing.T) {
	drop := NewTokenizer()
	// Arabic-Indic digits are unicode digits: purely numeric tokens are
	// dropped by default regardless of script.
	if got := drop.Tokenize("سنة ٢٠١٨ م"); len(got) != 1 || got[0] != "سنة" {
		t.Fatalf("unicode digits kept by default: %v", got)
	}
	keep := NewTokenizer(WithDigits(true))
	got := keep.Tokenize("سنة ٢٠١٨ م")
	want := []string{"سنة", "٢٠١٨"} // "م" still dropped by min length
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize with digits = %v, want %v", got, want)
	}
}

func TestTokenizeMaxLengthRunes(t *testing.T) {
	tok := NewTokenizer()
	// The default max length (40) counts runes, not bytes: a 40-rune
	// token of 2-byte runes (80 bytes) survives, a 41-rune one does not.
	ok := strings.Repeat("é", 40)
	long := strings.Repeat("é", 41)
	if got := tok.Tokenize(ok); !reflect.DeepEqual(got, []string{ok}) {
		t.Fatalf("40-rune token dropped: %v", got)
	}
	if got := tok.Tokenize(long); len(got) != 0 {
		t.Fatalf("41-rune token kept: %v", got)
	}
	if got := tok.Tokenize(ok + " " + long); !reflect.DeepEqual(got, []string{ok}) {
		t.Fatalf("mixed lengths = %v", got)
	}
}
