package textproc

import (
	"reflect"
	"testing"
)

func TestTokenizeBasic(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokenize("The Quick, brown fox-jumps over 2 lazy dogs!")
	want := []string{"quick", "brown", "fox", "jumps", "lazy", "dogs"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeStopwords(t *testing.T) {
	tok := NewTokenizer()
	for _, sw := range []string{"the", "and", "is", "was"} {
		if got := tok.Tokenize(sw); len(got) != 0 {
			t.Errorf("stopword %q survived: %v", sw, got)
		}
	}
}

func TestTokenizeCustomStopwords(t *testing.T) {
	tok := NewTokenizer(WithStopwords([]string{"foo"}))
	got := tok.Tokenize("foo the bar")
	want := []string{"the", "bar"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeLengthFilters(t *testing.T) {
	tok := NewTokenizer(WithMinTokenLength(3), WithMaxTokenLength(5))
	got := tok.Tokenize("ab abc abcde abcdef")
	want := []string{"abc", "abcde"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDigits(t *testing.T) {
	drop := NewTokenizer()
	if got := drop.Tokenize("route 66 runs"); !reflect.DeepEqual(got, []string{"route", "runs"}) {
		t.Fatalf("digits kept by default: %v", got)
	}
	keep := NewTokenizer(WithDigits(true))
	if got := keep.Tokenize("route 66 runs"); !reflect.DeepEqual(got, []string{"route", "66", "runs"}) {
		t.Fatalf("digits dropped despite WithDigits: %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokenize("Καλημέρα κόσμε — 世界")
	want := []string{"καλημέρα", "κόσμε", "世界"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize unicode = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	tok := NewTokenizer()
	if got := tok.Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v", got)
	}
	if got := tok.Tokenize("  \t\n  "); len(got) != 0 {
		t.Fatalf("Tokenize(whitespace) = %v", got)
	}
}

func TestCounts(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Counts("cat dog cat bird cat dog")
	want := map[string]int{"cat": 3, "dog": 2, "bird": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Counts = %v, want %v", got, want)
	}
}

func TestDefaultStopwordsCopy(t *testing.T) {
	a := DefaultStopwords()
	a[0] = "mutated"
	b := DefaultStopwords()
	if b[0] == "mutated" {
		t.Fatal("DefaultStopwords exposes internal slice")
	}
}
