package textproc

import (
	"testing"
	"unicode/utf8"
)

// FuzzStem checks the stemmer's structural invariants on arbitrary
// input. Porter is NOT idempotent ("focuses" → "focus" → "focu"), so
// the property fuzzed here is the weaker true one: repeated stemming
// converges to a fixpoint in a bounded number of iterations (every
// rewrite either shortens the word or is a terminal e/i adjustment),
// and no step ever lengthens the word.
func FuzzStem(f *testing.F) {
	for _, seed := range []string{
		"", "a", "ox", "caresses", "ponies", "relational", "hopeful",
		"focuses", "adjustable", "triplicate", "formalize", "oscillate",
		"probate", "controllable", "sévère", "ızgara", "日本語",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, word string) {
		out := Stem(word)
		if len(out) > len(word) {
			t.Fatalf("Stem(%q) = %q grew the word", word, out)
		}
		if len(word) <= 2 || !isASCIILower(word) {
			if out != word {
				t.Fatalf("Stem(%q) = %q, want unchanged (short or non-ASCII-lower)", word, out)
			}
			return
		}
		// Bounded fixpoint: each shrinking iteration removes at least one
		// byte, and non-shrinking rewrites cannot cycle, so len(word)+4
		// rounds is generous.
		prev := out
		for i := 0; i <= len(word)+4; i++ {
			next := Stem(prev)
			if len(next) > len(prev) {
				t.Fatalf("re-stemming grew: %q → %q", prev, next)
			}
			if next == prev {
				return
			}
			prev = next
		}
		t.Fatalf("Stem(%q) does not converge (reached %q)", word, prev)
	})
}

// FuzzAnalyze runs every registered built-in pipeline over arbitrary
// text: no panics, and every produced token is valid UTF-8 and
// non-empty (the invariants the weighter and vocabulary rely on).
func FuzzAnalyze(f *testing.F) {
	for _, seed := range []string{
		"", "the quick brown fox", "Décès à l'hôpital", "oʻzbek tili",
		"route 66\t\ncafé", "ß ÆON Straße", "世界 ٢٠١٨ żółć",
	} {
		f.Add(seed)
	}
	specs := []string{"standard", "english", "unicode-fold", "whitespace"}
	analyzers := make([]Analyzer, len(specs))
	for i, s := range specs {
		analyzers[i] = MustAnalyzer(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		for _, a := range analyzers {
			tokens := a.Analyze(text)
			for _, tok := range tokens {
				if tok == "" {
					t.Fatalf("%s produced an empty token on %q", a.Name(), text)
				}
				if utf8.ValidString(text) && !utf8.ValidString(tok) {
					t.Fatalf("%s produced invalid UTF-8 token %q on valid input %q", a.Name(), tok, text)
				}
			}
		}
	})
}
