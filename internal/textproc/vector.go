// Package textproc implements the text-analysis substrate of the CTQD
// monitor: tokenization, stopword filtering, vocabulary management,
// tf-idf weighting and sparse unit vectors.
//
// Both streaming documents and continuous queries are represented as
// sparse vectors over a shared vocabulary. Vectors are kept sorted by
// term ID and L2-normalized, so the cosine similarity used by the
// paper's scoring function (Eq. 1) reduces to a sparse dot product.
package textproc

import (
	"fmt"
	"math"
	"sort"
)

// TermID identifies a vocabulary term. IDs are dense, starting at 0.
type TermID uint32

// TermWeight is one component of a sparse vector.
type TermWeight struct {
	Term   TermID
	Weight float64
}

// Vector is a sparse vector over the vocabulary, sorted by TermID with
// no duplicate terms. A zero-length Vector is valid and has zero norm.
type Vector []TermWeight

// Len reports the number of non-zero components.
func (v Vector) Len() int { return len(v) }

// Sorted reports whether the vector is sorted by term ID with no
// duplicates. All exported functions producing Vectors guarantee this.
func (v Vector) Sorted() bool {
	for i := 1; i < len(v); i++ {
		if v[i-1].Term >= v[i].Term {
			return false
		}
	}
	return true
}

// Norm returns the L2 norm of the vector.
func (v Vector) Norm() float64 {
	var s float64
	for _, tw := range v {
		s += tw.Weight * tw.Weight
	}
	return math.Sqrt(s)
}

// Normalize scales the vector in place to unit L2 norm. It is a no-op
// for zero vectors.
func (v Vector) Normalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range v {
		v[i].Weight *= inv
	}
}

// Dot returns the dot product of two sorted sparse vectors using a
// linear merge.
func Dot(a, b Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Term < b[j].Term:
			i++
		case a[i].Term > b[j].Term:
			j++
		default:
			s += a[i].Weight * b[j].Weight
			i++
			j++
		}
	}
	return s
}

// Cosine returns the cosine similarity of two sparse vectors,
// normalizing on the fly. Unit vectors should prefer Dot.
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Weight returns the weight of term t, or 0 when absent. It uses
// binary search; for repeated probes against the same vector prefer
// building a Probe.
func (v Vector) Weight(t TermID) float64 {
	i := sort.Search(len(v), func(i int) bool { return v[i].Term >= t })
	if i < len(v) && v[i].Term == t {
		return v[i].Weight
	}
	return 0
}

// Validate checks structural invariants: sorted, unique terms, and all
// weights finite and positive. It returns a descriptive error for the
// first violation found.
func (v Vector) Validate() error {
	for i, tw := range v {
		if math.IsNaN(tw.Weight) || math.IsInf(tw.Weight, 0) {
			return fmt.Errorf("textproc: term %d has non-finite weight %v", tw.Term, tw.Weight)
		}
		if tw.Weight <= 0 {
			return fmt.Errorf("textproc: term %d has non-positive weight %v", tw.Term, tw.Weight)
		}
		if i > 0 && v[i-1].Term >= tw.Term {
			return fmt.Errorf("textproc: terms out of order at index %d (%d >= %d)", i, v[i-1].Term, tw.Term)
		}
	}
	return nil
}

// Clone returns a deep copy of the vector.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// FromCounts builds a sorted Vector from a term→count (or term→raw
// weight) map. Zero or negative values are dropped.
func FromCounts(counts map[TermID]float64) Vector {
	v := make(Vector, 0, len(counts))
	for t, c := range counts {
		if c > 0 {
			v = append(v, TermWeight{Term: t, Weight: c})
		}
	}
	sort.Slice(v, func(i, j int) bool { return v[i].Term < v[j].Term })
	return v
}

// Probe supports O(1) weight lookups against one vector. It is the
// per-event structure the matching algorithms use to score candidate
// queries exactly: queries are short, so each candidate costs a handful
// of map probes.
type Probe struct {
	w map[TermID]float64
}

// NewProbe indexes v for constant-time component lookups.
func NewProbe(v Vector) *Probe {
	m := make(map[TermID]float64, len(v))
	for _, tw := range v {
		m[tw.Term] = tw.Weight
	}
	return &Probe{w: m}
}

// Weight returns the weight of t in the probed vector, or 0.
func (p *Probe) Weight(t TermID) float64 { return p.w[t] }

// DotQuery computes the dot product of a (short) query vector with the
// probed document vector.
func (p *Probe) DotQuery(q Vector) float64 {
	var s float64
	for _, tw := range q {
		s += tw.Weight * p.w[tw.Term]
	}
	return s
}
