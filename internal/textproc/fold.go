package textproc

import (
	"strings"
	"unicode"
)

// foldTable maps precomposed accented Latin letters (lower case; upper
// case is lowered before lookup) to their unaccented base. It covers
// Latin-1 Supplement and Latin Extended-A — enough for the Romance and
// Turkic-Latin orthographies the unicode-fold pipeline targets;
// scripts outside the table (Greek, Cyrillic, CJK) pass through
// unchanged.
var foldTable = map[rune]rune{
	'à': 'a', 'á': 'a', 'â': 'a', 'ã': 'a', 'ä': 'a', 'å': 'a', 'ā': 'a', 'ă': 'a', 'ą': 'a',
	'ç': 'c', 'ć': 'c', 'ĉ': 'c', 'ċ': 'c', 'č': 'c',
	'ď': 'd', 'đ': 'd', 'ð': 'd',
	'è': 'e', 'é': 'e', 'ê': 'e', 'ë': 'e', 'ē': 'e', 'ĕ': 'e', 'ė': 'e', 'ę': 'e', 'ě': 'e',
	'ĝ': 'g', 'ğ': 'g', 'ġ': 'g', 'ģ': 'g',
	'ĥ': 'h', 'ħ': 'h',
	'ì': 'i', 'í': 'i', 'î': 'i', 'ï': 'i', 'ĩ': 'i', 'ī': 'i', 'ĭ': 'i', 'į': 'i', 'ı': 'i',
	'ĵ': 'j',
	'ķ': 'k',
	'ĺ': 'l', 'ļ': 'l', 'ľ': 'l', 'ŀ': 'l', 'ł': 'l',
	'ñ': 'n', 'ń': 'n', 'ņ': 'n', 'ň': 'n',
	'ò': 'o', 'ó': 'o', 'ô': 'o', 'õ': 'o', 'ö': 'o', 'ø': 'o', 'ō': 'o', 'ŏ': 'o', 'ő': 'o',
	'ŕ': 'r', 'ŗ': 'r', 'ř': 'r',
	'ś': 's', 'ŝ': 's', 'ş': 's', 'š': 's', 'ș': 's',
	'ţ': 't', 'ť': 't', 'ŧ': 't', 'ț': 't',
	'ù': 'u', 'ú': 'u', 'û': 'u', 'ü': 'u', 'ũ': 'u', 'ū': 'u', 'ŭ': 'u', 'ů': 'u', 'ű': 'u', 'ų': 'u',
	'ŵ': 'w',
	'ý': 'y', 'ÿ': 'y', 'ŷ': 'y',
	'ź': 'z', 'ż': 'z', 'ž': 'z',
	'þ': 't',
}

// foldExpand maps runes that fold to more than one letter, plus the
// modifier letters some orthographies (Uzbek Latin oʻ/gʻ, Hawaiian)
// spell words with, which fold to nothing so "oʻzbek" and "ozbek"
// agree.
var foldExpand = map[rune]string{
	'æ': "ae", 'œ': "oe", 'ß': "ss", 'ĳ': "ij",
	'ʻ': "", // ʻ MODIFIER LETTER TURNED COMMA
	'ʼ': "", // ʼ MODIFIER LETTER APOSTROPHE
	'ʹ': "", // ʹ MODIFIER LETTER PRIME
}

// Fold is the unicode-fold pipeline's char filter: it strips combining
// marks (so decomposed "café" loses its U+0301) and folds precomposed
// accented letters to their base (so composed "café" becomes "cafe"),
// leaving everything else — including case, which the tokenizer
// handles — untouched. Decomposed and precomposed spellings of the
// same word therefore produce the same term without a Unicode
// normalization dependency.
func Fold(text string) string {
	// Fast path: pure ASCII needs no folding and no allocation.
	ascii := true
	for i := 0; i < len(text); i++ {
		if text[i] >= 0x80 {
			ascii = false
			break
		}
	}
	if ascii {
		return text
	}
	var b strings.Builder
	b.Grow(len(text))
	for _, r := range text {
		if unicode.Is(unicode.Mn, r) {
			continue // combining mark: drop
		}
		lr := unicode.ToLower(r)
		if s, ok := foldExpand[lr]; ok {
			b.WriteString(s)
			continue
		}
		if folded, ok := foldTable[lr]; ok {
			b.WriteRune(folded)
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}
