package textproc

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVectorNormalize(t *testing.T) {
	v := Vector{{0, 3}, {5, 4}}
	v.Normalize()
	if !almostEqual(v.Norm(), 1, 1e-12) {
		t.Fatalf("norm after Normalize = %v, want 1", v.Norm())
	}
	if !almostEqual(v[0].Weight, 0.6, 1e-12) || !almostEqual(v[1].Weight, 0.8, 1e-12) {
		t.Fatalf("unexpected components: %+v", v)
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	var v Vector
	v.Normalize() // must not panic or produce NaN
	if v.Norm() != 0 {
		t.Fatalf("zero vector norm changed: %v", v.Norm())
	}
	z := Vector{}
	z.Normalize()
	if len(z) != 0 {
		t.Fatal("empty vector mutated")
	}
}

func TestDotDisjoint(t *testing.T) {
	a := Vector{{0, 1}, {2, 1}}
	b := Vector{{1, 1}, {3, 1}}
	if got := Dot(a, b); got != 0 {
		t.Fatalf("Dot(disjoint) = %v, want 0", got)
	}
}

func TestDotOverlap(t *testing.T) {
	a := Vector{{1, 2}, {4, 3}, {9, 1}}
	b := Vector{{1, 5}, {9, 2}}
	if got := Dot(a, b); !almostEqual(got, 12, 1e-12) {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotCommutative(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randVector(rand.New(rand.NewSource(seedA)), 20, 50)
		b := randVector(rand.New(rand.NewSource(seedB)), 20, 50)
		return almostEqual(Dot(a, b), Dot(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotMatchesMapAccumulation(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randVector(rand.New(rand.NewSource(seedA)), 30, 60)
		b := randVector(rand.New(rand.NewSource(seedB)), 30, 60)
		m := make(map[TermID]float64)
		for _, tw := range a {
			m[tw.Term] = tw.Weight
		}
		var want float64
		for _, tw := range b {
			want += tw.Weight * m[tw.Term]
		}
		return almostEqual(Dot(a, b), want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSelf(t *testing.T) {
	v := Vector{{0, 2}, {7, 5}, {12, 1}}
	if got := Cosine(v, v); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Cosine(v,v) = %v, want 1", got)
	}
}

func TestCosineZero(t *testing.T) {
	if got := Cosine(Vector{}, Vector{{1, 1}}); got != 0 {
		t.Fatalf("Cosine with zero vector = %v, want 0", got)
	}
}

func TestWeightLookup(t *testing.T) {
	v := Vector{{2, 0.5}, {10, 0.25}, {100, 0.75}}
	if got := v.Weight(10); got != 0.25 {
		t.Fatalf("Weight(10) = %v", got)
	}
	if got := v.Weight(3); got != 0 {
		t.Fatalf("Weight(absent) = %v, want 0", got)
	}
	if got := v.Weight(101); got != 0 {
		t.Fatalf("Weight(beyond) = %v, want 0", got)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		v    Vector
		ok   bool
	}{
		{"valid", Vector{{1, 0.5}, {2, 0.5}}, true},
		{"empty", Vector{}, true},
		{"unsorted", Vector{{2, 0.5}, {1, 0.5}}, false},
		{"duplicate", Vector{{1, 0.5}, {1, 0.5}}, false},
		{"nan", Vector{{1, math.NaN()}}, false},
		{"inf", Vector{{1, math.Inf(1)}}, false},
		{"nonpositive", Vector{{1, 0}}, false},
	}
	for _, c := range cases {
		err := c.v.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestFromCountsSortedAndFiltered(t *testing.T) {
	v := FromCounts(map[TermID]float64{5: 2, 1: 3, 9: 0, 7: -1})
	if !v.Sorted() {
		t.Fatalf("FromCounts not sorted: %+v", v)
	}
	if len(v) != 2 {
		t.Fatalf("FromCounts kept %d entries, want 2", len(v))
	}
	if v[0].Term != 1 || v[1].Term != 5 {
		t.Fatalf("unexpected terms: %+v", v)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{{1, 0.5}}
	c := v.Clone()
	c[0].Weight = 9
	if v[0].Weight != 0.5 {
		t.Fatal("Clone aliases original storage")
	}
	if Vector(nil).Clone() != nil {
		t.Fatal("Clone(nil) != nil")
	}
}

func TestProbeDotQueryAgainstMergeDot(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		doc := randVector(rand.New(rand.NewSource(seedA)), 50, 80)
		q := randVector(rand.New(rand.NewSource(seedB)), 5, 80)
		p := NewProbe(doc)
		return almostEqual(p.DotQuery(q), Dot(q, doc), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbeWeight(t *testing.T) {
	p := NewProbe(Vector{{3, 0.5}, {8, 0.25}})
	if p.Weight(3) != 0.5 || p.Weight(8) != 0.25 || p.Weight(4) != 0 {
		t.Fatal("Probe.Weight mismatch")
	}
}

// randVector builds a random sorted vector with up to n terms drawn
// from [0, universe).
func randVector(r *rand.Rand, n, universe int) Vector {
	m := make(map[TermID]float64)
	for i := 0; i < n; i++ {
		m[TermID(r.Intn(universe))] = r.Float64() + 0.01
	}
	v := FromCounts(m)
	sort.Slice(v, func(i, j int) bool { return v[i].Term < v[j].Term })
	return v
}
