package textproc

import (
	"strings"
	"unicode"
)

// Tokenizer splits raw text into normalized tokens. The pipeline is the
// conventional one for bag-of-words retrieval: Unicode-aware word
// segmentation, lower-casing, length filtering and stopword removal.
//
// The zero value is not usable; construct with NewTokenizer.
type Tokenizer struct {
	minLen    int
	maxLen    int
	stopwords map[string]struct{}
	keepDigit bool
}

// TokenizerOption customizes a Tokenizer.
type TokenizerOption func(*Tokenizer)

// WithMinTokenLength drops tokens shorter than n runes (default 2).
func WithMinTokenLength(n int) TokenizerOption {
	return func(t *Tokenizer) { t.minLen = n }
}

// WithMaxTokenLength drops tokens longer than n runes (default 40,
// which filters URLs and concatenation artifacts).
func WithMaxTokenLength(n int) TokenizerOption {
	return func(t *Tokenizer) { t.maxLen = n }
}

// WithStopwords replaces the default English stopword list.
func WithStopwords(words []string) TokenizerOption {
	return func(t *Tokenizer) {
		t.stopwords = make(map[string]struct{}, len(words))
		for _, w := range words {
			t.stopwords[strings.ToLower(w)] = struct{}{}
		}
	}
}

// WithDigits keeps purely numeric tokens (dropped by default).
func WithDigits(keep bool) TokenizerOption {
	return func(t *Tokenizer) { t.keepDigit = keep }
}

// NewTokenizer returns a tokenizer with the default English pipeline.
func NewTokenizer(opts ...TokenizerOption) *Tokenizer {
	t := &Tokenizer{
		minLen:    2,
		maxLen:    40,
		stopwords: defaultStopwords(),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Tokenize splits text into normalized tokens, applying the filters.
func (t *Tokenizer) Tokenize(text string) []string {
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := fields[:0:0]
	for _, f := range fields {
		tok := strings.ToLower(f)
		n := len([]rune(tok))
		if n < t.minLen || n > t.maxLen {
			continue
		}
		if !t.keepDigit && isNumeric(tok) {
			continue
		}
		if _, stop := t.stopwords[tok]; stop {
			continue
		}
		out = append(out, tok)
	}
	return out
}

// Counts tokenizes text and returns per-token occurrence counts.
func (t *Tokenizer) Counts(text string) map[string]int {
	counts := make(map[string]int)
	for _, tok := range t.Tokenize(text) {
		counts[tok]++
	}
	return counts
}

func isNumeric(s string) bool {
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(s) > 0
}
