package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Tokenizer splits raw text into normalized tokens. The pipeline is the
// conventional one for bag-of-words retrieval: Unicode-aware word
// segmentation, lower-casing, length filtering and stopword removal.
//
// The zero value is not usable; construct with NewTokenizer.
type Tokenizer struct {
	minLen    int
	maxLen    int
	stopwords map[string]struct{}
	keepDigit bool
}

// TokenizerOption customizes a Tokenizer.
type TokenizerOption func(*Tokenizer)

// WithMinTokenLength drops tokens shorter than n runes (default 2).
func WithMinTokenLength(n int) TokenizerOption {
	return func(t *Tokenizer) { t.minLen = n }
}

// WithMaxTokenLength drops tokens longer than n runes (default 40,
// which filters URLs and concatenation artifacts).
func WithMaxTokenLength(n int) TokenizerOption {
	return func(t *Tokenizer) { t.maxLen = n }
}

// WithStopwords replaces the default English stopword list.
func WithStopwords(words []string) TokenizerOption {
	return func(t *Tokenizer) {
		t.stopwords = make(map[string]struct{}, len(words))
		for _, w := range words {
			t.stopwords[strings.ToLower(w)] = struct{}{}
		}
	}
}

// WithDigits keeps purely numeric tokens (dropped by default).
func WithDigits(keep bool) TokenizerOption {
	return func(t *Tokenizer) { t.keepDigit = keep }
}

// NewTokenizer returns a tokenizer with the default English pipeline.
func NewTokenizer(opts ...TokenizerOption) *Tokenizer {
	t := &Tokenizer{
		minLen:    2,
		maxLen:    40,
		stopwords: defaultStopwords(),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Tokenize splits text into normalized tokens, applying the filters.
func (t *Tokenizer) Tokenize(text string) []string {
	return t.AppendTokens(nil, text)
}

// AppendTokens tokenizes text into dst and returns the extended slice —
// the allocation-free sibling of Tokenize. Word boundaries are scanned
// in place (no intermediate fields slice), so with enough capacity in
// dst and already-lowercase input the call performs zero allocations;
// tokens needing case folding still pay their strings.ToLower copy.
func (t *Tokenizer) AppendTokens(dst []string, text string) []string {
	start := -1
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			dst = t.appendToken(dst, text[start:i])
			start = -1
		}
	}
	if start >= 0 {
		dst = t.appendToken(dst, text[start:])
	}
	return dst
}

// appendToken normalizes and filters one raw field, appending survivors.
func (t *Tokenizer) appendToken(dst []string, f string) []string {
	tok := strings.ToLower(f)
	n := utf8.RuneCountInString(tok)
	if n < t.minLen || n > t.maxLen {
		return dst
	}
	if !t.keepDigit && isNumeric(tok) {
		return dst
	}
	if _, stop := t.stopwords[tok]; stop {
		return dst
	}
	return append(dst, tok)
}

// Counts tokenizes text and returns per-token occurrence counts.
func (t *Tokenizer) Counts(text string) map[string]int {
	counts := make(map[string]int)
	for _, tok := range t.Tokenize(text) {
		counts[tok]++
	}
	return counts
}

func isNumeric(s string) bool {
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(s) > 0
}
