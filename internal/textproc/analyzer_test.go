package textproc

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		err  bool
	}{
		{in: "standard", want: Spec{Name: "standard"}},
		{in: "english?min=3", want: Spec{Name: "english", Params: map[string]string{"min": "3"}}},
		{in: "x?b=2&a=1", want: Spec{Name: "x", Params: map[string]string{"a": "1", "b": "2"}}},
		{in: "x?stop=", want: Spec{Name: "x", Params: map[string]string{"stop": ""}}},
		{in: "", err: true},
		{in: "?min=3", err: true},
		{in: "x?", err: true},
		{in: "x?min", err: true},
		{in: "x?=3", err: true},
		{in: "x?min=3&min=4", err: true},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseSpec(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSpec(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSpecCanonicalString(t *testing.T) {
	// Parameters render sorted by key, so any parameter order
	// canonicalizes to the same comparable string.
	for _, in := range []string{"x?b=2&a=1&c=3", "x?c=3&a=1&b=2"} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.String(); got != "x?a=1&b=2&c=3" {
			t.Fatalf("canonical form of %q = %q", in, got)
		}
	}
	if got := (Spec{Name: "standard"}).String(); got != "standard" {
		t.Fatalf("bare spec renders %q", got)
	}
}

func TestCanonicalSpecValidates(t *testing.T) {
	if got, err := CanonicalSpec("english?digits=true&min=3"); err != nil || got != "english?digits=true&min=3" {
		t.Fatalf("CanonicalSpec = %q, %v", got, err)
	}
	for _, bad := range []string{"nope", "standard?bogus=1", "standard?min=0", "standard?digits=maybe", "whitespace?min=2"} {
		if got, err := CanonicalSpec(bad); err == nil {
			t.Errorf("CanonicalSpec(%q) = %q, want error", bad, got)
		}
	}
}

func TestAnalyzerNames(t *testing.T) {
	names := AnalyzerNames()
	want := []string{"english", "standard", "unicode-fold", "whitespace"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("built-in %q not registered (have %v)", w, names)
		}
	}
	if !sortedStrings(names) {
		t.Errorf("AnalyzerNames not sorted: %v", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// TestStandardParity pins the refactor's core contract: the "standard"
// pipeline is bit-identical to the historical NewTokenizer() path, and
// "english" to NewTokenizer() + StemAll.
func TestStandardParity(t *testing.T) {
	texts := []string{
		"The Quick, brown fox-jumps over 2 lazy dogs!",
		"Continuous top-k monitoring on document streams",
		"databases are persisting persistently: relational, graphs, streams",
		"Καλημέρα κόσμε — 世界",
		"",
	}
	tok := NewTokenizer()
	std := MustAnalyzer("standard")
	eng := MustAnalyzer("english")
	for _, text := range texts {
		if got, want := std.Analyze(text), tok.Tokenize(text); !reflect.DeepEqual(got, want) {
			t.Errorf("standard(%q) = %v, legacy = %v", text, got, want)
		}
		if got, want := eng.Analyze(text), StemAll(tok.Tokenize(text)); !reflect.DeepEqual(got, want) {
			t.Errorf("english(%q) = %v, legacy = %v", text, got, want)
		}
	}
}

func TestAnalyzerParams(t *testing.T) {
	a := MustAnalyzer("standard?digits=true&min=3&stop=quick,lazy")
	got := a.Analyze("The Quick brown ox jumps over 666 lazy dogs")
	// min=3 drops "ox"; digits=true keeps "666"; the stop parameter
	// replaces the default stopword list entirely, so quick/lazy drop
	// while the/over (default stopwords) survive.
	want := []string{"the", "brown", "jumps", "over", "666", "dogs"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Analyze = %v, want %v", got, want)
	}
	if a.Name() != "standard?digits=true&min=3&stop=quick,lazy" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestUnicodeFoldAnalyzer(t *testing.T) {
	a := MustAnalyzer("unicode-fold")
	// NFC (precomposed) and NFD (combining marks) spellings of the same
	// French words must produce identical terms.
	nfc := a.Analyze("Décès à l'hôpital: pneumopathie sévère")
	nfd := a.Analyze("Décès à l'hôpital: pneumopathie sévère")
	if !reflect.DeepEqual(nfc, nfd) {
		t.Fatalf("NFC %v != NFD %v", nfc, nfd)
	}
	want := []string{"deces", "hopital", "pneumopathie", "severe"}
	if !reflect.DeepEqual(nfc, want) {
		t.Fatalf("fold = %v, want %v", nfc, want)
	}
	// Uzbek Latin modifier letters fold away, so both spellings agree.
	if got := a.Analyze("oʻzbekcha matn"); !reflect.DeepEqual(got, a.Analyze("ozbekcha matn")) {
		t.Fatalf("modifier-letter spelling diverges: %v", got)
	}
	// No built-in stopword list: English stopwords survive unless
	// injected via the stop parameter.
	if got := a.Analyze("the stream"); !reflect.DeepEqual(got, []string{"the", "stream"}) {
		t.Fatalf("unexpected built-in stopwords: %v", got)
	}
	fr := MustAnalyzer("unicode-fold?stop=le,la,les")
	if got := fr.Analyze("le certificat la cause les décès"); !reflect.DeepEqual(got, []string{"certificat", "cause", "deces"}) {
		t.Fatalf("injected stopwords: %v", got)
	}
}

func TestWhitespaceAnalyzer(t *testing.T) {
	a := MustAnalyzer("whitespace")
	got := a.Analyze("  Pre-Tokenized\tTRACE tokens 42 ")
	// Verbatim fields: no case folding, no length or digit filtering.
	want := []string{"Pre-Tokenized", "TRACE", "tokens", "42"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("whitespace = %v, want %v", got, want)
	}
	if _, err := NewAnalyzer("whitespace?min=2"); err == nil {
		t.Fatal("whitespace accepted parameters")
	}
}

func TestNewAnalyzerUnknown(t *testing.T) {
	_, err := NewAnalyzer("klingon")
	if err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	if !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("error does not list registered pipelines: %v", err)
	}
}

func TestRegisterAnalyzer(t *testing.T) {
	RegisterAnalyzer("test-upper", func(params map[string]string) (Analyzer, error) {
		return NewChain("test-upper", []CharFilter{strings.ToUpper}, strings.Fields, nil), nil
	})
	a := MustAnalyzer("test-upper")
	if got := a.Analyze("ab cd"); !reflect.DeepEqual(got, []string{"AB", "CD"}) {
		t.Fatalf("custom analyzer = %v", got)
	}
}
