package corpus

import (
	"math"
	"math/rand"

	"repro/internal/textproc"
)

// Document is one stream element: a unit-normalized sparse vector plus
// the identifiers the monitor needs.
type Document struct {
	// ID is a monotonically increasing stream identifier.
	ID uint64
	// Vec is the unit-normalized tf-idf vector.
	Vec textproc.Vector
}

// Generator produces synthetic documents under a Model. It is
// deterministic for a given seed and not safe for concurrent use (each
// goroutine should own its Generator).
type Generator struct {
	model      Model
	rng        *rand.Rand
	background *rand.Zipf
	topicZipf  *rand.Zipf // rank distribution inside a topic
	perm       []uint32   // topic rank position → term ID
	vocab      *textproc.Vocabulary
	weighter   *textproc.Weighter
	nextID     uint64
}

// NewGenerator builds a generator. expectedDocs calibrates the preset
// document-frequency table used for idf (pass the approximate number
// of documents the run will stream; the default 1e6 is fine for
// benchmarks). It panics if the model is invalid — generator
// construction happens at setup time where a panic is a configuration
// error, not a runtime condition.
func NewGenerator(m Model, seed int64, expectedDocs uint64) *Generator {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if expectedDocs == 0 {
		expectedDocs = 1_000_000
	}
	rng := rand.New(rand.NewSource(seed))
	vocab := textproc.PresetVocabulary(m.VocabSize, m.expectedDF(expectedDocs), expectedDocs)
	g := &Generator{
		model:      m,
		rng:        rng,
		background: rand.NewZipf(rng, m.ZipfS, m.ZipfV, uint64(m.VocabSize-1)),
		topicZipf:  rand.NewZipf(rng, m.ZipfS, m.ZipfV, uint64(m.TopicWidth-1)),
		perm:       topicPermutation(m.VocabSize),
		vocab:      vocab,
		weighter:   textproc.NewWeighter(vocab, m.Scheme),
	}
	return g
}

// Vocab exposes the preset vocabulary (shared with workload builders).
func (g *Generator) Vocab() *textproc.Vocabulary { return g.vocab }

// Model returns the generator's model.
func (g *Generator) Model() Model { return g.model }

// SampleTerm draws one term from the background Zipf distribution —
// high-rank (low ID) terms are frequent, mirroring natural language.
func (g *Generator) SampleTerm() textproc.TermID {
	return textproc.TermID(g.background.Uint64())
}

// topicTerm maps a within-topic rank to a vocabulary term. Each topic
// owns a contiguous rank range of a fixed vocabulary permutation, so a
// topic's characteristic (low-rank) terms are scattered across the
// global frequency spectrum — globally rare yet frequent within their
// topic, like real subject vocabulary ("quark" in physics pages).
func (g *Generator) topicTerm(topic int, rank uint64) textproc.TermID {
	pos := (uint64(topic)*uint64(g.model.TopicWidth) + rank) % uint64(g.model.VocabSize)
	return textproc.TermID(g.perm[pos])
}

// docLength samples a log-normal unique-term count, clamped to the
// model's bounds.
func (g *Generator) docLength() int {
	ln := math.Log(g.model.DocLenMedian) + g.model.DocLenSigma*g.rng.NormFloat64()
	n := int(math.Round(math.Exp(ln)))
	if n < g.model.MinDocLen {
		n = g.model.MinDocLen
	}
	if n > g.model.MaxDocLen {
		n = g.model.MaxDocLen
	}
	return n
}

// SampleDocTerms returns the distinct terms of a synthetic document
// together with their term frequencies. The mixture of per-document
// topics and the global background induces realistic co-occurrence.
func (g *Generator) SampleDocTerms() map[textproc.TermID]float64 {
	n := g.docLength()
	// 1–3 topics per document, like a Wikipedia page's subject areas.
	nTopics := 1 + g.rng.Intn(3)
	topics := make([]int, nTopics)
	for i := range topics {
		topics[i] = g.rng.Intn(g.model.Topics)
	}
	counts := make(map[textproc.TermID]float64, n)
	for len(counts) < n {
		var t textproc.TermID
		if g.rng.Float64() < g.model.TopicMix {
			topic := topics[g.rng.Intn(nTopics)]
			t = g.topicTerm(topic, g.topicZipf.Uint64())
		} else {
			t = g.SampleTerm()
		}
		// Term frequency: 1 + geometric tail, so repeated terms exist
		// but sparsity dominates.
		tf := 1.0
		for g.rng.Float64() < 0.3 {
			tf++
		}
		if _, dup := counts[t]; !dup {
			counts[t] = tf
		}
	}
	return counts
}

// Next generates the next synthetic document.
func (g *Generator) Next() Document {
	counts := g.SampleDocTerms()
	vec := g.weighter.VectorFromCounts(counts)
	d := Document{ID: g.nextID, Vec: vec}
	g.nextID++
	return d
}

// Generate produces n documents.
func (g *Generator) Generate(n int) []Document {
	out := make([]Document, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
