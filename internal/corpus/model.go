// Package corpus synthesizes the document stream used by the paper's
// evaluation. The original study streams 7,012,610 real Wikipedia
// pages; that corpus is not redistributable here, so this package
// implements a statistical stand-in (documented in DESIGN.md §6) that
// reproduces the three corpus properties the algorithms are sensitive
// to:
//
//  1. term-frequency skew (Zipfian unigram distribution) — this drives
//     posting-list length imbalance in the query index;
//  2. document sparsity (log-normal unique-term counts) — this drives
//     how many posting lists a stream event touches;
//  3. term co-occurrence (topic mixture) — this drives the Connected
//     query workload and the clustering of hot lists.
//
// The package also loads real corpora from JSONL for users who have
// their own document streams.
package corpus

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/textproc"
)

// Model describes the synthetic corpus statistics.
type Model struct {
	// VocabSize is the number of distinct terms. Wikipedia-scale runs
	// use ~200k; scaled-down benchmarks use tens of thousands.
	VocabSize int
	// ZipfS is the Zipf skew parameter (must be > 1 for the stdlib
	// sampler). English unigram skew is close to 1.1.
	ZipfS float64
	// ZipfV is the Zipf offset parameter (≥ 1).
	ZipfV float64
	// Topics is the number of latent topics inducing co-occurrence.
	Topics int
	// TopicWidth is how many (contiguous, rank-spaced) vocabulary
	// terms each topic prefers.
	TopicWidth int
	// TopicMix is the probability that a term slot is drawn from the
	// document's topics rather than the background distribution.
	TopicMix float64
	// DocLenMedian is the median number of unique terms per document
	// (Wikipedia bodies post-stopword filtering are near 90).
	DocLenMedian float64
	// DocLenSigma is the log-normal shape parameter for unique-term
	// counts.
	DocLenSigma float64
	// MinDocLen / MaxDocLen clamp document lengths.
	MinDocLen, MaxDocLen int
	// Scheme selects the term-weighting scheme for document vectors.
	Scheme textproc.WeightScheme
}

// WikipediaModel returns the default model approximating the paper's
// Wikipedia stream at a configurable vocabulary size.
func WikipediaModel(vocabSize int) Model {
	topics := max(8, vocabSize/2000)
	return Model{
		VocabSize:    vocabSize,
		ZipfS:        1.2,
		ZipfV:        2,
		Topics:       topics,
		TopicWidth:   max(1, vocabSize/topics),
		TopicMix:     0.6,
		DocLenMedian: 90,
		DocLenSigma:  0.7,
		MinDocLen:    8,
		MaxDocLen:    1200,
		Scheme:       textproc.WeightLogTFIDF,
	}
}

// Validate reports the first structural problem with the model.
func (m Model) Validate() error {
	switch {
	case m.VocabSize < 2:
		return fmt.Errorf("corpus: VocabSize %d too small", m.VocabSize)
	case m.ZipfS <= 1:
		return fmt.Errorf("corpus: ZipfS must exceed 1, got %v", m.ZipfS)
	case m.ZipfV < 1:
		return fmt.Errorf("corpus: ZipfV must be ≥ 1, got %v", m.ZipfV)
	case m.Topics < 1:
		return fmt.Errorf("corpus: Topics must be ≥ 1, got %d", m.Topics)
	case m.TopicWidth < 1:
		return fmt.Errorf("corpus: TopicWidth must be ≥ 1, got %d", m.TopicWidth)
	case m.TopicMix < 0 || m.TopicMix > 1:
		return fmt.Errorf("corpus: TopicMix must be in [0,1], got %v", m.TopicMix)
	case m.DocLenMedian <= 0:
		return fmt.Errorf("corpus: DocLenMedian must be positive, got %v", m.DocLenMedian)
	case m.MinDocLen < 1 || m.MaxDocLen < m.MinDocLen:
		return fmt.Errorf("corpus: bad doc length clamp [%d,%d]", m.MinDocLen, m.MaxDocLen)
	}
	return nil
}

// topicPermutation returns the fixed pseudo-random permutation that
// scatters each topic's rank range across the global frequency
// spectrum. It depends only on the vocabulary size (not on a
// generator's seed) so documents, queries and df priors built from the
// same Model agree on topic composition.
func topicPermutation(vocabSize int) []uint32 {
	perm := make([]uint32, vocabSize)
	for i := range perm {
		perm[i] = uint32(i)
	}
	r := rand.New(rand.NewSource(0x70_91C5)) // arbitrary fixed seed
	r.Shuffle(vocabSize, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// TopicTerms returns the vocabulary terms topic t prefers, in the
// topic's internal rank order (most characteristic first) — the same
// mapping the document generator samples through, so queries built
// from these terms inherit the corpus' topical co-occurrence. The
// composition depends only on the model shape, never on a generator
// seed, so documents and queries from the same Model agree on it.
func (m Model) TopicTerms(t int) []textproc.TermID {
	perm := topicPermutation(m.VocabSize)
	out := make([]textproc.TermID, m.TopicWidth)
	for rank := range out {
		pos := (uint64(t%m.Topics)*uint64(m.TopicWidth) + uint64(rank)) % uint64(m.VocabSize)
		out[rank] = textproc.TermID(perm[pos])
	}
	return out
}

// zipfPMF returns the normalized generalized-Zipf pmf over n ranks.
func zipfPMF(s, v float64, n int) []float64 {
	p := make([]float64, n)
	var z float64
	for k := 0; k < n; k++ {
		p[k] = math.Pow(v+float64(k), -s)
		z += p[k]
	}
	for k := range p {
		p[k] /= z
	}
	return p
}

// expectedDF returns a document-frequency profile consistent with the
// model's term marginal distribution (background Zipf mixed with the
// topic component), used to preset the vocabulary so that tf-idf
// weights are stable from the first streamed document (the paper's
// setup computes idf over the whole Wikipedia dump up front).
func (m Model) expectedDF(docs uint64) []uint32 {
	background := zipfPMF(m.ZipfS, m.ZipfV, m.VocabSize)
	topical := zipfPMF(m.ZipfS, m.ZipfV, m.TopicWidth)
	perm := topicPermutation(m.VocabSize)

	// Marginal P(draw = id): background with prob 1-mix; topic slice
	// rank pmf with prob mix (topics chosen uniformly).
	marginal := make([]float64, m.VocabSize)
	for id := 0; id < m.VocabSize; id++ {
		marginal[id] = (1 - m.TopicMix) * background[id]
	}
	for pos := 0; pos < m.Topics*m.TopicWidth && pos < m.VocabSize; pos++ {
		id := perm[pos%m.VocabSize]
		rank := pos % m.TopicWidth
		marginal[id] += m.TopicMix * topical[rank] / float64(m.Topics)
	}

	df := make([]uint32, m.VocabSize)
	meanLen := m.DocLenMedian * math.Exp(m.DocLenSigma*m.DocLenSigma/2)
	for id := 0; id < m.VocabSize; id++ {
		// P(term in doc) ≈ 1 - (1-p)^len ≈ min(1, p·len).
		pin := math.Min(1, marginal[id]*meanLen)
		d := pin * float64(docs)
		if d < 1 {
			d = 1
		}
		if d > float64(docs) {
			d = float64(docs)
		}
		df[id] = uint32(d)
	}
	return df
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
