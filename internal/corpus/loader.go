package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/textproc"
)

// RawDoc is the JSONL wire format for real document streams: one JSON
// object per line. Only Text is required.
type RawDoc struct {
	ID    uint64 `json:"id"`
	Title string `json:"title,omitempty"`
	Text  string `json:"text"`
}

// Loader converts raw text documents into stream Documents using the
// shared analysis pipeline. It is the ingestion path a production
// deployment would use in place of the synthetic Generator.
type Loader struct {
	An       textproc.Analyzer
	Weighter *textproc.Weighter
	nextID   uint64
}

// NewLoader builds a loader over an existing vocabulary with the
// "standard" analysis pipeline, so queries and documents agree on term
// IDs. Use NewLoaderAnalyzer to load under a different pipeline.
func NewLoader(vocab *textproc.Vocabulary, scheme textproc.WeightScheme) *Loader {
	return NewLoaderAnalyzer(textproc.MustAnalyzer("standard"), vocab, scheme)
}

// NewLoaderAnalyzer builds a loader that analyzes raw text with an —
// which must be the same pipeline the consuming engine runs, or term
// IDs will not line up.
func NewLoaderAnalyzer(an textproc.Analyzer, vocab *textproc.Vocabulary, scheme textproc.WeightScheme) *Loader {
	return &Loader{
		An:       an,
		Weighter: textproc.NewWeighter(vocab, scheme),
	}
}

// FromText analyzes one raw text into a Document. Documents with no
// surviving tokens yield an empty vector (valid: they match nothing).
func (l *Loader) FromText(text string) Document {
	tokens := l.An.Analyze(text)
	vec := l.Weighter.DocumentVector(tokens)
	d := Document{ID: l.nextID, Vec: vec}
	l.nextID++
	return d
}

// LoadJSONL reads a JSONL stream of RawDocs and converts each line.
// Malformed lines abort with a line-numbered error; a production
// monitor must not silently skip stream input.
func (l *Loader) LoadJSONL(r io.Reader) ([]Document, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20) // Wikipedia pages exceed the default 64K line cap
	var docs []Document
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var raw RawDoc
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", line, err)
		}
		docs = append(docs, l.FromText(raw.Text))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: reading stream: %w", err)
	}
	return docs, nil
}
