package corpus

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/textproc"
)

func testModel() Model {
	m := WikipediaModel(5000)
	m.DocLenMedian = 40
	return m
}

func TestModelValidate(t *testing.T) {
	if err := WikipediaModel(10000).Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []Model{
		{VocabSize: 1},
		func() Model { m := WikipediaModel(100); m.ZipfS = 1; return m }(),
		func() Model { m := WikipediaModel(100); m.ZipfV = 0; return m }(),
		func() Model { m := WikipediaModel(100); m.Topics = 0; return m }(),
		func() Model { m := WikipediaModel(100); m.TopicMix = 1.5; return m }(),
		func() Model { m := WikipediaModel(100); m.DocLenMedian = 0; return m }(),
		func() Model { m := WikipediaModel(100); m.MinDocLen = 10; m.MaxDocLen = 5; return m }(),
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d passed validation", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(testModel(), 42, 1000).Generate(20)
	b := NewGenerator(testModel(), 42, 1000).Generate(20)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different corpora")
	}
	c := NewGenerator(testModel(), 43, 1000).Generate(20)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGeneratedDocumentsValid(t *testing.T) {
	g := NewGenerator(testModel(), 7, 1000)
	for i, d := range g.Generate(100) {
		if d.ID != uint64(i) {
			t.Fatalf("doc %d has ID %d", i, d.ID)
		}
		if err := d.Vec.Validate(); err != nil {
			t.Fatalf("doc %d invalid: %v", i, err)
		}
		if math.Abs(d.Vec.Norm()-1) > 1e-9 {
			t.Fatalf("doc %d norm = %v", i, d.Vec.Norm())
		}
		if len(d.Vec) < testModel().MinDocLen {
			t.Fatalf("doc %d has %d terms, below clamp", i, len(d.Vec))
		}
	}
}

func TestDocLengthDistribution(t *testing.T) {
	m := testModel()
	g := NewGenerator(m, 11, 1000)
	var lens []int
	for i := 0; i < 500; i++ {
		lens = append(lens, len(g.Next().Vec))
	}
	sort.Ints(lens)
	median := float64(lens[len(lens)/2])
	// Median unique-term count should be near the model's median.
	if median < m.DocLenMedian*0.6 || median > m.DocLenMedian*1.6 {
		t.Fatalf("median doc length = %v, model median %v", median, m.DocLenMedian)
	}
	if lens[0] < m.MinDocLen || lens[len(lens)-1] > m.MaxDocLen {
		t.Fatalf("lengths escape clamp: [%d, %d]", lens[0], lens[len(lens)-1])
	}
}

func TestTermFrequencySkew(t *testing.T) {
	// Background sampling must be Zipfian: the most frequent decile of
	// the vocabulary should dominate draws.
	g := NewGenerator(testModel(), 3, 1000)
	low := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if int(g.SampleTerm()) < testModel().VocabSize/10 {
			low++
		}
	}
	frac := float64(low) / draws
	if frac < 0.5 {
		t.Fatalf("top-decile terms drawn %.2f of the time; want skew > 0.5", frac)
	}
}

func TestCoOccurrenceFromTopics(t *testing.T) {
	// The property the Connected workload relies on: rare terms that
	// appear together in one document co-occur in *other* documents far
	// more often than independently drawn rare terms do. (Head terms
	// co-occur trivially under any Zipf model, so we exclude the top
	// decile and measure the topical tail.)
	m := testModel()
	m.TopicMix = 0.9
	g := NewGenerator(m, 5, 1000)
	docs := g.Generate(400)
	head := textproc.TermID(m.VocabSize / 10)

	// Inverted map: rare term → docs containing it.
	occ := make(map[textproc.TermID]map[int]struct{})
	for i, d := range docs {
		for _, tw := range d.Vec {
			if tw.Term < head {
				continue
			}
			s := occ[tw.Term]
			if s == nil {
				s = make(map[int]struct{})
				occ[tw.Term] = s
			}
			s[i] = struct{}{}
		}
	}
	joint := func(a, b textproc.TermID, excl int) int {
		n := 0
		for d := range occ[a] {
			if d == excl {
				continue
			}
			if _, ok := occ[b][d]; ok {
				n++
			}
		}
		return n
	}

	// Same-document rare pairs.
	var sameDoc, pairs int
	for i, d := range docs[:100] {
		var rare []textproc.TermID
		for _, tw := range d.Vec {
			if tw.Term >= head {
				rare = append(rare, tw.Term)
			}
		}
		for p := 0; p+1 < len(rare) && p < 6; p += 2 {
			sameDoc += joint(rare[p], rare[p+1], i)
			pairs++
		}
	}
	// Independent rare pairs drawn from the pooled rare vocabulary.
	var all []textproc.TermID
	for t := range occ {
		all = append(all, t)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var indep int
	for p := 0; p+1 < len(all) && p/7 < pairs; p += 7 {
		indep += joint(all[p], all[p+1], -1)
	}
	if pairs == 0 {
		t.Fatal("no rare pairs sampled")
	}
	if sameDoc <= indep {
		t.Fatalf("topical co-occurrence not above independent baseline: same-doc=%d independent=%d (pairs=%d)",
			sameDoc, indep, pairs)
	}
}

func countShared(a, b textproc.Vector) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Term < b[j].Term:
			i++
		case a[i].Term > b[j].Term:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func TestExpectedDFProfile(t *testing.T) {
	m := testModel()
	const docs = 100000
	df := m.expectedDF(docs)
	if len(df) != m.VocabSize {
		t.Fatalf("df size = %d", len(df))
	}
	var headSum, tailSum float64
	decile := m.VocabSize / 10
	for i, d := range df {
		if d < 1 || d > docs {
			t.Fatalf("df[%d] = %d out of [1, %d]", i, d, docs)
		}
		if i < decile {
			headSum += float64(d)
		}
		if i >= m.VocabSize-decile {
			tailSum += float64(d)
		}
	}
	// Background-frequent terms must dominate the tail even after the
	// topic component scatters probability mass.
	if headSum <= 2*tailSum {
		t.Fatalf("head df mass %.0f not dominating tail %.0f", headSum, tailSum)
	}
}

func TestNewGeneratorPanicsOnBadModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid model did not panic")
		}
	}()
	NewGenerator(Model{VocabSize: 1}, 1, 0)
}

func TestLoaderFromText(t *testing.T) {
	vocab := textproc.NewVocabulary()
	l := NewLoader(vocab, textproc.WeightLogTFIDF)
	d := l.FromText("Continuous top-k monitoring of document streams.")
	if len(d.Vec) == 0 {
		t.Fatal("loader produced empty vector for real text")
	}
	if err := d.Vec.Validate(); err != nil {
		t.Fatal(err)
	}
	d2 := l.FromText("")
	if d2.ID != 1 {
		t.Fatalf("loader ID sequence broken: %d", d2.ID)
	}
	if len(d2.Vec) != 0 {
		t.Fatal("empty text should give empty vector")
	}
}

// TestLoaderAnalyzer: the loader consumes the shared analyzer seam —
// a loader built over the english pipeline produces the stemmed terms
// the matching engine would, where the default (standard) loader keeps
// surface forms.
func TestLoaderAnalyzer(t *testing.T) {
	vocab := textproc.NewVocabulary()
	std := NewLoader(vocab, textproc.WeightLogTFIDF)
	eng := NewLoaderAnalyzer(textproc.MustAnalyzer("english"), vocab, textproc.WeightLogTFIDF)
	if std.An.Name() != "standard" || eng.An.Name() != "english" {
		t.Fatalf("loader analyzers: %q, %q", std.An.Name(), eng.An.Name())
	}
	a := std.FromText("markets rallying")
	b := eng.FromText("markets rallying")
	if len(a.Vec) != 2 || len(b.Vec) != 2 {
		t.Fatalf("vector sizes %d, %d", len(a.Vec), len(b.Vec))
	}
	// The stemmed terms ("market", "ralli") are new vocabulary entries,
	// so the two vectors must not share term IDs.
	ids := map[textproc.TermID]bool{}
	for _, e := range a.Vec {
		ids[e.Term] = true
	}
	for _, e := range b.Vec {
		if ids[e.Term] {
			t.Fatalf("stemmed and surface vectors share term %d", e.Term)
		}
	}
}

func TestLoadJSONL(t *testing.T) {
	input := `{"id":1,"title":"A","text":"stream processing of documents"}

{"id":2,"text":"top-k query monitoring"}`
	l := NewLoader(textproc.NewVocabulary(), textproc.WeightLogTFIDF)
	docs, err := l.LoadJSONL(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("loaded %d docs, want 2", len(docs))
	}
}

func TestLoadJSONLMalformed(t *testing.T) {
	l := NewLoader(textproc.NewVocabulary(), textproc.WeightLogTFIDF)
	_, err := l.LoadJSONL(strings.NewReader("{not json}"))
	if err == nil {
		t.Fatal("malformed line accepted")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

// TestTopicTerms: the model's topic composition is deterministic,
// seed-independent, sized by TopicWidth, and consistent with what the
// generator samples for documents of that topic.
func TestTopicTerms(t *testing.T) {
	m := WikipediaModel(2000)
	a, b := m.TopicTerms(3), m.TopicTerms(3)
	if len(a) != m.TopicWidth {
		t.Fatalf("topic term count = %d, want %d", len(a), m.TopicWidth)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopicTerms not deterministic")
		}
		if int(a[i]) >= m.VocabSize {
			t.Fatalf("term %d outside vocabulary", a[i])
		}
	}
	// Distinct topics prefer distinct vocabulary (no wrap at this
	// shape).
	seen := map[uint32]int{}
	for topic := 0; topic < m.Topics; topic++ {
		for _, term := range m.TopicTerms(topic) {
			seen[uint32(term)]++
		}
	}
	for term, n := range seen {
		if n != 1 {
			t.Fatalf("term %d appears in %d topics", term, n)
		}
	}
	// The generator's topicTerm mapping agrees: rank r of topic t is
	// TopicTerms(t)[r].
	g := NewGenerator(m, 1, 0)
	for _, tc := range []struct{ topic, rank int }{{0, 0}, {3, 7}, {m.Topics - 1, m.TopicWidth - 1}} {
		if got, want := g.topicTerm(tc.topic, uint64(tc.rank)), m.TopicTerms(tc.topic)[tc.rank]; got != want {
			t.Fatalf("topic %d rank %d: generator %d, TopicTerms %d", tc.topic, tc.rank, got, want)
		}
	}
}
