package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

const (
	// segMagic opens every segment file; segHeaderLen is the magic plus
	// the u64le first-LSN field.
	segMagic     = "ctkwal01"
	segHeaderLen = len(segMagic) + 8

	frameHeaderLen = 8 // u32le crc + u32le payload length

	// maxPayload bounds one frame: a length field beyond it is
	// corruption (and stops a flipped bit from driving a huge read).
	maxPayload = 1 << 26

	segPrefix = "wal-"
	segSuffix = ".seg"

	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 8 << 20
)

// ErrClosed reports an operation on a closed log.
var ErrClosed = fmt.Errorf("wal: log is closed")

// Options parameterizes a Log.
type Options struct {
	// SegmentBytes is the rotation threshold: a segment that would grow
	// past it is sealed (flushed and fsynced) and a fresh one started.
	// Zero uses DefaultSegmentBytes.
	SegmentBytes int64
}

// segment is one on-disk segment's bookkeeping.
type segment struct {
	path  string
	first uint64 // LSN of the segment's first record
	count uint64 // valid frames
	bytes int64  // header + valid frames
}

func (s segment) end() uint64 { return s.first + s.count }

// Log is an append-only record log over a directory of segments. All
// methods are safe for concurrent use; append order is the replay
// order, so callers that need appends ordered against their own state
// mutations must serialize those externally (the engine appends under
// its write lock).
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options

	segs []segment // ascending; the last one is active
	f    *os.File  // active segment
	w    *bufio.Writer

	next        uint64 // LSN of the next appended record
	forceRotate bool   // next append must open a fresh segment
	closed      bool

	scratch []byte // payload encode buffer, reused across appends

	ins Instruments // optional metrics; zero value records nothing
}

// Instruments is the log's optional metric set (see SetInstruments).
// The nil-safe obs handles make the zero value inert.
type Instruments struct {
	// Appends counts records appended (whether or not yet synced).
	Appends *obs.Counter
	// SyncSeconds observes each Sync call's duration — the flush +
	// fsync latency a publish pays under the "always" policy.
	SyncSeconds *obs.Histogram
	// Rotations counts segment rotations.
	Rotations *obs.Counter
}

// SetInstruments attaches metrics to the log. Call before concurrent
// use settles in (the engine wires it at Open time); the zero value
// detaches.
func (l *Log) SetInstruments(ins Instruments) {
	l.mu.Lock()
	l.ins = ins
	l.mu.Unlock()
}

// Stats summarizes the log's on-disk footprint.
type Stats struct {
	// Segments and Bytes count the live segment files and their sizes.
	Segments int
	Bytes    int64
	// NextLSN is the LSN the next appended record will get — equally,
	// the count of records ever acknowledged into this log's LSN space
	// (snapshots record it as their drain point).
	NextLSN uint64
}

// Open opens (or creates) the log in dir, repairing crash artifacts:
// the torn tail of the last segment — a partially written frame, or a
// partially written segment header — is truncated away, and any
// segments after a torn frame are discarded (they cannot contain
// acknowledged records: frames are appended strictly in order).
//
// floor is the LSN the caller already has durable elsewhere (the drain
// point of the snapshot it restored); an empty or fully truncated log
// resumes numbering there instead of at zero, so LSN accounting stays
// monotone across snapshot/truncate cycles.
func Open(dir string, floor uint64, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if len(l.segs) == 0 {
		l.next = floor
		if err := l.openSegment(l.next); err != nil {
			return nil, err
		}
	} else {
		l.next = l.segs[len(l.segs)-1].end()
		if floor > l.next {
			// The snapshot is ahead of every surviving record (all
			// covered segments were truncated). Resume numbering at the
			// floor in a fresh segment; appending into the old one would
			// corrupt its positional LSNs.
			l.next = floor
			l.forceRotate = true
		}
		last := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: reopen %s: %w", last.path, err)
		}
		l.f = f
		l.w = bufio.NewWriter(f)
	}
	return l, nil
}

// scan inventories dir's segments in LSN order, validating every frame
// and repairing the torn tail: the file containing the first invalid
// frame is truncated at the last valid frame boundary and every later
// segment is removed.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
		if err != nil {
			return fmt.Errorf("wal: segment name %q: %w", name, err)
		}
		segs = append(segs, segment{path: filepath.Join(l.dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	for i := range segs {
		seg := &segs[i]
		count, valid, torn, err := scanSegment(seg.path, seg.first)
		if err != nil {
			if i == len(segs)-1 && count == 0 && valid == 0 {
				// A header that never finished writing: the segment holds
				// nothing acknowledged. Drop it.
				if rerr := os.Remove(seg.path); rerr != nil {
					return fmt.Errorf("wal: drop torn segment: %w", rerr)
				}
				segs = segs[:i]
				break
			}
			return err
		}
		seg.count, seg.bytes = uint64(count), valid
		if i > 0 && seg.first < segs[i-1].end() {
			return fmt.Errorf("wal: segment %s overlaps its predecessor (first %d < end %d)",
				seg.path, seg.first, segs[i-1].end())
		}
		if torn {
			if err := os.Truncate(seg.path, valid); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", seg.path, err)
			}
			for _, later := range segs[i+1:] {
				if err := os.Remove(later.path); err != nil {
					return fmt.Errorf("wal: drop segment after torn tail: %w", err)
				}
			}
			segs = segs[:i+1]
			break
		}
	}
	l.segs = segs
	return nil
}

// scanSegment validates one segment file: frame count, the byte length
// of the valid prefix, and whether a torn (checksum-failing, truncated
// or undecodable) tail follows it. A short or mismatched header is
// reported as an error with count 0 — the caller decides whether that
// is a crash artifact (last segment, nothing written) or corruption.
func scanSegment(path string, wantFirst uint64) (count int, valid int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		return 0, 0, false, fmt.Errorf("wal: %s: bad segment header", path)
	}
	if first := binary.LittleEndian.Uint64(data[len(segMagic):segHeaderLen]); first != wantFirst {
		return 0, 0, false, fmt.Errorf("wal: %s: header LSN %d does not match name", path, first)
	}
	n, validLen, torn := scanFrames(data[segHeaderLen:], nil)
	return n, int64(segHeaderLen) + int64(validLen), torn, nil
}

// scanFrames walks frames in data, calling fn (when non-nil) with each
// valid payload, and returns the count of valid frames, the byte
// length of the valid prefix, and whether invalid bytes follow it.
// Frame validity is checksum + record decode: a CRC-clean frame whose
// payload does not decode is treated as torn too, so replay never has
// to interpret a record Open did not vouch for.
func scanFrames(data []byte, fn func(payload []byte)) (count, valid int, torn bool) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return count, off, false
		}
		if len(rest) < frameHeaderLen {
			return count, off, true
		}
		sum := binary.LittleEndian.Uint32(rest[0:4])
		size := binary.LittleEndian.Uint32(rest[4:8])
		if size == 0 || size > maxPayload || len(rest) < frameHeaderLen+int(size) {
			return count, off, true
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(size)]
		if crc32.ChecksumIEEE(payload) != sum {
			return count, off, true
		}
		if _, err := DecodeRec(payload); err != nil {
			return count, off, true
		}
		if fn != nil {
			fn(payload)
		}
		count++
		off += frameHeaderLen + int(size)
	}
}

// openSegment creates a fresh segment whose first record will be LSN
// first, writes its header durably, and makes it the active segment.
// The directory entry is fsynced so the new file survives a crash.
func (l *Log) openSegment(first uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, first)
	if _, err := f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segs = append(l.segs, segment{path: path, first: first, bytes: int64(segHeaderLen)})
	return nil
}

// sealActive flushes, fsyncs and closes the active segment.
func (l *Log) sealActive() error {
	if l.f == nil {
		return nil
	}
	err := l.w.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f, l.w = nil, nil
	if err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	return nil
}

// Append logs one record and returns its LSN. The record is in the OS
// pipeline but not yet durable — call Sync (or run the "always" fsync
// policy, which does) to make it so. Rotation to a fresh segment
// happens transparently when the active one is full.
func (l *Log) Append(r Rec) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	l.scratch = AppendRec(l.scratch[:0], r)
	payload := l.scratch
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds frame limit", len(payload))
	}
	active := &l.segs[len(l.segs)-1]
	frameLen := int64(frameHeaderLen + len(payload))
	if l.forceRotate || (active.count > 0 && active.bytes+frameLen > l.opts.SegmentBytes) {
		if err := l.sealActive(); err != nil {
			return 0, err
		}
		if err := l.openSegment(l.next); err != nil {
			return 0, err
		}
		l.forceRotate = false
		l.ins.Rotations.Inc()
		active = &l.segs[len(l.segs)-1]
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	lsn := l.next
	l.next++
	active.count++
	active.bytes += frameLen
	l.ins.Appends.Inc()
	return lsn, nil
}

// Sync flushes buffered appends and fsyncs the active segment. Once it
// returns, every record appended before the call is durable (a sync
// covers the whole file, so it also covers records appended by other
// goroutines before this one's).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return nil
	}
	var t0 time.Time
	if l.ins.SyncSeconds != nil {
		t0 = time.Now()
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if l.ins.SyncSeconds != nil {
		l.ins.SyncSeconds.ObserveSince(t0)
	}
	return nil
}

// NextLSN returns the LSN the next appended record will receive. A
// snapshot captured while mutations are externally paused (the
// engine's lock) records it as the drain point: every record below it
// is reflected in the snapshot, every record at or above it is not.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Stats reports the log's current footprint.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{NextLSN: l.next, Segments: len(l.segs)}
	for _, s := range l.segs {
		st.Bytes += s.bytes
	}
	return st
}

// Replay streams every record with LSN ≥ from, in order, to apply.
// Call it after Open (which repaired torn tails) and before the first
// Append; apply errors abort the replay. Returns the number of records
// applied.
func (l *Log) Replay(from uint64, apply func(lsn uint64, r Rec) error) (int, error) {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			l.mu.Unlock()
			return 0, fmt.Errorf("wal: replay flush: %w", err)
		}
	}
	l.mu.Unlock()

	applied := 0
	for _, seg := range segs {
		if seg.end() <= from {
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return applied, fmt.Errorf("wal: replay: %w", err)
		}
		lsn := seg.first
		var applyErr error
		n, _, torn := scanFrames(data[segHeaderLen:], func(payload []byte) {
			if applyErr != nil {
				return
			}
			cur := lsn
			lsn++
			if cur < from {
				return
			}
			rec, err := DecodeRec(payload)
			if err != nil {
				applyErr = err
				return
			}
			if err := apply(cur, rec); err != nil {
				applyErr = fmt.Errorf("wal: replay record %d: %w", cur, err)
				return
			}
			applied++
		})
		if applyErr != nil {
			return applied, applyErr
		}
		if torn || uint64(n) != seg.count {
			return applied, fmt.Errorf("wal: replay: segment %s changed underfoot", seg.path)
		}
	}
	return applied, nil
}

// TruncateBefore removes segments every record of which has LSN < lsn
// (they are fully superseded by a durable snapshot whose drain point
// is lsn). The active segment is never removed. Returns the number of
// segments deleted.
func (l *Log) TruncateBefore(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.segs) > 1 && l.segs[0].end() <= lsn {
		if err := os.Remove(l.segs[0].path); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Close flushes, fsyncs and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.sealActive()
}

// syncDir fsyncs a directory so entry creation/removal is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
