package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeRec drives the record decoder with arbitrary payloads. Two
// properties: it never panics or over-allocates on garbage, and any
// payload it accepts re-encodes to the identical bytes (the codec is
// canonical, so accept → re-encode → decode is a fixed point).
func FuzzDecodeRec(f *testing.F) {
	seeds := []Rec{
		{Op: OpPublish, Time: 1.25, Texts: []string{"alpha beta gamma"}},
		{Op: OpBatch, Time: 2, Texts: []string{"a", "", "long document text here"}},
		{Op: OpBatch, Time: 0, Texts: []string{}},
		{Op: OpRegister, Query: 123, K: 10, Keywords: "storm surge coast"},
		{Op: OpUnregister, Query: 4},
	}
	for _, r := range seeds {
		f.Add(AppendRec(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(OpBatch), 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeRec(payload)
		if err != nil {
			return
		}
		re := AppendRec(nil, r)
		if !bytes.Equal(re, payload) {
			t.Fatalf("decode(%x) = %+v, but re-encodes to %x", payload, r, re)
		}
		r2, err := DecodeRec(re)
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v", err)
		}
		// Stability is judged in byte space, not struct space: a NaN
		// Time round-trips bit-exactly but would fail DeepEqual.
		if re2 := AppendRec(nil, r2); !bytes.Equal(re2, re) {
			t.Fatalf("decode not stable: %x re-encodes to %x", re, re2)
		}
	})
}

// FuzzTornTail appends a fuzzed byte tail to a valid segment and
// checks Open's repair: it must recover exactly the records appended
// before the tail (or, if the tail happens to extend the log with
// frames that fully validate, a superset) and leave the directory in a
// state a second Open reads identically — replay stops cleanly at the
// last valid record, never errors, never panics.
func FuzzTornTail(f *testing.F) {
	f.Add([]byte("garbage tail"))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{})
	// A tail that is itself a valid frame: CRC + len + payload.
	valid := AppendRec(nil, Rec{Op: OpUnregister, Query: 9})
	frame := binary.LittleEndian.AppendUint32(nil, crc32.ChecksumIEEE(valid))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(valid)))
	f.Add(append(frame, valid...))
	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		l, err := Open(dir, 0, Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		const base = 3
		for i := 0; i < base; i++ {
			if _, err := l.Append(Rec{Op: OpPublish, Time: float64(i), Texts: []string{"doc"}}); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
		if len(segs) != 1 {
			t.Fatalf("expected 1 segment, got %d", len(segs))
		}
		sf, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sf.Write(tail); err != nil {
			t.Fatal(err)
		}
		sf.Close()

		l, err = Open(dir, 0, Options{})
		if err != nil {
			t.Fatalf("Open after tear: %v", err)
		}
		next := l.NextLSN()
		if next < base {
			t.Fatalf("repair lost acknowledged records: NextLSN %d < %d", next, base)
		}
		var lsns []uint64
		n, err := l.Replay(0, func(lsn uint64, r Rec) error {
			lsns = append(lsns, lsn)
			return nil
		})
		if err != nil {
			t.Fatalf("Replay after repair: %v", err)
		}
		if uint64(n) != next {
			t.Fatalf("replayed %d records, NextLSN %d", n, next)
		}
		for i, lsn := range lsns {
			if lsn != uint64(i) {
				t.Fatalf("replay LSN %d at index %d", lsn, i)
			}
		}
		l.Close()

		// Repair is idempotent: a second open sees the same log.
		l, err = Open(dir, 0, Options{})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if l.NextLSN() != next {
			t.Fatalf("second open NextLSN %d, first %d", l.NextLSN(), next)
		}
		l.Close()
	})
}
