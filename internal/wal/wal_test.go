package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func recPublish(t float64, text string) Rec {
	return Rec{Op: OpPublish, Time: t, Texts: []string{text}}
}

func openT(t *testing.T, dir string, floor uint64, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, floor, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendT(t *testing.T, l *Log, r Rec) uint64 {
	t.Helper()
	lsn, err := l.Append(r)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return lsn
}

func collect(t *testing.T, l *Log, from uint64) (lsns []uint64, recs []Rec) {
	t.Helper()
	n, err := l.Replay(from, func(lsn uint64, r Rec) error {
		lsns = append(lsns, lsn)
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(recs) {
		t.Fatalf("Replay reported %d records, delivered %d", n, len(recs))
	}
	return lsns, recs
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	want := []Rec{
		recPublish(1.5, "alpha beta"),
		{Op: OpBatch, Time: 2.5, Texts: []string{"gamma", "delta epsilon"}},
		{Op: OpRegister, Query: 7, K: 3, Keywords: "alpha gamma"},
		{Op: OpUnregister, Query: 7},
		{Op: OpBatch, Time: 3.0, Texts: nil},
	}
	l := openT(t, dir, 0, Options{})
	for i, r := range want {
		if lsn := appendT(t, l, r); lsn != uint64(i) {
			t.Fatalf("record %d got LSN %d", i, lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l = openT(t, dir, 0, Options{})
	defer l.Close()
	if got := l.NextLSN(); got != uint64(len(want)) {
		t.Fatalf("NextLSN after reopen = %d, want %d", got, len(want))
	}
	lsns, recs := collect(t, l, 0)
	for i, r := range recs {
		if lsns[i] != uint64(i) {
			t.Errorf("replayed LSN %d at index %d", lsns[i], i)
		}
		w := want[i]
		if w.Op == OpBatch && w.Texts == nil {
			w.Texts = []string{}
		}
		if !reflect.DeepEqual(r, w) {
			t.Errorf("record %d = %+v, want %+v", i, r, w)
		}
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}

	// Appending after reopen continues the LSN sequence.
	if lsn := appendT(t, l, recPublish(4, "zeta")); lsn != uint64(len(want)) {
		t.Fatalf("post-reopen append LSN = %d, want %d", lsn, len(want))
	}
}

func TestReplayFromOffset(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{})
	defer l.Close()
	for i := 0; i < 10; i++ {
		appendT(t, l, recPublish(float64(i), "doc"))
	}
	lsns, _ := collect(t, l, 6)
	if len(lsns) != 4 || lsns[0] != 6 || lsns[3] != 9 {
		t.Fatalf("Replay(6) LSNs = %v, want [6 7 8 9]", lsns)
	}
	if lsns, _ := collect(t, l, 10); len(lsns) != 0 {
		t.Fatalf("Replay(next) delivered %v, want none", lsns)
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record after the first in a segment rotates.
	l := openT(t, dir, 0, Options{SegmentBytes: int64(segHeaderLen) + 16})
	for i := 0; i < 6; i++ {
		appendT(t, l, recPublish(float64(i), "0123456789"))
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce ≥3 segments, got %d", st.Segments)
	}
	if st.NextLSN != 6 {
		t.Fatalf("NextLSN = %d, want 6", st.NextLSN)
	}

	// Everything below 4 is superseded; the active segment survives.
	removed, err := l.TruncateBefore(4)
	if err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	if removed == 0 {
		t.Fatal("TruncateBefore removed nothing")
	}
	lsns, _ := collect(t, l, 4)
	if len(lsns) != 2 || lsns[0] != 4 {
		t.Fatalf("post-truncate Replay(4) = %v, want [4 5]", lsns)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen after truncation keeps numbering.
	l = openT(t, dir, 0, Options{SegmentBytes: int64(segHeaderLen) + 16})
	defer l.Close()
	if got := l.NextLSN(); got != 6 {
		t.Fatalf("NextLSN after truncating reopen = %d, want 6", got)
	}
}

func TestFloorOnEmptyAndAheadOfTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 42, Options{})
	if lsn := appendT(t, l, recPublish(1, "a")); lsn != 42 {
		t.Fatalf("first LSN with floor 42 = %d", lsn)
	}
	l.Close()

	// Floor beyond the surviving tail: fresh segment at the floor.
	l = openT(t, dir, 100, Options{})
	defer l.Close()
	if got := l.NextLSN(); got != 100 {
		t.Fatalf("NextLSN with floor 100 = %d", got)
	}
	if lsn := appendT(t, l, recPublish(2, "b")); lsn != 100 {
		t.Fatalf("append with floor 100 got LSN %d", lsn)
	}
	// The gap [43,100) is fine: replay from 100 sees only the new record.
	lsns, _ := collect(t, l, 100)
	if len(lsns) != 1 || lsns[0] != 100 {
		t.Fatalf("Replay(100) = %v", lsns)
	}
}

func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	return names[len(names)-1]
}

func TestTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail []byte
	}{
		{"garbage", []byte("not a frame at all .............")},
		{"short-header", []byte{0x01, 0x02, 0x03}},
		{"zero-length-frame", []byte{0, 0, 0, 0, 0, 0, 0, 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := openT(t, dir, 0, Options{})
			for i := 0; i < 3; i++ {
				appendT(t, l, recPublish(float64(i), "doc"))
			}
			l.Close()

			seg := lastSegment(t, dir)
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l = openT(t, dir, 0, Options{})
			defer l.Close()
			if got := l.NextLSN(); got != 3 {
				t.Fatalf("NextLSN after torn-tail repair = %d, want 3", got)
			}
			lsns, _ := collect(t, l, 0)
			if len(lsns) != 3 {
				t.Fatalf("replay after repair delivered %d records, want 3", len(lsns))
			}
			// The torn bytes are gone from disk, so a second reopen is clean.
			if fi, err := os.Stat(seg); err == nil {
				data, _ := os.ReadFile(seg)
				if n, _, torn := scanFrames(data[segHeaderLen:], nil); torn || n != 3 {
					t.Fatalf("segment still torn after repair (n=%d torn=%v size=%d)", n, torn, fi.Size())
				}
			}
		})
	}
}

func TestTornMidFrameTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{})
	for i := 0; i < 3; i++ {
		appendT(t, l, recPublish(float64(i), strings.Repeat("x", 50)))
	}
	l.Close()

	// Chop the last frame in half: a mid-append crash.
	seg := lastSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-20); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, 0, Options{})
	defer l.Close()
	if got := l.NextLSN(); got != 2 {
		t.Fatalf("NextLSN after mid-frame tear = %d, want 2", got)
	}
	lsns, _ := collect(t, l, 0)
	if len(lsns) != 2 {
		t.Fatalf("replay delivered %d records, want 2", len(lsns))
	}
	// New appends land at the repaired position.
	if lsn := appendT(t, l, recPublish(9, "resumed")); lsn != 2 {
		t.Fatalf("post-repair append LSN = %d, want 2", lsn)
	}
}

func TestTornTailDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{SegmentBytes: int64(segHeaderLen) + 16})
	for i := 0; i < 4; i++ {
		appendT(t, l, recPublish(float64(i), "0123456789"))
	}
	if l.Stats().Segments < 2 {
		t.Fatal("test needs multiple segments")
	}
	l.Close()

	// Corrupt a frame in the FIRST segment: everything after it —
	// including whole later segments — must be discarded on open.
	names, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, 0, Options{})
	defer l.Close()
	next := l.NextLSN()
	if next >= 4 {
		t.Fatalf("NextLSN %d not reduced by cascading repair", next)
	}
	lsns, _ := collect(t, l, 0)
	if uint64(len(lsns)) != next {
		t.Fatalf("replay delivered %d records, NextLSN %d", len(lsns), next)
	}
	if got := l.Stats().Segments; got != 1 {
		t.Fatalf("later segments not dropped: %d remain", got)
	}
}

func TestTornSegmentHeaderDropped(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{})
	appendT(t, l, recPublish(1, "kept"))
	l.Close()

	// Simulate a crash during openSegment: a later segment whose header
	// never finished writing.
	half := filepath.Join(dir, segPrefix+"0000000000000001"+segSuffix)
	if err := os.WriteFile(half, []byte(segMagic[:4]), 0o644); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, 0, Options{})
	defer l.Close()
	if got := l.NextLSN(); got != 1 {
		t.Fatalf("NextLSN = %d, want 1", got)
	}
	if _, err := os.Stat(half); !os.IsNotExist(err) {
		t.Fatalf("torn-header segment not removed (err %v)", err)
	}
}

func TestSyncAndClosedErrors(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{})
	appendT(t, l, recPublish(1, "a"))
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(recPublish(2, "b")); err != ErrClosed {
		t.Fatalf("Append on closed log: %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync on closed log: %v", err)
	}
	if _, err := l.TruncateBefore(1); err != ErrClosed {
		t.Fatalf("TruncateBefore on closed log: %v", err)
	}
}

func TestRecordCodecRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"unknown-op":       {0xee, 1, 2, 3},
		"publish-short":    {byte(OpPublish), 1, 2, 3},
		"register-no-kw":   {byte(OpRegister), 7},
		"trailing-bytes":   append(AppendRec(nil, Rec{Op: OpUnregister, Query: 3}), 0x00),
		"batch-count-lies": {byte(OpBatch), 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0x3f},
		"string-len-lies":  {byte(OpPublish), 0, 0, 0, 0, 0, 0, 0, 0, 0x20, 'h', 'i'},
	}
	for name, payload := range cases {
		if _, err := DecodeRec(payload); err == nil {
			t.Errorf("%s: decode accepted %x", name, payload)
		}
	}
}
