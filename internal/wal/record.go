// Package wal is the engine's write-ahead log: an append-only,
// checksummed, segment-rotated record of the text-level mutations —
// publications and query churn — that the in-memory snapshot formats
// do not cover between saves. Replaying the log over the most recent
// snapshot reconstructs the engine bit-identically, because the engine
// is deterministic in its acknowledged operation order.
//
// Durability contract: a record is durable once it has been Appended
// and a Sync has completed afterwards (the fsync "always" policy syncs
// per append; "interval" amortizes syncs on a timer and bounds loss to
// the interval). A crash can leave a torn tail — a partially written
// frame — which Open detects by checksum and truncates away; the torn
// record was by construction never acknowledged as durable.
//
// On-disk layout: segments named "wal-%016x.seg" (the hex value is the
// LSN of the segment's first record) containing a 16-byte header
// (magic + first LSN) followed by frames:
//
//	u32le CRC32(payload) | u32le len(payload) | payload
//
// Record LSNs are positional — the segment header's first LSN plus the
// frame's index — so frames carry no redundant sequence field and a
// segment is valid iff every frame checksums and decodes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Op discriminates the record types.
type Op byte

// The record types: one per acknowledged text-level mutation.
const (
	// OpPublish is a single-document publication (Time, Texts[0]).
	OpPublish Op = 1
	// OpBatch is a batch publication sharing one arrival time.
	OpBatch Op = 2
	// OpRegister is a query registration (Keywords, K, and the query ID
	// the engine assigned — replay verifies it gets the same one).
	OpRegister Op = 3
	// OpUnregister is a query removal (Query).
	OpUnregister Op = 4
)

// Rec is one logged mutation. Only the fields of its Op are
// meaningful.
type Rec struct {
	Op Op
	// Time is the stream timestamp of a publication.
	Time float64
	// Texts carries the document text(s): exactly one for OpPublish,
	// one per batch member for OpBatch.
	Texts []string
	// Keywords and K are a registration's definition; Query is the
	// engine-assigned ID (OpRegister) or the removal target
	// (OpUnregister).
	Keywords string
	K        int
	Query    uint32
}

// Decode sanity bounds: lengths beyond these are corruption, not data
// (they would otherwise let a flipped length byte drive a giant
// allocation before the checksum could catch it — the checksum is
// frame-level, so the payload decoder must be self-defending too).
const (
	maxBatchDocs = 1 << 20
	maxK         = 1 << 20
)

// ErrCorrupt reports a payload that does not decode as a record.
var ErrCorrupt = errors.New("wal: corrupt record")

// AppendRec appends r's payload encoding to dst and returns the
// extended slice. The payload excludes the frame header (checksum and
// length), which Log.Append adds.
func AppendRec(dst []byte, r Rec) []byte {
	dst = append(dst, byte(r.Op))
	switch r.Op {
	case OpPublish:
		dst = appendFloat(dst, r.Time)
		dst = appendString(dst, r.Texts[0])
	case OpBatch:
		dst = appendFloat(dst, r.Time)
		dst = binary.AppendUvarint(dst, uint64(len(r.Texts)))
		for _, t := range r.Texts {
			dst = appendString(dst, t)
		}
	case OpRegister:
		dst = binary.AppendUvarint(dst, uint64(r.Query))
		dst = binary.AppendUvarint(dst, uint64(r.K))
		dst = appendString(dst, r.Keywords)
	case OpUnregister:
		dst = binary.AppendUvarint(dst, uint64(r.Query))
	default:
		panic(fmt.Sprintf("wal: encode of unknown op %d", r.Op))
	}
	return dst
}

// DecodeRec decodes one record payload. Every error wraps ErrCorrupt;
// trailing bytes after a well-formed record are corruption too (the
// frame length delimits the payload exactly).
func DecodeRec(b []byte) (Rec, error) {
	var r Rec
	if len(b) == 0 {
		return r, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	r.Op = Op(b[0])
	b = b[1:]
	var err error
	switch r.Op {
	case OpPublish:
		var text string
		if r.Time, b, err = takeFloat(b); err == nil {
			text, b, err = takeString(b)
			r.Texts = []string{text}
		}
	case OpBatch:
		var n uint64
		if r.Time, b, err = takeFloat(b); err == nil {
			n, b, err = takeUvarint(b, maxBatchDocs)
		}
		if err == nil {
			r.Texts = make([]string, 0, min(n, uint64(len(b))))
			for i := uint64(0); i < n && err == nil; i++ {
				var t string
				t, b, err = takeString(b)
				r.Texts = append(r.Texts, t)
			}
		}
	case OpRegister:
		var q, k uint64
		if q, b, err = takeUvarint(b, math.MaxUint32); err == nil {
			k, b, err = takeUvarint(b, maxK)
		}
		if err == nil {
			r.Query, r.K = uint32(q), int(k)
			r.Keywords, b, err = takeString(b)
		}
	case OpUnregister:
		var q uint64
		q, b, err = takeUvarint(b, math.MaxUint32)
		r.Query = uint32(q)
	default:
		return r, fmt.Errorf("%w: unknown op %d", ErrCorrupt, r.Op)
	}
	if err != nil {
		return r, err
	}
	if len(b) != 0 {
		return r, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	return r, nil
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func takeFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, b, fmt.Errorf("%w: truncated float", ErrCorrupt)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

func takeUvarint(b []byte, limit uint64) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	// Only canonical (minimal-length) encodings are accepted: the
	// encoder never emits a redundant trailing zero byte, so one marks
	// corruption — and every accepted record must re-encode to the
	// exact bytes decoded, a property the fuzzer holds us to.
	if n > 1 && b[n-1] == 0 {
		return 0, b, fmt.Errorf("%w: non-canonical uvarint", ErrCorrupt)
	}
	if v > limit {
		return 0, b, fmt.Errorf("%w: value %d exceeds limit %d", ErrCorrupt, v, limit)
	}
	return v, b[n:], nil
}

func takeString(b []byte) (string, []byte, error) {
	n, b, err := takeUvarint(b, uint64(len(b)))
	if err != nil {
		return "", b, err
	}
	if uint64(len(b)) < n {
		return "", b, fmt.Errorf("%w: truncated string", ErrCorrupt)
	}
	return string(b[:n]), b[n:], nil
}
