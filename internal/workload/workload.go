// Package workload generates the continuous-query workloads of the
// paper's evaluation. The paper experiments with "two synthetic query
// workloads, Connected and Uniform, exhibiting different word
// co-occurrence frequencies":
//
//   - Uniform draws each query term independently from the corpus term
//     distribution, so query terms co-occur only by chance;
//   - Connected samples all of a query's terms from a single synthetic
//     document, so query terms exhibit the corpus' natural
//     co-occurrence structure (users subscribing to coherent topics).
//
// Queries are unit-normalized sparse vectors plus the per-query result
// size k, mirroring the CTQD definition in Section II.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/corpus"
	"repro/internal/textproc"
)

// Kind selects the workload family.
type Kind int

const (
	// Uniform draws query terms independently.
	Uniform Kind = iota
	// Connected draws query terms from one document.
	Connected
	// Hot concentrates an ID-ordered prefix of the queries
	// (HotFraction of them) on a few hot topic zones (HotZones topic
	// term pools), while the rest stay Uniform. The hot block shares a
	// small term pool, so those terms' posting lists — and with them
	// the posting mass of a contiguous stretch of query IDs — grow
	// with the query count while the tail stays light: the skewed
	// workload that makes intra-shard partition imbalance reproducible
	// in tests and benchmarks.
	Hot
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "Uniform"
	case Connected:
		return "Connected"
	case Hot:
		return "Hot"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a workload name (case-sensitive, as printed by
// String) into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "Uniform", "uniform":
		return Uniform, nil
	case "Connected", "connected":
		return Connected, nil
	case "Hot", "hot":
		return Hot, nil
	}
	return 0, fmt.Errorf("workload: unknown kind %q", s)
}

// Query is one registered CTQD.
type Query struct {
	// ID is the dense query identifier the ID-ordered index sorts by.
	ID uint32
	// Vec is the unit-normalized preference vector.
	Vec textproc.Vector
	// K is the result size.
	K int
}

// Config parameterizes query generation.
type Config struct {
	Kind Kind
	// N is the number of queries.
	N int
	// MinTerms and MaxTerms bound the query length (inclusive). The
	// TKDE evaluation uses short queries; defaults are 2..5.
	MinTerms, MaxTerms int
	// K is the per-query result size.
	K int
	// Seed drives the workload's private randomness.
	Seed int64
	// HotZones is how many topic zones the hot queries concentrate on
	// (Hot workloads only; default 4).
	HotZones int
	// HotFraction is the fraction of queries — the ID-ordered prefix —
	// drawn from the hot zones under Hot (default 0.5); the remainder
	// are Uniform.
	HotFraction float64
}

// DefaultConfig returns the paper-default workload shape for n queries.
func DefaultConfig(kind Kind, n int) Config {
	return Config{Kind: kind, N: n, MinTerms: 2, MaxTerms: 5, K: 10, Seed: 7, HotZones: 4, HotFraction: 0.5}
}

// Validate reports the first structural problem with the config.
func (c Config) Validate() error {
	switch {
	case c.N < 0:
		return fmt.Errorf("workload: negative N %d", c.N)
	case c.MinTerms < 1:
		return fmt.Errorf("workload: MinTerms must be ≥ 1, got %d", c.MinTerms)
	case c.MaxTerms < c.MinTerms:
		return fmt.Errorf("workload: MaxTerms %d < MinTerms %d", c.MaxTerms, c.MinTerms)
	case c.K < 1:
		return fmt.Errorf("workload: K must be ≥ 1, got %d", c.K)
	}
	if c.Kind == Hot {
		if c.HotZones < 1 {
			return fmt.Errorf("workload: HotZones must be ≥ 1, got %d", c.HotZones)
		}
		if c.HotFraction <= 0 || c.HotFraction > 1 {
			return fmt.Errorf("workload: HotFraction must be in (0,1], got %v", c.HotFraction)
		}
	}
	return nil
}

// Generate builds the query set for a corpus model. The workload uses
// its own corpus generator (same model, private seed) so that query
// sampling never perturbs the document stream's random sequence.
func Generate(model corpus.Model, cfg Config) ([]Query, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sampler := corpus.NewGenerator(model, cfg.Seed^0x5EED, 0)
	var pools [][]textproc.TermID
	if cfg.Kind == Hot {
		pools = hotPools(model, cfg.HotZones)
	}
	queries := make([]Query, cfg.N)
	for i := range queries {
		nTerms := cfg.MinTerms
		if cfg.MaxTerms > cfg.MinTerms {
			nTerms += rng.Intn(cfg.MaxTerms - cfg.MinTerms + 1)
		}
		var terms []textproc.TermID
		switch {
		case cfg.Kind == Connected:
			terms = connectedTerms(rng, sampler, nTerms)
		case cfg.Kind == Hot && i < int(cfg.HotFraction*float64(cfg.N)):
			terms = hotTerms(rng, pools, nTerms)
		default:
			terms = uniformTerms(rng, sampler, nTerms, model.VocabSize)
		}
		queries[i] = Query{
			ID:  uint32(i),
			Vec: weightedVector(rng, terms),
			K:   cfg.K,
		}
	}
	return queries, nil
}

// uniformTerms draws nTerms distinct terms independently and uniformly
// from the dictionary. This is the paper's "Uniform" workload: term
// co-occurrence within a query is pure chance, and posting lists stay
// short and even. (Contrast Connected, whose corpus-driven terms pile
// into the hot topical lists — which is why the paper's Figure 1(b)
// runs roughly an order of magnitude slower than 1(a).)
func uniformTerms(rng *rand.Rand, _ *corpus.Generator, nTerms, vocab int) []textproc.TermID {
	seen := make(map[textproc.TermID]struct{}, nTerms)
	terms := make([]textproc.TermID, 0, nTerms)
	for len(terms) < nTerms {
		t := textproc.TermID(rng.Intn(vocab))
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		terms = append(terms, t)
	}
	return terms
}

// hotPoolCap bounds each hot zone's term pool. Hot queries draw from
// the head of their zone's topic vocabulary, so across the hot block
// the same few dozen terms repeat and their posting lists grow with
// the query count — the source of the workload's posting-mass skew.
const hotPoolCap = 32

// hotPools builds one term pool per hot zone from the corpus model's
// topic composition (zone z = topic z), truncated to the pool cap.
func hotPools(model corpus.Model, zones int) [][]textproc.TermID {
	pools := make([][]textproc.TermID, zones)
	for z := range pools {
		// Deduplicate (a topic range can wrap a small vocabulary) so
		// pool size equals distinct-term count.
		seen := make(map[textproc.TermID]struct{}, hotPoolCap)
		pool := make([]textproc.TermID, 0, hotPoolCap)
		for _, t := range model.TopicTerms(z) {
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			pool = append(pool, t)
			if len(pool) == hotPoolCap {
				break
			}
		}
		pools[z] = pool
	}
	return pools
}

// hotTerms draws nTerms distinct terms from one randomly chosen hot
// zone's pool.
func hotTerms(rng *rand.Rand, pools [][]textproc.TermID, nTerms int) []textproc.TermID {
	pool := pools[rng.Intn(len(pools))]
	if nTerms > len(pool) {
		nTerms = len(pool)
	}
	seen := make(map[textproc.TermID]struct{}, nTerms)
	terms := make([]textproc.TermID, 0, nTerms)
	for len(terms) < nTerms {
		t := pool[rng.Intn(len(pool))]
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		terms = append(terms, t)
	}
	return terms
}

// connectedTerms samples one synthetic document and draws the query's
// terms from it, inheriting the corpus co-occurrence structure.
func connectedTerms(rng *rand.Rand, g *corpus.Generator, nTerms int) []textproc.TermID {
	counts := g.SampleDocTerms()
	pool := make([]textproc.TermID, 0, len(counts))
	for t := range counts {
		pool = append(pool, t)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if nTerms > len(pool) {
		nTerms = len(pool)
	}
	return pool[:nTerms]
}

// weightedVector assigns random preference weights in [0.2, 1] to the
// terms and normalizes. The floor keeps every term material to the
// score, like explicit user keywords are.
func weightedVector(rng *rand.Rand, terms []textproc.TermID) textproc.Vector {
	v := make(textproc.Vector, len(terms))
	for i, t := range terms {
		v[i] = textproc.TermWeight{Term: t, Weight: 0.2 + 0.8*rng.Float64()}
	}
	sort.Slice(v, func(i, j int) bool { return v[i].Term < v[j].Term })
	v.Normalize()
	return v
}

// Stats summarizes a generated workload for experiment reports.
type Stats struct {
	N             int
	MeanTerms     float64
	DistinctTerms int
	MaxListLen    int // most popular term's query count
}

// Summarize computes workload statistics.
func Summarize(qs []Query) Stats {
	var st Stats
	st.N = len(qs)
	listLen := make(map[textproc.TermID]int)
	var totTerms int
	for _, q := range qs {
		totTerms += len(q.Vec)
		for _, tw := range q.Vec {
			listLen[tw.Term]++
		}
	}
	if st.N > 0 {
		st.MeanTerms = float64(totTerms) / float64(st.N)
	}
	st.DistinctTerms = len(listLen)
	for _, n := range listLen {
		if n > st.MaxListLen {
			st.MaxListLen = n
		}
	}
	return st
}
