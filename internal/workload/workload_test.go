package workload

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/textproc"
)

func testModel() corpus.Model {
	m := corpus.WikipediaModel(4000)
	m.DocLenMedian = 40
	return m
}

func TestKindString(t *testing.T) {
	if Uniform.String() != "Uniform" || Connected.String() != "Connected" || Hot.String() != "Hot" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestParseKind(t *testing.T) {
	for _, s := range []string{"Uniform", "uniform"} {
		if k, err := ParseKind(s); err != nil || k != Uniform {
			t.Fatalf("ParseKind(%q) = %v, %v", s, k, err)
		}
	}
	if k, err := ParseKind("connected"); err != nil || k != Connected {
		t.Fatalf("ParseKind(connected) = %v, %v", k, err)
	}
	for _, s := range []string{"Hot", "hot"} {
		if k, err := ParseKind(s); err != nil || k != Hot {
			t.Fatalf("ParseKind(%q) = %v, %v", s, k, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind(bogus) succeeded")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(Uniform, 10).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultConfig(Hot, 10).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{N: -1, MinTerms: 1, MaxTerms: 2, K: 1},
		{N: 1, MinTerms: 0, MaxTerms: 2, K: 1},
		{N: 1, MinTerms: 3, MaxTerms: 2, K: 1},
		{N: 1, MinTerms: 1, MaxTerms: 2, K: 0},
		{Kind: Hot, N: 1, MinTerms: 1, MaxTerms: 2, K: 1, HotZones: 0, HotFraction: 0.5},
		{Kind: Hot, N: 1, MinTerms: 1, MaxTerms: 2, K: 1, HotZones: 4, HotFraction: 0},
		{Kind: Hot, N: 1, MinTerms: 1, MaxTerms: 2, K: 1, HotZones: 4, HotFraction: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	for _, kind := range []Kind{Uniform, Connected} {
		cfg := DefaultConfig(kind, 200)
		qs, err := Generate(testModel(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) != 200 {
			t.Fatalf("%v: got %d queries", kind, len(qs))
		}
		for i, q := range qs {
			if q.ID != uint32(i) {
				t.Fatalf("%v: query %d has ID %d (IDs must be dense, sorted)", kind, i, q.ID)
			}
			if q.K != cfg.K {
				t.Fatalf("%v: query %d has K=%d", kind, i, q.K)
			}
			if len(q.Vec) < cfg.MinTerms || len(q.Vec) > cfg.MaxTerms {
				t.Fatalf("%v: query %d has %d terms outside [%d,%d]",
					kind, i, len(q.Vec), cfg.MinTerms, cfg.MaxTerms)
			}
			if err := q.Vec.Validate(); err != nil {
				t.Fatalf("%v: query %d invalid: %v", kind, i, err)
			}
			if math.Abs(q.Vec.Norm()-1) > 1e-9 {
				t.Fatalf("%v: query %d not unit norm", kind, i)
			}
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultConfig(Connected, 50)
	a, _ := Generate(testModel(), cfg)
	b, _ := Generate(testModel(), cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different workloads")
	}
	cfg2 := cfg
	cfg2.Seed++
	c, _ := Generate(testModel(), cfg2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(testModel(), Config{N: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestConnectedHasHigherCoOccurrence(t *testing.T) {
	// The defining property: pairs of terms inside one Connected query
	// should co-occur in documents more than pairs inside a Uniform
	// query. We approximate document co-occurrence by topic slice
	// membership via a large sample of generated documents.
	model := testModel()
	g := corpus.NewGenerator(model, 99, 0)
	docs := g.Generate(300)
	occ := make(map[textproc.TermID]map[int]struct{})
	for i, d := range docs {
		for _, tw := range d.Vec {
			s := occ[tw.Term]
			if s == nil {
				s = make(map[int]struct{})
				occ[tw.Term] = s
			}
			s[i] = struct{}{}
		}
	}
	// Lift = P(a,b) / (P(a)·P(b)): >1 means genuine co-occurrence beyond
	// what the terms' individual frequencies explain. Head terms have
	// huge raw joint counts but lift ≈ 1; topical pairs have high lift.
	meanLift := func(qs []Query) float64 {
		var lift, pairs float64
		n := float64(len(docs))
		for _, q := range qs {
			for i := 0; i < len(q.Vec); i++ {
				for j := i + 1; j < len(q.Vec); j++ {
					a, b := q.Vec[i].Term, q.Vec[j].Term
					dfa, dfb := float64(len(occ[a])), float64(len(occ[b]))
					if dfa == 0 || dfb == 0 {
						continue
					}
					var joint float64
					for d := range occ[a] {
						if _, ok := occ[b][d]; ok {
							joint++
						}
					}
					lift += (joint / n) / ((dfa / n) * (dfb / n))
					pairs++
				}
			}
		}
		if pairs == 0 {
			return 0
		}
		return lift / pairs
	}
	conn, _ := Generate(model, DefaultConfig(Connected, 150))
	unif, _ := Generate(model, DefaultConfig(Uniform, 150))
	cl, ul := meanLift(conn), meanLift(unif)
	if cl <= ul {
		t.Fatalf("Connected mean lift %.3f not above Uniform %.3f", cl, ul)
	}
}

func TestUniformSpreadsOverDictionary(t *testing.T) {
	// The paper's Uniform workload draws terms uniformly from the
	// dictionary, so every decile should receive a similar share and
	// posting lists stay short and even.
	model := testModel()
	qs, _ := Generate(model, DefaultConfig(Uniform, 400))
	head := 0
	total := 0
	for _, q := range qs {
		for _, tw := range q.Vec {
			total++
			if int(tw.Term) < model.VocabSize/10 {
				head++
			}
		}
	}
	frac := float64(head) / float64(total)
	if frac < 0.05 || frac > 0.20 {
		t.Fatalf("Uniform head-decile share %.2f; want ≈0.10 (uniform draws)", frac)
	}
	st := Summarize(qs)
	if st.MaxListLen > 3*int(float64(total)/float64(st.DistinctTerms))+10 {
		t.Fatalf("Uniform produced a hot list of %d entries; lists should be even", st.MaxListLen)
	}
}

func TestConnectedConcentratesLists(t *testing.T) {
	model := testModel()
	conn, _ := Generate(model, DefaultConfig(Connected, 400))
	unif, _ := Generate(model, DefaultConfig(Uniform, 400))
	if Summarize(conn).MaxListLen <= Summarize(unif).MaxListLen {
		t.Fatalf("Connected max list %d not above Uniform %d",
			Summarize(conn).MaxListLen, Summarize(unif).MaxListLen)
	}
}

func TestSummarize(t *testing.T) {
	qs := []Query{
		{ID: 0, Vec: textproc.Vector{{Term: 1, Weight: 1}, {Term: 2, Weight: 1}}, K: 10},
		{ID: 1, Vec: textproc.Vector{{Term: 1, Weight: 1}}, K: 10},
	}
	st := Summarize(qs)
	if st.N != 2 || st.DistinctTerms != 2 || st.MaxListLen != 2 {
		t.Fatalf("Summarize = %+v", st)
	}
	if math.Abs(st.MeanTerms-1.5) > 1e-12 {
		t.Fatalf("MeanTerms = %v", st.MeanTerms)
	}
	if got := Summarize(nil); got.N != 0 || got.MeanTerms != 0 {
		t.Fatalf("Summarize(nil) = %+v", got)
	}
}

func TestFixedQueryLength(t *testing.T) {
	cfg := DefaultConfig(Uniform, 40)
	cfg.MinTerms, cfg.MaxTerms = 3, 3
	qs, err := Generate(testModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if len(q.Vec) != 3 {
			t.Fatalf("query %d has %d terms, want exactly 3", q.ID, len(q.Vec))
		}
	}
}

// TestHotConcentratesPrefixMass: the Hot workload's defining property
// — the ID-ordered hot prefix draws from a few small topic pools, so
// its queries' posting mass dwarfs the Uniform tail's and a contiguous
// stretch of query IDs is far heavier than the rest.
func TestHotConcentratesPrefixMass(t *testing.T) {
	model := testModel()
	cfg := DefaultConfig(Hot, 400)
	qs, err := Generate(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 400 {
		t.Fatalf("generated %d queries", len(qs))
	}
	// Hot prefix terms come from the configured zones' pools.
	pools := hotPools(model, cfg.HotZones)
	inPool := map[textproc.TermID]struct{}{}
	for _, pool := range pools {
		for _, term := range pool {
			inPool[term] = struct{}{}
		}
	}
	hotN := int(cfg.HotFraction * float64(cfg.N))
	for i := 0; i < hotN; i++ {
		for _, tw := range qs[i].Vec {
			if _, ok := inPool[tw.Term]; !ok {
				t.Fatalf("hot query %d uses term %d outside the hot pools", i, tw.Term)
			}
		}
	}
	// Posting mass: count list lengths over the whole workload, then
	// compare the hot prefix's summed mass to the tail's.
	listLen := map[textproc.TermID]int{}
	for _, q := range qs {
		for _, tw := range q.Vec {
			listLen[tw.Term]++
		}
	}
	mass := func(from, to int) float64 {
		var m float64
		for _, q := range qs[from:to] {
			for _, tw := range q.Vec {
				m += float64(listLen[tw.Term])
			}
		}
		return m
	}
	hot, tail := mass(0, hotN), mass(hotN, len(qs))
	if hot < 3*tail {
		t.Fatalf("hot prefix mass %.0f not ≫ tail mass %.0f; workload not skewed", hot, tail)
	}
	// And the hot lists are much longer than anything Uniform builds.
	unif, _ := Generate(model, DefaultConfig(Uniform, 400))
	if Summarize(qs).MaxListLen <= 2*Summarize(unif).MaxListLen {
		t.Fatalf("Hot max list %d not above 2× Uniform %d",
			Summarize(qs).MaxListLen, Summarize(unif).MaxListLen)
	}
}
