// Package snapshot persists and restores monitor (and text-engine)
// state with encoding/gob: configuration, query definitions, stream
// time, decay epoch and every query's current results. A restored
// monitor resumes the stream exactly where the snapshot left off
// (verified by the equivalence tests).
//
// Two formats are offered: Save/Load round-trips a bare core.Monitor
// (vector level), while SaveEngine/LoadEngine additionally carries a
// TextState — the vocabulary, idf statistics, document counter and
// snippet map of the text-level engine sitting on top — so a restarted
// server resumes with identical tokenization-to-scoring semantics.
package snapshot

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/rangemax"
	"repro/internal/textproc"
	"repro/internal/topk"
)

// boundKind converts the persisted integer back to a rangemax.Kind.
func boundKind(i int) rangemax.Kind { return rangemax.Kind(i) }

// version guards the wire format. Version 3 adds the generational
// layout (FoldLen, Generation, Dirty): which trailing queries live in
// the delta segment rather than the main generation, so a restored
// monitor resumes with the identical layout and rebuild cadence.
// Version 2 (full ID space with a Removed list, lifetime counters) is
// still readable — its whole query set restores folded into one main
// generation, which is result-invariant.
const version = 3

// versionNoLayout is the oldest monitor format still accepted.
const versionNoLayout = 2

// engineVersion guards the engine-level wire format. Version 5 adds
// the analyzer spec (TextState.Analyzer): which registered analysis
// pipeline produced the persisted vocabulary, so a restored engine
// analyzes future documents identically. Version 4 (generational
// delta + tombstone layout), version 3 (per-query notification
// sequence numbers, TextState.Seqs) and version 1 (no Seqs) are still
// readable — their analyzer is inferred from the Stemming bool (see
// TextState.EffectiveAnalyzer).
const engineVersion = 5

// The older engine formats still accepted.
const (
	engineVersionNoAnalyzer = 4
	engineVersionNoLayout   = 3
	engineVersionNoSeqs     = 1
)

// state is the gob wire format of a monitor.
type state struct {
	Version     int
	Algorithm   string
	Bound       int
	Lambda      float64
	Shards      int
	Parallelism int
	// Partition is the intra-shard partition strategy. Absent in older
	// version-2 streams (gob leaves it empty), which restores as the
	// default strategy — a result-invariant execution detail.
	Partition string

	// The full query ID space in global ID order — including removed
	// queries, so the dense ID assignment of a rebuilt monitor
	// reproduces every ID and clients' handles stay valid across
	// restore. Removed lists the global IDs to re-remove after
	// reconstruction.
	IDs     []uint32
	Vecs    []textproc.Vector
	Ks      []int
	Removed []uint32

	Now       float64
	DecayBase float64
	Results   map[uint32][]topk.ScoredDoc

	// Lifetime counters, so a restored monitor's statistics continue
	// instead of restarting from zero.
	Events uint64
	Totals core.EventStats

	// Generational layout (version ≥ 3): queries with ID < FoldLen
	// restore into the main generation, later ones into the delta
	// segment; Generation and Dirty resume the build counter and the
	// rebuild cadence. Version-2 streams leave all three zero and
	// restore fully folded (FoldLen is clamped to the ID space, so a
	// zero FoldLen from an old stream means "fold everything" via the
	// loader's fix-up below).
	FoldLen    int
	Generation uint64
	Dirty      int
}

// TextState is the engine-level state layered over the monitor: the
// text pipeline's accumulated knowledge, without which a restored
// monitor would re-tokenize and re-weight future documents against
// empty idf statistics.
type TextState struct {
	// Terms and DF are the vocabulary dump (textproc.Vocabulary.Dump).
	Terms []string
	DF    []uint32
	// DocsObserved is the vocabulary's observed-document count.
	DocsObserved uint64
	// NextDoc is the engine's next document ID.
	NextDoc uint64
	// Snips is the retained snippet map (nil when retention is off).
	Snips map[uint64]string
	// Stemming records whether the engine stems tokens. Superseded by
	// Analyzer (engine version ≥ 5) but still written — both for older
	// readers and as the inference source for older streams. Part of
	// the persisted semantics: restoring with the opposite setting
	// would tokenize future documents against a mismatched vocabulary.
	Stemming bool
	// Analyzer is the canonical spec of the analysis pipeline that
	// produced the vocabulary ("standard", "english",
	// "unicode-fold?stop=le,la", ...). Empty in streams written before
	// engine version 5; EffectiveAnalyzer infers it then.
	Analyzer string
	// Seqs holds each query's notification sequence number (queries at
	// zero omitted), so pushed-update Seq numbering continues across a
	// restart and watchers' drop detection stays sound. Nil when the
	// snapshot predates engine version 3.
	Seqs map[uint32]uint64
}

// EffectiveAnalyzer resolves the analysis pipeline this state was
// produced under: the recorded spec when present (engine version ≥ 5),
// otherwise inferred from the Stemming bool — older engines only ever
// ran the two hardwired pipelines those names now denote.
func (ts TextState) EffectiveAnalyzer() string {
	if ts.Analyzer != "" {
		return ts.Analyzer
	}
	if ts.Stemming {
		return "english"
	}
	return "standard"
}

// engineState is the gob wire format of an engine.
type engineState struct {
	Version int
	Monitor state
	Text    TextState
}

// capture collects a monitor's persistent state.
func capture(m *core.Monitor) state {
	cfg := m.Config()
	st := state{
		Version:     version,
		Algorithm:   string(cfg.Algorithm),
		Bound:       int(cfg.Bound),
		Lambda:      cfg.Lambda,
		Shards:      cfg.Shards,
		Parallelism: cfg.Parallelism,
		Partition:   string(cfg.Partition),
	}
	defs, removed := m.AllDefs()
	for g, def := range defs {
		st.IDs = append(st.IDs, uint32(g))
		st.Vecs = append(st.Vecs, def.Vec)
		st.Ks = append(st.Ks, def.K)
		if removed[g] {
			st.Removed = append(st.Removed, uint32(g))
		}
	}
	st.Now, st.DecayBase, st.Results = m.DumpState()
	st.Events, st.Totals = m.Events(), m.Totals()
	lay := m.Layout()
	st.FoldLen, st.Generation, st.Dirty = lay.FoldLen, lay.Generation, lay.Dirty
	return st
}

// build reconstructs a monitor from captured state: every query of
// the persisted ID space is re-registered in order (so dense ID
// assignment reproduces the original handles), removed queries are
// re-removed, and the dynamic state is restored. shape overrides the
// persisted execution shape where non-zero: Algorithm, Bound, Shards
// and Parallelism are all result-invariant knobs, so a restored
// server may run a different layout than the one that saved. Lambda
// is always taken from the snapshot — the persisted scores are in its
// units.
func build(st state, shape core.Config) (*core.Monitor, error) {
	if st.Version != version && st.Version != versionNoLayout {
		return nil, fmt.Errorf("snapshot: unsupported version %d", st.Version)
	}
	defs := make([]core.QueryDef, len(st.IDs))
	for i, g := range st.IDs {
		if int(g) != i {
			return nil, fmt.Errorf("snapshot: corrupt ID space: ID %d at position %d", g, i)
		}
		defs[i] = core.QueryDef{Vec: st.Vecs[i], K: st.Ks[i]}
	}
	cfg := core.Config{
		Algorithm:   core.Algorithm(st.Algorithm),
		Bound:       boundKind(st.Bound),
		Lambda:      st.Lambda,
		Shards:      st.Shards,
		Parallelism: st.Parallelism,
		Partition:   core.PartitionStrategy(st.Partition),
	}
	if shape.Algorithm != "" {
		cfg.Algorithm = shape.Algorithm
	}
	if shape.Bound != 0 {
		cfg.Bound = shape.Bound
	}
	if shape.Shards != 0 {
		cfg.Shards = shape.Shards
	}
	if shape.Parallelism != 0 {
		cfg.Parallelism = shape.Parallelism
	}
	if shape.Partition != "" {
		cfg.Partition = shape.Partition
	}
	if shape.Rebuild != "" {
		cfg.Rebuild = shape.Rebuild
	}
	if shape.RebuildThreshold != 0 {
		cfg.RebuildThreshold = shape.RebuildThreshold
	}
	removed := make([]bool, len(defs))
	for _, g := range st.Removed {
		if int(g) >= len(defs) {
			return nil, fmt.Errorf("snapshot: removed query %d outside ID space", g)
		}
		removed[g] = true
	}
	lay := core.Layout{FoldLen: st.FoldLen, Generation: st.Generation, Dirty: st.Dirty}
	if st.Version == versionNoLayout {
		// Pre-generational stream: everything folds into one main
		// generation (result-invariant).
		lay = core.Layout{FoldLen: len(defs)}
	}
	m, err := core.NewMonitorWithLayout(cfg, defs, removed, lay)
	if err != nil {
		return nil, fmt.Errorf("snapshot: rebuild: %w", err)
	}
	if err := m.RestoreState(st.Now, st.DecayBase, st.Results); err != nil {
		m.Close()
		return nil, fmt.Errorf("snapshot: restore: %w", err)
	}
	m.SetCounters(st.Events, st.Totals)
	return m, nil
}

// Save writes a snapshot of m to w.
func Save(w io.Writer, m *core.Monitor) error {
	st := capture(m)
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	return nil
}

// Load reads a snapshot and reconstructs the monitor. Query IDs are
// preserved exactly — including the gaps left by removed queries — so
// handles clients held before the save stay valid after the restore.
func Load(r io.Reader) (*core.Monitor, error) {
	var st state
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	return build(st, core.Config{})
}

// State is a captured engine-level snapshot that has not yet been
// encoded. Splitting capture from encoding lets the online snapshotter
// do the cheap part (capture) under the engine lock and the expensive
// part (gob encoding and disk I/O) concurrently with ingestion.
type State struct {
	st engineState
}

// CaptureEngine collects an engine-level snapshot of m and ts. The
// caller must hold whatever lock serializes m's mutations; the
// returned State is immutable afterwards and may be encoded without
// the lock.
func CaptureEngine(m *core.Monitor, ts TextState) *State {
	return &State{st: engineState{Version: engineVersion, Monitor: capture(m), Text: ts}}
}

// Encode writes the captured snapshot to w.
func (s *State) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(&s.st); err != nil {
		return fmt.Errorf("snapshot: encode engine: %w", err)
	}
	return nil
}

// SaveEngine writes an engine-level snapshot: the monitor plus the
// text pipeline's state.
func SaveEngine(w io.Writer, m *core.Monitor, ts TextState) error {
	return CaptureEngine(m, ts).Encode(w)
}

// LoadEngine reads an engine-level snapshot, reconstructing the
// monitor (shape overrides as in build: non-zero Algorithm, Bound,
// Shards, Parallelism replace the persisted execution shape; Lambda
// always comes from the snapshot) and returning the text state for
// the caller to rebuild its pipeline from. As with Load, query IDs —
// including removal gaps — are preserved exactly.
func LoadEngine(r io.Reader, shape core.Config) (*core.Monitor, TextState, error) {
	var st engineState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, TextState{}, fmt.Errorf("snapshot: decode engine: %w", err)
	}
	switch st.Version {
	case engineVersion, engineVersionNoAnalyzer, engineVersionNoLayout, engineVersionNoSeqs:
	default:
		return nil, TextState{}, fmt.Errorf("snapshot: unsupported engine version %d", st.Version)
	}
	m, err := build(st.Monitor, shape)
	if err != nil {
		return nil, TextState{}, err
	}
	return m, st.Text, nil
}
