// Package snapshot persists and restores a Monitor's state with
// encoding/gob: configuration, query definitions, stream time, decay
// epoch and every query's current results. A restored monitor resumes
// the stream exactly where the snapshot left off (verified by the
// equivalence tests).
package snapshot

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/rangemax"
	"repro/internal/textproc"
	"repro/internal/topk"
)

// boundKind converts the persisted integer back to a rangemax.Kind.
func boundKind(i int) rangemax.Kind { return rangemax.Kind(i) }

// version guards the wire format.
const version = 1

// state is the gob wire format.
type state struct {
	Version   int
	Algorithm string
	Bound     int
	Lambda    float64
	Shards    int

	// Queries keyed by global ID. IDs are preserved so clients'
	// handles stay valid across restore.
	IDs  []uint32
	Vecs []textproc.Vector
	Ks   []int

	Now       float64
	DecayBase float64
	Results   map[uint32][]topk.ScoredDoc
}

// Save writes a snapshot of m to w.
func Save(w io.Writer, m *core.Monitor) error {
	cfg := m.Config()
	st := state{
		Version:   version,
		Algorithm: string(cfg.Algorithm),
		Bound:     int(cfg.Bound),
		Lambda:    cfg.Lambda,
		Shards:    cfg.Shards,
	}
	defs := m.Defs()
	var maxID uint32
	for g := range defs {
		if g > maxID {
			maxID = g
		}
	}
	for g := uint32(0); len(defs) > 0 && g <= maxID; g++ {
		if def, ok := defs[g]; ok {
			st.IDs = append(st.IDs, g)
			st.Vecs = append(st.Vecs, def.Vec)
			st.Ks = append(st.Ks, def.K)
		}
	}
	st.Now, st.DecayBase, st.Results = m.DumpState()
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	return nil
}

// Load reads a snapshot and reconstructs the monitor.
//
// Restriction: global IDs must be dense (no queries removed before the
// snapshot); sparse ID spaces are reported as an error rather than
// silently renumbered.
func Load(r io.Reader) (*core.Monitor, error) {
	var st state
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if st.Version != version {
		return nil, fmt.Errorf("snapshot: unsupported version %d", st.Version)
	}
	defs := make([]core.QueryDef, len(st.IDs))
	for i, g := range st.IDs {
		if int(g) != i {
			return nil, fmt.Errorf("snapshot: non-dense query ID %d at position %d (remove-then-save is not restorable)", g, i)
		}
		defs[i] = core.QueryDef{Vec: st.Vecs[i], K: st.Ks[i]}
	}
	cfg := core.Config{
		Algorithm: core.Algorithm(st.Algorithm),
		Bound:     boundKind(st.Bound),
		Lambda:    st.Lambda,
		Shards:    st.Shards,
	}
	m, err := core.NewMonitor(cfg, defs)
	if err != nil {
		return nil, fmt.Errorf("snapshot: rebuild: %w", err)
	}
	if err := m.RestoreState(st.Now, st.DecayBase, st.Results); err != nil {
		return nil, fmt.Errorf("snapshot: restore: %w", err)
	}
	return m, nil
}
