package snapshot

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/stream"
	"repro/internal/workload"
)

// churnFixture builds the generational monitor under test (tiny
// rebuild budget, background builds), a never-rebuilding reference,
// a pool of extra query definitions and a stream.
func churnFixture(t *testing.T) (gen, ref *core.Monitor, extra []core.QueryDef, events []stream.Event) {
	t.Helper()
	model := corpus.WikipediaModel(500)
	model.DocLenMedian = 20
	qs, err := workload.Generate(model, workload.DefaultConfig(workload.Uniform, 50))
	if err != nil {
		t.Fatal(err)
	}
	defs := make([]core.QueryDef, len(qs))
	for i, q := range qs {
		defs[i] = core.QueryDef{Vec: q.Vec, K: 3}
	}
	gen, err = core.NewMonitor(core.Config{Lambda: 0.02, RebuildThreshold: 4}, defs[:35])
	if err != nil {
		t.Fatal(err)
	}
	ref, err = core.NewMonitor(core.Config{Lambda: 0.02, RebuildThreshold: 1 << 30}, defs[:35])
	if err != nil {
		t.Fatal(err)
	}
	extra = defs[35:]
	gensrc := corpus.NewGenerator(model, 177, 200)
	src, err := stream.NewSource(gensrc, 10, 178)
	if err != nil {
		t.Fatal(err)
	}
	return gen, ref, extra, src.Take(200)
}

// churnStep applies one identical chunk of churn + traffic to both
// monitors.
func churnStep(t *testing.T, step int, evs []stream.Event, extra []core.QueryDef, mons ...*core.Monitor) {
	t.Helper()
	at := evs[len(evs)-1].Time
	for _, ev := range evs {
		for _, m := range mons {
			if _, err := m.Process(ev.Doc, at); err != nil {
				t.Fatal(err)
			}
		}
	}
	if step < len(extra) {
		for _, m := range mons {
			if _, err := m.AddQuery(extra[step]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if step%2 == 1 {
		victim := uint32((step * 5) % 35)
		for _, m := range mons {
			if err := m.RemoveQuery(victim); err != nil && !errors.Is(err, core.ErrRemovedQuery) {
				t.Fatal(err)
			}
		}
	}
}

func expectSame(t *testing.T, label string, a, b *core.Monitor, n int) {
	t.Helper()
	for g := uint32(0); g < uint32(n); g++ {
		x, errA := a.TopInflated(g)
		y, errB := b.TopInflated(g)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: query %d: %v vs %v", label, g, errA, errB)
		}
		if len(x) != len(y) {
			t.Fatalf("%s: query %d: %d vs %d results", label, g, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s: query %d rank %d: %+v vs %+v", label, g, i, x[i], y[i])
			}
		}
	}
}

// TestChurnMatchesFreshBuildAcrossSnapshot closes the acceptance loop
// for wire v4: a churning generational monitor is snapshotted mid-run
// (with a live delta segment and lingering tombstones), restored, and
// driven through the rest of the timeline — results must stay
// bit-identical to a monitor that replayed the whole timeline without
// ever rebuilding, and the persisted layout must round-trip exactly.
func TestChurnMatchesFreshBuildAcrossSnapshot(t *testing.T) {
	gen, ref, extra, events := churnFixture(t)
	defer gen.Close()
	defer ref.Close()

	const chunk = 10
	half := len(events) / 2
	for i := 0; i < half; i += chunk {
		churnStep(t, i/chunk, events[i:i+chunk], extra, gen, ref)
	}
	gen.WaitRebuild()
	if gs := gen.GenStats(); gs.Builds == 0 {
		t.Fatalf("fixture tripped no generation builds: %+v", gs)
	}

	var buf bytes.Buffer
	if err := Save(&buf, gen); err != nil {
		t.Fatal(err)
	}
	wantLay := gen.Layout()
	restored, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.Layout(); got != wantLay {
		t.Fatalf("layout did not round-trip: %+v vs %+v", got, wantLay)
	}

	for i := half; i < len(events); i += chunk {
		churnStep(t, i/chunk, events[i:min(i+chunk, len(events))], extra, gen, ref, restored)
	}
	total := 35 + min(len(events)/chunk, len(extra))
	gen.WaitRebuild()
	restored.WaitRebuild()
	expectSame(t, "gen vs ref", ref, gen, total)
	expectSame(t, "restored vs ref", ref, restored, total)
}

// TestLoadMonitorV2 crafts a pre-generational (version 2) monitor
// stream and checks it still loads: the whole query set restores
// folded into one main generation, results intact.
func TestLoadMonitorV2(t *testing.T) {
	m, events := fixture(t)
	defer m.Close()
	for _, ev := range events[:80] {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RemoveQuery(7); err != nil {
		t.Fatal(err)
	}

	st := capture(m)
	st.Version = versionNoLayout
	st.FoldLen, st.Generation, st.Dirty = 0, 0, 0 // fields a v2 writer never set
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatalf("v2 monitor stream rejected: %v", err)
	}
	defer restored.Close()
	lay := restored.Layout()
	if lay.FoldLen != 60 || lay.Generation != 0 || lay.Dirty != 0 {
		t.Fatalf("v2 restore layout = %+v, want fully folded", lay)
	}
	if _, err := restored.Top(7); !errors.Is(err, core.ErrRemovedQuery) {
		t.Fatalf("removed query resurrected from v2 stream: %v", err)
	}
	expectSame(t, "v2 restore", m, restored, 60)

	// Unknown versions still fail loudly.
	st.Version = 99
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("version 99 accepted")
	}
}

// TestLoadEngineAcceptsV3: an engine stream written before the
// generational layout (version 3, with Seqs; monitor state version 2)
// still loads with its sequence numbers intact.
func TestLoadEngineAcceptsV3(t *testing.T) {
	m, _ := fixture(t)
	defer m.Close()
	mon := capture(m)
	mon.Version = versionNoLayout
	mon.FoldLen, mon.Generation, mon.Dirty = 0, 0, 0
	ts := TextState{
		Terms: []string{"solar"}, DF: []uint32{1}, DocsObserved: 1, NextDoc: 1,
		Seqs: map[uint32]uint64{4: 9},
	}
	st := engineState{Version: engineVersionNoLayout, Monitor: mon, Text: ts}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		t.Fatal(err)
	}
	m3, got, err := LoadEngine(&buf, core.Config{})
	if err != nil {
		t.Fatalf("v3 engine snapshot rejected: %v", err)
	}
	defer m3.Close()
	if got.Seqs[4] != 9 || len(got.Seqs) != 1 {
		t.Fatalf("v3 seqs did not survive: %v", got.Seqs)
	}
	if lay := m3.Layout(); lay.FoldLen != 60 {
		t.Fatalf("v3 monitor not fully folded: %+v", lay)
	}
}
