package snapshot

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/core"
)

// encodeAt serializes an engine snapshot doctored down to an older
// wire version: the version stamp is rewritten and every field that
// version did not know about is zeroed, which is exactly what gob
// decoding of a genuine old stream produces (absent fields decode to
// zero values).
func encodeAt(t *testing.T, m *core.Monitor, ts TextState, version int) *bytes.Reader {
	t.Helper()
	st := engineState{Version: version, Monitor: capture(m), Text: ts}
	if version < engineVersion {
		st.Text.Analyzer = ""
	}
	if version < engineVersionNoAnalyzer {
		// Engine versions ≤ 3 wrapped the pre-generational monitor
		// format.
		st.Monitor.Version = versionNoLayout
		st.Monitor.FoldLen, st.Monitor.Generation, st.Monitor.Dirty = 0, 0, 0
		st.Monitor.Partition = ""
	}
	if version < engineVersionNoLayout {
		st.Text.Seqs = nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

// TestEngineCompatMatrix loads fixtures at every historical engine
// wire version (1, 3, 4) and asserts the analyzer is inferred from the
// Stemming bool — Stemming: false → "standard", true → "english" —
// and that the restored monitor produces identical results to the
// original on a continued stream. Version 2 never shipped and stays
// rejected; the current version round-trips the analyzer spec
// verbatim.
func TestEngineCompatMatrix(t *testing.T) {
	m, events := fixture(t)
	defer m.Close()
	half := len(events) / 2
	for _, ev := range events[:half] {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}

	for _, version := range []int{engineVersionNoSeqs, engineVersionNoLayout, engineVersionNoAnalyzer} {
		for _, stemming := range []bool{false, true} {
			ts := TextState{
				Terms: []string{"solar"}, DF: []uint32{1}, DocsObserved: 1,
				NextDoc: 1, Stemming: stemming,
			}
			rm, rts, err := LoadEngine(encodeAt(t, m, ts, version), core.Config{})
			if err != nil {
				t.Fatalf("v%d (stemming=%v) rejected: %v", version, stemming, err)
			}
			want := "standard"
			if stemming {
				want = "english"
			}
			if got := rts.EffectiveAnalyzer(); got != want {
				t.Errorf("v%d (stemming=%v): inferred analyzer %q, want %q", version, stemming, got, want)
			}
			// The restored monitor must score a continued stream exactly
			// like the original.
			probe := events[half:]
			for _, ev := range probe {
				if _, err := rm.Process(ev.Doc, ev.Time); err != nil {
					t.Fatal(err)
				}
			}
			wantM, err := Load(func() *bytes.Reader {
				var buf bytes.Buffer
				if err := Save(&buf, m); err != nil {
					t.Fatal(err)
				}
				return bytes.NewReader(buf.Bytes())
			}())
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range probe {
				if _, err := wantM.Process(ev.Doc, ev.Time); err != nil {
					t.Fatal(err)
				}
			}
			for g := uint32(0); g < uint32(wantM.NumQueries()); g++ {
				a, _ := wantM.TopInflated(g)
				b, _ := rm.TopInflated(g)
				if len(a) != len(b) {
					t.Fatalf("v%d query %d: %d vs %d results", version, g, len(a), len(b))
				}
				for i := range a {
					if a[i].DocID != b[i].DocID {
						t.Fatalf("v%d query %d rank %d diverged", version, g, i)
					}
				}
			}
			rm.Close()
			wantM.Close()
		}
	}

	if _, _, err := LoadEngine(encodeAt(t, m, TextState{}, 2), core.Config{}); err == nil {
		t.Fatal("engine version 2 accepted (never shipped)")
	}

	// Current version: the recorded spec wins over the Stemming bool.
	ts := TextState{Analyzer: "unicode-fold?stop=le,la", Stemming: false}
	var buf bytes.Buffer
	if err := SaveEngine(&buf, m, ts); err != nil {
		t.Fatal(err)
	}
	rm, rts, err := LoadEngine(bytes.NewReader(buf.Bytes()), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rm.Close()
	if got := rts.EffectiveAnalyzer(); got != "unicode-fold?stop=le,la" {
		t.Fatalf("analyzer spec did not round-trip: %q", got)
	}
}
