package snapshot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/stream"
	"repro/internal/workload"
)

func fixture(t *testing.T) (*core.Monitor, []stream.Event) {
	t.Helper()
	model := corpus.WikipediaModel(500)
	model.DocLenMedian = 20
	qs, err := workload.Generate(model, workload.DefaultConfig(workload.Uniform, 60))
	if err != nil {
		t.Fatal(err)
	}
	defs := make([]core.QueryDef, len(qs))
	for i, q := range qs {
		defs[i] = core.QueryDef{Vec: q.Vec, K: 3}
	}
	m, err := core.NewMonitor(core.Config{Lambda: 0.02}, defs)
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(model, 77, 300)
	src, err := stream.NewSource(gen, 10, 78)
	if err != nil {
		t.Fatal(err)
	}
	return m, src.Take(300)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, events := fixture(t)
	half := len(events) / 2
	for _, ev := range events[:half] {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumQueries() != m.NumQueries() {
		t.Fatalf("restored %d queries, want %d", restored.NumQueries(), m.NumQueries())
	}
	if restored.Now() != m.Now() {
		t.Fatalf("restored Now = %v, want %v", restored.Now(), m.Now())
	}
	// Continue both streams; results must stay identical.
	for _, ev := range events[half:] {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	for g := uint32(0); g < uint32(m.NumQueries()); g++ {
		a, _ := m.TopInflated(g)
		b, _ := restored.TopInflated(g)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", g, len(a), len(b))
		}
		for i := range a {
			if a[i].DocID != b[i].DocID {
				t.Fatalf("query %d rank %d diverged after restore", g, i)
			}
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestLoadPreservesSparseIDs: a snapshot taken after removals
// restores the exact ID space — removed queries stay removed (their
// IDs are not reassigned), live queries keep their handles and
// results, and new registrations continue from the original counter.
func TestLoadPreservesSparseIDs(t *testing.T) {
	m, events := fixture(t)
	for _, ev := range events[:60] {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RemoveQuery(3); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveQuery(41); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.NumQueries() != m.NumQueries() {
		t.Fatalf("restored %d live queries, want %d", restored.NumQueries(), m.NumQueries())
	}
	for _, g := range []uint32{3, 41} {
		if _, err := restored.Top(g); err == nil {
			t.Fatalf("removed query %d resurrected by restore", g)
		}
	}
	for g := uint32(0); g < 60; g++ {
		if g == 3 || g == 41 {
			continue
		}
		a, err := m.TopInflated(g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.TopInflated(g)
		if err != nil {
			t.Fatalf("live query %d lost by restore: %v", g, err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", g, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d rank %d diverged: %+v vs %+v", g, i, a[i], b[i])
			}
		}
	}
	// The ID counter continues: the next add gets ID 60, not a reused
	// gap.
	defs, _ := m.AllDefs()
	id, err := restored.AddQuery(defs[0])
	if err != nil {
		t.Fatal(err)
	}
	if id != 60 {
		t.Fatalf("post-restore add got ID %d, want 60", id)
	}
}

func TestSaveEmptyMonitor(t *testing.T) {
	m, err := core.NewMonitor(core.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumQueries() != 0 {
		t.Fatalf("restored %d queries from empty monitor", restored.NumQueries())
	}
}
