package snapshot

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/stream"
	"repro/internal/workload"
)

func fixture(t *testing.T) (*core.Monitor, []stream.Event) {
	t.Helper()
	model := corpus.WikipediaModel(500)
	model.DocLenMedian = 20
	qs, err := workload.Generate(model, workload.DefaultConfig(workload.Uniform, 60))
	if err != nil {
		t.Fatal(err)
	}
	defs := make([]core.QueryDef, len(qs))
	for i, q := range qs {
		defs[i] = core.QueryDef{Vec: q.Vec, K: 3}
	}
	m, err := core.NewMonitor(core.Config{Lambda: 0.02}, defs)
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(model, 77, 300)
	src, err := stream.NewSource(gen, 10, 78)
	if err != nil {
		t.Fatal(err)
	}
	return m, src.Take(300)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, events := fixture(t)
	half := len(events) / 2
	for _, ev := range events[:half] {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumQueries() != m.NumQueries() {
		t.Fatalf("restored %d queries, want %d", restored.NumQueries(), m.NumQueries())
	}
	if restored.Now() != m.Now() {
		t.Fatalf("restored Now = %v, want %v", restored.Now(), m.Now())
	}
	// Continue both streams; results must stay identical.
	for _, ev := range events[half:] {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	for g := uint32(0); g < uint32(m.NumQueries()); g++ {
		a, _ := m.TopInflated(g)
		b, _ := restored.TopInflated(g)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", g, len(a), len(b))
		}
		for i := range a {
			if a[i].DocID != b[i].DocID {
				t.Fatalf("query %d rank %d diverged after restore", g, i)
			}
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestLoadPreservesSparseIDs: a snapshot taken after removals
// restores the exact ID space — removed queries stay removed (their
// IDs are not reassigned), live queries keep their handles and
// results, and new registrations continue from the original counter.
func TestLoadPreservesSparseIDs(t *testing.T) {
	m, events := fixture(t)
	for _, ev := range events[:60] {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RemoveQuery(3); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveQuery(41); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.NumQueries() != m.NumQueries() {
		t.Fatalf("restored %d live queries, want %d", restored.NumQueries(), m.NumQueries())
	}
	for _, g := range []uint32{3, 41} {
		if _, err := restored.Top(g); err == nil {
			t.Fatalf("removed query %d resurrected by restore", g)
		}
	}
	for g := uint32(0); g < 60; g++ {
		if g == 3 || g == 41 {
			continue
		}
		a, err := m.TopInflated(g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.TopInflated(g)
		if err != nil {
			t.Fatalf("live query %d lost by restore: %v", g, err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", g, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d rank %d diverged: %+v vs %+v", g, i, a[i], b[i])
			}
		}
	}
	// The ID counter continues: the next add gets ID 60, not a reused
	// gap.
	defs, _ := m.AllDefs()
	id, err := restored.AddQuery(defs[0])
	if err != nil {
		t.Fatal(err)
	}
	if id != 60 {
		t.Fatalf("post-restore add got ID %d, want 60", id)
	}
}

func TestSaveEmptyMonitor(t *testing.T) {
	m, err := core.NewMonitor(core.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumQueries() != 0 {
		t.Fatalf("restored %d queries from empty monitor", restored.NumQueries())
	}
}

// TestLoadEngineAcceptsV1: pre-Seqs engine snapshots (wire version 1)
// still load — their sequence numbers simply restart at zero — while
// unknown versions fail loudly.
func TestLoadEngineAcceptsV1(t *testing.T) {
	m, _ := fixture(t)
	defer m.Close()
	ts := TextState{Terms: []string{"solar"}, DF: []uint32{1}, DocsObserved: 1, NextDoc: 1}

	encode := func(version int) *bytes.Reader {
		st := engineState{Version: version, Monitor: capture(m), Text: ts}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(buf.Bytes())
	}

	m1, got, err := LoadEngine(encode(engineVersionNoSeqs), core.Config{})
	if err != nil {
		t.Fatalf("v1 engine snapshot rejected: %v", err)
	}
	m1.Close()
	if got.Seqs != nil {
		t.Fatalf("v1 snapshot produced seqs: %v", got.Seqs)
	}

	if _, _, err := LoadEngine(encode(2), core.Config{}); err == nil {
		t.Fatal("unknown engine version 2 accepted")
	}

	// And the current version round-trips the seq map.
	ts.Seqs = map[uint32]uint64{3: 7, 9: 1}
	var buf bytes.Buffer
	if err := SaveEngine(&buf, m, ts); err != nil {
		t.Fatal(err)
	}
	m3, got3, err := LoadEngine(bytes.NewReader(buf.Bytes()), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m3.Close()
	if got3.Seqs[3] != 7 || got3.Seqs[9] != 1 || len(got3.Seqs) != 2 {
		t.Fatalf("seqs did not round-trip: %v", got3.Seqs)
	}
}

// TestPartitionShapePersistsAndOverrides: the partition strategy is
// part of the persisted execution shape and overridable at load, like
// Shards and Parallelism.
func TestPartitionShapePersistsAndOverrides(t *testing.T) {
	model := corpus.WikipediaModel(500)
	model.DocLenMedian = 20
	qs, err := workload.Generate(model, workload.DefaultConfig(workload.Uniform, 30))
	if err != nil {
		t.Fatal(err)
	}
	defs := make([]core.QueryDef, len(qs))
	for i, q := range qs {
		defs[i] = core.QueryDef{Vec: q.Vec, K: q.K}
	}
	m, err := core.NewMonitor(core.Config{Parallelism: 2, Partition: core.PartitionCount}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	kept, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer kept.Close()
	if kept.Config().Partition != core.PartitionCount {
		t.Fatalf("persisted partition = %q", kept.Config().Partition)
	}
	// (Load has no shape parameter; the override path is LoadEngine's,
	// covered via ctk.ReadSnapshot in the engine tests.)
}
