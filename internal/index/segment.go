package index

import (
	"fmt"
	"math"

	"repro/internal/textproc"
)

// Segment is an appendable index generation: the delta segment of the
// generational query index. Where Build freezes a whole query set up
// front, a Segment starts empty and grows one query at a time in
// O(|q|) — appends assign the next query ID, so every posting lands at
// the tail of its term's list and ID ordering (the invariant the
// cursor algorithms rely on) is preserved for free. Together with the
// tombstones inherited from Index, a Segment supports the full churn
// cycle — add, match, remove — without ever rebuilding.
//
// Appends are not safe concurrently with matching; the monitor
// serializes them like any other mutation.
type Segment struct {
	*Index
}

// NewSegment returns an empty appendable segment. Segments always use
// the mapped (legacy) posting layout: per-term growable slices are the
// point of an appendable generation, while the flat layout is frozen at
// build time.
func NewSegment() *Segment {
	ix, err := BuildLayout(nil, nil, LayoutLegacy)
	if err != nil { // cannot happen for the empty query set
		panic(fmt.Sprintf("index: empty build failed: %v", err))
	}
	return &Segment{Index: ix}
}

// Append adds one query to the segment, assigning the next query ID.
// The vector must be sorted, validated and non-empty, and
// 1 ≤ k ≤ MaxK. Cost is O(|q|): one posting append per term, no
// rebuilding of existing state.
func (s *Segment) Append(v textproc.Vector, k int) (uint32, error) {
	if err := v.Validate(); err != nil {
		return 0, fmt.Errorf("index: append: %w", err)
	}
	if len(v) == 0 {
		return 0, fmt.Errorf("index: append: empty query")
	}
	if k < 1 || k > MaxK {
		return 0, fmt.Errorf("index: append: k=%d outside [1,%d]", k, MaxK)
	}
	if len(s.ks) >= math.MaxUint32 {
		return 0, fmt.Errorf("index: append: %d queries exhaust ID space", len(s.ks))
	}
	q := uint32(len(s.ks))
	s.ks = append(s.ks, uint16(k))
	for _, tw := range v {
		l := s.mappedList(tw.Term)
		// q is the largest ID ever assigned, so the tail append keeps
		// the list ID-ordered.
		l.P = append(l.P, Posting{QID: q, W: tw.Weight})
		s.terms = append(s.terms, tw.Term)
		s.weights = append(s.weights, tw.Weight)
		s.refs = append(s.refs, Ref{Slot: l.Slot, Pos: uint32(len(l.P) - 1)})
	}
	s.offsets = append(s.offsets, uint32(len(s.terms)))
	if s.dead != nil {
		s.dead = append(s.dead, false)
	}
	return q, nil
}
