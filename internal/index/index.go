// Package index implements the inverted file over continuous queries —
// the central data structure of the paper's Reverse ID-Ordering
// paradigm (Section III). Unlike a classic document index, the roles
// are reversed: the (relatively static) queries are indexed, and each
// streaming document probes the index.
//
// Every term t has a posting list of ⟨qID, w⟩ entries sorted by query
// ID, where w is the query's preference weight for t. ID ordering is
// what enables the WAND-style cursor "jumps" RIO and MRIO rely on.
//
// The index stores query vectors in flat arenas so that multi-million
// query workloads (the paper scales to 4·10⁶) remain cache- and
// GC-friendly: a handful of large slices instead of millions of small
// ones.
package index

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/textproc"
)

// Posting is one entry of a term's posting list.
type Posting struct {
	// QID is the query identifier; lists are sorted by QID.
	QID uint32
	// W is the query's preference weight for the list's term.
	W float64
}

// Ref locates one posting of a query: the term's list and the posting's
// position within it. Threshold updates use Refs to touch exactly the
// positions whose ratio w/S_k(q) changed.
type Ref struct {
	Term textproc.TermID
	Pos  uint32
}

// PostingList is one term's ID-ordered list.
type PostingList struct {
	Term textproc.TermID
	P    []Posting
}

// Len returns the number of postings.
func (l *PostingList) Len() int { return len(l.P) }

// Seek returns the smallest position ≥ from whose posting has QID ≥ id,
// or Len() when no such posting exists. It uses galloping (exponential)
// search, which makes short jumps O(1) and long jumps logarithmic —
// the access pattern of RIO/MRIO cursor advances.
func (l *PostingList) Seek(from int, id uint32) int {
	p := l.P
	n := len(p)
	if from >= n {
		return n
	}
	if p[from].QID >= id {
		return from
	}
	// Gallop: p[lo].QID < id; probe positions from+1, from+2, from+4...
	lo := from
	step := 1
	hi := from + step
	for hi < n && p[hi].QID < id {
		lo = hi
		step <<= 1
		hi = from + step
	}
	if hi > n {
		hi = n
	}
	// Binary search in (lo, hi]: first pos with QID ≥ id.
	return lo + 1 + sort.Search(hi-lo-1, func(i int) bool {
		return p[lo+1+i].QID >= id
	})
}

// Index is the structural part of the query index. Dynamic state
// (thresholds S_k(q), ratio maxima) belongs to the algorithms. The
// structure is immutable after Build except for two narrowly scoped
// mutations that support query churn: per-query tombstones (Tombstone
// marks a removed query so the match loops stop scoring it while its
// postings linger until the next generation build sweeps them), and
// incremental appends through the Segment wrapper (delta generations
// only).
type Index struct {
	lists map[textproc.TermID]*PostingList

	// Query arenas, indexed by query ID.
	offsets []uint32          // len = numQueries+1; query q owns terms[offsets[q]:offsets[q+1]]
	terms   []textproc.TermID // flat query terms (sorted within each query)
	weights []float64         // parallel to terms
	refs    []Ref             // parallel to terms: where each (q, term) posting lives
	ks      []uint16          // per-query k

	// dead marks tombstoned queries (lazily allocated: indexes that
	// never see a removal pay one nil check per candidate).
	dead      []bool
	deadCount int
}

// MaxK bounds per-query k; it exists only to keep the arena compact.
const MaxK = math.MaxUint16

// Build constructs the index. Queries are identified by position:
// query i has ID i. Each vector must be sorted, validated and
// non-empty, and 1 ≤ ks[i] ≤ MaxK; violations return an error naming
// the query.
func Build(vecs []textproc.Vector, ks []int) (*Index, error) {
	if len(vecs) != len(ks) {
		return nil, fmt.Errorf("index: %d vectors but %d k values", len(vecs), len(ks))
	}
	if len(vecs) > math.MaxUint32 {
		return nil, fmt.Errorf("index: %d queries exceed ID space", len(vecs))
	}
	ix := &Index{
		lists:   make(map[textproc.TermID]*PostingList),
		offsets: make([]uint32, 1, len(vecs)+1),
		ks:      make([]uint16, len(vecs)),
	}
	var total int
	for _, v := range vecs {
		total += len(v)
	}
	ix.terms = make([]textproc.TermID, 0, total)
	ix.weights = make([]float64, 0, total)
	ix.refs = make([]Ref, 0, total)

	for q, v := range vecs {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("index: query %d: %w", q, err)
		}
		if len(v) == 0 {
			return nil, fmt.Errorf("index: query %d is empty", q)
		}
		if ks[q] < 1 || ks[q] > MaxK {
			return nil, fmt.Errorf("index: query %d has k=%d outside [1,%d]", q, ks[q], MaxK)
		}
		ix.ks[q] = uint16(ks[q])
		for _, tw := range v {
			l := ix.lists[tw.Term]
			if l == nil {
				l = &PostingList{Term: tw.Term}
				ix.lists[tw.Term] = l
			}
			// Queries arrive in ID order, so appends keep lists sorted.
			l.P = append(l.P, Posting{QID: uint32(q), W: tw.Weight})
			ix.terms = append(ix.terms, tw.Term)
			ix.weights = append(ix.weights, tw.Weight)
			ix.refs = append(ix.refs, Ref{Term: tw.Term, Pos: uint32(len(l.P) - 1)})
		}
		ix.offsets = append(ix.offsets, uint32(len(ix.terms)))
	}
	return ix, nil
}

// NumQueries returns the number of indexed queries.
func (ix *Index) NumQueries() int { return len(ix.ks) }

// NumLists returns the number of posting lists (distinct terms).
func (ix *Index) NumLists() int { return len(ix.lists) }

// NumPostings returns the total posting count.
func (ix *Index) NumPostings() int { return len(ix.terms) }

// List returns the posting list for a term, or nil when no query uses
// the term.
func (ix *Index) List(t textproc.TermID) *PostingList { return ix.lists[t] }

// Lists calls fn for every posting list. Iteration order is
// unspecified.
func (ix *Index) Lists(fn func(*PostingList)) {
	for _, l := range ix.lists {
		fn(l)
	}
}

// K returns query q's result size.
func (ix *Index) K(q uint32) int { return int(ix.ks[q]) }

// Tombstone marks query q removed. Its postings stay in the lists
// (they still cost iteration and may widen pruning bounds — correct,
// merely unprofitable) but Dead lets the match loops skip scoring it,
// so a removed query stops matching immediately rather than at the
// next index rebuild. Idempotent. Not safe concurrently with matching.
func (ix *Index) Tombstone(q uint32) {
	if ix.dead == nil {
		ix.dead = make([]bool, len(ix.ks))
	}
	if !ix.dead[q] {
		ix.dead[q] = true
		ix.deadCount++
	}
}

// Dead reports whether query q is tombstoned.
func (ix *Index) Dead(q uint32) bool { return ix.dead != nil && ix.dead[q] }

// Tombstones returns the number of tombstoned queries.
func (ix *Index) Tombstones() int { return ix.deadCount }

// QueryTerms returns query q's terms and weights as sub-slices of the
// shared arenas. Callers must not mutate them.
func (ix *Index) QueryTerms(q uint32) ([]textproc.TermID, []float64) {
	lo, hi := ix.offsets[q], ix.offsets[q+1]
	return ix.terms[lo:hi], ix.weights[lo:hi]
}

// Refs returns the posting locations of query q, parallel to the slice
// returned by QueryTerms.
func (ix *Index) Refs(q uint32) []Ref {
	lo, hi := ix.offsets[q], ix.offsets[q+1]
	return ix.refs[lo:hi]
}

// Score computes the exact dot product of query q against a document
// probe. Queries are short, so this is a handful of hash probes.
func (ix *Index) Score(q uint32, doc *textproc.Probe) float64 {
	terms, weights := ix.QueryTerms(q)
	var s float64
	for i, t := range terms {
		s += weights[i] * doc.Weight(t)
	}
	return s
}

// Stats summarizes the index shape for reports.
type Stats struct {
	Queries  int
	Lists    int
	Postings int
	MaxList  int
	MeanList float64
}

// Stats computes index statistics.
func (ix *Index) Stats() Stats {
	st := Stats{Queries: ix.NumQueries(), Lists: ix.NumLists(), Postings: ix.NumPostings()}
	for _, l := range ix.lists {
		if l.Len() > st.MaxList {
			st.MaxList = l.Len()
		}
	}
	if st.Lists > 0 {
		st.MeanList = float64(st.Postings) / float64(st.Lists)
	}
	return st
}
