// Package index implements the inverted file over continuous queries —
// the central data structure of the paper's Reverse ID-Ordering
// paradigm (Section III). Unlike a classic document index, the roles
// are reversed: the (relatively static) queries are indexed, and each
// streaming document probes the index.
//
// Every term t has a posting list of ⟨qID, w⟩ entries sorted by query
// ID, where w is the query's preference weight for t. ID ordering is
// what enables the WAND-style cursor "jumps" RIO and MRIO rely on.
//
// The index stores query vectors in flat arenas so that multi-million
// query workloads (the paper scales to 4·10⁶) remain cache- and
// GC-friendly: a handful of large slices instead of millions of small
// ones. Since the flat-layout work, the posting lists themselves follow
// the same discipline: a frozen Build places every posting in one
// contiguous backing array with per-term spans and a sorted term table
// (LayoutFlat), while appendable segments and the legacy ablation
// control keep per-term heap slices behind a map (LayoutLegacy).
package index

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/textproc"
)

// Posting is one entry of a term's posting list.
type Posting struct {
	// QID is the query identifier; lists are sorted by QID.
	QID uint32
	// W is the query's preference weight for the list's term.
	W float64
}

// Ref locates one posting of a query: the slot of the term's list in
// the index's term table and the posting's position within the list.
// Threshold updates use Refs to touch exactly the positions whose
// ratio w/S_k(q) changed; slots let the algorithms keep their per-list
// bound state in plain slices instead of term-keyed maps.
type Ref struct {
	Slot uint32
	Pos  uint32
}

// PostingList is one term's ID-ordered list. Slot is the list's
// position in the owning index's term table (ListAt(Slot) returns this
// list).
type PostingList struct {
	Term textproc.TermID
	Slot uint32
	P    []Posting
}

// Len returns the number of postings.
func (l *PostingList) Len() int { return len(l.P) }

// Seek returns the smallest position ≥ from whose posting has QID ≥ id,
// or Len() when no such posting exists. It uses galloping (exponential)
// search, which makes short jumps O(1) and long jumps logarithmic —
// the access pattern of RIO/MRIO cursor advances.
func (l *PostingList) Seek(from int, id uint32) int {
	p := l.P
	n := len(p)
	if from >= n {
		return n
	}
	if p[from].QID >= id {
		return from
	}
	// Gallop: p[lo].QID < id; probe positions from+1, from+2, from+4...
	// The doubling is clamped before step or from+step could overflow
	// int — once the next probe would pass the end of the list the open
	// bound is simply the list length.
	lo := from
	step := 1
	hi := from + step
	for hi < n && p[hi].QID < id {
		lo = hi
		if step > (math.MaxInt-from)/2 {
			hi = n
			break
		}
		step <<= 1
		hi = from + step
	}
	if hi > n {
		hi = n
	}
	// Binary search in (lo, hi]: first pos with QID ≥ id.
	return lo + 1 + sort.Search(hi-lo-1, func(i int) bool {
		return p[lo+1+i].QID >= id
	})
}

// Layout selects how a built index stores its posting lists.
type Layout int

const (
	// LayoutFlat (the default) packs every posting into one contiguous
	// backing array with per-term spans, addressed through a sorted term
	// table — cache-friendly and allocation-light, but frozen at build
	// time.
	LayoutFlat Layout = iota
	// LayoutLegacy keeps one separately allocated, growable posting
	// slice per term behind a term map: the pre-flat representation.
	// Segments (which must grow) always use it; frozen builds accept it
	// as the ablation control for the hot-path benchmarks.
	LayoutLegacy
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutFlat:
		return "flat"
	case LayoutLegacy:
		return "legacy"
	default:
		return "unknown"
	}
}

// ParseLayout resolves a layout name ("flat", "legacy"; "" means flat).
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "flat":
		return LayoutFlat, nil
	case "legacy":
		return LayoutLegacy, nil
	default:
		return 0, fmt.Errorf("index: unknown layout %q", s)
	}
}

// Index is the structural part of the query index. Dynamic state
// (thresholds S_k(q), ratio maxima) belongs to the algorithms. The
// structure is immutable after Build except for two narrowly scoped
// mutations that support query churn: per-query tombstones (Tombstone
// marks a removed query so the match loops stop scoring it while its
// postings linger until the next generation build sweeps them), and
// incremental appends through the Segment wrapper (delta generations
// only; always LayoutLegacy).
type Index struct {
	flat bool
	// post is the flat layout's shared posting backing store; every
	// list's P is a span of it.
	post []Posting

	// Term table, indexed by slot: termKeys[s] == byslot[s].Term. Flat
	// indexes keep it sorted by term and additionally carry slotDense,
	// a direct TermID-indexed table (slot+1; 0 = absent) covering every
	// indexed term, so the per-document-term list lookup is one
	// unhashed array load — a term past the table's end is simply not
	// indexed; mapped ones assign slots in first-appearance order and
	// look terms up in lists.
	termKeys  []textproc.TermID
	slotDense []uint32
	byslot    []*PostingList
	lists     map[textproc.TermID]*PostingList // mapped layouts only

	// Query arenas, indexed by query ID.
	offsets []uint32          // len = numQueries+1; query q owns terms[offsets[q]:offsets[q+1]]
	terms   []textproc.TermID // flat query terms (sorted within each query)
	weights []float64         // parallel to terms
	refs    []Ref             // parallel to terms: where each (q, term) posting lives
	ks      []uint16          // per-query k

	// dead marks tombstoned queries (lazily allocated: indexes that
	// never see a removal pay one nil check per candidate).
	dead      []bool
	deadCount int
}

// MaxK bounds per-query k; it exists only to keep the arena compact.
const MaxK = math.MaxUint16

// Build constructs the index in the default flat layout. Queries are
// identified by position: query i has ID i. Each vector must be sorted,
// validated and non-empty, and 1 ≤ ks[i] ≤ MaxK; violations return an
// error naming the query.
func Build(vecs []textproc.Vector, ks []int) (*Index, error) {
	return BuildLayout(vecs, ks, LayoutFlat)
}

// BuildLayout constructs the index in the requested posting layout.
// See Build for the input contract.
func BuildLayout(vecs []textproc.Vector, ks []int, layout Layout) (*Index, error) {
	if len(vecs) != len(ks) {
		return nil, fmt.Errorf("index: %d vectors but %d k values", len(vecs), len(ks))
	}
	if len(vecs) > math.MaxUint32 {
		return nil, fmt.Errorf("index: %d queries exceed ID space", len(vecs))
	}
	ix := &Index{
		flat:    layout == LayoutFlat,
		offsets: make([]uint32, 1, len(vecs)+1),
		ks:      make([]uint16, len(vecs)),
	}
	// Validation pass; it also counts per-term postings so the flat
	// backing store can be laid out before any posting is written.
	var total int
	counts := make(map[textproc.TermID]uint32)
	for q, v := range vecs {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("index: query %d: %w", q, err)
		}
		if len(v) == 0 {
			return nil, fmt.Errorf("index: query %d is empty", q)
		}
		if ks[q] < 1 || ks[q] > MaxK {
			return nil, fmt.Errorf("index: query %d has k=%d outside [1,%d]", q, ks[q], MaxK)
		}
		ix.ks[q] = uint16(ks[q])
		total += len(v)
		for _, tw := range v {
			counts[tw.Term]++
		}
	}
	ix.terms = make([]textproc.TermID, 0, total)
	ix.weights = make([]float64, 0, total)
	ix.refs = make([]Ref, 0, total)

	if !ix.flat {
		ix.lists = make(map[textproc.TermID]*PostingList, len(counts))
		for q, v := range vecs {
			for _, tw := range v {
				l := ix.mappedList(tw.Term)
				// Queries arrive in ID order, so appends keep lists sorted.
				l.P = append(l.P, Posting{QID: uint32(q), W: tw.Weight})
				ix.terms = append(ix.terms, tw.Term)
				ix.weights = append(ix.weights, tw.Weight)
				ix.refs = append(ix.refs, Ref{Slot: l.Slot, Pos: uint32(len(l.P) - 1)})
			}
			ix.offsets = append(ix.offsets, uint32(len(ix.terms)))
		}
		return ix, nil
	}

	// Flat layout: sorted term table, prefix-summed spans over one
	// contiguous posting array, then a fill pass with per-term cursors.
	ix.termKeys = make([]textproc.TermID, 0, len(counts))
	for t := range counts {
		ix.termKeys = append(ix.termKeys, t)
	}
	slices.Sort(ix.termKeys)
	if n := len(ix.termKeys); n > 0 {
		ix.slotDense = make([]uint32, int(ix.termKeys[n-1])+1)
		for s, t := range ix.termKeys {
			ix.slotDense[t] = uint32(s) + 1
		}
	}
	ix.post = make([]Posting, total)
	views := make([]PostingList, len(ix.termKeys))
	ix.byslot = make([]*PostingList, len(ix.termKeys))
	next := make([]uint32, len(ix.termKeys))
	start := uint32(0)
	for s, t := range ix.termKeys {
		n := counts[t]
		views[s] = PostingList{Term: t, Slot: uint32(s), P: ix.post[start : start : start+n]}
		ix.byslot[s] = &views[s]
		next[s] = start
		start += n
	}
	for q, v := range vecs {
		for _, tw := range v {
			s, _ := slices.BinarySearch(ix.termKeys, tw.Term)
			l := ix.byslot[s]
			ix.post[next[s]] = Posting{QID: uint32(q), W: tw.Weight}
			l.P = l.P[:len(l.P)+1]
			ix.terms = append(ix.terms, tw.Term)
			ix.weights = append(ix.weights, tw.Weight)
			ix.refs = append(ix.refs, Ref{Slot: uint32(s), Pos: uint32(len(l.P) - 1)})
			next[s]++
		}
		ix.offsets = append(ix.offsets, uint32(len(ix.terms)))
	}
	return ix, nil
}

// mappedList returns (creating on demand) the mapped-layout list for t,
// assigning slots in first-appearance order.
func (ix *Index) mappedList(t textproc.TermID) *PostingList {
	l := ix.lists[t]
	if l == nil {
		l = &PostingList{Term: t, Slot: uint32(len(ix.byslot))}
		ix.lists[t] = l
		ix.byslot = append(ix.byslot, l)
		ix.termKeys = append(ix.termKeys, t)
	}
	return l
}

// Flat reports whether the index uses the contiguous posting layout.
func (ix *Index) Flat() bool { return ix.flat }

// NumQueries returns the number of indexed queries.
func (ix *Index) NumQueries() int { return len(ix.ks) }

// NumLists returns the number of posting lists (distinct terms).
func (ix *Index) NumLists() int { return len(ix.byslot) }

// NumPostings returns the total posting count.
func (ix *Index) NumPostings() int { return len(ix.terms) }

// List returns the posting list for a term, or nil when no query uses
// the term.
func (ix *Index) List(t textproc.TermID) *PostingList {
	if ix.flat {
		if int(t) < len(ix.slotDense) {
			if s := ix.slotDense[t]; s != 0 {
				return ix.byslot[s-1]
			}
		}
		return nil
	}
	return ix.lists[t]
}

// Slot returns the term-table slot of t, or -1 when no query uses the
// term. ListAt(Slot(t)) == List(t).
func (ix *Index) Slot(t textproc.TermID) int {
	if ix.flat {
		if int(t) < len(ix.slotDense) {
			if s := ix.slotDense[t]; s != 0 {
				return int(s) - 1
			}
		}
		return -1
	}
	if l := ix.lists[t]; l != nil {
		return int(l.Slot)
	}
	return -1
}

// ListAt returns the posting list at term-table slot s.
func (ix *Index) ListAt(s int) *PostingList { return ix.byslot[s] }

// Lists calls fn for every posting list in slot order.
func (ix *Index) Lists(fn func(*PostingList)) {
	for _, l := range ix.byslot {
		fn(l)
	}
}

// K returns query q's result size.
func (ix *Index) K(q uint32) int { return int(ix.ks[q]) }

// Tombstone marks query q removed. Its postings stay in the lists
// (they still cost iteration and may widen pruning bounds — correct,
// merely unprofitable) but Dead lets the match loops skip scoring it,
// so a removed query stops matching immediately rather than at the
// next index rebuild. Idempotent. Not safe concurrently with matching.
func (ix *Index) Tombstone(q uint32) {
	if ix.dead == nil {
		ix.dead = make([]bool, len(ix.ks))
	}
	if !ix.dead[q] {
		ix.dead[q] = true
		ix.deadCount++
	}
}

// Dead reports whether query q is tombstoned.
func (ix *Index) Dead(q uint32) bool { return ix.dead != nil && ix.dead[q] }

// Tombstones returns the number of tombstoned queries.
func (ix *Index) Tombstones() int { return ix.deadCount }

// QueryTerms returns query q's terms and weights as sub-slices of the
// shared arenas. Callers must not mutate them.
func (ix *Index) QueryTerms(q uint32) ([]textproc.TermID, []float64) {
	lo, hi := ix.offsets[q], ix.offsets[q+1]
	return ix.terms[lo:hi], ix.weights[lo:hi]
}

// Refs returns the posting locations of query q, parallel to the slice
// returned by QueryTerms.
func (ix *Index) Refs(q uint32) []Ref {
	lo, hi := ix.offsets[q], ix.offsets[q+1]
	return ix.refs[lo:hi]
}

// Score computes the exact dot product of query q against a document
// probe. Queries are short, so this is a handful of hash probes.
func (ix *Index) Score(q uint32, doc *textproc.Probe) float64 {
	terms, weights := ix.QueryTerms(q)
	var s float64
	for i, t := range terms {
		s += weights[i] * doc.Weight(t)
	}
	return s
}

// Stats summarizes the index shape for reports.
type Stats struct {
	Queries  int
	Lists    int
	Postings int
	MaxList  int
	MeanList float64
}

// Stats computes index statistics.
func (ix *Index) Stats() Stats {
	st := Stats{Queries: ix.NumQueries(), Lists: ix.NumLists(), Postings: ix.NumPostings()}
	for _, l := range ix.byslot {
		if l.Len() > st.MaxList {
			st.MaxList = l.Len()
		}
	}
	if st.Lists > 0 {
		st.MeanList = float64(st.Postings) / float64(st.Lists)
	}
	return st
}
