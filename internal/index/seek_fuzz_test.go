package index

import (
	"encoding/binary"
	"testing"
)

// FuzzSeek drives the galloping search with fuzzer-shaped lists and
// targets and checks it against the linear-scan oracle. The list is
// decoded from raw bytes as strictly positive QID gaps, so any input
// yields a valid (sorted, strictly increasing) posting list.
func FuzzSeek(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(0), uint32(9))
	f.Add([]byte{255, 255, 255, 255}, uint16(2), uint32(1<<31))
	f.Add([]byte{}, uint16(0), uint32(0))
	f.Add([]byte{1}, uint16(9), uint32(3))
	f.Fuzz(func(t *testing.T, gaps []byte, from16 uint16, target uint32) {
		if len(gaps) > 1<<12 {
			gaps = gaps[:1<<12]
		}
		l := &PostingList{}
		id := uint32(0)
		for i := 0; i+1 < len(gaps); i += 2 {
			gap := binary.LittleEndian.Uint16(gaps[i:])
			id += uint32(gap) + 1
			l.P = append(l.P, Posting{QID: id})
		}
		n := l.Len()
		from := int(from16)
		if n > 0 {
			from %= n + 2 // include from == n and from > n
		}
		got := l.Seek(from, target)
		want := from
		if want > n {
			want = n
		}
		for want < n && l.P[want].QID < target {
			want++
		}
		if got != want {
			t.Fatalf("Seek(%d, %d) over %d postings = %d, want %d", from, target, n, got, want)
		}
	})
}
