package index

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/textproc"
)

// costFixture generates n random sorted unit-ish vectors over a small
// Zipf-flavored vocabulary (low term IDs drawn far more often), so
// list lengths vary widely.
func costFixture(t *testing.T, n int, seed int64) ([]textproc.Vector, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 2, 199)
	vecs := make([]textproc.Vector, n)
	ks := make([]int, n)
	for i := range vecs {
		nTerms := 2 + rng.Intn(4)
		seen := map[textproc.TermID]struct{}{}
		var v textproc.Vector
		for len(v) < nTerms {
			term := textproc.TermID(zipf.Uint64())
			if _, dup := seen[term]; dup {
				continue
			}
			seen[term] = struct{}{}
			v = append(v, textproc.TermWeight{Term: term, Weight: 0.2 + 0.8*rng.Float64()})
		}
		sort.Slice(v, func(a, b int) bool { return v[a].Term < v[b].Term })
		v.Normalize()
		vecs[i] = v
		ks[i] = 1 + rng.Intn(5)
	}
	return vecs, ks
}

// TestQueryCostsHandVerified: posting mass is the summed lengths of
// the lists a query's terms appear in.
func TestQueryCostsHandVerified(t *testing.T) {
	vecs := []textproc.Vector{
		{{Term: 1, Weight: 0.6}, {Term: 2, Weight: 0.8}},                           // lists: |1|=2, |2|=3 → 5
		{{Term: 2, Weight: 1.0}},                                                   // |2|=3 → 3
		{{Term: 1, Weight: 0.5}, {Term: 2, Weight: 0.5}, {Term: 3, Weight: 0.707}}, // 2+3+1 → 6
	}
	ix, err := Build(vecs, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 6}
	for _, got := range [][]float64{ix.QueryCosts(), EstimateCosts(vecs)} {
		if len(got) != len(want) {
			t.Fatalf("costs = %v, want %v", got, want)
		}
		for q := range want {
			if got[q] != want[q] {
				t.Fatalf("cost[%d] = %v, want %v", q, got[q], want[q])
			}
		}
	}
}

// TestEstimateCostsMatchesBuiltIndex: the pre-build estimate the
// partitioner plans over must equal the built index's statistic on a
// non-trivial workload.
func TestEstimateCostsMatchesBuiltIndex(t *testing.T) {
	vecs, ks := costFixture(t, 300, 17)
	ix, err := Build(vecs, ks)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateCosts(vecs)
	built := ix.QueryCosts()
	for q := range est {
		if est[q] != built[q] {
			t.Fatalf("query %d: estimate %v, built %v", q, est[q], built[q])
		}
	}
	if len(est) == 0 || est[0] <= 0 {
		t.Fatal("degenerate fixture")
	}
}
