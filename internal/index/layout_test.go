package index

import (
	"math/rand"
	"testing"

	"repro/internal/textproc"
)

func randomQuerySet(seed int64, nq, nTerms int) ([]textproc.Vector, []int) {
	r := rand.New(rand.NewSource(seed))
	vecs := make([]textproc.Vector, nq)
	ks := make([]int, nq)
	for i := range vecs {
		m := map[textproc.TermID]float64{}
		for len(m) < 1+r.Intn(5) {
			m[textproc.TermID(r.Intn(nTerms))] = r.Float64() + 0.05
		}
		vecs[i] = textproc.FromCounts(m)
		ks[i] = 1 + r.Intn(10)
	}
	return vecs, ks
}

// TestLayoutEquivalence: the flat and legacy layouts must present the
// exact same logical index — same lists with identical postings, same
// query arenas, same slot↔list consistency — so algorithms built on
// either answer identically.
func TestLayoutEquivalence(t *testing.T) {
	vecs, ks := randomQuerySet(7, 500, 120)
	flat, err := BuildLayout(vecs, ks, LayoutFlat)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := BuildLayout(vecs, ks, LayoutLegacy)
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Flat() || legacy.Flat() {
		t.Fatalf("Flat() flags: flat=%v legacy=%v", flat.Flat(), legacy.Flat())
	}
	if flat.NumQueries() != legacy.NumQueries() || flat.NumLists() != legacy.NumLists() ||
		flat.NumPostings() != legacy.NumPostings() {
		t.Fatalf("shape mismatch: %+v vs %+v", flat.Stats(), legacy.Stats())
	}
	// Per-term lists identical, and slot plumbing self-consistent in
	// both layouts.
	for _, ix := range []*Index{flat, legacy} {
		for s := 0; s < ix.NumLists(); s++ {
			l := ix.ListAt(s)
			if int(l.Slot) != s {
				t.Fatalf("list at slot %d carries slot %d", s, l.Slot)
			}
			if ix.Slot(l.Term) != s || ix.List(l.Term) != l {
				t.Fatalf("slot lookup for term %d inconsistent", l.Term)
			}
		}
	}
	flat.Lists(func(fl *PostingList) {
		ll := legacy.List(fl.Term)
		if ll == nil || ll.Len() != fl.Len() {
			t.Fatalf("term %d: legacy list %+v vs flat %d postings", fl.Term, ll, fl.Len())
		}
		for i := range fl.P {
			if fl.P[i] != ll.P[i] {
				t.Fatalf("term %d posting %d: %+v vs %+v", fl.Term, i, fl.P[i], ll.P[i])
			}
		}
	})
	// Query arenas and ref resolution identical.
	for q := uint32(0); q < uint32(len(vecs)); q++ {
		ft, fw := flat.QueryTerms(q)
		lt, lw := legacy.QueryTerms(q)
		for i := range ft {
			if ft[i] != lt[i] || fw[i] != lw[i] {
				t.Fatalf("query %d term %d differs across layouts", q, i)
			}
		}
		fr, lr := flat.Refs(q), legacy.Refs(q)
		for i := range fr {
			fp := flat.ListAt(int(fr[i].Slot)).P[fr[i].Pos]
			lp := legacy.ListAt(int(lr[i].Slot)).P[lr[i].Pos]
			if fp != lp || fp.QID != q {
				t.Fatalf("query %d ref %d: %+v vs %+v", q, i, fp, lp)
			}
		}
	}
	// Cost model is layout-independent.
	fc, lc := flat.QueryCosts(), legacy.QueryCosts()
	ec := EstimateCosts(vecs)
	for q := range fc {
		if fc[q] != lc[q] || fc[q] != ec[q] {
			t.Fatalf("query %d costs: flat %v legacy %v estimated %v", q, fc[q], lc[q], ec[q])
		}
	}
}

// TestFlatBackingIsContiguous: the flat layout's promise — every list
// is a span of one shared array, in term-table order with no gaps.
func TestFlatBackingIsContiguous(t *testing.T) {
	vecs, ks := randomQuerySet(11, 200, 50)
	ix, err := BuildLayout(vecs, ks, LayoutFlat)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.post) != ix.NumPostings() {
		t.Fatalf("backing store holds %d postings, index reports %d", len(ix.post), ix.NumPostings())
	}
	off := 0
	prev := textproc.TermID(0)
	for s := 0; s < ix.NumLists(); s++ {
		l := ix.ListAt(s)
		if s > 0 && l.Term <= prev {
			t.Fatalf("term table not sorted at slot %d", s)
		}
		prev = l.Term
		if len(l.P) == 0 {
			t.Fatalf("slot %d has an empty list", s)
		}
		if &l.P[0] != &ix.post[off] {
			t.Fatalf("slot %d does not start at backing offset %d", s, off)
		}
		off += len(l.P)
	}
	if off != len(ix.post) {
		t.Fatalf("spans cover %d of %d postings", off, len(ix.post))
	}
}

func TestParseLayout(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Layout
	}{{"", LayoutFlat}, {"flat", LayoutFlat}, {"legacy", LayoutLegacy}} {
		got, err := ParseLayout(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseLayout(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseLayout("bogus"); err == nil {
		t.Fatal("bogus layout accepted")
	}
	if LayoutFlat.String() != "flat" || LayoutLegacy.String() != "legacy" {
		t.Fatal("layout names changed")
	}
}

// TestSeekNearOverflow exercises the gallop clamp with from positions
// where naive doubling of from+step would overflow quickly on a
// hypothetical huge list; on a real list it must simply clamp to the
// end without panicking or overshooting.
func TestSeekNearOverflow(t *testing.T) {
	l := &PostingList{}
	for i := 0; i < 1000; i++ {
		l.P = append(l.P, Posting{QID: uint32(i * 3)})
	}
	for from := 0; from < 1000; from += 37 {
		for _, target := range []uint32{0, 1, 1500, 2997, 2998, 1 << 31, ^uint32(0)} {
			got := l.Seek(from, target)
			want := from
			for want < 1000 && l.P[want].QID < target {
				want++
			}
			if got != want {
				t.Fatalf("Seek(%d, %d) = %d, want %d", from, target, got, want)
			}
		}
	}
}
