package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

func vec(tws ...textproc.TermWeight) textproc.Vector { return textproc.Vector(tws) }

func tw(t textproc.TermID, w float64) textproc.TermWeight {
	return textproc.TermWeight{Term: t, Weight: w}
}

func mustBuild(t *testing.T, vecs []textproc.Vector, ks []int) *Index {
	t.Helper()
	ix, err := Build(vecs, ks)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildBasic(t *testing.T) {
	ix := mustBuild(t,
		[]textproc.Vector{
			vec(tw(1, 0.6), tw(2, 0.8)),
			vec(tw(2, 1.0)),
			vec(tw(1, 1.0)),
		},
		[]int{10, 5, 1},
	)
	if ix.NumQueries() != 3 || ix.NumLists() != 2 || ix.NumPostings() != 4 {
		t.Fatalf("shape = %d queries, %d lists, %d postings",
			ix.NumQueries(), ix.NumLists(), ix.NumPostings())
	}
	l1 := ix.List(1)
	if l1 == nil || l1.Len() != 2 {
		t.Fatalf("list 1 = %+v", l1)
	}
	if l1.P[0].QID != 0 || l1.P[1].QID != 2 {
		t.Fatalf("list 1 not ID-ordered: %+v", l1.P)
	}
	if ix.List(99) != nil {
		t.Fatal("absent term returned a list")
	}
	if ix.K(0) != 10 || ix.K(2) != 1 {
		t.Fatal("K round-trip failed")
	}
}

func TestBuildErrors(t *testing.T) {
	valid := vec(tw(1, 0.5))
	cases := []struct {
		name string
		vecs []textproc.Vector
		ks   []int
	}{
		{"length mismatch", []textproc.Vector{valid}, []int{1, 2}},
		{"empty query", []textproc.Vector{{}}, []int{1}},
		{"unsorted query", []textproc.Vector{vec(tw(2, 1), tw(1, 1))}, []int{1}},
		{"k zero", []textproc.Vector{valid}, []int{0}},
		{"k too large", []textproc.Vector{valid}, []int{MaxK + 1}},
	}
	for _, c := range cases {
		if _, err := Build(c.vecs, c.ks); err == nil {
			t.Errorf("%s: Build succeeded", c.name)
		}
	}
}

func TestQueryTermsAndRefs(t *testing.T) {
	ix := mustBuild(t,
		[]textproc.Vector{
			vec(tw(3, 0.3), tw(7, 0.7)),
			vec(tw(3, 1.0)),
		},
		[]int{1, 1},
	)
	terms, weights := ix.QueryTerms(0)
	if len(terms) != 2 || terms[0] != 3 || terms[1] != 7 {
		t.Fatalf("terms = %v", terms)
	}
	if weights[0] != 0.3 || weights[1] != 0.7 {
		t.Fatalf("weights = %v", weights)
	}
	// Refs must point exactly at this query's postings.
	for q := uint32(0); q < 2; q++ {
		qt, qw := ix.QueryTerms(q)
		refs := ix.Refs(q)
		if len(refs) != len(qt) {
			t.Fatalf("query %d: %d refs for %d terms", q, len(refs), len(qt))
		}
		for i, r := range refs {
			l := ix.ListAt(int(r.Slot))
			p := l.P[r.Pos]
			if p.QID != q {
				t.Fatalf("query %d ref %d points at QID %d", q, i, p.QID)
			}
			if p.W != qw[i] {
				t.Fatalf("query %d ref %d weight %v != %v", q, i, p.W, qw[i])
			}
			if l.Term != qt[i] {
				t.Fatalf("query %d ref %d term %v != %v", q, i, l.Term, qt[i])
			}
		}
	}
}

func TestScore(t *testing.T) {
	ix := mustBuild(t, []textproc.Vector{vec(tw(1, 0.6), tw(2, 0.8))}, []int{1})
	doc := textproc.NewProbe(vec(tw(1, 0.5), tw(3, 0.5)))
	if got := ix.Score(0, doc); got != 0.3 {
		t.Fatalf("Score = %v, want 0.3", got)
	}
}

func TestSeekLinearEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		l := &PostingList{}
		id := uint32(0)
		for i := 0; i < n; i++ {
			id += uint32(1 + r.Intn(10))
			l.P = append(l.P, Posting{QID: id, W: 1})
		}
		for trial := 0; trial < 50; trial++ {
			from := r.Intn(n + 1)
			target := uint32(r.Intn(int(id) + 5))
			got := l.Seek(from, target)
			// Linear reference.
			want := from
			for want < n && l.P[want].QID < target {
				want++
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSeekEdgeCases(t *testing.T) {
	l := &PostingList{P: []Posting{{QID: 5}, {QID: 9}, {QID: 12}}}
	if got := l.Seek(0, 0); got != 0 {
		t.Fatalf("Seek(0,0) = %d", got)
	}
	if got := l.Seek(0, 5); got != 0 {
		t.Fatalf("Seek(0,5) = %d", got)
	}
	if got := l.Seek(0, 6); got != 1 {
		t.Fatalf("Seek(0,6) = %d", got)
	}
	if got := l.Seek(0, 13); got != 3 {
		t.Fatalf("Seek past end = %d", got)
	}
	if got := l.Seek(3, 1); got != 3 {
		t.Fatalf("Seek(from=len) = %d", got)
	}
	if got := l.Seek(2, 12); got != 2 {
		t.Fatalf("Seek(2,12) = %d", got)
	}
	empty := &PostingList{}
	if got := empty.Seek(0, 1); got != 0 {
		t.Fatalf("empty Seek = %d", got)
	}
}

func TestStats(t *testing.T) {
	ix := mustBuild(t,
		[]textproc.Vector{
			vec(tw(1, 1)),
			vec(tw(1, 1), tw(2, 1)),
		},
		[]int{1, 1},
	)
	st := ix.Stats()
	if st.Queries != 2 || st.Lists != 2 || st.Postings != 3 || st.MaxList != 2 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.MeanList != 1.5 {
		t.Fatalf("MeanList = %v", st.MeanList)
	}
}

func TestLargeBuildListOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const nq = 2000
	vecs := make([]textproc.Vector, nq)
	ks := make([]int, nq)
	for i := range vecs {
		m := map[textproc.TermID]float64{}
		for len(m) < 2+r.Intn(3) {
			m[textproc.TermID(r.Intn(100))] = r.Float64() + 0.1
		}
		vecs[i] = textproc.FromCounts(m)
		ks[i] = 1 + r.Intn(20)
	}
	ix := mustBuild(t, vecs, ks)
	ix.Lists(func(l *PostingList) {
		for i := 1; i < l.Len(); i++ {
			if l.P[i-1].QID >= l.P[i].QID {
				t.Fatalf("list %d not strictly ID-ordered at %d", l.Term, i)
			}
		}
	})
	if ix.NumPostings() == 0 {
		t.Fatal("no postings")
	}
}
