package index

import (
	"math/rand"
	"testing"

	"repro/internal/textproc"
)

func benchList(n int) *PostingList {
	l := &PostingList{}
	id := uint32(0)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		id += uint32(1 + r.Intn(8))
		l.P = append(l.P, Posting{QID: id, W: r.Float64()})
	}
	return l
}

func BenchmarkSeekShortJumps(b *testing.B) {
	l := benchList(100000)
	maxID := l.P[l.Len()-1].QID
	b.ResetTimer()
	pos, target := 0, uint32(0)
	for i := 0; i < b.N; i++ {
		target += 16
		if target >= maxID {
			pos, target = 0, 16
		}
		pos = l.Seek(pos, target)
	}
}

func BenchmarkSeekLongJumps(b *testing.B) {
	l := benchList(100000)
	maxID := l.P[l.Len()-1].QID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Seek(0, uint32(i*7919)%maxID)
	}
}

func BenchmarkScore(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	vecs := make([]textproc.Vector, 1000)
	ks := make([]int, 1000)
	for i := range vecs {
		m := map[textproc.TermID]float64{}
		for len(m) < 3 {
			m[textproc.TermID(r.Intn(500))] = r.Float64() + 0.1
		}
		vecs[i] = textproc.FromCounts(m)
		ks[i] = 10
	}
	ix, err := Build(vecs, ks)
	if err != nil {
		b.Fatal(err)
	}
	doc := make(map[textproc.TermID]float64)
	for len(doc) < 80 {
		doc[textproc.TermID(r.Intn(500))] = r.Float64()
	}
	probe := textproc.NewProbe(textproc.FromCounts(doc))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Score(uint32(i%1000), probe)
	}
}
