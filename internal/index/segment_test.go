package index

import (
	"testing"

	"repro/internal/textproc"
)

// TestSegmentAppendMatchesBuild: appending queries one at a time must
// reproduce exactly the structure Build freezes up front — same lists,
// same ID ordering, same arenas — since the matching algorithms walk
// both the same way.
func TestSegmentAppendMatchesBuild(t *testing.T) {
	vecs := []textproc.Vector{
		vec(tw(1, 0.6), tw(2, 0.8)),
		vec(tw(2, 1.0)),
		vec(tw(1, 0.3), tw(3, 0.7), tw(5, 0.2)),
		vec(tw(3, 1.0)),
		vec(tw(1, 1.0)),
	}
	ks := []int{10, 5, 1, 7, 2}
	want := mustBuild(t, vecs, ks)

	s := NewSegment()
	for i, v := range vecs {
		q, err := s.Append(v, ks[i])
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if q != uint32(i) {
			t.Fatalf("append %d assigned ID %d", i, q)
		}
	}
	if s.NumQueries() != want.NumQueries() || s.NumLists() != want.NumLists() || s.NumPostings() != want.NumPostings() {
		t.Fatalf("shape: %d/%d/%d vs %d/%d/%d", s.NumQueries(), s.NumLists(), s.NumPostings(),
			want.NumQueries(), want.NumLists(), want.NumPostings())
	}
	want.Lists(func(wl *PostingList) {
		gl := s.List(wl.Term)
		if gl == nil || gl.Len() != wl.Len() {
			t.Fatalf("list %d: %+v vs %+v", wl.Term, gl, wl)
		}
		for i := range wl.P {
			if gl.P[i] != wl.P[i] {
				t.Fatalf("list %d posting %d: %+v vs %+v", wl.Term, i, gl.P[i], wl.P[i])
			}
		}
	})
	for q := uint32(0); q < uint32(len(vecs)); q++ {
		if s.K(q) != want.K(q) {
			t.Fatalf("query %d k: %d vs %d", q, s.K(q), want.K(q))
		}
		gt, gw := s.QueryTerms(q)
		wt, ww := want.QueryTerms(q)
		if len(gt) != len(wt) {
			t.Fatalf("query %d terms: %v vs %v", q, gt, wt)
		}
		for i := range wt {
			if gt[i] != wt[i] || gw[i] != ww[i] {
				t.Fatalf("query %d term %d differs", q, i)
			}
		}
		// Slot numbering differs between layouts (sorted term table vs
		// first-appearance order), so refs are compared by what they
		// resolve to, not by raw slot values.
		gr, wr := s.Refs(q), want.Refs(q)
		for i := range wr {
			gl, wl := s.ListAt(int(gr[i].Slot)), want.ListAt(int(wr[i].Slot))
			if gl.Term != wl.Term || gl.P[gr[i].Pos] != wl.P[wr[i].Pos] {
				t.Fatalf("query %d ref %d resolves to (%d,%+v) vs (%d,%+v)",
					q, i, gl.Term, gl.P[gr[i].Pos], wl.Term, wl.P[wr[i].Pos])
			}
		}
	}
}

// TestSegmentAppendValidation: invalid input is rejected without
// mutating the segment.
func TestSegmentAppendValidation(t *testing.T) {
	s := NewSegment()
	if _, err := s.Append(nil, 5); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := s.Append(vec(tw(2, 0.5), tw(1, 0.5)), 5); err == nil {
		t.Fatal("unsorted query accepted")
	}
	if _, err := s.Append(vec(tw(1, 1.0)), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := s.Append(vec(tw(1, 1.0)), MaxK+1); err == nil {
		t.Fatal("oversized k accepted")
	}
	if s.NumQueries() != 0 || s.NumPostings() != 0 {
		t.Fatalf("failed appends mutated the segment: %d queries, %d postings",
			s.NumQueries(), s.NumPostings())
	}
}

// TestTombstones: tombstoned queries report Dead, the count tracks,
// and appends after a tombstone keep the bitmap aligned.
func TestTombstones(t *testing.T) {
	s := NewSegment()
	for i := 0; i < 3; i++ {
		if _, err := s.Append(vec(tw(textproc.TermID(i+1), 1.0)), 2); err != nil {
			t.Fatal(err)
		}
	}
	if s.Dead(0) || s.Dead(2) || s.Tombstones() != 0 {
		t.Fatal("fresh segment has tombstones")
	}
	s.Tombstone(1)
	s.Tombstone(1) // idempotent
	if !s.Dead(1) || s.Dead(0) || s.Dead(2) || s.Tombstones() != 1 {
		t.Fatalf("tombstone state: dead=%v/%v/%v count=%d", s.Dead(0), s.Dead(1), s.Dead(2), s.Tombstones())
	}
	q, err := s.Append(vec(tw(9, 1.0)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dead(q) {
		t.Fatal("freshly appended query born dead")
	}
	s.Tombstone(q)
	if !s.Dead(q) || s.Tombstones() != 2 {
		t.Fatal("tombstone after growth failed")
	}
}
