package index

import "repro/internal/textproc"

// Per-query cost statistics.
//
// A stream event's matching cost is dominated by posting-list
// traversal: every term the document shares with the index forces a
// cursor walk over that term's list, and how much of the walk a query
// is responsible for is proportional to the lengths of the lists its
// terms appear in. A query's "posting mass" — the summed lengths of
// the posting lists containing its postings — is therefore a cheap,
// build-time-derivable estimate of the per-event work the query
// contributes, and is what the cost-balanced partitioner equalizes
// across intra-shard partitions.

// QueryCosts returns each query's posting mass: for query q, the sum
// over its terms t of the length of t's posting list. Derived from the
// built lists in one pass over the term arena.
func (ix *Index) QueryCosts() []float64 {
	costs := make([]float64, ix.NumQueries())
	for q := range costs {
		var c float64
		terms, _ := ix.QueryTerms(uint32(q))
		for _, t := range terms {
			c += float64(ix.List(t).Len())
		}
		costs[q] = c
	}
	return costs
}

// EstimateCosts computes the same posting-mass statistic directly from
// raw query vectors, without building an index: one histogram pass
// counts how many queries use each term (exactly that term's eventual
// posting-list length), a second charges each query the summed counts
// of its terms. The partitioner uses it to plan boundaries before the
// per-partition sub-indexes exist; EstimateCosts(vecs) equals
// Build(vecs, ks).QueryCosts() by construction.
func EstimateCosts(vecs []textproc.Vector) []float64 {
	freq := make(map[textproc.TermID]int)
	for _, v := range vecs {
		for _, tw := range v {
			freq[tw.Term]++
		}
	}
	costs := make([]float64, len(vecs))
	for q, v := range vecs {
		var c float64
		for _, tw := range v {
			c += float64(freq[tw.Term])
		}
		costs[q] = c
	}
	return costs
}
