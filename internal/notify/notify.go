// Package notify is the push-delivery broker between the matching
// kernel and streaming clients: a per-query subscription registry with
// bounded, coalescing per-subscriber buffers.
//
// The publisher (the engine's ingestion path) is assumed serialized;
// subscriber churn (Subscribe/Cancel) and delivery-channel reads are
// fully concurrent with publishing and with each other. Delivery never
// blocks the publisher: when a subscriber's buffer is full, its oldest
// buffered update is dropped in favour of the newest, so a slow
// subscriber always observes the *latest* state, never a stale
// backlog. Drops are observable — every topic carries a monotonically
// increasing sequence number, stamped into each update, so a gap in
// received sequence numbers is exactly a coalesced delivery.
package notify

import (
	"errors"
	"sync"

	"repro/internal/obs"
)

// ErrClosed reports a subscription on a closed broker.
var ErrClosed = errors.New("notify: broker is closed")

// ErrNoTopic reports a subscription to an explicitly closed topic.
var ErrNoTopic = errors.New("notify: topic is closed")

// DefaultBuffer is the per-subscriber buffer used when Subscribe is
// called with buf ≤ 0: capacity 1, i.e. pure latest-value coalescing.
const DefaultBuffer = 1

// Broker routes updates of type T from one serialized publisher to
// any number of per-topic subscribers. Topics are keyed by query ID.
type Broker[T any] struct {
	mu     sync.Mutex
	topics map[uint32]*topic[T]
	closed bool

	// ins is the broker's optional metric set. Set once via
	// SetInstruments before the broker is shared (the engine wires it
	// at construction); the nil-safe obs handles make the zero value
	// inert, so delivery paths record unconditionally.
	ins Instruments
}

// Instruments is the broker's optional metric set (see SetInstruments).
type Instruments struct {
	// Updates counts sequence bumps: one per changed query per publish.
	Updates *obs.Counter
	// Deliveries counts updates handed to subscriber buffers.
	Deliveries *obs.Counter
	// Drops counts buffered updates coalesced away because a
	// subscriber's buffer was full — the broker's backpressure signal.
	Drops *obs.Counter
}

// SetInstruments attaches metrics to the broker. Call before the
// broker is shared across goroutines; later calls race with delivery.
func (b *Broker[T]) SetInstruments(ins Instruments) {
	b.mu.Lock()
	b.ins = ins
	b.mu.Unlock()
}

// Counts reports the broker's current shape: topics with live state
// and attached subscriptions.
func (b *Broker[T]) Counts() (topics, subscribers int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, tp := range b.topics {
		subscribers += len(tp.subs)
	}
	return len(b.topics), subscribers
}

// topic is one query's delivery state: its change sequence and the
// current subscriber set. A topic outlives its subscribers — the
// sequence number must keep counting between watchers.
type topic[T any] struct {
	seq  uint64
	gone bool // query unregistered; no new subscriptions
	subs map[*Subscription[T]]struct{}
}

// Subscription is one subscriber's handle: a bounded delivery channel
// plus cancellation.
type Subscription[T any] struct {
	b  *Broker[T]
	id uint32
	ch chan T

	// mu orders delivery against close: a push never races the channel
	// close in Cancel/Close.
	mu     sync.Mutex
	closed bool
}

// New returns an empty broker.
func New[T any]() *Broker[T] {
	return &Broker[T]{topics: make(map[uint32]*topic[T])}
}

func (b *Broker[T]) topicLocked(id uint32) *topic[T] {
	tp := b.topics[id]
	if tp == nil {
		tp = &topic[T]{subs: make(map[*Subscription[T]]struct{})}
		b.topics[id] = tp
	}
	return tp
}

// Subscribe attaches a subscriber to id's topic with a delivery buffer
// of buf updates (buf ≤ 0 uses DefaultBuffer). The returned
// subscription's channel is closed when the subscription is canceled,
// the topic is closed (query unregistered) or the broker shuts down.
func (b *Broker[T]) Subscribe(id uint32, buf int) (*Subscription[T], error) {
	if buf <= 0 {
		buf = DefaultBuffer
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	tp := b.topicLocked(id)
	if tp.gone {
		return nil, ErrNoTopic
	}
	s := &Subscription[T]{b: b, id: id, ch: make(chan T, buf)}
	tp.subs[s] = struct{}{}
	return s, nil
}

// C returns the subscription's delivery channel.
func (s *Subscription[T]) C() <-chan T { return s.ch }

// Cancel detaches the subscription and closes its channel. Idempotent
// and safe concurrently with publishing.
func (s *Subscription[T]) Cancel() {
	s.b.mu.Lock()
	if tp := s.b.topics[s.id]; tp != nil {
		delete(tp.subs, s)
	}
	s.b.mu.Unlock()
	s.shut()
}

// shut closes the delivery channel once. The subscription must already
// be detached from its topic (or the whole broker closed), so no
// publisher can reach it.
func (s *Subscription[T]) shut() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.ch)
}

// Prime delivers u directly to this subscription, bypassing the
// topic's sequence counter. The engine uses it to seed a fresh watcher
// with the current snapshot at the current sequence number; the caller
// must ensure no Publish runs concurrently (the engine's read lock
// excludes the publish path).
func (s *Subscription[T]) Prime(u T) { s.push(u) }

// push delivers u, coalescing on overflow: the oldest buffered update
// is dropped until the newest fits. Pushes must be externally
// serialized (Publish holds b.mu; Prime relies on the caller); the
// loop terminates because the receiver only ever removes elements.
func (s *Subscription[T]) push(u T) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for {
		select {
		case s.ch <- u:
			s.b.ins.Deliveries.Inc()
			return
		default:
		}
		select {
		case <-s.ch: // drop the stalest buffered update
			s.b.ins.Drops.Inc()
		default:
		}
	}
}

// Publish advances id's sequence number and, when the topic currently
// has subscribers, delivers build(seq) to each of them. build runs at
// most once per call and only if there is at least one subscriber, so
// publishing to an unwatched query costs one map lookup and an
// increment. Returns the new sequence number (0 when the broker is
// closed or the topic gone).
func (b *Broker[T]) Publish(id uint32, build func(seq uint64) T) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0
	}
	tp := b.topicLocked(id)
	if tp.gone {
		return 0
	}
	tp.seq++
	b.ins.Updates.Inc()
	if len(tp.subs) > 0 {
		u := build(tp.seq)
		for s := range tp.subs {
			s.push(u)
		}
	}
	return tp.seq
}

// Seqs returns every live topic's current sequence number, omitting
// topics still at zero and topics closed by CloseTopic (their queries
// are unregistered — persisting them would let dead-query counters
// accumulate without bound across snapshot/restart cycles). Engine
// snapshots persist the map so that Seq-based drop detection — a
// watcher comparing the Seq of consecutive updates — keeps working
// across a server restart instead of silently restarting every
// counter at zero.
func (b *Broker[T]) Seqs() map[uint32]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[uint32]uint64, len(b.topics))
	for id, tp := range b.topics {
		if tp.seq > 0 && !tp.gone {
			out[id] = tp.seq
		}
	}
	return out
}

// RestoreSeqs seeds topic sequence numbers from a snapshot. Intended
// for a freshly built broker before any Subscribe or Publish; topics
// that already exist are overwritten.
func (b *Broker[T]) RestoreSeqs(seqs map[uint32]uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, seq := range seqs {
		b.topicLocked(id).seq = seq
	}
}

// Seq returns id's current sequence number: the count of times the
// query's top-k has changed since the broker was created (or since
// the stream the broker was restored from began, after RestoreSeqs).
func (b *Broker[T]) Seq(id uint32) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if tp := b.topics[id]; tp != nil {
		return tp.seq
	}
	return 0
}

// Subscribers returns id's current subscriber count.
func (b *Broker[T]) Subscribers(id uint32) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if tp := b.topics[id]; tp != nil {
		return len(tp.subs)
	}
	return 0
}

// CloseTopic permanently shuts id's topic: every current subscriber's
// channel is closed and future Subscribe/Publish calls for id fail.
// The engine calls this when the query is unregistered, so watchers
// observe end-of-stream rather than silence.
func (b *Broker[T]) CloseTopic(id uint32) {
	b.mu.Lock()
	tp := b.topics[id]
	var subs []*Subscription[T]
	if tp != nil {
		tp.gone = true
		for s := range tp.subs {
			subs = append(subs, s)
		}
		clear(tp.subs)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.shut()
	}
}

// Close shuts the broker down: every subscriber's channel is closed
// and future Subscribe calls fail. Publish becomes a no-op. Idempotent.
func (b *Broker[T]) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var subs []*Subscription[T]
	for _, tp := range b.topics {
		for s := range tp.subs {
			subs = append(subs, s)
		}
		clear(tp.subs)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.shut()
	}
}
