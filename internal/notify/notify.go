// Package notify is the push-delivery broker between the matching
// kernel and streaming clients: a sharded, asynchronous fan-out tier
// with per-query subscriptions behind bounded, coalescing buffers.
//
// Topics are hashed onto a power-of-two set of shards. Each shard owns
// its slice of the topic registry behind its own lock and runs one
// dedicated drain goroutine fed by a bounded intake ring. Publish is
// the ingestion hot path and does the minimum possible: stamp the
// topic's next sequence number, enqueue a change record (at most one
// per topic — re-publishing an already-queued topic only bumps the
// sequence), wake the shard's drain, return. It never allocates and
// never touches a subscriber. The drain side materializes the update
// once per queued topic (build-once, deliver-many) through the
// broker's Materializer and hands it to every subscriber's buffer.
//
// Delivery never blocks the publisher: when a subscriber's buffer is
// full, its oldest buffered update is dropped in favour of the newest,
// so a slow subscriber always observes the *latest* state, never a
// stale backlog. Intake coalescing (several sequence bumps collapsing
// into one materialized delivery), buffer drops and subscriber-side
// filters are all observable the same way — every topic carries a
// monotonically increasing sequence number, stamped into each update,
// so a gap in received sequence numbers is exactly the set of states
// the subscriber skipped. A subscriber never receives the same
// sequence number twice and never receives sequence numbers out of
// order.
package notify

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrClosed reports a subscription on a closed broker.
var ErrClosed = errors.New("notify: broker is closed")

// ErrNoTopic reports a subscription to an explicitly closed topic.
var ErrNoTopic = errors.New("notify: topic is closed")

// DefaultBuffer is the per-subscriber buffer used when Subscribe is
// called with buf ≤ 0: capacity 1, i.e. pure latest-value coalescing.
const DefaultBuffer = 1

// DefaultRing is the per-shard intake ring capacity used when
// Options.Ring ≤ 0. The ring holds at most one record per topic, so
// overflow only means more topics changed between drain passes than
// the ring holds — the shard then falls back to a sweep of its topic
// registry, and no change is ever lost.
const DefaultRing = 1024

// Materializer builds the current update payload for a topic, called
// on the drain side once per queued topic (build-once, deliver-many).
// It must return the payload together with the topic's sequence number
// as one consistent pair — the engine reads both under its lock — and
// ok=false when the topic's query no longer exists.
type Materializer[T any] func(id uint32) (u T, seq uint64, ok bool)

// Options configures a Broker.
type Options[T any] struct {
	// Shards is the number of broker shards, rounded up to a power of
	// two; ≤ 0 picks a GOMAXPROCS-scaled default.
	Shards int
	// Ring is the per-shard intake ring capacity (≤ 0 uses
	// DefaultRing).
	Ring int
	// Materialize builds update payloads on the drain side. Required.
	Materialize Materializer[T]
}

// SubOptions configures one subscription.
type SubOptions[T any] struct {
	// Buffer is the delivery channel capacity (≤ 0 uses DefaultBuffer).
	Buffer int
	// MinInterval, when > 0, rate-limits delivery: after an update is
	// handed to the buffer, further updates are parked until the
	// interval elapses, then the *latest* state is materialized and
	// delivered once. Skipped intermediates appear as sequence gaps.
	MinInterval time.Duration
	// Filter, when non-nil, runs on the drain side before delivery:
	// prev is the last payload handed to this subscriber, next the
	// candidate. Returning false suppresses the delivery (counted in
	// Instruments.Filtered and observable as a sequence gap). The
	// first delivery after Subscribe/Prime always passes.
	Filter func(prev, next T) bool
}

// Instruments is the broker's optional metric set (see SetInstruments).
type Instruments struct {
	// Updates counts sequence bumps: one per changed query per publish.
	Updates *obs.Counter
	// Deliveries counts updates handed to subscriber buffers.
	Deliveries *obs.Counter
	// Drops counts buffered updates coalesced away because a
	// subscriber's buffer was full — the broker's backpressure signal.
	Drops *obs.Counter
	// Filtered counts deliveries suppressed by per-subscriber filters.
	Filtered *obs.Counter
	// DrainLatency is the publish→handed-to-buffer latency, observed
	// once per materialized topic update.
	DrainLatency *obs.Histogram
}

// Broker routes updates of type T from publishers to any number of
// per-topic subscribers. Topics are keyed by query ID and hashed onto
// shards; all methods are safe for concurrent use.
type Broker[T any] struct {
	shards []*shard[T]
	mask   uint32
	mat    Materializer[T]
	wg     sync.WaitGroup
	closed atomic.Bool

	// O(1) Counts: topics counts topic objects ever created (topics
	// outlive CloseTopic so their sequence survives churn), subs the
	// currently attached subscriptions.
	topicCount atomic.Int64
	subCount   atomic.Int64

	// ins is the broker's optional metric set. Set once via
	// SetInstruments before the first Publish/Subscribe (the engine
	// wires it at construction); the nil-safe obs handles make the
	// zero value inert, so delivery paths record unconditionally.
	ins Instruments
}

// shard is one lock domain: a slice of the topic registry, its intake
// ring and the drain goroutine's parking state.
type shard[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond // signaled when the shard goes idle (Flush)
	topics map[uint32]*topic[T]

	// Bounded intake ring of changed-topic hints. Publish enqueues at
	// most one hint per topic (the queued flag dedupes); on overflow
	// the flag is set and the drain sweeps the registry instead, so a
	// full ring degrades to O(topics) discovery, never to loss.
	ring     []uint32
	head     int
	count    int
	overflow bool
	sweep    []uint32

	// queued counts topics currently marked queued; busy is true while
	// the drain is processing popped work. Flush waits on both.
	queued int
	busy   bool

	wake chan struct{}
	stop chan struct{}

	// deferred parks MinInterval subscribers until their deadline; due
	// and scratch are drain-side reusable slices.
	deferred map[*Subscription[T]]time.Time
	due      []*Subscription[T]
	scratch  []*Subscription[T]
}

// topic is one query's delivery state: its change sequence and the
// current subscriber set. A topic outlives its subscribers — the
// sequence number must keep counting between watchers.
type topic[T any] struct {
	seq      uint64
	gone     bool // query unregistered; no new subscriptions
	queued   bool // a change record is in the shard's intake
	queuedAt time.Time
	subs     map[*Subscription[T]]struct{}
}

// Subscription is one subscriber's handle: a bounded delivery channel
// plus cancellation.
type Subscription[T any] struct {
	b           *Broker[T]
	sh          *shard[T]
	id          uint32
	ch          chan T
	minInterval time.Duration
	filter      func(prev, next T) bool

	// mu orders delivery against close and serializes the drain's
	// pushes with Prime.
	mu        sync.Mutex
	closed    bool
	delivered bool      // something was pushed; lastSeq is meaningful
	lastSeq   uint64    // highest sequence handed to the buffer
	lastPush  time.Time // when (MinInterval clock)
	prev      T         // last delivered payload (kept only for Filter)
	hasPrev   bool
}

// New returns a broker with default sharding. The materializer is
// required — the drain tier cannot deliver without it.
func New[T any](mat Materializer[T]) *Broker[T] {
	return NewWith(Options[T]{Materialize: mat})
}

// NewWith returns a broker configured by o and starts one drain
// goroutine per shard. Call Close to stop them.
func NewWith[T any](o Options[T]) *Broker[T] {
	if o.Materialize == nil {
		panic("notify: Options.Materialize is required")
	}
	n := o.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n = ceilPow2(n)
	ring := o.Ring
	if ring <= 0 {
		ring = DefaultRing
	}
	b := &Broker[T]{
		shards: make([]*shard[T], n),
		mask:   uint32(n - 1),
		mat:    o.Materialize,
	}
	for i := range b.shards {
		sh := &shard[T]{
			topics:   make(map[uint32]*topic[T]),
			ring:     make([]uint32, ring),
			wake:     make(chan struct{}, 1),
			stop:     make(chan struct{}),
			deferred: make(map[*Subscription[T]]time.Time),
		}
		sh.cond = sync.NewCond(&sh.mu)
		b.shards[i] = sh
		b.wg.Add(1)
		go b.drain(sh)
	}
	return b
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shard maps a topic ID onto its owning shard. IDs are small dense
// integers, so they are scrambled first — otherwise consecutive query
// IDs would stride the shard set in lockstep.
func (b *Broker[T]) shard(id uint32) *shard[T] {
	h := id * 2654435761 // Knuth multiplicative hash
	h ^= h >> 16
	return b.shards[h&b.mask]
}

// NumShards returns the broker's shard count (a power of two).
func (b *Broker[T]) NumShards() int { return len(b.shards) }

// QueueDepth returns the number of changed topics awaiting drain in
// shard i.
func (b *Broker[T]) QueueDepth(i int) int {
	sh := b.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.queued
}

// SetInstruments attaches metrics to the broker. Call before the
// broker's first Publish or Subscribe; later calls race with delivery.
func (b *Broker[T]) SetInstruments(ins Instruments) { b.ins = ins }

// Counts reports the broker's current shape: topics with live state
// and attached subscriptions. O(1) — both are maintained counters, so
// a metrics scrape never contends with publish or churn.
func (b *Broker[T]) Counts() (topics, subscribers int) {
	return int(b.topicCount.Load()), int(b.subCount.Load())
}

func (sh *shard[T]) topicLocked(b *Broker[T], id uint32) *topic[T] {
	tp := sh.topics[id]
	if tp == nil {
		tp = &topic[T]{subs: make(map[*Subscription[T]]struct{})}
		sh.topics[id] = tp
		b.topicCount.Add(1)
	}
	return tp
}

// Subscribe attaches a subscriber to id's topic with a delivery buffer
// of buf updates (buf ≤ 0 uses DefaultBuffer). The returned
// subscription's channel is closed when the subscription is canceled,
// the topic is closed (query unregistered) or the broker shuts down.
func (b *Broker[T]) Subscribe(id uint32, buf int) (*Subscription[T], error) {
	return b.SubscribeOpts(id, SubOptions[T]{Buffer: buf})
}

// SubscribeOpts attaches a subscriber with delivery options: buffer
// size, a minimum delivery interval, and a drain-side filter.
func (b *Broker[T]) SubscribeOpts(id uint32, o SubOptions[T]) (*Subscription[T], error) {
	buf := o.Buffer
	if buf <= 0 {
		buf = DefaultBuffer
	}
	sh := b.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if b.closed.Load() {
		return nil, ErrClosed
	}
	tp := sh.topicLocked(b, id)
	if tp.gone {
		return nil, ErrNoTopic
	}
	s := &Subscription[T]{
		b:           b,
		sh:          sh,
		id:          id,
		ch:          make(chan T, buf),
		minInterval: o.MinInterval,
		filter:      o.Filter,
	}
	tp.subs[s] = struct{}{}
	b.subCount.Add(1)
	return s, nil
}

// C returns the subscription's delivery channel.
func (s *Subscription[T]) C() <-chan T { return s.ch }

// Cancel detaches the subscription and closes its channel. Idempotent
// and safe concurrently with publishing and draining.
func (s *Subscription[T]) Cancel() {
	sh := s.sh
	sh.mu.Lock()
	if tp := sh.topics[s.id]; tp != nil {
		if _, ok := tp.subs[s]; ok {
			delete(tp.subs, s)
			s.b.subCount.Add(-1)
		}
	}
	delete(sh.deferred, s)
	sh.mu.Unlock()
	s.shut()
}

// shut closes the delivery channel once. The subscription must already
// be detached from its topic (or the whole broker closed); the drain
// may still hold a stale reference, but its pushes check closed under
// s.mu, so no update can follow the close.
func (s *Subscription[T]) shut() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.ch)
}

// Prime delivers u directly to this subscription at sequence number
// seq, bypassing the drain tier. The engine uses it to seed a fresh
// watcher with the current snapshot under its read lock; seq feeds the
// same per-subscriber dedup the drain uses, so a concurrently drained
// update with the same sequence number is delivered exactly once.
func (s *Subscription[T]) Prime(u T, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || (s.delivered && seq <= s.lastSeq) {
		return
	}
	s.pushLocked(u, seq, time.Now())
}

// pushLocked hands u to the delivery channel, coalescing on overflow:
// the oldest buffered update is dropped until the newest fits. Caller
// holds s.mu; the loop terminates because the receiver only ever
// removes elements.
func (s *Subscription[T]) pushLocked(u T, seq uint64, now time.Time) {
	for {
		select {
		case s.ch <- u:
			s.b.ins.Deliveries.Inc()
			s.delivered = true
			s.lastSeq = seq
			s.lastPush = now
			if s.filter != nil {
				s.prev, s.hasPrev = u, true
			}
			return
		default:
		}
		select {
		case <-s.ch: // drop the stalest buffered update
			s.b.ins.Drops.Inc()
		default:
		}
	}
}

// Publish advances id's sequence number and, when the topic currently
// has subscribers, enqueues a change record for the shard's drain
// goroutine — it never builds a payload and never touches a
// subscriber, so fan-out cost stays off the publish hot path. The
// enqueue is allocation-free: a re-publish of an already-queued topic
// only bumps the sequence (the drain materializes the latest state
// anyway), and publishing to an unwatched query costs one map lookup
// and an increment. Returns the new sequence number (0 when the broker
// is closed or the topic gone).
func (b *Broker[T]) Publish(id uint32) uint64 {
	if b.closed.Load() {
		return 0
	}
	sh := b.shard(id)
	sh.mu.Lock()
	tp := sh.topicLocked(b, id)
	if tp.gone {
		sh.mu.Unlock()
		return 0
	}
	tp.seq++
	seq := tp.seq
	wake := false
	if len(tp.subs) > 0 && !tp.queued {
		tp.queued = true
		tp.queuedAt = time.Now()
		sh.queued++
		if sh.count < len(sh.ring) {
			sh.ring[(sh.head+sh.count)%len(sh.ring)] = id
			sh.count++
		} else {
			sh.overflow = true
		}
		wake = true
	}
	sh.mu.Unlock()
	b.ins.Updates.Inc()
	if wake {
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
	return seq
}

// drain is one shard's delivery goroutine: it parks until woken by a
// publish (or a MinInterval deadline), then drains the shard's intake.
func (b *Broker[T]) drain(sh *shard[T]) {
	defer b.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-sh.stop:
			return
		case <-sh.wake:
		case <-timer.C:
		}
		b.drainPass(sh, timer)
	}
}

// drainPass serves the shard's intake until it is idle: pop a queued
// topic, materialize its current state once, hand it to every
// subscriber; when the intake is empty, release parked MinInterval
// subscribers whose deadline passed, then re-arm the interval timer
// and return to parking.
func (b *Broker[T]) drainPass(sh *shard[T], timer *time.Timer) {
	for {
		sh.mu.Lock()
		id, at, tp, ok := sh.popLocked()
		if ok {
			sh.busy = true
			sh.scratch = sh.scratch[:0]
			for s := range tp.subs {
				sh.scratch = append(sh.scratch, s)
			}
			subs := sh.scratch
			sh.mu.Unlock()
			if len(subs) > 0 {
				b.deliverTopic(sh, id, subs, at)
			}
			continue
		}
		now := time.Now()
		sh.due = sh.due[:0]
		var next time.Time
		for s, dl := range sh.deferred {
			if !dl.After(now) {
				sh.due = append(sh.due, s)
				delete(sh.deferred, s)
			} else if next.IsZero() || dl.Before(next) {
				next = dl
			}
		}
		if len(sh.due) > 0 {
			due := sh.due
			sh.mu.Unlock()
			for _, s := range due {
				if u, seq, ok := b.mat(s.id); ok {
					b.deliverSub(sh, s, u, seq, time.Now())
				}
			}
			continue
		}
		sh.busy = false
		if sh.queued == 0 {
			sh.cond.Broadcast()
		}
		sh.mu.Unlock()
		// Re-arm the interval timer outside the lock; only this
		// goroutine touches it, so the stop-drain-reset dance is safe.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if !next.IsZero() {
			timer.Reset(time.Until(next))
		}
		return
	}
}

// popLocked takes the next queued topic off the intake: ring first,
// then the overflow sweep (rebuilt from the registry when the ring
// overflowed). Entries are hints — a topic already served or closed is
// skipped — and the queued flag is cleared *before* materialization,
// so a publish landing mid-delivery re-queues the topic rather than
// being lost.
func (sh *shard[T]) popLocked() (id uint32, at time.Time, tp *topic[T], ok bool) {
	for {
		switch {
		case sh.count > 0:
			id = sh.ring[sh.head]
			sh.head = (sh.head + 1) % len(sh.ring)
			sh.count--
		case len(sh.sweep) > 0:
			id = sh.sweep[len(sh.sweep)-1]
			sh.sweep = sh.sweep[:len(sh.sweep)-1]
		case sh.overflow:
			sh.overflow = false
			for tid, t := range sh.topics {
				if t.queued {
					sh.sweep = append(sh.sweep, tid)
				}
			}
			continue
		default:
			return 0, time.Time{}, nil, false
		}
		t := sh.topics[id]
		if t == nil || !t.queued {
			continue // stale hint
		}
		t.queued = false
		sh.queued--
		return id, t.queuedAt, t, true
	}
}

// deliverTopic materializes id's current state once and hands it to
// every captured subscriber (build-once, deliver-many).
func (b *Broker[T]) deliverTopic(sh *shard[T], id uint32, subs []*Subscription[T], queuedAt time.Time) {
	u, seq, ok := b.mat(id)
	if !ok {
		return
	}
	now := time.Now()
	b.ins.DrainLatency.ObserveDuration(now.Sub(queuedAt))
	for _, s := range subs {
		b.deliverSub(sh, s, u, seq, now)
	}
}

// deliverSub applies the subscriber's dedup, interval and filter
// policies, then pushes. Every suppression leaves lastSeq behind the
// topic sequence (dedup skips) or consumes it (filter), so the next
// delivered update exposes the gap.
func (b *Broker[T]) deliverSub(sh *shard[T], s *Subscription[T], u T, seq uint64, now time.Time) {
	s.mu.Lock()
	if s.closed || (s.delivered && seq <= s.lastSeq) {
		s.mu.Unlock()
		return
	}
	if s.minInterval > 0 && s.delivered {
		if wait := s.minInterval - now.Sub(s.lastPush); wait > 0 {
			deadline := now.Add(wait)
			s.mu.Unlock()
			// Park until the interval elapses; the drain re-materializes
			// the latest state at the deadline. Lock order is sh.mu
			// before s.mu broker-wide, so release s.mu first.
			sh.mu.Lock()
			if _, parked := sh.deferred[s]; !parked {
				sh.deferred[s] = deadline
			}
			sh.mu.Unlock()
			select {
			case sh.wake <- struct{}{}:
			default:
			}
			return
		}
	}
	if s.filter != nil && s.hasPrev && !s.filter(s.prev, u) {
		// Consumed but suppressed: the skip shows up as a sequence gap.
		s.lastSeq = seq
		s.mu.Unlock()
		b.ins.Filtered.Inc()
		return
	}
	s.pushLocked(u, seq, now)
	s.mu.Unlock()
}

// Flush blocks until every shard's intake is drained and handed to
// subscriber buffers. MinInterval-parked deliveries are intentionally
// not waited for (their deadline may be arbitrarily far away). The
// caller must not hold locks the Materializer needs. No-op on a
// closed broker.
func (b *Broker[T]) Flush() {
	if b.closed.Load() {
		return
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		for (sh.queued > 0 || sh.busy) && !b.closed.Load() {
			sh.cond.Wait()
		}
		sh.mu.Unlock()
	}
}

// Seqs returns every live topic's current sequence number, omitting
// topics still at zero and topics closed by CloseTopic (their queries
// are unregistered — persisting them would let dead-query counters
// accumulate without bound across snapshot/restart cycles). Engine
// snapshots persist the map so that Seq-based drop detection — a
// watcher comparing the Seq of consecutive updates — keeps working
// across a server restart instead of silently restarting every
// counter at zero. The engine calls it under its lock, which excludes
// publishes, so the map is one consistent cut across the shard set.
func (b *Broker[T]) Seqs() map[uint32]uint64 {
	out := make(map[uint32]uint64)
	for _, sh := range b.shards {
		sh.mu.Lock()
		for id, tp := range sh.topics {
			if tp.seq > 0 && !tp.gone {
				out[id] = tp.seq
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// RestoreSeqs seeds topic sequence numbers from a snapshot. Intended
// for a freshly built broker before any Subscribe or Publish; topics
// that already exist are overwritten.
func (b *Broker[T]) RestoreSeqs(seqs map[uint32]uint64) {
	for id, seq := range seqs {
		sh := b.shard(id)
		sh.mu.Lock()
		sh.topicLocked(b, id).seq = seq
		sh.mu.Unlock()
	}
}

// Seq returns id's current sequence number: the count of times the
// query's top-k has changed since the broker was created (or since
// the stream the broker was restored from began, after RestoreSeqs).
func (b *Broker[T]) Seq(id uint32) uint64 {
	sh := b.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if tp := sh.topics[id]; tp != nil {
		return tp.seq
	}
	return 0
}

// Subscribers returns id's current subscriber count.
func (b *Broker[T]) Subscribers(id uint32) int {
	sh := b.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if tp := sh.topics[id]; tp != nil {
		return len(tp.subs)
	}
	return 0
}

// CloseTopic permanently shuts id's topic: every current subscriber's
// channel is closed and future Subscribe/Publish calls for id fail.
// The engine calls this when the query is unregistered, so watchers
// observe end-of-stream rather than silence. A change record still in
// the intake is discarded — there is no one left to deliver to, and
// the materializer could no longer build the payload anyway.
func (b *Broker[T]) CloseTopic(id uint32) {
	sh := b.shard(id)
	sh.mu.Lock()
	tp := sh.topics[id]
	var subs []*Subscription[T]
	if tp != nil {
		tp.gone = true
		if tp.queued {
			tp.queued = false
			sh.queued--
			if sh.queued == 0 && !sh.busy {
				sh.cond.Broadcast()
			}
		}
		for s := range tp.subs {
			subs = append(subs, s)
			delete(sh.deferred, s)
		}
		clear(tp.subs)
		b.subCount.Add(-int64(len(subs)))
	}
	sh.mu.Unlock()
	for _, s := range subs {
		s.shut()
	}
}

// Close shuts the broker down: the drain goroutines stop (after
// finishing any in-flight pass), every subscriber's channel is closed
// and future Subscribe calls fail. Publish becomes a no-op. Updates
// still in the intake are discarded — call Flush first to drain them.
// Idempotent.
func (b *Broker[T]) Close() {
	if !b.closed.CompareAndSwap(false, true) {
		return
	}
	for _, sh := range b.shards {
		close(sh.stop)
	}
	b.wg.Wait()
	var subs []*Subscription[T]
	for _, sh := range b.shards {
		sh.mu.Lock()
		for _, tp := range sh.topics {
			for s := range tp.subs {
				subs = append(subs, s)
			}
			clear(tp.subs)
		}
		clear(sh.deferred)
		// Unblock any Flush waiting on this shard.
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	b.subCount.Add(-int64(len(subs)))
	for _, s := range subs {
		s.shut()
	}
}
