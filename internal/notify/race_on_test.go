//go:build race

package notify

// raceEnabled reports whether this test binary was built with the race
// detector; allocation gates skip under it (instrumentation allocates).
const raceEnabled = true
