package notify

import (
	"testing"
)

// BenchmarkNotifyPublishUnwatched measures the per-changed-query cost
// the ingestion path pays for queries nobody watches: one lock, one
// map lookup, one increment.
func BenchmarkNotifyPublishUnwatched(b *testing.B) {
	br := New[int]()
	build := func(seq uint64) int { return int(seq) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br.Publish(uint32(i%1024), build)
	}
}

// BenchmarkNotifyPublishWatched measures delivery to a subscriber that
// never reads — the coalescing (drop-oldest) fast path a slow client
// exercises.
func BenchmarkNotifyPublishWatched(b *testing.B) {
	br := New[int]()
	s, err := br.Subscribe(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Cancel()
	build := func(seq uint64) int { return int(seq) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br.Publish(1, build)
	}
}

// BenchmarkNotifyFanout measures one publish delivered to 64
// subscribers of the same topic.
func BenchmarkNotifyFanout(b *testing.B) {
	br := New[int]()
	for i := 0; i < 64; i++ {
		s, err := br.Subscribe(1, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Cancel()
	}
	build := func(seq uint64) int { return int(seq) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br.Publish(1, build)
	}
}

// BenchmarkNotifyChurn measures the subscribe/cancel cycle itself.
func BenchmarkNotifyChurn(b *testing.B) {
	br := New[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := br.Subscribe(uint32(i%64), 1)
		if err != nil {
			b.Fatal(err)
		}
		s.Cancel()
	}
}
