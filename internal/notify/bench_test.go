package notify

import (
	"testing"
)

func benchBroker(shards int) *Broker[int] {
	return NewWith(Options[int]{
		Shards:      shards,
		Materialize: func(id uint32) (int, uint64, bool) { return int(id), 1, true },
	})
}

// BenchmarkNotifyPublishUnwatched measures the per-changed-query cost
// the ingestion path pays for queries nobody watches: one shard lock,
// one map lookup, one increment — no enqueue, no wake.
func BenchmarkNotifyPublishUnwatched(b *testing.B) {
	br := benchBroker(0)
	defer br.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br.Publish(uint32(i % 1024))
	}
}

// BenchmarkNotifyPublishWatched measures the full enqueue path with a
// subscriber attached: seq stamp, queued-flag dedup, intake ring, wake
// channel. Delivery happens on the shard's drain goroutine; this
// reports only the cost the publisher pays.
func BenchmarkNotifyPublishWatched(b *testing.B) {
	br := benchBroker(0)
	defer br.Close()
	s, err := br.Subscribe(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Cancel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br.Publish(1)
	}
}

// BenchmarkNotifyFanout measures the publisher-side cost of a topic
// with 64 subscribers. With the async drain the enqueue is identical
// to the single-subscriber case — fan-out cost moved off the publish
// path entirely; the drain keeps up concurrently.
func BenchmarkNotifyFanout(b *testing.B) {
	br := benchBroker(0)
	defer br.Close()
	for i := 0; i < 64; i++ {
		s, err := br.Subscribe(1, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Cancel()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br.Publish(1)
	}
}

// BenchmarkNotifyChurn measures the subscribe/cancel cycle itself.
func BenchmarkNotifyChurn(b *testing.B) {
	br := benchBroker(0)
	defer br.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := br.Subscribe(uint32(i%64), 1)
		if err != nil {
			b.Fatal(err)
		}
		s.Cancel()
	}
}
