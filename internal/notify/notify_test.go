package notify

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type upd struct {
	Seq uint64
	Val int
}

// testBroker wraps a Broker with a materializer that returns the
// current value of vals[id] stamped with the topic's live sequence
// number — the same consistent (payload, seq) pair the engine produces
// under its lock. set(id, v) records a new value and publishes the
// change. Lock order is tb.mu before shard locks everywhere (set
// releases tb.mu before Publish; the materializer nests Seq inside
// tb.mu), mirroring the engine's e.mu-before-shard invariant.
type testBroker struct {
	*Broker[upd]
	mu   sync.Mutex
	vals map[uint32]int
}

func newTestBroker(t testing.TB, shards int) *testBroker {
	t.Helper()
	tb := &testBroker{vals: map[uint32]int{}}
	tb.Broker = NewWith(Options[upd]{
		Shards: shards,
		Materialize: func(id uint32) (upd, uint64, bool) {
			tb.mu.Lock()
			defer tb.mu.Unlock()
			v, ok := tb.vals[id]
			if !ok {
				return upd{}, 0, false
			}
			seq := tb.Seq(id)
			return upd{Seq: seq, Val: v}, seq, true
		},
	})
	t.Cleanup(tb.Close)
	return tb
}

func (tb *testBroker) set(id uint32, v int) uint64 {
	tb.mu.Lock()
	tb.vals[id] = v
	tb.mu.Unlock()
	return tb.Publish(id)
}

// TestPublishSubscribe: the basic path — sequence numbers count every
// publish, subscribers receive stamped updates once the drain runs.
func TestPublishSubscribe(t *testing.T) {
	b := newTestBroker(t, 1)
	if seq := b.set(7, 41); seq != 1 {
		t.Fatalf("first publish seq = %d, want 1", seq)
	}
	b.Flush() // no subscribers: nothing queued, returns immediately
	s, err := b.Subscribe(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Subscribers(7); got != 1 {
		t.Fatalf("Subscribers = %d", got)
	}
	if seq := b.set(7, 42); seq != 2 {
		t.Fatalf("second publish seq = %d, want 2", seq)
	}
	b.Flush()
	u := <-s.C()
	if u.Seq != 2 || u.Val != 42 {
		t.Fatalf("received %+v", u)
	}
	if b.Seq(7) != 2 || b.Seq(8) != 0 {
		t.Fatalf("Seq = %d / %d", b.Seq(7), b.Seq(8))
	}
	s.Cancel()
	s.Cancel() // idempotent
	if _, ok := <-s.C(); ok {
		t.Fatal("channel open after cancel")
	}
	if got := b.Subscribers(7); got != 0 {
		t.Fatalf("Subscribers after cancel = %d", got)
	}
}

// TestCoalescing: a subscriber that never reads keeps only the newest
// state; the sequence numbers expose the gap. With the async drain a
// publish burst may collapse into a single materialized delivery —
// every skipped intermediate is a gap, never a reorder or a duplicate.
func TestCoalescing(t *testing.T) {
	b := newTestBroker(t, 1)
	s, err := b.Subscribe(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 50; v++ {
		b.set(1, v)
	}
	b.Flush()
	var last upd
	for {
		select {
		case u := <-s.C():
			if u.Seq <= last.Seq {
				t.Fatalf("seq not increasing: %d after %d", u.Seq, last.Seq)
			}
			last = u
			continue
		default:
		}
		break
	}
	if last.Seq != 50 || last.Val != 50 {
		t.Fatalf("converged to %+v, want seq 50 val 50", last)
	}
}

// TestPrime: a primed snapshot arrives first and feeds the same dedup
// as drained deliveries, so a stale re-prime is suppressed.
func TestPrime(t *testing.T) {
	b := newTestBroker(t, 1)
	b.set(3, 7) // seq 1, nobody listening
	s, _ := b.Subscribe(3, 2)
	s.Prime(upd{Seq: b.Seq(3), Val: 99}, b.Seq(3))
	b.set(3, 1)
	b.Flush()
	u1, u2 := <-s.C(), <-s.C()
	if u1.Seq != 1 || u1.Val != 99 {
		t.Fatalf("primed update = %+v", u1)
	}
	if u2.Seq != 2 || u2.Val != 1 {
		t.Fatalf("published update = %+v", u2)
	}
	// A re-primed stale snapshot must not be delivered again.
	s.Prime(upd{Seq: 2, Val: 1}, 2)
	select {
	case u := <-s.C():
		t.Fatalf("stale prime delivered: %+v", u)
	default:
	}
}

// TestSeqGapProperty is the no-silent-loss / no-duplicate gate: under
// a concurrent publish burst with tiny buffers — and, for one of the
// subscribers, a drain-side filter — every subscriber observes
// strictly increasing sequence numbers (every coalesced or filtered
// update is a visible gap) and the unfiltered subscriber converges to
// the topic's final state once the intake is flushed.
func TestSeqGapProperty(t *testing.T) {
	b := newTestBroker(t, 2)
	plain, err := b.Subscribe(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	evens, err := b.SubscribeOpts(9, SubOptions[upd]{
		Buffer: 2,
		Filter: func(prev, next upd) bool { return next.Val%2 == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}

	collect := func(s *Subscription[upd]) chan []upd {
		out := make(chan []upd, 1)
		go func() {
			var got []upd
			for u := range s.C() {
				got = append(got, u)
			}
			out <- got
		}()
		return out
	}
	plainOut, evensOut := collect(plain), collect(evens)

	const N = 400
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < N/4; i++ {
				b.set(9, w*N+i)
			}
		}(w)
	}
	wg.Wait()
	b.Flush()
	finalSeq := b.Seq(9)
	if finalSeq != N {
		t.Fatalf("topic seq = %d, want %d", finalSeq, N)
	}
	b.Close() // ends both streams; collectors return what was delivered

	check := func(name string, got []upd, wantFinal, wantEven bool) {
		if len(got) == 0 {
			t.Fatalf("%s: no deliveries", name)
		}
		last := uint64(0)
		for i, u := range got {
			if u.Seq <= last {
				t.Fatalf("%s: duplicate or reordered seq %d after %d", name, u.Seq, last)
			}
			if u.Seq > finalSeq {
				t.Fatalf("%s: seq %d beyond topic seq %d", name, u.Seq, finalSeq)
			}
			// The first delivery always passes the filter; the rest must
			// satisfy it.
			if wantEven && i > 0 && u.Val%2 != 0 {
				t.Fatalf("%s: filter leaked odd value %+v", name, u)
			}
			last = u.Seq
		}
		if wantFinal && last != finalSeq {
			t.Fatalf("%s: converged to seq %d, want final %d (silent loss)", name, last, finalSeq)
		}
	}
	check("plain", <-plainOut, true, false)
	check("evens", <-evensOut, false, true)
}

// TestMinInterval: a rate-limited subscriber gets the first update
// immediately, then a burst is parked and the *latest* state arrives
// once the interval elapses — skipped intermediates appear as a
// sequence gap.
func TestMinInterval(t *testing.T) {
	b := newTestBroker(t, 1)
	s, err := b.SubscribeOpts(4, SubOptions[upd]{Buffer: 8, MinInterval: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b.set(4, 1)
	b.Flush()
	u := <-s.C()
	if u.Seq != 1 {
		t.Fatalf("first update seq = %d", u.Seq)
	}
	for v := 2; v <= 5; v++ {
		b.set(4, v)
	}
	b.Flush() // hands the burst to the drain; the subscriber parks
	select {
	case u := <-s.C():
		t.Fatalf("update %+v delivered inside the interval", u)
	case <-time.After(20 * time.Millisecond):
	}
	select {
	case u = <-s.C():
	case <-time.After(2 * time.Second):
		t.Fatal("parked update never delivered")
	}
	if u.Seq != 5 || u.Val != 5 {
		t.Fatalf("deferred delivery = %+v, want the latest state (seq 5)", u)
	}
}

// TestCloseTopic: closing a topic ends every watcher's stream and
// rejects new subscriptions and publishes; a change record still in
// the intake is dropped without wedging Flush.
func TestCloseTopic(t *testing.T) {
	b := newTestBroker(t, 1)
	s, _ := b.Subscribe(5, 1)
	b.set(5, 1)
	b.CloseTopic(5)
	for range s.C() {
		// Drain whatever raced in before the close; the channel must
		// close either way.
	}
	if _, err := b.Subscribe(5, 1); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("Subscribe on closed topic: %v", err)
	}
	if seq := b.set(5, 2); seq != 0 {
		t.Fatalf("Publish on closed topic seq = %d", seq)
	}
	s.Cancel() // still safe after topic close
	b.Flush()  // a dropped pending record must not wedge Flush
}

// TestBrokerClose: Close ends every stream, further subscribes fail,
// publishes no-op. Idempotent.
func TestBrokerClose(t *testing.T) {
	b := newTestBroker(t, 2)
	s1, _ := b.Subscribe(1, 1)
	s2, _ := b.Subscribe(2, 1)
	b.Close()
	b.Close()
	for _, s := range []*Subscription[upd]{s1, s2} {
		if _, ok := <-s.C(); ok {
			t.Fatal("channel open after broker close")
		}
	}
	if _, err := b.Subscribe(1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after close: %v", err)
	}
	if seq := b.set(1, 1); seq != 0 {
		t.Fatalf("Publish after close seq = %d", seq)
	}
	s1.Cancel() // safe after close
	b.Flush()   // no-op after close
}

// TestCounts: the O(1) shape counters track topic creation and
// subscriber churn, including detach via CloseTopic and Close.
func TestCounts(t *testing.T) {
	b := newTestBroker(t, 4)
	b.set(1, 1)
	b.set(2, 1)
	s1, _ := b.Subscribe(1, 1)
	s2, _ := b.Subscribe(1, 1)
	s3, _ := b.Subscribe(3, 1) // creates topic 3
	if topics, subs := b.Counts(); topics != 3 || subs != 3 {
		t.Fatalf("Counts = %d topics, %d subs; want 3, 3", topics, subs)
	}
	s1.Cancel()
	s1.Cancel() // idempotent: must not double-decrement
	if _, subs := b.Counts(); subs != 2 {
		t.Fatalf("subs after cancel = %d, want 2", subs)
	}
	b.CloseTopic(1)
	if topics, subs := b.Counts(); topics != 3 || subs != 1 {
		t.Fatalf("Counts after CloseTopic = %d topics, %d subs; want 3, 1", topics, subs)
	}
	s2.Cancel() // already detached by CloseTopic
	if _, subs := b.Counts(); subs != 1 {
		t.Fatalf("subs after redundant cancel = %d, want 1", subs)
	}
	_ = s3
	b.Close()
	if _, subs := b.Counts(); subs != 0 {
		t.Fatalf("subs after Close = %d, want 0", subs)
	}
}

// TestChurnHammer is the race gate for the sharded drain tier:
// concurrent publishers across many topics, subscriber
// Cancel/Subscribe churn, a rotating CloseTopic, and slow readers —
// all at once, across shards. Every subscription must observe strictly
// increasing sequence numbers. Run under -race in CI.
func TestChurnHammer(t *testing.T) {
	b := newTestBroker(t, 4)
	const topics = 32
	const churnTopics = 8 // topics 24..31 get closed mid-run
	stop := make(chan struct{})
	var pubs atomic.Uint64

	var pubWG sync.WaitGroup
	for p := 0; p < 2; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			v := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				b.set(uint32(rng.Intn(topics)), v)
				pubs.Add(1)
				v++
				// Yield so churn workers make progress on a single core.
				runtime.Gosched()
			}
		}(p)
	}

	var closeWG sync.WaitGroup
	closeWG.Add(1)
	go func() {
		defer closeWG.Done()
		for i := 0; i < churnTopics; i++ {
			time.Sleep(2 * time.Millisecond)
			b.CloseTopic(uint32(topics - churnTopics + i))
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := uint32((w + i) % topics)
				s, err := b.Subscribe(id, 1+i%3)
				if err != nil {
					if errors.Is(err, ErrNoTopic) {
						continue // closed by the closer: expected
					}
					t.Error(err)
					return
				}
				last := uint64(0)
				reads := i % 4 // some subscribers never read: pure churn
				for r := 0; r < reads; r++ {
					select {
					case u, ok := <-s.C():
						if !ok {
							r = reads // topic closed mid-read: fine
							continue
						}
						if u.Seq <= last {
							t.Errorf("seq not increasing: %d after %d", u.Seq, last)
							return
						}
						last = u.Seq
					case <-time.After(5 * time.Second):
						t.Error("starved subscriber")
						return
					}
				}
				s.Cancel()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pubWG.Wait()
	closeWG.Wait()
	if pubs.Load() == 0 {
		t.Fatal("publishers never ran")
	}
	b.Flush()
	b.Close()
	if _, subs := b.Counts(); subs != 0 {
		t.Fatalf("leaked %d subscriber counts through the churn", subs)
	}
}

// TestSeqsDumpRestore: the persistence surface behind engine
// snapshots — Seqs omits zero and gone topics, RestoreSeqs resumes
// counting where the dump left off across the shard set (including a
// different shard count: sequence state is shard-layout independent),
// and a restored topic's next publish continues the sequence.
func TestSeqsDumpRestore(t *testing.T) {
	b := newTestBroker(t, 4)
	for i := 1; i <= 5; i++ {
		b.set(7, i)
	}
	b.set(9, 1)
	b.Seq(11) // touched but never published: must not be dumped
	b.set(13, 1)
	b.CloseTopic(13) // gone topics must not be dumped either
	b.Flush()
	dump := b.Seqs()
	if len(dump) != 2 || dump[7] != 5 || dump[9] != 1 {
		t.Fatalf("Seqs = %v", dump)
	}

	fresh := newTestBroker(t, 2)
	fresh.RestoreSeqs(dump)
	if fresh.Seq(7) != 5 || fresh.Seq(9) != 1 || fresh.Seq(11) != 0 {
		t.Fatalf("restored seqs: %d %d %d", fresh.Seq(7), fresh.Seq(9), fresh.Seq(11))
	}
	if got := fresh.set(7, 6); got != 6 {
		t.Fatalf("publish after restore: seq %d, want 6", got)
	}
	sub, err := fresh.Subscribe(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	fresh.set(7, 7)
	fresh.Flush()
	if u := <-sub.C(); u.Seq != 7 {
		t.Fatalf("delivered seq %d, want 7", u.Seq)
	}
	sub.Cancel()
	fresh.RestoreSeqs(nil) // no-op
}

// TestPublishEnqueueZeroAlloc pins the publish hot path with the
// enqueue live: a subscriber is attached and the drain is held inside
// the materializer, so the measured publishes exercise the real
// enqueue path (queued-flag dedup, intake ring, wake channel) without
// drain-side work polluting the measurement. The path must allocate
// nothing.
func TestPublishEnqueueZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the gate runs in the non-race pass")
	}
	gate := make(chan struct{})
	br := NewWith(Options[int]{
		Shards: 1,
		Materialize: func(id uint32) (int, uint64, bool) {
			<-gate
			return 0, 1, true
		},
	})
	s, err := br.Subscribe(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	br.Publish(1) // wakes the drain, which parks inside the materializer
	time.Sleep(10 * time.Millisecond)
	avg := testing.AllocsPerRun(500, func() {
		br.Publish(1)
	})
	close(gate)
	if avg != 0 {
		t.Fatalf("Publish allocates %.2f times per call with the enqueue live, want 0", avg)
	}
	s.Cancel()
	br.Close()
}
