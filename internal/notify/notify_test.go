package notify

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type upd struct {
	Seq uint64
	Val int
}

func mk(v int) func(seq uint64) upd {
	return func(seq uint64) upd { return upd{Seq: seq, Val: v} }
}

// TestPublishSubscribe: the basic path — sequence numbers count every
// publish, subscribers receive stamped updates, unwatched topics never
// build a payload.
func TestPublishSubscribe(t *testing.T) {
	b := New[upd]()
	built := 0
	if seq := b.Publish(7, func(seq uint64) upd { built++; return upd{Seq: seq} }); seq != 1 {
		t.Fatalf("first publish seq = %d, want 1", seq)
	}
	if built != 0 {
		t.Fatal("payload built with no subscribers")
	}
	s, err := b.Subscribe(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Subscribers(7); got != 1 {
		t.Fatalf("Subscribers = %d", got)
	}
	if seq := b.Publish(7, mk(42)); seq != 2 {
		t.Fatalf("second publish seq = %d, want 2", seq)
	}
	u := <-s.C()
	if u.Seq != 2 || u.Val != 42 {
		t.Fatalf("received %+v", u)
	}
	if b.Seq(7) != 2 || b.Seq(8) != 0 {
		t.Fatalf("Seq = %d / %d", b.Seq(7), b.Seq(8))
	}
	s.Cancel()
	s.Cancel() // idempotent
	if _, ok := <-s.C(); ok {
		t.Fatal("channel open after cancel")
	}
	if got := b.Subscribers(7); got != 0 {
		t.Fatalf("Subscribers after cancel = %d", got)
	}
}

// TestCoalescing: a subscriber that never reads keeps only the newest
// buffer-many updates; the sequence numbers expose the gap.
func TestCoalescing(t *testing.T) {
	b := New[upd]()
	s, err := b.Subscribe(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		b.Publish(1, mk(v))
	}
	// Buffer 2: only the two newest (seq 9 and 10) survive.
	u1, u2 := <-s.C(), <-s.C()
	if u1.Seq != 9 || u2.Seq != 10 || u1.Val != 8 || u2.Val != 9 {
		t.Fatalf("coalesced tail = %+v, %+v", u1, u2)
	}
	select {
	case u := <-s.C():
		t.Fatalf("unexpected extra update %+v", u)
	default:
	}
	// Drops are observable as the seq gap 0 → 9.
	if u1.Seq <= 1 {
		t.Fatal("no observable gap despite drops")
	}
}

// TestPrime: a primed snapshot arrives before subsequent publishes and
// does not advance the topic sequence.
func TestPrime(t *testing.T) {
	b := New[upd]()
	b.Publish(3, mk(0)) // seq 1, nobody listening
	s, _ := b.Subscribe(3, 2)
	s.Prime(upd{Seq: b.Seq(3), Val: 99})
	b.Publish(3, mk(1))
	u1, u2 := <-s.C(), <-s.C()
	if u1.Seq != 1 || u1.Val != 99 {
		t.Fatalf("primed update = %+v", u1)
	}
	if u2.Seq != 2 || u2.Val != 1 {
		t.Fatalf("published update = %+v", u2)
	}
}

// TestCloseTopic: closing a topic ends every watcher's stream and
// rejects new subscriptions and publishes.
func TestCloseTopic(t *testing.T) {
	b := New[upd]()
	s, _ := b.Subscribe(5, 1)
	b.CloseTopic(5)
	if _, ok := <-s.C(); ok {
		t.Fatal("channel open after topic close")
	}
	if _, err := b.Subscribe(5, 1); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("Subscribe on closed topic: %v", err)
	}
	if seq := b.Publish(5, mk(0)); seq != 0 {
		t.Fatalf("Publish on closed topic seq = %d", seq)
	}
	s.Cancel() // still safe after topic close
}

// TestBrokerClose: Close ends every stream, further subscribes fail,
// publishes no-op. Idempotent.
func TestBrokerClose(t *testing.T) {
	b := New[upd]()
	s1, _ := b.Subscribe(1, 1)
	s2, _ := b.Subscribe(2, 1)
	b.Close()
	b.Close()
	for _, s := range []*Subscription[upd]{s1, s2} {
		if _, ok := <-s.C(); ok {
			t.Fatal("channel open after broker close")
		}
	}
	if _, err := b.Subscribe(1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after close: %v", err)
	}
	if seq := b.Publish(1, mk(0)); seq != 0 {
		t.Fatalf("Publish after close seq = %d", seq)
	}
	s1.Cancel() // safe after close
}

// TestChurnHammer races one serialized publisher against heavy
// subscriber churn and slow readers. Run under -race in CI. Every
// subscription must observe strictly increasing sequence numbers.
func TestChurnHammer(t *testing.T) {
	b := New[upd]()
	const topics = 8
	stop := make(chan struct{})
	var pubs atomic.Uint64

	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() { // the serialized publisher
		defer pubWG.Done()
		v := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			b.Publish(uint32(v%topics), mk(v))
			pubs.Add(1)
			v++
			// Yield so churn workers make progress on a single core.
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s, err := b.Subscribe(uint32((w+i)%topics), 1+i%3)
				if err != nil {
					t.Error(err)
					return
				}
				last := uint64(0)
				reads := i % 4 // some subscribers never read: pure churn
				for r := 0; r < reads; r++ {
					select {
					case u, ok := <-s.C():
						if !ok {
							t.Error("channel closed mid-subscription")
							return
						}
						if u.Seq <= last {
							t.Errorf("seq not increasing: %d after %d", u.Seq, last)
							return
						}
						last = u.Seq
					case <-time.After(time.Second):
						t.Error("starved subscriber")
						return
					}
				}
				s.Cancel()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pubWG.Wait()
	if pubs.Load() == 0 {
		t.Fatal("publisher never ran")
	}
	b.Close()
}

// TestSeqsDumpRestore: the persistence surface behind engine
// snapshots — Seqs omits zero topics, RestoreSeqs resumes counting
// where the dump left off, and a restored topic's next publish
// continues the sequence.
func TestSeqsDumpRestore(t *testing.T) {
	b := New[int]()
	for i := 0; i < 5; i++ {
		b.Publish(7, func(seq uint64) int { return 0 })
	}
	b.Publish(9, func(seq uint64) int { return 0 })
	b.Seq(11)                                        // touched but never published: must not be dumped
	b.Publish(13, func(seq uint64) int { return 0 }) // unregistered below
	b.CloseTopic(13)                                 // gone topics must not be dumped either
	dump := b.Seqs()
	if len(dump) != 2 || dump[7] != 5 || dump[9] != 1 {
		t.Fatalf("Seqs = %v", dump)
	}

	fresh := New[int]()
	fresh.RestoreSeqs(dump)
	if fresh.Seq(7) != 5 || fresh.Seq(9) != 1 || fresh.Seq(11) != 0 {
		t.Fatalf("restored seqs: %d %d %d", fresh.Seq(7), fresh.Seq(9), fresh.Seq(11))
	}
	if got := fresh.Publish(7, func(seq uint64) int { return 0 }); got != 6 {
		t.Fatalf("publish after restore: seq %d, want 6", got)
	}
	sub, err := fresh.Subscribe(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	var seen uint64
	fresh.Publish(7, func(seq uint64) int { seen = seq; return int(seq) })
	if seen != 7 {
		t.Fatalf("delivered seq %d, want 7", seen)
	}
	sub.Cancel()
	fresh.RestoreSeqs(nil) // no-op
}
