package algo

import (
	"math"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/rangemax"
	"repro/internal/textproc"
)

// ratioList pairs one posting list with the range-max structure over
// its ratio array r[pos] = w/S_k(q). Stored values are kept in "scale
// units": currentRatio = stored · scale, so a rebase (which raises all
// ratios by a common factor) is a single scalar bump instead of a
// structure-wide rebuild.
type ratioList struct {
	pl    *index.PostingList
	maxer rangemax.Maxer
	// global caches GlobalMax(maxer) in stored units; dirty marks it
	// for lazy recomputation after ratio updates.
	global float64
	dirty  bool
}

// idOrdered is the shared engine behind RIO and MRIO: WAND-style
// pivoting over query-ID-ordered lists. The only difference between
// the two algorithms is the bound used for prefix i — the list-global
// maximum (RIO, Eq. 2) versus the zone-local maximum (MRIO, Eq. 3).
type idOrdered struct {
	*common
	name  string
	local bool // true → MRIO zone bounds
	kind  rangemax.Kind
	lists []ratioList // slot-indexed, parallel to the index term table
	scale float64     // currentRatio = stored · scale

	cur   []cursor    // per-event scratch
	walks []walkState // per-pivot-search scratch
}

// cursor walks one posting list during an event. id caches the query
// ID under the cursor so the per-iteration sort compares plain
// integers instead of chasing into posting arrays.
type cursor struct {
	rl  *ratioList
	f   float64 // document weight of the list's term
	pos int
	id  uint32 // == rl.pl.P[pos].QID while pos is in range
}

// advanceTo seeks the cursor to the first posting with QID ≥ target
// and refreshes the cache. It reports whether the cursor is still in
// range.
func (c *cursor) advanceTo(target uint32) bool {
	c.pos = c.rl.pl.Seek(c.pos, target)
	if c.pos < c.rl.pl.Len() {
		c.id = c.rl.pl.P[c.pos].QID
		return true
	}
	return false
}

// step advances the cursor by one posting, refreshing the cache, and
// reports whether it is still in range.
func (c *cursor) step() bool {
	c.pos++
	if c.pos < c.rl.pl.Len() {
		c.id = c.rl.pl.P[c.pos].QID
		return true
	}
	return false
}

// maxRebuildScale bounds the rebase scale before stored ratio units
// get renormalized, keeping stored values far from float64 underflow.
const maxRebuildScale = 1e100

func newIDOrdered(ix *index.Index, name string, local bool, kind rangemax.Kind) (*idOrdered, error) {
	c, err := newCommon(ix)
	if err != nil {
		return nil, err
	}
	a := &idOrdered{
		common: c,
		name:   name,
		local:  local,
		kind:   kind,
		lists:  make([]ratioList, ix.NumLists()),
		scale:  1,
	}
	a.buildLists()
	return a, nil
}

// buildLists (re)creates all ratio structures from current thresholds
// and resets the scale to 1. The slot-indexed slice is sized once at
// construction (the index is frozen, so the term table never grows)
// and ratioList pointers taken from it stay valid for the processor's
// lifetime.
func (a *idOrdered) buildLists() {
	a.scale = 1
	a.ix.Lists(func(pl *index.PostingList) {
		vals := make([]float64, pl.Len())
		for i, p := range pl.P {
			vals[i] = a.ratio(p.W, p.QID)
		}
		a.lists[pl.Slot] = ratioList{pl: pl, maxer: rangemax.New(a.kind, vals), dirty: true}
	})
}

// listFor returns the ratio list of term t, or nil (tests).
func (a *idOrdered) listFor(t textproc.TermID) *ratioList {
	if s := a.ix.Slot(t); s >= 0 {
		return &a.lists[s]
	}
	return nil
}

// NewRIO builds the paper's preliminary Reverse ID-Ordering algorithm:
// prefix bounds use each list's global maximum ratio (Eq. 2).
func NewRIO(ix *index.Index) (*idOrdered, error) {
	return newIDOrdered(ix, "RIO", false, rangemax.KindSegTree)
}

// NewMRIO builds Minimal RIO: prefix bounds use the maximum ratio
// inside the current candidate zone only (Eq. 3), which the paper
// proves minimizes pivot iterations among ID-ordering algorithms.
// kind selects one of the three UB* implementations (TKDE §5.2).
func NewMRIO(ix *index.Index, kind rangemax.Kind) (*idOrdered, error) {
	name := "MRIO"
	if kind != rangemax.KindSegTree {
		name = "MRIO-" + kind.String()
	}
	return newIDOrdered(ix, name, true, kind)
}

// Name implements Processor.
func (a *idOrdered) Name() string { return a.name }

// Rebase implements Processor. Thresholds shrink by factor, so all
// ratios grow by 1/factor — absorbed into the scalar scale. When the
// scale approaches the underflow guard, stored units are renormalized
// by a full rebuild (rare: once per ~e^100 of accumulated decay).
func (a *idOrdered) Rebase(factor float64) {
	a.rebase(factor)
	a.scale /= factor
	if a.scale > maxRebuildScale {
		a.buildLists()
	}
}

// SyncThreshold implements Processor.
func (a *idOrdered) SyncThreshold(q uint32) {
	a.common.SyncThreshold(q)
	a.updateRatios(q)
}

// ResyncAll implements Processor: after refreshing the threshold
// cache, the ratio structures are rebuilt from scratch — one pass over
// the lists instead of a per-posting Update per query, which is what
// keeps a generation install's threshold carry cheap.
func (a *idOrdered) ResyncAll() {
	a.resyncThresholds()
	a.buildLists()
}

// Refresh implements Processor: lazily maintained block maxima and
// sparse snapshots are tightened eagerly so a bulk load leaves no
// stale +Inf warm-up ratios behind.
func (a *idOrdered) Refresh() {
	for i := range a.lists {
		rl := &a.lists[i]
		if t, ok := rl.maxer.(interface{ Tighten() }); ok {
			t.Tighten()
		}
		rl.dirty = true
	}
}

// updateRatios refreshes the stored ratios of every posting of query q
// after its threshold changed.
func (a *idOrdered) updateRatios(q uint32) {
	_, weights := a.ix.QueryTerms(q)
	for i, ref := range a.ix.Refs(q) {
		rl := &a.lists[ref.Slot]
		stored := a.ratio(weights[i], q) / a.scale
		rl.maxer.Update(int(ref.Pos), stored)
		rl.dirty = true
	}
}

// globalStored returns the list's maximum ratio in stored units,
// cached between updates.
func (a *idOrdered) globalStored(rl *ratioList) float64 {
	if rl.dirty {
		rl.global = rangemax.GlobalMax(rl.maxer)
		rl.dirty = false
	}
	return rl.global
}

// globalBound returns the list's maximum ratio in current units.
func (a *idOrdered) globalBound(rl *ratioList) float64 {
	return a.globalStored(rl) * a.scale
}

// zoneWalkCap bounds how many walk steps (block summaries plus exact
// entries) one list's zone walk takes inside a single pivot search
// before falling back to the list-global bound. Very wide zones are
// rare and a loose-but-valid bound there costs at most one extra
// pivot round.
const zoneWalkCap = 64

// walkState tracks one list's incremental zone walk during a pivot
// search: positions in [cursor, pos) have been consumed and their
// maximum ratio (stored units) is max. Zones only widen as the prefix
// index grows, so each posting range is walked at most once per
// search. nextID caches the query ID at pos so the caller can skip
// no-op extends with one integer compare.
type walkState struct {
	pos    int
	nextID uint32
	max    float64
	capped bool // fell back to the global bound; cannot grow further
}

// extendWalk advances one list's walk to the new zone end. For the
// block-max structure the walk is ID-aware and Seek-free: whole blocks
// that fit inside the zone contribute their summary in one step,
// boundary entries are read exactly. Position-based structures
// (segment tree, sparse snapshot) locate the end with a galloping Seek
// and take one range-max.
func (a *idOrdered) extendWalk(c *cursor, w *walkState, endID uint32) {
	p := c.rl.pl.P
	bm, ok := c.rl.maxer.(*rangemax.BlockMax)
	if !ok {
		end := c.rl.pl.Seek(w.pos, endID)
		if m := c.rl.maxer.Max(w.pos, end); m > w.max {
			w.max = m
		}
		w.pos = end
		if end < len(p) {
			w.nextID = p[end].QID
		} else {
			w.nextID = math.MaxUint32
		}
		return
	}
	bsz := bm.BlockSize()
	steps := 0
	for w.pos < len(p) && p[w.pos].QID < endID {
		if steps++; steps > zoneWalkCap {
			if g := a.globalStored(c.rl); g > w.max {
				w.max = g
			}
			w.capped = true
			return
		}
		if w.pos%bsz == 0 && w.pos+bsz <= len(p) && p[w.pos+bsz-1].QID < endID {
			// Whole block inside the zone: one summary read.
			if v := bm.Summary(w.pos / bsz); v > w.max {
				w.max = v
			}
			w.pos += bsz
			continue
		}
		if v := bm.Value(w.pos); v > w.max {
			w.max = v
		}
		w.pos++
	}
	if w.pos < len(p) {
		w.nextID = p[w.pos].QID
	} else {
		w.nextID = math.MaxUint32
	}
}

// ProcessEvent implements Processor: the pivot loop of Section III.
func (a *idOrdered) ProcessEvent(doc corpus.Document, e float64) EventMetrics {
	var m EventMetrics
	a.beginEvent(doc, &m)

	// Open a cursor on every list matching a document term. The cursor
	// slice is struct-field scratch; each return path below restores it
	// (a deferred closure would force a per-event heap allocation).
	if cap(a.cur) < len(doc.Vec) {
		m.ScratchGrows++
	}
	cur := a.cur[:0]
	for _, tw := range doc.Vec {
		if rl := a.listFor(tw.Term); rl != nil && rl.pl.Len() > 0 {
			cur = append(cur, cursor{rl: rl, f: tw.Weight, id: rl.pl.P[0].QID})
		}
	}
	a.cur = cur

	// needed is the current-unit ratio mass a candidate needs:
	// Σ f_j·r_j ≥ needed  ⇔  Σ f_j·r_j·E ≥ 1 (minus float slack).
	needed := (1 - boundSlack) / e

	for len(cur) > 0 {
		// Order lists by current cursor query ID. Cursors barely move
		// between iterations, so insertion sort on the cached IDs is
		// near-linear.
		for i := 1; i < len(cur); i++ {
			for j := i; j > 0 && cur[j-1].id > cur[j].id; j-- {
				cur[j-1], cur[j] = cur[j], cur[j-1]
			}
		}
		m.Iterations++

		pivot := a.findPivot(cur, needed)
		if pivot < 0 {
			if !a.local {
				// RIO: the bound is zone-independent; if the full sum
				// cannot reach the threshold now, it never will.
				a.cur = cur
				return m
			}
			// MRIO: the zone [c_1, c_m] is pruned wholesale; jump all
			// cursors past it.
			beyond := cur[len(cur)-1].id + 1
			if beyond == 0 { // uint32 wrap: last possible ID pruned
				a.cur = cur
				return m
			}
			m.JumpAlls++
			cur = jumpAll(cur, beyond, &m)
			continue
		}

		// Eager pivot resolution. The abstract's formulation advances
		// cursors to the pivot and re-iterates until the pivot query
		// surfaces at the front; that costs a full sort-and-bound
		// round per alignment step. Since an exact evaluation is just
		// a handful of probes, it is strictly cheaper to finish the
		// pivot now: queries in [c_1, pivotID) are pruned by the same
		// bound argument, the prefix lists jump to the pivot, and the
		// pivot query is scored immediately.
		pivotID := cur[pivot].id
		exhausted := false
		for i := 0; i < pivot; i++ {
			if cur[i].id == pivotID {
				continue
			}
			m.Postings++
			if !cur[i].advanceTo(pivotID) {
				exhausted = true
				cur[i].id = math.MaxUint32 // keep the advance loop below safe
			}
		}
		if a.offer(pivotID, doc.ID, e, &m) {
			a.updateRatios(pivotID)
		}
		// Step every cursor off the pivot. The alignment seeks may have
		// scrambled the prefix [0, pivot], so scan it in full; the tail
		// beyond the pivot is untouched and still sorted, so the first
		// tail cursor past pivotID ends the scan — without this the
		// loop would walk every open cursor (often the whole document)
		// per pivot round.
		for i := 0; i <= pivot; i++ {
			if cur[i].id != pivotID {
				continue
			}
			m.Postings++
			if !cur[i].step() {
				exhausted = true
			}
		}
		for i := pivot + 1; i < len(cur); i++ {
			if cur[i].id != pivotID {
				break
			}
			m.Postings++
			if !cur[i].step() {
				exhausted = true
			}
		}
		if exhausted {
			cur = compact(cur)
		}
	}
	a.cur = cur
	return m
}

// compact removes exhausted cursors in place.
func compact(cur []cursor) []cursor {
	keep := cur[:0]
	for i := range cur {
		if cur[i].pos < cur[i].rl.pl.Len() {
			keep = append(keep, cur[i])
		}
	}
	return keep
}

// jumpAll seeks every cursor to the first ID ≥ beyond, dropping
// exhausted ones.
func jumpAll(cur []cursor, beyond uint32, m *EventMetrics) []cursor {
	exhausted := false
	for i := range cur {
		m.Postings++
		if !cur[i].advanceTo(beyond) {
			exhausted = true
		}
	}
	if exhausted {
		return compact(cur)
	}
	return cur
}

// findPivot returns the smallest prefix index i with UB(i) ≥ needed,
// or -1 when even the full sum falls short.
//
// Both RIO and MRIO start from the cached global list maxima, which
// cost O(1) per list. For RIO they *are* the bound (Eq. 2). For MRIO
// they are a free over-approximation: UBglobal(i) ≥ UB*(i), so the
// global pivot index lower-bounds the zone pivot index and a global
// rejection needs no zone queries at all — that is the common
// steady-state outcome, and it keeps MRIO's per-iteration cost at
// RIO's level except where local bounds actually earn their keep.
func (a *idOrdered) findPivot(cur []cursor, needed float64) int {
	n := len(cur)
	gp := -1
	acc := 0.0
	for i := range cur {
		acc += cur[i].f * a.globalBound(cur[i].rl)
		if acc >= needed {
			gp = i
			break
		}
	}
	if !a.local || gp < 0 {
		return gp
	}
	// MRIO: exact zone bounds via incremental walks. The zone of
	// prefix i is [c_1, c_{i+1}); it only widens as i grows, so each
	// list keeps a monotone walk and the running sum
	// ub = Σ_j f_j·walkmax_j equals UB*(i) at the end of step i. The
	// search starts at the global pivot gp (UB* ≤ UBglobal, so no
	// earlier prefix can cross) and returns -1 when even the full zone
	// [c_1, c_m] falls short — the caller then leaps every cursor past
	// c_m, which is exactly where local bounds beat RIO.
	// Walk states are initialized lazily: a search that finds its pivot
	// at prefix p only ever touches lists 0..p, so the common
	// small-pivot case writes a handful of states instead of m.
	ws := a.walks[:0]
	a.walks = ws
	neededStored := needed / a.scale
	ub := 0.0
	for i := gp; i < n; i++ {
		var endID uint32
		if i+1 < n {
			endID = cur[i+1].id
		} else {
			endID = cur[n-1].id + 1
			if endID == 0 { // uint32 wrap
				endID = math.MaxUint32
			}
		}
		for len(ws) <= i {
			j := len(ws)
			ws = append(ws, walkState{pos: cur[j].pos, nextID: cur[j].id})
			a.walks = ws
		}
		for j := 0; j <= i; j++ {
			if ws[j].capped || ws[j].nextID >= endID {
				continue // nothing new inside the zone: one int compare
			}
			old := ws[j].max
			a.extendWalk(&cur[j], &ws[j], endID)
			if ws[j].max > old {
				ub += cur[j].f * (ws[j].max - old)
				if ub >= neededStored {
					return i
				}
			}
		}
		if ub >= neededStored {
			return i
		}
	}
	return -1
}
