package algo

import (
	"sort"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/textproc"
)

// RTA re-implements the threshold-algorithm baseline of Haghani et
// al. (CIKM 2010), the oldest competitor in the paper's evaluation.
//
// RTA keeps every posting list ordered by the query's *current* score
// potential r = w/S_k(q) — the classic frequency/impact ordering the
// paper "abandons" — and maintains that ordering eagerly: whenever a
// threshold S_k(q) changes, every list containing q is marked and
// re-sorted before its next use. An arriving document then performs a
// TA-style round-robin descent over the lists of its terms, scoring
// every encountered query exactly and stopping once the frontier bound
//
//	Σ_j f_j · r_frontier_j · E  <  1
//
// proves no entirely-unseen query can qualify.
//
// The descent itself prunes reasonably; what sinks RTA — and what the
// paper's reverse-ID-ordering design eliminates — is the maintenance:
// under recency decay the top-k sets turn over continuously, so the
// hot lists are re-sorted event after event, an O(L log L) tax the
// ID-ordered index never pays. This is why Figure 1 shows RTA up to
// 25× behind MRIO.
type RTA struct {
	*common
	lists []rtaList // slot-indexed, parallel to the index term table
	scale float64   // currentRatio = key · scale
	walks []rtaWalk // per-event scratch
}

// rtaList is one ratio-ordered list with eager maintenance. Unlike the
// quantized impact lists, it owns a mutable copy of the postings: RTA's
// defining cost is physically re-sorting entries on every threshold
// move, which the shared immutable backing cannot host.
type rtaList struct {
	entries []index.Posting
	keys    []float64 // ratio at last sort, in stored units
	dirty   bool      // a member query's threshold changed
}

// sort.Interface over (keys, entries) jointly, descending by key. The
// list itself is the sorter, so eager maintenance sorts in place with
// no per-resort allocations.
func (l *rtaList) Len() int           { return len(l.entries) }
func (l *rtaList) Less(i, j int) bool { return l.keys[i] > l.keys[j] }
func (l *rtaList) Swap(i, j int) {
	l.entries[i], l.entries[j] = l.entries[j], l.entries[i]
	l.keys[i], l.keys[j] = l.keys[j], l.keys[i]
}

// rtaWalk is one list's descent position during an event.
type rtaWalk struct {
	l   *rtaList
	f   float64
	pos int
}

// NewRTA builds the RTA baseline over ix.
func NewRTA(ix *index.Index) (*RTA, error) {
	c, err := newCommon(ix)
	if err != nil {
		return nil, err
	}
	r := &RTA{
		common: c,
		lists:  make([]rtaList, ix.NumLists()),
		scale:  1,
	}
	ix.Lists(func(pl *index.PostingList) {
		l := &r.lists[pl.Slot]
		l.entries = append([]index.Posting(nil), pl.P...)
		l.keys = make([]float64, len(l.entries))
		r.resort(l)
	})
	return r, nil
}

// Name implements Processor.
func (r *RTA) Name() string { return "RTA" }

// resort recomputes keys from current thresholds and re-sorts the list
// by descending ratio — RTA's eager maintenance step.
func (r *RTA) resort(l *rtaList) {
	for i, p := range l.entries {
		l.keys[i] = r.ratio(p.W, p.QID) / r.scale
	}
	sort.Sort(l)
	l.dirty = false
}

// Rebase implements Processor. Ratios scale uniformly, which preserves
// the ordering, so only the scalar moves.
func (r *RTA) Rebase(factor float64) {
	r.rebase(factor)
	r.scale /= factor
	if r.scale > maxRebuildScale {
		r.scale = 1
		for i := range r.lists {
			r.resort(&r.lists[i])
		}
	}
}

// SyncThreshold implements Processor.
func (r *RTA) SyncThreshold(q uint32) {
	r.common.SyncThreshold(q)
	r.markDirty(q)
}

// Refresh implements Processor.
func (r *RTA) Refresh() {
	for i := range r.lists {
		r.resort(&r.lists[i])
	}
}

// ResyncAll implements Processor.
func (r *RTA) ResyncAll() {
	r.resyncThresholds()
	r.Refresh()
}

// markDirty flags every list containing q for re-sorting.
func (r *RTA) markDirty(q uint32) {
	for _, ref := range r.ix.Refs(q) {
		r.lists[ref.Slot].dirty = true
	}
}

// listFor returns the ratio-ordered list of term t, or nil (tests).
func (r *RTA) listFor(t textproc.TermID) *rtaList {
	if s := r.ix.Slot(t); s >= 0 {
		return &r.lists[s]
	}
	return nil
}

// ProcessEvent implements Processor.
func (r *RTA) ProcessEvent(doc corpus.Document, e float64) EventMetrics {
	var m EventMetrics
	r.beginEvent(doc, &m)

	if cap(r.walks) < len(doc.Vec) {
		m.ScratchGrows++
	}
	walks := r.walks[:0]
	for _, tw := range doc.Vec {
		l := r.listFor(tw.Term)
		if l == nil || len(l.entries) == 0 {
			continue
		}
		// Eager maintenance: a list whose member thresholds moved is
		// restored to exact ratio order before use.
		if l.dirty {
			r.resort(l)
		}
		walks = append(walks, rtaWalk{l: l, f: tw.Weight})
	}
	r.walks = walks
	if len(walks) == 0 {
		return m
	}

	stop := (1 - boundSlack) / (e * r.scale)
	for {
		progress := false
		frontier := 0.0
		for i := range walks {
			w := &walks[i]
			if w.pos >= len(w.l.entries) {
				continue
			}
			qid := w.l.entries[w.pos].QID
			w.pos++
			m.Postings++
			progress = true
			if !r.markSeen(qid) {
				if r.offer(qid, doc.ID, e, &m) {
					r.markDirty(qid)
				}
			}
			if w.pos < len(w.l.entries) {
				frontier += w.f * w.l.keys[w.pos]
			}
		}
		if !progress {
			break
		}
		m.Iterations++
		if frontier < stop {
			break
		}
	}
	return m
}
