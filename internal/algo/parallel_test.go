package algo

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/rangemax"
	"repro/internal/textproc"
	"repro/internal/workload"
)

// parallelFixture regenerates the workload behind buildFixture's index
// (same corpus model, same seed) so Parallel — which partitions raw
// vectors — sees exactly the queries buildFixture indexed.
func parallelFixture(t *testing.T, kind workload.Kind, n, k int, seed int64) ([]textproc.Vector, []int) {
	t.Helper()
	cfg := workload.DefaultConfig(kind, n)
	cfg.K = k
	cfg.Seed = seed
	model := corpus.WikipediaModel(800)
	model.DocLenMedian = 25
	qs, err := workload.Generate(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([]textproc.Vector, len(qs))
	ks := make([]int, len(qs))
	for i, q := range qs {
		vecs[i] = q.Vec
		ks[i] = q.K
	}
	return vecs, ks
}

// mrioFactory builds the default MRIO over a sub-index.
func mrioFactory(ix *index.Index) (Processor, error) {
	return NewMRIO(ix, rangemax.KindSegTree)
}

// TestParallelMatchesSequential is the algorithm-level parity gate: a
// Parallel matcher at several worker counts must yield bit-identical
// per-query top-k lists to the sequential processor it wraps, across a
// decayed stream with forced rebases, for both MRIO and the
// exhaustive oracle.
func TestParallelMatchesSequential(t *testing.T) {
	const nq, k = 180, 3
	vecs, ks := parallelFixture(t, workload.Connected, nq, k, 21)
	ix, events := buildFixture(t, workload.Connected, nq, 220, k, 21)

	factories := map[string]Factory{
		"MRIO":       mrioFactory,
		"Exhaustive": func(ix *index.Index) (Processor, error) { return NewExhaustive(ix) },
	}
	for name, factory := range factories {
		seq, err := factory(ix)
		if err != nil {
			t.Fatal(err)
		}
		ps := []Processor{seq}
		for _, workers := range []int{1, 2, 4, 7} {
			par, err := NewParallel(vecs, ks, workers, factory)
			if err != nil {
				t.Fatal(err)
			}
			defer par.Close()
			ps = append(ps, par)
		}
		// λ=25 with the fixture's ~22 virtual seconds crosses the
		// rebase exponent budget several times, so the equivalence
		// covers Rebase fan-out too.
		runAll(t, ps, events, 25)
		assertResultsEqual(t, ps, nq)
		for _, p := range ps[1:] {
			if p.(*Parallel).store.NumQueries() != nq {
				t.Fatalf("%s: %s store has %d queries", name, p.Name(), p.(*Parallel).store.NumQueries())
			}
		}
	}
}

// TestParallelMatchedCountInvariant: per-query admissions are
// partition-invariant, so the Matched totals agree with the sequential
// run even though pruning-work counters may not.
func TestParallelMatchedCountInvariant(t *testing.T) {
	const nq, k = 120, 2
	vecs, ks := parallelFixture(t, workload.Uniform, nq, k, 33)
	ix, events := buildFixture(t, workload.Uniform, nq, 150, k, 33)
	seq, err := mrioFactory(ix)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallel(vecs, ks, 3, mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	var seqMatched, parMatched int
	for _, ev := range events {
		seqMatched += seq.ProcessEvent(ev.Doc, 1).Matched
		parMatched += par.ProcessEvent(ev.Doc, 1).Matched
	}
	if seqMatched == 0 {
		t.Fatal("fixture degenerate: nothing matched")
	}
	if seqMatched != parMatched {
		t.Fatalf("matched totals diverge: %d vs %d", seqMatched, parMatched)
	}
}

// TestParallelRestoreAndSync: the bulk-load path (Results().Add +
// SyncThreshold + Refresh) the monitor uses for carries and snapshot
// restores must route thresholds to the owning partition.
func TestParallelRestoreAndSync(t *testing.T) {
	const nq, k = 40, 2
	vecs, ks := parallelFixture(t, workload.Uniform, nq, k, 5)
	par, err := NewParallel(vecs, ks, 3, mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	for q := uint32(0); q < nq; q++ {
		for i := 0; i < k; i++ {
			par.Results().Add(q, uint64(1000+int(q)*k+i), 10-float64(i))
		}
		par.SyncThreshold(q)
	}
	par.Refresh()
	for q := uint32(0); q < nq; q++ {
		if got := par.Results().Threshold(q); got != 9 {
			t.Fatalf("query %d threshold = %v, want 9", q, got)
		}
		if got := par.Results().Top(q); len(got) != k || got[0].Score != 10 {
			t.Fatalf("query %d restored results = %+v", q, got)
		}
	}
}

// TestParallelLifecycle: worker-count capping, naming, idempotent
// Close, and the empty-query edge.
func TestParallelLifecycle(t *testing.T) {
	vecs, ks := parallelFixture(t, workload.Uniform, 3, 1, 6)
	par, err := NewParallel(vecs, ks, 16, mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.procs) != 3 {
		t.Fatalf("partitions = %d, want 3 (capped at query count)", len(par.procs))
	}
	if !strings.HasPrefix(par.Name(), "MRIO×") {
		t.Fatalf("Name = %q", par.Name())
	}
	par.Close()
	par.Close() // idempotent

	empty, err := NewParallel(nil, nil, 4, mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if got := empty.Results().NumQueries(); got != 0 {
		t.Fatalf("empty Parallel has %d queries", got)
	}
	if _, err := NewParallel(vecs, ks, 0, mrioFactory); err == nil {
		t.Fatal("parallelism 0 accepted")
	}
}
