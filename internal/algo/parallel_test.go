package algo

import (
	"math"
	"slices"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/rangemax"
	"repro/internal/textproc"
	"repro/internal/workload"
)

// parallelFixture regenerates the workload behind buildFixture's index
// (same corpus model, same seed) so Parallel — which partitions raw
// vectors — sees exactly the queries buildFixture indexed.
func parallelFixture(t *testing.T, kind workload.Kind, n, k int, seed int64) ([]textproc.Vector, []int) {
	t.Helper()
	cfg := workload.DefaultConfig(kind, n)
	cfg.K = k
	cfg.Seed = seed
	model := corpus.WikipediaModel(800)
	model.DocLenMedian = 25
	qs, err := workload.Generate(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([]textproc.Vector, len(qs))
	ks := make([]int, len(qs))
	for i, q := range qs {
		vecs[i] = q.Vec
		ks[i] = q.K
	}
	return vecs, ks
}

// mrioFactory builds the default MRIO over a sub-index.
func mrioFactory(ix *index.Index) (Processor, error) {
	return NewMRIO(ix, rangemax.KindSegTree)
}

// TestParallelMatchesSequential is the algorithm-level parity gate: a
// Parallel matcher at several worker counts must yield bit-identical
// per-query top-k lists to the sequential processor it wraps, across a
// decayed stream with forced rebases, for both MRIO and the
// exhaustive oracle.
func TestParallelMatchesSequential(t *testing.T) {
	const nq, k = 180, 3
	vecs, ks := parallelFixture(t, workload.Connected, nq, k, 21)
	ix, events := buildFixture(t, workload.Connected, nq, 220, k, 21)

	factories := map[string]Factory{
		"MRIO":       mrioFactory,
		"Exhaustive": func(ix *index.Index) (Processor, error) { return NewExhaustive(ix) },
	}
	for name, factory := range factories {
		seq, err := factory(ix)
		if err != nil {
			t.Fatal(err)
		}
		ps := []Processor{seq}
		for _, workers := range []int{1, 2, 4, 7} {
			for _, strategy := range []Strategy{StrategyCount, StrategyMass} {
				par, err := NewParallel(vecs, ks, NewPlan(vecs, workers, strategy), factory)
				if err != nil {
					t.Fatal(err)
				}
				defer par.Close()
				ps = append(ps, par)
			}
		}
		// λ=25 with the fixture's ~22 virtual seconds crosses the
		// rebase exponent budget several times, so the equivalence
		// covers Rebase fan-out too.
		runAll(t, ps, events, 25)
		assertResultsEqual(t, ps, nq)
		for _, p := range ps[1:] {
			if p.(*Parallel).store.NumQueries() != nq {
				t.Fatalf("%s: %s store has %d queries", name, p.Name(), p.(*Parallel).store.NumQueries())
			}
		}
	}
}

// TestParallelMatchedCountInvariant: per-query admissions are
// partition-invariant, so the Matched totals agree with the sequential
// run even though pruning-work counters may not.
func TestParallelMatchedCountInvariant(t *testing.T) {
	const nq, k = 120, 2
	vecs, ks := parallelFixture(t, workload.Uniform, nq, k, 33)
	ix, events := buildFixture(t, workload.Uniform, nq, 150, k, 33)
	seq, err := mrioFactory(ix)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallel(vecs, ks, NewPlan(vecs, 3, StrategyMass), mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	var seqMatched, parMatched int
	for _, ev := range events {
		seqMatched += seq.ProcessEvent(ev.Doc, 1).Matched
		parMatched += par.ProcessEvent(ev.Doc, 1).Matched
	}
	if seqMatched == 0 {
		t.Fatal("fixture degenerate: nothing matched")
	}
	if seqMatched != parMatched {
		t.Fatalf("matched totals diverge: %d vs %d", seqMatched, parMatched)
	}
}

// TestParallelRestoreAndSync: the bulk-load path (Results().Add +
// SyncThreshold + Refresh) the monitor uses for carries and snapshot
// restores must route thresholds to the owning partition.
func TestParallelRestoreAndSync(t *testing.T) {
	const nq, k = 40, 2
	vecs, ks := parallelFixture(t, workload.Uniform, nq, k, 5)
	par, err := NewParallel(vecs, ks, NewPlan(vecs, 3, StrategyMass), mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	for q := uint32(0); q < nq; q++ {
		for i := 0; i < k; i++ {
			par.Results().Add(q, uint64(1000+int(q)*k+i), 10-float64(i))
		}
		par.SyncThreshold(q)
	}
	par.Refresh()
	for q := uint32(0); q < nq; q++ {
		if got := par.Results().Threshold(q); got != 9 {
			t.Fatalf("query %d threshold = %v, want 9", q, got)
		}
		if got := par.Results().Top(q); len(got) != k || got[0].Score != 10 {
			t.Fatalf("query %d restored results = %+v", q, got)
		}
	}
}

// TestRepartitionPreservesParity: moving the partition boundaries
// mid-stream (with observed-work skew injected so the replan really
// moves them) must leave every query's top-k bit-identical to the
// sequential processor over the same event sequence, including across
// later rebases.
func TestRepartitionPreservesParity(t *testing.T) {
	const nq, k = 200, 3
	vecs, ks := parallelFixture(t, workload.Hot, nq, k, 41)
	ix, events := buildFixture(t, workload.Hot, nq, 260, k, 41)
	seq, err := mrioFactory(ix)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallel(vecs, ks, NewPlan(vecs, 4, StrategyMass), mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	ps := []Processor{seq, par}
	half := len(events) / 2
	runAll(t, ps, events[:half], 25)
	before := par.Boundaries()
	// Pretend partition 0 has been far busier than its mass predicts,
	// so the adaptive replan must shed queries from it.
	par.busy[0] += int64(10 * len(par.procs) * (1 + int(par.busy[0])))
	moved, err := par.Repartition()
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatalf("repartition did not move boundaries (before %v)", before)
	}
	if slices.Equal(par.Boundaries(), before) {
		t.Fatalf("boundaries unchanged after a reported move: %v", before)
	}
	runAll(t, ps, events[half:], 25)
	assertResultsEqual(t, ps, nq)
}

// TestRepartitionCarriesChangeRecord: a repartition between a batch's
// matching and its change drain must not lose (or duplicate) any
// pending change notification — the retiring views' records are
// carried into the parent arena.
func TestRepartitionCarriesChangeRecord(t *testing.T) {
	const nq, k = 150, 2
	vecs, ks := parallelFixture(t, workload.Hot, nq, k, 42)
	_, events := buildFixture(t, workload.Hot, nq, 80, k, 42)
	mk := func() *Parallel {
		par, err := NewParallel(vecs, ks, NewPlan(vecs, 3, StrategyMass), mrioFactory)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(par.Close)
		return par
	}
	control, moved := mk(), mk()
	for _, ev := range events {
		control.ProcessEvent(ev.Doc, 1)
		moved.ProcessEvent(ev.Doc, 1)
	}
	before := moved.Boundaries()
	moved.busy[0] += int64(10 * len(moved.procs) * (1 + int(moved.busy[0])))
	if ok, err := moved.Repartition(); err != nil || !ok {
		t.Fatalf("repartition: moved=%v err=%v", ok, err)
	}
	if slices.Equal(moved.Boundaries(), before) {
		t.Fatal("boundaries did not move; the carry path was not exercised")
	}
	collect := func(p *Parallel) map[uint32]int {
		got := map[uint32]int{}
		p.DrainChanged(func(q uint32) { got[q]++ })
		return got
	}
	want, got := collect(control), collect(moved)
	if len(want) == 0 {
		t.Fatal("fixture degenerate: no changes recorded")
	}
	if len(got) != len(want) {
		t.Fatalf("changed sets diverge: %d vs %d queries", len(got), len(want))
	}
	for q, n := range want {
		if n != 1 || got[q] != 1 {
			t.Fatalf("query %d reported %d/%d times, want exactly once", q, got[q], n)
		}
	}
}

// TestCheckBalanceStreak: a single imbalanced observation window must
// not move boundaries; sustained imbalance (retuneStreak consecutive
// windows) must.
func TestCheckBalanceStreak(t *testing.T) {
	const nq, k = 120, 2
	vecs, ks := parallelFixture(t, workload.Hot, nq, k, 43)
	par, err := NewParallel(vecs, ks, NewPlan(vecs, 3, StrategyMass), mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	skewWindow := func() {
		par.busy[0] += 1_000_000 * int64(len(par.procs))
		for i := 1; i < len(par.busy); i++ {
			par.busy[i] += 1000
		}
	}
	skewWindow()
	if moved, err := par.CheckBalance(); err != nil || moved {
		t.Fatalf("first imbalanced window already repartitioned: moved=%v err=%v", moved, err)
	}
	skewWindow()
	moved, err := par.CheckBalance()
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("sustained imbalance did not trigger a repartition")
	}
	// A balanced window resets the streak.
	for i := range par.busy {
		par.busy[i] += 5000
	}
	if moved, _ := par.CheckBalance(); moved {
		t.Fatal("balanced window repartitioned")
	}
	if par.streak != 0 {
		t.Fatalf("streak = %d after balanced window", par.streak)
	}
	// Count-strategy matchers never adapt.
	fixed, err := NewParallel(vecs, ks, NewPlan(vecs, 3, StrategyCount), mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	fixed.busy[0] += 1 << 40
	for i := 0; i < 3; i++ {
		if moved, _ := fixed.CheckBalance(); moved {
			t.Fatal("count strategy repartitioned")
		}
	}
}

// TestParallelOccupancy: the occupancy report must tile the query
// range exactly, carry the plan's cost shares, and account all
// observed matching work.
func TestParallelOccupancy(t *testing.T) {
	const nq, k = 100, 2
	vecs, ks := parallelFixture(t, workload.Hot, nq, k, 44)
	_, events := buildFixture(t, workload.Hot, nq, 60, k, 44)
	par, err := NewParallel(vecs, ks, NewPlan(vecs, 4, StrategyMass), mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	var evaluated uint64
	for _, ev := range events {
		evaluated += uint64(par.ProcessEvent(ev.Doc, 1).Evaluated)
	}
	occ := par.Occupancy()
	if len(occ) != 4 {
		t.Fatalf("occupancy has %d partitions", len(occ))
	}
	var lo uint32
	var gotEval, busy uint64
	var gotCost, totalCost float64
	for _, c := range index.EstimateCosts(vecs) {
		totalCost += c
	}
	for _, st := range occ {
		if st.Lo != lo {
			t.Fatalf("occupancy does not tile the range: %+v", occ)
		}
		lo = st.Hi
		gotEval += st.Evaluated
		busy += uint64(st.Busy)
		gotCost += st.Cost
	}
	if lo != nq {
		t.Fatalf("occupancy ends at %d, want %d", lo, nq)
	}
	if gotEval != evaluated {
		t.Fatalf("occupancy evaluated %d, metrics summed %d", gotEval, evaluated)
	}
	if busy == 0 {
		t.Fatal("no busy time observed")
	}
	if math.Abs(gotCost-totalCost) > 1e-6*totalCost {
		t.Fatalf("occupancy cost %v, want %v", gotCost, totalCost)
	}
}

// TestParallelLifecycle: worker-count capping, naming, idempotent
// Close, the empty-query edge, and plan validation.
func TestParallelLifecycle(t *testing.T) {
	vecs, ks := parallelFixture(t, workload.Uniform, 3, 1, 6)
	par, err := NewParallel(vecs, ks, NewPlan(vecs, 16, StrategyMass), mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.procs) != 3 {
		t.Fatalf("partitions = %d, want 3 (capped at query count)", len(par.procs))
	}
	if !strings.HasPrefix(par.Name(), "MRIO×") {
		t.Fatalf("Name = %q", par.Name())
	}
	par.Close()
	par.Close() // idempotent

	empty, err := NewParallel(nil, nil, NewPlan(nil, 4, StrategyMass), mrioFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if got := empty.Results().NumQueries(); got != 0 {
		t.Fatalf("empty Parallel has %d queries", got)
	}
	for _, bad := range []Plan{
		{}, // no partitions
		{Strategy: StrategyCount, Offs: []uint32{0, 2}},       // doesn't cover the range
		{Strategy: StrategyCount, Offs: []uint32{0, 3, 1, 3}}, // not monotone
	} {
		if _, err := NewParallel(vecs, ks, bad, mrioFactory); err == nil {
			t.Fatalf("invalid plan %+v accepted", bad)
		}
	}
}
