package algo

import (
	"sort"
	"testing"

	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/topk"
	"repro/internal/workload"
)

// refTopK is a brute-force top-k oracle mirroring topk.Store's
// admission rule (strictly-greater-than-min replacement, positive
// scores only).
type refTopK struct {
	k    int
	docs []topk.ScoredDoc
}

func (r *refTopK) add(docID uint64, score float64) {
	if score <= 0 {
		return
	}
	if len(r.docs) < r.k {
		r.docs = append(r.docs, topk.ScoredDoc{DocID: docID, Score: score})
		return
	}
	min := 0
	for i := range r.docs {
		if r.docs[i].Score < r.docs[min].Score {
			min = i
		}
	}
	if score > r.docs[min].Score {
		r.docs[min] = topk.ScoredDoc{DocID: docID, Score: score}
	}
}

func (r *refTopK) rebase(f float64) {
	for i := range r.docs {
		r.docs[i].Score *= f
	}
}

func (r *refTopK) sorted() []topk.ScoredDoc {
	out := append([]topk.ScoredDoc(nil), r.docs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	return out
}

// TestDeltaMatchesOracle drives a Delta through the full churn cycle —
// queries appended mid-stream, tombstoned mid-stream, decay rebases
// crossing both — and cross-validates every query's results against
// the brute-force oracle after every event.
func TestDeltaMatchesOracle(t *testing.T) {
	const nq, nDocs, k = 30, 150, 3
	ix, events := buildFixture(t, workload.Connected, nq, nDocs, k, 77)
	vecs := make([]textproc.Vector, nq)
	for q := uint32(0); q < nq; q++ {
		terms, weights := ix.QueryTerms(q)
		v := make(textproc.Vector, len(terms))
		for i := range terms {
			v[i] = textproc.TermWeight{Term: terms[i], Weight: weights[i]}
		}
		vecs[q] = v
	}

	d := NewDelta()
	refs := make([]*refTopK, 0, nq)
	dead := make([]bool, nq)
	appended := 0
	appendNext := func() {
		if appended >= nq {
			return
		}
		q, err := d.Append(vecs[appended], k)
		if err != nil {
			t.Fatal(err)
		}
		if int(q) != appended {
			t.Fatalf("append %d got local %d", appended, q)
		}
		refs = append(refs, &refTopK{k: k})
		appended++
	}
	// Half the queries exist before the stream starts.
	for appended < nq/2 {
		appendNext()
	}

	decay, err := stream.NewDecay(30) // high λ: forces rebases mid-run
	if err != nil {
		t.Fatal(err)
	}
	score := func(q int, doc textproc.Vector) float64 {
		dw := make(map[textproc.TermID]float64, len(doc))
		for _, tw := range doc {
			dw[tw.Term] = tw.Weight
		}
		var s float64
		for _, tw := range vecs[q] {
			s += tw.Weight * dw[tw.Term]
		}
		return s
	}

	for i, ev := range events {
		if i%4 == 1 {
			appendNext() // grows mid-stream
		}
		if i%11 == 7 && i/11 < appended {
			if !dead[i/11] {
				d.Tombstone(uint32(i / 11))
				dead[i/11] = true
			}
		}
		for decay.NeedsRebase(ev.Time) {
			f := decay.RebaseTo(ev.Time)
			d.Rebase(f)
			for _, r := range refs {
				r.rebase(f)
			}
		}
		e := decay.Factor(ev.Time)
		d.ProcessEvent(ev.Doc, e)
		for q := 0; q < appended; q++ {
			if dead[q] {
				continue // oracle freezes with the tombstone
			}
			refs[q].add(ev.Doc.ID, score(q, ev.Doc.Vec)*e)
		}

		for q := 0; q < appended; q++ {
			want := refs[q].sorted()
			got := d.Results().Top(uint32(q))
			if len(got) != len(want) {
				t.Fatalf("event %d query %d: %d vs %d results", i, q, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("event %d query %d rank %d: %+v vs %+v", i, q, j, got[j], want[j])
				}
			}
		}
	}
	if appended != nq {
		t.Fatalf("only %d/%d queries appended (stream too short for the schedule)", appended, nq)
	}
	if d.Postings() != ix.NumPostings() {
		t.Fatalf("delta postings %d, want %d", d.Postings(), ix.NumPostings())
	}
}

// TestTombstoneStopsEvaluation: once a query is tombstoned, every
// algorithm stops evaluating it — Evaluated drops to zero on an index
// whose queries are all dead — and its results and change record stay
// frozen while live queries keep matching.
func TestTombstoneStopsEvaluation(t *testing.T) {
	names := []string{"Exhaustive", "RIO", "MRIO", "MRIO-block", "MRIO-sparse", "RTA", "SortQuer", "TPS"}
	for i, name := range names {
		t.Run(name, func(t *testing.T) {
			// Tombstones live on the Index, so each subtest gets its own
			// fixture (same seed, identical data) — processors must not
			// share an index across tombstoning tests.
			ix, events := buildFixture(t, workload.Connected, 12, 120, 3, 31)
			half := len(events) / 2
			proc := allProcessors(t, ix)[i]
			runAll(t, []Processor{proc}, events[:half], 1)
			proc.DrainChanged(nil)

			const victim = 5
			frozen := proc.Results().Top(victim)
			proc.Tombstone(victim)
			var live, victimChanges int
			d, err := stream.NewDecay(1)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range events[half:] {
				for d.NeedsRebase(ev.Time) {
					proc.Rebase(d.RebaseTo(ev.Time))
				}
				proc.ProcessEvent(ev.Doc, d.Factor(ev.Time))
			}
			proc.DrainChanged(func(q uint32) {
				if q == victim {
					victimChanges++
				} else {
					live++
				}
			})
			if victimChanges != 0 {
				t.Fatalf("tombstoned query dirtied the change record %d times", victimChanges)
			}
			if live == 0 {
				t.Fatal("no live query changed — stream too weak to prove anything")
			}
			// Rebases rescale stored scores, but the tombstoned query's
			// result *set* must be exactly what it was at removal.
			got := proc.Results().Top(victim)
			if len(got) != len(frozen) {
				t.Fatalf("tombstoned results changed size: %d → %d", len(frozen), len(got))
			}
			for i := range frozen {
				if got[i].DocID != frozen[i].DocID {
					t.Fatalf("tombstoned results changed: rank %d doc %d → %d", i, frozen[i].DocID, got[i].DocID)
				}
			}

			// With every query dead, the algorithm evaluates nothing.
			for q := uint32(0); q < uint32(ix.NumQueries()); q++ {
				proc.Tombstone(q)
			}
			var m EventMetrics
			for _, ev := range events[half:] {
				m.Add(proc.ProcessEvent(ev.Doc, d.Factor(ev.Time)))
			}
			if m.Evaluated != 0 || m.Matched != 0 {
				t.Fatalf("all-dead index still evaluated %d / matched %d", m.Evaluated, m.Matched)
			}
		})
	}
}
