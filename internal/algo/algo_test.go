package algo

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/rangemax"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/workload"
)

// buildFixture creates a small but non-trivial world: a synthetic
// corpus model, a query workload, the index, and a replayable stream.
func buildFixture(t testing.TB, kind workload.Kind, nQueries, nDocs int, k int, seed int64) (*index.Index, []stream.Event) {
	t.Helper()
	model := corpus.WikipediaModel(800)
	model.DocLenMedian = 25
	cfg := workload.DefaultConfig(kind, nQueries)
	cfg.K = k
	cfg.Seed = seed
	qs, err := workload.Generate(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([]textproc.Vector, len(qs))
	ks := make([]int, len(qs))
	for i, q := range qs {
		vecs[i] = q.Vec
		ks[i] = q.K
	}
	ix, err := index.Build(vecs, ks)
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(model, seed+1000, uint64(nDocs))
	src, err := stream.NewSource(gen, 10, seed+2000)
	if err != nil {
		t.Fatal(err)
	}
	return ix, src.Take(nDocs)
}

// allProcessors builds one of every algorithm over the same index.
func allProcessors(t testing.TB, ix *index.Index) []Processor {
	t.Helper()
	var ps []Processor
	mk := func(p Processor, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	ex, err := NewExhaustive(ix)
	if err != nil {
		t.Fatal(err)
	}
	ps = append(ps, ex)
	mk(NewRIO(ix))
	mk(NewMRIO(ix, rangemax.KindSegTree))
	mk(NewMRIO(ix, rangemax.KindBlock))
	mk(NewMRIO(ix, rangemax.KindSparse))
	mk(NewRTA(ix))
	mk(NewSortQuer(ix))
	mk(NewTPS(ix))
	return ps
}

// runAll streams events through every processor with the given decay,
// rebasing where the decay demands it.
func runAll(t testing.TB, ps []Processor, events []stream.Event, lambda float64) {
	t.Helper()
	d, err := stream.NewDecay(lambda)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		for d.NeedsRebase(ev.Time) {
			f := d.RebaseTo(ev.Time)
			for _, p := range ps {
				p.Rebase(f)
			}
		}
		e := d.Factor(ev.Time)
		for _, p := range ps {
			p.ProcessEvent(ev.Doc, e)
		}
	}
}

// assertResultsEqual compares every query's top-k across processors
// against the first (the oracle).
func assertResultsEqual(t *testing.T, ps []Processor, n int) {
	t.Helper()
	oracle := ps[0]
	for _, p := range ps[1:] {
		for q := uint32(0); q < uint32(n); q++ {
			want := oracle.Results().Top(q)
			got := p.Results().Top(q)
			if len(want) != len(got) {
				t.Fatalf("%s: query %d has %d results, oracle has %d",
					p.Name(), q, len(got), len(want))
			}
			for i := range want {
				if want[i].DocID != got[i].DocID {
					t.Fatalf("%s: query %d rank %d doc %d, oracle %d",
						p.Name(), q, i, got[i].DocID, want[i].DocID)
				}
				if math.Abs(want[i].Score-got[i].Score) > 1e-9*math.Max(1, math.Abs(want[i].Score)) {
					t.Fatalf("%s: query %d rank %d score %v, oracle %v",
						p.Name(), q, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

func TestAllAlgorithmsMatchOracleUniform(t *testing.T) {
	ix, events := buildFixture(t, workload.Uniform, 250, 300, 3, 1)
	ps := allProcessors(t, ix)
	runAll(t, ps, events, 0.01)
	assertResultsEqual(t, ps, ix.NumQueries())
}

func TestAllAlgorithmsMatchOracleConnected(t *testing.T) {
	ix, events := buildFixture(t, workload.Connected, 250, 300, 3, 2)
	ps := allProcessors(t, ix)
	runAll(t, ps, events, 0.01)
	assertResultsEqual(t, ps, ix.NumQueries())
}

func TestAllAlgorithmsMatchOracleNoDecay(t *testing.T) {
	ix, events := buildFixture(t, workload.Uniform, 200, 250, 5, 3)
	ps := allProcessors(t, ix)
	runAll(t, ps, events, 0)
	assertResultsEqual(t, ps, ix.NumQueries())
}

func TestAllAlgorithmsMatchOracleK1(t *testing.T) {
	ix, events := buildFixture(t, workload.Connected, 200, 250, 1, 4)
	ps := allProcessors(t, ix)
	runAll(t, ps, events, 0.05)
	assertResultsEqual(t, ps, ix.NumQueries())
}

func TestAllAlgorithmsMatchOracleAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep skipped in -short")
	}
	for seed := int64(10); seed < 14; seed++ {
		ix, events := buildFixture(t, workload.Uniform, 150, 200, 2, seed)
		ps := allProcessors(t, ix)
		runAll(t, ps, events, 0.02)
		assertResultsEqual(t, ps, ix.NumQueries())
	}
}

// TestRebaseEquivalence forces many rebases with an aggressive λ and
// verifies all algorithms still agree (the rebase path rescales
// thresholds, heaps and ratio units).
func TestRebaseEquivalence(t *testing.T) {
	ix, events := buildFixture(t, workload.Uniform, 150, 400, 3, 5)
	// Stretch event times so λ·Δτ crosses the rebase threshold several
	// times during the run.
	for i := range events {
		events[i].Time *= 50
	}
	ps := allProcessors(t, ix)
	runAll(t, ps, events, 30) // λ·t_max ≈ 30·40·50 ≫ 500 → many rebases
	assertResultsEqual(t, ps, ix.NumQueries())
}

// TestMRIOIterationOptimality checks the paper's Lemma 2 claim in
// measurable form: MRIO (exact zone bounds) never needs more pivot
// iterations than RIO on the same stream.
func TestMRIOIterationOptimality(t *testing.T) {
	ix, events := buildFixture(t, workload.Uniform, 300, 250, 3, 6)
	rio, err := NewRIO(ix)
	if err != nil {
		t.Fatal(err)
	}
	mrio, err := NewMRIO(ix, rangemax.KindSegTree)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := stream.NewDecay(0.01)
	var rioIters, mrioIters int
	for _, ev := range events {
		e := d.Factor(ev.Time)
		rioIters += rio.ProcessEvent(ev.Doc, e).Iterations
		mrioIters += mrio.ProcessEvent(ev.Doc, e).Iterations
	}
	if mrioIters > rioIters {
		t.Fatalf("MRIO used %d iterations, RIO %d — violates minimality", mrioIters, rioIters)
	}
	if mrioIters == 0 || rioIters == 0 {
		t.Fatal("no iterations recorded; fixture too small")
	}
}

// TestMRIOEvaluatesNoMoreThanRIO: tighter bounds must not increase the
// number of exact evaluations.
func TestMRIOEvaluatesNoMoreThanRIO(t *testing.T) {
	ix, events := buildFixture(t, workload.Connected, 300, 250, 3, 7)
	rio, _ := NewRIO(ix)
	mrio, _ := NewMRIO(ix, rangemax.KindSegTree)
	d, _ := stream.NewDecay(0.01)
	var rioEval, mrioEval int
	for _, ev := range events {
		e := d.Factor(ev.Time)
		rioEval += rio.ProcessEvent(ev.Doc, e).Evaluated
		mrioEval += mrio.ProcessEvent(ev.Doc, e).Evaluated
	}
	if mrioEval > rioEval {
		t.Fatalf("MRIO evaluated %d queries, RIO %d", mrioEval, rioEval)
	}
}

// TestPrunedAlgorithmsTouchFewerPostings: the whole point of pruning.
func TestPrunedAlgorithmsTouchFewerPostings(t *testing.T) {
	ix, events := buildFixture(t, workload.Uniform, 400, 300, 3, 8)
	ex, _ := NewExhaustive(ix)
	mrio, _ := NewMRIO(ix, rangemax.KindSegTree)
	d, _ := stream.NewDecay(0.01)
	var exEval, mrioEval int
	for _, ev := range events {
		e := d.Factor(ev.Time)
		exEval += ex.ProcessEvent(ev.Doc, e).Evaluated
		mrioEval += mrio.ProcessEvent(ev.Doc, e).Evaluated
	}
	if mrioEval >= exEval {
		t.Fatalf("MRIO evaluated %d ≥ exhaustive %d: pruning ineffective", mrioEval, exEval)
	}
}

// Hand-built scenario with scores verifiable by hand.
func TestHandVerifiedScenario(t *testing.T) {
	// Query 0: terms {1:0.6, 2:0.8}, k=1.
	// Query 1: term {2:1.0}, k=1.
	// Query 2: term {3:1.0}, k=2.
	vecs := []textproc.Vector{
		{{Term: 1, Weight: 0.6}, {Term: 2, Weight: 0.8}},
		{{Term: 2, Weight: 1.0}},
		{{Term: 3, Weight: 1.0}},
	}
	ix, err := index.Build(vecs, []int{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	docs := []corpus.Document{
		{ID: 100, Vec: textproc.Vector{{Term: 1, Weight: 1.0}}},                         // hits q0 (0.6)
		{ID: 101, Vec: textproc.Vector{{Term: 2, Weight: 0.5}, {Term: 3, Weight: 0.5}}}, // q0:0.4 q1:0.5 q2:0.5
		{ID: 102, Vec: textproc.Vector{{Term: 2, Weight: 1.0}}},                         // q0:0.8 q1:1.0
		{ID: 103, Vec: textproc.Vector{{Term: 4, Weight: 1.0}}},                         // nothing
	}
	for _, p := range allProcessors(t, ix) {
		for _, d := range docs {
			p.ProcessEvent(d, 1)
		}
		top0 := p.Results().Top(0)
		if len(top0) != 1 || top0[0].DocID != 102 || math.Abs(top0[0].Score-0.8) > 1e-12 {
			t.Fatalf("%s: q0 top = %+v", p.Name(), top0)
		}
		top1 := p.Results().Top(1)
		if len(top1) != 1 || top1[0].DocID != 102 {
			t.Fatalf("%s: q1 top = %+v", p.Name(), top1)
		}
		top2 := p.Results().Top(2)
		if len(top2) != 1 || top2[0].DocID != 101 || math.Abs(top2[0].Score-0.5) > 1e-12 {
			t.Fatalf("%s: q2 top = %+v", p.Name(), top2)
		}
	}
}

// TestReusedDocBufferAcrossEvents: callers on the zero-alloc publish
// path hand ProcessEvent the same backing vector buffer every event,
// mutated in place. The dense-accumulator scratch must not rely on the
// previous event's slice still holding the previous document's terms —
// a stale entry would silently inflate later scores (or index out of
// the accumulator). Regression test for exactly that aliasing bug.
func TestReusedDocBufferAcrossEvents(t *testing.T) {
	// Query 0: terms {5, 7}, k=2.
	vecs := []textproc.Vector{{{Term: 5, Weight: 0.6}, {Term: 7, Weight: 0.8}}}
	ix, err := index.Build(vecs, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range allProcessors(t, ix) {
		buf := make(textproc.Vector, 1, 4)
		buf[0] = textproc.TermWeight{Term: 5, Weight: 0.5}
		p.ProcessEvent(corpus.Document{ID: 1, Vec: buf}, 1)
		// Same backing array, now a different document: only term 7.
		// With stale scratch, doc 2 would also score term 5's 0.5.
		buf[0] = textproc.TermWeight{Term: 7, Weight: 0.9}
		p.ProcessEvent(corpus.Document{ID: 2, Vec: buf}, 1)
		top := p.Results().Top(0)
		if len(top) != 2 {
			t.Fatalf("%s: want 2 results, got %+v", p.Name(), top)
		}
		// Descending by score: doc2 = 0.8·0.9 = 0.72, doc1 = 0.6·0.5 = 0.3.
		if top[0].DocID != 2 || math.Abs(top[0].Score-0.72) > 1e-12 ||
			top[1].DocID != 1 || math.Abs(top[1].Score-0.3) > 1e-12 {
			t.Fatalf("%s: stale doc scratch: %+v", p.Name(), top)
		}
	}
}

// TestDecayChangesRanking verifies inflation actually matters: with a
// strong λ, a later mediocre match must outrank an earlier good one.
func TestDecayChangesRanking(t *testing.T) {
	vecs := []textproc.Vector{{{Term: 1, Weight: 1.0}}}
	ix, err := index.Build(vecs, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := stream.NewDecay(1.0)
	mrio, _ := NewMRIO(ix, rangemax.KindSegTree)
	// Doc A at t=0 with cosine 0.9; doc B at t=10 with cosine 0.2.
	// Decayed at t=10: A = 0.9·e^-10 ≪ B = 0.2 → B must win.
	mrio.ProcessEvent(corpus.Document{ID: 1, Vec: textproc.Vector{{Term: 1, Weight: 0.9}}}, d.Factor(0))
	mrio.ProcessEvent(corpus.Document{ID: 2, Vec: textproc.Vector{{Term: 1, Weight: 0.2}}}, d.Factor(10))
	top := mrio.Results().Top(0)
	if len(top) != 1 || top[0].DocID != 2 {
		t.Fatalf("decay not honored: %+v", top)
	}
}

// TestEmptyAndDisjointDocs: documents matching no list must be cheap
// no-ops for every algorithm.
func TestEmptyAndDisjointDocs(t *testing.T) {
	vecs := []textproc.Vector{{{Term: 1, Weight: 1.0}}}
	ix, _ := index.Build(vecs, []int{1})
	for _, p := range allProcessors(t, ix) {
		m := p.ProcessEvent(corpus.Document{ID: 1, Vec: nil}, 1)
		if m.Evaluated != 0 || m.Matched != 0 {
			t.Fatalf("%s: empty doc did work: %+v", p.Name(), m)
		}
		m = p.ProcessEvent(corpus.Document{ID: 2, Vec: textproc.Vector{{Term: 99, Weight: 1}}}, 1)
		if m.Evaluated != 0 {
			t.Fatalf("%s: disjoint doc evaluated queries: %+v", p.Name(), m)
		}
	}
}

// TestWarmupAlwaysEvaluates: while a query's heap is not full, every
// document sharing a term must be offered to it.
func TestWarmupAlwaysEvaluates(t *testing.T) {
	vecs := []textproc.Vector{{{Term: 1, Weight: 1.0}}}
	ix, _ := index.Build(vecs, []int{3}) // k=3, needs 3 docs
	for _, p := range allProcessors(t, ix) {
		for i := 0; i < 3; i++ {
			// Even minuscule scores must be admitted during warm-up.
			m := p.ProcessEvent(corpus.Document{
				ID:  uint64(i),
				Vec: textproc.Vector{{Term: 1, Weight: 1e-9}},
			}, 1)
			if m.Matched != 1 {
				t.Fatalf("%s: warm-up doc %d not admitted: %+v", p.Name(), i, m)
			}
		}
		if got := p.Results().Size(0); got != 3 {
			t.Fatalf("%s: size = %d, want 3", p.Name(), got)
		}
	}
}

func TestProcessorNames(t *testing.T) {
	ix, _ := index.Build([]textproc.Vector{{{Term: 1, Weight: 1}}}, []int{1})
	names := map[string]bool{}
	for _, p := range allProcessors(t, ix) {
		names[p.Name()] = true
	}
	for _, want := range []string{"Exhaustive", "RIO", "MRIO", "MRIO-block", "MRIO-sparse", "RTA", "SortQuer", "TPS"} {
		if !names[want] {
			t.Fatalf("missing processor %q (have %v)", want, names)
		}
	}
}
