package algo

import (
	"repro/internal/corpus"
	"repro/internal/index"
)

// Exhaustive scores the document against every query that shares at
// least one term with it — no pruning whatsoever. It is the
// correctness oracle for the test suite and the natural lower baseline
// for the benchmarks ("what if the server had no pruning at all").
type Exhaustive struct {
	*common
}

// NewExhaustive builds the oracle over ix.
func NewExhaustive(ix *index.Index) (*Exhaustive, error) {
	c, err := newCommon(ix)
	if err != nil {
		return nil, err
	}
	return &Exhaustive{common: c}, nil
}

// Name implements Processor.
func (x *Exhaustive) Name() string { return "Exhaustive" }

// Rebase implements Processor.
func (x *Exhaustive) Rebase(factor float64) { x.rebase(factor) }

// ProcessEvent implements Processor by touching every posting of every
// relevant list exactly once.
func (x *Exhaustive) ProcessEvent(doc corpus.Document, e float64) EventMetrics {
	var m EventMetrics
	x.beginEvent(doc, &m)
	for _, tw := range doc.Vec {
		l := x.ix.List(tw.Term)
		if l == nil {
			continue
		}
		for _, p := range l.P {
			m.Postings++
			if x.markSeen(p.QID) {
				continue
			}
			m.Iterations++
			x.offer(p.QID, doc.ID, e, &m)
		}
	}
	return m
}
