// Package algo implements the paper's matching algorithms — RIO and
// MRIO (Section III) — together with the three published baselines the
// evaluation compares against (RTA, SortQuer, TPS) and an exhaustive
// oracle used by the tests.
//
// All algorithms answer the same question per stream event: which
// registered queries admit the arriving document into their top-k?
// They share the normalized qualification test
//
//	Σ_j f_j · (w_j / S_k(q)) · E  ≥  1
//
// where f_j are the document's term weights, w_j the query's, S_k(q)
// the query's current (inflated) k-th best score and E the arrival's
// inflation factor e^{λ(τ_d-base)}. A query with fewer than k results
// has S_k = 0, ratio +Inf, and is always evaluated (warm-up).
//
// Every implementation is exact: the test suite cross-validates each
// against the Exhaustive oracle on randomized streams.
package algo

import (
	"math"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/textproc"
	"repro/internal/topk"
)

// boundSlack compensates floating-point rounding in upper-bound sums:
// bounds are compared against 1-boundSlack so a bound that is equal to
// the exact score up to rounding can never cause a false prune.
const boundSlack = 1e-9

// EventMetrics reports the work one stream event required.
type EventMetrics struct {
	// Evaluated counts queries scored exactly against the document.
	Evaluated int
	// Matched counts queries whose top-k admitted the document.
	Matched int
	// Iterations counts pivot-loop iterations (ID-ordered algorithms)
	// or scan steps (frequency-ordered ones). It is the quantity the
	// paper's Lemma 2 minimizes for MRIO.
	Iterations int
	// Postings counts posting entries touched.
	Postings int
	// JumpAlls counts whole-zone pruning strides (MRIO's signature
	// move: the full zone [c_1, c_m] was rejected in one pass).
	JumpAlls int
	// DeltaBlocksSkipped and DeltaBlocksScanned count the delta
	// segment's skip-data decisions: blocks rejected by their summary
	// bound versus blocks scanned entry by entry.
	DeltaBlocksSkipped int
	DeltaBlocksScanned int
	// QuantPruned counts impact-list entries skipped by the quantized
	// bound's early scan cutoff (SortQuer/TPS).
	QuantPruned int
	// ScratchGrows counts per-event scratch buffers that had to grow.
	// Zero in steady state: a non-zero rate means the arena sizes are
	// still warming up (or events keep getting wider).
	ScratchGrows int
}

// Add accumulates o into m field-wise.
func (m *EventMetrics) Add(o EventMetrics) {
	m.Evaluated += o.Evaluated
	m.Matched += o.Matched
	m.Iterations += o.Iterations
	m.Postings += o.Postings
	m.JumpAlls += o.JumpAlls
	m.DeltaBlocksSkipped += o.DeltaBlocksSkipped
	m.DeltaBlocksScanned += o.DeltaBlocksScanned
	m.QuantPruned += o.QuantPruned
	m.ScratchGrows += o.ScratchGrows
}

// Processor is a CTQD matching algorithm bound to a query index.
// Implementations are not safe for concurrent use; the monitor shards
// for parallelism instead.
type Processor interface {
	// Name returns the algorithm's short name as used in the paper's
	// figures (e.g. "MRIO").
	Name() string
	// ProcessEvent matches doc (with inflation factor e) against all
	// registered queries and applies result updates.
	ProcessEvent(doc corpus.Document, e float64) EventMetrics
	// Results exposes the per-query result store.
	Results() *topk.Store
	// Rebase rescales all stored scores and thresholds by factor
	// (0 < factor ≤ 1), preserving order. The monitor calls it when
	// shifting the inflation epoch.
	Rebase(factor float64)
	// SyncThreshold refreshes the algorithm's cached threshold and any
	// dependent bound structures for query q, after the caller
	// modified q's results directly (bulk load, snapshot restore).
	SyncThreshold(q uint32)
	// Refresh restores full bound tightness after a bulk load: lazily
	// maintained structures (stale block maxima, sparse snapshots,
	// impact orderings) are rebuilt eagerly. A no-op for algorithms
	// whose bounds are always exact.
	Refresh()
	// ResyncAll is the whole-store bulk-load resync: equivalent to
	// SyncThreshold for every query followed by Refresh, but in one
	// pass — ratio structures are rebuilt wholesale instead of updated
	// posting by posting. Generation installs and repartitions use it
	// after transplanting results directly into the store.
	ResyncAll()
	// DrainChanged calls fn (when non-nil) for every query whose top-k
	// changed since the previous drain, then resets the record. A nil
	// fn discards the record. The query IDs are processor-local. Not
	// safe concurrently with ProcessEvent.
	DrainChanged(fn func(q uint32))
	// Tombstone marks processor-local query q removed: from the next
	// event on it is never scored, never admits documents and never
	// dirties the change record, even though its index entries linger
	// until the next generation build sweeps them. Not safe
	// concurrently with ProcessEvent.
	Tombstone(q uint32)
}

// common holds the state every algorithm shares: the immutable index,
// the per-query result heaps, the threshold cache, and per-event
// scratch used to score candidates without allocation.
type common struct {
	ix    *index.Index
	store *topk.Store
	// thr caches S_k(q) in current epoch units; thr[q] == 0 means the
	// query is still warming up.
	thr []float64

	// Per-event scratch. Over a flat-layout index the document is
	// loaded into docArr, a dense accumulator indexed directly by
	// TermID: an O(1) unhashed probe per query term, with the previous
	// document's entries — remembered in prevTerms, an owned copy,
	// because callers reuse their vector buffers across events — erased
	// (not the whole array) on the next event. Over mapped layouts —
	// the legacy ablation control and the growing delta segment — docW
	// maps the document's terms to weights, rebuilt per event.
	// stamp/seen implement O(1) per-event candidate dedup.
	prevTerms []textproc.TermID
	docArr    []float64
	docW      map[textproc.TermID]float64
	seen      []uint32
	stamp     uint32
}

func newCommon(ix *index.Index) (*common, error) {
	n := ix.NumQueries()
	ks := make([]int, n)
	for q := 0; q < n; q++ {
		ks[q] = ix.K(uint32(q))
	}
	store, err := topk.NewStore(ks)
	if err != nil {
		return nil, err
	}
	c := &common{
		ix:    ix,
		store: store,
		thr:   make([]float64, n),
		seen:  make([]uint32, n),
	}
	if !ix.Flat() {
		c.docW = make(map[textproc.TermID]float64)
	}
	return c, nil
}

// Results implements Processor.
func (c *common) Results() *topk.Store { return c.store }

// setStore swaps the processor's result store for an externally owned
// one with identical shape (query count and per-query k). Parallel uses
// it right after construction to point each partition's processor at
// its slice of one shared arena. The slice need not be empty — a
// repartition hands pre-filled views to fresh processors — but then the
// caller must resynchronize the threshold state (SyncThreshold per
// query, Refresh), exactly like after a bulk load.
func (c *common) setStore(s *topk.Store) {
	if s.NumQueries() != c.store.NumQueries() {
		panic("algo: setStore with mismatched query count")
	}
	c.store = s
}

// beginEvent loads the document into the scratch probe and advances
// the dedup stamp. Flat-layout indexes fill the dense accumulator
// instead of a hash map: the fill is plain array stores, the erase
// touches only the previous document's terms, and each score probe is
// one bounds-checked load — no hashing anywhere on the hot path. The
// array grows with the vocabulary (counted in ScratchGrows); once the
// stream's term set stabilizes it never grows again, keeping the
// steady state allocation-free.
func (c *common) beginEvent(doc corpus.Document, m *EventMetrics) {
	if c.docW != nil {
		clear(c.docW)
		for _, tw := range doc.Vec {
			c.docW[tw.Term] = tw.Weight
		}
	} else {
		// Every prevTerms entry is inside the array: it grew to cover
		// them before they were written.
		for _, t := range c.prevTerms {
			c.docArr[t] = 0
		}
		c.prevTerms = c.prevTerms[:0]
		for _, tw := range doc.Vec {
			if t := int(tw.Term); t >= len(c.docArr) {
				grown := make([]float64, t+1+t/2)
				copy(grown, c.docArr)
				c.docArr = grown
				m.ScratchGrows++
			}
			c.docArr[tw.Term] = tw.Weight
			c.prevTerms = append(c.prevTerms, tw.Term)
		}
	}
	c.stamp++
	if c.stamp == 0 { // uint32 wrap: invalidate all stamps
		for i := range c.seen {
			c.seen[i] = 0
		}
		c.stamp = 1
	}
}

// markSeen stamps query q for this event, reporting whether it was
// already stamped.
func (c *common) markSeen(q uint32) bool {
	if c.seen[q] == c.stamp {
		return true
	}
	c.seen[q] = c.stamp
	return false
}

// score computes the exact cosine dot product of query q with the
// current document. All algorithms (and the oracle) share this exact
// code path, so admission decisions are bit-identical across them.
func (c *common) score(q uint32) float64 {
	terms, weights := c.ix.QueryTerms(q)
	var s float64
	if c.docW == nil {
		// Flat layout: one direct array load per query term. A term
		// the document lacks (including any beyond the array's current
		// size) contributes exactly 0, and the summation order matches
		// the map path term for term, so admission stays bit-identical
		// across layouts.
		arr := c.docArr
		for i, t := range terms {
			if int(t) < len(arr) {
				s += weights[i] * arr[t]
			}
		}
		return s
	}
	for i, t := range terms {
		s += weights[i] * c.docW[t]
	}
	return s
}

// ratio returns w/S_k(q) in current epoch units (+Inf during warm-up).
func (c *common) ratio(w float64, q uint32) float64 {
	t := c.thr[q]
	if t <= 0 {
		return math.Inf(1)
	}
	return w / t
}

// offer evaluates query q exactly and, on success, admits the document
// and refreshes the threshold cache. It returns whether the result
// changed and whether the threshold changed (callers with ratio
// structures must react to the latter). The inflated score is
// score·e.
func (c *common) offer(q uint32, docID uint64, e float64, m *EventMetrics) (thresholdChanged bool) {
	// Tombstone check: every algorithm funnels its candidates through
	// offer, so this one branch is the whole removed-query story — a
	// tombstoned query is never evaluated, never admits and never
	// dirties the change record, from the very next event after its
	// removal.
	if c.ix.Dead(q) {
		return false
	}
	m.Evaluated++
	s := c.score(q)
	if s <= 0 {
		return false
	}
	added, thrChanged := c.store.Add(q, docID, s*e)
	if added {
		m.Matched++
	}
	if thrChanged {
		c.thr[q] = c.store.Threshold(q)
	}
	return thrChanged
}

// SyncThreshold implements the baseline behaviour: refresh the cached
// threshold. Algorithms with ratio structures override this to also
// update their bounds.
func (c *common) SyncThreshold(q uint32) {
	c.thr[q] = c.store.Threshold(q)
}

// Refresh implements the baseline behaviour: nothing is lazily
// maintained, so nothing needs rebuilding.
func (c *common) Refresh() {}

// resyncThresholds refreshes every cached threshold from the store in
// one pass.
func (c *common) resyncThresholds() {
	for q := range c.thr {
		c.thr[q] = c.store.Threshold(uint32(q))
	}
}

// ResyncAll implements the baseline behaviour: only the threshold
// cache needs refreshing.
func (c *common) ResyncAll() { c.resyncThresholds() }

// DrainChanged implements Processor by draining the result store's
// change record.
func (c *common) DrainChanged(fn func(q uint32)) { c.store.DrainDirty(fn) }

// Tombstone implements Processor by marking the query dead in the
// index, which offer — the shared admission gate of every algorithm —
// checks per candidate.
func (c *common) Tombstone(q uint32) { c.ix.Tombstone(q) }

// rebase rescales thresholds and stored scores by factor. Algorithms
// with ratio structures additionally rescale their bound units.
func (c *common) rebase(factor float64) {
	if factor <= 0 || factor > 1 {
		panic("algo: rebase factor must be in (0, 1]")
	}
	c.store.Rebase(factor)
	for q := range c.thr {
		c.thr[q] *= factor
	}
}
