package algo

import (
	"repro/internal/corpus"
	"repro/internal/index"
)

// SortQuer re-implements the core of Vouzoukidou et al. (CIKM 2012):
// per-term posting lists ordered by descending score potential
// r = w/S_k(q), scanned term-at-a-time with the coverage rule.
//
// Coverage rule: if a document with m matching lists qualifies for q,
// then Σ_j f_j·r_j(q)·E ≥ 1 over at most m addends, so at least one
// list j satisfies f_j·r_j(q)·E ≥ 1/m. Scanning every list j down to
// the first entry with m·f_j·r·E < 1 therefore encounters every
// qualifying query at least once; each encountered query is scored
// exactly. Stale sort keys only ever overestimate r (thresholds are
// monotone), and the quantized keys overestimate the stale keys in
// turn — both errors extend scans, never shorten them, so exactness is
// preserved while the scan itself touches one byte per entry.
type SortQuer struct {
	*impactBase
}

// NewSortQuer builds the SortQuer baseline over ix.
func NewSortQuer(ix *index.Index) (*SortQuer, error) {
	b, err := newImpactBase(ix)
	if err != nil {
		return nil, err
	}
	return &SortQuer{impactBase: b}, nil
}

// Name implements Processor.
func (s *SortQuer) Name() string { return "SortQuer" }

// Rebase implements Processor.
func (s *SortQuer) Rebase(factor float64) { s.rebaseImpact(factor) }

// ProcessEvent implements Processor.
func (s *SortQuer) ProcessEvent(doc corpus.Document, e float64) EventMetrics {
	var m EventMetrics
	s.beginEvent(doc, &m)
	lists := s.prepare(doc.Vec, &m)
	nLists := 0
	for _, il := range lists {
		if il != nil && il.pl.Len() > 0 {
			nLists++
		}
	}
	if nLists == 0 {
		return m
	}
	mf := float64(nLists)
	for i, il := range lists {
		if il == nil || il.pl.Len() == 0 {
			continue
		}
		f := doc.Vec[i].Weight
		// Scan the impact-ordered prefix. Stop once even this list's
		// best remaining contribution cannot carry its 1/m share. The
		// cutoff compares quantized bytes; scanned candidates resolve
		// through perm to the shared posting backing.
		qstop := il.qstop((1 - boundSlack) / (mf * f * e * s.scale))
		p := il.pl.P
		for pos, qk := range il.qkeys {
			if qk < qstop {
				m.QuantPruned += len(il.qkeys) - pos
				break
			}
			m.Postings++
			m.Iterations++
			q := p[il.perm[pos]].QID
			if s.markSeen(q) {
				continue
			}
			if s.offer(q, doc.ID, e, &m) {
				s.noteThresholdChange(q)
			}
		}
	}
	return m
}
