package algo

import (
	"repro/internal/corpus"
	"repro/internal/index"
)

// SortQuer re-implements the core of Vouzoukidou et al. (CIKM 2012):
// per-term posting lists ordered by descending score potential
// r = w/S_k(q), scanned term-at-a-time with the coverage rule.
//
// Coverage rule: if a document with m matching lists qualifies for q,
// then Σ_j f_j·r_j(q)·E ≥ 1 over at most m addends, so at least one
// list j satisfies f_j·r_j(q)·E ≥ 1/m. Scanning every list j down to
// the first entry with m·f_j·r·E < 1 therefore encounters every
// qualifying query at least once; each encountered query is scored
// exactly. Stale sort keys only ever overestimate r (thresholds are
// monotone), so scans stop late, never early — exactness is preserved.
type SortQuer struct {
	*impactBase
}

// NewSortQuer builds the SortQuer baseline over ix.
func NewSortQuer(ix *index.Index) (*SortQuer, error) {
	b, err := newImpactBase(ix)
	if err != nil {
		return nil, err
	}
	return &SortQuer{impactBase: b}, nil
}

// Name implements Processor.
func (s *SortQuer) Name() string { return "SortQuer" }

// Rebase implements Processor.
func (s *SortQuer) Rebase(factor float64) { s.rebaseImpact(factor) }

// ProcessEvent implements Processor.
func (s *SortQuer) ProcessEvent(doc corpus.Document, e float64) EventMetrics {
	var m EventMetrics
	s.beginEvent(doc)
	lists := s.prepare(doc.Vec)
	nLists := 0
	for _, il := range lists {
		if il != nil && len(il.entries) > 0 {
			nLists++
		}
	}
	if nLists == 0 {
		return m
	}
	mf := float64(nLists)
	for i, il := range lists {
		if il == nil || len(il.entries) == 0 {
			continue
		}
		f := doc.Vec[i].Weight
		// Scan the impact-ordered prefix. Stop once even this list's
		// best remaining contribution cannot carry its 1/m share.
		stop := (1 - boundSlack) / (mf * f * e * s.scale)
		for pos, key := range il.keys {
			if key < stop {
				break
			}
			m.Postings++
			m.Iterations++
			q := il.entries[pos].QID
			if s.markSeen(q) {
				continue
			}
			if s.offer(q, doc.ID, e, &m) {
				s.noteThresholdChange(q)
			}
		}
	}
	return m
}
