package algo

import (
	"math"

	"repro/internal/corpus"
	"repro/internal/index"
)

// TPS re-implements the top-k publish/subscribe approach of Shraer et
// al. (PVLDB 2013), the strongest frequency-ordered baseline in the
// paper's evaluation. It shares SortQuer's impact-ordered lists and
// coverage-rule scan depth, but inserts a constant-time per-entry
// admission filter before exact scoring: an encountered query q in
// list j is scored only if
//
//	f_j·r_j(q)·E + Σ_{j'≠j} f_{j'}·maxr_{j'}·E  ≥  1
//
// i.e. only if its known contribution plus the best possible
// contribution of every other list can reach the threshold. The filter
// is an upper bound of the exact score — the quantized keys round up,
// so a dequantized key still upper-bounds the true ratio — meaning
// skipped entries are safe; a qualifying query always passes the
// filter in its argmax list. This is the "document upper-bound"
// pruning of the TPS paper adapted to per-query thresholds, and it is
// what keeps TPS within ~8× of MRIO while SortQuer and RTA trail
// further.
type TPS struct {
	*impactBase
	contrib []float64 // per-event per-list head contributions (scratch)
}

// NewTPS builds the TPS baseline over ix.
func NewTPS(ix *index.Index) (*TPS, error) {
	b, err := newImpactBase(ix)
	if err != nil {
		return nil, err
	}
	return &TPS{impactBase: b}, nil
}

// Name implements Processor.
func (t *TPS) Name() string { return "TPS" }

// Rebase implements Processor.
func (t *TPS) Rebase(factor float64) { t.rebaseImpact(factor) }

// ProcessEvent implements Processor.
func (t *TPS) ProcessEvent(doc corpus.Document, e float64) EventMetrics {
	var m EventMetrics
	t.beginEvent(doc, &m)
	lists := t.prepare(doc.Vec, &m)

	// Per-list best possible contribution f_j·maxr_j·E; the list head
	// key is the maximum since lists are impact-ordered (stale and
	// quantized keys only overestimate). Warm-up lists have +Inf heads,
	// so the finite mass and the Inf count are tracked separately to
	// keep "sum of the other lists" NaN-free.
	if cap(t.contrib) < len(lists) {
		t.contrib = make([]float64, len(lists))
		m.ScratchGrows++
	}
	contrib := t.contrib[:len(lists)]
	nLists, nInf := 0, 0
	finiteTotal := 0.0
	for i, il := range lists {
		contrib[i] = 0
		if il == nil || il.pl.Len() == 0 {
			continue
		}
		nLists++
		contrib[i] = doc.Vec[i].Weight * il.val(il.qkeys[0]) * t.scale * e
		if math.IsInf(contrib[i], 1) {
			nInf++
		} else {
			finiteTotal += contrib[i]
		}
	}
	if nLists == 0 {
		return m
	}
	mf := float64(nLists)

	for i, il := range lists {
		if il == nil || il.pl.Len() == 0 {
			continue
		}
		f := doc.Vec[i].Weight
		// other = Σ_{j'≠j} f_{j'}·maxr_{j'}·E, +Inf when any other list
		// still holds warm-up queries (then nothing can be filtered).
		other := finiteTotal
		switch {
		case math.IsInf(contrib[i], 1):
			if nInf > 1 {
				other = math.Inf(1)
			}
		default:
			other -= contrib[i]
			if nInf > 0 {
				other = math.Inf(1)
			}
		}
		qstop := il.qstop((1 - boundSlack) / (mf * f * e * t.scale))
		p := il.pl.P
		for pos, qk := range il.qkeys {
			if qk < qstop {
				m.QuantPruned += len(il.qkeys) - pos
				break
			}
			m.Postings++
			m.Iterations++
			q := p[il.perm[pos]].QID
			if t.seen[q] == t.stamp {
				continue
			}
			// Admission filter: known share plus other lists' maxima.
			if f*il.val(qk)*t.scale*e+other < 1-boundSlack {
				continue
			}
			t.seen[q] = t.stamp
			if t.offer(q, doc.ID, e, &m) {
				t.noteThresholdChange(q)
			}
		}
	}
	return m
}
