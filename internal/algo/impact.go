package algo

import (
	"sort"

	"repro/internal/index"
	"repro/internal/textproc"
)

// impactList is a posting list ordered by descending score potential
// r = w/S_k(q) — the "query-sensitive impact" ordering that SortQuer
// and TPS use. Because thresholds only grow, the sort keys captured at
// the last resort are upper bounds of the current ratios, so a stale
// ordering still yields exact pruning; lists are resorted once enough
// of their queries' thresholds have moved.
type impactList struct {
	entries []index.Posting
	keys    []float64 // ratio at last resort, in stored units
	updates int       // threshold updates since last resort
}

// resortBudget returns how many threshold updates a list tolerates
// before resorting.
func (il *impactList) resortBudget() int {
	b := len(il.entries) / 8
	if b < 32 {
		b = 32
	}
	return b
}

// impactBase is the state shared by SortQuer and TPS.
type impactBase struct {
	*common
	lists map[textproc.TermID]*impactList
	scale float64 // currentRatio = key · scale
}

func newImpactBase(ix *index.Index) (*impactBase, error) {
	c, err := newCommon(ix)
	if err != nil {
		return nil, err
	}
	b := &impactBase{
		common: c,
		lists:  make(map[textproc.TermID]*impactList, ix.NumLists()),
		scale:  1,
	}
	ix.Lists(func(pl *index.PostingList) {
		il := &impactList{entries: append([]index.Posting(nil), pl.P...)}
		il.keys = make([]float64, len(il.entries))
		b.lists[pl.Term] = il
	})
	b.resortAll()
	return b, nil
}

// resort recomputes keys from current thresholds and re-sorts.
func (b *impactBase) resort(il *impactList) {
	for i, p := range il.entries {
		il.keys[i] = b.ratio(p.W, p.QID) / b.scale
	}
	// Sort entries and keys together, descending by key.
	idx := make([]int, len(il.entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return il.keys[idx[x]] > il.keys[idx[y]] })
	entries := make([]index.Posting, len(il.entries))
	keys := make([]float64, len(il.keys))
	for out, in := range idx {
		entries[out] = il.entries[in]
		keys[out] = il.keys[in]
	}
	il.entries, il.keys = entries, keys
	il.updates = 0
}

// resortAll rebuilds every list and resets the scale.
func (b *impactBase) resortAll() {
	b.scale = 1
	for _, il := range b.lists {
		b.resort(il)
	}
}

// SyncThreshold implements Processor.
func (b *impactBase) SyncThreshold(q uint32) {
	b.common.SyncThreshold(q)
	b.noteThresholdChange(q)
}

// Refresh implements Processor: every impact ordering is resorted from
// current thresholds.
func (b *impactBase) Refresh() {
	for _, il := range b.lists {
		b.resort(il)
	}
}

// ResyncAll implements Processor.
func (b *impactBase) ResyncAll() {
	b.resyncThresholds()
	b.Refresh()
}

// noteThresholdChange bumps staleness on every list containing q.
func (b *impactBase) noteThresholdChange(q uint32) {
	for _, ref := range b.ix.Refs(q) {
		b.lists[ref.Term].updates++
	}
}

// prepare resorts any of the event's lists that exhausted their
// staleness budget, returning the per-term list handles.
func (b *impactBase) prepare(doc []textproc.TermWeight) []*impactList {
	out := make([]*impactList, len(doc))
	for i, tw := range doc {
		il := b.lists[tw.Term]
		if il != nil && il.updates > il.resortBudget() {
			b.resort(il)
		}
		out[i] = il
	}
	return out
}

// rebaseImpact absorbs a rebase into the scale factor, renormalizing
// via a full resort when the scale nears the underflow guard.
func (b *impactBase) rebaseImpact(factor float64) {
	b.rebase(factor)
	b.scale /= factor
	if b.scale > maxRebuildScale {
		b.resortAll()
	}
}
