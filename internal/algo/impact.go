package algo

import (
	"math"

	"repro/internal/index"
	"repro/internal/textproc"
)

// impactList presents one posting list in descending order of score
// potential r = w/S_k(q) — the "query-sensitive impact" ordering that
// SortQuer and TPS use — without copying a single posting: perm holds
// indexes into the shared backing list, and the sort keys are
// quantized to one byte each, so a bound scan walks a dense uint8
// array instead of postings.
//
// Quantization is exactness-preserving because it only ever rounds
// up: qkeys[i]·unit ≥ the float key captured at the last resort, which
// (thresholds being monotone) is itself ≥ the current true ratio. A
// coarser bound can only extend a scan, never cut it short, and every
// scanned candidate is still scored exactly through offer.
type impactList struct {
	pl *index.PostingList
	// perm[pos] indexes pl.P; positions are in descending qkey order,
	// ties kept in ascending posting order (counting sort, stable).
	perm []uint32
	// qkeys[pos] is the quantized sort key of pl.P[perm[pos]]:
	// key ≤ qkeys[pos]·unit for finite keys; 255 encodes +Inf
	// (warm-up), which no finite stop can skip.
	qkeys []uint8
	// unit is the quantization step: maxFiniteKey/254 at the last
	// resort (1 when every finite key was 0), so finite qkeys fit in
	// 1..254.
	unit    float64
	updates int // threshold updates since last resort
}

// quantBuckets is the number of finite quantization buckets (qkey 255
// is reserved for +Inf warm-up ratios).
const quantBuckets = 254

// resortBudget returns how many threshold updates a list tolerates
// before resorting.
func (il *impactList) resortBudget() int {
	b := il.pl.Len() / 8
	if b < 32 {
		b = 32
	}
	return b
}

// val decodes one quantized key back to its (upper-bound) float value.
func (il *impactList) val(qk uint8) float64 {
	if qk == math.MaxUint8 {
		return math.Inf(1)
	}
	return float64(qk) * il.unit
}

// qstop quantizes a scan cutoff (stored units): every entry whose
// float key is ≥ stop has qkey ≥ qstop(stop), so scanning while
// qkeys[pos] ≥ qstop covers a superset of the exact-key scan, and
// stopping is safe because qkey < qstop implies key < stop.
func (il *impactList) qstop(stop float64) uint8 {
	if stop <= 0 {
		return 0
	}
	q := math.Ceil(stop / il.unit)
	if q >= math.MaxUint8 {
		return math.MaxUint8
	}
	return uint8(q)
}

// impactBase is the state shared by SortQuer and TPS.
type impactBase struct {
	*common
	lists []impactList // slot-indexed, parallel to the index term table
	scale float64      // currentRatio = key · scale

	// Resort scratch, reused across resorts: raw float keys per
	// original posting position, quantized keys per original position,
	// and the counting-sort histogram.
	keyBuf []float64
	qBuf   []uint8
	cnt    [256]int

	// prep is the per-event list-handle scratch.
	prep []*impactList
}

func newImpactBase(ix *index.Index) (*impactBase, error) {
	c, err := newCommon(ix)
	if err != nil {
		return nil, err
	}
	b := &impactBase{
		common: c,
		lists:  make([]impactList, ix.NumLists()),
		scale:  1,
	}
	ix.Lists(func(pl *index.PostingList) {
		b.lists[pl.Slot] = impactList{
			pl:    pl,
			perm:  make([]uint32, pl.Len()),
			qkeys: make([]uint8, pl.Len()),
		}
	})
	b.resortAll()
	return b, nil
}

// resort recomputes quantized keys from current thresholds and
// re-orders the permutation with a counting sort: O(n + 256), no
// comparison sort, no allocation in steady state, and deterministic
// (stable by posting position within a bucket).
func (b *impactBase) resort(il *impactList) {
	p := il.pl.P
	n := len(p)
	if cap(b.keyBuf) < n {
		b.keyBuf = make([]float64, n)
		b.qBuf = make([]uint8, n)
	}
	keys := b.keyBuf[:n]
	qs := b.qBuf[:n]
	maxFinite := 0.0
	for i, e := range p {
		k := b.ratio(e.W, e.QID) / b.scale
		keys[i] = k
		if !math.IsInf(k, 1) && k > maxFinite {
			maxFinite = k
		}
	}
	unit := maxFinite / quantBuckets
	if unit == 0 {
		unit = 1
	}
	il.unit = unit
	cnt := &b.cnt
	*cnt = [256]int{}
	for i, k := range keys {
		var q uint8
		if math.IsInf(k, 1) {
			q = math.MaxUint8
		} else if c := math.Ceil(k / unit); c >= quantBuckets {
			// k ≤ maxFinite, so c > quantBuckets only through rounding
			// in unit; the clamp can undershoot key by at most an ulp,
			// which boundSlack (1e-9 ≫ 1e-16) absorbs.
			q = quantBuckets
		} else {
			q = uint8(c)
		}
		qs[i] = q
		cnt[q]++
	}
	// Bucket start offsets in descending key order: 255 first.
	start := 0
	for qk := math.MaxUint8; qk >= 0; qk-- {
		c := cnt[qk]
		cnt[qk] = start
		start += c
	}
	for i, q := range qs {
		out := cnt[q]
		cnt[q]++
		il.perm[out] = uint32(i)
		il.qkeys[out] = q
	}
	il.updates = 0
}

// resortAll rebuilds every list and resets the scale.
func (b *impactBase) resortAll() {
	b.scale = 1
	for i := range b.lists {
		b.resort(&b.lists[i])
	}
}

// SyncThreshold implements Processor.
func (b *impactBase) SyncThreshold(q uint32) {
	b.common.SyncThreshold(q)
	b.noteThresholdChange(q)
}

// Refresh implements Processor: every impact ordering is resorted from
// current thresholds.
func (b *impactBase) Refresh() {
	for i := range b.lists {
		b.resort(&b.lists[i])
	}
}

// ResyncAll implements Processor.
func (b *impactBase) ResyncAll() {
	b.resyncThresholds()
	b.Refresh()
}

// noteThresholdChange bumps staleness on every list containing q.
func (b *impactBase) noteThresholdChange(q uint32) {
	for _, ref := range b.ix.Refs(q) {
		b.lists[ref.Slot].updates++
	}
}

// listFor returns the impact list of term t, or nil (tests).
func (b *impactBase) listFor(t textproc.TermID) *impactList {
	if s := b.ix.Slot(t); s >= 0 {
		return &b.lists[s]
	}
	return nil
}

// prepare resorts any of the event's lists that exhausted their
// staleness budget, returning the per-term list handles in reused
// scratch (valid until the next prepare).
func (b *impactBase) prepare(doc textproc.Vector, m *EventMetrics) []*impactList {
	if cap(b.prep) < len(doc) {
		m.ScratchGrows++
	}
	out := b.prep[:0]
	for _, tw := range doc {
		var il *impactList
		if s := b.ix.Slot(tw.Term); s >= 0 {
			il = &b.lists[s]
			if il.updates > il.resortBudget() {
				b.resort(il)
			}
		}
		out = append(out, il)
	}
	b.prep = out
	return out
}

// rebaseImpact absorbs a rebase into the scale factor, renormalizing
// via a full resort when the scale nears the underflow guard.
func (b *impactBase) rebaseImpact(factor float64) {
	b.rebase(factor)
	b.scale /= factor
	if b.scale > maxRebuildScale {
		b.resortAll()
	}
}
