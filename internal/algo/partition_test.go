package algo

import (
	"math"
	"slices"
	"testing"

	"repro/internal/index"
	"repro/internal/workload"
)

func TestParseStrategy(t *testing.T) {
	for _, s := range []string{"count", "mass"} {
		got, err := ParseStrategy(s)
		if err != nil || string(got) != s {
			t.Fatalf("ParseStrategy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("ParseStrategy(bogus) succeeded")
	}
}

// TestPlanCountMatchesLegacySplit: the count strategy must reproduce
// the historical i·n/workers boundaries exactly, so the knob's legacy
// setting really is today's behavior.
func TestPlanCountMatchesLegacySplit(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{10, 3}, {7, 7}, {100, 8}, {5, 1}, {3, 16}, {0, 4},
	} {
		costs := make([]float64, tc.n)
		for i := range costs {
			costs[i] = float64(1 + i%5)
		}
		plan := PlanCosts(costs, tc.workers, StrategyCount)
		workers := tc.workers
		if workers > tc.n {
			workers = tc.n
		}
		if workers < 1 {
			workers = 1
		}
		if plan.Partitions() != workers {
			t.Fatalf("n=%d workers=%d: partitions = %d, want %d", tc.n, tc.workers, plan.Partitions(), workers)
		}
		for i := 0; i <= workers; i++ {
			if want := uint32(i * tc.n / workers); plan.Offs[i] != want {
				t.Fatalf("n=%d workers=%d: offs[%d] = %d, want %d", tc.n, tc.workers, i, plan.Offs[i], want)
			}
		}
	}
}

// partCosts sums each partition's cost under a plan.
func partCosts(plan Plan, costs []float64) []float64 {
	out := make([]float64, plan.Partitions())
	for p := 0; p < plan.Partitions(); p++ {
		for q := plan.Offs[p]; q < plan.Offs[p+1]; q++ {
			out[p] += costs[q]
		}
	}
	return out
}

// TestPlanMassBoundsPartitionCost: as long as no single query
// outweighs the ideal per-partition share, every mass partition's cost
// stays within 2× of total/P — the greedy prefix-sum cut can overshoot
// a boundary by at most one query.
func TestPlanMassBoundsPartitionCost(t *testing.T) {
	costs := []float64{
		// A skewed front block (hot queries) and a light tail.
		40, 38, 36, 35, 30, 28, 25, 20,
		1, 1, 2, 1, 1, 2, 1, 1, 2, 1, 1, 2, 1, 1, 1, 1, 1, 1, 2, 1, 1, 1, 1, 1,
	}
	const workers = 4
	var total, maxCost float64
	for _, c := range costs {
		total += c
		if c > maxCost {
			maxCost = c
		}
	}
	ideal := total / workers
	if maxCost >= ideal {
		t.Fatalf("fixture degenerate: max query cost %v ≥ ideal share %v", maxCost, ideal)
	}
	plan := PlanCosts(costs, workers, StrategyMass)
	if plan.Partitions() != workers {
		t.Fatalf("partitions = %d", plan.Partitions())
	}
	for p, c := range partCosts(plan, costs) {
		if c > 2*ideal {
			t.Fatalf("partition %d cost %v exceeds 2× ideal %v (offs %v)", p, c, ideal, plan.Offs)
		}
	}
	// And the plan must actually beat the blind count split on this
	// skew: the count split's worst partition carries the whole hot
	// block.
	count := PlanCosts(costs, workers, StrategyCount)
	maxMass, maxCount := 0.0, 0.0
	for _, c := range partCosts(plan, costs) {
		maxMass = math.Max(maxMass, c)
	}
	for _, c := range partCosts(count, costs) {
		maxCount = math.Max(maxCount, c)
	}
	if maxMass >= maxCount {
		t.Fatalf("mass max %v not better than count max %v", maxMass, maxCount)
	}
}

// TestPlanMassOnSkewedWorkload is the end-to-end version of the bound:
// on the Hot workload (half the query IDs concentrated on a few hot
// topic zones) the mass plan keeps every partition's posting mass
// within 2× of the ideal share, while the count split exceeds it.
func TestPlanMassOnSkewedWorkload(t *testing.T) {
	vecs, _ := parallelFixture(t, workload.Hot, 400, 10, 31)
	costs := index.EstimateCosts(vecs)
	const workers = 4
	var total float64
	for _, c := range costs {
		total += c
	}
	ideal := total / workers
	mass := PlanCosts(costs, workers, StrategyMass)
	maxMass := 0.0
	for p, c := range partCosts(mass, costs) {
		if c > 2*ideal {
			t.Fatalf("mass partition %d cost %v exceeds 2× ideal %v (offs %v)", p, c, ideal, mass.Offs)
		}
		maxMass = math.Max(maxMass, c)
	}
	count := PlanCosts(costs, workers, StrategyCount)
	maxCount := 0.0
	for _, c := range partCosts(count, costs) {
		maxCount = math.Max(maxCount, c)
	}
	// The blind split's worst partition must be materially heavier than
	// the mass split's — otherwise the fixture isn't skewed and the
	// test proves nothing.
	if maxCount < 1.2*maxMass {
		t.Fatalf("fixture not skewed enough: count max %v vs mass max %v (ideal %v)", maxCount, maxMass, ideal)
	}
}

// TestPlanMassNonEmptyAndMonotone: boundaries must always be monotone
// with no empty partition, even under pathological cost vectors.
func TestPlanMassNonEmptyAndMonotone(t *testing.T) {
	cases := [][]float64{
		{100, 0, 0, 0, 0, 0, 0, 0},     // all mass up front
		{0, 0, 0, 0, 0, 0, 0, 100},     // all mass at the back
		{0, 0, 0, 0, 0, 0, 0, 0},       // no mass at all → count fallback
		{1, 1, 1, 1, 1, 1, 1, 1},       // perfectly even
		{5, -3, 2, 8, 1, 1, 9, 4},      // negative costs clamp to 0
		{math.Inf(1) - math.Inf(1), 1}, // NaN-ish input must not wedge boundaries
	}
	for ci, costs := range cases {
		for _, workers := range []int{1, 2, 3, len(costs)} {
			plan := PlanCosts(costs, workers, StrategyMass)
			if plan.Partitions() != min(workers, len(costs)) {
				t.Fatalf("case %d workers %d: partitions = %d", ci, workers, plan.Partitions())
			}
			if plan.Offs[0] != 0 || plan.Offs[plan.Partitions()] != uint32(len(costs)) {
				t.Fatalf("case %d workers %d: coverage %v", ci, workers, plan.Offs)
			}
			for p := 1; p <= plan.Partitions(); p++ {
				if plan.Offs[p] <= plan.Offs[p-1] {
					t.Fatalf("case %d workers %d: empty or inverted partition in %v", ci, workers, plan.Offs)
				}
			}
		}
	}
}

// TestReplanScaled: scaling the costs by observed busy-time density
// must shrink an over-busy partition and leave a balanced observation
// unchanged.
func TestReplanScaled(t *testing.T) {
	costs := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	base := PlanCosts(costs, 3, StrategyMass) // [0 4 8 12]

	// Balanced observation → identical boundaries.
	same := replanScaled(costs, base.Offs, []int64{100, 100, 100})
	if !slices.Equal(same.Offs, base.Offs) {
		t.Fatalf("balanced replan moved boundaries: %v → %v", base.Offs, same.Offs)
	}

	// Partition 0 observed 4× busier than its mass predicts → it must
	// shed queries to the others.
	moved := replanScaled(costs, base.Offs, []int64{400, 100, 100})
	if slices.Equal(moved.Offs, base.Offs) {
		t.Fatalf("skewed replan did not move boundaries: %v", moved.Offs)
	}
	if moved.Offs[1] >= base.Offs[1] {
		t.Fatalf("over-busy partition 0 did not shrink: %v → %v", base.Offs, moved.Offs)
	}
	// The scaled costs become the next round's base, so corrections
	// compound: partition 0's queries must now look more expensive
	// than the rest.
	if moved.Costs[0] <= moved.Costs[len(costs)-1] {
		t.Fatalf("scaled costs not carried forward: %v", moved.Costs)
	}
}
