package algo

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/rangemax"
	"repro/internal/textproc"
)

// buildTinyIndex constructs an index with controlled lists:
// term 1 → queries {0, 2, 4}, term 2 → queries {1, 2, 3, 4}.
func buildTinyIndex(t *testing.T, k int) *index.Index {
	t.Helper()
	vecs := []textproc.Vector{
		{{Term: 1, Weight: 1.0}},
		{{Term: 2, Weight: 1.0}},
		{{Term: 1, Weight: 0.6}, {Term: 2, Weight: 0.8}},
		{{Term: 2, Weight: 1.0}},
		{{Term: 1, Weight: 0.8}, {Term: 2, Weight: 0.6}},
	}
	ks := []int{k, k, k, k, k}
	ix, err := index.Build(vecs, ks)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestCursorStepAndSeek(t *testing.T) {
	ix := buildTinyIndex(t, 1)
	rl := &ratioList{pl: ix.List(2)}
	c := cursor{rl: rl, id: rl.pl.P[0].QID}
	if c.id != 1 {
		t.Fatalf("first id = %d", c.id)
	}
	if !c.advanceTo(3) {
		t.Fatal("advanceTo(3) exhausted")
	}
	if c.id != 3 {
		t.Fatalf("id after seek = %d", c.id)
	}
	if !c.step() {
		t.Fatal("step exhausted early")
	}
	if c.id != 4 {
		t.Fatalf("id after step = %d", c.id)
	}
	if c.step() {
		t.Fatal("step beyond end succeeded")
	}
}

func TestWarmupEveryQueryPivots(t *testing.T) {
	// All thresholds are 0 → all ratios +Inf → every query sharing a
	// term must be evaluated, one pivot each, no zone jumps.
	ix := buildTinyIndex(t, 2)
	mrio, err := NewMRIO(ix, rangemax.KindSegTree)
	if err != nil {
		t.Fatal(err)
	}
	doc := corpus.Document{ID: 9, Vec: textproc.Vector{{Term: 1, Weight: 0.7}, {Term: 2, Weight: 0.7}}}
	m := mrio.ProcessEvent(doc, 1)
	if m.Evaluated != 5 {
		t.Fatalf("evaluated %d queries, want all 5", m.Evaluated)
	}
	if m.Matched != 5 {
		t.Fatalf("matched %d, want 5 (warm-up admits everything)", m.Matched)
	}
}

func TestSteadyStatePrunes(t *testing.T) {
	// Saturate all thresholds with a very strong document, then send a
	// weak one: nothing should be evaluated.
	ix := buildTinyIndex(t, 1)
	mrio, _ := NewMRIO(ix, rangemax.KindSegTree)
	strong := corpus.Document{ID: 1, Vec: textproc.Vector{{Term: 1, Weight: 0.9}, {Term: 2, Weight: 0.9}}}
	mrio.ProcessEvent(strong, 1)
	weak := corpus.Document{ID: 2, Vec: textproc.Vector{{Term: 1, Weight: 0.01}, {Term: 2, Weight: 0.01}}}
	m := mrio.ProcessEvent(weak, 1)
	if m.Evaluated != 0 {
		t.Fatalf("weak doc evaluated %d queries, want 0 (bounds should prune)", m.Evaluated)
	}
	if m.Matched != 0 {
		t.Fatal("weak doc matched")
	}
}

func TestRatioUpdatesAfterMatch(t *testing.T) {
	ix := buildTinyIndex(t, 1)
	mrio, _ := NewMRIO(ix, rangemax.KindSegTree)
	doc := corpus.Document{ID: 1, Vec: textproc.Vector{{Term: 1, Weight: 1.0}}}
	mrio.ProcessEvent(doc, 1)
	// Queries 0, 2, 4 matched; their thresholds are now positive and
	// their stored ratios finite.
	for _, q := range []uint32{0, 2, 4} {
		if mrio.thr[q] <= 0 {
			t.Fatalf("query %d threshold %v after match", q, mrio.thr[q])
		}
	}
	rl := mrio.listFor(1)
	if math.IsInf(rangemax.GlobalMax(rl.maxer), 1) {
		t.Fatal("list 1 still has +Inf ratios after all members matched")
	}
	// Queries 1, 3 (term 2 only) never matched: list 2 keeps +Inf.
	if !math.IsInf(rangemax.GlobalMax(mrio.listFor(2).maxer), 1) {
		t.Fatal("list 2 lost its warm-up ratios without matches")
	}
}

func TestScaleRenormalization(t *testing.T) {
	// Drive the rebase scale past maxRebuildScale and verify the
	// structures renormalize and stay correct.
	ix := buildTinyIndex(t, 1)
	mrio, _ := NewMRIO(ix, rangemax.KindBlock)
	strong := corpus.Document{ID: 1, Vec: textproc.Vector{{Term: 1, Weight: 0.9}, {Term: 2, Weight: 0.9}}}
	mrio.ProcessEvent(strong, 1)

	for i := 0; i < 3; i++ {
		mrio.Rebase(math.Exp(-100)) // scale *= e^100 each time
	}
	if mrio.scale != 1 {
		t.Fatalf("scale = %v after exceeding maxRebuildScale, want renormalized 1", mrio.scale)
	}
	// After rebases the old scores are ≈ e^-300 ≈ 0; a fresh weak doc
	// with E=1 must now beat them.
	weak := corpus.Document{ID: 2, Vec: textproc.Vector{{Term: 1, Weight: 0.05}}}
	m := mrio.ProcessEvent(weak, 1)
	if m.Matched == 0 {
		t.Fatal("doc could not displace fully-decayed incumbents")
	}
}

func TestCompactDropsExhausted(t *testing.T) {
	ix := buildTinyIndex(t, 1)
	rl1 := &ratioList{pl: ix.List(1)}
	rl2 := &ratioList{pl: ix.List(2)}
	cur := []cursor{
		{rl: rl1, pos: rl1.pl.Len()}, // exhausted
		{rl: rl2, pos: 0, id: rl2.pl.P[0].QID},
	}
	out := compact(cur)
	if len(out) != 1 || out[0].rl != rl2 {
		t.Fatalf("compact kept %d cursors", len(out))
	}
}

func TestJumpAllStride(t *testing.T) {
	ix := buildTinyIndex(t, 1)
	rl := &ratioList{pl: ix.List(2)} // queries 1,2,3,4
	cur := []cursor{{rl: rl, pos: 0, id: 1}}
	var m EventMetrics
	cur = jumpAll(cur, 4, &m)
	if len(cur) != 1 || cur[0].id != 4 {
		t.Fatalf("jumpAll landed at %+v", cur)
	}
	cur = jumpAll(cur, 99, &m)
	if len(cur) != 0 {
		t.Fatal("jumpAll past end kept cursor")
	}
}

func TestExtendWalkBlockAndSeg(t *testing.T) {
	// Build a list with a known ratio layout and walk zones.
	vecs := make([]textproc.Vector, 40)
	ks := make([]int, 40)
	for i := range vecs {
		vecs[i] = textproc.Vector{{Term: 7, Weight: 0.5}}
		ks[i] = 1
	}
	ix, err := index.Build(vecs, ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []rangemax.Kind{rangemax.KindSegTree, rangemax.KindBlock, rangemax.KindSparse} {
		a, err := NewMRIO(ix, kind)
		if err != nil {
			t.Fatal(err)
		}
		// Give every query a threshold so ratios are finite: 0.5/0.25=2.
		for q := uint32(0); q < 40; q++ {
			a.store.Add(q, 100, 0.25)
			a.SyncThreshold(q)
		}
		// Bulk loads leave lazily maintained structures (notably the
		// sparse snapshot) stale-high; Refresh restores exactness, as
		// the monitor and harness do after bulk loading.
		a.Refresh()
		rl := a.listFor(7)
		c := &cursor{rl: rl, pos: 0, id: 0}
		w := walkState{pos: 0, nextID: 0}
		a.extendWalk(c, &w, 20) // walk zone [0, 20)
		if w.max != 2 {
			t.Fatalf("%v: walk max = %v, want 2", kind, w.max)
		}
		if w.pos < 20 {
			t.Fatalf("%v: walk stopped at %d", kind, w.pos)
		}
		if w.nextID != 20 && w.pos != 40 {
			t.Fatalf("%v: nextID = %d pos=%d", kind, w.nextID, w.pos)
		}
	}
}

func TestMRIONames(t *testing.T) {
	ix := buildTinyIndex(t, 1)
	seg, _ := NewMRIO(ix, rangemax.KindSegTree)
	if seg.Name() != "MRIO" {
		t.Fatalf("seg name = %s", seg.Name())
	}
	blk, _ := NewMRIO(ix, rangemax.KindBlock)
	if blk.Name() != "MRIO-block" {
		t.Fatalf("block name = %s", blk.Name())
	}
}
