package algo

import (
	"fmt"
	"sort"

	"repro/internal/index"
	"repro/internal/textproc"
)

// Strategy selects how a shard's query ID range is split across the
// intra-shard matching workers of a Parallel processor.
type Strategy string

const (
	// StrategyCount cuts the range into equal query-count slices — the
	// workload-blind legacy split. Cheap and stable, but under term
	// skew one slice can own most of the posting mass while the others
	// idle, and the event latency is bounded by the slowest slice.
	StrategyCount Strategy = "count"
	// StrategyMass equalizes estimated matching cost (posting mass)
	// across slices via prefix sums over per-query cost statistics,
	// and — through Parallel.CheckBalance — adapts the boundaries to
	// the observed per-partition work. The default.
	StrategyMass Strategy = "mass"
)

// ParseStrategy converts a partition-strategy name.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case StrategyCount, StrategyMass:
		return Strategy(s), nil
	}
	return "", fmt.Errorf("algo: unknown partition strategy %q", s)
}

// Plan is a boundary plan over a shard's query range: partition p owns
// queries [Offs[p], Offs[p+1]). Plans are computed by PlanCosts (or
// NewPlan) and handed to NewParallel, which no longer chooses its own
// boundaries — boundary policy and matching mechanics are separate
// layers.
type Plan struct {
	// Strategy records how the boundaries were chosen; Parallel keeps
	// it to decide whether observed imbalance may move them.
	Strategy Strategy
	// Offs has one entry per partition plus a trailing len(costs);
	// it is non-decreasing with Offs[0] == 0.
	Offs []uint32
	// Costs is the per-query cost estimate the boundaries were planned
	// over (posting mass), retained for occupancy reporting and for
	// adaptive replanning.
	Costs []float64
	// Layout selects the posting storage layout of the sub-indexes built
	// over the boundaries. The zero value is the flat (contiguous)
	// layout, which is the right default for frozen partitions.
	Layout index.Layout
}

// Partitions returns the number of partitions in the plan.
func (p Plan) Partitions() int { return len(p.Offs) - 1 }

// validate reports the first structural problem with the plan for a
// query set of size n.
func (p Plan) validate(n int) error {
	if len(p.Offs) < 2 {
		return fmt.Errorf("algo: plan has no partitions")
	}
	if p.Offs[0] != 0 || p.Offs[len(p.Offs)-1] != uint32(n) {
		return fmt.Errorf("algo: plan covers [%d, %d) of %d queries", p.Offs[0], p.Offs[len(p.Offs)-1], n)
	}
	for i := 1; i < len(p.Offs); i++ {
		if p.Offs[i] < p.Offs[i-1] {
			return fmt.Errorf("algo: plan boundaries not monotone at %d", i)
		}
	}
	return nil
}

// NewPlan estimates per-query posting mass for the query set and plans
// boundaries for up to workers partitions under the given strategy.
// This is the constructor the monitor uses when (re)building a shard.
func NewPlan(vecs []textproc.Vector, workers int, s Strategy) Plan {
	return PlanCosts(index.EstimateCosts(vecs), workers, s)
}

// PlanCosts plans partition boundaries over an explicit per-query cost
// vector. The partition count is clamped to [1, len(costs)] (an empty
// query set still gets one empty partition, so the Processor surface
// holds up). StrategyMass equalizes cumulative cost via prefix sums
// while keeping every partition non-empty, so as long as no single
// query outweighs the ideal share, every partition's cost is within a
// factor ~2 of total/partitions; StrategyCount reproduces the legacy
// i·n/workers split exactly.
func PlanCosts(costs []float64, workers int, s Strategy) Plan {
	n := len(costs)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	plan := Plan{Strategy: s, Offs: make([]uint32, workers+1), Costs: costs}
	if s == StrategyMass && massBoundaries(costs, plan.Offs) {
		return plan
	}
	for i := 1; i <= workers; i++ {
		plan.Offs[i] = uint32(i * n / workers)
	}
	return plan
}

// massBoundaries fills offs with cost-equalizing boundaries: boundary
// j lands where the cost prefix sum first reaches j/P of the total
// (choosing the nearer of the two straddling cut points), clamped so
// every partition keeps at least one query. It reports false — leaving
// offs for the caller's count fallback — when the total cost is not
// positive, where "equal cost" is undefined.
func massBoundaries(costs []float64, offs []uint32) bool {
	p := len(offs) - 1
	n := len(costs)
	if p < 1 || n == 0 {
		return false
	}
	prefix := make([]float64, n+1)
	for i, c := range costs {
		if c < 0 {
			c = 0
		}
		prefix[i+1] = prefix[i] + c
	}
	total := prefix[n]
	if total <= 0 {
		return false
	}
	cur := 0
	for j := 1; j < p; j++ {
		target := total * float64(j) / float64(p)
		lo, hi := cur+1, n-(p-j) // inclusive bounds keeping partitions non-empty
		i := lo + sort.Search(hi-lo+1, func(k int) bool { return prefix[lo+k] >= target })
		if i > hi {
			i = hi
		}
		if i > lo && target-prefix[i-1] < prefix[i]-target {
			i--
		}
		offs[j] = uint32(i)
		cur = i
	}
	offs[p] = uint32(n)
	return true
}

// replanScaled recomputes mass boundaries for the same partition count
// after scaling each query's estimated cost by its current partition's
// observed work density (busy time per unit of estimated cost). This
// is the adaptive feedback loop: where the static posting-mass model
// mispredicts — pruning makes a zone cheaper, a hot topic makes one
// more expensive — the observed densities reshape the costs and the
// boundaries follow the live workload. The scaled costs become the
// next round's base estimate, so successive repartitions *compound*
// their corrections (an iterative solve toward the true per-query
// cost) instead of rederiving the same biased plan from raw mass.
func replanScaled(costs []float64, offs []uint32, busy []int64) Plan {
	scaled := make([]float64, len(costs))
	var estTotal, busyTotal float64
	for i := range busy {
		busyTotal += float64(busy[i])
	}
	for _, c := range costs {
		estTotal += c
	}
	for part := 0; part < len(offs)-1; part++ {
		lo, hi := int(offs[part]), int(offs[part+1])
		var est float64
		for q := lo; q < hi; q++ {
			est += costs[q]
		}
		// A partition with no estimated mass (or no observations yet)
		// keeps the global mean density, contributing no distortion.
		density := 1.0
		if est > 0 && estTotal > 0 && busyTotal > 0 {
			density = (float64(busy[part]) / busyTotal) / (est / estTotal)
		}
		for q := lo; q < hi; q++ {
			scaled[q] = costs[q] * density
		}
	}
	// PlanCosts keeps the scaled vector as plan.Costs: the corrected
	// estimate is the new base.
	return PlanCosts(scaled, len(offs)-1, StrategyMass)
}
