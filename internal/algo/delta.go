package algo

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/textproc"
)

// Delta is the append-only sidecar generation of the generational
// query index: recently added queries live here — matched exhaustively,
// which is exact — until a background build folds them into the main
// shard indexes. Unlike every other processor, Delta grows after
// construction: Append registers one query in O(|q|) (segment postings,
// result heap, threshold slot), so the cost of N registrations is
// O(total query size), not O(N²) as with rebuilding a frozen sidecar
// per add. Removals tombstone in place, like the main generation.
//
// Delta is exhaustive on purpose: the sidecar holds at most one rebuild
// budget's worth of queries, so pruning structures would cost more to
// maintain incrementally than they save, and exhaustive scoring shares
// the exact admission path (offer) with every other algorithm.
type Delta struct {
	*common
	seg *index.Segment
}

// NewDelta builds an empty delta generation.
func NewDelta() *Delta {
	seg := index.NewSegment()
	c, err := newCommon(seg.Index)
	if err != nil { // cannot happen for an empty segment
		panic(fmt.Sprintf("algo: empty delta: %v", err))
	}
	return &Delta{common: c, seg: seg}
}

// Append registers one query, returning its delta-local ID. The vector
// must be sorted and non-empty; 1 ≤ k ≤ index.MaxK. On error nothing
// is mutated. Not safe concurrently with ProcessEvent.
func (d *Delta) Append(v textproc.Vector, k int) (uint32, error) {
	// One validation walk, owned by the segment. The store is
	// pre-checked (not committed) first, so a failure on either side
	// leaves segment, store and threshold slots in step.
	if err := d.store.CanAppend(k); err != nil {
		return 0, err
	}
	q, err := d.seg.Append(v, k)
	if err != nil {
		return 0, err
	}
	if _, err := d.store.Append(k); err != nil {
		// CanAppend above rules this out; a failure here would
		// desynchronize the store and the segment.
		panic(fmt.Sprintf("algo: delta store diverged: %v", err))
	}
	d.thr = append(d.thr, 0)
	// A zero stamp can never equal a live epoch (stamps start at 1), so
	// queries appended mid-window need no dedup special-casing.
	d.seen = append(d.seen, 0)
	return q, nil
}

// Len returns the number of queries ever appended (tombstoned ones
// included).
func (d *Delta) Len() int { return d.seg.NumQueries() }

// Postings returns the number of postings in the delta segment.
func (d *Delta) Postings() int { return d.seg.NumPostings() }

// Name implements Processor.
func (d *Delta) Name() string { return "Delta" }

// Rebase implements Processor.
func (d *Delta) Rebase(factor float64) { d.rebase(factor) }

// ProcessEvent implements Processor: the exhaustive scan of the
// sidecar's lists. Tombstoned queries are skipped by the shared offer
// gate.
func (d *Delta) ProcessEvent(doc corpus.Document, e float64) EventMetrics {
	var m EventMetrics
	if d.seg.NumQueries() == 0 {
		return m
	}
	d.beginEvent(doc)
	for _, tw := range doc.Vec {
		l := d.seg.List(tw.Term)
		if l == nil {
			continue
		}
		for _, p := range l.P {
			m.Postings++
			if d.markSeen(p.QID) {
				continue
			}
			m.Iterations++
			d.offer(p.QID, doc.ID, e, &m)
		}
	}
	return m
}
