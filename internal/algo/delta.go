package algo

import (
	"fmt"
	"math"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/rangemax"
	"repro/internal/textproc"
)

// Delta is the append-only sidecar generation of the generational
// query index: recently added queries live here — matched with light
// block-level pruning, which is exact — until a background build folds
// them into the main shard indexes. Unlike every other processor, Delta
// grows after construction: Append registers one query in O(|q|)
// (segment postings, result heap, threshold slot, skip entry), so the
// cost of N registrations is O(total query size), not O(N²) as with
// rebuilding a frozen sidecar per add. Removals tombstone in place,
// like the main generation.
//
// The sidecar holds at most one rebuild budget's worth of queries, so
// heavyweight pruning structures would cost more to maintain
// incrementally than they save. What it does keep is per-block skip
// data: a BlockMax per list summarizing the maximum score potential
// r = w/S_k(q) (in scale units) of each run of postings. The scan then
// applies the same coverage rule as SortQuer at block granularity — if
// a document with m matching lists qualifies for q, some list j has
// f_j·r_j·E ≥ 1/m, so a block whose summary falls below that share
// holds no entry that list j is responsible for surfacing, and the
// block is skipped wholesale. Summaries only ever overestimate (stale
// entries decay lazily under rangemax's budget), so skipping is safe;
// every encountered query is still scored exactly through the shared
// offer path.
type Delta struct {
	*common
	seg *index.Segment
	// skip is slot-indexed, parallel to the segment's term table; entry
	// values are ratio/scale as of the query's last threshold sync
	// (+Inf for warm-up queries, which no finite stop can skip).
	skip  []*rangemax.BlockMax
	scale float64 // currentRatio = storedValue · scale
}

// NewDelta builds an empty delta generation.
func NewDelta() *Delta {
	seg := index.NewSegment()
	c, err := newCommon(seg.Index)
	if err != nil { // cannot happen for an empty segment
		panic(fmt.Sprintf("algo: empty delta: %v", err))
	}
	return &Delta{common: c, seg: seg, scale: 1}
}

// Append registers one query, returning its delta-local ID. The vector
// must be sorted and non-empty; 1 ≤ k ≤ index.MaxK. On error nothing
// is mutated. Not safe concurrently with ProcessEvent.
func (d *Delta) Append(v textproc.Vector, k int) (uint32, error) {
	// One validation walk, owned by the segment. The store is
	// pre-checked (not committed) first, so a failure on either side
	// leaves segment, store and threshold slots in step.
	if err := d.store.CanAppend(k); err != nil {
		return 0, err
	}
	q, err := d.seg.Append(v, k)
	if err != nil {
		return 0, err
	}
	if _, err := d.store.Append(k); err != nil {
		// CanAppend above rules this out; a failure here would
		// desynchronize the store and the segment.
		panic(fmt.Sprintf("algo: delta store diverged: %v", err))
	}
	d.thr = append(d.thr, 0)
	// A zero stamp can never equal a live epoch (stamps start at 1), so
	// queries appended mid-window need no dedup special-casing.
	d.seen = append(d.seen, 0)
	// Extend the skip data in lockstep with the segment's term table.
	// The segment assigns new slots in ref order, so a slot one past the
	// current skip length is always a freshly created list. A new query
	// starts warming up (S_k = 0), so its skip entries are +Inf.
	for _, ref := range d.ix.Refs(q) {
		if int(ref.Slot) == len(d.skip) {
			d.skip = append(d.skip, rangemax.NewBlockMax(nil, rangemax.DefaultBlockSize))
		}
		d.skip[ref.Slot].Append(math.Inf(1))
	}
	return q, nil
}

// Len returns the number of queries ever appended (tombstoned ones
// included).
func (d *Delta) Len() int { return d.seg.NumQueries() }

// Postings returns the number of postings in the delta segment.
func (d *Delta) Postings() int { return d.seg.NumPostings() }

// Name implements Processor.
func (d *Delta) Name() string { return "Delta" }

// Rebase implements Processor. Stored skip values scale uniformly, so
// only the scalar moves until it nears the underflow guard.
func (d *Delta) Rebase(factor float64) {
	d.rebase(factor)
	d.scale /= factor
	if d.scale > maxRebuildScale {
		d.rebuildSkip()
	}
}

// SyncThreshold implements Processor.
func (d *Delta) SyncThreshold(q uint32) {
	d.common.SyncThreshold(q)
	d.syncSkip(q)
}

// Refresh implements Processor: recompute every lazily stale block
// summary from its entry values.
func (d *Delta) Refresh() {
	for _, bm := range d.skip {
		bm.Tighten()
	}
}

// ResyncAll implements Processor.
func (d *Delta) ResyncAll() {
	d.resyncThresholds()
	d.rebuildSkip()
}

// Tombstone implements Processor. Dead queries can never qualify, so
// their skip entries drop to 0, tightening the block bounds.
func (d *Delta) Tombstone(q uint32) {
	d.common.Tombstone(q)
	for _, ref := range d.ix.Refs(q) {
		d.skip[ref.Slot].Update(int(ref.Pos), 0)
	}
}

// syncSkip refreshes q's skip entries from its current threshold.
// Thresholds are monotone, so this only ever lowers values — summaries
// stay valid upper bounds even when called mid-scan.
func (d *Delta) syncSkip(q uint32) {
	refs := d.ix.Refs(q)
	_, ws := d.ix.QueryTerms(q)
	for i, ref := range refs {
		d.skip[ref.Slot].Update(int(ref.Pos), d.ratio(ws[i], q)/d.scale)
	}
}

// rebuildSkip reconstructs all skip data from current thresholds at
// scale 1. Rare (scale renormalization, bulk resync), so the pass may
// allocate.
func (d *Delta) rebuildSkip() {
	d.scale = 1
	d.skip = d.skip[:0]
	d.ix.Lists(func(pl *index.PostingList) {
		bm := rangemax.NewBlockMax(nil, rangemax.DefaultBlockSize)
		for _, p := range pl.P {
			bm.Append(d.ratio(p.W, p.QID))
		}
		d.skip = append(d.skip, bm)
	})
}

// ProcessEvent implements Processor: a block-skipping scan of the
// sidecar's lists. Tombstoned queries are skipped by the shared offer
// gate (and their zeroed skip entries).
func (d *Delta) ProcessEvent(doc corpus.Document, e float64) EventMetrics {
	var m EventMetrics
	if d.seg.NumQueries() == 0 {
		return m
	}
	d.beginEvent(doc, &m)

	// Coverage rule denominator: the number of document terms with
	// non-empty sidecar lists.
	nLists := 0
	for _, tw := range doc.Vec {
		if l := d.seg.List(tw.Term); l != nil && len(l.P) > 0 {
			nLists++
		}
	}
	if nLists == 0 {
		return m
	}
	mf := float64(nLists)

	for _, tw := range doc.Vec {
		l := d.seg.List(tw.Term)
		if l == nil || len(l.P) == 0 {
			continue
		}
		bm := d.skip[l.Slot]
		// A qualifying query carries a 1/m share in some list; a block
		// whose summary (an upper bound on its entries' ratios, in
		// stored units) falls below this list's share threshold cannot
		// hold that list's copy of any qualifying query.
		stop := (1 - boundSlack) / (mf * tw.Weight * e * d.scale)
		bs := bm.BlockSize()
		for b, nb := 0, bm.NumBlocks(); b < nb; b++ {
			if bm.Summary(b) < stop {
				m.DeltaBlocksSkipped++
				continue
			}
			m.DeltaBlocksScanned++
			lo := b * bs
			hi := lo + bs
			if hi > len(l.P) {
				hi = len(l.P)
			}
			for _, p := range l.P[lo:hi] {
				m.Postings++
				if d.markSeen(p.QID) {
					continue
				}
				m.Iterations++
				if d.offer(p.QID, doc.ID, e, &m) {
					// Only ever lowers entries, so summaries of blocks
					// not yet visited stay valid upper bounds.
					d.syncSkip(p.QID)
				}
			}
		}
	}
	return m
}
