package algo

import (
	"fmt"
	"sync"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/textproc"
	"repro/internal/topk"
)

// Factory builds one algorithm instance over a (sub-)index. It is how
// Parallel stays algorithm-agnostic: the monitor passes the same
// constructor it would use for a sequential shard.
type Factory func(ix *index.Index) (Processor, error)

// parJob is one document handed to a partition worker. The sender
// waits on the shared event WaitGroup; the worker writes its metrics
// slot before Done, so the slot is safe to read once the event joins.
type parJob struct {
	doc corpus.Document
	e   float64
}

// Parallel matches one event with several workers by partitioning the
// query ID range into contiguous slices, each owned by an independent
// inner processor over its own sub-index — a partition of every posting
// list, since lists are query-ID-ordered. All inner processors write
// into disjoint slice views of one shared result store (topk.Slice), so
// Parallel presents the ordinary single-store Processor interface while
// ProcessEvent fans out across cores.
//
// Exactness is free: queries are independent — a query's admission
// decision depends only on its own threshold and the document — so any
// partition of the query set yields bit-identical per-query top-k
// lists; only the work counters (Evaluated, Iterations, ...) depend on
// the partitioning, because pruning bounds are computed per partition.
//
// Partition 0 runs on the calling goroutine; partitions 1..P-1 each own
// a persistent worker. Call Close to stop the workers; results stay
// readable afterwards.
type Parallel struct {
	name  string
	store *topk.Store // full arena; inner processors own disjoint views
	offs  []uint32    // len P+1: partition p owns queries [offs[p], offs[p+1])
	procs []Processor
	work  []chan parJob // nil at slot 0 (inline partition)
	done  sync.WaitGroup
	outs  []EventMetrics
	// evWG joins one event's fan-out. Reused across events (events are
	// externally serialized and Wait returns before the next Add) so
	// the per-document hot path stays allocation-free.
	evWG sync.WaitGroup
	// mu guards closed so a double Close (monitor rebuild followed by
	// monitor Close) never double-closes the work channels.
	mu     sync.Mutex
	closed bool
}

// NewParallel builds a Parallel matcher over the query set described
// by vecs/ks, with up to workers partitions (capped at the query
// count). build constructs each partition's inner algorithm; it must
// produce one of this package's processors (they share the result
// store via an internal hook).
func NewParallel(vecs []textproc.Vector, ks []int, workers int, build Factory) (*Parallel, error) {
	if len(vecs) != len(ks) {
		return nil, fmt.Errorf("algo: %d vectors but %d k values", len(vecs), len(ks))
	}
	if workers < 1 {
		return nil, fmt.Errorf("algo: parallelism must be ≥ 1, got %d", workers)
	}
	n := len(vecs)
	if workers > n {
		// Never more partitions than queries; an empty shard still gets
		// one (workerless) partition so the Processor surface holds up.
		workers = max(n, 1)
	}
	store, err := topk.NewStore(ks)
	if err != nil {
		return nil, err
	}
	p := &Parallel{
		store: store,
		offs:  make([]uint32, workers+1),
		procs: make([]Processor, workers),
		work:  make([]chan parJob, workers),
		outs:  make([]EventMetrics, workers),
	}
	for i := 1; i <= workers; i++ {
		p.offs[i] = uint32(i * n / workers)
	}
	for i := 0; i < workers; i++ {
		lo, hi := int(p.offs[i]), int(p.offs[i+1])
		subIx, err := index.Build(vecs[lo:hi], ks[lo:hi])
		if err != nil {
			p.Close()
			return nil, err
		}
		proc, err := build(subIx)
		if err != nil {
			p.Close()
			return nil, err
		}
		ss, ok := proc.(interface{ setStore(*topk.Store) })
		if !ok {
			p.Close()
			return nil, fmt.Errorf("algo: %s does not support intra-shard partitioning", proc.Name())
		}
		ss.setStore(store.Slice(lo, hi))
		p.procs[i] = proc
		if i > 0 {
			ch := make(chan parJob)
			p.work[i] = ch
			p.done.Add(1)
			go p.worker(i, ch)
		}
	}
	p.name = fmt.Sprintf("%s×%d", p.procs[0].Name(), workers)
	return p, nil
}

// worker drains one partition's job channel.
func (p *Parallel) worker(i int, ch chan parJob) {
	defer p.done.Done()
	for job := range ch {
		p.outs[i] = p.procs[i].ProcessEvent(job.doc, job.e)
		p.evWG.Done()
	}
}

// Name implements Processor.
func (p *Parallel) Name() string { return p.name }

// Results implements Processor: the shared full-range store.
func (p *Parallel) Results() *topk.Store { return p.store }

// ProcessEvent implements Processor: the document is matched by every
// partition concurrently and the per-partition work metrics are summed.
// The event joins (all workers idle) before returning, so the caller
// may mutate shared state between events, exactly as with a sequential
// processor.
func (p *Parallel) ProcessEvent(doc corpus.Document, e float64) EventMetrics {
	p.evWG.Add(len(p.procs) - 1)
	for i := 1; i < len(p.procs); i++ {
		p.work[i] <- parJob{doc: doc, e: e}
	}
	m := p.procs[0].ProcessEvent(doc, e)
	p.evWG.Wait()
	for i := 1; i < len(p.procs); i++ {
		m.Add(p.outs[i])
	}
	return m
}

// Rebase implements Processor. Each partition rescales its own slice
// of the shared arena plus its private threshold/ratio state; the
// slices exactly cover the store, so one pass over the partitions is
// one pass over every stored score.
func (p *Parallel) Rebase(factor float64) {
	for _, proc := range p.procs {
		proc.Rebase(factor)
	}
}

// SyncThreshold implements Processor, routing to the partition owning
// the query.
func (p *Parallel) SyncThreshold(q uint32) {
	i := p.partition(q)
	p.procs[i].SyncThreshold(q - p.offs[i])
}

// Refresh implements Processor.
func (p *Parallel) Refresh() {
	for _, proc := range p.procs {
		proc.Refresh()
	}
}

// DrainChanged implements Processor: each partition's record covers
// its own disjoint query range, so offsetting partition-local IDs and
// concatenating yields the exact change set of the whole shard. The
// parent store is drained too (and always discarded into fn the same
// way): bulk loads through Results() land their change record there.
func (p *Parallel) DrainChanged(fn func(q uint32)) {
	p.store.DrainDirty(fn)
	for i, proc := range p.procs {
		off := p.offs[i]
		if fn == nil {
			proc.DrainChanged(nil)
			continue
		}
		proc.DrainChanged(func(q uint32) { fn(q + off) })
	}
}

// partition returns the index of the partition owning global-in-shard
// query q. Partition counts are small, so a linear scan beats a binary
// search's branch misses.
func (p *Parallel) partition(q uint32) int {
	for i := 1; i < len(p.offs); i++ {
		if q < p.offs[i] {
			return i - 1
		}
	}
	panic(fmt.Sprintf("algo: query %d outside partitioned range %d", q, p.offs[len(p.offs)-1]))
}

// Close stops the partition workers and waits for them to exit.
// Results stay readable. Close is idempotent and safe after a partial
// construction failure.
func (p *Parallel) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, ch := range p.work {
		if ch != nil {
			close(ch)
		}
	}
	p.done.Wait()
}
