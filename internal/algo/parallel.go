package algo

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/textproc"
	"repro/internal/topk"
)

// Factory builds one algorithm instance over a (sub-)index. It is how
// Parallel stays algorithm-agnostic: the monitor passes the same
// constructor it would use for a sequential shard.
type Factory func(ix *index.Index) (Processor, error)

// parJob is one document handed to a partition worker. The sender
// waits on the shared event WaitGroup; the worker writes its metrics
// slot before Done, so the slot is safe to read once the event joins.
type parJob struct {
	doc corpus.Document
	e   float64
}

// PartitionStat describes one partition of a Parallel matcher: its
// query range, its share of the estimated cost, and its cumulative
// observed work since the partition was (re)created.
type PartitionStat struct {
	// Lo, Hi bound the partition's query range [Lo, Hi).
	Lo, Hi uint32
	// Cost is the partition's share of the current cost estimate (0
	// when the plan carried no cost vector). It starts as posting mass
	// and is rescaled by observed work densities at each adaptive
	// repartition; the rescaling conserves the total, so partition
	// costs always sum to the shard's posting mass, but an individual
	// partition's Cost is an estimate in posting-mass-equivalent
	// units, not a literal posting count.
	Cost float64
	// Busy is the cumulative wall time the partition spent matching.
	Busy time.Duration
	// Evaluated is the cumulative count of exactly-scored queries.
	Evaluated uint64
}

// Parallel matches one event with several workers by partitioning the
// query ID range into contiguous slices, each owned by an independent
// inner processor over its own sub-index — a partition of every posting
// list, since lists are query-ID-ordered. All inner processors write
// into disjoint slice views of one shared result store (topk.Slice), so
// Parallel presents the ordinary single-store Processor interface while
// ProcessEvent fans out across cores.
//
// Boundary policy lives outside: NewParallel takes a Plan (see
// PlanCosts) instead of computing its own split, and — under
// StrategyMass — Repartition/CheckBalance move the boundaries to track
// the observed per-partition work while the matcher keeps running.
//
// Exactness is free: queries are independent — a query's admission
// decision depends only on its own threshold and the document — so any
// partition of the query set yields bit-identical per-query top-k
// lists; only the work counters (Evaluated, Iterations, ...) depend on
// the partitioning, because pruning bounds are computed per partition.
//
// Partition 0 runs on the calling goroutine; partitions 1..P-1 each own
// a persistent worker. Call Close to stop the workers; results stay
// readable afterwards.
type Parallel struct {
	name  string
	store *topk.Store // full arena; inner processors own disjoint views

	// The raw query set and inner-algorithm factory are retained so
	// Repartition can rebuild sub-indexes over new boundaries.
	vecs     []textproc.Vector
	ks       []int
	build    Factory
	strategy Strategy
	layout   index.Layout
	costs    []float64 // per-query estimated cost (plan's cost vector)
	partCost []float64 // cached per-partition sums of costs (occupancy reads)

	// dead records shard-local tombstones (lazily allocated). The live
	// sub-indexes are marked directly; this copy survives repartitions,
	// which rebuild every sub-index from the raw query set and must
	// re-apply the tombstones.
	dead []bool

	offs  []uint32 // len P+1: partition p owns queries [offs[p], offs[p+1])
	procs []Processor
	work  []chan parJob // nil at slot 0 (inline partition)
	done  sync.WaitGroup
	outs  []EventMetrics

	// Per-partition observed work since the last (re)partition. Each
	// slot is written only by its partition's goroutine during an event
	// and read between events (the event join orders the accesses), so
	// plain loads/stores suffice.
	busy  []int64 // cumulative busy nanoseconds
	evals []uint64

	// Balance-check window state: busy snapshot at the last check, the
	// count of consecutive imbalanced windows, and the repartition
	// cooldown (observation-only windows remaining; doubles after each
	// repartition so a workload whose attainable balance sits near the
	// trigger cannot thrash, and resets once a window looks balanced).
	winBusy      []int64
	streak       int
	cooldown     int
	nextCooldown int

	// evWG joins one event's fan-out. Reused across events (events are
	// externally serialized and Wait returns before the next Add) so
	// the per-document hot path stays allocation-free.
	evWG sync.WaitGroup
	// fwd is the prebound partition-drain forwarder: a method value
	// created once at construction so DrainChanged passes the same
	// func value every drain instead of allocating a fresh closure per
	// partition per collection. curFn/curOff are its per-call state;
	// drains are externally serialized like every mutation.
	fwd    func(q uint32)
	curFn  func(q uint32)
	curOff uint32
	// mu guards closed so a double Close (monitor rebuild followed by
	// monitor Close) never double-closes the work channels.
	mu     sync.Mutex
	closed bool
}

// NewParallel builds a Parallel matcher over the query set described
// by vecs/ks, with the partition boundaries of plan (see PlanCosts /
// NewPlan). build constructs each partition's inner algorithm; it must
// produce one of this package's processors (they share the result
// store via an internal hook).
func NewParallel(vecs []textproc.Vector, ks []int, plan Plan, build Factory) (*Parallel, error) {
	if len(vecs) != len(ks) {
		return nil, fmt.Errorf("algo: %d vectors but %d k values", len(vecs), len(ks))
	}
	if err := plan.validate(len(vecs)); err != nil {
		return nil, err
	}
	store, err := topk.NewStore(ks)
	if err != nil {
		return nil, err
	}
	workers := plan.Partitions()
	p := &Parallel{
		store:        store,
		vecs:         vecs,
		ks:           ks,
		build:        build,
		strategy:     plan.Strategy,
		layout:       plan.Layout,
		costs:        plan.Costs,
		offs:         plan.Offs,
		procs:        make([]Processor, workers),
		work:         make([]chan parJob, workers),
		outs:         make([]EventMetrics, workers),
		busy:         make([]int64, workers),
		evals:        make([]uint64, workers),
		winBusy:      make([]int64, workers),
		nextCooldown: 1,
	}
	p.fwd = p.forwardChanged
	p.partCost = partCostSums(plan.Costs, plan.Offs)
	for i := 0; i < workers; i++ {
		proc, err := p.buildPartition(int(p.offs[i]), int(p.offs[i+1]))
		if err != nil {
			p.Close()
			return nil, err
		}
		p.procs[i] = proc
		if i > 0 {
			ch := make(chan parJob)
			p.work[i] = ch
			p.done.Add(1)
			go p.worker(i, ch)
		}
	}
	p.name = fmt.Sprintf("%s×%d", p.procs[0].Name(), workers)
	return p, nil
}

// buildPartition constructs one partition's sub-index and inner
// processor, pointed at its slice view of the shared arena.
func (p *Parallel) buildPartition(lo, hi int) (Processor, error) {
	subIx, err := index.BuildLayout(p.vecs[lo:hi], p.ks[lo:hi], p.layout)
	if err != nil {
		return nil, err
	}
	if p.dead != nil {
		for q := lo; q < hi; q++ {
			if p.dead[q] {
				subIx.Tombstone(uint32(q - lo))
			}
		}
	}
	proc, err := p.build(subIx)
	if err != nil {
		return nil, err
	}
	ss, ok := proc.(interface{ setStore(*topk.Store) })
	if !ok {
		return nil, fmt.Errorf("algo: %s does not support intra-shard partitioning", proc.Name())
	}
	ss.setStore(p.store.Slice(lo, hi))
	return proc, nil
}

// worker drains one partition's job channel.
func (p *Parallel) worker(i int, ch chan parJob) {
	defer p.done.Done()
	for job := range ch {
		t0 := time.Now()
		p.outs[i] = p.procs[i].ProcessEvent(job.doc, job.e)
		p.busy[i] += int64(time.Since(t0))
		p.evals[i] += uint64(p.outs[i].Evaluated)
		p.evWG.Done()
	}
}

// Name implements Processor.
func (p *Parallel) Name() string { return p.name }

// Results implements Processor: the shared full-range store.
func (p *Parallel) Results() *topk.Store { return p.store }

// Strategy returns the boundary strategy the matcher was planned with.
func (p *Parallel) Strategy() Strategy { return p.strategy }

// Boundaries returns a copy of the current partition boundaries.
func (p *Parallel) Boundaries() []uint32 {
	out := make([]uint32, len(p.offs))
	copy(out, p.offs)
	return out
}

// Occupancy reports each partition's query range, estimated cost share
// and observed work since the partition was created or last moved. Not
// safe concurrently with ProcessEvent.
func (p *Parallel) Occupancy() []PartitionStat {
	out := make([]PartitionStat, len(p.procs))
	for i := range p.procs {
		out[i] = PartitionStat{
			Lo: p.offs[i], Hi: p.offs[i+1],
			Cost:      p.partCost[i],
			Busy:      time.Duration(p.busy[i]),
			Evaluated: p.evals[i],
		}
	}
	return out
}

// partCostSums precomputes each partition's cost share so occupancy
// polls (stats endpoints) never rescan the per-query vector.
func partCostSums(costs []float64, offs []uint32) []float64 {
	out := make([]float64, len(offs)-1)
	if costs == nil {
		return out
	}
	for i := range out {
		for q := offs[i]; q < offs[i+1]; q++ {
			out[i] += costs[q]
		}
	}
	return out
}

// ProcessEvent implements Processor: the document is matched by every
// partition concurrently and the per-partition work metrics are summed.
// The event joins (all workers idle) before returning, so the caller
// may mutate shared state between events, exactly as with a sequential
// processor.
func (p *Parallel) ProcessEvent(doc corpus.Document, e float64) EventMetrics {
	p.evWG.Add(len(p.procs) - 1)
	for i := 1; i < len(p.procs); i++ {
		p.work[i] <- parJob{doc: doc, e: e}
	}
	t0 := time.Now()
	m := p.procs[0].ProcessEvent(doc, e)
	p.busy[0] += int64(time.Since(t0))
	p.evals[0] += uint64(m.Evaluated)
	p.evWG.Wait()
	for i := 1; i < len(p.procs); i++ {
		m.Add(p.outs[i])
	}
	return m
}

// Rebase implements Processor. Each partition rescales its own slice
// of the shared arena plus its private threshold/ratio state; the
// slices exactly cover the store, so one pass over the partitions is
// one pass over every stored score.
func (p *Parallel) Rebase(factor float64) {
	for _, proc := range p.procs {
		proc.Rebase(factor)
	}
}

// SyncThreshold implements Processor, routing to the partition owning
// the query.
func (p *Parallel) SyncThreshold(q uint32) {
	i := p.partition(q)
	p.procs[i].SyncThreshold(q - p.offs[i])
}

// Refresh implements Processor.
func (p *Parallel) Refresh() {
	for _, proc := range p.procs {
		proc.Refresh()
	}
}

// ResyncAll implements Processor.
func (p *Parallel) ResyncAll() {
	for _, proc := range p.procs {
		proc.ResyncAll()
	}
}

// Tombstone implements Processor: the tombstone is recorded at the
// shard level (repartitions rebuild sub-indexes and must re-apply it)
// and routed to the partition currently owning the query.
func (p *Parallel) Tombstone(q uint32) {
	if p.dead == nil {
		p.dead = make([]bool, len(p.vecs))
	}
	p.dead[q] = true
	i := p.partition(q)
	p.procs[i].Tombstone(q - p.offs[i])
}

// DrainChanged implements Processor: each partition's record covers
// its own disjoint query range, so offsetting partition-local IDs and
// concatenating yields the exact change set of the whole shard. The
// parent store is drained too (and always discarded into fn the same
// way): bulk loads through Results() land their change record there,
// and Repartition carries the old partitions' undrained records into
// it.
func (p *Parallel) DrainChanged(fn func(q uint32)) {
	p.store.DrainDirty(fn)
	for i, proc := range p.procs {
		if fn == nil {
			proc.DrainChanged(nil)
			continue
		}
		p.curFn, p.curOff = fn, p.offs[i]
		proc.DrainChanged(p.fwd)
	}
	p.curFn = nil
}

// forwardChanged rebases one partition-local changed query ID into the
// shard range and forwards it to the current drain callback. It exists
// as a method so DrainChanged can pass a prebound func value (p.fwd)
// instead of allocating a closure per partition per drain.
func (p *Parallel) forwardChanged(q uint32) { p.curFn(q + p.curOff) }

// retuneRatio and retuneStreak parameterize CheckBalance: a window is
// imbalanced when the busiest partition exceeds retuneRatio × the mean
// partition busy time, and retuneStreak consecutive imbalanced windows
// trigger a repartition — a single skewed window (one pathological
// document, a scheduling hiccup) never moves the boundaries.
// retuneCooldownMax caps the exponential post-repartition cooldown.
// The ratio is deliberately generous: a repartition rebuilds every
// sub-index, and below ~1.35 the latency it buys back rarely covers
// that cost.
const (
	retuneRatio       = 1.35
	retuneStreak      = 2
	retuneCooldownMax = 16
)

// CheckBalance closes one observation window: it compares the
// partitions' busy time accumulated since the previous check and,
// after retuneStreak consecutive windows of sustained imbalance,
// repartitions. Each repartition is followed by a cooldown of
// observation-only windows that doubles with every further
// repartition (up to retuneCooldownMax) and resets once a window
// looks balanced — so when the workload's attainable balance sits
// near the trigger, boundary moves become geometrically rare instead
// of thrashing. Only StrategyMass matchers adapt (StrategyCount is
// the fixed legacy split, kept as an experimental control). Reports
// whether a repartition happened. Must be externally serialized with
// ProcessEvent, like every mutation.
func (p *Parallel) CheckBalance() (bool, error) {
	if p.strategy != StrategyMass || len(p.procs) < 2 {
		return false, nil
	}
	var total, maxBusy int64
	for i := range p.busy {
		d := p.busy[i] - p.winBusy[i]
		p.winBusy[i] = p.busy[i]
		total += d
		if d > maxBusy {
			maxBusy = d
		}
	}
	if p.cooldown > 0 {
		p.cooldown--
		return false, nil
	}
	if total <= 0 {
		return false, nil // nothing observed this window
	}
	mean := float64(total) / float64(len(p.busy))
	if float64(maxBusy) <= retuneRatio*mean {
		p.streak = 0
		p.nextCooldown = 1
		return false, nil
	}
	if p.streak++; p.streak < retuneStreak {
		return false, nil
	}
	p.streak = 0
	moved, err := p.Repartition()
	if moved {
		p.cooldown = p.nextCooldown
		p.nextCooldown = min(2*p.nextCooldown, retuneCooldownMax)
	}
	return moved, err
}

// Repartition recomputes the boundaries from the estimated per-query
// costs scaled by each partition's observed work density (see
// replanScaled) and rebuilds the partitions in place over the new
// contiguous ranges of the same shared result arena. Stored results
// are untouched — any partition of the query set yields identical
// top-k lists — and each new partition resynchronizes its threshold
// and bound state from the arena, so the matcher's answers are
// bit-identical before and after. Undrained change records of the old
// partitions are carried into the parent store, so no notification is
// lost across the swap. Reports whether the boundaries moved; on
// error the old partitions keep running unchanged.
func (p *Parallel) Repartition() (bool, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed || p.strategy != StrategyMass || len(p.procs) < 2 || len(p.costs) != len(p.vecs) {
		return false, nil
	}
	plan := replanScaled(p.costs, p.offs, p.busy)
	if slices.Equal(plan.Offs, p.offs) {
		return false, nil
	}
	if err := p.applyPlan(plan); err != nil {
		return false, err
	}
	return true, nil
}

// applyPlan swaps the partition layout: new sub-indexes and inner
// processors are built first (an error leaves the old layout fully
// operational), then the old workers are drained and the new ones
// started, and finally every partition resynchronizes its threshold
// and bound state from the shared arena in one bulk pass (ResyncAll).
func (p *Parallel) applyPlan(plan Plan) error {
	workers := plan.Partitions()
	procs := make([]Processor, workers)
	for i := 0; i < workers; i++ {
		proc, err := p.buildPartition(int(plan.Offs[i]), int(plan.Offs[i+1]))
		if err != nil {
			return err
		}
		procs[i] = proc
	}
	// Carry undrained change records into the parent store before the
	// old views are discarded: DrainChanged drains the parent first, so
	// a later collection still reports these queries exactly once (the
	// new views start empty).
	for i, proc := range p.procs {
		off := p.offs[i]
		proc.DrainChanged(func(q uint32) { p.store.MarkDirty(q + off) })
	}
	// Drain and join the old workers; the arena and its contents stay.
	for _, ch := range p.work {
		if ch != nil {
			close(ch)
		}
	}
	p.done.Wait()

	p.offs = plan.Offs
	p.costs = plan.Costs
	p.partCost = partCostSums(plan.Costs, plan.Offs)
	p.procs = procs
	p.work = make([]chan parJob, workers)
	p.outs = make([]EventMetrics, workers)
	p.busy = make([]int64, workers)
	p.evals = make([]uint64, workers)
	p.winBusy = make([]int64, workers)
	p.streak = 0
	for i := 1; i < workers; i++ {
		ch := make(chan parJob)
		p.work[i] = ch
		p.done.Add(1)
		go p.worker(i, ch)
	}
	for _, proc := range procs {
		proc.ResyncAll()
	}
	p.name = fmt.Sprintf("%s×%d", procs[0].Name(), workers)
	return nil
}

// partition returns the index of the partition owning global-in-shard
// query q. Partition counts are small, so a linear scan beats a binary
// search's branch misses.
func (p *Parallel) partition(q uint32) int {
	for i := 1; i < len(p.offs); i++ {
		if q < p.offs[i] {
			return i - 1
		}
	}
	panic(fmt.Sprintf("algo: query %d outside partitioned range %d", q, p.offs[len(p.offs)-1]))
}

// Close stops the partition workers and waits for them to exit.
// Results stay readable. Close is idempotent and safe after a partial
// construction failure.
func (p *Parallel) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, ch := range p.work {
		if ch != nil {
			close(ch)
		}
	}
	p.done.Wait()
}
