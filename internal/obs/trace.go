package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Stage identifies one timed section of a publish. The set is fixed so
// a trace record can carry all stage durations in a flat array with no
// per-publish allocation.
type Stage int

// Publish stages, in rough pipeline order.
const (
	StageAnalyze   Stage = iota // tokenize/stem outside the engine lock
	StageMatch                  // monitor evaluation (shards + delta)
	StageNotify                 // change fan-out through the broker
	StageWALAppend              // durability log append
	StageFsync                  // durability fsync (FsyncAlways only)
	StageCount                  // number of stages, not a stage
)

var stageNames = [StageCount]string{
	StageAnalyze:   "analyze",
	StageMatch:     "match",
	StageNotify:    "notify",
	StageWALAppend: "wal_append",
	StageFsync:     "fsync",
}

// String returns the stage's metric label ("analyze", "wal_append", …).
func (s Stage) String() string {
	if s < 0 || s >= StageCount {
		return "unknown"
	}
	return stageNames[s]
}

// Trace is one sampled publish's stage timing record. Stage durations
// are nanoseconds indexed by Stage; Total is wall time for the whole
// call. Stage boundaries are contiguous, so stages sum to slightly
// less than Total (only the final bookkeeping after the last stage is
// unattributed). The struct is fixed-size so recording one is a plain
// value copy into the ring.
type Trace struct {
	Doc   uint64             // first document ID of the publish
	Docs  int                // documents in the call (>1 for PublishBatch)
	At    float64            // stream time of the event
	Unix  int64              // wall-clock start, nanoseconds since epoch
	Stage [StageCount]uint64 // per-stage nanoseconds
	Total uint64             // whole-call nanoseconds
}

// MarshalJSON renders the trace with named stages (zero-duration
// stages elided) and durations in both nanoseconds and milliseconds.
func (t Trace) MarshalJSON() ([]byte, error) {
	stages := make(map[string]uint64, StageCount)
	for s, ns := range t.Stage {
		if ns > 0 {
			stages[Stage(s).String()] = ns
		}
	}
	return json.Marshal(struct {
		Doc      uint64            `json:"doc"`
		Docs     int               `json:"docs"`
		At       float64           `json:"stream_time"`
		Unix     int64             `json:"unix_nanos"`
		TotalNS  uint64            `json:"total_ns"`
		TotalMS  float64           `json:"total_ms"`
		StagesNS map[string]uint64 `json:"stages_ns"`
	}{t.Doc, t.Docs, t.At, t.Unix, t.Total, float64(t.Total) / 1e6, stages})
}

// TraceRing samples one publish in every `every` and keeps the most
// recent `size` sampled traces in a preallocated ring. Sample is a
// single atomic increment; Record is a value copy under a mutex that
// only sampled publishes ever touch. A nil *TraceRing disables
// tracing: Sample reports false, Snapshot returns nil.
type TraceRing struct {
	every uint64
	n     atomic.Uint64 // publishes seen (sampling clock)

	mu    sync.Mutex
	buf   []Trace
	next  int    // ring write position
	total uint64 // traces ever recorded
}

// NewTraceRing returns a ring of the given capacity sampling one in
// every publishes. Both are clamped to at least 1.
func NewTraceRing(size int, every int) *TraceRing {
	if size < 1 {
		size = 1
	}
	if every < 1 {
		every = 1
	}
	return &TraceRing{every: uint64(every), buf: make([]Trace, 0, size)}
}

// Sample advances the sampling clock and reports whether this publish
// should be recorded.
func (r *TraceRing) Sample() bool {
	if r == nil {
		return false
	}
	return (r.n.Add(1)-1)%r.every == 0
}

// Record stores one trace, evicting the oldest when full.
func (r *TraceRing) Record(t Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (r *TraceRing) Snapshot() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, len(r.buf))
	// Newest-first: walk backwards from the slot before `next`.
	for i := 0; i < len(r.buf); i++ {
		j := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[j])
	}
	return out
}

// Total returns how many traces were ever recorded (including evicted
// ones) — useful as a sampled-publish counter.
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
