package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestBucketLayout proves the index/bound functions are a consistent
// partition of the uint64 range: every probed value lands in exactly
// the bucket whose [lower, upper] interval contains it, indices are
// monotone, and bounds tile with no gaps or overlaps.
func TestBucketLayout(t *testing.T) {
	// Exhaustive over the small region, then probes around every
	// power of two.
	var vals []uint64
	for v := uint64(0); v < 4096; v++ {
		vals = append(vals, v)
	}
	for o := uint(12); o < 64; o++ {
		base := uint64(1) << o
		for _, d := range []uint64{0, 1, base / 8, base/8 + 1, base / 2, base - 1} {
			vals = append(vals, base+d)
		}
	}
	vals = append(vals, math.MaxUint64)
	for _, v := range vals {
		i := bucketIdx(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, i)
		}
		if lo, hi := bucketLower(i), bucketUpper(i); v < lo || v > hi {
			t.Fatalf("value %d in bucket %d but bounds are [%d, %d]", v, i, lo, hi)
		}
	}
	// Bounds tile the whole range.
	for i := 1; i < numBuckets; i++ {
		if bucketLower(i) != bucketUpper(i-1)+1 {
			t.Fatalf("gap between bucket %d (upper %d) and %d (lower %d)",
				i-1, bucketUpper(i-1), i, bucketLower(i))
		}
	}
	if bucketLower(0) != 0 {
		t.Fatalf("bucket 0 lower = %d, want 0", bucketLower(0))
	}
	if bucketUpper(numBuckets-1) != math.MaxUint64 {
		t.Fatalf("top bucket upper = %d, want MaxUint64", bucketUpper(numBuckets-1))
	}
}

// TestHistogramQuantileOracle checks estimated quantiles against exact
// order statistics of the recorded population. The layout guarantees
// ≤12.5% relative error per bucket; we allow a small slack over the
// interpolation plus 1ns of absolute error for the unit buckets.
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dist := range []string{"loguniform", "uniform", "bimodal"} {
		h := &Histogram{}
		var xs []float64
		draw := func() uint64 {
			switch dist {
			case "uniform":
				return uint64(rng.Int63n(5_000_000))
			case "bimodal":
				if rng.Intn(10) == 0 {
					return 40_000_000 + uint64(rng.Int63n(3_000_000))
				}
				return 50_000 + uint64(rng.Int63n(10_000))
			default: // log-uniform over [1, 1e9)
				return uint64(math.Exp(rng.Float64() * math.Log(1e9)))
			}
		}
		for i := 0; i < 20_000; i++ {
			v := draw()
			h.Observe(v)
			xs = append(xs, float64(v))
		}
		sort.Float64s(xs)
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
			est := h.Quantile(q)
			rank := int(q * float64(len(xs)))
			if rank >= len(xs) {
				rank = len(xs) - 1
			}
			exact := xs[rank]
			tol := 0.13*exact + 2
			if math.Abs(est-exact) > tol {
				t.Errorf("%s q=%v: estimate %.0f vs exact %.0f (tolerance %.0f)",
					dist, q, est, exact, tol)
			}
		}
		if got := h.Count(); got != 20_000 {
			t.Fatalf("%s: count = %d, want 20000", dist, got)
		}
	}
}

// TestHistogramMerge verifies merged histograms answer like a single
// histogram fed both populations.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b, both := &Histogram{}, &Histogram{}, &Histogram{}
	for i := 0; i < 5000; i++ {
		va := uint64(rng.Int63n(1_000_000))
		vb := uint64(rng.Int63n(100_000_000))
		a.Observe(va)
		b.Observe(vb)
		both.Observe(va)
		both.Observe(vb)
	}
	m := &Histogram{}
	m.Merge(a)
	m.Merge(b)
	if m.Count() != both.Count() {
		t.Fatalf("merged count %d != combined %d", m.Count(), both.Count())
	}
	if math.Abs(m.SumSeconds()-both.SumSeconds()) > 1e-12 {
		t.Fatalf("merged sum %v != combined %v", m.SumSeconds(), both.SumSeconds())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got, want := m.Quantile(q), both.Quantile(q); got != want {
			t.Fatalf("q=%v: merged %v != combined %v", q, got, want)
		}
	}
}

// TestHistogramSummary sanity-checks the one-pass digest.
func TestHistogramSummary(t *testing.T) {
	h := &Histogram{}
	if s := h.Summary(); s.Count != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(uint64(i) * 1000) // 1µs .. 1ms
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 <= 0 || s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Fatalf("non-monotone quantiles: %+v", s)
	}
	// Max is the upper bound of the top non-empty bucket: ≥ true max,
	// within the 12.5% layout error.
	if s.Max < 1e-3 || s.Max > 1.13e-3 {
		t.Fatalf("max = %v, want ~1e-3", s.Max)
	}
}

// TestObserveHelpers covers the time-based observe paths.
func TestObserveHelpers(t *testing.T) {
	h := &Histogram{}
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	h.ObserveDuration(2 * time.Millisecond)
	h.ObserveDuration(-time.Second) // clamped to 0
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if q := h.Quantile(1); q < 2e6 {
		t.Fatalf("max quantile %v, want ≥2ms", q)
	}
	// nil receiver is a no-op everywhere.
	var nilH *Histogram
	nilH.Observe(1)
	nilH.ObserveSince(time.Now())
	nilH.ObserveDuration(time.Second)
	nilH.Merge(h)
	h.Merge(nilH)
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 || nilH.SumSeconds() != 0 {
		t.Fatal("nil histogram should read as empty")
	}
	if h.Count() != 3 {
		t.Fatalf("merge with nil changed count: %d", h.Count())
	}
}

// TestRecordPathAllocs proves the record path allocates nothing — the
// core property the ablobs experiment depends on.
func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c", nil)
	g := r.Gauge("g", "g", Labels{"x": "y"})
	h := r.Histogram("h_seconds", "h", nil)
	ring := NewTraceRing(8, 1)
	var tr Trace
	tr.Stage[StageMatch] = 123
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(4.5)
		h.Observe(12345)
		h.ObserveDuration(time.Microsecond)
		if ring.Sample() {
			ring.Record(tr)
		}
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v allocs/op, want 0", allocs)
	}
}
