package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics covers handle semantics including nil safety
// and registration dedup.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests", Labels{"code": "200"})
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same name+labels → same handle, regardless of label map order.
	if c2 := r.Counter("requests_total", "requests", Labels{"code": "200"}); c2 != c {
		t.Fatal("duplicate registration returned a different handle")
	}
	g := r.Gauge("temp", "temperature", nil)
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	var nc *Counter
	var ng *Gauge
	nc.Inc()
	nc.Add(7)
	ng.Set(1)
	if nc.Value() != 0 || ng.Value() != 0 {
		t.Fatal("nil handles should read zero")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "x", nil)
}

// promLine matches one exposition sample line: name, optional label
// set, value, no trailing garbage.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// checkExposition scans a full exposition body line by line and fails
// on anything that is neither a well-formed comment nor a well-formed
// sample — the "scrape-parseable" gate.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("malformed comment line: %q", line)
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestPrometheusExposition locks down the text format: HELP/TYPE
// blocks, sorted family and label order, label value escaping, and
// integer rendering of counters.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b counter", Labels{"z": "1", "a": "2"}).Add(7)
	r.Counter("b_total", "b counter", Labels{"a": "1", "z": "9"}).Add(3)
	r.Gauge("a_gauge", `tricky "help" with \slash`+"\nand newline", Labels{"p": `va"l\ue` + "\n"}).Set(1.5)
	r.GaugeFunc("c_fn", "computed", nil, func() float64 { return 42 })
	r.Collect("d_items", "per-thing", TypeGauge, func(emit func(Labels, float64)) {
		emit(Labels{"thing": "beta"}, 2)
		emit(Labels{"thing": "alpha"}, 1)
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	checkExposition(t, got)

	want := "# HELP a_gauge tricky \"help\" with \\\\slash\\nand newline\n" +
		"# TYPE a_gauge gauge\n" +
		`a_gauge{p="va\"l\\ue\n"} 1.5` + "\n" +
		"# HELP b_total b counter\n" +
		"# TYPE b_total counter\n" +
		`b_total{a="1",z="9"} 3` + "\n" +
		`b_total{a="2",z="1"} 7` + "\n" +
		"# HELP c_fn computed\n" +
		"# TYPE c_fn gauge\n" +
		"c_fn 42\n" +
		"# HELP d_items per-thing\n" +
		"# TYPE d_items gauge\n" +
		`d_items{thing="alpha"} 1` + "\n" +
		`d_items{thing="beta"} 2` + "\n"
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusHistogram locks down the histogram block: cumulative
// le buckets in seconds, +Inf always present, _sum/_count, and the le
// label spliced after existing labels.
func TestPrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", Labels{"stage": "match"})
	h.Observe(10) // 10ns → bucket upper 10
	h.Observe(10)
	h.Observe(1000)      // 1µs
	h.Observe(2_000_000) // 2ms

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	checkExposition(t, got)

	lines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	var buckets []string
	var sumLine, countLine string
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "lat_seconds_bucket"):
			buckets = append(buckets, l)
		case strings.HasPrefix(l, "lat_seconds_sum"):
			sumLine = l
		case strings.HasPrefix(l, "lat_seconds_count"):
			countLine = l
		}
	}
	if len(buckets) < 4 {
		t.Fatalf("want ≥4 bucket lines (3 values + +Inf), got %v", buckets)
	}
	// Cumulative counts must be non-decreasing and end at the total.
	prev := -1.0
	for _, b := range buckets {
		f := strings.Fields(b)
		v, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil || v < prev {
			t.Fatalf("non-cumulative bucket line %q (prev %v)", b, prev)
		}
		prev = v
		if !strings.Contains(b, `{stage="match",le="`) {
			t.Fatalf("le label not spliced after existing labels: %q", b)
		}
	}
	last := buckets[len(buckets)-1]
	if !strings.Contains(last, `le="+Inf"`) || !strings.HasSuffix(last, " 4") {
		t.Fatalf("final bucket must be le=+Inf with total count: %q", last)
	}
	// First emitted bucket is the 10ns one: le="1e-08" 2.
	if !strings.Contains(buckets[0], `le="1e-08"`) || !strings.HasSuffix(buckets[0], " 2") {
		t.Fatalf("first bucket = %q, want le=\"1e-08\" with count 2", buckets[0])
	}
	if countLine != `lat_seconds_count{stage="match"} 4` {
		t.Fatalf("count line = %q", countLine)
	}
	wantSum := (10 + 10 + 1000 + 2_000_000) / 1e9
	f := strings.Fields(sumLine)
	if v, _ := strconv.ParseFloat(f[len(f)-1], 64); math.Abs(v-wantSum) > 1e-15 {
		t.Fatalf("sum line = %q, want %v", sumLine, wantSum)
	}
}

// TestVars checks the JSON debug rendering round-trips through
// encoding/json and digests histograms.
func TestVars(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "n", nil).Add(9)
	r.Histogram("d_seconds", "d", nil).Observe(5_000_000)
	b, err := json.Marshal(r.Vars())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["n_total"].(float64) != 9 {
		t.Fatalf("n_total = %v", m["n_total"])
	}
	hist := m["d_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Fatalf("histogram digest = %v", hist)
	}
}

// TestTraceRing covers sampling cadence, eviction order and nil
// behavior.
func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(3, 4)
	recorded := 0
	for i := 0; i < 17; i++ {
		if ring.Sample() {
			ring.Record(Trace{Doc: uint64(i)})
			recorded++
		}
	}
	if recorded != 5 { // publishes 0, 4, 8, 12, 16
		t.Fatalf("recorded %d, want 5", recorded)
	}
	if ring.Total() != 5 {
		t.Fatalf("total = %d", ring.Total())
	}
	snap := ring.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, want := range []uint64{16, 12, 8} { // newest first
		if snap[i].Doc != want {
			t.Fatalf("snapshot[%d].Doc = %d, want %d", i, snap[i].Doc, want)
		}
	}
	var nilRing *TraceRing
	if nilRing.Sample() || nilRing.Snapshot() != nil || nilRing.Total() != 0 {
		t.Fatal("nil ring should be inert")
	}
	nilRing.Record(Trace{})

	// JSON rendering names stages and elides zeros.
	var tr Trace
	tr.Stage[StageFsync] = 77
	tr.Total = 100
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, `"fsync":77`) || strings.Contains(s, "analyze") {
		t.Fatalf("trace JSON = %s", s)
	}
}

// TestMetricsRaceHammer pounds the record path from many goroutines
// while scrapers render concurrently. Its real assertions come from
// the race detector (`go test -race`); the count checks are a bonus.
func TestMetricsRaceHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "h", nil)
	g := r.Gauge("hammer_gauge", "h", nil)
	h := r.Histogram("hammer_seconds", "h", Labels{"stage": "x"})
	ring := NewTraceRing(64, 3)
	r.Collect("hammer_items", "h", TypeGauge, func(emit func(Labels, float64)) {
		emit(Labels{"i": "0"}, float64(c.Value()))
	})

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(seed*31 + uint64(i)*977)
				if ring.Sample() {
					ring.Record(Trace{Doc: seed})
				}
			}
		}(uint64(w))
	}
	// Concurrent scrapers + merger.
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				_ = r.Vars()
				_ = h.Summary()
				_ = ring.Snapshot()
				m := &Histogram{}
				m.Merge(h)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	checkExposition(t, sb.String())
}
