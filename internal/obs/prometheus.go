package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, series
// sorted by label set, HELP/TYPE comment per family, histograms as
// cumulative `le` buckets plus `_sum` and `_count`. Histogram bucket
// edges are in seconds (observations are nanoseconds internally);
// zero-count leading buckets are elided, the `+Inf` bucket is always
// emitted.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(string(f.typ))
		bw.WriteByte('\n')
		if f.typ == TypeHistogram {
			for _, m := range f.histograms() {
				writeHistogram(bw, f.name, m.labels, m.h)
			}
			continue
		}
		for _, s := range f.samples() {
			bw.WriteString(f.name)
			bw.WriteString(s.labels)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogram emits one histogram series: cumulative buckets with
// the extra `le` label spliced into the series' label set, then _sum
// and _count.
func writeHistogram(bw *bufio.Writer, name, labels string, h *Histogram) {
	counts, total, sum := h.snapshot()
	writeBucket := func(le string, cum uint64) {
		bw.WriteString(name)
		bw.WriteString("_bucket")
		if labels == "" {
			bw.WriteString(`{le="`)
		} else {
			bw.WriteString(labels[:len(labels)-1])
			bw.WriteString(`,le="`)
		}
		bw.WriteString(le)
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	cum := uint64(0)
	started := false
	for i := 0; i < numBuckets; i++ {
		c := counts[i]
		if c == 0 && !started {
			continue
		}
		started = true
		cum += c
		if c == 0 {
			// A zero-increment bucket adds no information to a
			// cumulative series; keep the exposition compact.
			continue
		}
		le := strconv.FormatFloat(float64(bucketUpper(i))/1e9, 'g', -1, 64)
		writeBucket(le, cum)
	}
	writeBucket("+Inf", total)
	bw.WriteString(name)
	bw.WriteString("_sum")
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(float64(sum) / 1e9))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(total, 10))
	bw.WriteByte('\n')
}

// formatValue renders a sample value: integral values as plain
// integers (counters stay exact up to 2^53), everything else in
// shortest-round-trip scientific/decimal form. NaN and ±Inf use the
// exposition spellings.
func formatValue(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Vars renders the registry as a JSON-friendly map for /v1/debug/vars:
// scalar series as numbers keyed by "name{labels}", histograms as
// summary objects (count, sum, p50/p90/p99/max in seconds).
func (r *Registry) Vars() map[string]any {
	out := make(map[string]any)
	for _, f := range r.snapshotFamilies() {
		if f.typ == TypeHistogram {
			for _, m := range f.histograms() {
				out[f.name+m.labels] = m.h.Summary()
			}
			continue
		}
		for _, s := range f.samples() {
			out[f.name+s.labels] = s.value
		}
	}
	return out
}
