// Package obs is the engine's observability core: allocation-free
// atomic counters, gauges and log-linear latency histograms behind a
// Registry that renders the whole metric set as Prometheus text
// exposition (WritePrometheus) or as a JSON debug dump (Vars). It is
// deliberately dependency-free — standard library only — so every
// subsystem (the matching kernel, the WAL, the notify broker, the
// snapshotter) can record into it without import cycles or new
// third-party baggage.
//
// The record path — Counter.Add, Gauge.Set, Histogram.Observe — is a
// handful of atomic operations: no locks, no allocations, safe from
// any goroutine concurrently with scrapes. Handle methods are
// nil-receiver safe, so an uninstrumented configuration keeps the same
// call sites and pays only a nil check (the ablobs experiment measures
// exactly that delta).
//
// Registration (Counter/Gauge/Histogram/GaugeFunc/Collect) is meant
// for construction time: it takes the registry lock and allocates.
// Registering the same name+labels twice returns the existing handle,
// so independent components may share a metric; re-registering a name
// under a different metric type panics — that is a programming error,
// not an operational condition.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels is one metric's label set. Label order never matters: sets
// render with keys sorted, so {a,b} and {b,a} are the same series.
type Labels map[string]string

// MetricType is the Prometheus exposition type of a metric family.
type MetricType string

// The metric family types the registry supports.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; a nil *Counter records nothing.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down. The zero value is
// ready to use; a nil *Gauge records nothing.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(floatBits(v))
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// sample is one (labels, value) pair a collector emits at scrape time.
type sample struct {
	labels string
	value  float64
}

// metric is one registered series inside a family. Exactly one of the
// value fields is set, matching the family's type.
type metric struct {
	labels string // rendered label set, "" or `{k="v",...}`
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups every series sharing a metric name (one HELP/TYPE
// block in the exposition). A family is either static — a set of
// registered metrics — or collector-backed, in which case its sample
// set is produced fresh at each scrape.
type family struct {
	name, help string
	typ        MetricType
	metrics    map[string]*metric
	collect    func(emit func(Labels, float64))
}

// Registry holds a metric set and renders it. All methods are safe for
// concurrent use; the record path of the handles it returns never
// touches the registry again.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family returns (creating if needed) the named family, enforcing
// that a name keeps one type and one help string for its lifetime.
func (r *Registry) family(name, help string, typ MetricType) *family {
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, metrics: make(map[string]*metric)}
		r.fams[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, typ, f.typ))
	}
	return f
}

// series returns (creating if needed) the labeled series in family f.
func (f *family) series(ls Labels) (*metric, bool) {
	key := renderLabels(ls)
	if m := f.metrics[key]; m != nil {
		return m, false
	}
	m := &metric{labels: key}
	f.metrics[key] = m
	return m, true
}

// Counter registers (or returns the existing) counter name{ls}.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.family(name, help, TypeCounter).series(ls)
	if fresh {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge registers (or returns the existing) gauge name{ls}.
func (r *Registry) Gauge(name, help string, ls Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.family(name, help, TypeGauge).series(ls)
	if fresh {
		m.g = &Gauge{}
	}
	return m.g
}

// GaugeFunc registers a gauge whose value is computed by fn at each
// scrape. fn runs on the scraping goroutine and may take locks (it
// must not call back into this registry's registration methods).
func (r *Registry) GaugeFunc(name, help string, ls Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.family(name, help, TypeGauge).series(ls)
	m.fn = fn
}

// CounterFunc registers a counter whose cumulative value is computed
// by fn at each scrape — for monotone totals a subsystem already
// tracks (the monitor's lifetime event counters, the WAL's next LSN).
func (r *Registry) CounterFunc(name, help string, ls Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.family(name, help, TypeCounter).series(ls)
	m.fn = fn
}

// Histogram registers (or returns the existing) histogram name{ls}.
// Histograms record durations in nanoseconds and export seconds, so
// the name should end in _seconds.
func (r *Registry) Histogram(name, help string, ls Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.family(name, help, TypeHistogram).series(ls)
	if fresh {
		m.h = &Histogram{}
	}
	return m.h
}

// Collect registers a collector-backed family: at each scrape fn is
// invoked and every emit(labels, value) call contributes one sample.
// This is how dynamically shaped series sets (per-shard × per-
// partition occupancy) are exported without re-registering on every
// layout change. typ must be TypeCounter or TypeGauge.
func (r *Registry) Collect(name, help string, typ MetricType, fn func(emit func(Labels, float64))) {
	if typ == TypeHistogram {
		panic("obs: histogram collectors are not supported")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	f.collect = fn
}

// snapshotFamilies returns the families sorted by name. Callers then
// read each family under no lock: families are immutable once
// registered (the metric map only grows, and scrapes tolerate a
// concurrently added series).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// samples materializes a family's current (labels, value) set, sorted
// by rendered labels. Histogram families return no samples here; the
// exposition writers handle them structurally.
func (f *family) samples() []sample {
	var out []sample
	if f.collect != nil {
		f.collect(func(ls Labels, v float64) {
			out = append(out, sample{labels: renderLabels(ls), value: v})
		})
	} else {
		for _, m := range f.metrics {
			switch {
			case m.fn != nil:
				out = append(out, sample{labels: m.labels, value: m.fn()})
			case m.c != nil:
				out = append(out, sample{labels: m.labels, value: float64(m.c.Value())})
			case m.g != nil:
				out = append(out, sample{labels: m.labels, value: m.g.Value()})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// histograms returns a histogram family's series sorted by labels.
func (f *family) histograms() []*metric {
	out := make([]*metric, 0, len(f.metrics))
	for _, m := range f.metrics {
		if m.h != nil {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// renderLabels renders a label set in canonical form: keys sorted,
// values escaped, `{k="v",k2="v2"}` — or "" for an empty set.
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(ls[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue escapes a label value per the text exposition
// format: backslash, double quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// nowNanos returns time.Since(t0) in nanoseconds, clamped at zero so a
// non-monotonic clock step can never underflow a uint64 histogram.
func nowNanos(t0 time.Time) uint64 {
	d := time.Since(t0)
	if d < 0 {
		return 0
	}
	return uint64(d)
}
