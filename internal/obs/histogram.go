package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-layout log-linear latency histogram: values are
// durations in nanoseconds, bucketed into 8 linear sub-buckets per
// power-of-two octave (HDR style). The layout is identical for every
// histogram, so two histograms merge bucket-by-bucket with no
// reconciliation, and the worst-case relative quantile error is the
// sub-bucket width: 1/8 = 12.5%.
//
// Observe is wait-free — two atomic adds, no locks, no allocations —
// and safe concurrently with Quantile/Summary/Merge and with scrapes.
// There is no separate observation counter: the count is derived by
// summing buckets at read time, trading a few hundred loads per scrape
// for one fewer contended RMW on every record. The zero value is ready
// to use; a nil *Histogram records nothing.
//
// Layout: values 0..15 map to their own unit bucket (idx = v). For
// larger v with o = floor(log2(v)) ≥ 4, the octave [2^o, 2^(o+1)) is
// split into 8 sub-buckets of width 2^(o-3):
//
//	idx = 8 + 8*(o-3) + ((v >> (o-3)) & 7)
//
// which is continuous with the unit region at v = 8..15 (o = 3). The
// top octave is o = 63, giving numBuckets = 8 + 8*61 = 496 buckets
// (~4 KiB of counters) covering the full uint64 nanosecond range —
// up to ~584 years of latency, which ought to be enough.
type Histogram struct {
	sum     atomic.Uint64 // nanoseconds; wraps after ~584 years of recorded time
	buckets [numBuckets]atomic.Uint64
}

const (
	subBits    = 3            // log2 of sub-buckets per octave
	subCount   = 1 << subBits // 8
	numBuckets = 8 + 8*(63-2) // unit region + octaves 3..63
)

// bucketIdx maps a nanosecond value to its bucket.
func bucketIdx(v uint64) int {
	if v < 2*subCount {
		return int(v)
	}
	o := uint(bits.Len64(v)) - 1
	return subCount + int(o-subBits)*subCount + int((v>>(o-subBits))&(subCount-1))
}

// bucketUpper returns the largest value mapping to bucket i (the
// inclusive upper bound; the Prometheus `le` edge).
func bucketUpper(i int) uint64 {
	if i < 2*subCount {
		return uint64(i)
	}
	o := uint(subBits) + uint(i-subCount)/subCount
	sub := uint64(i-subCount) % subCount
	return 1<<o + (sub+1)<<(o-subBits) - 1
}

// bucketLower returns the smallest value mapping to bucket i.
func bucketLower(i int) uint64 {
	if i == 0 {
		return 0
	}
	return bucketUpper(i-1) + 1
}

// Observe records a duration of ns nanoseconds.
func (h *Histogram) Observe(ns uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketIdx(ns)].Add(1)
	h.sum.Add(ns)
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(nowNanos(t0))
	}
}

// ObserveDuration records d, clamping negative durations to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Merge adds o's recorded population into h. Both sides may keep
// recording concurrently; the merge is per-bucket atomic (each bucket
// transfers exactly, though the combined view is not a single instant).
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.sum.Add(o.sum.Load())
}

// Count returns the number of observations (a sum over the buckets —
// read-time work, so the record path stays two atomic adds).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// SumSeconds returns the sum of all observed durations in seconds.
func (h *Histogram) SumSeconds() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sum.Load()) / 1e9
}

// snapshot copies the bucket counts and returns them with their total.
// The total is computed from the copied buckets, so bucket sums and
// _count agree exactly within one scrape even while writers race.
func (h *Histogram) snapshot() (counts [numBuckets]uint64, total, sum uint64) {
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	return counts, total, h.sum.Load()
}

// HistogramSummary is a point-in-time digest of a histogram, with
// quantiles estimated from the bucket layout (≤12.5% relative error).
// Durations are seconds.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
}

// Summary digests the histogram's current population in one pass.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	counts, total, sum := h.snapshot()
	s := HistogramSummary{Count: total, Sum: float64(sum) / 1e9}
	if total == 0 {
		return s
	}
	s.P50 = quantileOf(&counts, total, 0.50) / 1e9
	s.P90 = quantileOf(&counts, total, 0.90) / 1e9
	s.P99 = quantileOf(&counts, total, 0.99) / 1e9
	for i := numBuckets - 1; i >= 0; i-- {
		if counts[i] > 0 {
			s.Max = float64(bucketUpper(i)) / 1e9
			break
		}
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// population in nanoseconds, interpolating linearly inside the bucket
// that contains the target rank.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, total, _ := h.snapshot()
	if total == 0 {
		return 0
	}
	return quantileOf(&counts, total, q)
}

// quantileOf walks a bucket snapshot to the target rank.
func quantileOf(counts *[numBuckets]uint64, total uint64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	last := 0
	for i := 0; i < numBuckets; i++ {
		c := counts[i]
		if c == 0 {
			continue
		}
		last = i
		if cum+float64(c) >= rank {
			lo, hi := bucketLower(i), bucketUpper(i)
			frac := (rank - cum) / float64(c)
			return float64(lo) + (float64(hi)-float64(lo)+1)*frac
		}
		cum += float64(c)
	}
	return float64(bucketUpper(last))
}
