package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestOnlineMoments(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", o.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(o.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", o.Var(), 32.0/7)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.Std() != 0 {
		t.Fatal("empty Online should be zeroed")
	}
	o.Add(3)
	if o.Var() != 0 {
		t.Fatalf("Var with n=1 = %v, want 0", o.Var())
	}
	if o.Min() != 3 || o.Max() != 3 {
		t.Fatal("single-sample min/max wrong")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var o Online
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			o.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(o.Mean()-mean) < 1e-9 && math.Abs(o.Var()-v) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v, want 50.5", got)
	}
	if got := s.Percentile(95); math.Abs(got-95.05) > 1e-9 {
		t.Fatalf("p95 = %v, want 95.05", got)
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	var s Sample
	for _, x := range []float64{5, 1, 4, 2, 3} {
		s.Add(x)
	}
	if got := s.Median(); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	// Adding after sorting must re-sort.
	s.Add(0)
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("p0 after append = %v, want 0", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 {
		t.Fatal("empty sample should return 0")
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Microsecond)
	if got := s.Mean(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("ms = %v, want 1.5", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 2); got != 5 {
		t.Fatalf("Speedup = %v", got)
	}
	if !math.IsInf(Speedup(10, 0), 1) {
		t.Fatal("Speedup by zero should be +Inf")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	counts := h.Counts()
	if counts[0] != 3 { // -1 (clamped), 0, 1.9
		t.Fatalf("bin0 = %d, want 3", counts[0])
	}
	if counts[1] != 1 { // 2
		t.Fatalf("bin1 = %d, want 1", counts[1])
	}
	if counts[4] != 3 { // 9.99, 10 (clamped), 100 (clamped)
		t.Fatalf("bin4 = %d, want 3", counts[4])
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSummaryFormat(t *testing.T) {
	var s Sample
	s.Add(1)
	if got := s.Summary(); got == "" {
		t.Fatal("empty summary")
	}
}
