// Package stats provides the small statistical toolkit the experiment
// harness uses: online moments, percentiles, histograms and speedup
// tables. It deliberately avoids third-party dependencies.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Online accumulates count, mean and variance in one pass using
// Welford's algorithm, plus min/max.
type Online struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the observation count.
func (o *Online) N() uint64 { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the sample variance (0 for n<2).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 when empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 when empty).
func (o *Online) Max() float64 { return o.max }

// Sample collects raw observations for percentile queries.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration appends a duration in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics. Empty samples return 0.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Summary formats n/mean/p50/p95/max in one line.
func (s *Sample) Summary() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(95), s.Percentile(100))
}

// Speedup returns base/x, guarding against division by zero.
func Speedup(base, x float64) float64 {
	if x == 0 {
		return math.Inf(1)
	}
	return base / x
}

// Histogram counts observations into equal-width bins over [lo, hi);
// outliers clamp into the edge bins.
type Histogram struct {
	lo, hi float64
	bins   []uint64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
// It panics if n < 1 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]uint64, n)}
}

// Add places one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
}

// Counts returns a copy of the bin counts.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.bins))
	copy(out, h.bins)
	return out
}

// Total returns the number of observations added.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.bins {
		t += c
	}
	return t
}
