package dataset

import (
	"strings"
	"testing"
)

func TestReadDocs(t *testing.T) {
	input := `{"id":0,"terms":[3,1],"weights":[0.6,0.8]}

{"id":1,"terms":[2],"weights":[1]}`
	docs, err := ReadDocs(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("read %d docs", len(docs))
	}
	// Vectors must come back sorted regardless of wire order.
	if docs[0].Vec[0].Term != 1 || docs[0].Vec[1].Term != 3 {
		t.Fatalf("doc 0 vector not sorted: %+v", docs[0].Vec)
	}
	if docs[1].ID != 1 {
		t.Fatalf("doc 1 ID = %d", docs[1].ID)
	}
}

func TestReadDocsErrors(t *testing.T) {
	cases := []string{
		`{bad json}`,
		`{"id":0,"terms":[1,2],"weights":[0.5]}`,     // length mismatch
		`{"id":0,"terms":[1,1],"weights":[0.5,0.5]}`, // duplicate term
		`{"id":0,"terms":[1],"weights":[-1]}`,        // negative weight
	}
	for i, c := range cases {
		if _, err := ReadDocs(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadQueries(t *testing.T) {
	input := `{"id":0,"k":5,"terms":[7],"weights":[1]}
{"id":1,"k":3,"terms":[2,9],"weights":[0.6,0.8]}`
	defs, err := ReadQueries(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 2 || defs[0].K != 5 || defs[1].K != 3 {
		t.Fatalf("defs = %+v", defs)
	}
}

func TestReadQueriesErrors(t *testing.T) {
	cases := []string{
		`{"id":1,"k":5,"terms":[7],"weights":[1]}`, // out of order
		`{"id":0,"k":0,"terms":[7],"weights":[1]}`, // bad k
		`{"id":0,"k":1,"terms":[],"weights":[]}`,   // empty vector
	}
	for i, c := range cases {
		if _, err := ReadQueries(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
