// Package dataset reads the JSONL corpus and query files produced by
// cmd/ctkgen back into monitor inputs, so experiments can be replayed
// bit-identically across runs, machines and external systems.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/textproc"
)

// DocRecord is the corpus wire format (one JSON object per line).
type DocRecord struct {
	ID      uint64    `json:"id"`
	Terms   []uint32  `json:"terms"`
	Weights []float64 `json:"weights"`
}

// QueryRecord is the query wire format.
type QueryRecord struct {
	ID      uint32    `json:"id"`
	K       int       `json:"k"`
	Terms   []uint32  `json:"terms"`
	Weights []float64 `json:"weights"`
}

// vector assembles and validates a sorted sparse vector.
func vector(terms []uint32, weights []float64) (textproc.Vector, error) {
	if len(terms) != len(weights) {
		return nil, fmt.Errorf("dataset: %d terms but %d weights", len(terms), len(weights))
	}
	v := make(textproc.Vector, len(terms))
	for i := range terms {
		v[i] = textproc.TermWeight{Term: textproc.TermID(terms[i]), Weight: weights[i]}
	}
	sort.Slice(v, func(i, j int) bool { return v[i].Term < v[j].Term })
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// scanLines streams non-empty JSONL lines to fn with 1-based line
// numbers.
func scanLines(r io.Reader, fn func(line int, data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		if err := fn(line, sc.Bytes()); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadDocs loads a corpus file.
func ReadDocs(r io.Reader) ([]corpus.Document, error) {
	var docs []corpus.Document
	err := scanLines(r, func(line int, data []byte) error {
		var rec DocRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("dataset: corpus line %d: %w", line, err)
		}
		v, err := vector(rec.Terms, rec.Weights)
		if err != nil {
			return fmt.Errorf("dataset: corpus line %d: %w", line, err)
		}
		docs = append(docs, corpus.Document{ID: rec.ID, Vec: v})
		return nil
	})
	return docs, err
}

// ReadQueries loads a query file into monitor definitions. Records
// must be in ascending dense ID order (as ctkgen writes them), because
// monitor query IDs are positional.
func ReadQueries(r io.Reader) ([]core.QueryDef, error) {
	var defs []core.QueryDef
	err := scanLines(r, func(line int, data []byte) error {
		var rec QueryRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("dataset: query line %d: %w", line, err)
		}
		if int(rec.ID) != len(defs) {
			return fmt.Errorf("dataset: query line %d: ID %d out of order (want %d)", line, rec.ID, len(defs))
		}
		v, err := vector(rec.Terms, rec.Weights)
		if err != nil {
			return fmt.Errorf("dataset: query line %d: %w", line, err)
		}
		if rec.K < 1 {
			return fmt.Errorf("dataset: query line %d: k=%d", line, rec.K)
		}
		if len(v) == 0 {
			return fmt.Errorf("dataset: query line %d: empty vector", line)
		}
		defs = append(defs, core.QueryDef{Vec: v, K: rec.K})
		return nil
	})
	return defs, err
}
