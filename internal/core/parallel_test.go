package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/workload"
)

// TestParallelismEquivalence is the intra-shard parity gate: monitors
// at Parallelism 2 and 4 — alone and composed with Shards — must hold
// bit-identical top-k lists to the sequential monitor after the same
// stream, including across forced decay rebases (λ=30 crosses the
// rebase exponent budget on the fixture's ~25-second timeline).
func TestParallelismEquivalence(t *testing.T) {
	const nq = 150
	defs := defsFromWorkload(t, workload.Connected, nq, 3, 17)
	events := testEvents(t, 256, 93)

	newMon := func(shards, par int) *Monitor {
		m, err := NewMonitor(Config{Lambda: 30, Shards: shards, Parallelism: par}, defs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	}
	newMonStrat := func(shards, par int, strat PartitionStrategy) *Monitor {
		m, err := NewMonitor(Config{Lambda: 30, Shards: shards, Parallelism: par, Partition: strat}, defs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	}
	ref := newMon(1, 1)
	variants := map[string]*Monitor{
		"par=2":                newMon(1, 2),
		"par=4":                newMon(1, 4),
		"shards=2 par=2":       newMon(2, 2),
		"par=2 count":          newMonStrat(1, 2, PartitionCount),
		"par=4 count":          newMonStrat(1, 4, PartitionCount),
		"par=4 mass":           newMonStrat(1, 4, PartitionMass),
		"shards=2 par=3 count": newMonStrat(2, 3, PartitionCount),
		"shards=2 par=3 mass":  newMonStrat(2, 3, PartitionMass),
	}

	const chunk = 7
	rebases := 0
	lastBase := 0.0
	for i := 0; i < len(events); i += chunk {
		evs := events[i:min(i+chunk, len(events))]
		at := evs[len(evs)-1].Time
		docs := make([]corpus.Document, len(evs))
		for j, ev := range evs {
			docs[j] = ev.Doc
		}
		for _, doc := range docs {
			if _, err := ref.Process(doc, at); err != nil {
				t.Fatal(err)
			}
		}
		if b := ref.decay.Base(); b != lastBase {
			rebases++
			lastBase = b
		}
		for name, m := range variants {
			if _, err := m.ProcessBatch(docs, at); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	if rebases == 0 {
		t.Fatal("fixture never rebased; raise λ or the timeline")
	}
	if ref.Totals().Matched == 0 {
		t.Fatal("no query ever matched; fixture degenerate")
	}
	for name, m := range variants {
		if m.Totals().Matched != ref.Totals().Matched {
			t.Fatalf("%s: matched = %d, want %d", name, m.Totals().Matched, ref.Totals().Matched)
		}
		expectSameResults(t, name, ref, m, nq)
	}
}

// TestParallelismEquivalenceAcrossRebuilds stresses the intra-shard
// worker lifecycle: query churn trips shard rebuilds (which replace
// the Parallel processors and their partition workers) between
// batches, and results must still match the sequential monitor.
func TestParallelismEquivalenceAcrossRebuilds(t *testing.T) {
	const nq = 60
	defs := defsFromWorkload(t, workload.Uniform, nq, 3, 18)
	extra := defsFromWorkload(t, workload.Uniform, 20, 3, 19)
	events := testEvents(t, 200, 94)

	mk := func(shards, par int) *Monitor {
		m, err := NewMonitor(Config{Lambda: 0.01, Shards: shards, Parallelism: par, RebuildThreshold: 2}, defs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	}
	ref, par := mk(1, 1), mk(2, 3)

	const chunk = 10
	added := 0
	for i := 0; i < len(events); i += chunk {
		evs := events[i:min(i+chunk, len(events))]
		at := evs[len(evs)-1].Time
		docs := make([]corpus.Document, len(evs))
		for j, ev := range evs {
			docs[j] = ev.Doc
		}
		for _, doc := range docs {
			if _, err := ref.Process(doc, at); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := par.ProcessBatch(docs, at); err != nil {
			t.Fatal(err)
		}
		if added < len(extra) {
			for _, m := range []*Monitor{ref, par} {
				if _, err := m.AddQuery(extra[added]); err != nil {
					t.Fatal(err)
				}
			}
			added++
		}
		if i/chunk%3 == 2 {
			victim := uint32(i / chunk % nq)
			for _, m := range []*Monitor{ref, par} {
				if err := m.RemoveQuery(victim); err != nil && !errors.Is(err, ErrRemovedQuery) {
					t.Fatal(err)
				}
			}
		}
	}
	expectSameResults(t, "shards=2 par=3 + churn", ref, par, nq+added)
}

// TestPartitionEquivalenceAcrossChurnAndRepartitions is the parity
// gate for the cost-aware partitioner under everything that can move
// boundaries at once: a skewed (Hot) workload, query churn tripping
// shard rebuilds (every rebuild replans from the live query set), a
// tiny RepartitionWindow so sustained-imbalance checks run constantly,
// and periodic forced Repartition calls — for both strategies, alone
// and composed with shards. Results must stay bit-identical to the
// sequential monitor throughout.
func TestPartitionEquivalenceAcrossChurnAndRepartitions(t *testing.T) {
	const nq = 120
	defs := defsFromWorkload(t, workload.Hot, nq, 3, 26)
	extra := defsFromWorkload(t, workload.Uniform, 15, 3, 27)
	events := testEvents(t, 220, 98)

	mk := func(shards, par int, strat PartitionStrategy) *Monitor {
		m, err := NewMonitor(Config{
			Lambda: 0.01, Shards: shards, Parallelism: par,
			Partition: strat, RepartitionWindow: 8, RebuildThreshold: 3,
		}, defs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	}
	ref := mk(1, 1, PartitionCount)
	variants := map[string]*Monitor{
		"par=4 mass":          mk(1, 4, PartitionMass),
		"par=4 count":         mk(1, 4, PartitionCount),
		"shards=2 par=3 mass": mk(2, 3, PartitionMass),
	}

	const chunk = 9
	added := 0
	for i := 0; i < len(events); i += chunk {
		evs := events[i:min(i+chunk, len(events))]
		at := evs[len(evs)-1].Time
		docs := make([]corpus.Document, len(evs))
		for j, ev := range evs {
			docs[j] = ev.Doc
		}
		for _, doc := range docs {
			if _, err := ref.Process(doc, at); err != nil {
				t.Fatal(err)
			}
		}
		for name, m := range variants {
			if _, err := m.ProcessBatch(docs, at); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if added < len(extra) {
			for _, m := range append([]*Monitor{ref}, variants["par=4 mass"], variants["par=4 count"], variants["shards=2 par=3 mass"]) {
				if _, err := m.AddQuery(extra[added]); err != nil {
					t.Fatal(err)
				}
			}
			added++
		}
		if i/chunk%4 == 3 {
			victim := uint32(i / chunk % nq)
			for _, m := range append([]*Monitor{ref}, variants["par=4 mass"], variants["par=4 count"], variants["shards=2 par=3 mass"]) {
				if err := m.RemoveQuery(victim); err != nil && !errors.Is(err, ErrRemovedQuery) {
					t.Fatal(err)
				}
			}
			// And force an immediate boundary replan from the observed
			// occupancy on top of the automatic window checks.
			for name, m := range variants {
				if err := m.Repartition(); err != nil {
					t.Fatalf("%s: forced repartition: %v", name, err)
				}
			}
		}
	}
	for name, m := range variants {
		if m.Totals().Matched != ref.Totals().Matched {
			t.Fatalf("%s: matched = %d, want %d", name, m.Totals().Matched, ref.Totals().Matched)
		}
		expectSameResults(t, name, ref, m, nq+added)
	}
}

// TestPartitionStats: the per-partition occupancy surface must tile
// each shard's query set and report the strategy's cost estimates;
// monitors without intra-shard parallelism report one entry per shard.
func TestPartitionStats(t *testing.T) {
	const nq = 90
	defs := defsFromWorkload(t, workload.Hot, nq, 2, 28)
	events := testEvents(t, 50, 99)

	m, err := NewMonitor(Config{Shards: 2, Parallelism: 3}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	parts := m.PartitionStats()
	if len(parts) != 6 {
		t.Fatalf("partition entries = %d, want 6 (2 shards × 3)", len(parts))
	}
	queries, cost := 0, 0.0
	var evaluated uint64
	for _, p := range parts {
		if p.Shard < 0 || p.Shard > 1 {
			t.Fatalf("bad shard index in %+v", p)
		}
		queries += p.Queries
		cost += p.Cost
		evaluated += p.Evaluated
	}
	if queries != nq {
		t.Fatalf("partition queries sum to %d, want %d", queries, nq)
	}
	if cost <= 0 {
		t.Fatal("no cost estimates surfaced")
	}
	if evaluated == 0 || uint64(m.Totals().Evaluated) != evaluated {
		t.Fatalf("partition evaluated sum %d, monitor total %d", evaluated, m.Totals().Evaluated)
	}

	flat, err := NewMonitor(Config{Shards: 2}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	fp := flat.PartitionStats()
	if len(fp) != 2 || fp[0].Queries+fp[1].Queries != nq {
		t.Fatalf("flat partition stats: %+v", fp)
	}
}

// TestConfigPartition: defaulting, parsing and validation of the
// partition knobs.
func TestConfigPartition(t *testing.T) {
	c := (Config{}).withDefaults()
	if c.Partition != PartitionMass {
		t.Fatalf("default partition = %q, want mass", c.Partition)
	}
	if c.RepartitionWindow != 4096 {
		t.Fatalf("default repartition window = %d", c.RepartitionWindow)
	}
	if err := (Config{Partition: "bogus"}).Validate(); err == nil {
		t.Fatal("bogus partition strategy accepted")
	}
	if err := (Config{RepartitionWindow: -1}).Validate(); err == nil {
		t.Fatal("negative repartition window accepted")
	}
	if _, err := ParsePartition("count"); err != nil {
		t.Fatal(err)
	}
	defs := defsFromWorkload(t, workload.Uniform, 10, 2, 29)
	m, err := NewMonitor(Config{Parallelism: 2, Partition: PartitionCount}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Config().Partition != PartitionCount {
		t.Fatalf("monitor partition = %q", m.Config().Partition)
	}
	// Repartition on a closed monitor fails; on a count monitor it is a
	// harmless no-op.
	if err := m.Repartition(); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := m.Repartition(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Repartition on closed monitor: %v", err)
	}
}

// monitorFingerprint captures the externally observable registration
// state: live query count, results of every query, pending depth.
func monitorFingerprint(t *testing.T, m *Monitor) (queries int, results map[uint32][]Result) {
	t.Helper()
	results = make(map[uint32][]Result)
	for g := range m.defs {
		top, err := m.Top(uint32(g))
		if err != nil {
			continue
		}
		results[uint32(g)] = top
	}
	return m.NumQueries(), results
}

// TestAddQueryRollback: a def that passes AddQuery's upfront checks
// but fails index construction (k beyond the index's arena bound) must
// leave the monitor exactly as it was — same query count, same
// results, and the next successful add reuses the failed global ID.
func TestAddQueryRollback(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 30, 3, 20)
	extra := defsFromWorkload(t, workload.Uniform, 4, 3, 21)
	events := testEvents(t, 60, 95)
	m, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 1 << 30}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Put results both in the shards and in the pending sidecar.
	if _, err := m.AddQuery(extra[0]); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	nBefore, resBefore := monitorFingerprint(t, m)
	pendingBefore := len(m.deltaIDs)

	bad := QueryDef{Vec: extra[1].Vec, K: math.MaxInt32}
	if _, err := m.AddQuery(bad); err == nil {
		t.Fatal("oversized k accepted")
	}

	nAfter, resAfter := monitorFingerprint(t, m)
	if nAfter != nBefore {
		t.Fatalf("query count changed by failed add: %d → %d", nBefore, nAfter)
	}
	if len(m.defs) != len(m.loc) || len(m.defs) != nBefore {
		t.Fatalf("registration arrays diverged: defs=%d loc=%d live=%d", len(m.defs), len(m.loc), nBefore)
	}
	if len(m.deltaIDs) != pendingBefore {
		t.Fatalf("delta grew by failed add: %d → %d", pendingBefore, len(m.deltaIDs))
	}
	if len(resAfter) != len(resBefore) {
		t.Fatalf("result sets changed: %d → %d queries", len(resBefore), len(resAfter))
	}
	for g, want := range resBefore {
		got := resAfter[g]
		if len(got) != len(want) {
			t.Fatalf("query %d results changed: %d → %d", g, len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d changed: %+v → %+v", g, i, want[i], got[i])
			}
		}
	}
	// The failed ID is reused, the monitor keeps working, and the new
	// query matches documents.
	id, err := m.AddQuery(extra[2])
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != nBefore {
		t.Fatalf("next add got ID %d, want %d (failed ID burned)", id, nBefore)
	}
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, ev.Time+100); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Top(id); err != nil {
		t.Fatalf("Top on post-rollback query: %v", err)
	}
}

// TestAddQueryRollbackAtRebuildThreshold: a doomed add that would have
// tripped the rebuild threshold must consume no dirty budget and leave
// the delta segment (with its accumulated results) untouched.
func TestAddQueryRollbackAtRebuildThreshold(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 20, 2, 22)
	extra := defsFromWorkload(t, workload.Uniform, 3, 2, 23)
	events := testEvents(t, 40, 96)
	m, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 2}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.AddQuery(extra[0]); err != nil { // dirty = 1
		t.Fatal(err)
	}
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	pendingResults, err := m.Top(20)
	if err != nil {
		t.Fatal(err)
	}
	// dirty reaches the threshold with this add, so the failure unwinds
	// with a rebuild pending; the rollback must leave the dirty budget
	// and the sidecar (with its accumulated results) as they were.
	bad := QueryDef{Vec: extra[1].Vec, K: math.MaxInt32}
	if _, err := m.AddQuery(bad); err == nil {
		t.Fatal("oversized k accepted")
	}
	if m.dirty != 1 {
		t.Fatalf("dirty = %d after rollback, want 1", m.dirty)
	}
	after, err := m.Top(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(pendingResults) {
		t.Fatalf("pending query results changed: %d → %d", len(pendingResults), len(after))
	}
	// And a clean add still works and can still trip the rebuild.
	if _, err := m.AddQuery(extra[2]); err != nil {
		t.Fatal(err)
	}
	if m.dirty != 0 {
		t.Fatalf("dirty = %d, want 0 (rebuild should have run)", m.dirty)
	}
}

// TestConfigParallelism: defaulting and validation of the new knob.
func TestConfigParallelism(t *testing.T) {
	if err := (Config{Parallelism: -1}).Validate(); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	c := (Config{}).withDefaults()
	if c.Parallelism != 1 {
		t.Fatalf("default parallelism = %d, want 1", c.Parallelism)
	}
	defs := defsFromWorkload(t, workload.Uniform, 10, 2, 24)
	m, err := NewMonitor(Config{Parallelism: 4}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Config().Parallelism != 4 {
		t.Fatalf("monitor parallelism = %d", m.Config().Parallelism)
	}
}

// TestEachResultDocAndCapacity: the reference iteration the snippet
// pruner relies on reports exactly the stored documents of live
// queries.
func TestEachResultDocAndCapacity(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 25, 3, 25)
	events := testEvents(t, 80, 97)
	m, err := NewMonitor(Config{Lambda: 0.01}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got, want := m.ResultCapacity(), 25*3; got != want {
		t.Fatalf("ResultCapacity = %d, want %d", got, want)
	}
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	want := map[uint64]int{}
	total := 0
	for g := uint32(0); g < 25; g++ {
		top, err := m.Top(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range top {
			want[r.DocID]++
			total++
		}
	}
	got := map[uint64]int{}
	n := 0
	m.EachResultDoc(func(id uint64) { got[id]++; n++ })
	if n != total || len(got) != len(want) {
		t.Fatalf("EachResultDoc reported %d refs over %d docs, want %d over %d", n, len(got), total, len(want))
	}
	for id, c := range want {
		if got[id] != c {
			t.Fatalf("doc %d reported %d times, want %d", id, got[id], c)
		}
	}
	if err := m.RemoveQuery(0); err != nil {
		t.Fatal(err)
	}
	if m.ResultCapacity() != 24*3 {
		t.Fatalf("ResultCapacity after removal = %d", m.ResultCapacity())
	}
}
