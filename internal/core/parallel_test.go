package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/workload"
)

// TestParallelismEquivalence is the intra-shard parity gate: monitors
// at Parallelism 2 and 4 — alone and composed with Shards — must hold
// bit-identical top-k lists to the sequential monitor after the same
// stream, including across forced decay rebases (λ=30 crosses the
// rebase exponent budget on the fixture's ~25-second timeline).
func TestParallelismEquivalence(t *testing.T) {
	const nq = 150
	defs := defsFromWorkload(t, workload.Connected, nq, 3, 17)
	events := testEvents(t, 256, 93)

	newMon := func(shards, par int) *Monitor {
		m, err := NewMonitor(Config{Lambda: 30, Shards: shards, Parallelism: par}, defs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	}
	ref := newMon(1, 1)
	variants := map[string]*Monitor{
		"par=2":          newMon(1, 2),
		"par=4":          newMon(1, 4),
		"shards=2 par=2": newMon(2, 2),
	}

	const chunk = 7
	rebases := 0
	lastBase := 0.0
	for i := 0; i < len(events); i += chunk {
		evs := events[i:min(i+chunk, len(events))]
		at := evs[len(evs)-1].Time
		docs := make([]corpus.Document, len(evs))
		for j, ev := range evs {
			docs[j] = ev.Doc
		}
		for _, doc := range docs {
			if _, err := ref.Process(doc, at); err != nil {
				t.Fatal(err)
			}
		}
		if b := ref.decay.Base(); b != lastBase {
			rebases++
			lastBase = b
		}
		for name, m := range variants {
			if _, err := m.ProcessBatch(docs, at); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	if rebases == 0 {
		t.Fatal("fixture never rebased; raise λ or the timeline")
	}
	if ref.Totals().Matched == 0 {
		t.Fatal("no query ever matched; fixture degenerate")
	}
	for name, m := range variants {
		if m.Totals().Matched != ref.Totals().Matched {
			t.Fatalf("%s: matched = %d, want %d", name, m.Totals().Matched, ref.Totals().Matched)
		}
		expectSameResults(t, name, ref, m, nq)
	}
}

// TestParallelismEquivalenceAcrossRebuilds stresses the intra-shard
// worker lifecycle: query churn trips shard rebuilds (which replace
// the Parallel processors and their partition workers) between
// batches, and results must still match the sequential monitor.
func TestParallelismEquivalenceAcrossRebuilds(t *testing.T) {
	const nq = 60
	defs := defsFromWorkload(t, workload.Uniform, nq, 3, 18)
	extra := defsFromWorkload(t, workload.Uniform, 20, 3, 19)
	events := testEvents(t, 200, 94)

	mk := func(shards, par int) *Monitor {
		m, err := NewMonitor(Config{Lambda: 0.01, Shards: shards, Parallelism: par, RebuildThreshold: 2}, defs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	}
	ref, par := mk(1, 1), mk(2, 3)

	const chunk = 10
	added := 0
	for i := 0; i < len(events); i += chunk {
		evs := events[i:min(i+chunk, len(events))]
		at := evs[len(evs)-1].Time
		docs := make([]corpus.Document, len(evs))
		for j, ev := range evs {
			docs[j] = ev.Doc
		}
		for _, doc := range docs {
			if _, err := ref.Process(doc, at); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := par.ProcessBatch(docs, at); err != nil {
			t.Fatal(err)
		}
		if added < len(extra) {
			for _, m := range []*Monitor{ref, par} {
				if _, err := m.AddQuery(extra[added]); err != nil {
					t.Fatal(err)
				}
			}
			added++
		}
		if i/chunk%3 == 2 {
			victim := uint32(i / chunk % nq)
			for _, m := range []*Monitor{ref, par} {
				if err := m.RemoveQuery(victim); err != nil && !errors.Is(err, ErrRemovedQuery) {
					t.Fatal(err)
				}
			}
		}
	}
	expectSameResults(t, "shards=2 par=3 + churn", ref, par, nq+added)
}

// monitorFingerprint captures the externally observable registration
// state: live query count, results of every query, pending depth.
func monitorFingerprint(t *testing.T, m *Monitor) (queries int, results map[uint32][]Result) {
	t.Helper()
	results = make(map[uint32][]Result)
	for g := range m.defs {
		top, err := m.Top(uint32(g))
		if err != nil {
			continue
		}
		results[uint32(g)] = top
	}
	return m.NumQueries(), results
}

// TestAddQueryRollback: a def that passes AddQuery's upfront checks
// but fails index construction (k beyond the index's arena bound) must
// leave the monitor exactly as it was — same query count, same
// results, and the next successful add reuses the failed global ID.
func TestAddQueryRollback(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 30, 3, 20)
	extra := defsFromWorkload(t, workload.Uniform, 4, 3, 21)
	events := testEvents(t, 60, 95)
	m, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 1 << 30}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Put results both in the shards and in the pending sidecar.
	if _, err := m.AddQuery(extra[0]); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	nBefore, resBefore := monitorFingerprint(t, m)
	pendingBefore := len(m.pendingIDs)

	bad := QueryDef{Vec: extra[1].Vec, K: math.MaxInt32}
	if _, err := m.AddQuery(bad); err == nil {
		t.Fatal("oversized k accepted")
	}

	nAfter, resAfter := monitorFingerprint(t, m)
	if nAfter != nBefore {
		t.Fatalf("query count changed by failed add: %d → %d", nBefore, nAfter)
	}
	if len(m.defs) != len(m.loc) || len(m.defs) != nBefore {
		t.Fatalf("registration arrays diverged: defs=%d loc=%d live=%d", len(m.defs), len(m.loc), nBefore)
	}
	if len(m.pendingIDs) != pendingBefore {
		t.Fatalf("pending grew by failed add: %d → %d", pendingBefore, len(m.pendingIDs))
	}
	if len(resAfter) != len(resBefore) {
		t.Fatalf("result sets changed: %d → %d queries", len(resBefore), len(resAfter))
	}
	for g, want := range resBefore {
		got := resAfter[g]
		if len(got) != len(want) {
			t.Fatalf("query %d results changed: %d → %d", g, len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d changed: %+v → %+v", g, i, want[i], got[i])
			}
		}
	}
	// The failed ID is reused, the monitor keeps working, and the new
	// query matches documents.
	id, err := m.AddQuery(extra[2])
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != nBefore {
		t.Fatalf("next add got ID %d, want %d (failed ID burned)", id, nBefore)
	}
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, ev.Time+100); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Top(id); err != nil {
		t.Fatalf("Top on post-rollback query: %v", err)
	}
}

// TestAddQueryRollbackAtRebuildThreshold exercises the second rollback
// arm: the doomed add also trips the rebuild threshold, so the pending
// sidecar has to be rebuilt around the removal.
func TestAddQueryRollbackAtRebuildThreshold(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 20, 2, 22)
	extra := defsFromWorkload(t, workload.Uniform, 3, 2, 23)
	events := testEvents(t, 40, 96)
	m, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 2}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.AddQuery(extra[0]); err != nil { // dirty = 1
		t.Fatal(err)
	}
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	pendingResults, err := m.Top(20)
	if err != nil {
		t.Fatal(err)
	}
	// dirty reaches the threshold with this add, so the failure unwinds
	// with a rebuild pending; the rollback must leave the dirty budget
	// and the sidecar (with its accumulated results) as they were.
	bad := QueryDef{Vec: extra[1].Vec, K: math.MaxInt32}
	if _, err := m.AddQuery(bad); err == nil {
		t.Fatal("oversized k accepted")
	}
	if m.dirty != 1 {
		t.Fatalf("dirty = %d after rollback, want 1", m.dirty)
	}
	after, err := m.Top(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(pendingResults) {
		t.Fatalf("pending query results changed: %d → %d", len(pendingResults), len(after))
	}
	// And a clean add still works and can still trip the rebuild.
	if _, err := m.AddQuery(extra[2]); err != nil {
		t.Fatal(err)
	}
	if m.dirty != 0 {
		t.Fatalf("dirty = %d, want 0 (rebuild should have run)", m.dirty)
	}
}

// TestConfigParallelism: defaulting and validation of the new knob.
func TestConfigParallelism(t *testing.T) {
	if err := (Config{Parallelism: -1}).Validate(); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	c := (Config{}).withDefaults()
	if c.Parallelism != 1 {
		t.Fatalf("default parallelism = %d, want 1", c.Parallelism)
	}
	defs := defsFromWorkload(t, workload.Uniform, 10, 2, 24)
	m, err := NewMonitor(Config{Parallelism: 4}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Config().Parallelism != 4 {
		t.Fatalf("monitor parallelism = %d", m.Config().Parallelism)
	}
}

// TestEachResultDocAndCapacity: the reference iteration the snippet
// pruner relies on reports exactly the stored documents of live
// queries.
func TestEachResultDocAndCapacity(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 25, 3, 25)
	events := testEvents(t, 80, 97)
	m, err := NewMonitor(Config{Lambda: 0.01}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got, want := m.ResultCapacity(), 25*3; got != want {
		t.Fatalf("ResultCapacity = %d, want %d", got, want)
	}
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	want := map[uint64]int{}
	total := 0
	for g := uint32(0); g < 25; g++ {
		top, err := m.Top(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range top {
			want[r.DocID]++
			total++
		}
	}
	got := map[uint64]int{}
	n := 0
	m.EachResultDoc(func(id uint64) { got[id]++; n++ })
	if n != total || len(got) != len(want) {
		t.Fatalf("EachResultDoc reported %d refs over %d docs, want %d over %d", n, len(got), total, len(want))
	}
	for id, c := range want {
		if got[id] != c {
			t.Fatalf("doc %d reported %d times, want %d", id, got[id], c)
		}
	}
	if err := m.RemoveQuery(0); err != nil {
		t.Fatal(err)
	}
	if m.ResultCapacity() != 24*3 {
		t.Fatalf("ResultCapacity after removal = %d", m.ResultCapacity())
	}
}
