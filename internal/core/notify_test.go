package core

import (
	"errors"
	"fmt"
	"slices"
	"testing"

	"repro/internal/corpus"
	"repro/internal/workload"
)

// topDocs captures every live query's current result as an ordered
// document-ID list. Document IDs are unique per stream, so two
// captures differ for a query exactly when its top-k changed in
// between — the oracle for change-notification exactness.
func topDocs(t *testing.T, m *Monitor) map[uint32][]uint64 {
	t.Helper()
	out := make(map[uint32][]uint64)
	for g := range m.defs {
		top, err := m.Top(uint32(g))
		if err != nil {
			if errors.Is(err, ErrRemovedQuery) {
				continue
			}
			t.Fatal(err)
		}
		ids := make([]uint64, len(top))
		for i, r := range top {
			ids[i] = r.DocID
		}
		out[uint32(g)] = ids
	}
	return out
}

// changedSet diffs two captures: queries present in after whose doc
// list differs from before's (a query missing from before counts as
// empty).
func changedSet(before, after map[uint32][]uint64) map[uint32]bool {
	want := make(map[uint32]bool)
	for g, now := range after {
		if !slices.Equal(before[g], now) {
			want[g] = true
		}
	}
	return want
}

// TestChangeNotificationExactness is the notification parity gate:
// across Shards × Parallelism layouts, with query churn tripping
// rebuilds and λ high enough to force decay rebases, the set of query
// IDs reported per batch must exactly equal the queries whose top-k
// changed — no misses, no spurious wakeups, no duplicates — and
// rebuild carries and bulk restores must not be notified at all.
func TestChangeNotificationExactness(t *testing.T) {
	layouts := []struct{ shards, par int }{
		{1, 1}, {3, 1}, {1, 3}, {2, 2},
	}
	for _, l := range layouts {
		t.Run(fmt.Sprintf("shards=%d_par=%d", l.shards, l.par), func(t *testing.T) {
			const nq = 120
			defs := defsFromWorkload(t, workload.Connected, nq, 3, 41)
			extra := defsFromWorkload(t, workload.Connected, 12, 3, 43)
			events := testEvents(t, 260, 91)

			m, err := NewMonitor(Config{
				Lambda:           30, // forces rebases on this timeline
				Shards:           l.shards,
				Parallelism:      l.par,
				RebuildThreshold: 3, // churn below trips real rebuilds
			}, defs)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			var reported []uint32
			calls := 0
			m.SetChangeHandler(func(ids []uint32) {
				calls++
				reported = append(reported[:0], ids...) // slice is reused
			})

			const chunk = 5
			added, removed := 0, uint32(0)
			totalChanged := 0
			for i := 0; i < len(events); i += chunk {
				evs := events[i:min(i+chunk, len(events))]
				at := evs[len(evs)-1].Time
				docs := make([]corpus.Document, len(evs))
				for j, ev := range evs {
					docs[j] = ev.Doc
				}

				before := topDocs(t, m)
				reported = reported[:0]
				callsBefore := calls
				if _, err := m.ProcessBatch(docs, at); err != nil {
					t.Fatal(err)
				}
				want := changedSet(before, topDocs(t, m))
				totalChanged += len(want)

				got := make(map[uint32]bool, len(reported))
				for _, g := range reported {
					if got[g] {
						t.Fatalf("batch at %d: query %d reported twice", i, g)
					}
					got[g] = true
				}
				if len(want) == 0 && calls != callsBefore {
					t.Fatalf("batch at %d: handler called for a no-change batch", i)
				}
				for g := range want {
					if !got[g] {
						t.Fatalf("batch at %d: query %d changed but was not notified", i, g)
					}
				}
				for g := range got {
					if !want[g] {
						t.Fatalf("batch at %d: query %d notified but did not change", i, g)
					}
				}

				// Churn between batches: adds land in the pending sidecar
				// and (with removals) trip rebuilds whose result carries
				// must not leak into the next batch's notification.
				if added < len(extra) {
					if _, err := m.AddQuery(extra[added]); err != nil {
						t.Fatal(err)
					}
					added++
				}
				if i/chunk%4 == 3 {
					if err := m.RemoveQuery(removed); err != nil && !errors.Is(err, ErrRemovedQuery) {
						t.Fatal(err)
					}
					removed++
				}
			}
			if totalChanged == 0 {
				t.Fatal("no query ever changed; fixture degenerate")
			}
		})
	}
}

// TestChangedQueriesPolling: without a handler, ChangedQueries drains
// the last batch's change set, and a removed query whose lingering
// index entries still admit documents is never reported.
func TestChangedQueriesPolling(t *testing.T) {
	const nq = 40
	defs := defsFromWorkload(t, workload.Connected, nq, 3, 47)
	events := testEvents(t, 120, 89)
	// A huge rebuild threshold keeps removed queries' index entries
	// lingering (and matching) for the whole run.
	m, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 1 << 30}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	half := len(events) / 2
	for _, ev := range events[:half] {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	m.ChangedQueries() // reset the record

	// Remove a query that demonstrably accumulated results.
	var victim uint32
	found := false
	for g := uint32(0); g < nq; g++ {
		if top, err := m.Top(g); err == nil && len(top) > 0 {
			victim, found = g, true
			break
		}
	}
	if !found {
		t.Fatal("no query with results; fixture degenerate")
	}
	if err := m.RemoveQuery(victim); err != nil {
		t.Fatal(err)
	}

	sawAny := false
	for _, ev := range events[half:] {
		before := topDocs(t, m)
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
		want := changedSet(before, topDocs(t, m))
		got := make(map[uint32]bool)
		for _, g := range m.ChangedQueries() {
			if g == victim {
				t.Fatalf("removed query %d reported as changed", victim)
			}
			got[g] = true
		}
		if len(got) != len(want) {
			t.Fatalf("polled change set = %v, want %v", got, want)
		}
		for g := range want {
			if !got[g] {
				t.Fatalf("query %d changed but absent from poll", g)
			}
		}
		sawAny = sawAny || len(got) > 0
	}
	if !sawAny {
		t.Fatal("second half produced no changes; fixture degenerate")
	}
}
