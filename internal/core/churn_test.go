package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/workload"
)

// TestRemoveQueryStopsMatchingImmediately is the tombstone gate: from
// the very next event after RemoveQuery, the removed query is never
// evaluated again — in the main generation, in the delta segment, and
// under every Shards × Parallelism layout — long before any rebuild
// sweeps its index entries.
func TestRemoveQueryStopsMatchingImmediately(t *testing.T) {
	defs := defsFromWorkload(t, workload.Connected, 4, 3, 61)
	events := testEvents(t, 80, 83)
	half := len(events) / 2

	layouts := []struct {
		name        string
		shards, par int
		delta       bool // register via AddQuery so the victims live in the delta
	}{
		{"main-gen", 1, 1, false},
		{"delta", 1, 1, true},
		{"shards=2 par=2 main-gen", 2, 2, false},
		{"shards=2 par=2 delta", 2, 2, true},
	}
	for _, l := range layouts {
		t.Run(l.name, func(t *testing.T) {
			// A huge threshold guarantees no rebuild ever runs: whatever
			// stops the queries from matching is the tombstone alone.
			cfg := Config{Lambda: 0.01, Shards: l.shards, Parallelism: l.par, RebuildThreshold: 1 << 30}
			initial := defs
			if l.delta {
				initial = nil
			}
			m, err := NewMonitor(cfg, initial)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if l.delta {
				for _, d := range defs {
					if _, err := m.AddQuery(d); err != nil {
						t.Fatal(err)
					}
				}
			}
			evaluated := 0
			for _, ev := range events[:half] {
				st, err := m.Process(ev.Doc, ev.Time)
				if err != nil {
					t.Fatal(err)
				}
				evaluated += st.Evaluated
			}
			if evaluated == 0 {
				t.Fatal("warm-up evaluated nothing — fixture too weak")
			}
			for g := uint32(0); g < uint32(len(defs)); g++ {
				if err := m.RemoveQuery(g); err != nil {
					t.Fatal(err)
				}
			}
			for _, ev := range events[half:] {
				st, err := m.Process(ev.Doc, ev.Time)
				if err != nil {
					t.Fatal(err)
				}
				if st.Evaluated != 0 || st.Matched != 0 {
					t.Fatalf("removed queries still matching: evaluated=%d matched=%d", st.Evaluated, st.Matched)
				}
				if ids := m.ChangedQueries(); len(ids) != 0 {
					t.Fatalf("removed queries still notifying: %v", ids)
				}
			}
			if gs := m.GenStats(); gs.Tombstones != len(defs) || gs.Builds != 0 {
				t.Fatalf("gen stats after removals: %+v", gs)
			}
		})
	}
}

// TestAddQueryAmortized is the O(pending)-per-add regression gate: N
// registrations must cost O(total query size), not O(N²). The
// structural half of the assertion is exact (the delta holds precisely
// the appended postings, so no rebuild ran); the timing half compares
// the second half of the adds against the first, which under the old
// rebuild-per-add behaviour is ~3× slower and under amortized appends
// is flat.
func TestAddQueryAmortized(t *testing.T) {
	const n = 40000
	defs := defsFromWorkload(t, workload.Uniform, n, 3, 71)
	m, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 1 << 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	addAll := func(ds []QueryDef) time.Duration {
		t0 := time.Now()
		for _, d := range ds {
			if _, err := m.AddQuery(d); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(t0)
	}
	first := addAll(defs[:n/2])
	second := addAll(defs[n/2:])

	postings := 0
	for _, d := range defs {
		postings += len(d.Vec)
	}
	gs := m.GenStats()
	if gs.DeltaQueries != n || gs.DeltaPostings != postings {
		t.Fatalf("delta = %d queries / %d postings, want %d / %d",
			gs.DeltaQueries, gs.DeltaPostings, n, postings)
	}
	if gs.Builds != 0 || gs.Building {
		t.Fatalf("adds triggered a rebuild below the threshold: %+v", gs)
	}
	// Generous bound: quadratic behaviour puts the ratio near 3 (and
	// the absolute time in minutes); amortized appends are flat modulo
	// scheduler noise.
	if total := first + second; total > 30*time.Second {
		t.Fatalf("%d adds took %v — not amortized", n, total)
	}
	if first > 50*time.Millisecond && second > 5*first/2 {
		t.Fatalf("add cost grows with pending size: first half %v, second half %v", first, second)
	}
}

// TestBackgroundBuildNonBlocking forces a generation build over ≥50k
// queries and proves the event path never waits on it: a test hook
// holds the finished build un-deliverable while events flow against
// the old generation, then the build installs atomically and the
// results are bit-identical to a monitor that never rebuilt.
func TestBackgroundBuildNonBlocking(t *testing.T) {
	const nq = 50001
	defs := defsFromWorkload(t, workload.Uniform, nq, 3, 73)
	extra := defsFromWorkload(t, workload.Uniform, 6, 3, 74)
	events := testEvents(t, 30, 85)

	m, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 4}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ref, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 1 << 30}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	release := make(chan struct{})
	m.buildHook = func() { <-release }

	// Spend the dirty budget: the 4th mutation kicks the background
	// build, which the hook now holds in flight.
	for _, d := range extra[:4] {
		for _, mon := range []*Monitor{m, ref} {
			if _, err := mon.AddQuery(d); err != nil {
				t.Fatal(err)
			}
		}
	}
	if gs := m.GenStats(); !gs.Building {
		t.Fatalf("no build in flight after spending the dirty budget: %+v", gs)
	}

	// Every event here completes while the build is provably still in
	// flight (the hook is blocked until we release it below). If the
	// event path waited on the build, this loop would deadlock.
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	if gs := m.GenStats(); !gs.Building || gs.Generation != 0 {
		t.Fatalf("build should still be in flight after %d events: %+v", len(events), gs)
	}

	// Release and install: the swap is atomic and exact.
	close(release)
	m.WaitRebuild()
	gs := m.GenStats()
	if gs.Generation != 1 || gs.Builds != 1 || gs.Building || gs.DeltaQueries != 0 {
		t.Fatalf("install did not complete cleanly: %+v", gs)
	}
	expectSameResults(t, "post-install vs never-rebuilt", ref, m, nq+4)

	// And the installed generation keeps serving exactly.
	at := events[len(events)-1].Time + 1
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, at); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Process(ev.Doc, at); err != nil {
			t.Fatal(err)
		}
		at += 0.01
	}
	expectSameResults(t, "post-install traffic", ref, m, nq+4)
}

// TestFailedBuildBacksOff: a failed generation build must leave the
// old generation serving, return the claimed churn to the dirty
// budget (and to Layout, so snapshots don't lose it), surface the
// error in GenStats, and push the next attempt out by a fresh-churn
// backoff instead of re-kicking the doomed build on every mutation.
func TestFailedBuildBacksOff(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 10, 2, 75)
	extra := defsFromWorkload(t, workload.Uniform, 4, 2, 76)
	m, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 6}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Simulate a build that was kicked with 5 claimed mutations and
	// died; 1 more mutation arrived while it ran.
	m.dirty, m.building, m.kickDirty = 1, true, 5
	m.install(&genBuild{err: errors.New("boom")})

	gs := m.GenStats()
	if gs.FailedBuilds != 1 || gs.LastBuildError != "boom" || gs.Building {
		t.Fatalf("failure not recorded: %+v", gs)
	}
	if m.dirty != 6 {
		t.Fatalf("claimed churn lost: dirty = %d, want 6", m.dirty)
	}
	if m.retryAt <= m.dirty {
		t.Fatalf("no backoff: retryAt = %d with dirty %d", m.retryAt, m.dirty)
	}
	// Over the threshold but under the backoff: no re-kick.
	m.maybeKick()
	if m.building {
		t.Fatal("re-kicked inside the backoff window")
	}
	// Fresh churn reaches the backoff point: the retry runs, succeeds,
	// and resets the failure state.
	for i := 0; !m.building && m.generation == 0; i++ {
		if i >= len(extra) {
			t.Fatalf("retry never kicked: dirty=%d retryAt=%d", m.dirty, m.retryAt)
		}
		if _, err := m.AddQuery(extra[i]); err != nil {
			t.Fatal(err)
		}
	}
	m.WaitRebuild()
	gs = m.GenStats()
	if gs.Generation != 1 || gs.LastBuildError != "" || m.retryAt != 0 {
		t.Fatalf("successful retry did not reset failure state: %+v retryAt=%d", gs, m.retryAt)
	}
}

// TestLayoutCountsInFlightBuild: churn claimed by a build that is
// still in flight must count as unfolded in Layout — the build dies
// with the process, so a snapshot that dropped it would delay the
// restored monitor's rebuild cadence by up to a full threshold.
func TestLayoutCountsInFlightBuild(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 8, 2, 78)
	m, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 1 << 30}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.dirty, m.building, m.kickDirty = 2, true, 7
	if got := m.Layout().Dirty; got != 9 {
		t.Fatalf("Layout().Dirty = %d, want 9 (2 new + 7 claimed by the in-flight build)", got)
	}
	m.building, m.kickDirty = false, 0
}

// TestChurnMatchesFreshBuild is the generational parity gate: a
// monitor churning through adds, removals, background generation
// swaps, forced repartitions and batched ingestion must stay
// bit-identical to a monitor that replays the same timeline without
// ever rebuilding — across every layout, in both rebuild modes.
func TestChurnMatchesFreshBuild(t *testing.T) {
	const nq = 90
	defs := defsFromWorkload(t, workload.Hot, nq, 3, 62)
	extra := defsFromWorkload(t, workload.Connected, 30, 3, 63)
	events := testEvents(t, 240, 84)

	layouts := []struct {
		name        string
		shards, par int
		mode        RebuildMode
	}{
		{"background", 1, 1, RebuildBackground},
		{"sync", 1, 1, RebuildSync},
		{"shards=2 par=3 background", 2, 3, RebuildBackground},
		{"par=4 mass background", 1, 4, RebuildBackground},
	}
	for _, l := range layouts {
		t.Run(l.name, func(t *testing.T) {
			ref, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 1 << 30}, defs)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			m, err := NewMonitor(Config{
				Lambda: 0.01, Shards: l.shards, Parallelism: l.par,
				RebuildThreshold: 5, Rebuild: l.mode, RepartitionWindow: 16,
			}, defs)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			const chunk = 8
			added, removed := 0, 0
			for i := 0; i < len(events); i += chunk {
				evs := events[i:min(i+chunk, len(events))]
				at := evs[len(evs)-1].Time
				docs := make([]corpus.Document, len(evs))
				for j, ev := range evs {
					docs[j] = ev.Doc
				}
				for _, doc := range docs {
					if _, err := ref.Process(doc, at); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := m.ProcessBatch(docs, at); err != nil {
					t.Fatal(err)
				}
				step := i / chunk
				if added < len(extra) {
					for _, mon := range []*Monitor{ref, m} {
						if _, err := mon.AddQuery(extra[added]); err != nil {
							t.Fatal(err)
						}
					}
					added++
				}
				if step%2 == 1 {
					victim := uint32((step * 7) % (nq + added))
					for _, mon := range []*Monitor{ref, m} {
						if err := mon.RemoveQuery(victim); err != nil && !errors.Is(err, ErrRemovedQuery) {
							t.Fatal(err)
						}
					}
					removed++
				}
				switch step % 9 {
				case 4:
					m.WaitRebuild() // deterministic install points...
				case 7:
					if err := m.Repartition(); err != nil {
						t.Fatal(err) // ...interleaved with forced boundary moves
					}
				}
			}
			m.WaitRebuild()
			expectSameResults(t, l.name, ref, m, nq+added)
			if gs := m.GenStats(); gs.Builds == 0 {
				t.Fatalf("timeline tripped no generation builds: %+v", gs)
			}
		})
	}
}
