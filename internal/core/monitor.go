package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/algo"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/topk"
)

// Errors returned by Monitor operations.
var (
	// ErrUnknownQuery reports a query ID that was never registered.
	ErrUnknownQuery = errors.New("core: unknown query ID")
	// ErrRemovedQuery reports an operation on a removed query.
	ErrRemovedQuery = errors.New("core: query was removed")
	// ErrTimeRegression reports a stream event older than the last.
	ErrTimeRegression = errors.New("core: event time precedes stream time")
	// ErrClosed reports an operation on a closed monitor.
	ErrClosed = errors.New("core: monitor is closed")
)

// QueryDef describes one continuous query at registration time.
type QueryDef struct {
	// Vec is the unit-normalized preference vector.
	Vec textproc.Vector
	// K is the result size (≥ 1).
	K int
}

// Result is one user-visible result entry.
type Result struct {
	DocID uint64
	// Score is the decayed (present-time) score at the monitor's
	// current stream time.
	Score float64
}

// EventStats aggregates per-event work across shards.
type EventStats struct {
	Evaluated  int
	Matched    int
	Iterations int
	Postings   int
	JumpAlls   int
}

func (s *EventStats) add(m algo.EventMetrics) {
	(*algo.EventMetrics)(s).Add(m)
}

// location maps a global query ID to where it currently lives.
type location struct {
	shard   int32 // -1 → pending sidecar
	local   uint32
	removed bool
}

const pendingShard = -1

// shardJob is one unit of work handed to a shard worker: apply the
// rebase factors in order, then match every document at the shared
// inflation factor, accumulating metrics into out. The sender waits on
// wg, so the job's slices may be reused once the batch returns.
type shardJob struct {
	rebases []float64
	docs    []corpus.Document
	factor  float64
	out     *algo.EventMetrics
	wg      *sync.WaitGroup
}

// shard is one independent partition of the query set. When the
// monitor runs with more than one shard, each shard owns a persistent
// worker goroutine fed over work; jobs are processed strictly in send
// order, so per-shard results are identical to sequential processing.
type shard struct {
	proc      algo.Processor
	globalIDs []uint32 // local → global
	work      chan shardJob
	done      chan struct{} // closed when the worker exits
}

// startWorker launches the shard's persistent worker goroutine.
func (sh *shard) startWorker() {
	sh.work = make(chan shardJob)
	sh.done = make(chan struct{})
	go func() {
		defer close(sh.done)
		for job := range sh.work {
			*job.out = matchAll(sh.proc, job.rebases, job.docs, job.factor)
			job.wg.Done()
		}
	}()
}

// stopWorker shuts the shard's worker down and waits for it to exit
// (a shard that never started one — single-shard monitors — skips
// that), then releases any intra-shard workers owned by the shard's
// processor. Results stay readable afterwards.
func (sh *shard) stopWorker() {
	if sh.work != nil {
		close(sh.work)
		<-sh.done
		sh.work = nil
	}
	if c, ok := sh.proc.(interface{ Close() }); ok {
		c.Close()
	}
}

// matchAll applies the rebase factors in order, then matches every
// document at the shared inflation factor e, in slice order.
func matchAll(proc algo.Processor, rebases []float64, docs []corpus.Document, e float64) algo.EventMetrics {
	for _, f := range rebases {
		proc.Rebase(f)
	}
	var m algo.EventMetrics
	for _, doc := range docs {
		m.Add(proc.ProcessEvent(doc, e))
	}
	return m
}

// Monitor is the CTQD processing server. It is not safe for concurrent
// mutation; Process/ProcessBatch and AddQuery/RemoveQuery must be
// externally serialized (result reads between events are safe).
//
// Multi-shard monitors own one persistent worker goroutine per shard,
// started at construction and on every rebuild; with
// Config.Parallelism > 1 each shard's processor additionally owns
// Parallelism-1 intra-shard partition workers that split every event's
// matching across the shard's query range. Call Close when done to
// shut them all down.
type Monitor struct {
	cfg   Config
	decay *stream.Decay

	defs   []QueryDef // global ID → definition (retained for rebuilds)
	loc    []location
	shards []*shard

	// pending holds recently added queries, matched exhaustively until
	// the next rebuild folds them into the shard indexes.
	pendingIDs  []uint32
	pendingProc algo.Processor
	dirty       int // adds+removals since last rebuild

	now    float64
	events uint64
	totals EventStats
	closed bool

	// sinceCheck counts stream events since the last partition-balance
	// check (see maybeRepartition).
	sinceCheck int

	// onChange, when set, is invoked synchronously at the end of every
	// Process/ProcessBatch call whose batch changed at least one
	// query's top-k (see SetChangeHandler).
	onChange func(ids []uint32)

	// Per-call scratch, reused across events to keep the hot path
	// allocation-free (safe: mutation is externally serialized and
	// every batch joins its workers before returning).
	oneDoc  [1]corpus.Document
	rebases []float64
	outs    []algo.EventMetrics
	changed []uint32
}

// NewMonitor builds a monitor over an initial query set. Queries get
// dense global IDs in registration order.
func NewMonitor(cfg Config, defs []QueryDef) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	decay, err := stream.NewDecay(cfg.Lambda)
	if err != nil {
		return nil, err
	}
	m := &Monitor{cfg: cfg, decay: decay}
	m.defs = append(m.defs, defs...)
	m.loc = make([]location, len(defs))
	if err := m.rebuild(nil); err != nil {
		return nil, err
	}
	return m, nil
}

// Config returns the monitor's effective configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Now returns the current stream time.
func (m *Monitor) Now() float64 { return m.now }

// Events returns the number of processed stream events.
func (m *Monitor) Events() uint64 { return m.events }

// Totals returns cumulative work statistics.
func (m *Monitor) Totals() EventStats { return m.totals }

// SetCounters overwrites the cumulative event and work counters.
// Snapshot restore uses it so a resumed monitor reports lifetime
// statistics rather than counting from zero.
func (m *Monitor) SetCounters(events uint64, totals EventStats) {
	m.events = events
	m.totals = totals
}

// NumQueries returns the number of live (non-removed) queries.
func (m *Monitor) NumQueries() int {
	n := 0
	for _, l := range m.loc {
		if !l.removed {
			n++
		}
	}
	return n
}

// buildShard constructs one shard's index and processor from global
// query IDs. With Parallelism > 1 the shard gets an intra-shard
// parallel matcher: its query range is partitioned across a worker set
// that matches every event concurrently (algo.Parallel).
func (m *Monitor) buildShard(ids []uint32) (*shard, error) {
	vecs := make([]textproc.Vector, len(ids))
	ks := make([]int, len(ids))
	for i, g := range ids {
		vecs[i] = m.defs[g].Vec
		ks[i] = m.defs[g].K
	}
	if m.cfg.Parallelism > 1 {
		// Boundary policy is the partitioner's: the plan equalizes the
		// shard's estimated posting mass (or query count, per strategy)
		// before any sub-index exists, so every rebuild replans from
		// the current query set.
		plan := algo.NewPlan(vecs, m.cfg.Parallelism, m.cfg.Partition)
		proc, err := algo.NewParallel(vecs, ks, plan, func(ix *index.Index) (algo.Processor, error) {
			return NewProcessor(m.cfg.Algorithm, m.cfg.Bound, ix)
		})
		if err != nil {
			return nil, err
		}
		return &shard{proc: proc, globalIDs: ids}, nil
	}
	ix, err := index.Build(vecs, ks)
	if err != nil {
		return nil, err
	}
	proc, err := NewProcessor(m.cfg.Algorithm, m.cfg.Bound, ix)
	if err != nil {
		return nil, err
	}
	return &shard{proc: proc, globalIDs: ids}, nil
}

// rebuild reconstructs all shard indexes from the live query set,
// carrying over existing results. carried maps global ID → inflated
// result entries to restore (nil on first build). Old shard workers
// are drained before their processors are discarded; fresh workers are
// started for the new shards (multi-shard monitors only).
func (m *Monitor) rebuild(carried map[uint32][]topk.ScoredDoc) error {
	parts := make([][]uint32, m.cfg.Shards)
	for g := range m.defs {
		if m.loc[g].removed {
			continue
		}
		s := g % m.cfg.Shards
		parts[s] = append(parts[s], uint32(g))
	}
	shards := make([]*shard, m.cfg.Shards)
	for s, ids := range parts {
		sh, err := m.buildShard(ids)
		if err != nil {
			// Release the shards already built; the monitor's own state
			// (locations, old shards, old workers) is untouched, so a
			// failed rebuild leaves it fully operational.
			for _, b := range shards {
				if b != nil {
					b.stopWorker()
				}
			}
			return err
		}
		shards[s] = sh
	}
	// All shards built: only now mutate monitor state.
	for s, ids := range parts {
		for local, g := range ids {
			m.loc[g] = location{shard: int32(s), local: uint32(local)}
		}
	}
	m.stopWorkers()
	m.shards = shards
	if m.cfg.Shards > 1 {
		for _, sh := range m.shards {
			sh.startWorker()
		}
	}
	m.pendingIDs = nil
	m.pendingProc = nil
	m.dirty = 0
	if carried != nil {
		for g, docs := range carried {
			if m.loc[g].removed {
				continue
			}
			m.restore(g, docs)
		}
	}
	return nil
}

// restore bulk-loads inflated results into query g's store.
func (m *Monitor) restore(g uint32, docs []topk.ScoredDoc) {
	l := m.loc[g]
	proc := m.procFor(l)
	for _, d := range docs {
		proc.Results().Add(uint32(l.local), d.DocID, d.Score)
	}
	proc.SyncThreshold(l.local)
}

// procFor returns the processor responsible for a location.
func (m *Monitor) procFor(l location) algo.Processor {
	if l.shard == pendingShard {
		return m.pendingProc
	}
	return m.shards[l.shard].proc
}

// dump collects every live query's inflated results.
func (m *Monitor) dump() map[uint32][]topk.ScoredDoc {
	out := make(map[uint32][]topk.ScoredDoc, len(m.defs))
	for g := range m.defs {
		l := m.loc[g]
		if l.removed {
			continue
		}
		if docs := m.procFor(l).Results().Top(l.local); len(docs) > 0 {
			out[uint32(g)] = docs
		}
	}
	return out
}

// AddQuery registers a query while the stream runs. It lands in the
// pending sidecar (matched exhaustively, which is exact) and is folded
// into the main indexes at the next rebuild.
func (m *Monitor) AddQuery(def QueryDef) (uint32, error) {
	if m.closed {
		return 0, ErrClosed
	}
	if err := def.Vec.Validate(); err != nil {
		return 0, err
	}
	if len(def.Vec) == 0 {
		return 0, fmt.Errorf("core: empty query vector")
	}
	if def.K < 1 {
		return 0, fmt.Errorf("core: k must be ≥ 1, got %d", def.K)
	}
	g := uint32(len(m.defs))
	m.defs = append(m.defs, def)
	m.loc = append(m.loc, location{shard: pendingShard})
	m.pendingIDs = append(m.pendingIDs, g)
	m.dirty++
	if err := m.rebuildPending(); err != nil {
		m.rollbackAdd(false)
		return 0, err
	}
	if err := m.maybeRebuild(); err != nil {
		m.rollbackAdd(true)
		return 0, err
	}
	return g, nil
}

// rollbackAdd undoes the registration of the most recently appended
// query after a failed rebuild, so a failed AddQuery leaves the
// monitor exactly as it was (same query set, same results, and the
// next add reuses the same global ID). resync marks that the pending
// sidecar was already rebuilt around the doomed query and must be
// rebuilt once more without it — that rebuild cannot fail, since the
// identical sidecar existed before the add.
func (m *Monitor) rollbackAdd(resync bool) {
	m.defs = m.defs[:len(m.defs)-1]
	m.loc = m.loc[:len(m.loc)-1]
	m.pendingIDs = m.pendingIDs[:len(m.pendingIDs)-1]
	m.dirty--
	if resync {
		_ = m.rebuildPending()
	}
}

// rebuildPending reconstructs the pending sidecar, carrying results of
// queries already pending.
func (m *Monitor) rebuildPending() error {
	carried := make(map[uint32][]topk.ScoredDoc)
	if m.pendingProc != nil {
		// The sidecar can briefly hold more queries than pendingIDs
		// lists (an add being rolled back); clamp to the IDs we track.
		for local, g := range m.pendingIDs[:min(len(m.pendingIDs), m.pendingProc.Results().NumQueries())] {
			if docs := m.pendingProc.Results().Top(uint32(local)); len(docs) > 0 {
				carried[g] = docs
			}
		}
	}
	vecs := make([]textproc.Vector, len(m.pendingIDs))
	ks := make([]int, len(m.pendingIDs))
	for i, g := range m.pendingIDs {
		vecs[i] = m.defs[g].Vec
		ks[i] = m.defs[g].K
	}
	ix, err := index.Build(vecs, ks)
	if err != nil {
		return err
	}
	// The sidecar is exhaustive: tiny query count, zero bound
	// maintenance, exactness for free.
	proc, err := algo.NewExhaustive(ix)
	if err != nil {
		return err
	}
	m.pendingProc = proc
	for local, g := range m.pendingIDs {
		m.loc[g] = location{shard: pendingShard, local: uint32(local)}
		if docs, ok := carried[g]; ok {
			m.restore(g, docs)
		}
	}
	return nil
}

// RemoveQuery unregisters a query. Its index entries linger (correct,
// merely unprofitable) until the next rebuild sweeps them out.
func (m *Monitor) RemoveQuery(g uint32) error {
	if m.closed {
		return ErrClosed
	}
	if int(g) >= len(m.loc) {
		return ErrUnknownQuery
	}
	if m.loc[g].removed {
		return ErrRemovedQuery
	}
	m.loc[g].removed = true
	m.dirty++
	return m.maybeRebuild()
}

// maybeRebuild folds pending changes into the main indexes once the
// dirty budget is spent.
func (m *Monitor) maybeRebuild() error {
	if m.dirty < m.cfg.RebuildThreshold {
		return nil
	}
	return m.rebuild(m.dump())
}

// stopWorkers drains and joins every shard worker.
func (m *Monitor) stopWorkers() {
	for _, sh := range m.shards {
		sh.stopWorker()
	}
}

// Close shuts down the monitor's shard workers. The monitor stops
// accepting events and query mutations; result reads stay valid.
// Close is idempotent.
func (m *Monitor) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	m.stopWorkers()
	return nil
}

// SetChangeHandler registers fn to be called at the end of every
// Process/ProcessBatch whose batch changed at least one query's top-k.
// ids holds the global IDs of exactly the queries whose result set
// changed — no misses, no spurious entries, each ID at most once, in
// unspecified order — regardless of the Shards × Parallelism layout.
// The slice is reused across calls: fn must not retain it. fn runs
// synchronously on the caller's goroutine while the monitor is
// mid-mutation, so it must not call back into the monitor. A nil fn
// disables notification.
func (m *Monitor) SetChangeHandler(fn func(ids []uint32)) {
	m.onChange = fn
}

// discardChanges clears every processor's change record. Called at the
// start of each batch so that result mutations performed between
// stream events — bulk restores, rebuild carries, snapshot loads —
// never surface as stream-event change notifications.
func (m *Monitor) discardChanges() {
	for _, sh := range m.shards {
		sh.proc.DrainChanged(nil)
	}
	if m.pendingProc != nil {
		m.pendingProc.DrainChanged(nil)
	}
}

// collectChanges gathers the global IDs of every query whose top-k
// changed during the batch just matched, translating shard- and
// sidecar-local IDs. Each shard's record covers a disjoint global ID
// subset and the start-of-batch discard emptied every record, so the
// concatenation is exact and duplicate-free.
func (m *Monitor) collectChanges() []uint32 {
	m.changed = m.changed[:0]
	keep := func(g uint32) {
		// A removed query's index entries linger until the next rebuild
		// and may still admit documents; those phantom updates are
		// invisible through Top and must not be notified either.
		if !m.loc[g].removed {
			m.changed = append(m.changed, g)
		}
	}
	for _, sh := range m.shards {
		ids := sh.globalIDs
		sh.proc.DrainChanged(func(local uint32) { keep(ids[local]) })
	}
	if m.pendingProc != nil {
		m.pendingProc.DrainChanged(func(local uint32) { keep(m.pendingIDs[local]) })
	}
	return m.changed
}

// ValidateIngest reports whether the monitor would accept an event at
// time t, without mutating any state. Callers with their own
// per-document side effects (e.g. the text engine's idf bookkeeping)
// use it to reject a doomed publication before paying them.
func (m *Monitor) ValidateIngest(t float64) error {
	if m.closed {
		return ErrClosed
	}
	if t < m.now {
		return fmt.Errorf("%w: %v < %v", ErrTimeRegression, t, m.now)
	}
	return nil
}

// Process feeds one stream event. Event times must be non-decreasing.
func (m *Monitor) Process(doc corpus.Document, t float64) (EventStats, error) {
	m.oneDoc[0] = doc
	return m.ProcessBatch(m.oneDoc[:], t)
}

// ProcessBatch feeds a batch of stream events that share the arrival
// time t (non-decreasing across calls). The epoch/rebase bookkeeping
// and the per-shard worker rendezvous are paid once per batch instead
// of once per document; within each shard documents are matched
// strictly in slice order, so results are identical to feeding the
// documents one at a time through Process at the same t. Returns the
// aggregate work statistics of the whole batch.
func (m *Monitor) ProcessBatch(docs []corpus.Document, t float64) (EventStats, error) {
	if err := m.ValidateIngest(t); err != nil {
		return EventStats{}, err
	}
	if len(docs) == 0 {
		return EventStats{}, nil
	}
	// Changes recorded outside the event path (bulk restores, rebuild
	// carries) are not stream-event notifications: drop them so the
	// post-batch collection reports exactly this batch's changes.
	m.discardChanges()
	m.rebases = m.rebases[:0]
	for m.decay.NeedsRebase(t) {
		m.rebases = append(m.rebases, m.decay.RebaseTo(t))
	}
	e := m.decay.Factor(t)

	// The pending sidecar runs on the caller's goroutine — in the
	// multi-shard case concurrently with the shard workers.
	pending := func() algo.EventMetrics {
		if m.pendingProc == nil {
			return algo.EventMetrics{}
		}
		return matchAll(m.pendingProc, m.rebases, docs, e)
	}

	var st EventStats
	if len(m.shards) == 1 || m.shards[0].work == nil {
		// Single shard (or a monitor whose workers never started):
		// inline, no synchronization cost.
		for _, sh := range m.shards {
			st.add(matchAll(sh.proc, m.rebases, docs, e))
		}
		st.add(pending())
	} else {
		if cap(m.outs) < len(m.shards) {
			m.outs = make([]algo.EventMetrics, len(m.shards))
		}
		outs := m.outs[:len(m.shards)]
		var wg sync.WaitGroup
		wg.Add(len(m.shards))
		for i, sh := range m.shards {
			sh.work <- shardJob{
				rebases: m.rebases,
				docs:    docs,
				factor:  e,
				out:     &outs[i],
				wg:      &wg,
			}
		}
		pm := pending()
		wg.Wait()
		for _, r := range outs {
			st.add(r)
		}
		st.add(pm)
	}
	m.now = t
	m.events += uint64(len(docs))
	m.totals.add(algo.EventMetrics(st))
	if m.onChange != nil {
		if ids := m.collectChanges(); len(ids) > 0 {
			m.onChange(ids)
		}
	}
	m.maybeRepartition(len(docs), len(m.rebases) > 0)
	return st, nil
}

// maybeRepartition closes a partition-balance observation window once
// RepartitionWindow events have passed since the last one — or
// immediately when the batch crossed a decay rebase, a natural
// bookkeeping epoch — and lets each shard's mass partitioner move its
// boundaries after sustained imbalance. Runs at the end of a batch,
// when no change record is mid-collection, so a repartition's change
// carry-over stays exact. Errors leave the old (correct, merely
// unbalanced) layout in place.
func (m *Monitor) maybeRepartition(events int, rebased bool) {
	if m.cfg.Parallelism <= 1 {
		return
	}
	m.sinceCheck += events
	if m.sinceCheck < m.cfg.RepartitionWindow && !rebased {
		return
	}
	m.sinceCheck = 0
	for _, sh := range m.shards {
		if par, ok := sh.proc.(*algo.Parallel); ok {
			_, _ = par.CheckBalance()
		}
	}
}

// Repartition immediately replans every shard's intra-shard partition
// boundaries from the observed per-partition work (mass strategy
// only; shards planned by count, or without intra-shard parallelism,
// are untouched). The monitor also repartitions automatically — every
// rebuild replans from the current query set, and sustained imbalance
// between rebuilds moves boundaries via maybeRepartition — so this
// exists for operators and tests that want a repartition now. Must be
// externally serialized with Process/ProcessBatch, like any mutation.
func (m *Monitor) Repartition() error {
	if m.closed {
		return ErrClosed
	}
	for s, sh := range m.shards {
		if par, ok := sh.proc.(*algo.Parallel); ok {
			if _, err := par.Repartition(); err != nil {
				return fmt.Errorf("core: repartition shard %d: %w", s, err)
			}
		}
	}
	return nil
}

// PartitionStat surfaces one intra-shard partition's occupancy: its
// share of the shard's queries and estimated posting mass, plus the
// matching work observed since the partition was last (re)created.
type PartitionStat struct {
	// Shard is the owning shard's index, or -1 for the pending
	// sidecar (recently added queries matched exhaustively until the
	// next rebuild folds them into the shards).
	Shard int
	// Queries is the number of queries in the partition's range.
	Queries int
	// Cost is the partition's share of the current cost estimate (0
	// for shards without intra-shard parallelism). It starts as the
	// partition's posting mass; adaptive repartitions rescale it by
	// observed work density while conserving the shard total, so
	// compare shares within a snapshot, not absolute values across
	// time.
	Cost float64
	// BusyMS is cumulative matching wall time in milliseconds.
	BusyMS float64
	// Evaluated is the cumulative count of exactly-scored queries.
	Evaluated uint64
}

// PartitionStats reports every shard's intra-shard partition
// occupancy; a shard running without intra-shard parallelism
// contributes a single entry covering its whole query range. Safe
// between events, like result reads.
func (m *Monitor) PartitionStats() []PartitionStat {
	var out []PartitionStat
	for s, sh := range m.shards {
		par, ok := sh.proc.(*algo.Parallel)
		if !ok {
			out = append(out, PartitionStat{Shard: s, Queries: len(sh.globalIDs)})
			continue
		}
		for _, st := range par.Occupancy() {
			out = append(out, PartitionStat{
				Shard:     s,
				Queries:   int(st.Hi - st.Lo),
				Cost:      st.Cost,
				BusyMS:    float64(st.Busy) / float64(time.Millisecond),
				Evaluated: st.Evaluated,
			})
		}
	}
	pending := 0
	for _, g := range m.pendingIDs {
		if !m.loc[g].removed {
			pending++
		}
	}
	if pending > 0 {
		out = append(out, PartitionStat{Shard: -1, Queries: pending})
	}
	return out
}

// ChangedQueries drains and returns the global IDs of queries whose
// top-k changed since the last drain (the last batch, when called
// right after Process/ProcessBatch with no change handler set). The
// returned slice is reused by the next batch. Exposed for tests and
// callers that poll instead of registering a handler.
func (m *Monitor) ChangedQueries() []uint32 {
	return m.collectChanges()
}

// Top returns query g's current results with present-time (decayed)
// scores, best first.
func (m *Monitor) Top(g uint32) ([]Result, error) {
	if int(g) >= len(m.loc) {
		return nil, ErrUnknownQuery
	}
	l := m.loc[g]
	if l.removed {
		return nil, ErrRemovedQuery
	}
	docs := m.procFor(l).Results().Top(l.local)
	out := make([]Result, len(docs))
	for i, d := range docs {
		out[i] = Result{DocID: d.DocID, Score: m.decay.PresentScore(d.Score, m.now)}
	}
	return out, nil
}

// TopInflated returns query g's results in internal inflated score
// units (used by snapshots and tests that compare across algorithms).
func (m *Monitor) TopInflated(g uint32) ([]topk.ScoredDoc, error) {
	if int(g) >= len(m.loc) {
		return nil, ErrUnknownQuery
	}
	l := m.loc[g]
	if l.removed {
		return nil, ErrRemovedQuery
	}
	return m.procFor(l).Results().Top(l.local), nil
}

// EachResultDoc calls fn for every document ID currently held in any
// live query's result set, in unspecified order. A document referenced
// by several queries is reported once per reference. The engine's
// snippet retention uses it to find which documents are still visible.
func (m *Monitor) EachResultDoc(fn func(docID uint64)) {
	for g := range m.defs {
		l := m.loc[g]
		if l.removed {
			continue
		}
		for _, id := range m.procFor(l).Results().DocIDs(l.local) {
			fn(id)
		}
	}
}

// ResultCapacity returns the sum of live queries' k: the maximum
// number of result entries (and so distinct referenced documents) the
// monitor can expose at once.
func (m *Monitor) ResultCapacity() int {
	n := 0
	for g, d := range m.defs {
		if !m.loc[g].removed {
			n += d.K
		}
	}
	return n
}

// Defs returns the live query definitions keyed by global ID (for
// snapshotting).
func (m *Monitor) Defs() map[uint32]QueryDef {
	out := make(map[uint32]QueryDef, len(m.defs))
	for g, d := range m.defs {
		if !m.loc[g].removed {
			out[uint32(g)] = d
		}
	}
	return out
}

// AllDefs returns every registered query definition in global ID
// order — including removed queries — plus the parallel removed
// flags. Snapshots use it to persist the full ID space, so client
// held handles survive a save/restore even after unregistrations.
func (m *Monitor) AllDefs() ([]QueryDef, []bool) {
	defs := append([]QueryDef(nil), m.defs...)
	removed := make([]bool, len(m.loc))
	for g, l := range m.loc {
		removed[g] = l.removed
	}
	return defs, removed
}

// DumpState exposes the monitor's dynamic state for persistence:
// stream time, decay base and every live query's inflated results.
func (m *Monitor) DumpState() (now, decayBase float64, results map[uint32][]topk.ScoredDoc) {
	return m.now, m.decay.Base(), m.dump()
}

// RestoreState reloads state produced by DumpState. It must be called
// on a freshly built monitor with the same query definitions.
func (m *Monitor) RestoreState(now, decayBase float64, results map[uint32][]topk.ScoredDoc) error {
	if decayBase > now {
		return fmt.Errorf("core: decay base %v after stream time %v", decayBase, now)
	}
	m.now = now
	m.decay.SetBase(decayBase)
	for g, docs := range results {
		if int(g) >= len(m.loc) {
			return fmt.Errorf("%w: %d in snapshot", ErrUnknownQuery, g)
		}
		if m.loc[g].removed {
			continue
		}
		m.restore(g, docs)
	}
	return nil
}
