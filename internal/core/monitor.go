package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/algo"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/topk"
)

// Errors returned by Monitor operations.
var (
	// ErrUnknownQuery reports a query ID that was never registered.
	ErrUnknownQuery = errors.New("core: unknown query ID")
	// ErrRemovedQuery reports an operation on a removed query.
	ErrRemovedQuery = errors.New("core: query was removed")
	// ErrTimeRegression reports a stream event older than the last.
	ErrTimeRegression = errors.New("core: event time precedes stream time")
	// ErrClosed reports an operation on a closed monitor.
	ErrClosed = errors.New("core: monitor is closed")
)

// QueryDef describes one continuous query at registration time.
type QueryDef struct {
	// Vec is the unit-normalized preference vector.
	Vec textproc.Vector
	// K is the result size (≥ 1).
	K int
}

// Result is one user-visible result entry.
type Result struct {
	DocID uint64
	// Score is the decayed (present-time) score at the monitor's
	// current stream time.
	Score float64
}

// EventStats aggregates per-event work across shards. Field order must
// mirror algo.EventMetrics: add converts via a direct struct cast.
type EventStats struct {
	Evaluated          int
	Matched            int
	Iterations         int
	Postings           int
	JumpAlls           int
	DeltaBlocksSkipped int
	DeltaBlocksScanned int
	QuantPruned        int
	ScratchGrows       int
}

func (s *EventStats) add(m algo.EventMetrics) {
	(*algo.EventMetrics)(s).Add(m)
}

// location maps a global query ID to where it currently lives.
type location struct {
	shard   int32 // -1 → delta segment
	local   uint32
	removed bool
}

const deltaShard = -1

// shardJob is one unit of work handed to a shard worker: apply the
// rebase factors in order, then match every document at the shared
// inflation factor, accumulating metrics into out. The sender waits on
// wg, so the job's slices may be reused once the batch returns.
type shardJob struct {
	rebases []float64
	docs    []corpus.Document
	factor  float64
	out     *algo.EventMetrics
	wg      *sync.WaitGroup
}

// shard is one independent partition of the query set. When the
// monitor runs with more than one shard, each shard owns a persistent
// worker goroutine fed over work; jobs are processed strictly in send
// order, so per-shard results are identical to sequential processing.
type shard struct {
	proc      algo.Processor
	globalIDs []uint32 // local → global
	work      chan shardJob
	done      chan struct{} // closed when the worker exits
}

// startWorker launches the shard's persistent worker goroutine.
func (sh *shard) startWorker() {
	sh.work = make(chan shardJob)
	sh.done = make(chan struct{})
	go func() {
		defer close(sh.done)
		for job := range sh.work {
			*job.out = matchAll(sh.proc, job.rebases, job.docs, job.factor)
			job.wg.Done()
		}
	}()
}

// stopWorker shuts the shard's worker down and waits for it to exit
// (a shard that never started one — single-shard monitors — skips
// that), then releases any intra-shard workers owned by the shard's
// processor. Results stay readable afterwards.
func (sh *shard) stopWorker() {
	if sh.work != nil {
		close(sh.work)
		<-sh.done
		sh.work = nil
	}
	if c, ok := sh.proc.(interface{ Close() }); ok {
		c.Close()
	}
}

// matchAll applies the rebase factors in order, then matches every
// document at the shared inflation factor e, in slice order.
func matchAll(proc algo.Processor, rebases []float64, docs []corpus.Document, e float64) algo.EventMetrics {
	for _, f := range rebases {
		proc.Rebase(f)
	}
	var m algo.EventMetrics
	for _, doc := range docs {
		m.Add(proc.ProcessEvent(doc, e))
	}
	return m
}

// Monitor is the CTQD processing server. It is not safe for concurrent
// mutation; Process/ProcessBatch and AddQuery/RemoveQuery must be
// externally serialized (result reads between events are safe).
//
// The query index is generational: the main generation of shard
// indexes is immutable, recently added queries accumulate in an
// append-only delta segment (matched exhaustively, which is exact) and
// removed queries are tombstoned in place so they stop matching
// immediately. Once the dirty budget is spent, the next generation is
// built — on a background goroutine by default, concurrently with
// ongoing event traffic against the old generation — and installed by
// atomic swap at the next mutation, carrying results and thresholds; a
// failed build leaves the old generation serving. AddQuery is O(|q|)
// and RemoveQuery O(1), independent of how much churn is pending.
//
// Multi-shard monitors own one persistent worker goroutine per shard,
// started at construction and on every generation install; with
// Config.Parallelism > 1 each shard's processor additionally owns
// Parallelism-1 intra-shard partition workers that split every event's
// matching across the shard's query range. Call Close when done to
// shut them all down (it also joins any in-flight generation build).
type Monitor struct {
	cfg   Config
	decay *stream.Decay

	defs   []QueryDef // global ID → definition (retained for rebuilds)
	loc    []location
	shards []*shard

	// delta holds recently added queries — appended in O(|q|), matched
	// exhaustively — until the next generation build folds them into
	// the shard indexes. deltaIDs maps delta-local → global ID; foldLen
	// is the global ID horizon of the current main generation (every
	// live query < foldLen lives in a shard, every one ≥ foldLen in the
	// delta).
	delta    *algo.Delta
	deltaIDs []uint32
	foldLen  int
	dirty    int // adds+removals not yet claimed by a generation build

	// Generation build state. built is a 1-buffered rendezvous: the
	// background builder delivers exactly one genBuild per kick and the
	// serialized mutation path installs it (tryInstall/WaitRebuild).
	generation   uint64
	building     bool
	built        chan *genBuild
	kickDirty    int // dirty claimed by the in-flight build (restored on failure)
	tombstones   int // tombstoned entries lingering in the current generation + delta
	builds       uint64
	failedBuilds uint64
	lastBuild    time.Duration
	lastInstall  time.Duration
	lastBuildErr error
	// retryAt and retryBackoff gate re-kicks after a failed build: the
	// next build waits until dirty reaches retryAt, and the required
	// fresh churn doubles per consecutive failure — a deterministic
	// build error (say, an arena cap) cannot turn every mutation into
	// a doomed full-index build. A successful install resets both.
	retryAt      int
	retryBackoff int
	// buildHook, when set (tests only), runs on the builder goroutine
	// after the build completes and before it is delivered — blocking
	// it holds the generation "in flight" deterministically.
	buildHook func()

	now    float64
	events uint64
	totals EventStats
	closed bool

	// sinceCheck counts stream events since the last partition-balance
	// check (see maybeRepartition).
	sinceCheck int

	// onChange, when set, is invoked synchronously at the end of every
	// Process/ProcessBatch call whose batch changed at least one
	// query's top-k (see SetChangeHandler).
	onChange func(ids []uint32)

	// onMutate, when set, is invoked synchronously at the end of every
	// successful state mutation — ProcessBatch, AddQuery, RemoveQuery —
	// with the number of logical operations applied (see
	// SetMutationHandler).
	onMutate func(n int)

	// ins, when set, receives rebuild timings as they happen (see
	// SetInstruments) — the live counterpart of the LastBuildMS /
	// LastInstallMS point values in GenStats.
	ins *Instruments

	// Per-call scratch, reused across events to keep the hot path
	// allocation-free (safe: mutation is externally serialized and
	// every batch joins its workers before returning). evWG joins one
	// batch's shard fan-out; shardKeep/deltaKeep are method values
	// prebound at construction so the post-batch change drain passes
	// the same func values every time instead of allocating closures,
	// with drainIDs carrying the current shard's local→global map.
	oneDoc    [1]corpus.Document
	rebases   []float64
	outs      []algo.EventMetrics
	changed   []uint32
	evWG      sync.WaitGroup
	drainIDs  []uint32
	shardKeep func(local uint32)
	deltaKeep func(local uint32)
}

// NewMonitor builds a monitor over an initial query set. Queries get
// dense global IDs in registration order; the whole set is folded into
// the first main generation.
func NewMonitor(cfg Config, defs []QueryDef) (*Monitor, error) {
	return NewMonitorWithLayout(cfg, defs, nil, Layout{FoldLen: len(defs)})
}

// Layout describes the generational layout of the query set: queries
// with global ID < FoldLen live in the main generation of shard
// indexes, later ones in the delta segment. Snapshots persist it so a
// restored monitor resumes with the identical (result-invariant)
// layout and rebuild cadence.
type Layout struct {
	// FoldLen is the global ID horizon of the main generation.
	FoldLen int
	// Generation counts installed generation builds.
	Generation uint64
	// Dirty is the churn not yet folded into a generation.
	Dirty int
}

// Layout returns the monitor's current generational layout (for
// snapshots). Dirty includes the churn a still-in-flight build has
// claimed (kickDirty): that build dies with the process, so from a
// restored monitor's point of view those mutations are unfolded churn
// and must keep counting toward the next rebuild. Safe between
// events, like result reads.
func (m *Monitor) Layout() Layout {
	return Layout{FoldLen: m.foldLen, Generation: m.generation, Dirty: m.dirty + m.kickDirty}
}

// NewMonitorWithLayout builds a monitor over a full query ID space —
// including removed queries, flagged in removed (nil means all live) —
// with the generational layout lay. Removed queries keep their IDs but
// enter no index. Snapshot restore uses it to reproduce a persisted
// monitor exactly; NewMonitor is the everything-folded special case.
func NewMonitorWithLayout(cfg Config, defs []QueryDef, removed []bool, lay Layout) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	decay, err := stream.NewDecay(cfg.Lambda)
	if err != nil {
		return nil, err
	}
	m := &Monitor{
		cfg:        cfg,
		decay:      decay,
		built:      make(chan *genBuild, 1),
		generation: lay.Generation,
		dirty:      max(lay.Dirty, 0),
	}
	m.shardKeep = m.keepShardLocal
	m.deltaKeep = m.keepDeltaLocal
	m.defs = append(m.defs, defs...)
	m.loc = make([]location, len(defs))
	for g := range removed {
		if removed[g] {
			m.loc[g].removed = true
		}
	}
	m.foldLen = min(max(lay.FoldLen, 0), len(defs))
	live := make([]bool, m.foldLen)
	for g := 0; g < m.foldLen; g++ {
		live[g] = !m.loc[g].removed
	}
	shards, err := m.buildShards(m.defs[:m.foldLen], live)
	if err != nil {
		return nil, err
	}
	m.shards = shards
	if m.cfg.Shards > 1 {
		for _, sh := range m.shards {
			sh.startWorker()
		}
	}
	for s, sh := range m.shards {
		for local, g := range sh.globalIDs {
			m.loc[g] = location{shard: int32(s), local: uint32(local)}
		}
	}
	m.delta = algo.NewDelta()
	for g := m.foldLen; g < len(m.defs); g++ {
		if m.loc[g].removed {
			continue
		}
		local, err := m.delta.Append(m.defs[g].Vec, m.defs[g].K)
		if err != nil {
			m.stopWorkers()
			return nil, fmt.Errorf("core: delta query %d: %w", g, err)
		}
		m.loc[g] = location{shard: deltaShard, local: local}
		m.deltaIDs = append(m.deltaIDs, uint32(g))
	}
	return m, nil
}

// Config returns the monitor's effective configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Now returns the current stream time.
func (m *Monitor) Now() float64 { return m.now }

// Events returns the number of processed stream events.
func (m *Monitor) Events() uint64 { return m.events }

// Totals returns cumulative work statistics.
func (m *Monitor) Totals() EventStats { return m.totals }

// SetCounters overwrites the cumulative event and work counters.
// Snapshot restore uses it so a resumed monitor reports lifetime
// statistics rather than counting from zero.
func (m *Monitor) SetCounters(events uint64, totals EventStats) {
	m.events = events
	m.totals = totals
}

// NumQueries returns the number of live (non-removed) queries.
func (m *Monitor) NumQueries() int {
	n := 0
	for _, l := range m.loc {
		if !l.removed {
			n++
		}
	}
	return n
}

// buildShard constructs one shard's index and processor from global
// query IDs resolved against defs. With Parallelism > 1 the shard gets
// an intra-shard parallel matcher: its query range is partitioned
// across a worker set that matches every event concurrently
// (algo.Parallel). defs is passed explicitly because the background
// builder runs against a snapshot of the definition slice, not the
// live (growing) one.
func (m *Monitor) buildShard(defs []QueryDef, ids []uint32) (*shard, error) {
	vecs := make([]textproc.Vector, len(ids))
	ks := make([]int, len(ids))
	for i, g := range ids {
		vecs[i] = defs[g].Vec
		ks[i] = defs[g].K
	}
	if m.cfg.Parallelism > 1 {
		// Boundary policy is the partitioner's: the plan equalizes the
		// shard's estimated posting mass (or query count, per strategy)
		// before any sub-index exists, so every rebuild replans from
		// the current query set.
		plan := algo.NewPlan(vecs, m.cfg.Parallelism, m.cfg.Partition)
		plan.Layout = m.cfg.IndexLayout
		proc, err := algo.NewParallel(vecs, ks, plan, func(ix *index.Index) (algo.Processor, error) {
			return NewProcessor(m.cfg.Algorithm, m.cfg.Bound, ix)
		})
		if err != nil {
			return nil, err
		}
		return &shard{proc: proc, globalIDs: ids}, nil
	}
	ix, err := index.BuildLayout(vecs, ks, m.cfg.IndexLayout)
	if err != nil {
		return nil, err
	}
	proc, err := NewProcessor(m.cfg.Algorithm, m.cfg.Bound, ix)
	if err != nil {
		return nil, err
	}
	return &shard{proc: proc, globalIDs: ids}, nil
}

// buildShards constructs one generation of shard indexes: queries
// among defs with live[g] true, partitioned by g % Shards. The
// returned shards have no shard workers running yet. On error every
// shard already built is released. Reads only immutable state (cfg and
// the defs prefix), so the background builder may call it while the
// serialized mutation path keeps running.
func (m *Monitor) buildShards(defs []QueryDef, live []bool) ([]*shard, error) {
	parts := make([][]uint32, m.cfg.Shards)
	for g := range defs {
		if !live[g] {
			continue
		}
		s := g % m.cfg.Shards
		parts[s] = append(parts[s], uint32(g))
	}
	shards := make([]*shard, m.cfg.Shards)
	for s, ids := range parts {
		sh, err := m.buildShard(defs, ids)
		if err != nil {
			for _, b := range shards {
				if b != nil {
					b.stopWorker()
				}
			}
			return nil, err
		}
		shards[s] = sh
	}
	return shards, nil
}

// genBuild is one finished generation build, delivered by the builder
// goroutine to the serialized mutation path for installation.
type genBuild struct {
	// shards is the next generation (workers not started), covering
	// every query that was live among defs[:defsLen] at kick time.
	shards  []*shard
	defsLen int
	// deltaCut is how many delta-local queries the build folded; later
	// appends stay in the (rebuilt) delta.
	deltaCut int
	err      error
	took     time.Duration
}

// kickBuild snapshots the live query set and starts building the next
// generation on a background goroutine. The snapshot copies the
// removed flags (mutated in place by RemoveQuery) and captures the
// defs slice header — the prefix [0, defsLen) is append-only, so the
// builder reads it without synchronization. Caller must be on the
// serialized mutation path with no build in flight.
func (m *Monitor) kickBuild() {
	defs := m.defs
	live := make([]bool, len(defs))
	for g := range defs {
		live[g] = !m.loc[g].removed
	}
	m.building = true
	m.kickDirty = m.dirty
	m.dirty = 0
	cut := len(m.deltaIDs)
	hook := m.buildHook
	go func() {
		t0 := time.Now()
		shards, err := m.buildShards(defs, live)
		b := &genBuild{shards: shards, defsLen: len(defs), deltaCut: cut, err: err, took: time.Since(t0)}
		if hook != nil {
			hook()
		}
		m.built <- b
	}()
}

// tryInstall installs a finished generation build if one is waiting,
// without blocking. Called at the head of every serialized mutation
// (AddQuery, RemoveQuery, ProcessBatch), which is what makes the swap
// atomic: readers between events never observe a half-installed
// generation, and no event ever waits on a build in progress.
func (m *Monitor) tryInstall() {
	if !m.building {
		return
	}
	select {
	case b := <-m.built:
		m.install(b)
	default:
	}
}

// WaitRebuild blocks until the in-flight generation build (if any) is
// delivered and installs it. Like any mutation it must be externally
// serialized with Process/ProcessBatch and query churn. Tests and
// operators use it to make rebuild timing deterministic; the monitor
// itself never waits.
func (m *Monitor) WaitRebuild() {
	if m.closed || !m.building {
		return
	}
	m.install(<-m.built)
}

// install swaps a built generation in: the shard set is replaced,
// queries removed while the build ran are tombstoned in the new
// indexes, the delta is rebuilt from its unfolded tail, and every live
// query's results are carried into its new location — raw heap
// transplants (no sorting, no re-heapification) followed by the usual
// bulk-load threshold resync, so the swap costs O(live results) with
// small constants, independent of the build's cost. On build error the
// old generation keeps serving and the churn the build had claimed is
// returned to the dirty budget.
func (m *Monitor) install(b *genBuild) {
	m.building = false
	if b.err != nil {
		// The old generation keeps serving (adds stay in the delta,
		// removals stay tombstoned — exact, merely unprofitable), so
		// the failure is not surfaced as a mutation error; it is
		// recorded in GenStats and the next attempt is pushed out by a
		// doubling fresh-churn backoff.
		m.failedBuilds++
		m.lastBuildErr = b.err
		m.dirty += m.kickDirty
		m.kickDirty = 0
		if m.retryBackoff == 0 {
			m.retryBackoff = max(m.cfg.RebuildThreshold/8, 1)
		} else {
			m.retryBackoff = min(2*m.retryBackoff, 8*m.cfg.RebuildThreshold)
		}
		m.retryAt = m.dirty + m.retryBackoff
		return
	}
	t0 := time.Now()
	// The old generation's stores stay readable after their workers
	// stop; keep the old locations so each query's results can be
	// carried from wherever they lived.
	oldLoc := append([]location(nil), m.loc...)
	oldShards, oldDelta := m.shards, m.delta
	srcProc := func(g uint32) algo.Processor {
		if l := oldLoc[g]; l.shard != deltaShard {
			return oldShards[l.shard].proc
		}
		return oldDelta
	}
	m.stopWorkers()
	m.shards = b.shards
	if m.cfg.Shards > 1 {
		for _, sh := range m.shards {
			sh.startWorker()
		}
	}
	// carry moves one live query's results into its new processor.
	// Queries with no results yet are skipped: the fresh processor is
	// already in the exact warm-up state for them. Thresholds and bound
	// structures are resynchronized wholesale afterwards (ResyncAll),
	// so the whole carry is two memmoves per query plus one pass over
	// each new sub-index — O(live results), independent of how
	// expensive the build was.
	carry := func(g uint32, dst algo.Processor, dstLocal uint32) {
		src := srcProc(g)
		if src.Results().Size(oldLoc[g].local) == 0 {
			return
		}
		dst.Results().Transplant(dstLocal, src.Results(), oldLoc[g].local)
	}
	// Relocate folded queries; ones removed mid-build are tombstoned in
	// the fresh indexes (their entries linger until the next build, as
	// always, but they stop matching immediately).
	tomb := 0
	for s, sh := range m.shards {
		for local, g := range sh.globalIDs {
			if m.loc[g].removed {
				sh.proc.Tombstone(uint32(local))
				tomb++
				continue
			}
			carry(g, sh.proc, uint32(local))
			m.loc[g] = location{shard: int32(s), local: uint32(local)}
		}
		sh.proc.ResyncAll()
	}
	// Rebuild the delta from its unfolded tail: queries added while the
	// build ran. Cost is proportional to that churn, not to the total
	// query set. Appends cannot fail — every definition was validated
	// by the AddQuery that admitted it.
	tail := m.deltaIDs[b.deltaCut:]
	newDelta := algo.NewDelta()
	newIDs := make([]uint32, 0, len(tail))
	for _, g := range tail {
		if m.loc[g].removed {
			continue
		}
		local, err := newDelta.Append(m.defs[g].Vec, m.defs[g].K)
		if err != nil {
			panic(fmt.Sprintf("core: delta carry of validated query %d: %v", g, err))
		}
		carry(g, newDelta, local)
		m.loc[g] = location{shard: deltaShard, local: local}
		newIDs = append(newIDs, g)
	}
	newDelta.ResyncAll()
	m.delta, m.deltaIDs = newDelta, newIDs
	m.foldLen = b.defsLen
	m.tombstones = tomb
	m.generation++
	m.builds++
	m.kickDirty = 0
	m.lastBuildErr = nil
	m.retryAt, m.retryBackoff = 0, 0
	m.lastBuild = b.took
	m.lastInstall = time.Since(t0)
	if m.ins != nil {
		m.ins.BuildSeconds.ObserveDuration(m.lastBuild)
		m.ins.InstallSeconds.ObserveDuration(m.lastInstall)
	}
	// Churn that accumulated during the build may already justify the
	// next generation.
	m.maybeKick()
}

// restore bulk-loads inflated results into query g's store.
func (m *Monitor) restore(g uint32, docs []topk.ScoredDoc) {
	l := m.loc[g]
	proc := m.procFor(l)
	for _, d := range docs {
		proc.Results().Add(uint32(l.local), d.DocID, d.Score)
	}
	proc.SyncThreshold(l.local)
}

// procFor returns the processor responsible for a location.
func (m *Monitor) procFor(l location) algo.Processor {
	if l.shard == deltaShard {
		return m.delta
	}
	return m.shards[l.shard].proc
}

// dump collects every live query's inflated results.
func (m *Monitor) dump() map[uint32][]topk.ScoredDoc {
	out := make(map[uint32][]topk.ScoredDoc, len(m.defs))
	for g := range m.defs {
		l := m.loc[g]
		if l.removed {
			continue
		}
		if docs := m.procFor(l).Results().Top(l.local); len(docs) > 0 {
			out[uint32(g)] = docs
		}
	}
	return out
}

// AddQuery registers a query while the stream runs. It appends to the
// delta segment in O(|q|) — no sidecar rebuild, no index rebuild on
// this call path, regardless of how much churn is already pending —
// and the query is folded into the main shard indexes by the next
// generation build. A failed validation leaves the monitor exactly as
// it was and the next add reuses the same global ID.
func (m *Monitor) AddQuery(def QueryDef) (uint32, error) {
	if m.closed {
		return 0, ErrClosed
	}
	m.tryInstall()
	// Validation (sorted non-empty vector, k in range) is owned by the
	// delta append — a single O(|q|) walk; on error nothing is mutated.
	local, err := m.delta.Append(def.Vec, def.K)
	if err != nil {
		return 0, err
	}
	g := uint32(len(m.defs))
	m.defs = append(m.defs, def)
	m.loc = append(m.loc, location{shard: deltaShard, local: local})
	m.deltaIDs = append(m.deltaIDs, g)
	m.dirty++
	m.maybeKick()
	if m.onMutate != nil {
		m.onMutate(1)
	}
	return g, nil
}

// RemoveQuery unregisters a query in O(1): it is tombstoned where it
// lives, so it stops being scored (and stops dirtying the change
// record) from the very next event. Its index entries linger (correct,
// merely unprofitable) until the next generation build sweeps them
// out.
func (m *Monitor) RemoveQuery(g uint32) error {
	if m.closed {
		return ErrClosed
	}
	if int(g) >= len(m.loc) {
		return ErrUnknownQuery
	}
	if m.loc[g].removed {
		return ErrRemovedQuery
	}
	m.tryInstall()
	l := m.loc[g]
	m.loc[g].removed = true
	if l.shard == deltaShard {
		m.delta.Tombstone(l.local)
	} else {
		m.shards[l.shard].proc.Tombstone(l.local)
	}
	m.tombstones++
	m.dirty++
	m.maybeKick()
	if m.onMutate != nil {
		m.onMutate(1)
	}
	return nil
}

// maybeKick starts the next generation build once the dirty budget is
// spent. In background mode the build runs concurrently with event
// traffic against the old generation and installs at a later mutation;
// in sync mode (the legacy ablation control) the caller blocks until
// the generation is built and installed.
func (m *Monitor) maybeKick() {
	if m.building || m.dirty < m.cfg.RebuildThreshold || m.dirty < m.retryAt {
		return
	}
	m.kickBuild()
	if m.cfg.Rebuild == RebuildSync {
		m.WaitRebuild()
	}
}

// stopWorkers drains and joins every shard worker.
func (m *Monitor) stopWorkers() {
	for _, sh := range m.shards {
		sh.stopWorker()
	}
}

// Close shuts down the monitor's shard workers, joining any in-flight
// generation build first (the built-but-uninstalled shards are
// discarded — the serving generation already holds all results). The
// monitor stops accepting events and query mutations; result reads
// stay valid. Close is idempotent.
func (m *Monitor) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	if m.building {
		b := <-m.built
		m.building = false
		for _, sh := range b.shards {
			if sh != nil {
				sh.stopWorker()
			}
		}
	}
	m.stopWorkers()
	return nil
}

// SetChangeHandler registers fn to be called at the end of every
// Process/ProcessBatch whose batch changed at least one query's top-k.
// ids holds the global IDs of exactly the queries whose result set
// changed — no misses, no spurious entries, each ID at most once, in
// unspecified order — regardless of the Shards × Parallelism layout.
// The slice is reused across calls: fn must not retain it. fn runs
// synchronously on the caller's goroutine while the monitor is
// mid-mutation, so it must not call back into the monitor. A nil fn
// disables notification.
func (m *Monitor) SetChangeHandler(fn func(ids []uint32)) {
	m.onChange = fn
}

// SetMutationHandler registers fn to be called at the end of every
// successful serialized state mutation — ProcessBatch (n = batch
// size), AddQuery and RemoveQuery (n = 1) — on the caller's goroutine.
// The engine's durability layer uses it to count operations toward a
// snapshot threshold. Like a change handler, fn runs while the monitor
// is mid-mutation and must not call back into it. A nil fn disables
// the hook.
func (m *Monitor) SetMutationHandler(fn func(n int)) {
	m.onMutate = fn
}

// Instruments is the monitor's optional metric set: histograms fed on
// the mutation path as generation builds install. The nil-safe obs
// handles mean partially filled sets are fine.
type Instruments struct {
	// BuildSeconds observes each background (or sync) generation
	// build's duration.
	BuildSeconds *obs.Histogram
	// InstallSeconds observes the mutation-path stall while a built
	// generation is swapped in — the latency PR 5's background builder
	// exists to keep small.
	InstallSeconds *obs.Histogram
}

// SetInstruments attaches rebuild-timing instruments. Like the change
// and mutation handlers, it must be set while the monitor is
// externally quiescent (the engine wires it at construction); nil
// detaches.
func (m *Monitor) SetInstruments(ins *Instruments) {
	m.ins = ins
}

// discardChanges clears every processor's change record. Called at the
// start of each batch so that result mutations performed between
// stream events — bulk restores, rebuild carries, snapshot loads —
// never surface as stream-event change notifications.
func (m *Monitor) discardChanges() {
	for _, sh := range m.shards {
		sh.proc.DrainChanged(nil)
	}
	m.delta.DrainChanged(nil)
}

// collectChanges gathers the global IDs of every query whose top-k
// changed during the batch just matched, translating shard- and
// sidecar-local IDs. Each shard's record covers a disjoint global ID
// subset and the start-of-batch discard emptied every record, so the
// concatenation is exact and duplicate-free.
func (m *Monitor) collectChanges() []uint32 {
	m.changed = m.changed[:0]
	for _, sh := range m.shards {
		m.drainIDs = sh.globalIDs
		sh.proc.DrainChanged(m.shardKeep)
	}
	m.drainIDs = nil
	m.delta.DrainChanged(m.deltaKeep)
	return m.changed
}

// keep records one changed global query ID. Tombstones stop a removed
// query from admitting documents the moment it is removed, but a query
// can be removed after a batch marked it changed and before the drain;
// such phantom updates are invisible through Top and must not be
// notified.
func (m *Monitor) keep(g uint32) {
	if !m.loc[g].removed {
		m.changed = append(m.changed, g)
	}
}

// keepShardLocal and keepDeltaLocal translate processor-local changed
// IDs to global ones. They exist as methods so collectChanges can pass
// prebound func values instead of allocating per-drain closures.
func (m *Monitor) keepShardLocal(local uint32) { m.keep(m.drainIDs[local]) }
func (m *Monitor) keepDeltaLocal(local uint32) { m.keep(m.deltaIDs[local]) }

// ValidateIngest reports whether the monitor would accept an event at
// time t, without mutating any state. Callers with their own
// per-document side effects (e.g. the text engine's idf bookkeeping)
// use it to reject a doomed publication before paying them.
func (m *Monitor) ValidateIngest(t float64) error {
	if m.closed {
		return ErrClosed
	}
	if t < m.now {
		return fmt.Errorf("%w: %v < %v", ErrTimeRegression, t, m.now)
	}
	return nil
}

// Process feeds one stream event. Event times must be non-decreasing.
func (m *Monitor) Process(doc corpus.Document, t float64) (EventStats, error) {
	m.oneDoc[0] = doc
	return m.ProcessBatch(m.oneDoc[:], t)
}

// ProcessBatch feeds a batch of stream events that share the arrival
// time t (non-decreasing across calls). The epoch/rebase bookkeeping
// and the per-shard worker rendezvous are paid once per batch instead
// of once per document; within each shard documents are matched
// strictly in slice order, so results are identical to feeding the
// documents one at a time through Process at the same t. Returns the
// aggregate work statistics of the whole batch.
func (m *Monitor) ProcessBatch(docs []corpus.Document, t float64) (EventStats, error) {
	if err := m.ValidateIngest(t); err != nil {
		return EventStats{}, err
	}
	if len(docs) == 0 {
		return EventStats{}, nil
	}
	// Install a finished background generation build, if one is
	// waiting. Non-blocking: a build still in flight leaves the old
	// generation serving this batch.
	m.tryInstall()
	// Changes recorded outside the event path (bulk restores, rebuild
	// carries) are not stream-event notifications: drop them so the
	// post-batch collection reports exactly this batch's changes.
	m.discardChanges()
	m.rebases = m.rebases[:0]
	for m.decay.NeedsRebase(t) {
		m.rebases = append(m.rebases, m.decay.RebaseTo(t))
	}
	e := m.decay.Factor(t)

	// The delta segment always runs on the caller's goroutine — in the
	// multi-shard case concurrently with the shard workers.
	var st EventStats
	if len(m.shards) == 1 || m.shards[0].work == nil {
		// Single shard (or a monitor whose workers never started):
		// inline, no synchronization cost.
		for _, sh := range m.shards {
			st.add(matchAll(sh.proc, m.rebases, docs, e))
		}
		st.add(matchAll(m.delta, m.rebases, docs, e))
	} else {
		if cap(m.outs) < len(m.shards) {
			m.outs = make([]algo.EventMetrics, len(m.shards))
		}
		outs := m.outs[:len(m.shards)]
		// evWG is reused across batches: batches are externally
		// serialized and Wait returns before the next Add.
		m.evWG.Add(len(m.shards))
		for i, sh := range m.shards {
			sh.work <- shardJob{
				rebases: m.rebases,
				docs:    docs,
				factor:  e,
				out:     &outs[i],
				wg:      &m.evWG,
			}
		}
		pm := matchAll(m.delta, m.rebases, docs, e)
		m.evWG.Wait()
		for _, r := range outs {
			st.add(r)
		}
		st.add(pm)
	}
	m.now = t
	m.events += uint64(len(docs))
	m.totals.add(algo.EventMetrics(st))
	if m.onChange != nil {
		if ids := m.collectChanges(); len(ids) > 0 {
			m.onChange(ids)
		}
	}
	m.maybeRepartition(len(docs), len(m.rebases) > 0)
	if m.onMutate != nil {
		m.onMutate(len(docs))
	}
	return st, nil
}

// maybeRepartition closes a partition-balance observation window once
// RepartitionWindow events have passed since the last one — or
// immediately when the batch crossed a decay rebase, a natural
// bookkeeping epoch — and lets each shard's mass partitioner move its
// boundaries after sustained imbalance. Runs at the end of a batch,
// when no change record is mid-collection, so a repartition's change
// carry-over stays exact. Errors leave the old (correct, merely
// unbalanced) layout in place.
func (m *Monitor) maybeRepartition(events int, rebased bool) {
	if m.cfg.Parallelism <= 1 {
		return
	}
	m.sinceCheck += events
	if m.sinceCheck < m.cfg.RepartitionWindow && !rebased {
		return
	}
	m.sinceCheck = 0
	for _, sh := range m.shards {
		if par, ok := sh.proc.(*algo.Parallel); ok {
			_, _ = par.CheckBalance()
		}
	}
}

// Repartition immediately replans every shard's intra-shard partition
// boundaries from the observed per-partition work (mass strategy
// only; shards planned by count, or without intra-shard parallelism,
// are untouched). The monitor also repartitions automatically — every
// rebuild replans from the current query set, and sustained imbalance
// between rebuilds moves boundaries via maybeRepartition — so this
// exists for operators and tests that want a repartition now. Must be
// externally serialized with Process/ProcessBatch, like any mutation.
func (m *Monitor) Repartition() error {
	if m.closed {
		return ErrClosed
	}
	// Like every serialized mutation, land a finished generation build
	// first — repartitioning shards that an install is about to replace
	// would be wasted index builds.
	m.tryInstall()
	for s, sh := range m.shards {
		if par, ok := sh.proc.(*algo.Parallel); ok {
			if _, err := par.Repartition(); err != nil {
				return fmt.Errorf("core: repartition shard %d: %w", s, err)
			}
		}
	}
	return nil
}

// PartitionStat surfaces one intra-shard partition's occupancy: its
// share of the shard's queries and estimated posting mass, plus the
// matching work observed since the partition was last (re)created.
type PartitionStat struct {
	// Shard is the owning shard's index, or -1 for the delta segment
	// (recently added queries matched exhaustively until the next
	// generation build folds them into the shards).
	Shard int
	// Queries is the number of queries in the partition's range.
	Queries int
	// Cost is the partition's share of the current cost estimate (0
	// for shards without intra-shard parallelism). It starts as the
	// partition's posting mass; adaptive repartitions rescale it by
	// observed work density while conserving the shard total, so
	// compare shares within a snapshot, not absolute values across
	// time.
	Cost float64
	// BusyMS is cumulative matching wall time in milliseconds.
	BusyMS float64
	// Evaluated is the cumulative count of exactly-scored queries.
	Evaluated uint64
}

// PartitionStats reports every shard's intra-shard partition
// occupancy; a shard running without intra-shard parallelism
// contributes a single entry covering its whole query range. Safe
// between events, like result reads.
func (m *Monitor) PartitionStats() []PartitionStat {
	var out []PartitionStat
	for s, sh := range m.shards {
		par, ok := sh.proc.(*algo.Parallel)
		if !ok {
			out = append(out, PartitionStat{Shard: s, Queries: len(sh.globalIDs)})
			continue
		}
		for _, st := range par.Occupancy() {
			out = append(out, PartitionStat{
				Shard:     s,
				Queries:   int(st.Hi - st.Lo),
				Cost:      st.Cost,
				BusyMS:    float64(st.Busy) / float64(time.Millisecond),
				Evaluated: st.Evaluated,
			})
		}
	}
	if pending := m.deltaLive(); pending > 0 {
		out = append(out, PartitionStat{Shard: -1, Queries: pending})
	}
	return out
}

// deltaLive counts the delta segment's live (non-removed) queries.
func (m *Monitor) deltaLive() int {
	n := 0
	for _, g := range m.deltaIDs {
		if !m.loc[g].removed {
			n++
		}
	}
	return n
}

// GenStats surfaces the generational index's churn state: how large
// the delta segment has grown, how many tombstoned entries linger in
// the current generation, and what the background builder has been
// doing.
type GenStats struct {
	// Generation counts installed generation builds since the monitor
	// (or the snapshot it was restored from) started.
	Generation uint64
	// Building reports a generation build in flight (started but not
	// yet installed).
	Building bool
	// Builds and FailedBuilds count completed generation builds.
	Builds, FailedBuilds uint64
	// DeltaQueries is the number of live queries in the delta segment;
	// DeltaPostings its total posting count (tombstoned ones included).
	DeltaQueries, DeltaPostings int
	// Tombstones is the number of removed queries whose index entries
	// linger in the current generation or delta until the next build.
	Tombstones int
	// Dirty is the churn (adds + removals) not yet claimed by a
	// generation build.
	Dirty int
	// LastBuildMS and LastInstallMS are the wall time of the most
	// recent successful generation build (concurrent with traffic in
	// background mode) and of its install swap (on the mutation path).
	LastBuildMS, LastInstallMS float64
	// LastBuildError is the most recent failed build's error (empty
	// after a success). Mutations never surface build failures — the
	// old generation keeps serving exactly — so this is where they are
	// observable; retries back off by doubling fresh-churn budgets.
	LastBuildError string
}

// GenStats reports the generational index state. Safe between events,
// like result reads.
func (m *Monitor) GenStats() GenStats {
	gs := GenStats{
		Generation:    m.generation,
		Building:      m.building,
		Builds:        m.builds,
		FailedBuilds:  m.failedBuilds,
		DeltaQueries:  m.deltaLive(),
		DeltaPostings: m.delta.Postings(),
		Tombstones:    m.tombstones,
		Dirty:         m.dirty,
		LastBuildMS:   float64(m.lastBuild) / float64(time.Millisecond),
		LastInstallMS: float64(m.lastInstall) / float64(time.Millisecond),
	}
	if m.lastBuildErr != nil {
		gs.LastBuildError = m.lastBuildErr.Error()
	}
	return gs
}

// ChangedQueries drains and returns the global IDs of queries whose
// top-k changed since the last drain (the last batch, when called
// right after Process/ProcessBatch with no change handler set). The
// returned slice is reused by the next batch. Exposed for tests and
// callers that poll instead of registering a handler.
func (m *Monitor) ChangedQueries() []uint32 {
	return m.collectChanges()
}

// Top returns query g's current results with present-time (decayed)
// scores, best first.
func (m *Monitor) Top(g uint32) ([]Result, error) {
	if int(g) >= len(m.loc) {
		return nil, ErrUnknownQuery
	}
	l := m.loc[g]
	if l.removed {
		return nil, ErrRemovedQuery
	}
	docs := m.procFor(l).Results().Top(l.local)
	out := make([]Result, len(docs))
	for i, d := range docs {
		out[i] = Result{DocID: d.DocID, Score: m.decay.PresentScore(d.Score, m.now)}
	}
	return out, nil
}

// TopInflated returns query g's results in internal inflated score
// units (used by snapshots and tests that compare across algorithms).
func (m *Monitor) TopInflated(g uint32) ([]topk.ScoredDoc, error) {
	if int(g) >= len(m.loc) {
		return nil, ErrUnknownQuery
	}
	l := m.loc[g]
	if l.removed {
		return nil, ErrRemovedQuery
	}
	return m.procFor(l).Results().Top(l.local), nil
}

// EachResultDoc calls fn for every document ID currently held in any
// live query's result set, in unspecified order. A document referenced
// by several queries is reported once per reference. The engine's
// snippet retention uses it to find which documents are still visible.
func (m *Monitor) EachResultDoc(fn func(docID uint64)) {
	for g := range m.defs {
		l := m.loc[g]
		if l.removed {
			continue
		}
		for _, id := range m.procFor(l).Results().DocIDs(l.local) {
			fn(id)
		}
	}
}

// ResultCapacity returns the sum of live queries' k: the maximum
// number of result entries (and so distinct referenced documents) the
// monitor can expose at once.
func (m *Monitor) ResultCapacity() int {
	n := 0
	for g, d := range m.defs {
		if !m.loc[g].removed {
			n += d.K
		}
	}
	return n
}

// Defs returns the live query definitions keyed by global ID (for
// snapshotting).
func (m *Monitor) Defs() map[uint32]QueryDef {
	out := make(map[uint32]QueryDef, len(m.defs))
	for g, d := range m.defs {
		if !m.loc[g].removed {
			out[uint32(g)] = d
		}
	}
	return out
}

// AllDefs returns every registered query definition in global ID
// order — including removed queries — plus the parallel removed
// flags. Snapshots use it to persist the full ID space, so client
// held handles survive a save/restore even after unregistrations.
func (m *Monitor) AllDefs() ([]QueryDef, []bool) {
	defs := append([]QueryDef(nil), m.defs...)
	removed := make([]bool, len(m.loc))
	for g, l := range m.loc {
		removed[g] = l.removed
	}
	return defs, removed
}

// DumpState exposes the monitor's dynamic state for persistence:
// stream time, decay base and every live query's inflated results.
func (m *Monitor) DumpState() (now, decayBase float64, results map[uint32][]topk.ScoredDoc) {
	return m.now, m.decay.Base(), m.dump()
}

// RestoreState reloads state produced by DumpState. It must be called
// on a freshly built monitor with the same query definitions.
func (m *Monitor) RestoreState(now, decayBase float64, results map[uint32][]topk.ScoredDoc) error {
	if decayBase > now {
		return fmt.Errorf("core: decay base %v after stream time %v", decayBase, now)
	}
	m.now = now
	m.decay.SetBase(decayBase)
	for g, docs := range results {
		if int(g) >= len(m.loc) {
			return fmt.Errorf("%w: %d in snapshot", ErrUnknownQuery, g)
		}
		if m.loc[g].removed {
			continue
		}
		m.restore(g, docs)
	}
	return nil
}
