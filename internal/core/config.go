// Package core implements the CTQD processing server of the paper: a
// Monitor hosting a set of continuous top-k queries, fed by a document
// stream, refreshing every affected query's result on each arrival.
//
// The Monitor owns everything stateful the algorithms need — the decay
// epoch and rebase protocol, per-shard query indexes, dynamic query
// registration — and delegates per-event matching to one of the
// algorithms in internal/algo (MRIO by default).
package core

import (
	"fmt"

	"repro/internal/algo"
	"repro/internal/index"
	"repro/internal/rangemax"
)

// Algorithm names a matching algorithm.
type Algorithm string

// The available algorithms. MRIO is the paper's contribution and the
// default; the others exist as evaluation baselines.
const (
	AlgoMRIO       Algorithm = "MRIO"
	AlgoRIO        Algorithm = "RIO"
	AlgoRTA        Algorithm = "RTA"
	AlgoSortQuer   Algorithm = "SortQuer"
	AlgoTPS        Algorithm = "TPS"
	AlgoExhaustive Algorithm = "Exhaustive"
)

// ParseAlgorithm converts a case-sensitive algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch Algorithm(s) {
	case AlgoMRIO, AlgoRIO, AlgoRTA, AlgoSortQuer, AlgoTPS, AlgoExhaustive:
		return Algorithm(s), nil
	}
	return "", fmt.Errorf("core: unknown algorithm %q", s)
}

// NewProcessor constructs the named algorithm over an index. bound
// selects the UB* implementation for MRIO and is ignored otherwise.
func NewProcessor(a Algorithm, bound rangemax.Kind, ix *index.Index) (algo.Processor, error) {
	switch a {
	case AlgoMRIO:
		return algo.NewMRIO(ix, bound)
	case AlgoRIO:
		return algo.NewRIO(ix)
	case AlgoRTA:
		return algo.NewRTA(ix)
	case AlgoSortQuer:
		return algo.NewSortQuer(ix)
	case AlgoTPS:
		return algo.NewTPS(ix)
	case AlgoExhaustive:
		return algo.NewExhaustive(ix)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", a)
	}
}

// PartitionStrategy selects how each shard's query range is split
// across its Parallelism intra-shard matching workers (re-exported
// from internal/algo so callers configure the monitor without
// importing the algorithm layer).
type PartitionStrategy = algo.Strategy

// The available partition strategies.
const (
	// PartitionCount is the legacy equal-query-count split.
	PartitionCount = algo.StrategyCount
	// PartitionMass (the default) equalizes estimated posting mass and
	// adapts boundaries to the observed per-partition work.
	PartitionMass = algo.StrategyMass
)

// ParsePartition converts a partition-strategy name.
func ParsePartition(s string) (PartitionStrategy, error) { return algo.ParseStrategy(s) }

// RebuildMode selects how the monitor folds accumulated query churn
// (the delta segment and tombstones) into the next generation of shard
// indexes.
type RebuildMode string

const (
	// RebuildBackground (the default) builds the next generation on a
	// background goroutine while the old generation keeps serving
	// events, then installs it by atomic swap at the next mutation —
	// ingestion latency never waits on an index build.
	RebuildBackground RebuildMode = "background"
	// RebuildSync builds the next generation inline on the mutating
	// call once the dirty budget is spent — the legacy stop-the-world
	// behaviour, kept as the ablation control.
	RebuildSync RebuildMode = "sync"
)

// ParseRebuild converts a rebuild-mode name.
func ParseRebuild(s string) (RebuildMode, error) {
	switch RebuildMode(s) {
	case RebuildBackground, RebuildSync:
		return RebuildMode(s), nil
	}
	return "", fmt.Errorf("core: unknown rebuild mode %q", s)
}

// Config parameterizes a Monitor.
type Config struct {
	// Algorithm selects the matching algorithm (default MRIO).
	Algorithm Algorithm
	// Bound selects MRIO's UB* implementation (default segment tree).
	Bound rangemax.Kind
	// Lambda is the exponential decay rate (≥ 0; 0 disables recency).
	Lambda float64
	// Shards splits the query set into independent partitions matched
	// in parallel (default 1; the paper's setting is single-threaded).
	Shards int
	// Parallelism matches each event with this many workers inside
	// every shard, by partitioning the shard's query range (and thus
	// its posting lists) into contiguous slices (default 1). It
	// composes with Shards: total matching concurrency is
	// Shards × Parallelism. Results are bit-identical to the
	// sequential path; only the per-event work counters depend on the
	// partitioning.
	Parallelism int
	// Partition selects how each shard's query range is split across
	// the Parallelism workers: PartitionMass (default) equalizes
	// estimated posting mass and tracks the live workload;
	// PartitionCount is the legacy equal-query-count split. Both are
	// result-invariant — only the partition-work balance differs.
	Partition PartitionStrategy
	// RepartitionWindow is how many stream events pass between
	// imbalance checks of the mass partitioner (default 4096; a check
	// also runs at every decay rebase, and every rebuild replans from
	// scratch). Meaningful only with Parallelism > 1.
	RepartitionWindow int
	// RebuildThreshold is how many dynamically added or removed
	// queries accumulate before the next generation of shard indexes
	// is built to absorb them (default 1024). Added queries are matched
	// exhaustively in the delta segment and removed ones are tombstoned
	// in the meantime, so correctness never depends on rebuilds.
	RebuildThreshold int
	// Rebuild selects where generation builds run: RebuildBackground
	// (default) builds concurrently with event processing and swaps
	// atomically; RebuildSync blocks the mutating call (the legacy
	// behaviour, kept as an ablation control). Result-invariant.
	Rebuild RebuildMode
	// IndexLayout selects the posting storage layout of the main
	// generation's shard indexes: index.LayoutFlat (the zero value and
	// default) packs each shard's postings into one contiguous backing
	// array; index.LayoutLegacy keeps per-term heap slices, retained as
	// the ablation control. Result-invariant — only memory locality
	// differs. The delta segment is always mapped (it must grow).
	IndexLayout index.Layout
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = AlgoMRIO
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.Partition == "" {
		c.Partition = PartitionMass
	}
	if c.RepartitionWindow == 0 {
		c.RepartitionWindow = 4096
	}
	if c.RebuildThreshold == 0 {
		c.RebuildThreshold = 1024
	}
	if c.Rebuild == "" {
		c.Rebuild = RebuildBackground
	}
	return c
}

// Validate reports the first problem with the config.
func (c Config) Validate() error {
	if _, err := ParseAlgorithm(string(c.Algorithm)); c.Algorithm != "" && err != nil {
		return err
	}
	if c.Lambda < 0 {
		return fmt.Errorf("core: negative decay λ %v", c.Lambda)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative shard count %d", c.Shards)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: negative intra-shard parallelism %d", c.Parallelism)
	}
	if _, err := ParsePartition(string(c.Partition)); c.Partition != "" && err != nil {
		return err
	}
	if c.RepartitionWindow < 0 {
		return fmt.Errorf("core: negative repartition window %d", c.RepartitionWindow)
	}
	if c.RebuildThreshold < 0 {
		return fmt.Errorf("core: negative rebuild threshold %d", c.RebuildThreshold)
	}
	if _, err := ParseRebuild(string(c.Rebuild)); c.Rebuild != "" && err != nil {
		return err
	}
	if c.IndexLayout != index.LayoutFlat && c.IndexLayout != index.LayoutLegacy {
		return fmt.Errorf("core: unknown index layout %d", c.IndexLayout)
	}
	return nil
}
