package core

import (
	"errors"
	"testing"

	"repro/internal/corpus"
	"repro/internal/workload"
)

// expectSameResults asserts two monitors hold bit-identical top-k
// lists for every query in [0, n).
func expectSameResults(t *testing.T, label string, want, got *Monitor, n int) {
	t.Helper()
	for g := uint32(0); g < uint32(n); g++ {
		a, errA := want.TopInflated(g)
		b, errB := got.TopInflated(g)
		if errors.Is(errA, ErrRemovedQuery) && errors.Is(errB, ErrRemovedQuery) {
			continue
		}
		if errA != nil || errB != nil {
			t.Fatalf("%s: query %d: %v vs %v", label, g, errA, errB)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: query %d: %d vs %d results", label, g, len(a), len(b))
		}
		for i := range a {
			if a[i].DocID != b[i].DocID || a[i].Score != b[i].Score {
				t.Fatalf("%s: query %d rank %d differs: %+v vs %+v", label, g, i, a[i], b[i])
			}
		}
	}
}

// TestBatchShardEquivalence is the ingestion-parity gate: batched
// (ProcessBatch) and sharded (Shards=4) ingestion — and their
// combination — must produce bit-identical top-k lists to the
// single-shard, single-document path on a seeded random corpus.
func TestBatchShardEquivalence(t *testing.T) {
	const nq = 150
	defs := defsFromWorkload(t, workload.Connected, nq, 3, 11)
	events := testEvents(t, 256, 90)

	newMon := func(shards int) *Monitor {
		m, err := NewMonitor(Config{Lambda: 0.01, Shards: shards}, defs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	}
	ref := newMon(1)
	variants := map[string]*Monitor{
		"shards=4 single": newMon(4),
		"shards=1 batch":  newMon(1),
		"shards=4 batch":  newMon(4),
	}
	batched := map[string]bool{"shards=1 batch": true, "shards=4 batch": true}

	// Feed in chunks of 7; every document in a chunk shares the
	// chunk's last event time so single-document and batch replays see
	// the identical timeline.
	const chunk = 7
	for i := 0; i < len(events); i += chunk {
		evs := events[i:min(i+chunk, len(events))]
		at := evs[len(evs)-1].Time
		docs := make([]corpus.Document, len(evs))
		for j, ev := range evs {
			docs[j] = ev.Doc
		}
		for _, doc := range docs {
			if _, err := ref.Process(doc, at); err != nil {
				t.Fatal(err)
			}
		}
		for name, m := range variants {
			var err error
			if batched[name] {
				_, err = m.ProcessBatch(docs, at)
			} else {
				for _, doc := range docs {
					if _, err = m.Process(doc, at); err != nil {
						break
					}
				}
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	if ref.Totals().Matched == 0 {
		t.Fatal("no query ever matched; fixture degenerate")
	}
	for name, m := range variants {
		if m.Events() != ref.Events() {
			t.Fatalf("%s: events = %d, want %d", name, m.Events(), ref.Events())
		}
		// Matched is partition-invariant; the pruning-work counters
		// (Evaluated, Iterations, ...) legitimately differ across shard
		// layouts, so only the same-layout batch variant must agree on
		// the full totals.
		if m.Totals().Matched != ref.Totals().Matched {
			t.Fatalf("%s: matched = %d, want %d", name, m.Totals().Matched, ref.Totals().Matched)
		}
		expectSameResults(t, name, ref, m, nq)
	}
	if v := variants["shards=1 batch"]; v.Totals() != ref.Totals() {
		t.Fatalf("shards=1 batch: totals = %+v, want %+v", v.Totals(), ref.Totals())
	}
}

// TestBatchEquivalenceAcrossRebuilds stresses the worker lifecycle:
// dynamic query churn forces shard-index rebuilds (which replace the
// persistent workers) between batches, and results must still match a
// single-shard monitor undergoing the same churn.
func TestBatchEquivalenceAcrossRebuilds(t *testing.T) {
	const nq = 60
	defs := defsFromWorkload(t, workload.Uniform, nq, 3, 12)
	extra := defsFromWorkload(t, workload.Uniform, 20, 3, 13)
	events := testEvents(t, 200, 91)

	mk := func(shards int) *Monitor {
		m, err := NewMonitor(Config{Lambda: 0.01, Shards: shards, RebuildThreshold: 2}, defs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	}
	ref, par := mk(1), mk(4)

	const chunk = 10
	added := 0
	for i := 0; i < len(events); i += chunk {
		evs := events[i:min(i+chunk, len(events))]
		at := evs[len(evs)-1].Time
		docs := make([]corpus.Document, len(evs))
		for j, ev := range evs {
			docs[j] = ev.Doc
		}
		for _, doc := range docs {
			if _, err := ref.Process(doc, at); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := par.ProcessBatch(docs, at); err != nil {
			t.Fatal(err)
		}
		// Alternate adds and removals to trip the rebuild threshold.
		if added < len(extra) {
			for _, m := range []*Monitor{ref, par} {
				if _, err := m.AddQuery(extra[added]); err != nil {
					t.Fatal(err)
				}
			}
			added++
		}
		if i/chunk%3 == 2 {
			victim := uint32(i / chunk % nq)
			for _, m := range []*Monitor{ref, par} {
				if err := m.RemoveQuery(victim); err != nil && !errors.Is(err, ErrRemovedQuery) {
					t.Fatal(err)
				}
			}
		}
	}
	if ref.NumQueries() != par.NumQueries() {
		t.Fatalf("query counts diverged: %d vs %d", ref.NumQueries(), par.NumQueries())
	}
	expectSameResults(t, "shards=4 batch + churn", ref, par, nq+added)
}

// TestMonitorClose verifies the worker shutdown contract.
func TestMonitorClose(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 40, 3, 14)
	events := testEvents(t, 50, 92)
	m, err := NewMonitor(Config{Lambda: 0.01, Shards: 4}, defs)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := m.Process(events[len(events)-1].Doc, 1e9); !errors.Is(err, ErrClosed) {
		t.Fatalf("Process after Close = %v, want ErrClosed", err)
	}
	if _, err := m.ProcessBatch([]corpus.Document{events[0].Doc}, 1e9); !errors.Is(err, ErrClosed) {
		t.Fatalf("ProcessBatch after Close = %v, want ErrClosed", err)
	}
	if _, err := m.AddQuery(defs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddQuery after Close = %v, want ErrClosed", err)
	}
	if err := m.RemoveQuery(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("RemoveQuery after Close = %v, want ErrClosed", err)
	}
	// Results stay readable on a closed monitor.
	if _, err := m.Top(0); err != nil {
		t.Fatalf("Top after Close: %v", err)
	}
}

// TestProcessBatchEmpty: an empty batch is a no-op.
func TestProcessBatchEmpty(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 10, 2, 15)
	m, err := NewMonitor(Config{Shards: 2}, defs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.ProcessBatch(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st != (EventStats{}) || m.Events() != 0 || m.Now() != 0 {
		t.Fatalf("empty batch mutated state: %+v events=%d now=%v", st, m.Events(), m.Now())
	}
}
