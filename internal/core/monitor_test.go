package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/workload"
)

func defsFromWorkload(t *testing.T, kind workload.Kind, n, k int, seed int64) []QueryDef {
	t.Helper()
	model := corpus.WikipediaModel(600)
	model.DocLenMedian = 20
	cfg := workload.DefaultConfig(kind, n)
	cfg.K = k
	cfg.Seed = seed
	qs, err := workload.Generate(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defs := make([]QueryDef, len(qs))
	for i, q := range qs {
		defs[i] = QueryDef{Vec: q.Vec, K: q.K}
	}
	return defs
}

func testEvents(t *testing.T, n int, seed int64) []stream.Event {
	t.Helper()
	model := corpus.WikipediaModel(600)
	model.DocLenMedian = 20
	gen := corpus.NewGenerator(model, seed, uint64(n))
	src, err := stream.NewSource(gen, 10, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return src.Take(n)
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	bad := []Config{
		{Algorithm: "bogus"},
		{Lambda: -1},
		{Shards: -2},
		{RebuildThreshold: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, name := range []string{"MRIO", "RIO", "RTA", "SortQuer", "TPS", "Exhaustive"} {
		if _, err := ParseAlgorithm(name); err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", name, err)
		}
	}
	if _, err := ParseAlgorithm("mrio"); err == nil {
		t.Error("lowercase accepted; names are case-sensitive")
	}
}

func TestMonitorEndToEnd(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 100, 3, 1)
	m, err := NewMonitor(Config{Lambda: 0.01}, defs)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumQueries() != 100 {
		t.Fatalf("NumQueries = %d", m.NumQueries())
	}
	var matched int
	for _, ev := range testEvents(t, 200, 50) {
		st, err := m.Process(ev.Doc, ev.Time)
		if err != nil {
			t.Fatal(err)
		}
		matched += st.Matched
	}
	if matched == 0 {
		t.Fatal("no query ever matched; fixture degenerate")
	}
	if m.Events() != 200 {
		t.Fatalf("Events = %d", m.Events())
	}
	if m.Totals().Matched != matched {
		t.Fatal("Totals mismatch")
	}
	someResults := 0
	for g := uint32(0); g < 100; g++ {
		top, err := m.Top(g)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(top); i++ {
			if top[i-1].Score < top[i].Score {
				t.Fatalf("query %d results out of order", g)
			}
		}
		someResults += len(top)
	}
	if someResults == 0 {
		t.Fatal("no results anywhere")
	}
}

// TestAlgorithmsAgreeThroughMonitor runs the full monitor stack under
// every algorithm and compares inflated results.
func TestAlgorithmsAgreeThroughMonitor(t *testing.T) {
	defs := defsFromWorkload(t, workload.Connected, 120, 3, 2)
	events := testEvents(t, 250, 60)
	algos := []Algorithm{AlgoExhaustive, AlgoMRIO, AlgoRIO, AlgoRTA, AlgoSortQuer, AlgoTPS}
	monitors := make([]*Monitor, len(algos))
	for i, a := range algos {
		m, err := NewMonitor(Config{Algorithm: a, Lambda: 0.02}, defs)
		if err != nil {
			t.Fatal(err)
		}
		monitors[i] = m
		for _, ev := range events {
			if _, err := m.Process(ev.Doc, ev.Time); err != nil {
				t.Fatal(err)
			}
		}
	}
	for g := uint32(0); g < 120; g++ {
		want, _ := monitors[0].TopInflated(g)
		for i, m := range monitors[1:] {
			got, _ := m.TopInflated(g)
			if len(got) != len(want) {
				t.Fatalf("%s: query %d: %d results vs oracle %d", algos[i+1], g, len(got), len(want))
			}
			for r := range got {
				if got[r].DocID != want[r].DocID {
					t.Fatalf("%s: query %d rank %d: doc %d vs %d", algos[i+1], g, r, got[r].DocID, want[r].DocID)
				}
			}
		}
	}
}

// TestShardingEquivalence: sharded processing must produce identical
// results to single-shard.
func TestShardingEquivalence(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 150, 3, 3)
	events := testEvents(t, 200, 70)
	single, err := NewMonitor(Config{Lambda: 0.01, Shards: 1}, defs)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewMonitor(Config{Lambda: 0.01, Shards: 4}, defs)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if _, err := single.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	for g := uint32(0); g < 150; g++ {
		a, _ := single.TopInflated(g)
		b, _ := sharded.TopInflated(g)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", g, len(a), len(b))
		}
		for i := range a {
			if a[i].DocID != b[i].DocID || math.Abs(a[i].Score-b[i].Score) > 1e-9 {
				t.Fatalf("query %d rank %d differs: %+v vs %+v", g, i, a[i], b[i])
			}
		}
	}
}

// TestDynamicAddQuery: a query added mid-stream must see later
// documents exactly like a pre-registered one does.
func TestDynamicAddQuery(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 50, 3, 4)
	events := testEvents(t, 300, 80)
	half := len(events) / 2

	// Reference: query registered from the start, fed only the second
	// half of the stream.
	ref, err := NewMonitor(Config{Lambda: 0.01}, defs)
	if err != nil {
		t.Fatal(err)
	}
	// Subject: query added at the halfway point of a running stream.
	sub, err := NewMonitor(Config{Lambda: 0.01}, defs[:30])
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[:half] {
		if _, err := sub.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	var added []uint32
	for _, d := range defs[30:] {
		g, err := sub.AddQuery(d)
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, g)
	}
	for _, ev := range events[half:] {
		if _, err := ref.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
		if _, err := sub.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	for i, g := range added {
		want, _ := ref.TopInflated(uint32(30 + i))
		got, _ := sub.TopInflated(g)
		if len(want) != len(got) {
			t.Fatalf("added query %d: %d results vs %d", g, len(got), len(want))
		}
		for r := range want {
			if want[r].DocID != got[r].DocID {
				t.Fatalf("added query %d rank %d: doc %d vs %d", g, r, got[r].DocID, want[r].DocID)
			}
		}
	}
}

// TestRebuildCarriesResults: forcing rebuilds must not lose state.
func TestRebuildCarriesResults(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 60, 3, 5)
	events := testEvents(t, 200, 90)
	m, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 2}, defs[:40])
	if err != nil {
		t.Fatal(err)
	}
	noReb, err := NewMonitor(Config{Lambda: 0.01, RebuildThreshold: 1 << 30}, defs[:40])
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		// Interleave adds to force rebuild churn in m only.
		if i%20 == 10 && i/20 < len(defs[40:]) {
			d := defs[40+i/20]
			if _, err := m.AddQuery(d); err != nil {
				t.Fatal(err)
			}
			if _, err := noReb.AddQuery(d); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
		if _, err := noReb.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	for g := uint32(0); g < uint32(m.NumQueries()); g++ {
		a, _ := m.TopInflated(g)
		b, _ := noReb.TopInflated(g)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results after rebuilds", g, len(a), len(b))
		}
		for i := range a {
			if a[i].DocID != b[i].DocID {
				t.Fatalf("query %d rank %d differs after rebuilds", g, i)
			}
		}
	}
}

func TestRemoveQuery(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 20, 2, 6)
	m, err := NewMonitor(Config{}, defs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveQuery(5); err != nil {
		t.Fatal(err)
	}
	if m.NumQueries() != 19 {
		t.Fatalf("NumQueries = %d", m.NumQueries())
	}
	if _, err := m.Top(5); !errors.Is(err, ErrRemovedQuery) {
		t.Fatalf("Top(removed) err = %v", err)
	}
	if err := m.RemoveQuery(5); !errors.Is(err, ErrRemovedQuery) {
		t.Fatalf("double remove err = %v", err)
	}
	if err := m.RemoveQuery(99); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("remove unknown err = %v", err)
	}
	// Stream still works and the removed query stays invisible.
	for _, ev := range testEvents(t, 50, 100) {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Top(5); !errors.Is(err, ErrRemovedQuery) {
		t.Fatal("removed query resurfaced")
	}
}

func TestTimeRegressionRejected(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 5, 1, 7)
	m, _ := NewMonitor(Config{}, defs)
	doc := corpus.Document{ID: 1, Vec: textproc.Vector{{Term: 1, Weight: 1}}}
	if _, err := m.Process(doc, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Process(doc, 5); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("regression err = %v", err)
	}
}

func TestAddQueryValidation(t *testing.T) {
	m, _ := NewMonitor(Config{}, defsFromWorkload(t, workload.Uniform, 5, 1, 8))
	if _, err := m.AddQuery(QueryDef{Vec: nil, K: 1}); err == nil {
		t.Fatal("empty vector accepted")
	}
	if _, err := m.AddQuery(QueryDef{Vec: textproc.Vector{{Term: 1, Weight: 1}}, K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := m.AddQuery(QueryDef{Vec: textproc.Vector{{Term: 1, Weight: math.NaN()}}, K: 1}); err == nil {
		t.Fatal("NaN weight accepted")
	}
}

func TestTopPresentScoresDecay(t *testing.T) {
	defs := []QueryDef{{Vec: textproc.Vector{{Term: 1, Weight: 1}}, K: 1}}
	m, err := NewMonitor(Config{Lambda: 0.5}, defs)
	if err != nil {
		t.Fatal(err)
	}
	doc := corpus.Document{ID: 7, Vec: textproc.Vector{{Term: 1, Weight: 0.8}}}
	if _, err := m.Process(doc, 0); err != nil {
		t.Fatal(err)
	}
	top, _ := m.Top(0)
	if len(top) != 1 || math.Abs(top[0].Score-0.8) > 1e-12 {
		t.Fatalf("fresh score = %+v", top)
	}
	// Advance time with an unrelated doc; the old result must decay.
	other := corpus.Document{ID: 8, Vec: textproc.Vector{{Term: 99, Weight: 1}}}
	if _, err := m.Process(other, 2); err != nil {
		t.Fatal(err)
	}
	top, _ = m.Top(0)
	want := 0.8 * math.Exp(-0.5*2)
	if math.Abs(top[0].Score-want) > 1e-12 {
		t.Fatalf("decayed score = %v, want %v", top[0].Score, want)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	defs := defsFromWorkload(t, workload.Uniform, 40, 3, 9)
	events := testEvents(t, 150, 110)
	m, err := NewMonitor(Config{Lambda: 0.01}, defs)
	if err != nil {
		t.Fatal(err)
	}
	half := len(events) / 2
	for _, ev := range events[:half] {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	now, base, results := m.DumpState()

	restored, err := NewMonitor(Config{Lambda: 0.01}, defs)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(now, base, results); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[half:] {
		if _, err := m.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Process(ev.Doc, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	for g := uint32(0); g < 40; g++ {
		a, _ := m.TopInflated(g)
		b, _ := restored.TopInflated(g)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results after restore", g, len(a), len(b))
		}
		for i := range a {
			if a[i].DocID != b[i].DocID {
				t.Fatalf("query %d rank %d differs after restore", g, i)
			}
		}
	}
}
