package bench

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/rangemax"
	"repro/internal/workload"
)

// paperSeries are the five algorithms of Figure 1, in the paper's
// legend order.
func paperSeries() []Series {
	return []Series{
		{Label: "RTA", Algo: core.AlgoRTA},
		{Label: "RIO", Algo: core.AlgoRIO},
		{Label: "MRIO", Algo: core.AlgoMRIO, Bound: rangemax.KindSegTree},
		{Label: "SortQuer", Algo: core.AlgoSortQuer},
		{Label: "TPS", Algo: core.AlgoTPS},
	}
}

// sizePoints builds the Figure 1 x-axis: response time vs number of
// queries.
func sizePoints(sc Scale, kind workload.Kind, k int, lambda float64) []Point {
	pts := make([]Point, 0, len(sc.QueryCounts))
	for _, n := range sc.QueryCounts {
		cfg := workload.DefaultConfig(kind, n)
		cfg.K = k
		cfg.Seed = sc.Seed
		pts = append(pts, Point{Param: float64(n), Queries: cfg, Lambda: lambda})
	}
	return pts
}

// defaultLambda gives recency a real but not dominant role: at the
// harness' 100 docs/s stream rate scores halve roughly every 7,000
// documents, so thresholds stay selective (the paper's steady state)
// while top-k sets still turn over and maintenance costs register.
const defaultLambda = 0.01

// Experiments builds the full registry for a scale. IDs follow
// DESIGN.md §5.
func Experiments(sc Scale) map[string]Experiment {
	model := corpus.WikipediaModel(sc.VocabSize)
	base := func(id, title, xlabel string) Experiment {
		return Experiment{
			ID: id, Title: title, XLabel: xlabel,
			Model:  model,
			Warmup: sc.Warmup, Measure: sc.Measure,
			Rate: sc.Rate, Seed: sc.Seed,
		}
	}
	exps := make(map[string]Experiment)

	fig1a := base("fig1a", "Figure 1(a) — Wiki-Uniform: response time vs number of queries", "queries")
	fig1a.Series = paperSeries()
	fig1a.Points = sizePoints(sc, workload.Uniform, 10, defaultLambda)
	exps[fig1a.ID] = fig1a

	fig1b := base("fig1b", "Figure 1(b) — Wiki-Connected: response time vs number of queries", "queries")
	fig1b.Series = paperSeries()
	fig1b.Points = sizePoints(sc, workload.Connected, 10, defaultLambda)
	exps[fig1b.ID] = fig1b

	extk := base("extk", "Extension (TKDE sweep) — effect of k", "k")
	extk.Series = paperSeries()
	for _, k := range []int{1, 5, 10, 20, 50} {
		cfg := workload.DefaultConfig(workload.Uniform, sc.BaseQueries)
		cfg.K = k
		cfg.Seed = sc.Seed
		extk.Points = append(extk.Points, Point{Param: float64(k), Queries: cfg, Lambda: defaultLambda})
	}
	exps[extk.ID] = extk

	extl := base("extlambda", "Extension (TKDE sweep) — effect of decay λ", "lambda")
	extl.Series = paperSeries()
	for _, l := range []float64{0, 0.0001, 0.001, 0.01} {
		cfg := workload.DefaultConfig(workload.Uniform, sc.BaseQueries)
		cfg.Seed = sc.Seed
		extl.Points = append(extl.Points, Point{Param: l, Queries: cfg, Lambda: l})
	}
	exps[extl.ID] = extl

	extq := base("extqlen", "Extension (TKDE sweep) — effect of query length", "terms/query")
	extq.Series = paperSeries()
	for _, ln := range []int{2, 3, 4, 5} {
		cfg := workload.DefaultConfig(workload.Uniform, sc.BaseQueries)
		cfg.MinTerms, cfg.MaxTerms = ln, ln
		cfg.Seed = sc.Seed
		extq.Points = append(extq.Points, Point{Param: float64(ln), Queries: cfg, Lambda: defaultLambda})
	}
	exps[extq.ID] = extq

	ablub := base("ablub", "Ablation — MRIO UB* implementations (seg vs block vs sparse)", "queries")
	ablub.Series = []Series{
		{Label: "MRIO-seg", Algo: core.AlgoMRIO, Bound: rangemax.KindSegTree},
		{Label: "MRIO-block", Algo: core.AlgoMRIO, Bound: rangemax.KindBlock},
		{Label: "MRIO-sparse", Algo: core.AlgoMRIO, Bound: rangemax.KindSparse},
	}
	ablub.Points = sizePoints(sc, workload.Uniform, 10, defaultLambda)
	exps[ablub.ID] = ablub

	// Sharding pays only when a single event carries real work, so the
	// scaling experiment uses the heavy Connected workload.
	abls := base("ablshard", "Extension — sharded parallel monitor scaling (MRIO, Connected)", "queries")
	for _, s := range []int{1, 2, 4, 8} {
		abls.Series = append(abls.Series, Series{
			Label: fmt.Sprintf("shards=%d", s),
			Algo:  core.AlgoMRIO, Bound: rangemax.KindSegTree, Shards: s,
		})
	}
	cfg := workload.DefaultConfig(workload.Connected, sc.BaseQueries)
	cfg.Seed = sc.Seed
	abls.Points = []Point{{Param: float64(sc.BaseQueries), Queries: cfg, Lambda: defaultLambda}}
	exps[abls.ID] = abls

	// Batch ingestion ablation: for each shard count, single-document
	// Process vs ProcessBatch in 64-document chunks. Both series of a
	// pair replay the identical collapsed timeline (PerDoc), so the
	// gap between them is exactly the per-document epoch bookkeeping
	// and worker rendezvous the batch path amortizes away.
	ablb := base("ablbatch", "Extension — batch vs single-document ingestion (MRIO, Connected)", "queries")
	for _, s := range []int{1, 2, 4, 8} {
		ablb.Series = append(ablb.Series,
			Series{
				Label: fmt.Sprintf("s%d-doc", s),
				Algo:  core.AlgoMRIO, Bound: rangemax.KindSegTree, Shards: s, Batch: 64, PerDoc: true,
			},
			Series{
				Label: fmt.Sprintf("s%d-b64", s),
				Algo:  core.AlgoMRIO, Bound: rangemax.KindSegTree, Shards: s, Batch: 64,
			})
	}
	bcfg := workload.DefaultConfig(workload.Connected, sc.BaseQueries)
	bcfg.Seed = sc.Seed
	ablb.Points = []Point{{Param: float64(sc.BaseQueries), Queries: bcfg, Lambda: defaultLambda}}
	exps[ablb.ID] = ablb

	// The push-notification fleet ablation ("ablnotify") runs its own
	// open-loop harness — see RunNotify in notify.go; it is dispatched
	// directly by cmd/ctkbench rather than through this registry.

	// Intra-shard parallelism ablation: the identical single-shard
	// timeline replayed at 1/2/4 matching workers per event. Unlike
	// ablshard (which partitions queries across independently-fed
	// shards), this measures how much one event's matching work can be
	// spread over cores — the lever for single-monitor latency.
	ablp := base("ablpar", "Extension — intra-shard parallel matching (MRIO, Connected)", "queries")
	for _, p := range []int{1, 2, 4} {
		ablp.Series = append(ablp.Series, Series{
			Label: fmt.Sprintf("par=%d", p),
			Algo:  core.AlgoMRIO, Bound: rangemax.KindSegTree, Shards: 1, Parallelism: p,
		})
	}
	pcfg := workload.DefaultConfig(workload.Connected, sc.BaseQueries)
	pcfg.Seed = sc.Seed
	ablp.Points = []Point{{Param: float64(sc.BaseQueries), Queries: pcfg, Lambda: defaultLambda}}
	exps[ablp.ID] = ablp

	// Cost-balanced partitioning ablation: the identical single-shard
	// timeline at 4 intra-shard workers under count (equal query
	// counts, the blind legacy split) vs mass (equal estimated posting
	// mass, plus observed-work adaptation) boundaries, on a skewed
	// workload (Hot: half the query IDs concentrated on a few hot
	// topic zones, so the hot block's posting mass dwarfs the tail's)
	// and on the balanced Uniform control. Per-event latency is
	// bounded by the slowest partition; the imb column (max/mean
	// per-partition busy time since the last boundary move) is the
	// metric mass partitioning is built to push toward 1.0, with
	// Uniform guarding against a regression where costs are already
	// even. The mass series runs its imbalance checks every 32 events
	// so the adaptation converges inside the short measure window —
	// the interesting case is precisely where the static mass estimate
	// mispredicts (pruning makes raw posting mass a poor proxy) and
	// the busy-time feedback has to move the boundaries.
	ablz := base("ablbalance", "Extension — cost-balanced intra-shard partitioning: count vs mass (MRIO, par=4)", "workload (1=Hot 2=Uniform)")
	// The experiment doubles the measure window and replays the first
	// half untimed (identically for both series), so the adaptive
	// boundaries converge before timing starts and the timed half —
	// the same length as every other experiment's window — measures
	// the steady state.
	ablz.Measure = 2 * sc.Measure
	for _, st := range []core.PartitionStrategy{core.PartitionCount, core.PartitionMass} {
		ablz.Series = append(ablz.Series, Series{
			Label: "par4-" + string(st),
			Algo:  core.AlgoMRIO, Bound: rangemax.KindSegTree,
			Shards: 1, Parallelism: 4, Partition: st,
			RepartitionWindow: 32, Adapt: sc.Measure,
		})
	}
	hcfg := workload.DefaultConfig(workload.Hot, sc.BaseQueries)
	hcfg.Seed = sc.Seed
	ucfg := workload.DefaultConfig(workload.Uniform, sc.BaseQueries)
	ucfg.Seed = sc.Seed
	ablz.Points = []Point{
		{Param: 1, Queries: hcfg, Lambda: defaultLambda},
		{Param: 2, Queries: ucfg, Lambda: defaultLambda},
	}
	exps[ablz.ID] = ablz

	return exps
}

// IDs returns the registry's experiment IDs, sorted.
func IDs(sc Scale) []string {
	exps := Experiments(sc)
	ids := make([]string, 0, len(exps))
	for id := range exps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
