package bench

import (
	"strings"
	"testing"
)

// diffFixture builds a baseline report covering every section the
// extractor knows, with recognizable values.
func diffFixture() *Report {
	return &Report{
		Scale: "quick",
		Experiments: []ReportSweep{{
			ID: "fig1a", Cells: []Cell{{Series: "MRIO", Param: 1000, MeanMS: 0.5}},
		}},
		Churn: &ChurnResult{Cells: []ChurnCell{
			{Series: "background", IngestMeanMS: 0.2, IngestP99MS: 1.5, AddP99MS: 0.8},
		}},
		Wal: &WALResult{Cells: []WALCell{
			{Series: "wal-interval", PubMeanMS: 0.3, PubP99MS: 2.0},
		}},
		Obs: &ObsResult{Cells: []ObsCell{
			{Series: "metrics-on", MSPerEvent: 0.25, AllocsPerEvent: 0},
		}},
		Hotpath: &HotpathResult{Cells: []HotpathCell{
			{Workload: "Hot", Algo: "MRIO", FlatMS: 0.07, LegacyMS: 0.08},
		}},
	}
}

func statusOf(t *testing.T, d *DiffResult, name string) string {
	t.Helper()
	for _, l := range d.Lines {
		if l.Name == name {
			return l.Status
		}
	}
	t.Fatalf("metric %q not in diff", name)
	return ""
}

// TestDiffFailsOnInjectedRegression is the comparator's reason to
// exist: a synthetic +50% ms/event regression and a synthetic
// allocs/event regression must both fail the comparison.
func TestDiffFailsOnInjectedRegression(t *testing.T) {
	base, cur := diffFixture(), diffFixture()
	cur.Hotpath.Cells[0].FlatMS = base.Hotpath.Cells[0].FlatMS * 1.5 // +50%
	cur.Obs.Cells[0].AllocsPerEvent = 1                              // was 0

	d := Diff(base, cur, DefaultDiffOptions())
	if d.Ok() || d.Regressions != 2 {
		t.Fatalf("want 2 regressions, got %d (ok=%v)", d.Regressions, d.Ok())
	}
	if s := statusOf(t, d, "hotpath/Hot/MRIO/flat-ms-per-event"); s != DiffRegression {
		t.Fatalf("ms regression status = %s", s)
	}
	if s := statusOf(t, d, "obs/metrics-on/allocs-per-event"); s != DiffRegression {
		t.Fatalf("alloc regression status = %s", s)
	}
	var sb strings.Builder
	d.Render(&sb)
	if !strings.Contains(sb.String(), "2 regression(s)") {
		t.Fatalf("render missing summary:\n%s", sb.String())
	}
}

// TestDiffNoiseFloor: percentage-large but absolutely-tiny wiggles on
// microsecond-scale cells must not fail (CI runners jitter by µs), and
// neither must sub-threshold relative drift on larger cells.
func TestDiffNoiseFloor(t *testing.T) {
	base, cur := diffFixture(), diffFixture()
	// +100% relative but only +2µs absolute: below the 5µs floor.
	base.Obs.Cells[0].MSPerEvent = 0.002
	cur.Obs.Cells[0].MSPerEvent = 0.004
	// +8% on a large cell: below the 10% relative bar.
	cur.Churn.Cells[0].IngestP99MS = base.Churn.Cells[0].IngestP99MS * 1.08

	d := Diff(base, cur, DefaultDiffOptions())
	if !d.Ok() {
		var sb strings.Builder
		d.Render(&sb)
		t.Fatalf("noise flagged as regression:\n%s", sb.String())
	}
}

// TestDiffSkipsMissingBaseline: a metric with no baseline counterpart
// (first run, renamed experiment) is reported but never fails; a
// metric that vanished is reported as removed.
func TestDiffSkipsMissingBaseline(t *testing.T) {
	base, cur := diffFixture(), diffFixture()
	base.Hotpath = nil                           // current hotpath cells are new
	cur.Wal = nil                                // wal cells vanished
	cur.Churn.Cells[0].IngestMeanMS = 1e9        // absurd, but...
	cur.Churn.Cells[0].Series = "new-mode"       // ...under a new name: skipped
	base.Churn.Cells[0].IngestMeanMS = 0.0000001 // old name also skipped (gone)

	d := Diff(base, cur, DefaultDiffOptions())
	if !d.Ok() {
		var sb strings.Builder
		d.Render(&sb)
		t.Fatalf("missing-baseline metrics failed the diff:\n%s", sb.String())
	}
	if s := statusOf(t, d, "hotpath/Hot/MRIO/flat-ms-per-event"); s != DiffNew {
		t.Fatalf("new metric status = %s", s)
	}
	if s := statusOf(t, d, "wal/wal-interval/pub-mean-ms"); s != DiffGone {
		t.Fatalf("gone metric status = %s", s)
	}
}

// TestDiffReportsImprovement: a big speedup is labeled, not failed.
func TestDiffReportsImprovement(t *testing.T) {
	base, cur := diffFixture(), diffFixture()
	cur.Hotpath.Cells[0].FlatMS = base.Hotpath.Cells[0].FlatMS / 2

	d := Diff(base, cur, DefaultDiffOptions())
	if !d.Ok() {
		t.Fatal("improvement failed the diff")
	}
	if s := statusOf(t, d, "hotpath/Hot/MRIO/flat-ms-per-event"); s != DiffImproved {
		t.Fatalf("improvement status = %s", s)
	}
}
