package bench

import (
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/rangemax"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/workload"
)

func warmFixture(t *testing.T, lambda float64) (*index.Index, []stream.Event) {
	t.Helper()
	model := corpus.WikipediaModel(2000)
	model.DocLenMedian = 25
	qs, err := workload.Generate(model, workload.DefaultConfig(workload.Uniform, 400))
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([]textproc.Vector, len(qs))
	ks := make([]int, len(qs))
	for i, q := range qs {
		vecs[i] = q.Vec
		ks[i] = q.K
	}
	ix, err := index.Build(vecs, ks)
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(model, 5, 2000)
	src, err := stream.NewSource(gen, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	return ix, src.Take(800)
}

func TestWarmUpInjectsFullHeaps(t *testing.T) {
	ix, events := warmFixture(t, 0.001)
	ws, err := warmUp(ix, events, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	warmQueries := 0
	for q, docs := range ws.results {
		if len(docs) != ix.K(q) {
			t.Fatalf("query %d got %d phantom results, want k=%d", q, len(docs), ix.K(q))
		}
		// Phantom entries must be strictly ordered and carry phantom IDs.
		for i, d := range docs {
			if d.DocID < phantomBase {
				t.Fatalf("query %d phantom %d has real-range ID %d", q, i, d.DocID)
			}
			if i > 0 && docs[i-1].Score <= d.Score {
				t.Fatalf("query %d phantom scores not descending: %+v", q, docs)
			}
		}
		warmQueries++
	}
	if warmQueries < 300 {
		t.Fatalf("only %d/400 queries warmed; fixture too sparse", warmQueries)
	}
}

func TestWarmUpQuasiStaticUplift(t *testing.T) {
	ix, events := warmFixture(t, 0)
	ws, err := warmUp(ix, events, 0) // λ=0: quasi-static, uplift applies
	if err != nil {
		t.Fatal(err)
	}
	// Under zero decay, phantom thresholds must exceed every warm-up
	// score (the extrapolation projects a longer history): re-running
	// the same warm-up events against the injected state must admit
	// almost nothing new.
	procEvents := events[:200]
	ixAlgoProc, err := newWarmProc(ix, ws)
	if err != nil {
		t.Fatal(err)
	}
	var matched int
	for _, ev := range procEvents {
		m := ixAlgoProc.ProcessEvent(ev.Doc, 1)
		matched += m.Matched
	}
	if matched > len(procEvents)/2 {
		t.Fatalf("steady state not selective: %d matches over %d replayed events", matched, len(procEvents))
	}
}

func TestWarmUpDecayRegimeSkipsUplift(t *testing.T) {
	ix, events := warmFixture(t, 0.5)
	// λ·span ≫ 1: the uplift path must be skipped (warm-up IS steady
	// state). The injected scores then equal observed bests exactly.
	ws, err := warmUp(ix, events, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.results) == 0 {
		t.Fatal("nothing warmed")
	}
	if ws.base < 0 {
		t.Fatal("negative decay base")
	}
}

func TestWarmUpEmptyEvents(t *testing.T) {
	ix, _ := warmFixture(t, 0)
	ws, err := warmUp(ix, nil, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.results) != 0 {
		t.Fatal("warm state from empty stream should be cold")
	}
}

func TestRenderContainsAllSeries(t *testing.T) {
	sc := tinyScale()
	exp := Experiments(sc)["ablub"]
	exp.Points = exp.Points[:1]
	res, err := Run(exp, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, s := range exp.Series {
		if !strings.Contains(out, s.Label) {
			t.Fatalf("render missing series %s:\n%s", s.Label, out)
		}
	}
}

// newWarmProc builds an MRIO processor pre-loaded with a warm state.
func newWarmProc(ix *index.Index, ws *warmState) (algo.Processor, error) {
	proc, err := algo.NewMRIO(ix, rangemax.KindSegTree)
	if err != nil {
		return nil, err
	}
	ws.load(proc)
	return proc, nil
}
