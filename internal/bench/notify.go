package bench

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/notify"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/textproc"
)

// ping is the payload of the notify ablation: the wall-clock instant
// the change left the ingestion path, so each subscriber can measure
// end-to-end delivery latency on receipt.
type ping struct {
	sent time.Time
	seq  uint64
}

// runNotifyCell measures the push-delivery pipeline: a monitor whose
// exact per-event change sets feed a coalescing broker with s.Subs
// subscribers spread round-robin over the query set, each drained by
// its own consumer goroutine. The cell reports
//
//	MeanMS     — mean per-event ingestion time including the publish
//	             fan-out (the throughput cost of push delivery),
//	P50/P95MS  — delivery latency percentiles, ingestion → receipt,
//	Evaluated  — mean updates delivered per event.
func runNotifyCell(s Series, pt Point, vecs []textproc.Vector, ks []int, warm *warmState, measure []stream.Event) (Cell, error) {
	cell := Cell{Series: s.Label, Param: pt.Param}
	defs := make([]core.QueryDef, len(vecs))
	for i := range vecs {
		defs[i] = core.QueryDef{Vec: vecs[i], K: ks[i]}
	}
	shards := s.Shards
	if shards < 1 {
		shards = 1
	}
	mon, err := core.NewMonitor(core.Config{
		Algorithm:   s.Algo,
		Bound:       s.Bound,
		Lambda:      pt.Lambda,
		Shards:      shards,
		Parallelism: s.Parallelism,
	}, defs)
	if err != nil {
		return cell, err
	}
	defer mon.Close()
	if err := mon.RestoreState(warm.base, warm.base, warm.results); err != nil {
		return cell, err
	}

	broker := notify.New[ping]()
	mon.SetChangeHandler(func(ids []uint32) {
		now := time.Now()
		for _, g := range ids {
			broker.Publish(g, func(seq uint64) ping { return ping{sent: now, seq: seq} })
		}
	})

	// Subscribers spread over the whole query set (prime stride, so
	// coverage has no ID locality), one consumer goroutine each,
	// recording latencies locally (merged after join).
	nq := len(vecs)
	lats := make([][]time.Duration, s.Subs)
	var wg sync.WaitGroup
	for i := 0; i < s.Subs; i++ {
		sub, err := broker.Subscribe(uint32(i*7919%nq), 1)
		if err != nil {
			return cell, err
		}
		wg.Add(1)
		go func(i int, sub *notify.Subscription[ping]) {
			defer wg.Done()
			for p := range sub.C() {
				lats[i] = append(lats[i], time.Since(p.sent))
			}
		}(i, sub)
	}

	var evSample stats.Sample
	var total time.Duration
	for _, ev := range measure {
		start := time.Now()
		if _, err := mon.Process(ev.Doc, ev.Time); err != nil {
			broker.Close()
			wg.Wait()
			return cell, err
		}
		d := time.Since(start)
		total += d
		evSample.AddDuration(d)
	}
	// Closing the broker ends every subscription channel, so the
	// consumers drain what was delivered and exit.
	broker.Close()
	wg.Wait()

	var latSample stats.Sample
	delivered := 0
	for _, ls := range lats {
		delivered += len(ls)
		for _, d := range ls {
			latSample.AddDuration(d)
		}
	}
	n := float64(len(measure))
	cell.MeanMS = total.Seconds() * 1000 / n
	cell.P50MS = latSample.Percentile(50)
	cell.P95MS = latSample.Percentile(95)
	cell.Evaluated = float64(delivered) / n
	return cell, nil
}
