package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/notify"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/workload"
)

// NotifyCell is one subscriber-fleet size's measurement over the shared
// stream: what the publish path paid with the fleet attached, and what
// the drain tier did with the resulting change records.
type NotifyCell struct {
	Series string
	Subs   int
	// PubMeanMS / PubP99MS are the publisher's in-process time per
	// event — matching plus the broker enqueue, the only fan-out cost
	// left on the hot path. The headline claim is that PubP99MS stays
	// near the 0-subscriber baseline at every fleet size.
	PubMeanMS, PubP99MS float64
	// DeliverP99MS is the drain-tier delivery latency p99: publish to
	// handed-to-subscriber-buffer, from the ctk_notify_drain_latency
	// histogram (one observation per materialized topic update).
	DeliverP99MS float64
	// UpdatesPerEvent counts sequence bumps (changed queries) per
	// event; DeliveriesPerEvent counts updates handed to subscriber
	// buffers per event.
	UpdatesPerEvent, DeliveriesPerEvent float64
	// CoalesceRate is the fraction of handed deliveries later
	// overwritten unread by a newer state (drops / deliveries) — the
	// latest-value coalescing a slow or absent reader triggers.
	CoalesceRate float64
	// FilterRate is the fraction of attempted deliveries suppressed by
	// per-subscriber drain-side filters (filtered / (filtered +
	// deliveries)); half the fleet runs a coarsening filter.
	FilterRate float64
}

// NotifyResult is the ablnotify experiment: the identical warm stream
// replayed on an open-loop arrival schedule against subscriber fleets
// of increasing size, with Zipf-skewed topic popularity (mass-audience
// queries get most of the watchers, as production fan-out does).
type NotifyResult struct {
	Title   string
	Queries int // registered queries (fan-out topics)
	Events  int // timed stream events per cell
	Shards  int // broker shards (GOMAXPROCS-scaled power of two)
	Cells   []NotifyCell
	// StallRatio is PubP99MS at the largest fleet over PubP99MS with no
	// subscribers — how much publish-path tail the full fleet costs.
	// With delivery off the hot path this should hover near 1.0.
	StallRatio float64
}

// NotifyTitle is the ablnotify experiment's title, shared by the
// harness report and the CLI's experiment listing.
const NotifyTitle = "Extension — sharded async fan-out: subscriber fleets vs publish-path stall (MRIO, Connected)"

// notifyFleets are the fleet sizes RunNotify sweeps; the 0 cell is the
// no-subscriber baseline the stall ratio normalizes against.
var notifyFleets = []int{0, 1_000, 10_000, 100_000}

// notifyInterval is the open-loop arrival period: events are released
// on a fixed wall-clock schedule (sleep-to-schedule, never
// back-to-back), so a cell whose publish path stalls accumulates
// schedule debt instead of silently slowing the arrival process — the
// workload-driver discipline of the ReqBench-style harnesses.
const notifyInterval = 500 * time.Microsecond

// notifyMaxReaders bounds the consumer goroutines per cell: a sampled
// subset of the fleet actively drains its channel (exercising delivery
// concurrent with consumption); the rest are buffer-parked watchers,
// which is also the realistic shape — at 100k subscribers most SSE
// clients are idle between flushes, and drop-oldest coalescing means
// an unread buffer never blocks the drain.
const notifyMaxReaders = 64

// ping is the delivery payload: the wall-clock instant the change left
// the ingestion path (stamped per query by the change handler) and the
// topic sequence, which the coarsening filter thresholds on.
type ping struct {
	sent int64 // UnixNano at enqueue
	seq  uint64
}

// RunNotify measures the ablnotify experiment at the given scale:
// one warm Connected workload, replayed per fleet size.
func RunNotify(sc Scale, out io.Writer) (*NotifyResult, error) {
	return runNotifyFleet(sc, notifyFleets, out)
}

// runNotifyFleet is RunNotify parameterized over fleet sizes (tests
// run tiny fleets).
func runNotifyFleet(sc Scale, fleets []int, out io.Writer) (*NotifyResult, error) {
	model := corpus.WikipediaModel(sc.VocabSize)
	qcfg := workload.DefaultConfig(workload.Connected, sc.BaseQueries)
	qcfg.Seed = sc.Seed
	qs, err := workload.Generate(model, qcfg)
	if err != nil {
		return nil, fmt.Errorf("bench ablnotify: workload: %w", err)
	}
	vecs := make([]textproc.Vector, len(qs))
	ks := make([]int, len(qs))
	for i, q := range qs {
		vecs[i], ks[i] = q.Vec, q.K
	}
	ix, err := index.Build(vecs, ks)
	if err != nil {
		return nil, err
	}
	gen := corpus.NewGenerator(model, sc.Seed+101, uint64(sc.Warmup+sc.Measure))
	src, err := stream.NewSource(gen, sc.Rate, sc.Seed+202)
	if err != nil {
		return nil, err
	}
	events := src.Take(sc.Warmup + sc.Measure)
	warm, err := warmUp(ix, events[:sc.Warmup], defaultLambda)
	if err != nil {
		return nil, fmt.Errorf("bench ablnotify: warm-up: %w", err)
	}
	measure := events[sc.Warmup:]

	res := &NotifyResult{
		Title:   NotifyTitle,
		Queries: len(vecs),
		Events:  len(measure),
	}
	for _, subs := range fleets {
		cell, shards, err := runNotifyCell(sc, subs, vecs, ks, warm, measure)
		if err != nil {
			return nil, fmt.Errorf("bench ablnotify: %s: %w", cell.Series, err)
		}
		res.Shards = shards
		res.Cells = append(res.Cells, cell)
		if out != nil {
			fmt.Fprintf(out, "  %-12s pub mean=%8.4fms p99=%8.4fms  deliver p99=%8.4fms  del/ev=%7.2f coalesce=%.2f filter=%.2f\n",
				cell.Series, cell.PubMeanMS, cell.PubP99MS, cell.DeliverP99MS,
				cell.DeliveriesPerEvent, cell.CoalesceRate, cell.FilterRate)
		}
	}
	if n := len(res.Cells); n > 1 && res.Cells[0].PubP99MS > 0 {
		res.StallRatio = res.Cells[n-1].PubP99MS / res.Cells[0].PubP99MS
	}
	return res, nil
}

// runNotifyCell replays the measure window against one fleet size:
// fresh monitor restored to the shared warm state, fresh broker, subs
// subscriptions Zipf-assigned over the query set (skew 1.2 — a few
// mass-audience queries absorb most of the fleet), half of them behind
// a coarsening filter (deliver only every second change), a sampled
// subset actively reading.
func runNotifyCell(sc Scale, subs int, vecs []textproc.Vector, ks []int, warm *warmState, measure []stream.Event) (NotifyCell, int, error) {
	cell := NotifyCell{Series: fmt.Sprintf("subs=%d", subs), Subs: subs}
	nq := len(vecs)
	defs := make([]core.QueryDef, nq)
	for i := range vecs {
		defs[i] = core.QueryDef{Vec: vecs[i], K: ks[i]}
	}
	mon, err := core.NewMonitor(core.Config{
		Algorithm: core.AlgoMRIO,
		Lambda:    defaultLambda,
		Shards:    1,
	}, defs)
	if err != nil {
		return cell, 0, err
	}
	defer mon.Close()
	if err := mon.RestoreState(warm.base, warm.base, warm.results); err != nil {
		return cell, 0, err
	}

	// pubAt carries the per-query enqueue instant from the change
	// handler to the drain-side materializer, so every materialized
	// update knows when its change left the publish path.
	pubAt := make([]atomic.Int64, nq)
	var broker *notify.Broker[ping]
	broker = notify.NewWith(notify.Options[ping]{
		Materialize: func(id uint32) (ping, uint64, bool) {
			seq := broker.Seq(id)
			return ping{sent: pubAt[id].Load(), seq: seq}, seq, true
		},
	})
	reg := obs.NewRegistry()
	ins := notify.Instruments{
		Updates:      reg.Counter("updates", "sequence bumps", nil),
		Deliveries:   reg.Counter("deliveries", "handed to buffers", nil),
		Drops:        reg.Counter("drops", "coalesced away", nil),
		Filtered:     reg.Counter("filtered", "suppressed by filters", nil),
		DrainLatency: reg.Histogram("drain_latency", "publish to buffer", nil),
	}
	broker.SetInstruments(ins)
	mon.SetChangeHandler(func(ids []uint32) {
		now := time.Now().UnixNano()
		for _, g := range ids {
			pubAt[g].Store(now)
			broker.Publish(g)
		}
	})

	// Build the fleet. Zipf skew concentrates watchers on a few hot
	// queries; once the fleet outgrows the query set, every query also
	// keeps one long-tail watcher (so a fleet of 100k over 4k queries
	// is 4k tail + 96k crowd, and delivery coverage is deterministic).
	// The coarsening filter on every second subscriber only passes a
	// delivery when the topic moved at least two sequence numbers
	// since the last one it saw.
	rng := rand.New(rand.NewSource(sc.Seed + 303))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(nq-1))
	coarse := func(prev, next ping) bool { return next.seq >= prev.seq+2 }
	readerStride := 1
	if subs > notifyMaxReaders {
		readerStride = subs / notifyMaxReaders
	}
	var readers sync.WaitGroup
	for i := 0; i < subs; i++ {
		o := notify.SubOptions[ping]{Buffer: 1}
		if i%2 == 1 {
			o.Filter = coarse
		}
		read := i%readerStride == 0
		if read {
			o.Buffer = 4
		}
		topic := uint32(zipf.Uint64())
		if subs >= nq && i < nq {
			topic = uint32(i)
		}
		sub, err := broker.SubscribeOpts(topic, o)
		if err != nil {
			broker.Close()
			return cell, 0, err
		}
		if read {
			readers.Add(1)
			go func(sub *notify.Subscription[ping]) {
				defer readers.Done()
				for range sub.C() {
				}
			}(sub)
		}
	}

	// Open-loop replay: release events on the fixed schedule and time
	// only the in-process publish path (matching + change enqueue).
	var sample stats.Sample
	start := time.Now()
	for i, ev := range measure {
		if d := time.Until(start.Add(time.Duration(i) * notifyInterval)); d > 0 {
			time.Sleep(d)
		}
		t0 := time.Now()
		if _, err := mon.Process(ev.Doc, ev.Time); err != nil {
			broker.Close()
			readers.Wait()
			return cell, 0, err
		}
		sample.AddDuration(time.Since(t0))
	}
	// Drain the intake completely so the delivery counters and the
	// latency histogram cover every change, then end the streams.
	broker.Flush()
	updates := float64(ins.Updates.Value())
	deliveries := float64(ins.Deliveries.Value())
	drops := float64(ins.Drops.Value())
	filtered := float64(ins.Filtered.Value())
	shards := broker.NumShards()
	broker.Close()
	readers.Wait()

	n := float64(len(measure))
	cell.PubMeanMS = sample.Mean()
	cell.PubP99MS = sample.Percentile(99)
	cell.DeliverP99MS = ins.DrainLatency.Quantile(0.99) / 1e6
	cell.UpdatesPerEvent = updates / n
	cell.DeliveriesPerEvent = deliveries / n
	if deliveries > 0 {
		cell.CoalesceRate = drops / deliveries
	}
	if filtered+deliveries > 0 {
		cell.FilterRate = filtered / (filtered + deliveries)
	}
	return cell, shards, nil
}

// Render prints the fleet sweep in the harness' table style.
func (r *NotifyResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	fmt.Fprintf(w, "queries=%d events=%d broker-shards=%d\n", r.Queries, r.Events, r.Shards)
	fmt.Fprintf(w, "%-12s %12s %12s %14s %10s %10s %8s\n",
		"fleet", "pub-mean-ms", "pub-p99-ms", "deliver-p99-ms", "del/event", "coalesce", "filter")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-12s %12.4f %12.4f %14.4f %10.2f %10.2f %8.2f\n",
			c.Series, c.PubMeanMS, c.PubP99MS, c.DeliverP99MS,
			c.DeliveriesPerEvent, c.CoalesceRate, c.FilterRate)
	}
	fmt.Fprintf(w, "publish-path p99 stall ratio (largest fleet / no subscribers) = %.2f\n\n", r.StallRatio)
}
