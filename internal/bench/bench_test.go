package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rangemax"
	"repro/internal/workload"
)

// tinyScale keeps harness unit tests fast.
func tinyScale() Scale {
	return Scale{
		QueryCounts: []int{500, 1000},
		BaseQueries: 800,
		VocabSize:   3000,
		Warmup:      600,
		Measure:     30,
		Rate:        100,
		Seed:        7,
	}
}

func TestExperimentRegistry(t *testing.T) {
	sc := tinyScale()
	exps := Experiments(sc)
	for _, id := range []string{"fig1a", "fig1b", "extk", "extlambda", "extqlen", "ablub", "ablshard", "ablbatch", "ablpar", "ablbalance"} {
		e, ok := exps[id]
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		if len(e.Series) == 0 || len(e.Points) == 0 {
			t.Fatalf("experiment %s is empty", id)
		}
		if e.Title == "" || e.XLabel == "" {
			t.Fatalf("experiment %s lacks labels", id)
		}
	}
	if len(IDs(sc)) != len(exps) {
		t.Fatal("IDs() inconsistent with registry")
	}
}

func TestFig1SweepShape(t *testing.T) {
	sc := tinyScale()
	exp := Experiments(sc)["fig1a"]
	if len(exp.Points) != len(sc.QueryCounts) {
		t.Fatalf("fig1a points = %d", len(exp.Points))
	}
	labels := map[string]bool{}
	for _, s := range exp.Series {
		labels[s.Label] = true
	}
	for _, want := range []string{"RTA", "RIO", "MRIO", "SortQuer", "TPS"} {
		if !labels[want] {
			t.Fatalf("fig1a missing series %s", want)
		}
	}
}

func TestRunProducesAllCells(t *testing.T) {
	sc := tinyScale()
	exp := Experiments(sc)["fig1a"]
	// Shrink to 2 series × 2 points for speed.
	exp.Series = exp.Series[:2]
	exp.Points = exp.Points[:2]
	res, err := Run(exp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.MeanMS < 0 {
			t.Fatalf("negative timing in %+v", c)
		}
	}
}

func TestRunNotifyFleet(t *testing.T) {
	sc := tinyScale()
	// 1000 ≥ BaseQueries, so the long-tail layer covers every query
	// and delivery is deterministic (any change reaches a watcher).
	res, err := runNotifyFleet(sc, []int{0, 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	base, fleet := res.Cells[0], res.Cells[1]
	if base.Subs != 0 || fleet.Subs != 1000 {
		t.Fatalf("cell order: %+v", res.Cells)
	}
	if fleet.Series != "subs=1000" {
		t.Fatalf("series label: %q", fleet.Series)
	}
	if fleet.UpdatesPerEvent <= 0 {
		t.Fatal("no sequence bumps recorded; the change handler is dead")
	}
	if fleet.DeliveriesPerEvent <= 0 {
		t.Fatal("no deliveries; the drain tier is dead")
	}
	if base.DeliveriesPerEvent != 0 {
		t.Fatalf("baseline cell delivered %v/event with zero subscribers", base.DeliveriesPerEvent)
	}
	for _, c := range res.Cells {
		if c.PubMeanMS < 0 || c.PubP99MS < 0 || c.DeliverP99MS < 0 {
			t.Fatalf("negative timing: %+v", c)
		}
	}
	if res.Shards < 1 || res.Shards&(res.Shards-1) != 0 {
		t.Fatalf("broker shards = %d, want a power of two", res.Shards)
	}
	if res.StallRatio <= 0 {
		t.Fatalf("stall ratio = %v, want > 0", res.StallRatio)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "subs=1000") || !strings.Contains(buf.String(), "stall ratio") {
		t.Fatalf("render output missing data:\n%s", buf.String())
	}
}

func TestRunShardSeries(t *testing.T) {
	sc := tinyScale()
	exp := Experiments(sc)["ablshard"]
	exp.Series = exp.Series[:2] // shards=1, shards=2
	res, err := Run(exp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
}

// TestRunBalanceSeries: the partition-balance ablation produces a
// cell per strategy × workload and fills the Imbalance metric for
// every intra-shard-parallel series. (Whether mass actually beats
// count is asserted at the algorithmic level in internal/algo, where
// it is deterministic; wall-clock ratios at tiny scale are noise.)
func TestRunBalanceSeries(t *testing.T) {
	sc := tinyScale()
	exp := Experiments(sc)["ablbalance"]
	if len(exp.Series) != 2 || len(exp.Points) != 2 {
		t.Fatalf("ablbalance shape: %d series × %d points", len(exp.Series), len(exp.Points))
	}
	for _, s := range exp.Series {
		if s.Parallelism < 2 || s.Partition == "" {
			t.Fatalf("series %+v lacks partitioning", s)
		}
	}
	if exp.Points[0].Queries.Kind != workload.Hot || exp.Points[1].Queries.Kind != workload.Uniform {
		t.Fatalf("ablbalance workloads: %v / %v", exp.Points[0].Queries.Kind, exp.Points[1].Queries.Kind)
	}
	res, err := Run(exp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Imbalance < 1 {
			t.Fatalf("cell %q imbalance %v; max/mean must be ≥ 1", c.Series, c.Imbalance)
		}
		if c.MeanMS < 0 {
			t.Fatalf("negative timing in %+v", c)
		}
	}
}

func TestTableAndRender(t *testing.T) {
	res := &Result{
		Exp: Experiment{
			Title: "demo", XLabel: "queries",
			Series: []Series{{Label: "RTA"}, {Label: "MRIO"}},
		},
		Cells: []Cell{
			{Series: "RTA", Param: 1000, MeanMS: 25},
			{Series: "MRIO", Param: 1000, MeanMS: 1},
			{Series: "RTA", Param: 500, MeanMS: 12},
			{Series: "MRIO", Param: 500, MeanMS: 0.6},
		},
	}
	tab := res.Table()
	if len(tab.XValues) != 2 || tab.XValues[0] != 500 {
		t.Fatalf("table x order: %+v", tab.XValues)
	}
	if tab.MS[1][0] != 25 || tab.MS[1][1] != 1 {
		t.Fatalf("table values: %+v", tab.MS)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "25.000") {
		t.Fatalf("render output missing data:\n%s", out)
	}
	if !strings.Contains(out, "speedup of MRIO") || !strings.Contains(out, "25.0x vs RTA") {
		t.Fatalf("render lacks speedup line:\n%s", out)
	}
	if got := res.Speedup("RTA", "MRIO"); got != 25 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := res.Speedup("RTA", "nope"); got != 0 {
		t.Fatalf("Speedup with missing series = %v", got)
	}
}

// TestReproductionShapeAtSmallScale is the reproduction smoke test.
// Wall-clock constants at tiny scale are dominated by machine noise,
// so the assertions target the scale-independent facts the paper's
// claims rest on:
//
//  1. MRIO evaluates (far) fewer queries per event than every
//     frequency-ordered baseline — the paper's optimality claim;
//  2. MRIO never evaluates more than RIO (local vs global bounds);
//  3. response time grows with the number of queries for every
//     algorithm (the x-axis trend of Figure 1).
func TestReproductionShapeAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction smoke test skipped in -short")
	}
	sc := tinyScale()
	sc.QueryCounts = []int{1000, 4000}
	sc.Measure = 60
	exp := Experiments(sc)["fig1b"]
	res, err := Run(exp, nil)
	if err != nil {
		t.Fatal(err)
	}
	eval := map[string]map[float64]float64{}
	ms := map[string]map[float64]float64{}
	for _, c := range res.Cells {
		if eval[c.Series] == nil {
			eval[c.Series] = map[float64]float64{}
			ms[c.Series] = map[float64]float64{}
		}
		eval[c.Series][c.Param] = c.Evaluated
		ms[c.Series][c.Param] = c.MeanMS
	}
	const big = 4000
	for _, baseline := range []string{"RTA", "SortQuer", "TPS"} {
		if eval["MRIO"][big] >= eval[baseline][big] {
			t.Errorf("MRIO evaluated %.1f/event, %s %.1f — pruning advantage missing",
				eval["MRIO"][big], baseline, eval[baseline][big])
		}
	}
	if eval["MRIO"][big] > eval["RIO"][big] {
		t.Errorf("MRIO evaluated %.1f > RIO %.1f: local bounds must not lose to global",
			eval["MRIO"][big], eval["RIO"][big])
	}
	for _, s := range []string{"RTA", "RIO", "MRIO", "SortQuer", "TPS"} {
		if ms[s][big] <= ms[s][1000]*0.8 {
			t.Errorf("%s: response time did not grow with query count (%.3f → %.3f)",
				s, ms[s][1000], ms[s][big])
		}
	}
}

func TestSeriesConstruction(t *testing.T) {
	s := Series{Label: "MRIO-block", Algo: core.AlgoMRIO, Bound: rangemax.KindBlock}
	if s.Shards != 0 {
		t.Fatal("zero value expected")
	}
	cfg := workload.DefaultConfig(workload.Uniform, 10)
	if cfg.K != 10 {
		t.Fatal("unexpected default")
	}
}
