package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/workload"
)

// ChurnCell is one rebuild mode's measurement under sustained query
// churn: ingestion latency per event, registration latency per add,
// and what the generation machinery did meanwhile.
type ChurnCell struct {
	Series string
	// Per-event ingestion latency (ms). Under background rebuilds the
	// tail contains only the install swap (dump + restore of carried
	// results); under sync rebuilds ingestion is clean but the add
	// path pays the whole build.
	IngestMeanMS, IngestP50MS, IngestP99MS, IngestMaxMS float64
	// Per-AddQuery latency (ms): the headline number — O(|q|) plus, in
	// sync mode, a full generation build whenever the budget trips.
	AddMeanMS, AddP50MS, AddP99MS, AddMaxMS float64
	// Per-RemoveQuery latency (ms): tombstoning is O(1).
	RemoveP99MS float64
	// Generations/Builds/FailedBuilds summarize the generation
	// machinery; LastBuildMS is the final build's wall time.
	Generations, Builds, FailedBuilds uint64
	LastBuildMS                       float64
	// FinalQueries is the live query count at the end of the run.
	FinalQueries int
}

// ChurnResult is the ablchurn experiment: legacy synchronous rebuilds
// versus generational background rebuilds on the identical
// churn-under-load timeline.
type ChurnResult struct {
	Title            string
	Queries          int // initial registered queries
	Events           int // timed stream events
	ChurnPerEvent    int // adds + removes interleaved per event
	RebuildThreshold int
	Cells            []ChurnCell
}

// ChurnTitle is the ablchurn experiment's title, shared by the
// harness report and the CLI's experiment listing.
const ChurnTitle = "Extension — query churn under load: sync vs background generation rebuilds (MRIO, Connected)"

// churnThreshold picks a rebuild budget that trips several generation
// builds inside the measure window (two mutations per event).
func churnThreshold(measure int) int {
	return max(16, 2*measure/5)
}

// RunChurn measures the ablchurn experiment at the given scale: a
// monitor with sc.BaseQueries warm queries ingests the measure stream
// while every event is followed by one registration and one
// unregistration, under sync and background rebuild modes on identical
// timelines. The two series are parity-checked against each other
// (bit-identical results) before returning, so the ablation doubles as
// an exactness gate.
func RunChurn(sc Scale, out io.Writer) (*ChurnResult, error) {
	model := corpus.WikipediaModel(sc.VocabSize)

	qcfg := workload.DefaultConfig(workload.Connected, sc.BaseQueries)
	qcfg.Seed = sc.Seed
	qs, err := workload.Generate(model, qcfg)
	if err != nil {
		return nil, fmt.Errorf("bench ablchurn: workload: %w", err)
	}
	vecs := make([]textproc.Vector, len(qs))
	ks := make([]int, len(qs))
	defs := make([]core.QueryDef, len(qs))
	for i, q := range qs {
		vecs[i], ks[i] = q.Vec, q.K
		defs[i] = core.QueryDef{Vec: q.Vec, K: q.K}
	}

	// One fresh registration per timed event.
	rcfg := workload.DefaultConfig(workload.Connected, sc.Measure)
	rcfg.Seed = sc.Seed + 17
	rs, err := workload.Generate(model, rcfg)
	if err != nil {
		return nil, fmt.Errorf("bench ablchurn: reserve workload: %w", err)
	}
	reserve := make([]core.QueryDef, len(rs))
	for i, q := range rs {
		reserve[i] = core.QueryDef{Vec: q.Vec, K: q.K}
	}

	ix, err := index.Build(vecs, ks)
	if err != nil {
		return nil, err
	}
	gen := corpus.NewGenerator(model, sc.Seed+101, uint64(sc.Warmup+sc.Measure))
	src, err := stream.NewSource(gen, sc.Rate, sc.Seed+202)
	if err != nil {
		return nil, err
	}
	events := src.Take(sc.Warmup + sc.Measure)
	warm, err := warmUp(ix, events[:sc.Warmup], defaultLambda)
	if err != nil {
		return nil, fmt.Errorf("bench ablchurn: warm-up: %w", err)
	}
	measure := events[sc.Warmup:]

	res := &ChurnResult{
		Title:            ChurnTitle,
		Queries:          sc.BaseQueries,
		Events:           len(measure),
		ChurnPerEvent:    2,
		RebuildThreshold: churnThreshold(len(measure)),
	}

	mons := make(map[string]*core.Monitor, 2)
	for _, mode := range []core.RebuildMode{core.RebuildSync, core.RebuildBackground} {
		cell, mon, err := runChurnCell(mode, defs, reserve, warm, measure, res.RebuildThreshold)
		if err != nil {
			return nil, fmt.Errorf("bench ablchurn: %s: %w", mode, err)
		}
		defer mon.Close()
		mons[cell.Series] = mon
		res.Cells = append(res.Cells, cell)
		if out != nil {
			fmt.Fprintf(out, "  %-12s ingest mean=%7.3fms p99=%8.3fms  add p50=%7.3fms p99=%8.3fms max=%8.3fms  gens=%d\n",
				cell.Series, cell.IngestMeanMS, cell.IngestP99MS, cell.AddP50MS, cell.AddP99MS, cell.AddMaxMS, cell.Generations)
		}
	}

	// Parity gate: both modes replayed the identical timeline, so every
	// query's results must be bit-identical regardless of when (or
	// whether) generations were installed.
	sync, bg := mons[string(core.RebuildSync)], mons[string(core.RebuildBackground)]
	total := uint32(sc.BaseQueries + len(reserve))
	for g := uint32(0); g < total; g++ {
		a, errA := sync.TopInflated(g)
		b, errB := bg.TopInflated(g)
		if (errA == nil) != (errB == nil) || len(a) != len(b) {
			return nil, fmt.Errorf("bench ablchurn: parity: query %d diverged (%v/%d vs %v/%d)", g, errA, len(a), errB, len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				return nil, fmt.Errorf("bench ablchurn: parity: query %d rank %d diverged", g, i)
			}
		}
	}
	return res, nil
}

// runChurnCell replays the churn timeline under one rebuild mode. The
// monitor is returned (still open) so the caller can parity-check the
// cells against each other.
func runChurnCell(mode core.RebuildMode, defs, reserve []core.QueryDef, warm *warmState, measure []stream.Event, threshold int) (ChurnCell, *core.Monitor, error) {
	cell := ChurnCell{Series: string(mode)}
	mon, err := core.NewMonitor(core.Config{
		Algorithm:        core.AlgoMRIO,
		Lambda:           defaultLambda,
		RebuildThreshold: threshold,
		Rebuild:          mode,
	}, defs)
	if err != nil {
		return cell, nil, err
	}
	if err := mon.RestoreState(warm.base, warm.base, warm.results); err != nil {
		mon.Close()
		return cell, nil, err
	}

	var ingest, adds, removes stats.Sample
	for i, ev := range measure {
		start := time.Now()
		if _, err := mon.Process(ev.Doc, ev.Time); err != nil {
			mon.Close()
			return cell, nil, err
		}
		ingest.AddDuration(time.Since(start))

		start = time.Now()
		if _, err := mon.AddQuery(reserve[i]); err != nil {
			mon.Close()
			return cell, nil, err
		}
		adds.AddDuration(time.Since(start))

		start = time.Now()
		if err := mon.RemoveQuery(uint32(i)); err != nil {
			mon.Close()
			return cell, nil, err
		}
		removes.AddDuration(time.Since(start))
	}

	// Land any build still in flight (untimed — the measured samples
	// above are closed) so the reported generation counters reflect
	// every build the timeline kicked, not the scheduler's mood on a
	// 1-core box, and the parity check below compares fully-installed
	// states in both modes.
	mon.WaitRebuild()
	gs := mon.GenStats()
	cell.IngestMeanMS = ingest.Mean()
	cell.IngestP50MS = ingest.Percentile(50)
	cell.IngestP99MS = ingest.Percentile(99)
	cell.IngestMaxMS = ingest.Percentile(100)
	cell.AddMeanMS = adds.Mean()
	cell.AddP50MS = adds.Percentile(50)
	cell.AddP99MS = adds.Percentile(99)
	cell.AddMaxMS = adds.Percentile(100)
	cell.RemoveP99MS = removes.Percentile(99)
	cell.Generations = gs.Generation
	cell.Builds = gs.Builds
	cell.FailedBuilds = gs.FailedBuilds
	cell.LastBuildMS = gs.LastBuildMS
	cell.FinalQueries = mon.NumQueries()
	return cell, mon, nil
}

// Render prints the churn ablation in the harness' table style.
func (r *ChurnResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	fmt.Fprintf(w, "queries=%d events=%d churn/event=%d rebuild-threshold=%d\n",
		r.Queries, r.Events, r.ChurnPerEvent, r.RebuildThreshold)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %10s %10s %6s %8s\n",
		"mode", "ing-mean", "ing-p50", "ing-p99", "add-p50", "add-p99", "add-max", "rm-p99", "gens", "build-ms")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-12s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %6d %8.1f\n",
			c.Series, c.IngestMeanMS, c.IngestP50MS, c.IngestP99MS,
			c.AddP50MS, c.AddP99MS, c.AddMaxMS, c.RemoveP99MS, c.Generations, c.LastBuildMS)
	}
	fmt.Fprintln(w)
}
