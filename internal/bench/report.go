package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/stats"
)

// SeriesTable pivots a Result into rows (one per x value) and columns
// (one per series), mirroring how the paper's figures plot data.
type SeriesTable struct {
	XLabel  string
	Columns []string
	XValues []float64
	// MS[x][col] is mean response time in milliseconds.
	MS [][]float64
	// Eval[x][col] is the mean number of exactly-scored queries per
	// event — the machine-independent work metric behind the paper's
	// optimality claim.
	Eval [][]float64
}

// Table pivots a measured result.
func (r *Result) Table() SeriesTable {
	t := SeriesTable{XLabel: r.Exp.XLabel}
	seen := map[string]int{}
	for _, s := range r.Exp.Series {
		seen[s.Label] = len(t.Columns)
		t.Columns = append(t.Columns, s.Label)
	}
	xIndex := map[float64]int{}
	for _, c := range r.Cells {
		i, ok := xIndex[c.Param]
		if !ok {
			i = len(t.XValues)
			xIndex[c.Param] = i
			t.XValues = append(t.XValues, c.Param)
			t.MS = append(t.MS, make([]float64, len(t.Columns)))
			t.Eval = append(t.Eval, make([]float64, len(t.Columns)))
		}
		t.MS[i][seen[c.Series]] = c.MeanMS
		t.Eval[i][seen[c.Series]] = c.Evaluated
	}
	sort.Sort(&tableSorter{&t})
	return t
}

type tableSorter struct{ t *SeriesTable }

func (s *tableSorter) Len() int           { return len(s.t.XValues) }
func (s *tableSorter) Less(i, j int) bool { return s.t.XValues[i] < s.t.XValues[j] }
func (s *tableSorter) Swap(i, j int) {
	s.t.XValues[i], s.t.XValues[j] = s.t.XValues[j], s.t.XValues[i]
	s.t.MS[i], s.t.MS[j] = s.t.MS[j], s.t.MS[i]
	s.t.Eval[i], s.t.Eval[j] = s.t.Eval[j], s.t.Eval[i]
}

// Render prints the table in the row/series layout of the paper's
// figures, followed by the speedup summary the paper quotes ("up to
// 8, 10, and 25 times shorter than TPS, SortQuer, and RTA").
func (r *Result) Render(w io.Writer) {
	t := r.Table()
	fmt.Fprintf(w, "%s\n", r.Exp.Title)
	fmt.Fprintf(w, "%-12s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %12s", c)
	}
	fmt.Fprintln(w)
	for i, x := range t.XValues {
		fmt.Fprintf(w, "%-12s", formatParam(x))
		for j := range t.Columns {
			fmt.Fprintf(w, " %12.3f", t.MS[i][j])
		}
		fmt.Fprintln(w)
	}
	r.renderSpeedups(w, t)

	fmt.Fprintf(w, "exact evaluations per event (machine-independent work metric):\n")
	fmt.Fprintf(w, "%-12s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %12s", c)
	}
	fmt.Fprintln(w)
	for i, x := range t.XValues {
		fmt.Fprintf(w, "%-12s", formatParam(x))
		for j := range t.Columns {
			fmt.Fprintf(w, " %12.1f", t.Eval[i][j])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// renderSpeedups prints max-over-x speedups of MRIO against each other
// series when MRIO is present.
func (r *Result) renderSpeedups(w io.Writer, t SeriesTable) {
	mrio := -1
	for j, c := range t.Columns {
		if c == "MRIO" || strings.HasPrefix(c, "MRIO-seg") {
			mrio = j
			break
		}
	}
	if mrio < 0 || len(t.XValues) == 0 {
		return
	}
	fmt.Fprintf(w, "speedup of MRIO (max over %s):", t.XLabel)
	for j, c := range t.Columns {
		if j == mrio {
			continue
		}
		best := 0.0
		for i := range t.XValues {
			if s := stats.Speedup(t.MS[i][j], t.MS[i][mrio]); s > best && t.MS[i][mrio] > 0 {
				best = s
			}
		}
		fmt.Fprintf(w, "  %.1fx vs %s", best, c)
	}
	fmt.Fprintln(w)
}

func formatParam(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Speedup returns the ratio of series a's to series b's mean time at
// the largest x value (0 when either is missing).
func (r *Result) Speedup(a, b string) float64 {
	t := r.Table()
	ai, bi := -1, -1
	for j, c := range t.Columns {
		if c == a {
			ai = j
		}
		if c == b {
			bi = j
		}
	}
	if ai < 0 || bi < 0 || len(t.XValues) == 0 {
		return 0
	}
	last := len(t.XValues) - 1
	if t.MS[last][bi] == 0 {
		return 0
	}
	return t.MS[last][ai] / t.MS[last][bi]
}
