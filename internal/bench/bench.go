// Package bench is the experiment harness: it reconstructs every
// figure of the paper's evaluation (and the extension sweeps of the
// underlying TKDE study) as parameter sweeps over workload size, k, λ
// and query length, timing each algorithm on the identical replayed
// stream.
//
// The paper's absolute numbers came from the authors' 2017 testbed and
// 7M real Wikipedia pages; this harness preserves the comparisons that
// carry the paper's claims — which algorithm wins, by what factor, and
// how response time grows with the number of queries — on the
// synthetic corpus documented in DESIGN.md §6.
package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/rangemax"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/topk"
	"repro/internal/workload"
)

// Scale sizes a run. The default keeps every experiment laptop-fast;
// Full reproduces the paper's axis (up to 4·10⁶ queries).
type Scale struct {
	// QueryCounts is the x-axis of the Figure 1 sweeps.
	QueryCounts []int
	// BaseQueries is the fixed query count for non-size sweeps.
	BaseQueries int
	// VocabSize is the synthetic corpus vocabulary.
	VocabSize int
	// Warmup is how many documents stream before timing starts (fills
	// top-k heaps so thresholds are meaningful).
	Warmup int
	// Measure is how many timed events each cell averages over.
	Measure int
	// Rate is the arrival rate (docs per virtual second).
	Rate float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultScale returns the laptop-fast configuration.
func DefaultScale() Scale {
	return Scale{
		QueryCounts: []int{25_000, 50_000, 100_000, 200_000, 400_000},
		BaseQueries: 100_000,
		// 20k terms gives the default axis the same queries-per-list
		// density as the paper's 200k-term dictionary at its 10× larger
		// query axis.
		VocabSize: 20_000,
		Warmup:    2_000,
		Measure:   300,
		Rate:      100,
		Seed:      42,
	}
}

// FullScale returns the paper-axis configuration (minutes to hours).
func FullScale() Scale {
	s := DefaultScale()
	s.QueryCounts = []int{250_000, 500_000, 1_000_000, 2_000_000, 4_000_000}
	s.BaseQueries = 1_000_000
	s.VocabSize = 200_000
	s.Warmup = 10_000
	s.Measure = 500
	return s
}

// QuickScale returns a seconds-fast smoke configuration used by unit
// tests and testing.B benchmarks.
func QuickScale() Scale {
	return Scale{
		QueryCounts: []int{2_000, 4_000, 8_000},
		BaseQueries: 4_000,
		VocabSize:   8_000,
		Warmup:      300,
		Measure:     60,
		Rate:        100,
		Seed:        42,
	}
}

// Series identifies one line in a figure: an algorithm (and bound
// implementation, shard count or ingestion batch size where the
// experiment varies those).
type Series struct {
	Label string
	Algo  core.Algorithm
	Bound rangemax.Kind
	// Shards > 0 routes the series through the parallel Monitor.
	Shards int
	// Parallelism > 1 partitions each shard's query range across this
	// many intra-shard matching workers (Shards must be > 0).
	Parallelism int
	// Partition selects the intra-shard partition strategy (empty uses
	// the monitor default, mass).
	Partition core.PartitionStrategy
	// RepartitionWindow overrides the monitor's imbalance-check window
	// (0 keeps the default). Experiments with short measure windows
	// set it low so the mass strategy's observed-work adaptation runs
	// within the measured stream.
	RepartitionWindow int
	// Adapt replays this many leading measure events untimed before
	// the timed window starts (clamped to half the window), letting
	// adaptive partition boundaries converge so the timed segment
	// measures the steady state rather than the transient — every
	// series of an experiment should use the same Adapt so they replay
	// identical streams.
	Adapt int
	// Batch > 1 chunks the measure window into groups of this many
	// documents, all stamped with the chunk's last event time, and
	// feeds each chunk through ProcessBatch (Shards must be > 0);
	// ≤ 1 publishes one document per event at its own time.
	Batch int
	// PerDoc, with Batch > 1, replays the same collapsed per-chunk
	// timeline but feeds documents individually through Process — the
	// control series that isolates the batching effect from the
	// timeline change.
	PerDoc bool
}

// Point is one x-axis position of a sweep.
type Point struct {
	// Param is the x value (number of queries, k, λ, |q|).
	Param float64
	// Queries configures the workload at this point.
	Queries workload.Config
	// Lambda is the decay rate at this point.
	Lambda float64
}

// Experiment is a complete figure/table specification.
type Experiment struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
	Points []Point
	// Model is the corpus model shared by all points.
	Model corpus.Model
	// Warmup/Measure/Rate/Seed copied from Scale at construction.
	Warmup, Measure int
	Rate            float64
	Seed            int64
}

// Cell is one measured (series, point) combination.
type Cell struct {
	Series    string
	Param     float64
	MeanMS    float64
	P50MS     float64
	P95MS     float64
	Evaluated float64 // mean exact evaluations per event
	Iters     float64 // mean iterations per event
	JumpAlls  float64 // mean whole-zone strides per event
	// Imbalance is the max/mean ratio of per-partition observed busy
	// time across the monitor's intra-shard partitions (0 when the
	// series runs without intra-shard parallelism). 1.0 is perfect
	// balance; the event latency is bounded by the slowest partition,
	// so this ratio is the headroom cost-balanced partitioning buys
	// back.
	Imbalance float64
}

// Result is a fully measured experiment.
type Result struct {
	Exp   Experiment
	Cells []Cell
}

// warmState is the steady-state snapshot shared by every series at one
// sweep point: per-query results emulating a long-running server, plus
// the decay epoch reached. The paper measures a server that has
// already streamed millions of Wikipedia pages, so its thresholds
// S_k(q) sit near each query's best attainable score and arrivals
// rarely qualify. Replaying millions of documents per sweep cell is
// intractable, so the harness:
//
//  1. streams a Warmup-sized prefix through the Exhaustive processor
//     (exact, shared by all series);
//  2. records each query's best observed score at Warmup/2 and at
//     Warmup, fits the standard extreme-value growth curve
//     best(n) ≈ a + b·ln n, and extrapolates to HistoryDocs;
//  3. injects k phantom "historical" results per query at the
//     extrapolated level.
//
// Every algorithm is cloned from the identical snapshot, so relative
// comparisons are unaffected by the emulation; EXPERIMENTS.md
// documents the substitution.
type warmState struct {
	results map[uint32][]topk.ScoredDoc
	base    float64 // decay epoch after warm-up
}

// HistoryDocs is the emulated stream length behind the steady-state
// thresholds — the order of the paper's 7,012,610-page stream.
const HistoryDocs = 5_000_000

// phantomBase offsets phantom document IDs away from real stream IDs.
const phantomBase = uint64(1) << 62

// warmUp streams the warm-up prefix through an Exhaustive processor
// and injects extrapolated steady-state thresholds.
func warmUp(ix *index.Index, events []stream.Event, lambda float64) (*warmState, error) {
	proc, err := algo.NewExhaustive(ix)
	if err != nil {
		return nil, err
	}
	decay, err := stream.NewDecay(lambda)
	if err != nil {
		return nil, err
	}
	n := uint32(ix.NumQueries())
	half := len(events) / 2
	meanBest := func() float64 {
		var sum float64
		var cnt int
		for q := uint32(0); q < n; q++ {
			if b := proc.Results().Best(q); b > 0 {
				sum += b
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	var m1 float64
	for i, ev := range events {
		if i == half {
			m1 = meanBest()
		}
		for decay.NeedsRebase(ev.Time) {
			proc.Rebase(decay.RebaseTo(ev.Time))
		}
		proc.ProcessEvent(ev.Doc, decay.Factor(ev.Time))
	}
	m2 := meanBest()

	// Extreme-value extrapolation: best(n) ≈ a + b·ln n. The fit uses
	// the two warm-up checkpoints; the uplift is clamped to [1, 5] so
	// a degenerate fit cannot produce absurd thresholds.
	//
	// The uplift only applies in the quasi-static regime (λ·span ≲ 1):
	// under real decay the competition horizon is shorter than the
	// warm-up, so the warm-up already IS the steady state, and the
	// inflated-unit growth of scores would poison the fit.
	span := 0.0
	if len(events) > 0 {
		span = events[len(events)-1].Time - events[0].Time
	}
	uplift := 1.0
	if lambda*span <= 1 && m1 > 0 && m2 > m1 && len(events) > 1 {
		b := (m2 - m1) / math.Ln2 // checkpoints are a factor 2 apart
		a := m2 - b*math.Log(float64(len(events)))
		projected := a + b*math.Log(HistoryDocs)
		if projected > m2 {
			uplift = projected / m2
		}
		if uplift > 5 {
			uplift = 5
		}
	}

	ws := &warmState{
		results: make(map[uint32][]topk.ScoredDoc, n),
		base:    decay.Base(),
	}
	for q := uint32(0); q < n; q++ {
		best := proc.Results().Best(q)
		if best == 0 {
			continue // nothing ever matched; stays cold, as in reality
		}
		k := ix.K(q)
		docs := make([]topk.ScoredDoc, k)
		for i := 0; i < k; i++ {
			// A gentle spread below the projected best keeps the k-th
			// threshold close to (but below) the top score, like a
			// long stream's top-k is.
			docs[i] = topk.ScoredDoc{
				DocID: phantomBase + uint64(q)*uint64(k) + uint64(i),
				Score: best * uplift * (1 - 0.02*float64(i)),
			}
		}
		ws.results[q] = docs
	}
	return ws, nil
}

// load clones the warm state into a processor.
func (ws *warmState) load(proc algo.Processor) {
	for q, docs := range ws.results {
		for _, d := range docs {
			proc.Results().Add(q, d.DocID, d.Score)
		}
		proc.SyncThreshold(q)
	}
	proc.Refresh()
}

// Run measures every (series × point) cell. Progress lines go to out
// when non-nil.
func Run(exp Experiment, out io.Writer) (*Result, error) {
	res := &Result{Exp: exp}
	for _, pt := range exp.Points {
		qs, err := workload.Generate(exp.Model, pt.Queries)
		if err != nil {
			return nil, fmt.Errorf("bench %s: workload at %v: %w", exp.ID, pt.Param, err)
		}
		vecs := make([]textproc.Vector, len(qs))
		ks := make([]int, len(qs))
		for i, q := range qs {
			vecs[i] = q.Vec
			ks[i] = q.K
		}
		ix, err := index.Build(vecs, ks)
		if err != nil {
			return nil, err
		}
		gen := corpus.NewGenerator(exp.Model, exp.Seed+101, uint64(exp.Warmup+exp.Measure))
		src, err := stream.NewSource(gen, exp.Rate, exp.Seed+202)
		if err != nil {
			return nil, err
		}
		events := src.Take(exp.Warmup + exp.Measure)
		warm, err := warmUp(ix, events[:exp.Warmup], pt.Lambda)
		if err != nil {
			return nil, fmt.Errorf("bench %s: warm-up at %v: %w", exp.ID, pt.Param, err)
		}
		measure := events[exp.Warmup:]

		for _, s := range exp.Series {
			var cell Cell
			switch {
			case s.Shards > 0:
				cell, err = runShardCell(s, pt, vecs, ks, warm, measure)
			default:
				cell, err = runCell(s, pt, ix, warm, measure)
			}
			if err != nil {
				return nil, fmt.Errorf("bench %s: %s at %v: %w", exp.ID, s.Label, pt.Param, err)
			}
			res.Cells = append(res.Cells, cell)
			if out != nil {
				if cell.Imbalance > 0 {
					fmt.Fprintf(out, "  %-12s %-12v mean=%8.3fms p95=%8.3fms eval/ev=%9.1f imb=%5.2f\n",
						s.Label, pt.Param, cell.MeanMS, cell.P95MS, cell.Evaluated, cell.Imbalance)
				} else {
					fmt.Fprintf(out, "  %-12s %-12v mean=%8.3fms p95=%8.3fms eval/ev=%9.1f\n",
						s.Label, pt.Param, cell.MeanMS, cell.P95MS, cell.Evaluated)
				}
			}
		}
	}
	return res, nil
}

// runCell times one algorithm over the replayed measure window,
// starting from the shared warm state.
func runCell(s Series, pt Point, ix *index.Index, warm *warmState, measure []stream.Event) (Cell, error) {
	cell := Cell{Series: s.Label, Param: pt.Param}
	proc, err := core.NewProcessor(s.Algo, s.Bound, ix)
	if err != nil {
		return cell, err
	}
	warm.load(proc)
	decay, err := stream.NewDecay(pt.Lambda)
	if err != nil {
		return cell, err
	}
	decay.SetBase(warm.base)

	var sample stats.Sample
	var evalSum, iterSum, jumpSum float64
	for _, ev := range measure {
		for decay.NeedsRebase(ev.Time) {
			proc.Rebase(decay.RebaseTo(ev.Time))
		}
		e := decay.Factor(ev.Time)
		start := time.Now()
		met := proc.ProcessEvent(ev.Doc, e)
		sample.AddDuration(time.Since(start))
		evalSum += float64(met.Evaluated)
		iterSum += float64(met.Iterations)
		jumpSum += float64(met.JumpAlls)
	}
	n := float64(len(measure))
	cell.MeanMS = sample.Mean()
	cell.P50MS = sample.Percentile(50)
	cell.P95MS = sample.Percentile(95)
	cell.Evaluated = evalSum / n
	cell.Iters = iterSum / n
	cell.JumpAlls = jumpSum / n
	return cell, nil
}

// runShardCell times the parallel Monitor (shard-scaling and batch
// ablations). With s.Batch > 1 the measure window is replayed in
// chunks on a collapsed timeline (every document stamped with its
// chunk's last event time) — through one ProcessBatch call per chunk,
// or document-by-document when s.PerDoc is set, so a doc/batch series
// pair with the same Batch sees identical matching work and differs
// only in batching. MeanMS is always mean milliseconds per document.
// For ProcessBatch series the percentiles are over per-chunk
// per-document means (one sample per chunk): within-chunk tails are
// invisible by construction, since a batch has a single wall time.
func runShardCell(s Series, pt Point, vecs []textproc.Vector, ks []int, warm *warmState, measure []stream.Event) (Cell, error) {
	cell := Cell{Series: s.Label, Param: pt.Param}
	defs := make([]core.QueryDef, len(vecs))
	for i := range vecs {
		defs[i] = core.QueryDef{Vec: vecs[i], K: ks[i]}
	}
	mon, err := core.NewMonitor(core.Config{
		Algorithm:         s.Algo,
		Bound:             s.Bound,
		Lambda:            pt.Lambda,
		Shards:            s.Shards,
		Parallelism:       s.Parallelism,
		Partition:         s.Partition,
		RepartitionWindow: s.RepartitionWindow,
	}, defs)
	if err != nil {
		return cell, err
	}
	defer mon.Close()
	if err := mon.RestoreState(warm.base, warm.base, warm.results); err != nil {
		return cell, err
	}
	// Untimed adaptation prefix: identical stream for every series
	// sharing the same Adapt, so the timed segments stay comparable.
	if adapt := min(s.Adapt, len(measure)/2); adapt > 0 {
		for _, ev := range measure[:adapt] {
			if _, err := mon.Process(ev.Doc, ev.Time); err != nil {
				return cell, err
			}
		}
		measure = measure[adapt:]
	}
	batch := s.Batch
	if batch < 1 {
		batch = 1
	}
	var sample stats.Sample
	var evalSum float64
	var total time.Duration
	docs := make([]corpus.Document, 0, batch)
	for i := 0; i < len(measure); i += batch {
		chunk := measure[i:min(i+batch, len(measure))]
		at := chunk[len(chunk)-1].Time
		if batch == 1 || s.PerDoc {
			for _, ev := range chunk {
				start := time.Now()
				st, err := mon.Process(ev.Doc, at)
				if err != nil {
					return cell, err
				}
				d := time.Since(start)
				total += d
				sample.AddDuration(d)
				evalSum += float64(st.Evaluated)
			}
			continue
		}
		docs = docs[:0]
		for _, ev := range chunk {
			docs = append(docs, ev.Doc)
		}
		start := time.Now()
		st, err := mon.ProcessBatch(docs, at)
		if err != nil {
			return cell, err
		}
		d := time.Since(start)
		total += d
		sample.AddDuration(d / time.Duration(len(chunk)))
		evalSum += float64(st.Evaluated)
	}
	cell.MeanMS = total.Seconds() * 1000 / float64(len(measure))
	cell.P50MS = sample.Percentile(50)
	cell.P95MS = sample.Percentile(95)
	cell.Evaluated = evalSum / float64(len(measure))
	if s.Parallelism > 1 {
		cell.Imbalance = workImbalance(mon.PartitionStats())
	}
	return cell, nil
}

// workImbalance computes the max/mean ratio of per-partition busy time
// (0 when nothing was observed).
func workImbalance(parts []core.PartitionStat) float64 {
	var total, maxBusy float64
	for _, p := range parts {
		total += p.BusyMS
		if p.BusyMS > maxBusy {
			maxBusy = p.BusyMS
		}
	}
	if total <= 0 || len(parts) == 0 {
		return 0
	}
	return maxBusy / (total / float64(len(parts)))
}
