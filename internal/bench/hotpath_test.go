package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/rangemax"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/workload"
)

// hotpathFixture builds one warm-started replay setup (index, warm
// state, timed events) for layout benchmarks.
type hotpathFixture struct {
	ix    *index.Index
	warm  *warmState
	timed []stream.Event
}

func newHotpathFixture(tb testing.TB, layout index.Layout) *hotpathFixture {
	tb.Helper()
	sc := QuickScale()
	model := corpus.WikipediaModel(sc.VocabSize)
	cfg := workload.DefaultConfig(workload.Hot, sc.BaseQueries)
	cfg.Seed = sc.Seed
	qs, err := workload.Generate(model, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	vecs := make([]textproc.Vector, len(qs))
	ks := make([]int, len(qs))
	for i, q := range qs {
		vecs[i] = q.Vec
		ks[i] = q.K
	}
	ix, err := index.BuildLayout(vecs, ks, layout)
	if err != nil {
		tb.Fatal(err)
	}
	gen := corpus.NewGenerator(model, sc.Seed+101, uint64(sc.Warmup+hotpathEvents(sc)))
	src, err := stream.NewSource(gen, sc.Rate, sc.Seed+202)
	if err != nil {
		tb.Fatal(err)
	}
	events := src.Take(sc.Warmup + hotpathEvents(sc))
	warm, err := warmUp(ix, events[:sc.Warmup], defaultLambda)
	if err != nil {
		tb.Fatal(err)
	}
	return &hotpathFixture{ix: ix, warm: warm, timed: events[sc.Warmup:]}
}

// replay runs the timed window once through a fresh warm processor.
func (f *hotpathFixture) replay(tb testing.TB) {
	tb.Helper()
	proc, err := core.NewProcessor(core.AlgoMRIO, rangemax.KindSegTree, f.ix)
	if err != nil {
		tb.Fatal(err)
	}
	f.warm.load(proc)
	decay, err := stream.NewDecay(defaultLambda)
	if err != nil {
		tb.Fatal(err)
	}
	decay.SetBase(f.warm.base)
	for _, ev := range f.timed {
		for decay.NeedsRebase(ev.Time) {
			proc.Rebase(decay.RebaseTo(ev.Time))
		}
		proc.ProcessEvent(ev.Doc, decay.Factor(ev.Time))
	}
}

// BenchmarkHotpathFlat replays the ablhotpath Hot window over the flat
// layout; pair with BenchmarkHotpathLegacy to profile where the legacy
// layout spends its extra time.
func BenchmarkHotpathFlat(b *testing.B) {
	f := newHotpathFixture(b, index.LayoutFlat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.replay(b)
	}
}

func BenchmarkHotpathLegacy(b *testing.B) {
	f := newHotpathFixture(b, index.LayoutLegacy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.replay(b)
	}
}
